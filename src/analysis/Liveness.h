//===- analysis/Liveness.h - Live-variable analysis -------------*- C++ -*-===//
///
/// \file
/// Computes, for every GC point, the set of caller slots the frame GC
/// routine must trace: slots that are both *live* (read again on some path
/// after the point) and *definitely initialized* (written on every path
/// reaching the point). This implements the optimization of paper
/// section 5.2 — dead locals are invisible to the collector — and the
/// "initialized or not" status tracking of section 1.
///
/// With UseLiveness = false, trace sets fall back to "every initialized
/// slot", which is what a collector without liveness information must
/// assume; the E5 experiment measures the difference.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_ANALYSIS_LIVENESS_H
#define TFGC_ANALYSIS_LIVENESS_H

#include "ir/Ir.h"

namespace tfgc {

struct LivenessOptions {
  bool UseLiveness = true;
  /// Tasking (paper section 4): a task suspended *at* a call site has not
  /// yet passed its arguments to the callee, so the frame routine must
  /// trace the outgoing argument slots too. Sequential programs never
  /// need this — collection starts inside the callee, which traces its
  /// own parameters (the paper's append observation).
  bool TraceCallArgs = false;
};

/// Fills CallSiteInfo::TraceSlots for every site in \p P.
void computeTraceSets(IrProgram &P, const LivenessOptions &Opts = {});

} // namespace tfgc

#endif // TFGC_ANALYSIS_LIVENESS_H
