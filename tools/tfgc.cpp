//===- tools/tfgc.cpp - Command-line driver -------------------------------===//
///
/// Compiles and runs a MiniML program under a selectable GC strategy.
///
///   tfgc [options] file.mml        run a program
///   tfgc [options] -e 'expr'       run inline source
///
/// Options:
///   --strategy=S       tagged | compiled (default) | interpreted | appel
///   --algo=A           copying (default) | marksweep | generational
///   --heap=BYTES       initial heap size (default 1 MiB)
///   --nursery-bytes=N  generational only: nursery size carved out of the
///                      heap (default heap/8)
///   --stress           collect at every allocation
///   --no-liveness      disable the live-variable analysis (paper 5.2)
///   --no-gcpoints      disable the GC-point analysis (paper 5.1)
///   --mono             reject polymorphic programs
///   --monomorphise     clone polymorphic functions per instantiation
///   --gloger-dummies   Goldberg & Gloger '92 rule: bind unreconstructible
///                      type parameters to const_gc instead of rejecting
///   --dump-ir          print the lowered IR and exit
///   --dump-meta        print GC metadata statistics and exit
///   --stats            print collector statistics after the run
///   --gc-log           one structured log line per collection (stderr)
///   --trace-out=FILE   write a Chrome trace_event JSON of every collection
///                      (load in chrome://tracing or Perfetto)
///   --stats-json=FILE  write counters, pause/phase histograms, and the
///                      heap census as JSON after the run
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "ir/Ir.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace tfgc;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: tfgc [options] file.mml | -e 'expr'\n"
      "  --strategy=tagged|compiled|interpreted|appel   (default compiled)\n"
      "  --algo=copying|marksweep|generational          (default copying)\n"
      "  --heap=BYTES   --nursery-bytes=N  --stress  --stats\n"
      "  --no-liveness  --no-gcpoints  --mono  --monomorphise  --gloger-dummies\n"
      "  --dump-ir      --dump-meta\n"
      "  --gc-log       --trace-out=FILE  --stats-json=FILE\n");
}

bool startsWith(const char *Arg, const char *Prefix, const char **Value) {
  size_t N = std::strlen(Prefix);
  if (std::strncmp(Arg, Prefix, N) != 0)
    return false;
  *Value = Arg + N;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  GcStrategy Strategy = GcStrategy::CompiledTagFree;
  GcAlgorithm Algo = GcAlgorithm::Copying;
  size_t HeapBytes = 1 << 20;
  size_t NurseryBytes = 0;
  bool Stress = false, DumpIr = false, DumpMeta = false, ShowStats = false;
  bool GcLog = false;
  std::string TraceOutPath, StatsJsonPath;
  CompileOptions Options;
  std::string Source;
  bool HaveSource = false;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    const char *Value = nullptr;
    if (startsWith(Arg, "--strategy=", &Value)) {
      if (!std::strcmp(Value, "tagged"))
        Strategy = GcStrategy::Tagged;
      else if (!std::strcmp(Value, "compiled"))
        Strategy = GcStrategy::CompiledTagFree;
      else if (!std::strcmp(Value, "interpreted"))
        Strategy = GcStrategy::InterpretedTagFree;
      else if (!std::strcmp(Value, "appel"))
        Strategy = GcStrategy::AppelTagFree;
      else {
        std::fprintf(stderr, "unknown strategy '%s'\n", Value);
        return 2;
      }
    } else if (startsWith(Arg, "--algo=", &Value)) {
      if (!std::strcmp(Value, "copying"))
        Algo = GcAlgorithm::Copying;
      else if (!std::strcmp(Value, "marksweep"))
        Algo = GcAlgorithm::MarkSweep;
      else if (!std::strcmp(Value, "generational"))
        Algo = GcAlgorithm::Generational;
      else {
        std::fprintf(stderr,
                     "unknown algorithm '%s' (valid: copying | marksweep | "
                     "generational)\n",
                     Value);
        return 2;
      }
    } else if (startsWith(Arg, "--heap=", &Value)) {
      HeapBytes = (size_t)std::strtoull(Value, nullptr, 10);
    } else if (startsWith(Arg, "--nursery-bytes=", &Value)) {
      NurseryBytes = (size_t)std::strtoull(Value, nullptr, 10);
    } else if (!std::strcmp(Arg, "--stress")) {
      Stress = true;
    } else if (!std::strcmp(Arg, "--no-liveness")) {
      Options.UseLiveness = false;
    } else if (!std::strcmp(Arg, "--no-gcpoints")) {
      Options.UseGcPointAnalysis = false;
    } else if (!std::strcmp(Arg, "--mono")) {
      Options.RequireMonomorphic = true;
    } else if (!std::strcmp(Arg, "--monomorphise")) {
      Options.Monomorphise = true;
    } else if (!std::strcmp(Arg, "--gloger-dummies")) {
      Options.GlogerDummies = true;
    } else if (!std::strcmp(Arg, "--dump-ir")) {
      DumpIr = true;
    } else if (!std::strcmp(Arg, "--dump-meta")) {
      DumpMeta = true;
    } else if (!std::strcmp(Arg, "--stats")) {
      ShowStats = true;
    } else if (!std::strcmp(Arg, "--gc-log")) {
      GcLog = true;
    } else if (startsWith(Arg, "--trace-out=", &Value)) {
      TraceOutPath = Value;
    } else if (startsWith(Arg, "--stats-json=", &Value)) {
      StatsJsonPath = Value;
    } else if (!std::strcmp(Arg, "-e")) {
      if (++I >= argc) {
        usage();
        return 2;
      }
      Source = argv[I];
      HaveSource = true;
    } else if (!std::strcmp(Arg, "--help") || !std::strcmp(Arg, "-h")) {
      usage();
      return 0;
    } else if (Arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", Arg);
      usage();
      return 2;
    } else {
      std::ifstream In(Arg);
      if (!In) {
        std::fprintf(stderr, "cannot open '%s'\n", Arg);
        return 2;
      }
      std::ostringstream Buf;
      Buf << In.rdbuf();
      Source = Buf.str();
      HaveSource = true;
    }
  }
  if (!HaveSource) {
    usage();
    return 2;
  }

  Compiler C(Options);
  std::string Error;
  std::unique_ptr<CompiledProgram> P = C.compile(Source, &Error);
  if (!P) {
    std::fprintf(stderr, "%s", Error.c_str());
    return 1;
  }

  if (DumpIr) {
    std::printf("%s", printIr(P->Prog).c_str());
    return 0;
  }
  if (DumpMeta) {
    std::printf("functions:            %zu\n", P->Prog.Functions.size());
    std::printf("call sites:           %zu\n", P->Prog.Sites.size());
    std::printf("gc_words omitted:     %zu\n", P->Image.omittedGcWords());
    std::printf("frame routines:       %zu (no_trace sites: %zu)\n",
                P->Compiled.numFrameRoutines(),
                P->Compiled.numNoTraceSites());
    std::printf("type routines:        %zu\n", P->Compiled.numTypeRoutines());
    std::printf("compiled metadata:    %zu bytes\n", P->Compiled.sizeBytes());
    std::printf("interpreted metadata: %zu bytes (%zu descriptors)\n",
                P->Interp->sizeBytes(),
                P->Interp->descriptors().numDescriptors());
    std::printf("appel metadata:       %zu bytes\n", P->Appel->sizeBytes());
    return 0;
  }

  Stats St;
  std::unique_ptr<Collector> Col =
      P->makeCollector(Strategy, Algo, HeapBytes, St, &Error, NurseryBytes);
  if (!Col) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 1;
  }
  Telemetry &Tel = Col->telemetry();
  Tel.setLabel(gcStrategyName(Strategy));
  if (GcLog)
    Tel.setLogStream(stderr);
  std::ofstream TraceOut;
  if (!TraceOutPath.empty()) {
    TraceOut.open(TraceOutPath);
    if (!TraceOut) {
      std::fprintf(stderr, "cannot open '%s'\n", TraceOutPath.c_str());
      return 2;
    }
    Tel.beginTrace(TraceOut);
  }

  Vm M(P->Prog, P->Image, *P->Types, *Col,
       defaultVmOptions(Strategy, Stress));
  RunResult R = M.run();

  if (!TraceOutPath.empty())
    Tel.endTrace();
  if (!StatsJsonPath.empty()) {
    std::ofstream JsonOut(StatsJsonPath);
    if (!JsonOut) {
      std::fprintf(stderr, "cannot open '%s'\n", StatsJsonPath.c_str());
      return 2;
    }
    Tel.writeStatsJson(JsonOut, St);
  }

  if (!R.Output.empty())
    std::fputs(R.Output.c_str(), stdout);
  if (!R.Ok) {
    std::fprintf(stderr, "runtime error: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("%s\n", R.Value.c_str());
  if (ShowStats)
    std::fputs(St.render().c_str(), stderr);
  return 0;
}
