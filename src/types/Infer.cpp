//===- types/Infer.cpp ----------------------------------------------------===//

#include "types/Infer.h"

using namespace tfgc;

TypeChecker::TypeChecker(TypeContext &Ctx, DiagnosticEngine &Diags,
                         bool RequireMonomorphic)
    : Ctx(Ctx), Diags(Diags), RequireMonomorphic(RequireMonomorphic) {}

void TypeChecker::bindValue(const std::string &Name, TypeScheme S) {
  assert(!Scopes.empty());
  Scopes.back()[Name] = std::move(S);
}

const TypeScheme *TypeChecker::lookupValue(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return &Found->second;
  }
  return nullptr;
}

void TypeChecker::unifyOrError(Type *A, Type *B, SourceLoc Loc,
                               const char *Context) {
  if (Ctx.unify(A, B))
    return;
  Diags.error(Loc, std::string("type mismatch ") + Context + ": " +
                       Ctx.render(A) + " vs " + Ctx.render(B));
}

std::optional<SemaInfo> TypeChecker::check(Program &P) {
  pushScope();
  TyVarScopes.emplace_back();
  for (DeclPtr &D : P.Decls)
    checkDecl(D.get());
  if (P.Main)
    inferExpr(P.Main.get());
  TyVarScopes.pop_back();
  popScope();

  if (Diags.hasErrors())
    return std::nullopt;

  // Default leftover free vars (e.g. the element type of a lone `Nil`).
  for (DeclPtr &D : P.Decls)
    finalizeDecl(D.get());
  if (P.Main)
    finalizeExpr(P.Main.get());
  return std::move(Info);
}

//===----------------------------------------------------------------------===//
// Syntactic type conversion
//===----------------------------------------------------------------------===//

Type *TypeChecker::convertTypeAst(const TypeAst *T) {
  switch (T->Kind) {
  case TypeAstKind::Var: {
    // Annotation type variables scope over the enclosing declaration.
    for (auto It = TyVarScopes.rbegin(); It != TyVarScopes.rend(); ++It) {
      auto Found = It->find(T->Name);
      if (Found != It->end())
        return Found->second;
    }
    Type *Fresh = Ctx.freshVar(Level);
    TyVarScopes.back()[T->Name] = Fresh;
    return Fresh;
  }
  case TypeAstKind::Name: {
    if (T->Args.empty()) {
      if (T->Name == "int")
        return Ctx.intTy();
      if (T->Name == "bool")
        return Ctx.boolTy();
      if (T->Name == "unit")
        return Ctx.unitTy();
      if (T->Name == "float")
        return Ctx.floatTy();
    }
    if (T->Name == "ref") {
      if (T->Args.size() != 1) {
        Diags.error(T->Loc, "'ref' takes exactly one type argument");
        return Ctx.unitTy();
      }
      return Ctx.makeRef(convertTypeAst(T->Args[0].get()));
    }
    DatatypeInfo *Info = Ctx.lookupDatatype(T->Name);
    if (!Info) {
      Diags.error(T->Loc, "unknown type '" + T->Name + "'");
      return Ctx.unitTy();
    }
    if (T->Args.size() != Info->Params.size()) {
      Diags.error(T->Loc, "type '" + T->Name + "' expects " +
                              std::to_string(Info->Params.size()) +
                              " argument(s)");
      return Ctx.unitTy();
    }
    std::vector<Type *> Args;
    for (const TypeAstPtr &A : T->Args)
      Args.push_back(convertTypeAst(A.get()));
    return Ctx.makeData(Info, std::move(Args));
  }
  case TypeAstKind::Fun: {
    std::vector<Type *> Params;
    for (const TypeAstPtr &A : T->Args)
      Params.push_back(convertTypeAst(A.get()));
    return Ctx.makeFun(std::move(Params), convertTypeAst(T->Result.get()));
  }
  case TypeAstKind::Tuple: {
    std::vector<Type *> Elems;
    for (const TypeAstPtr &A : T->Args)
      Elems.push_back(convertTypeAst(A.get()));
    return Ctx.makeTuple(std::move(Elems));
  }
  }
  return Ctx.unitTy();
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

void TypeChecker::checkDecl(Decl *D) {
  switch (D->Kind) {
  case DeclKind::Datatype:
    checkDatatypeDecl(D);
    return;
  case DeclKind::Fun:
    checkFunDecl(D);
    return;
  case DeclKind::Val:
    checkValDecl(D);
    return;
  }
}

void TypeChecker::checkDatatypeDecl(Decl *D) {
  if (Ctx.lookupDatatype(D->Name)) {
    Diags.error(D->Loc, "datatype '" + D->Name + "' redeclared");
    return;
  }
  DatatypeInfo *Info = Ctx.createDatatype(D->Name, (unsigned)D->TyVars.size());

  // Constructor field types see the datatype's parameters as the
  // declaration's type variables.
  TyVarScopes.emplace_back();
  for (size_t I = 0; I < D->TyVars.size(); ++I)
    TyVarScopes.back()[D->TyVars[I]] = Info->Params[I];
  for (const CtorDef &C : D->Ctors) {
    if (Ctx.lookupCtor(C.Name).first) {
      Diags.error(C.Loc, "constructor '" + C.Name + "' redeclared");
      continue;
    }
    std::vector<Type *> Fields;
    for (const TypeAstPtr &F : C.Fields)
      Fields.push_back(convertTypeAst(F.get()));
    Ctx.addCtor(Info, C.Name, std::move(Fields));
  }
  TyVarScopes.pop_back();
}

void TypeChecker::checkFunDecl(Decl *D) {
  // Mutually recursive group: bind every name to a fresh monotype at
  // Level+1, infer all bodies, then generalize at the current level.
  ++Level;
  TyVarScopes.emplace_back();

  std::vector<Type *> FnTys;
  for (FunBind &B : D->Binds) {
    Type *FnTy = Ctx.freshVar(Level);
    FnTys.push_back(FnTy);
    bindValue(B.Name, TypeScheme{{}, FnTy});
  }

  for (size_t I = 0; I < D->Binds.size(); ++I) {
    FunBind &B = D->Binds[I];
    pushScope();
    std::vector<Type *> ParamTys;
    std::unordered_set<std::string> Seen;
    for (PatternPtr &P : B.Params) {
      Type *PT = Ctx.freshVar(Level);
      bindPattern(P.get(), PT, Seen);
      ParamTys.push_back(PT);
    }
    Type *BodyTy = inferExpr(B.Body.get());
    if (B.RetAnnot)
      unifyOrError(BodyTy, convertTypeAst(B.RetAnnot.get()), B.Loc,
                   "with result annotation");
    popScope();
    unifyOrError(FnTys[I], Ctx.makeFun(std::move(ParamTys), BodyTy), B.Loc,
                 "in recursive function");
  }

  TyVarScopes.pop_back();
  --Level;

  for (size_t I = 0; I < D->Binds.size(); ++I) {
    FunBind &B = D->Binds[I];
    TypeScheme S = Ctx.generalize(FnTys[I], Level);
    if (RequireMonomorphic && S.isPoly())
      Diags.error(B.Loc, "function '" + B.Name +
                             "' is polymorphic; this configuration requires "
                             "monomorphic programs");
    Info.FunSchemes[&B] = S;
    bindValue(B.Name, std::move(S));
  }
}

void TypeChecker::checkValDecl(Decl *D) {
  TyVarScopes.emplace_back();
  Type *InitTy = D->Init ? inferExpr(D->Init.get()) : Ctx.unitTy();
  std::unordered_set<std::string> Seen;
  if (D->Pat)
    bindPattern(D->Pat.get(), InitTy, Seen);
  TyVarScopes.pop_back();
}

//===----------------------------------------------------------------------===//
// Patterns
//===----------------------------------------------------------------------===//

void TypeChecker::bindPattern(Pattern *P, Type *Expected,
                              std::unordered_set<std::string> &Seen) {
  P->Ty = Expected;
  switch (P->Kind) {
  case PatternKind::Wild:
    break;
  case PatternKind::Var: {
    if (!Seen.insert(P->Name).second)
      Diags.error(P->Loc, "duplicate variable '" + P->Name + "' in pattern");
    bindValue(P->Name, TypeScheme{{}, Expected});
    break;
  }
  case PatternKind::Int:
    unifyOrError(Expected, Ctx.intTy(), P->Loc, "in integer pattern");
    break;
  case PatternKind::Bool:
    unifyOrError(Expected, Ctx.boolTy(), P->Loc, "in boolean pattern");
    break;
  case PatternKind::Tuple: {
    if (P->Elems.empty()) {
      unifyOrError(Expected, Ctx.unitTy(), P->Loc, "in unit pattern");
      break;
    }
    std::vector<Type *> Elems;
    for (size_t I = 0; I < P->Elems.size(); ++I)
      Elems.push_back(Ctx.freshVar(Level));
    Type *TupleTy = P->Elems.size() == 1 ? Elems[0] : Ctx.makeTuple(Elems);
    unifyOrError(Expected, TupleTy, P->Loc, "in tuple pattern");
    for (size_t I = 0; I < P->Elems.size(); ++I)
      bindPattern(P->Elems[I].get(), Elems[I], Seen);
    break;
  }
  case PatternKind::Ctor: {
    auto [DataInfo, CtorIdx] = Ctx.lookupCtor(P->Name);
    if (!DataInfo) {
      Diags.error(P->Loc, "unknown constructor '" + P->Name + "'");
      break;
    }
    std::vector<Type *> TypeArgs;
    for (size_t I = 0; I < DataInfo->Params.size(); ++I)
      TypeArgs.push_back(Ctx.freshVar(Level));
    unifyOrError(Expected, Ctx.makeData(DataInfo, TypeArgs), P->Loc,
                 "in constructor pattern");
    std::vector<Type *> Fields =
        Ctx.instantiateCtorFields(DataInfo, CtorIdx, TypeArgs);
    if (Fields.size() != P->Elems.size()) {
      Diags.error(P->Loc, "constructor '" + P->Name + "' expects " +
                              std::to_string(Fields.size()) + " argument(s)");
      break;
    }
    for (size_t I = 0; I < Fields.size(); ++I)
      bindPattern(P->Elems[I].get(), Fields[I], Seen);
    Info.CtorRefs[P] = ResolvedCtor{DataInfo, CtorIdx, std::move(TypeArgs)};
    break;
  }
  }
  if (P->Annot)
    unifyOrError(Expected, convertTypeAst(P->Annot.get()), P->Loc,
                 "with pattern annotation");
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Type *TypeChecker::inferExpr(Expr *E) {
  Type *Ty = Ctx.unitTy();
  switch (E->getKind()) {
  case ExprKind::Int:
    Ty = Ctx.intTy();
    break;
  case ExprKind::Float:
    Ty = Ctx.floatTy();
    break;
  case ExprKind::Bool:
    Ty = Ctx.boolTy();
    break;
  case ExprKind::Unit:
    Ty = Ctx.unitTy();
    break;
  case ExprKind::Var: {
    auto *V = cast<VarExpr>(E);
    const TypeScheme *S = lookupValue(V->Name);
    if (!S) {
      // `real` is the only builtin value: int -> float.
      if (V->Name == "real") {
        Ty = Ctx.makeFun({Ctx.intTy()}, Ctx.floatTy());
        break;
      }
      Diags.error(V->Loc, "unbound variable '" + V->Name + "'");
      Ty = Ctx.freshVar(Level);
      break;
    }
    Ty = Ctx.instantiate(*S, Level);
    break;
  }
  case ExprKind::Ctor: {
    auto *C = cast<CtorExpr>(E);
    auto [DataInfo, CtorIdx] = Ctx.lookupCtor(C->Name);
    if (!DataInfo) {
      Diags.error(C->Loc, "unknown constructor '" + C->Name + "'");
      Ty = Ctx.freshVar(Level);
      break;
    }
    std::vector<Type *> TypeArgs;
    for (size_t I = 0; I < DataInfo->Params.size(); ++I)
      TypeArgs.push_back(Ctx.freshVar(Level));
    std::vector<Type *> Fields =
        Ctx.instantiateCtorFields(DataInfo, CtorIdx, TypeArgs);
    if (Fields.size() != C->Args.size()) {
      Diags.error(C->Loc, "constructor '" + C->Name + "' expects " +
                              std::to_string(Fields.size()) +
                              " argument(s), got " +
                              std::to_string(C->Args.size()));
    } else {
      for (size_t I = 0; I < Fields.size(); ++I)
        unifyOrError(inferExpr(C->Args[I].get()), Fields[I],
                     C->Args[I]->Loc, "in constructor argument");
    }
    Info.CtorRefs[C] = ResolvedCtor{DataInfo, CtorIdx, TypeArgs};
    Ty = Ctx.makeData(DataInfo, std::move(TypeArgs));
    break;
  }
  case ExprKind::Tuple: {
    auto *T = cast<TupleExpr>(E);
    std::vector<Type *> Elems;
    for (ExprPtr &El : T->Elems)
      Elems.push_back(inferExpr(El.get()));
    Ty = Ctx.makeTuple(std::move(Elems));
    break;
  }
  case ExprKind::If: {
    auto *I = cast<IfExpr>(E);
    unifyOrError(inferExpr(I->Cond.get()), Ctx.boolTy(), I->Cond->Loc,
                 "in if condition");
    Type *ThenTy = inferExpr(I->Then.get());
    Type *ElseTy = inferExpr(I->Else.get());
    unifyOrError(ThenTy, ElseTy, I->Loc, "between if branches");
    Ty = ThenTy;
    break;
  }
  case ExprKind::Let: {
    auto *L = cast<LetExpr>(E);
    pushScope();
    for (DeclPtr &D : L->Decls)
      checkDecl(D.get());
    Ty = inferExpr(L->Body.get());
    popScope();
    break;
  }
  case ExprKind::Fn: {
    auto *F = cast<FnExpr>(E);
    pushScope();
    Type *ParamTy = Ctx.freshVar(Level);
    std::unordered_set<std::string> Seen;
    bindPattern(F->Param.get(), ParamTy, Seen);
    Type *BodyTy = inferExpr(F->Body.get());
    popScope();
    Ty = Ctx.makeFun({ParamTy}, BodyTy);
    break;
  }
  case ExprKind::App: {
    auto *A = cast<AppExpr>(E);
    Type *FnTy = inferExpr(A->Fn.get());
    std::vector<Type *> ArgTys;
    for (ExprPtr &Arg : A->Args)
      ArgTys.push_back(inferExpr(Arg.get()));
    Type *ResTy = Ctx.freshVar(Level);
    Type *Expected = Ctx.makeFun(std::move(ArgTys), ResTy);
    if (!Ctx.unify(FnTy, Expected)) {
      Diags.error(A->Loc,
                  "cannot apply value of type " + Ctx.render(FnTy) + " to " +
                      std::to_string(A->Args.size()) +
                      " argument(s) of type " + Ctx.render(Expected) +
                      " (note: MiniML functions are uncurried; partial "
                      "application is not supported)");
    }
    Ty = ResTy;
    break;
  }
  case ExprKind::Prim:
    Ty = inferPrim(cast<PrimExpr>(E));
    break;
  case ExprKind::Case: {
    auto *C = cast<CaseExpr>(E);
    Type *ScrutTy = inferExpr(C->Scrut.get());
    Type *ResTy = Ctx.freshVar(Level);
    for (CaseClause &Cl : C->Clauses) {
      pushScope();
      std::unordered_set<std::string> Seen;
      bindPattern(Cl.Pat.get(), ScrutTy, Seen);
      unifyOrError(inferExpr(Cl.Body.get()), ResTy, Cl.Body->Loc,
                   "between case clauses");
      popScope();
    }
    checkExhaustiveness(C, ScrutTy);
    Ty = ResTy;
    break;
  }
  case ExprKind::Seq: {
    auto *S = cast<SeqExpr>(E);
    for (ExprPtr &El : S->Elems)
      Ty = inferExpr(El.get());
    break;
  }
  case ExprKind::Annot: {
    auto *A = cast<AnnotExpr>(E);
    Ty = inferExpr(A->Body.get());
    unifyOrError(Ty, convertTypeAst(A->Annot.get()), A->Loc,
                 "with type annotation");
    break;
  }
  }
  E->Ty = Ty;
  return Ty;
}

Type *TypeChecker::inferPrim(PrimExpr *E) {
  auto Check = [&](unsigned Index, Type *Expected) {
    unifyOrError(inferExpr(E->Args[Index].get()), Expected,
                 E->Args[Index]->Loc, "in operator argument");
  };
  switch (E->Op) {
  case PrimOp::Add:
  case PrimOp::Sub:
  case PrimOp::Mul:
  case PrimOp::Div:
  case PrimOp::Mod:
    Check(0, Ctx.intTy());
    Check(1, Ctx.intTy());
    return Ctx.intTy();
  case PrimOp::Neg:
    Check(0, Ctx.intTy());
    return Ctx.intTy();
  case PrimOp::Lt:
  case PrimOp::Le:
  case PrimOp::Gt:
  case PrimOp::Ge:
  case PrimOp::Eq:
  case PrimOp::Ne:
    Check(0, Ctx.intTy());
    Check(1, Ctx.intTy());
    return Ctx.boolTy();
  case PrimOp::Not:
    Check(0, Ctx.boolTy());
    return Ctx.boolTy();
  case PrimOp::FAdd:
  case PrimOp::FSub:
  case PrimOp::FMul:
  case PrimOp::FDiv:
    Check(0, Ctx.floatTy());
    Check(1, Ctx.floatTy());
    return Ctx.floatTy();
  case PrimOp::FNeg:
    Check(0, Ctx.floatTy());
    return Ctx.floatTy();
  case PrimOp::FLt:
  case PrimOp::FEq:
    Check(0, Ctx.floatTy());
    Check(1, Ctx.floatTy());
    return Ctx.boolTy();
  case PrimOp::IntToFloat:
    Check(0, Ctx.intTy());
    return Ctx.floatTy();
  case PrimOp::Print:
    Check(0, Ctx.intTy());
    return Ctx.unitTy();
  case PrimOp::RefNew: {
    Type *ElemTy = inferExpr(E->Args[0].get());
    return Ctx.makeRef(ElemTy);
  }
  case PrimOp::RefGet: {
    Type *ElemTy = Ctx.freshVar(Level);
    Check(0, Ctx.makeRef(ElemTy));
    return ElemTy;
  }
  case PrimOp::RefSet: {
    Type *ElemTy = Ctx.freshVar(Level);
    Check(0, Ctx.makeRef(ElemTy));
    Check(1, ElemTy);
    return Ctx.unitTy();
  }
  }
  return Ctx.unitTy();
}

//===----------------------------------------------------------------------===//
// Exhaustiveness (shallow, warnings only)
//===----------------------------------------------------------------------===//

/// True if \p P matches every value of its type: wildcards, variables,
/// tuples of irrefutable patterns, and single-constructor datatypes with
/// irrefutable arguments.
static bool isIrrefutable(const Pattern *P, TypeContext &Ctx) {
  switch (P->Kind) {
  case PatternKind::Wild:
  case PatternKind::Var:
    return true;
  case PatternKind::Int:
  case PatternKind::Bool:
    return false;
  case PatternKind::Tuple: {
    for (const PatternPtr &E : P->Elems)
      if (!isIrrefutable(E.get(), Ctx))
        return false;
    return true;
  }
  case PatternKind::Ctor: {
    auto [Info, Idx] = Ctx.lookupCtor(P->Name);
    (void)Idx;
    if (!Info || Info->Ctors.size() != 1)
      return false;
    for (const PatternPtr &E : P->Elems)
      if (!isIrrefutable(E.get(), Ctx))
        return false;
    return true;
  }
  }
  return false;
}

void TypeChecker::checkExhaustiveness(const CaseExpr *C, Type *ScrutTy) {
  std::unordered_set<std::string> CoveredCtors;
  bool CoversTrue = false, CoversFalse = false;
  for (const CaseClause &Cl : C->Clauses) {
    const Pattern *P = Cl.Pat.get();
    if (isIrrefutable(P, Ctx))
      return; // A catch-all clause exists.
    if (P->Kind == PatternKind::Ctor) {
      // Count only shallowly complete arms (all sub-patterns irrefutable).
      bool Complete = true;
      for (const PatternPtr &E : P->Elems)
        if (!isIrrefutable(E.get(), Ctx))
          Complete = false;
      if (Complete)
        CoveredCtors.insert(P->Name);
    } else if (P->Kind == PatternKind::Bool) {
      (P->BoolValue ? CoversTrue : CoversFalse) = true;
    }
  }

  Type *T = ScrutTy->resolved();
  if (T->getKind() == TypeKind::Data) {
    std::string Missing;
    for (const CtorInfo &Ctor : T->data()->Ctors)
      if (!CoveredCtors.count(Ctor.Name))
        Missing += (Missing.empty() ? "" : ", ") + Ctor.Name;
    if (!Missing.empty())
      Diags.warning(C->Loc,
                    "match may be non-exhaustive; unhandled: " + Missing);
    return;
  }
  if (T->getKind() == TypeKind::Bool) {
    if (!CoversTrue || !CoversFalse)
      Diags.warning(C->Loc, "match may be non-exhaustive; unhandled: " +
                                std::string(!CoversTrue ? "true" : "false"));
    return;
  }
  // Int and friends: literals can never cover the domain.
  Diags.warning(C->Loc, "match may be non-exhaustive; add a catch-all");
}

//===----------------------------------------------------------------------===//
// Finalization (defaulting of leftover free vars)
//===----------------------------------------------------------------------===//

void TypeChecker::finalizeExpr(Expr *E) {
  if (E->Ty)
    Ctx.defaultFreeVars(E->Ty);
  switch (E->getKind()) {
  case ExprKind::Int:
  case ExprKind::Float:
  case ExprKind::Bool:
  case ExprKind::Unit:
  case ExprKind::Var:
    break;
  case ExprKind::Ctor:
    for (ExprPtr &A : cast<CtorExpr>(E)->Args)
      finalizeExpr(A.get());
    break;
  case ExprKind::Tuple:
    for (ExprPtr &A : cast<TupleExpr>(E)->Elems)
      finalizeExpr(A.get());
    break;
  case ExprKind::If: {
    auto *I = cast<IfExpr>(E);
    finalizeExpr(I->Cond.get());
    finalizeExpr(I->Then.get());
    finalizeExpr(I->Else.get());
    break;
  }
  case ExprKind::Let: {
    auto *L = cast<LetExpr>(E);
    for (DeclPtr &D : L->Decls)
      finalizeDecl(D.get());
    finalizeExpr(L->Body.get());
    break;
  }
  case ExprKind::Fn: {
    auto *F = cast<FnExpr>(E);
    finalizePattern(F->Param.get());
    finalizeExpr(F->Body.get());
    break;
  }
  case ExprKind::App: {
    auto *A = cast<AppExpr>(E);
    finalizeExpr(A->Fn.get());
    for (ExprPtr &Arg : A->Args)
      finalizeExpr(Arg.get());
    break;
  }
  case ExprKind::Prim:
    for (ExprPtr &A : cast<PrimExpr>(E)->Args)
      finalizeExpr(A.get());
    break;
  case ExprKind::Case: {
    auto *C = cast<CaseExpr>(E);
    finalizeExpr(C->Scrut.get());
    for (CaseClause &Cl : C->Clauses) {
      finalizePattern(Cl.Pat.get());
      finalizeExpr(Cl.Body.get());
    }
    break;
  }
  case ExprKind::Seq:
    for (ExprPtr &A : cast<SeqExpr>(E)->Elems)
      finalizeExpr(A.get());
    break;
  case ExprKind::Annot:
    finalizeExpr(cast<AnnotExpr>(E)->Body.get());
    break;
  }
}

void TypeChecker::finalizePattern(Pattern *P) {
  if (P->Ty)
    Ctx.defaultFreeVars(P->Ty);
  for (PatternPtr &E : P->Elems)
    finalizePattern(E.get());
}

void TypeChecker::finalizeDecl(Decl *D) {
  switch (D->Kind) {
  case DeclKind::Datatype:
    break;
  case DeclKind::Fun:
    for (FunBind &B : D->Binds) {
      for (PatternPtr &P : B.Params)
        finalizePattern(P.get());
      finalizeExpr(B.Body.get());
    }
    break;
  case DeclKind::Val:
    if (D->Pat)
      finalizePattern(D->Pat.get());
    if (D->Init)
      finalizeExpr(D->Init.get());
    break;
  }
}
