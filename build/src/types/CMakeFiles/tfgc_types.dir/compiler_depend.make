# Empty compiler generated dependencies file for tfgc_types.
# This may be replaced when dependencies are built.
