//===- tests/heap_profile_test.cpp - Heap profiler tests ------------------===//
///
/// Covers the tag-free heap profiler: the snapshot invariant (per-kind
/// bytes sum to the bytes the collection covered, per-site tallies sum to
/// the same totals) under post-GC verification for every strategy and
/// algorithm, visit totals against the collector's own counters, site
/// attribution surviving semispace flips and promotion, the generational
/// nursery/tenured split, retention diagnostics, and the snapshot JSON.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "support/HeapProfile.h"
#include "workloads/Programs.h"

#include <algorithm>
#include <sstream>

using namespace tfgc;
using namespace tfgc::test;
namespace wl = tfgc::workloads;

namespace {

struct ProfiledRun {
  Stats St;
  std::unique_ptr<CompiledProgram> P;
  std::unique_ptr<Collector> Col;
  HeapProfiler Prof;
};

/// Runs \p Source with the profiler attached (and optionally post-GC
/// verification and retention) under stress so collections are frequent.
std::unique_ptr<ProfiledRun>
runProfiled(const std::string &Source, GcStrategy S,
            GcAlgorithm A = GcAlgorithm::Copying, size_t HeapBytes = 1 << 14,
            bool Verify = false, unsigned Retainers = 0,
            size_t NurseryBytes = 0) {
  auto R = std::make_unique<ProfiledRun>();
  Compiled C = compile(Source);
  EXPECT_TRUE(C.P) << C.Error;
  if (!C.P)
    return nullptr;
  R->P = std::move(C.P);
  std::string Error;
  R->Col =
      R->P->makeCollector(S, A, HeapBytes, R->St, &Error, NurseryBytes);
  EXPECT_TRUE(R->Col) << Error;
  if (!R->Col)
    return nullptr;
  R->Col->setVerifyAfterGc(Verify);
  attachHeapProfiler(*R->P, S, *R->Col, R->Prof);
  R->Prof.setRetainers(Retainers);
  Vm M(R->P->Prog, R->P->Image, *R->P->Types, *R->Col,
       defaultVmOptions(S, /*GcStress=*/true));
  RunResult Run = M.run();
  EXPECT_TRUE(Run.Ok) << Run.Error << " under " << gcStrategyName(S);
  return R;
}

uint64_t siteObjects(const HeapProfiler::Snapshot &Snap) {
  uint64_t N = 0;
  for (const HeapProfiler::Tally &T : Snap.BySite)
    N += T.Objects;
  return N;
}

uint64_t siteWords(const HeapProfiler::Snapshot &Snap) {
  uint64_t N = 0;
  for (const HeapProfiler::Tally &T : Snap.BySite)
    N += T.Words;
  return N;
}

void expectSnapshotInvariant(const HeapProfiler &Prof, const char *Label) {
  const HeapProfiler::Snapshot &Snap = Prof.snapshot();
  ASSERT_TRUE(Snap.Valid) << Label << ": no collection ran";
  EXPECT_EQ(Snap.kindBytes(), Snap.CoveredBytes) << Label;
  EXPECT_EQ(Snap.Words * sizeof(Word), Snap.CoveredBytes) << Label;
  ASSERT_EQ(Snap.BySite.size(), Prof.numSites() + 1) << Label;
  EXPECT_EQ(siteObjects(Snap), Snap.Objects) << Label;
  EXPECT_EQ(siteWords(Snap), Snap.Words) << Label;
  // Every allocation goes through a lowered site, so nothing should land
  // in the unknown bucket.
  EXPECT_EQ(Snap.BySite.back().Objects, 0u) << Label << ": unknown bucket";
}

TEST(HeapProfile, SnapshotInvariantEveryStrategyAndAlgorithmUnderVerify) {
  // The core guarantee: after any collection, attributing every visited
  // object to a reconstructed kind and an allocation site loses nothing —
  // the per-kind bytes are exactly the bytes the collection covered, the
  // per-site tallies are exactly the visit totals — and the verify pass
  // (which re-runs the tracers) does not double-count.
  for (GcStrategy S : AllStrategies)
    for (GcAlgorithm A : AllAlgorithms) {
      std::string Label = std::string(gcStrategyName(S)) + "/" +
                          gcAlgorithmName(A);
      auto R =
          runProfiled(wl::listChurn(30, 10), S, A, 1 << 14,
                      /*Verify=*/true, /*Retainers=*/0,
                      A == GcAlgorithm::Generational ? 1 << 12 : 0);
      ASSERT_TRUE(R) << Label;
      EXPECT_EQ(R->St.get(StatId::GcVerifyViolations), 0u) << Label;
      EXPECT_GT(R->St.get(StatId::GcCollections), 0u) << Label;
      expectSnapshotInvariant(R->Prof, Label.c_str());
    }
}

TEST(HeapProfile, VisitTotalsMatchGcCounters) {
  // Without verification, the profiler's first-visit hook fires exactly
  // when the collector's gc.objects_visited counter increments.
  for (GcStrategy S : AllStrategies) {
    auto R = runProfiled(wl::listChurn(30, 10), S);
    ASSERT_TRUE(R);
    EXPECT_EQ(R->Prof.visitObjectsTotal(),
              R->St.get(StatId::GcObjectsVisited))
        << gcStrategyName(S);
  }
}

TEST(HeapProfile, VerifyPassIsExcludedFromProfile) {
  // The verify pass re-traces the heap, inflating gc.objects_visited past
  // the profiler's totals — the profiler is paused for it, so snapshot
  // tallies stay single-counted.
  auto R = runProfiled(wl::listChurn(30, 10), GcStrategy::CompiledTagFree,
                       GcAlgorithm::Copying, 1 << 14, /*Verify=*/true);
  ASSERT_TRUE(R);
  EXPECT_LT(R->Prof.visitObjectsTotal(),
            R->St.get(StatId::GcObjectsVisited));
  expectSnapshotInvariant(R->Prof, "verify-paused");
}

TEST(HeapProfile, SiteAttributionSurvivesPromotion) {
  // Generational run with a long-lived retained list: objects move
  // nursery -> survivor -> tenured, and across a major the whole tenured
  // space compacts. The side table must follow every move — if it lost an
  // object, the unknown bucket would catch its next visit.
  auto R = runProfiled(wl::generationalChurn(60, 10, 120),
                       GcStrategy::CompiledTagFree,
                       GcAlgorithm::Generational, 1 << 16,
                       /*Verify=*/true, /*Retainers=*/0,
                       /*NurseryBytes=*/1 << 12);
  ASSERT_TRUE(R);
  expectSnapshotInvariant(R->Prof, "generational");
  const HeapProfiler::Snapshot &Snap = R->Prof.snapshot();
  EXPECT_TRUE(Snap.HasGenSplit);
  EXPECT_EQ(Snap.Nursery.Objects + Snap.Tenured.Objects, Snap.Objects);
  EXPECT_EQ(Snap.Nursery.Words + Snap.Tenured.Words, Snap.Words);
  // The same invariant held for the tagged model's generational heap in
  // the all-combinations test; here additionally check attribution depth:
  // allocation counts were recorded for at least one real site.
  EXPECT_GT(R->Prof.allocTotal(), 0u);
  bool AnySite = false;
  for (uint32_t I = 0; I < R->Prof.numSites(); ++I)
    AnySite = AnySite || R->Prof.allocCount(I) > 0;
  EXPECT_TRUE(AnySite);
}

TEST(HeapProfile, RetentionReportsDominators) {
  // generationalChurn retains a list for the whole run; under the plain
  // copying algorithm every collection is a full one, so the last
  // snapshot's retention pass sees that list rooted in a frame slot.
  auto R = runProfiled(wl::generationalChurn(100, 10, 30),
                       GcStrategy::CompiledTagFree, GcAlgorithm::Copying,
                       1 << 14, /*Verify=*/true, /*Retainers=*/5);
  ASSERT_TRUE(R);
  const HeapProfiler::Snapshot &Snap = R->Prof.snapshot();
  ASSERT_TRUE(Snap.Valid);
  ASSERT_TRUE(Snap.RetainersComputed);
  ASSERT_FALSE(Snap.Retainers.empty());
  EXPECT_LE(Snap.Retainers.size(), 5u);
  uint64_t Prev = ~0ull;
  for (const RetainerInfo &RI : Snap.Retainers) {
    EXPECT_GE(RI.RetainedBytes, RI.SelfBytes);
    EXPECT_LE(RI.RetainedBytes, Prev); // Ranked by retained size.
    EXPECT_FALSE(RI.Path.empty());
    Prev = RI.RetainedBytes;
  }
  // The top dominator retains at most the whole covered heap.
  EXPECT_LE(Snap.Retainers.front().RetainedBytes, Snap.CoveredBytes);
}

TEST(HeapProfile, MinorCollectionsSkipRetention) {
  // A minor collection's object list covers the young generation only;
  // dominator math over it would misattribute, so it is skipped.
  auto R = runProfiled(wl::generationalChurn(60, 10, 120),
                       GcStrategy::CompiledTagFree,
                       GcAlgorithm::Generational, 1 << 16,
                       /*Verify=*/false, /*Retainers=*/5,
                       /*NurseryBytes=*/1 << 12);
  ASSERT_TRUE(R);
  const HeapProfiler::Snapshot &Snap = R->Prof.snapshot();
  ASSERT_TRUE(Snap.Valid);
  if (Snap.Kind == GcEventKind::Minor)
    EXPECT_FALSE(Snap.RetainersComputed);
  else
    EXPECT_TRUE(Snap.RetainersComputed);
}

TEST(HeapProfile, SnapshotJsonContainsSchemaAndTallies) {
  auto R = runProfiled(wl::listChurn(30, 10), GcStrategy::CompiledTagFree,
                       GcAlgorithm::Copying, 1 << 14, /*Verify=*/false,
                       /*Retainers=*/3);
  ASSERT_TRUE(R);
  R->Prof.setLabel("test/copying");
  std::ostringstream OS;
  R->Prof.writeSnapshotJson(OS);
  std::string J = OS.str();
  EXPECT_NE(J.find("\"schema\": 1"), std::string::npos);
  EXPECT_NE(J.find("\"tool\": \"tfgc-heap-profile\""), std::string::npos);
  EXPECT_NE(J.find("\"label\": \"test/copying\""), std::string::npos);
  EXPECT_NE(J.find("\"valid\": true"), std::string::npos);
  EXPECT_NE(J.find("\"by_kind\""), std::string::npos);
  EXPECT_NE(J.find("\"by_site\""), std::string::npos);
  EXPECT_NE(J.find("\"alloc_sites\""), std::string::npos);
  EXPECT_NE(J.find("\"retainers\""), std::string::npos);
  // Braces and brackets balance (cheap structural sanity; the Python
  // reporter in tools/heap_report.py parses the real thing in CI).
  EXPECT_EQ(std::count(J.begin(), J.end(), '{'),
            std::count(J.begin(), J.end(), '}'));
  EXPECT_EQ(std::count(J.begin(), J.end(), '['),
            std::count(J.begin(), J.end(), ']'));
}

TEST(HeapProfile, DisabledProfilerIsInert) {
  // Without attachHeapProfiler the collector's hook pointer is null and a
  // default-constructed profiler records nothing.
  HeapProfiler Prof;
  Prof.recordAlloc(0, 0x1000);
  Prof.recordVisit(0x1000, 0x2000, CensusKind::Tuple, 2);
  EXPECT_EQ(Prof.allocTotal(), 0u);
  EXPECT_EQ(Prof.visitObjectsTotal(), 0u);
  EXPECT_FALSE(Prof.snapshot().Valid);
}

} // namespace
