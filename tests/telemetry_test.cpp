//===- tests/telemetry_test.cpp - Telemetry layer tests ------------------===//
///
/// Covers the GC telemetry layer: log-histogram bucket boundaries and
/// percentile math, ring-buffer wraparound, the census-equals-counters
/// invariant on a real workload under every strategy, phase-span
/// partitioning of the pause, and the validity of the Chrome-trace and
/// stats-JSON exports (parsed back with a tiny JSON parser below).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "support/Telemetry.h"
#include "workloads/Programs.h"

#include <sstream>

using namespace tfgc;
using namespace tfgc::test;
namespace wl = tfgc::workloads;

namespace {

// JSON syntax validation comes from TestUtil.h (tfgc::test::validJson),
// shared with the monitor stream tests.

//===----------------------------------------------------------------------===//
// LogHistogram
//===----------------------------------------------------------------------===//

TEST(LogHistogram, BucketBoundaries) {
  // Bucket 0 holds zeros; bucket k >= 1 holds [2^(k-1), 2^k - 1].
  EXPECT_EQ(LogHistogram::bucketIndex(0), 0u);
  EXPECT_EQ(LogHistogram::bucketIndex(1), 1u);
  EXPECT_EQ(LogHistogram::bucketIndex(2), 2u);
  EXPECT_EQ(LogHistogram::bucketIndex(3), 2u);
  EXPECT_EQ(LogHistogram::bucketIndex(4), 3u);
  EXPECT_EQ(LogHistogram::bucketIndex(7), 3u);
  EXPECT_EQ(LogHistogram::bucketIndex(8), 4u);
  EXPECT_EQ(LogHistogram::bucketIndex(255), 8u);
  EXPECT_EQ(LogHistogram::bucketIndex(256), 9u);
  EXPECT_EQ(LogHistogram::bucketIndex(UINT64_MAX), 64u);

  for (size_t I = 1; I < LogHistogram::NumBuckets; ++I) {
    // Every bucket's bounds round-trip through bucketIndex.
    EXPECT_EQ(LogHistogram::bucketIndex(LogHistogram::bucketLo(I)), I);
    EXPECT_EQ(LogHistogram::bucketIndex(LogHistogram::bucketHi(I)), I);
    EXPECT_LE(LogHistogram::bucketLo(I), LogHistogram::bucketHi(I));
    if (I > 1) // Buckets tile the axis with no gap or overlap.
      EXPECT_EQ(LogHistogram::bucketLo(I), LogHistogram::bucketHi(I - 1) + 1);
  }
  EXPECT_EQ(LogHistogram::bucketLo(0), 0u);
  EXPECT_EQ(LogHistogram::bucketHi(0), 0u);
  EXPECT_EQ(LogHistogram::bucketHi(64), UINT64_MAX);
}

TEST(LogHistogram, RecordAndAggregates) {
  LogHistogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_EQ(H.percentile(50), 0u);

  for (uint64_t V : {0ull, 1ull, 1ull, 2ull, 3ull, 8ull, 100ull})
    H.record(V);
  EXPECT_EQ(H.count(), 7u);
  EXPECT_EQ(H.sum(), 115u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 100u);
  EXPECT_EQ(H.bucketCount(0), 1u); // 0
  EXPECT_EQ(H.bucketCount(1), 2u); // 1, 1
  EXPECT_EQ(H.bucketCount(2), 2u); // 2, 3
  EXPECT_EQ(H.bucketCount(4), 1u); // 8
  EXPECT_EQ(H.bucketCount(7), 1u); // 100
}

TEST(LogHistogram, PercentileMath) {
  LogHistogram H;
  for (uint64_t V : {0ull, 1ull, 1ull, 2ull, 3ull, 8ull, 100ull})
    H.record(V);
  // N = 7. p50 -> rank ceil(3.5) = 4, which lands in bucket 2 (values
  // {2, 3} occupy ranks 4-5): upper bound 3.
  EXPECT_EQ(H.percentile(50), 3u);
  // p90 -> rank ceil(6.3) = 7: the 100 sample, bucket 7 with upper bound
  // 127, clamped to the observed max.
  EXPECT_EQ(H.percentile(90), 100u);
  EXPECT_EQ(H.percentile(99), 100u);
  EXPECT_EQ(H.percentile(100), 100u);
  // p0 clamps the rank to 1: the zero sample.
  EXPECT_EQ(H.percentile(0), 0u);

  // Single sample: every percentile is that sample (bucket hi clamped to
  // the max, which is the sample itself).
  LogHistogram One;
  One.record(5);
  for (double P : {0.0, 50.0, 99.0, 100.0})
    EXPECT_EQ(One.percentile(P), 5u);

  H.clear();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.percentile(99), 0u);
}

//===----------------------------------------------------------------------===//
// Ring buffer
//===----------------------------------------------------------------------===//

TEST(Telemetry, RingKeepsNewest) {
  Telemetry T(4);
  EXPECT_EQ(T.ringCapacity(), 4u);
  for (uint64_t I = 0; I < 10; ++I) {
    T.beginCollection();
    EXPECT_TRUE(T.inCollection());
    T.finishCollection(/*LiveWordsAfter=*/I, /*HeapCapacityBytesAfter=*/64);
    EXPECT_FALSE(T.inCollection());
  }
  EXPECT_EQ(T.collections(), 10u);
  EXPECT_EQ(T.ringSize(), 4u);
  // Oldest-first: collections 6..9 survive.
  for (size_t I = 0; I < 4; ++I) {
    EXPECT_EQ(T.event(I).Seq, 6u + I);
    EXPECT_EQ(T.event(I).LiveWordsAfter, 6u + I);
  }
  // Aggregates still cover all ten collections.
  EXPECT_EQ(T.pauseHistogram().count(), 10u);
}

TEST(Telemetry, RingBeforeWraparound) {
  Telemetry T(8);
  for (uint64_t I = 0; I < 3; ++I) {
    T.beginCollection();
    T.finishCollection(0, 0);
  }
  EXPECT_EQ(T.collections(), 3u);
  EXPECT_EQ(T.ringSize(), 3u);
  for (size_t I = 0; I < 3; ++I)
    EXPECT_EQ(T.event(I).Seq, I);
}

TEST(Telemetry, PhaseSwitchIgnoredOutsideCollectionAndWhilePaused) {
  Telemetry T(4);
  // Outside a collection: no phase opens.
  T.switchPhase(GcPhase::CopySweep);
  EXPECT_EQ(T.currentPhase(), GcPhase::NumPhases);

  T.beginCollection();
  { PhaseScope S(&T, GcPhase::RootScan); }
  T.setPaused(true);
  // While paused, PhaseScope declines to switch and census is ignored.
  {
    PhaseScope S(&T, GcPhase::Verify);
    EXPECT_NE(T.currentPhase(), GcPhase::Verify);
  }
  T.census(CensusKind::Tuple, 3);
  T.setPaused(false);
  T.census(CensusKind::Tuple, 2);
  T.finishCollection(0, 0);
  EXPECT_EQ(T.censusObjectsTotal(CensusKind::Tuple), 1u);
  EXPECT_EQ(T.censusWordsTotal(CensusKind::Tuple), 2u);
}

//===----------------------------------------------------------------------===//
// Census == visit counters; phases partition the pause
//===----------------------------------------------------------------------===//

/// Runs \p Source under \p S with GC stress on a small heap and returns
/// the collector for telemetry inspection.
struct TelemetryRun {
  Stats St;
  std::unique_ptr<CompiledProgram> P;
  std::unique_ptr<Collector> Col;
};

TelemetryRun runWithTelemetry(const std::string &Source, GcStrategy S,
                              GcAlgorithm A = GcAlgorithm::Copying,
                              size_t HeapBytes = 1 << 14) {
  TelemetryRun R;
  Compiled C = compile(Source);
  EXPECT_TRUE(C.P) << C.Error;
  if (!C.P)
    return R;
  R.P = std::move(C.P);
  std::string Error;
  R.Col = R.P->makeCollector(S, A, HeapBytes, R.St, &Error);
  EXPECT_TRUE(R.Col) << Error;
  if (!R.Col)
    return R;
  Vm M(R.P->Prog, R.P->Image, *R.P->Types, *R.Col,
       defaultVmOptions(S, /*GcStress=*/true));
  RunResult Run = M.run();
  EXPECT_TRUE(Run.Ok) << Run.Error << " under " << gcStrategyName(S);
  return R;
}

TEST(Telemetry, CensusMatchesVisitCounters) {
  // With post-GC verification off (the default), the census increments
  // mirror the gc.objects_visited / gc.words_visited increments exactly,
  // for every strategy.
  for (GcStrategy S : AllStrategies) {
    TelemetryRun R = runWithTelemetry(wl::listChurn(40, 20), S);
    ASSERT_TRUE(R.Col);
    Telemetry &T = R.Col->telemetry();
    EXPECT_GT(T.collections(), 0u) << gcStrategyName(S);
    EXPECT_EQ(T.collections(), R.St.get(StatId::GcCollections))
        << gcStrategyName(S);
    EXPECT_EQ(T.censusObjectsTotal(), R.St.get(StatId::GcObjectsVisited))
        << gcStrategyName(S);
    EXPECT_EQ(T.censusWordsTotal(), R.St.get(StatId::GcWordsVisited))
        << gcStrategyName(S);
  }
}

TEST(Telemetry, CensusMatchesVisitCountersMarkSweep) {
  TelemetryRun R = runWithTelemetry(wl::binaryTrees(6, 4),
                                    GcStrategy::CompiledTagFree,
                                    GcAlgorithm::MarkSweep);
  ASSERT_TRUE(R.Col);
  Telemetry &T = R.Col->telemetry();
  EXPECT_GT(T.collections(), 0u);
  EXPECT_EQ(T.censusObjectsTotal(), R.St.get(StatId::GcObjectsVisited));
  EXPECT_EQ(T.censusWordsTotal(), R.St.get(StatId::GcWordsVisited));
  // A tree workload is all datatype values: the census sees only Data.
  EXPECT_GT(T.censusObjectsTotal(CensusKind::Data), 0u);
  EXPECT_EQ(T.censusObjectsTotal(CensusKind::TaggedScan), 0u);
}

TEST(Telemetry, PhaseSpansPartitionThePause) {
  TelemetryRun R =
      runWithTelemetry(wl::listChurn(40, 20), GcStrategy::CompiledTagFree);
  ASSERT_TRUE(R.Col);
  Telemetry &T = R.Col->telemetry();
  ASSERT_GT(T.collections(), 0u);

  // Per event: the switch-clock reads nest strictly inside
  // [beginCollection, finishCollection], so phase time never exceeds the
  // pause.
  for (size_t I = 0; I < T.ringSize(); ++I) {
    const GcEvent &E = T.event(I);
    EXPECT_LE(E.phaseNsSum(), E.PauseNs) << "event " << I;
  }

  // In aggregate the spans cover the pause up to a few instructions of
  // slack per collection (the acceptance bound for the CLI trace is 5%;
  // allow more headroom here for loaded CI machines).
  uint64_t PhaseSum = 0;
  for (size_t P = 0; P < NumGcPhases; ++P)
    PhaseSum += T.phaseNsTotal((GcPhase)P);
  EXPECT_LE(PhaseSum, T.pauseNsTotal());
  EXPECT_GE((double)PhaseSum, 0.80 * (double)T.pauseNsTotal());

  // The stress workload exercises every tag-free phase.
  EXPECT_GT(T.phaseNsTotal(GcPhase::RootScan), 0u);
  EXPECT_GT(T.phaseHistogram(GcPhase::FrameDispatch).count(), 0u);
  // Verification was off: the verify phase saw nothing.
  EXPECT_EQ(T.phaseNsTotal(GcPhase::Verify), 0u);
}

TEST(Telemetry, PercentileStatsPublished) {
  TelemetryRun R =
      runWithTelemetry(wl::listChurn(40, 20), GcStrategy::CompiledTagFree);
  ASSERT_TRUE(R.Col);
  Telemetry &T = R.Col->telemetry();
  EXPECT_EQ(R.St.get(StatId::GcPauseNsP50), T.pauseHistogram().percentile(50));
  EXPECT_EQ(R.St.get(StatId::GcPauseNsP90), T.pauseHistogram().percentile(90));
  EXPECT_EQ(R.St.get(StatId::GcPauseNsP99), T.pauseHistogram().percentile(99));
  EXPECT_LE(R.St.get(StatId::GcPauseNsP50), R.St.get(StatId::GcPauseNsP90));
  EXPECT_LE(R.St.get(StatId::GcPauseNsP90), R.St.get(StatId::GcPauseNsP99));
  EXPECT_LE(R.St.get(StatId::GcPauseNsP99), R.St.get(StatId::GcPauseNsMax));
  // publishTelemetryStats also exports per-phase and census dynamic keys.
  EXPECT_TRUE(R.St.has("gc.phase_root_scan_ns"));
  EXPECT_GT(R.St.get("gc.census_data_objects"), 0u);

  // World-stop delays (fed by the tasking runtime) publish as dynamic
  // percentile keys once any delay is recorded.
  EXPECT_FALSE(R.St.has("task.world_stop_delay_ns_p50"));
  T.recordWorldStopDelay(1000);
  T.recordWorldStopDelay(3000);
  R.Col->publishTelemetryStats();
  EXPECT_EQ(R.St.get("task.world_stop_delay_ns_p50"),
            T.worldStopDelayHistogram().percentile(50));
  EXPECT_TRUE(R.St.has("task.world_stop_delay_ns_p99"));
}

TEST(Telemetry, VerifyPassDoesNotPolluteCensus) {
  Compiled C = compile(wl::listChurn(40, 20));
  ASSERT_TRUE(C.P) << C.Error;
  Stats St;
  std::string Error;
  // Large heap: no grow-retry re-traces, so each collection traces the
  // live set exactly once plus one verify pass.
  auto Col = C.P->makeCollector(GcStrategy::CompiledTagFree,
                                GcAlgorithm::Copying, 1 << 20, St, &Error);
  ASSERT_TRUE(Col) << Error;
  Col->setVerifyAfterGc(true);
  Vm M(C.P->Prog, C.P->Image, *C.P->Types, *Col,
       defaultVmOptions(GcStrategy::CompiledTagFree, /*GcStress=*/true));
  RunResult Run = M.run();
  ASSERT_TRUE(Run.Ok) << Run.Error;
  Telemetry &T = Col->telemetry();
  // The verify pass re-runs the tracers over a CheckSpace, doubling the
  // gc.objects_visited counter — but the census is paused during verify,
  // so it counts each live object once.
  ASSERT_EQ(St.get(StatId::GcHeapGrowths), 0u);
  EXPECT_EQ(2 * T.censusObjectsTotal(), St.get(StatId::GcObjectsVisited));
  EXPECT_GT(T.phaseNsTotal(GcPhase::Verify), 0u);
  EXPECT_EQ(St.get(StatId::GcVerifyViolations), 0u);
}

//===----------------------------------------------------------------------===//
// Export formats
//===----------------------------------------------------------------------===//

TEST(Telemetry, ChromeTraceIsValidJson) {
  Compiled C = compile(wl::listChurn(40, 20));
  ASSERT_TRUE(C.P) << C.Error;
  Stats St;
  std::string Error;
  auto Col = C.P->makeCollector(GcStrategy::CompiledTagFree,
                                GcAlgorithm::Copying, 1 << 14, St, &Error);
  ASSERT_TRUE(Col) << Error;
  std::ostringstream Trace;
  Telemetry &T = Col->telemetry();
  T.setLabel("compiled-tagfree");
  T.beginTrace(Trace);
  Vm M(C.P->Prog, C.P->Image, *C.P->Types, *Col,
       defaultVmOptions(GcStrategy::CompiledTagFree, /*GcStress=*/true));
  RunResult Run = M.run();
  ASSERT_TRUE(Run.Ok) << Run.Error;
  T.endTrace();

  std::string J = Trace.str();
  EXPECT_TRUE(validJson(J)) << J.substr(0, 400);
  EXPECT_NE(J.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(J.find("\"gc.collection\""), std::string::npos);
  EXPECT_NE(J.find("\"frame_dispatch\""), std::string::npos);
  EXPECT_NE(J.find("compiled-tagfree"), std::string::npos);
  // The trace streams: it covers every collection, not just the ring.
  size_t Events = 0, At = 0;
  while ((At = J.find("\"gc.collection\"", At)) != std::string::npos) {
    ++Events;
    At += 1;
  }
  EXPECT_EQ(Events, T.collections());
}

TEST(Telemetry, StatsJsonIsValidAndComplete) {
  TelemetryRun R =
      runWithTelemetry(wl::listChurn(40, 20), GcStrategy::CompiledTagFree);
  ASSERT_TRUE(R.Col);
  std::ostringstream OS;
  R.Col->telemetry().writeStatsJson(OS, R.St);
  std::string J = OS.str();
  EXPECT_TRUE(validJson(J)) << J.substr(0, 400);
  EXPECT_NE(J.find("\"pause_histogram\""), std::string::npos);
  EXPECT_NE(J.find("\"census_totals\""), std::string::npos);
  EXPECT_NE(J.find("\"recent_collections\""), std::string::npos);
  EXPECT_NE(J.find("\"gc.collections\""), std::string::npos);
  EXPECT_NE(J.find("\"p99\""), std::string::npos);
}

TEST(Telemetry, LogLineFormat) {
  // The [gc] log goes through a FILE*; route it to a temp file and check
  // the line shape.
  std::FILE *F = std::tmpfile();
  ASSERT_NE(F, nullptr);
  Telemetry T(4);
  T.setLabel("unit");
  T.setLogStream(F);
  T.beginCollection();
  T.census(CensusKind::Data, 3);
  T.finishCollection(/*LiveWordsAfter=*/3, /*HeapCapacityBytesAfter=*/4096);
  std::rewind(F);
  char Buf[512] = {};
  ASSERT_NE(std::fgets(Buf, sizeof(Buf), F), nullptr);
  std::fclose(F);
  std::string Line(Buf);
  EXPECT_NE(Line.find("[gc] unit seq=0"), std::string::npos) << Line;
  EXPECT_NE(Line.find("pause_ns="), std::string::npos) << Line;
  EXPECT_NE(Line.find("census_data=1/3"), std::string::npos) << Line;
  EXPECT_NE(Line.find("live_words=3"), std::string::npos) << Line;
  EXPECT_NE(Line.find("cap_bytes=4096"), std::string::npos) << Line;
}

} // namespace
