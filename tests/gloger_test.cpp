//===- tests/gloger_test.cpp - Goldberg & Gloger '92 dummy routines -------===//
///
/// The '91 paper cannot collect a closure whose captured value's type
/// variable is invisible in its function type. Goldberg & Gloger '92
/// observed that such values can never be inspected again, so the missing
/// type-GC routines may be bound to a dummy. CompileOptions::GlogerDummies
/// enables that rule.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace tfgc;
using namespace tfgc::test;

namespace {

/// `hide` captures xs : 'a list inside an int -> int lambda; 'a is
/// unreconstructible. The captured list's *elements* are never inspected;
/// only `len` walks the spine — but note len is polymorphic in 'a, so
/// even the spine walk never looks at an element.
std::string hideProgram() {
  return "fun len xs = case xs of Nil => 0 | Cons(_, r) => 1 + len r;\n"
         "fun build (n : int) : int list = if n = 0 then [] "
         "else n :: build (n - 1);\n"
         "fun hide xs = fn (n : int) => n + len xs;\n"
         "val f = hide [true, false, true];\n"
         "fun lp (i : int) (acc : int) : int =\n"
         "  if i = 0 then acc\n"
         "  else lp (i - 1) (acc + f i + len (build 40));\n"
         "lp 30 0";
}

CompileOptions glogerOpts() {
  CompileOptions O;
  O.GlogerDummies = true;
  return O;
}

TEST(Gloger, RejectedWithoutTheOption) {
  ExecResult R = execProgram(hideProgram(), GcStrategy::CompiledTagFree,
                             GcAlgorithm::Copying, 1 << 12, true);
  EXPECT_FALSE(R.CompileOk);
  EXPECT_NE(R.CompileError.find("not collectible tag-free"),
            std::string::npos);
}

TEST(Gloger, CollectsWithDummies) {
  ExecResult Ref = execProgram(hideProgram(), GcStrategy::Tagged,
                               GcAlgorithm::Copying, 1 << 20, false);
  ASSERT_TRUE(Ref.Run.Ok) << Ref.Run.Error;

  for (GcStrategy S :
       {GcStrategy::CompiledTagFree, GcStrategy::InterpretedTagFree,
        GcStrategy::AppelTagFree}) {
    ExecResult R = execProgram(hideProgram(), S, GcAlgorithm::Copying,
                               1 << 12, true, glogerOpts());
    ASSERT_TRUE(R.Run.Ok)
        << gcStrategyName(S) << ": " << R.CompileError << R.Run.Error;
    EXPECT_EQ(R.Run.Value, Ref.Run.Value) << gcStrategyName(S);
    EXPECT_GT(R.St.get("gc.gloger_dummies"), 0u) << gcStrategyName(S);
  }
}

TEST(Gloger, ReconstructiblesStillUseRealRoutines) {
  // A fully reconstructible program under the option behaves as before:
  // no dummies are ever bound.
  std::string Src =
      "fun map f xs = case xs of Nil => Nil | Cons(x, r) => "
      "Cons(f x, map f r);\n"
      "fun sum (xs : int list) : int = case xs of Nil => 0 "
      "| Cons(x, r) => x + sum r;\n"
      "sum (map (fn x => x + 1) [1, 2, 3])";
  ExecResult R = execProgram(Src, GcStrategy::CompiledTagFree,
                             GcAlgorithm::Copying, 1 << 12, true,
                             glogerOpts());
  ASSERT_TRUE(R.Run.Ok) << R.Run.Error;
  EXPECT_EQ(R.Run.Value, "9");
  EXPECT_EQ(R.St.get("gc.gloger_dummies"), 0u);
}

TEST(Gloger, SurvivesMarkSweepToo) {
  ExecResult R = execProgram(hideProgram(), GcStrategy::CompiledTagFree,
                             GcAlgorithm::MarkSweep, 1 << 12, true,
                             glogerOpts());
  ASSERT_TRUE(R.Run.Ok) << R.Run.Error;
}

} // namespace
