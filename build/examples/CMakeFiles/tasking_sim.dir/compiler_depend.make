# Empty compiler generated dependencies file for tasking_sim.
# This may be replaced when dependencies are built.
