//===- gcmeta/CompiledRoutines.h - Compiled-method routines -----*- C++ -*-===//
///
/// \file
/// The paper's *compiled method*: for every type in the program a compiled
/// type GC routine, and for every call site a compiled frame GC routine.
/// "Compiled" here means everything is pre-resolved at compile time into
/// flat action lists with direct routine indices — fields whose types hold
/// no pointers generate no actions at all, and routine dispatch is one
/// array index — in contrast to the interpreted method, which walks the
/// type descriptor graph at collection time.
///
/// Slots/fields whose static type mentions the enclosing function's type
/// parameters cannot be compiled to a fixed routine; they carry the static
/// type and are handled by the type-GC-closure engine at collection time
/// (paper section 3).
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_GCMETA_COMPILEDROUTINES_H
#define TFGC_GCMETA_COMPILEDROUTINES_H

#include "analysis/Reconstruct.h"
#include "ir/Ir.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace tfgc {

using RoutineId = uint32_t;

/// A pointer field within an object: payload offset and the routine for
/// the referenced value.
struct FieldAction {
  uint32_t Offset;
  RoutineId Routine;
};

/// A slot (or env field) whose type is open over the function's type
/// parameters; evaluated by the TypeGc engine during collection.
struct OpenAction {
  uint32_t Index; ///< Slot index (frame routines) or payload offset.
  Type *Ty;
};

struct TypeRoutine {
  enum class Form : uint8_t {
    Leaf,       ///< Value holds no heap pointer; nothing to do.
    Record,     ///< Fixed-size heap object (tuple).
    DataSwitch, ///< Variant record: switch on the discriminant (sec. 2.3).
    RefCell,    ///< One-word mutable cell.
    FunValue,   ///< Closure; layout found through its code pointer.
  };
  Form F = Form::Leaf;
  uint32_t PayloadWords = 0;               ///< Record / RefCell.
  std::vector<FieldAction> Fields;         ///< Record / RefCell (elem).
  std::vector<uint32_t> CtorSizes;         ///< DataSwitch, incl. discriminant.
  std::vector<std::vector<FieldAction>> CtorFields; ///< DataSwitch.
  /// FunValue only: the static function type, used to rebuild a type-GC
  /// closure when a polymorphic lambda is reached through a ground field.
  Type *FunStaticTy = nullptr;
};

/// Frame GC routine for one call site: exactly the live, initialized,
/// pointer-holding slots. An empty routine is the paper's `no_trace`.
struct FrameRoutine {
  struct SlotAction {
    SlotIndex Slot;
    RoutineId Routine;
  };
  std::vector<SlotAction> Slots;
  std::vector<OpenAction> Open;
  bool isNoTrace() const { return Slots.empty() && Open.empty(); }
};

/// Per-closure-function metadata reached through the code pointer.
struct ClosureRoutine {
  uint32_t PayloadWords = 0; ///< 1 (code word) + environment size.
  std::vector<FieldAction> Fields; ///< Ground env fields (offset = 1 + i).
  std::vector<OpenAction> Open;
  /// Per function type parameter: the extraction path into the function
  /// type (how the collector recovers the parameter's type GC routine from
  /// the closure's type GC routine, paper Figure 4).
  std::vector<ClosureParamPath> ParamPaths;
};

class CompiledMetadata {
public:
  /// Builds all routines for \p P, honoring each site's TraceSlots.
  void build(const IrProgram &P, const ReconstructResult &RR);

  const TypeRoutine &routine(RoutineId Id) const { return Routines[Id]; }
  const FrameRoutine &siteRoutine(CallSiteId Site) const {
    return FrameRoutines[SiteToFrame[Site]];
  }
  uint32_t siteFrameId(CallSiteId Site) const { return SiteToFrame[Site]; }
  const ClosureRoutine &closureRoutine(FuncId Fn) const {
    return ClosureRoutines[Fn];
  }

  size_t numTypeRoutines() const { return Routines.size(); }
  size_t numFrameRoutines() const { return FrameRoutines.size(); }
  size_t numNoTraceSites() const { return NoTraceSites; }
  /// Modeled generated-code size. Routines are straight-line machine
  /// code: 24 bytes of prologue/dispatch per routine, 16 bytes per field
  /// action (load, call, store), 8 bytes per constructor jump-table entry.
  size_t sizeBytes() const;

private:
  std::vector<TypeRoutine> Routines;
  std::unordered_map<std::string, RoutineId> RoutineDedup;
  std::vector<FrameRoutine> FrameRoutines;
  std::unordered_map<std::string, uint32_t> FrameDedup;
  std::vector<uint32_t> SiteToFrame;
  std::vector<ClosureRoutine> ClosureRoutines;
  size_t NoTraceSites = 0;
  TypeContext *Ctx = nullptr;

  RoutineId routineFor(Type *GroundTy);
  bool isLeafType(Type *T);
};

/// True if \p T mentions no rigid type variables.
bool isGroundType(Type *T);

/// True if values of \p T are never heap pointers (ints, bools, unit,
/// unboxed floats, all-nullary datatypes).
bool isGcLeafType(Type *T);

} // namespace tfgc

#endif // TFGC_GCMETA_COMPILEDROUTINES_H
