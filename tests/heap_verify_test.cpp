//===- tests/heap_verify_test.cpp - Post-collection graph verification ----===//
///
/// Runs workloads with the read-only verification pass enabled: after
/// every collection the collector re-traverses the reachable graph and
/// counts references pointing outside the live heap. Any nonzero count is
/// a collector bug (an unforwarded pointer into dead from-space).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "workloads/Programs.h"

using namespace tfgc;
using namespace tfgc::test;
namespace wl = tfgc::workloads;

namespace {

void runVerified(const std::string &Source, GcStrategy S, GcAlgorithm A,
                 size_t HeapBytes) {
  Compiler C;
  std::string Err;
  auto P = C.compile(Source, &Err);
  ASSERT_TRUE(P) << Err;
  Stats St;
  auto Col = P->makeCollector(S, A, HeapBytes, St, &Err);
  ASSERT_TRUE(Col) << Err;
  Col->setVerifyAfterGc(true);
  Vm M(P->Prog, P->Image, *P->Types, *Col,
       defaultVmOptions(S, /*GcStress=*/true));
  RunResult R = M.run();
  ASSERT_TRUE(R.Ok) << gcStrategyName(S) << ": " << R.Error;
  EXPECT_GT(St.get("gc.verify_passes"), 0u);
  EXPECT_EQ(St.get("gc.verify_violations"), 0u) << gcStrategyName(S);
}

TEST(HeapVerify, ListChurnAllStrategies) {
  for (GcStrategy S : AllStrategies)
    runVerified(wl::listChurn(24, 4), S, GcAlgorithm::Copying, 1 << 12);
}

TEST(HeapVerify, PolyPaperAllStrategies) {
  for (GcStrategy S : AllStrategies)
    runVerified(wl::polyPaper(), S, GcAlgorithm::Copying, 1 << 12);
}

TEST(HeapVerify, HigherOrderMarkSweep) {
  for (GcStrategy S : AllStrategies)
    runVerified(wl::higherOrder(24), S, GcAlgorithm::MarkSweep, 1 << 12);
}

TEST(HeapVerify, RefCellsWithCycles) {
  runVerified(wl::refCells(120), GcStrategy::CompiledTagFree,
              GcAlgorithm::Copying, 1 << 12);
  runVerified(wl::refCells(120), GcStrategy::Tagged, GcAlgorithm::Copying,
              1 << 12);
}

TEST(HeapVerify, VariantRecordsAndFloats) {
  for (GcStrategy S : AllStrategies)
    runVerified(wl::variantRecords(64), S, GcAlgorithm::Copying, 1 << 12);
}

TEST(HeapVerify, GrowthPreservesGraph) {
  // Growth collections relocate into a bigger space mid-collection.
  runVerified(wl::listChurn(300, 2), GcStrategy::CompiledTagFree,
              GcAlgorithm::Copying, 512);
}

} // namespace
