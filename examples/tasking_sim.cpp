//===- examples/tasking_sim.cpp - Paper section 4 tasking -----------------===//
///
/// An Ada-style shared-memory tasking run: three list-churning workers and
/// one compute-heavy spinner share a single small heap. When a worker
/// exhausts the heap, every task must reach a suspension point before the
/// world stops and the collector traverses all stacks. The three policies
/// differ in where tasks poll for the pending stop.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "tasking/Tasking.h"
#include "workloads/Programs.h"

#include <cstdio>

using namespace tfgc;

static const char *policyName(SuspendChecks P) {
  switch (P) {
  case SuspendChecks::AtAllocation: return "allocation-only";
  case SuspendChecks::AtEveryCall:  return "every-call";
  case SuspendChecks::RgcRegister:  return "Rgc register";
  default:                          return "?";
  }
}

int main() {
  // Tasking-safe compilation: gc_words at every call site, and frame
  // routines that also trace outgoing call arguments (a suspended call
  // re-executes after the collection). See DESIGN.md for why section 5.1's
  // gc_word omission cannot be combined with section 4's suspension
  // points.
  CompileOptions O;
  O.TaskingSafe = true;
  Compiler C(O);
  std::string Error;
  auto P = C.compile(workloads::taskWorkerAndSpinner(), &Error);
  if (!P) {
    std::fprintf(stderr, "%s", Error.c_str());
    return 1;
  }
  FuncId Worker = findFunction(P->Prog, "worker");
  FuncId Spinner = findFunction(P->Prog, "spinner");

  std::printf("3 workers (60 iterations each) + 1 spinner sharing an 8KiB "
              "heap\n\n");
  std::printf("%-18s %-14s %-12s %-18s %-16s\n", "policy", "susp. checks",
              "world stops", "avg stop latency", "max stop latency");

  for (SuspendChecks Policy :
       {SuspendChecks::AtAllocation, SuspendChecks::AtEveryCall,
        SuspendChecks::RgcRegister}) {
    Stats St;
    auto Col = P->makeCollector(GcStrategy::CompiledTagFree,
                                GcAlgorithm::Copying, 8 * 1024, St, &Error);
    TaskingOptions TO;
    TO.Policy = Policy;
    TaskingRuntime Rt(P->Prog, P->Image, *P->Types, *Col, TO);
    for (int64_t Seed = 1; Seed <= 3; ++Seed)
      Rt.spawnInt(Worker, {Seed, 60});
    Rt.spawnInt(Spinner, {50, 2000});
    if (!Rt.runAll()) {
      std::fprintf(stderr, "task failure under %s\n", policyName(Policy));
      for (const TaskResult &R : Rt.results())
        if (!R.Ok)
          std::fprintf(stderr, "  %s\n", R.Error.c_str());
      return 1;
    }
    uint64_t Stops = St.get(StatId::TaskWorldStops);
    std::printf("%-18s %-14llu %-12llu %-18.0f %-16llu\n",
                policyName(Policy),
                (unsigned long long)St.get(StatId::TaskSuspendChecks),
                (unsigned long long)Stops,
                Stops ? (double)St.get(StatId::TaskStepsToWorldStopTotal) /
                            (double)Stops
                      : 0.0,
                (unsigned long long)St.get(StatId::TaskStepsToWorldStopMax));
  }

  std::printf(
      "\nThe paper's trade-off, reproduced:\n"
      " * allocation-only: fewest checks, but the spinner keeps computing "
      "long after\n   the heap is gone (huge stop latency);\n"
      " * every-call: stops promptly, at the price of a test per call;\n"
      " * Rgc register: the test rides the computed jump target — "
      "allocation-only's\n   explicit check count with every-call's stop "
      "latency.\n");
  return 0;
}
