//===- tests/monitor_test.cpp - Mutator-side monitor tests ----------------===//
///
/// Covers support/Monitor.h: MMU window math on synthetic span sequences
/// (MmuTracker), the mutator/GC wall-clock coverage invariant on real
/// runs, the sample-count/step-count invariant under every strategy and
/// algorithm, JSONL stream schema validity (via the shared in-test JSON
/// parser), heartbeat emission, and the abnormal-exit summary flush
/// through the CLI artifact path.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "driver/Cli.h"
#include "support/Monitor.h"
#include "workloads/Programs.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace tfgc;
using namespace tfgc::test;
namespace wl = tfgc::workloads;

namespace {

constexpr uint64_t Ms = 1'000'000; // ns

//===----------------------------------------------------------------------===//
// MmuTracker window math on synthetic spans
//===----------------------------------------------------------------------===//

TEST(MmuTracker, NoPausesIsFullUtilization) {
  MmuTracker T;
  EXPECT_DOUBLE_EQ(T.mmu(10 * Ms, 0, 100 * Ms), 1.0);
  EXPECT_EQ(T.gcNsIn(0, 100 * Ms), 0u);
}

TEST(MmuTracker, GcTimeClipping) {
  MmuTracker T;
  T.addPause(10 * Ms, 12 * Ms);
  T.addPause(20 * Ms, 21 * Ms);
  EXPECT_EQ(T.gcNsTotal(), 3 * Ms);
  // Full containment, partial overlap on each side, and no overlap.
  EXPECT_EQ(T.gcNsIn(0, 100 * Ms), 3 * Ms);
  EXPECT_EQ(T.gcNsIn(11 * Ms, 100 * Ms), 1 * Ms + 1 * Ms);
  EXPECT_EQ(T.gcNsIn(0, 11 * Ms), 1 * Ms);
  EXPECT_EQ(T.gcNsIn(12 * Ms, 20 * Ms), 0u);
  EXPECT_EQ(T.gcNsIn(11 * Ms, 20500000), 1 * Ms + 500000);
}

TEST(MmuTracker, SinglePauseWindows) {
  // One 2 ms pause at [10, 12) in a 20 ms run.
  MmuTracker T;
  T.addPause(10 * Ms, 12 * Ms);
  // A 2 ms window can be fully swallowed by the pause.
  EXPECT_DOUBLE_EQ(T.mmu(2 * Ms, 0, 20 * Ms), 0.0);
  // The worst 5 ms window contains the whole pause: 3/5 mutator.
  EXPECT_DOUBLE_EQ(T.mmu(5 * Ms, 0, 20 * Ms), 0.6);
  // Window equal to the run: overall utilization.
  EXPECT_DOUBLE_EQ(T.mmu(20 * Ms, 0, 20 * Ms), 0.9);
  // Window larger than the run falls back to overall utilization.
  EXPECT_DOUBLE_EQ(T.mmu(40 * Ms, 0, 20 * Ms), 0.9);
}

TEST(MmuTracker, PeriodicPauses) {
  // 1 ms pause every 10 ms: [9,10), [19,20), ... in a 100 ms run.
  MmuTracker T;
  for (uint64_t I = 0; I < 10; ++I)
    T.addPause((9 + 10 * I) * Ms, (10 + 10 * I) * Ms);
  // A 1 ms window lands entirely inside a pause.
  EXPECT_DOUBLE_EQ(T.mmu(1 * Ms, 0, 100 * Ms), 0.0);
  // Any 10 ms window sees exactly 1 ms of GC.
  EXPECT_NEAR(T.mmu(10 * Ms, 0, 100 * Ms), 0.9, 1e-9);
  // The whole run is 10% GC.
  EXPECT_NEAR(T.mmu(100 * Ms, 0, 100 * Ms), 0.9, 1e-9);
}

TEST(MmuTracker, WorstWindowAlignsWithPauseEdges) {
  // Two pauses close together: [10,11) and [13,14). The worst 4 ms
  // window [10,14) contains both (2 ms GC); windows elsewhere see less.
  MmuTracker T;
  T.addPause(10 * Ms, 11 * Ms);
  T.addPause(13 * Ms, 14 * Ms);
  EXPECT_NEAR(T.mmu(4 * Ms, 0, 100 * Ms), 0.5, 1e-9);
  EXPECT_NEAR(T.mmu(8 * Ms, 0, 100 * Ms), 0.75, 1e-9);
}

TEST(MmuTracker, OverlappingStartIsClamped) {
  MmuTracker T;
  T.addPause(10 * Ms, 20 * Ms);
  T.addPause(15 * Ms, 25 * Ms); // clamped to [20, 25)
  EXPECT_EQ(T.gcNsTotal(), 15 * Ms);
  EXPECT_EQ(T.gcNsIn(0, 30 * Ms), 15 * Ms);
}

//===----------------------------------------------------------------------===//
// Monitor aggregation of synthetic GC events
//===----------------------------------------------------------------------===//

TEST(Monitor, SyntheticEventsFeedMmu) {
  Monitor M;
  GcEvent E;
  E.StartNs = 5 * Ms;
  E.PauseNs = 1 * Ms;
  M.onGcEvent(E);
  E.StartNs = 10 * Ms;
  E.PauseNs = 2 * Ms;
  M.onGcEvent(E);
  EXPECT_EQ(M.collectionsSeen(), 2u);
  EXPECT_EQ(M.gcNs(), 3 * Ms);
  EXPECT_EQ(M.mmuTracker().pauses(), 2u);
  // Mutator interval between the pauses was accumulated.
  EXPECT_EQ(M.mutatorNs(), 4 * Ms);
}

//===----------------------------------------------------------------------===//
// Real runs: sample/step invariant, coverage invariant, stream schema
//===----------------------------------------------------------------------===//

struct MonitoredRun {
  Stats St;
  std::unique_ptr<CompiledProgram> P;
  std::unique_ptr<Collector> Col;
  RunResult R;
};

void runMonitored(const std::string &Source, GcStrategy S, GcAlgorithm A,
                  Monitor &Mon, MonitoredRun &Out,
                  size_t HeapBytes = 1 << 15) {
  Compiled C = compile(Source);
  ASSERT_TRUE(C.P) << C.Error;
  Out.P = std::move(C.P);
  std::string Err;
  Out.Col = Out.P->makeCollector(S, A, HeapBytes, Out.St, &Err);
  ASSERT_TRUE(Out.Col) << Err;
  attachMonitor(*Out.P, *Out.Col, Mon);
  Vm M(Out.P->Prog, Out.P->Image, *Out.P->Types, *Out.Col,
       defaultVmOptions(S));
  Out.R = M.run();
  ASSERT_TRUE(Out.R.Ok) << Out.R.Error;
}

TEST(Monitor, SampleCountMatchesStepsAllStrategiesAndAlgorithms) {
  const std::string Src = wl::listChurn(60, 12);
  for (GcStrategy S : AllStrategies) {
    for (GcAlgorithm A : AllAlgorithms) {
      Monitor::Options O;
      O.SamplePeriodSteps = 64;
      Monitor Mon(O);
      MonitoredRun Run;
      runMonitored(Src, S, A, Mon, Run);
      uint64_t Steps = Run.St.get(StatId::VmSteps);
      ASSERT_GT(Steps, 64u);
      // The fuel countdown takes exactly one sample per period.
      EXPECT_EQ(Mon.samples(), Steps / 64)
          << gcStrategyName(S) << "/" << gcAlgorithmName(A);
      EXPECT_EQ(Mon.stepsObserved(), Steps);
      // Published stats mirror the monitor.
      EXPECT_EQ(Run.St.get("mon.samples"), Mon.samples());
      EXPECT_EQ(Run.St.get("mon.sample_period_steps"), 64u);
    }
  }
}

TEST(Monitor, SamplesAttributeToFunctionsAndOpClasses) {
  Monitor::Options O;
  O.SamplePeriodSteps = 16;
  Monitor Mon(O);
  MonitoredRun Run;
  runMonitored(wl::listChurn(60, 12), GcStrategy::CompiledTagFree,
               GcAlgorithm::Copying, Mon, Run);
  ASSERT_GT(Mon.samples(), 0u);
  uint64_t Flat = 0;
  for (uint32_t F = 0; F < 64; ++F)
    Flat += Mon.flatSamples(F);
  EXPECT_EQ(Flat, Mon.samples());
  uint64_t ByClass = 0;
  for (size_t I = 0; I < NumOpClasses; ++I)
    ByClass += Mon.opClassSamples((OpClass)I);
  EXPECT_EQ(ByClass, Mon.samples());
}

TEST(Monitor, MutatorPlusGcCoversWallClock) {
  for (GcAlgorithm A : AllAlgorithms) {
    Monitor Mon;
    MonitoredRun Run;
    runMonitored(wl::listChurn(80, 16), GcStrategy::CompiledTagFree, A, Mon,
                 Run, 1 << 14);
    ASSERT_GT(Run.St.get(StatId::GcCollections), 0u) << gcAlgorithmName(A);
    uint64_t Wall = Mon.wallNs();
    ASSERT_GT(Wall, 0u);
    double Coverage = (double)(Mon.mutatorNs() + Mon.gcNs()) / (double)Wall;
    EXPECT_GT(Coverage, 0.95) << gcAlgorithmName(A);
    EXPECT_LT(Coverage, 1.05) << gcAlgorithmName(A);
    // MMU is monotone in the window and bounded by the overall fraction's
    // ceiling of 1.
    double M1 = Mon.mmu(1 * Ms), M10 = Mon.mmu(10 * Ms),
           M100 = Mon.mmu(100 * Ms);
    EXPECT_LE(M1, M10 + 1e-9);
    EXPECT_LE(M10, M100 + 1e-9);
    EXPECT_GE(M1, 0.0);
    EXPECT_LE(M100, 1.0);
  }
}

TEST(Monitor, StreamIsSchemaValidJsonl) {
  Monitor::Options O;
  O.SamplePeriodSteps = 32;
  O.HeartbeatPeriodMs = 1;
  Monitor Mon(O);
  std::ostringstream Stream;
  Mon.setStream(&Stream);
  MonitoredRun Run;
  runMonitored(wl::listChurn(100, 20), GcStrategy::CompiledTagFree,
               GcAlgorithm::Generational, Mon, Run, 1 << 14);
  Mon.finish();

  std::istringstream In(Stream.str());
  std::string Line;
  size_t Lines = 0, Headers = 0, Summaries = 0, Heartbeats = 0;
  while (std::getline(In, Line)) {
    ++Lines;
    EXPECT_TRUE(validJson(Line)) << Line.substr(0, 200);
    if (Line.find("\"type\": \"header\"") != std::string::npos)
      ++Headers;
    if (Line.find("\"type\": \"summary\"") != std::string::npos)
      ++Summaries;
    if (Line.find("\"type\": \"heartbeat\"") != std::string::npos)
      ++Heartbeats;
  }
  EXPECT_EQ(Headers, 1u);
  EXPECT_EQ(Summaries, 1u);
  EXPECT_EQ(Heartbeats, Mon.heartbeatsEmitted());
  EXPECT_EQ(Lines, 2 + Heartbeats);
  // The summary carries the profile and MMU payloads.
  EXPECT_NE(Stream.str().find("\"profile_flat\""), std::string::npos);
  EXPECT_NE(Stream.str().find("\"mmu\""), std::string::npos);
  EXPECT_NE(Stream.str().find("\"op_classes\""), std::string::npos);
  // finish() is idempotent: a second call appends nothing.
  size_t Size = Stream.str().size();
  Mon.finish();
  EXPECT_EQ(Stream.str().size(), Size);
}

//===----------------------------------------------------------------------===//
// CLI integration: abnormal-exit flush, usage errors
//===----------------------------------------------------------------------===//

std::string tmpPath(const char *Name) {
  return ::testing::TempDir() + "tfgc_monitor_test_" + Name;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

TEST(Monitor, VerifyViolationStillFlushesSummary) {
  // The PR 4 guarantee extended to the monitor stream: a run that exits 3
  // (verify violations) must still end the JSONL stream with a complete
  // summary record.
  std::string Out = tmpPath("abnormal.jsonl");
  std::remove(Out.c_str());
  CliOptions O;
  std::string Err;
  bool HelpOnly = false;
  ASSERT_TRUE(parseCli({"--stress", "--heap=16384", "--verify",
                        "--inject-verify-violation", "--monitor-out=" + Out,
                        "--monitor-sample-steps=32", "-e",
                        wl::listChurn(20, 3)},
                       O, Err, HelpOnly))
      << Err;
  EXPECT_EQ(runTfgc(O), 3);
  std::string Doc = slurp(Out);
  EXPECT_NE(Doc.find("\"type\": \"header\""), std::string::npos) << Out;
  EXPECT_NE(Doc.find("\"type\": \"summary\""), std::string::npos) << Out;
  std::remove(Out.c_str());
}

TEST(Monitor, PeriodWithoutOutIsUsageError) {
  // tools/tfgc.cpp maps a parseCli failure to exit code 2.
  CliOptions O;
  std::string Err;
  bool HelpOnly = false;
  EXPECT_FALSE(parseCli({"--monitor-period-ms=5", "-e", "1"}, O, Err,
                        HelpOnly));
  EXPECT_NE(Err.find("--monitor-out"), std::string::npos) << Err;
}

TEST(Monitor, MonitorFlagsImplyMonitor) {
  CliOptions O;
  std::string Err;
  bool HelpOnly = false;
  ASSERT_TRUE(parseCli({"--monitor-out=/tmp/m.jsonl", "-e", "1"}, O, Err,
                       HelpOnly));
  EXPECT_TRUE(O.Monitor);
  EXPECT_EQ(O.MonitorOutPath, "/tmp/m.jsonl");

  CliOptions O2;
  ASSERT_TRUE(parseCli({"--monitor-sample-steps=128", "-e", "1"}, O2, Err,
                       HelpOnly));
  EXPECT_TRUE(O2.Monitor);
  EXPECT_EQ(O2.MonitorSampleSteps, 128u);
}

} // namespace
