//===- bench/bench_observe.cpp - E14: sharded observability cost ----------===//
///
/// What does the sharded observability core cost the mutator? After the
/// shard refactor every hot-path counter write is a plain store into the
/// task's cache-line-padded StatsShard, and all aggregation moved to
/// safepoint epoch folds — so the claims to verify are:
///
///   plain   no aggregator attached: the run pays only the shard stores
///           it always paid. The baseline.
///   epoch   an EpochAggregator folds every shard into an immutable
///           snapshot at each collection plus run end. Folding is
///           O(shards x counters) *per collection*, not per step, so
///           epoch/plain must be <= 1.02 — the tentpole acceptance.
///   serve   epoch + a live IntrospectServer with a scraper thread
///           polling /metrics every 2 ms for the whole run — prices an
///           actively watched mutator. The server serves prebuilt
///           strings off the mutator thread; the mutator only touches it
///           inside the fold, so this too should be noise.
///
/// Reports wall-clock medians over interleaved runs (A/B/A/B, so
/// frequency and load drift hit every mode equally); the
/// google-benchmark entries feed BENCH_observe.json for the trajectory.
///
/// Acceptance line: epoch/plain ratio <= 1.02 on both workloads with no
/// scraper attached.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Epoch.h"
#include "support/Introspect.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <thread>

using namespace tfgc;
using namespace tfgc::bench;
namespace wl = tfgc::workloads;

namespace {

constexpr size_t HeapBytes = 1 << 16;
constexpr size_t GenHeapBytes = 1 << 20;
constexpr size_t GenNurseryBytes = 1 << 13;

enum ObserveMode { Plain = 0, Epoch = 1, Serve = 2 };

const char *modeName(ObserveMode M) {
  return M == Plain ? "plain" : M == Epoch ? "epoch" : "serve";
}

/// One /metrics scrape against the loopback server; returns bytes read
/// (0 on any failure — the bench only prices the traffic, the protocol
/// is pinned by the test suite).
size_t scrapeOnce(uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return 0;
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  size_t Total = 0;
  if (::connect(Fd, (sockaddr *)&Addr, sizeof(Addr)) == 0) {
    const char Req[] = "GET /metrics HTTP/1.1\r\nHost: b\r\n"
                       "Connection: close\r\n\r\n";
    if (::send(Fd, Req, sizeof(Req) - 1, 0) == (ssize_t)(sizeof(Req) - 1)) {
      char Buf[4096];
      ssize_t N;
      while ((N = ::recv(Fd, Buf, sizeof(Buf), 0)) > 0)
        Total += (size_t)N;
    }
  }
  ::close(Fd);
  return Total;
}

struct RunOut {
  uint64_t WallNs = 0;
  uint64_t Epochs = 0;
  uint64_t Scrapes = 0;
};

/// One compile-free run under \p Mode.
Stats observedRun(CompiledProgram &P, GcAlgorithm A, size_t Heap,
                  size_t Nursery, ObserveMode Mode, RunOut *Out = nullptr,
                  bool RecordJson = false) {
  Stats St;
  std::string Err;
  auto Col = P.makeCollector(GcStrategy::CompiledTagFree, A, Heap, St, &Err,
                             Nursery);
  if (!Col) {
    std::fprintf(stderr, "makeCollector failed: %s\n", Err.c_str());
    std::abort();
  }
  EpochAggregator Agg;
  IntrospectServer Srv;
  std::thread Scraper;
  std::atomic<bool> StopScraper{false};
  std::atomic<uint64_t> Scrapes{0};
  if (Mode != Plain) {
    Agg.attachStats(&St);
    Agg.setLabel("compiled-tagfree/bench");
    Col->setEpochAggregator(&Agg);
  }
  if (Mode == Serve) {
    uint16_t Port = Srv.start(0, Err);
    if (!Port) {
      std::fprintf(stderr, "server start failed: %s\n", Err.c_str());
      std::abort();
    }
    Agg.attachServer(&Srv);
    Agg.fold(SafepointKind::Startup);
    Scraper = std::thread([&] {
      while (!StopScraper.load(std::memory_order_relaxed)) {
        if (scrapeOnce(Port))
          Scrapes.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  Vm M(P.Prog, P.Image, *P.Types, *Col,
       defaultVmOptions(GcStrategy::CompiledTagFree));
  auto T0 = std::chrono::steady_clock::now();
  RunResult R = M.run();
  auto T1 = std::chrono::steady_clock::now();
  if (!R.Ok) {
    std::fprintf(stderr, "bench run failed: %s\n", R.Error.c_str());
    std::abort();
  }
  M.flushCounters();
  if (Mode != Plain)
    Agg.fold(SafepointKind::RunEnd);
  if (Mode == Serve) {
    StopScraper.store(true, std::memory_order_relaxed);
    Scraper.join();
    Srv.stop();
  }
  if (Out) {
    Out->WallNs =
        (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(T1 -
                                                                       T0)
            .count();
    Out->Epochs = Agg.epochCount();
    Out->Scrapes = Scrapes.load();
  }
  if (RecordJson)
    if (JsonSink *Sink = JsonSink::active())
      Sink->record((std::string("compiled-tagfree+") + modeName(Mode)).c_str(),
                   A, Heap, St, Nursery);
  return St;
}

/// Samples all three modes round-robin (after one untimed warmup) so
/// drift hits every mode equally.
std::array<uint64_t, 3> medianWallNs(CompiledProgram &P, GcAlgorithm A,
                                     size_t Heap, size_t Nursery,
                                     int Reps = 11) {
  observedRun(P, A, Heap, Nursery, Plain);
  std::array<std::vector<uint64_t>, 3> Ns;
  for (int I = 0; I < Reps; ++I)
    for (ObserveMode Mode : {Plain, Epoch, Serve}) {
      RunOut Out;
      observedRun(P, A, Heap, Nursery, Mode, &Out);
      Ns[Mode].push_back(Out.WallNs);
    }
  std::array<uint64_t, 3> Med;
  for (int M = 0; M < 3; ++M) {
    std::sort(Ns[M].begin(), Ns[M].end());
    Med[M] = Ns[M][Ns[M].size() / 2];
  }
  return Med;
}

void reportCost() {
  struct Workload {
    const char *Name;
    std::string Src;
    GcAlgorithm Algo;
    size_t Heap, Nursery;
  } Workloads[] = {
      {"arith", wl::arithKernel(200000), GcAlgorithm::Copying, HeapBytes, 0},
      {"generationalChurn", wl::generationalChurn(200, 20, 400),
       GcAlgorithm::Generational, GenHeapBytes, GenNurseryBytes},
  };

  tableHeader("E14: sharded observability cost (compiled tag-free)",
              "wall-clock medians over 11 interleaved runs; 'ratio' is vs "
              "plain; 'epoch' folds all shards at every collection, "
              "'serve' adds a live /metrics scraper every 2 ms",
              {"workload", "mode", "median ms", "ratio", "epochs",
               "scrapes"});
  bool Pass = true;
  for (Workload &W : Workloads) {
    jsonWorkload(W.Name);
    auto P = compileOrDie(W.Src);
    std::array<uint64_t, 3> Med =
        medianWallNs(*P, W.Algo, W.Heap, W.Nursery);
    for (ObserveMode Mode : {Plain, Epoch, Serve}) {
      double Ratio = Med[Plain] ? (double)Med[Mode] / (double)Med[Plain] : 0.0;
      RunOut Out;
      observedRun(*P, W.Algo, W.Heap, W.Nursery, Mode, &Out,
                  /*RecordJson=*/true);
      tableCell(W.Name);
      tableCell(modeName(Mode));
      tableCell((double)Med[Mode] / 1e6);
      tableCell(Ratio);
      tableCell(Out.Epochs);
      tableCell(Out.Scrapes);
      tableEnd();
      if (Mode == Epoch && Ratio > 1.02)
        Pass = false;
    }
  }
  std::printf(
      "\nepoch/plain <= 1.02 on both workloads: %s\n",
      Pass ? "PASS"
           : "not met this run — a fold is O(shards x counters) per "
             "collection, far\nbelow the collection itself; misses here "
             "are machine noise, re-run before\nreading anything into "
             "the ratio");
}

std::unique_ptr<CompiledProgram> &arithProg() {
  static auto P = compileOrDie(wl::arithKernel(200000));
  return P;
}
std::unique_ptr<CompiledProgram> &churnProg() {
  static auto P = compileOrDie(wl::generationalChurn(200, 20, 400));
  return P;
}

void BM_Arith(benchmark::State &State, ObserveMode Mode) {
  for (auto _ : State) {
    RunOut Out;
    Stats St = observedRun(*arithProg(), GcAlgorithm::Copying, HeapBytes, 0,
                           Mode, &Out);
    State.counters["steps"] = (double)St.get(StatId::VmSteps);
    benchmark::DoNotOptimize(Out.WallNs);
  }
}

void BM_GenChurn(benchmark::State &State, ObserveMode Mode) {
  for (auto _ : State) {
    RunOut Out;
    Stats St = observedRun(*churnProg(), GcAlgorithm::Generational,
                           GenHeapBytes, GenNurseryBytes, Mode, &Out);
    State.counters["collections"] = (double)St.get(StatId::GcCollections);
    State.counters["epochs"] = (double)Out.Epochs;
    benchmark::DoNotOptimize(Out.WallNs);
  }
}

BENCHMARK_CAPTURE(BM_Arith, plain, Plain);
BENCHMARK_CAPTURE(BM_Arith, epoch, Epoch);
BENCHMARK_CAPTURE(BM_Arith, serve, Serve);
BENCHMARK_CAPTURE(BM_GenChurn, plain, Plain);
BENCHMARK_CAPTURE(BM_GenChurn, epoch, Epoch);
BENCHMARK_CAPTURE(BM_GenChurn, serve, Serve);

} // namespace

int main(int argc, char **argv) {
  JsonSink Sink("observe", argc, argv);
  reportCost();
  std::printf(
      "\nExpected shape: 'epoch' tracks 'plain' within noise — shard "
      "folding rides\ninside the collection pause it observes — and "
      "'serve' stays flat because the\nscraper reads prebuilt strings "
      "on its own thread. Observability that is\nactually watched "
      "costs the mutator nothing it wasn't already paying.\n\n");
  benchmark::Initialize(&argc, argv);
  Sink.runBenchmarksAndWrite();
  return 0;
}
