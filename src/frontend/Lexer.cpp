//===- frontend/Lexer.cpp -------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace tfgc;

const char *tfgc::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:        return "end of input";
  case TokenKind::Error:      return "invalid token";
  case TokenKind::IntLit:     return "integer literal";
  case TokenKind::FloatLit:   return "float literal";
  case TokenKind::Ident:      return "identifier";
  case TokenKind::CapIdent:   return "constructor";
  case TokenKind::TyVar:      return "type variable";
  case TokenKind::KwLet:      return "'let'";
  case TokenKind::KwIn:       return "'in'";
  case TokenKind::KwEnd:      return "'end'";
  case TokenKind::KwFun:      return "'fun'";
  case TokenKind::KwAnd:      return "'and'";
  case TokenKind::KwVal:      return "'val'";
  case TokenKind::KwIf:       return "'if'";
  case TokenKind::KwThen:     return "'then'";
  case TokenKind::KwElse:     return "'else'";
  case TokenKind::KwCase:     return "'case'";
  case TokenKind::KwOf:       return "'of'";
  case TokenKind::KwFn:       return "'fn'";
  case TokenKind::KwDatatype: return "'datatype'";
  case TokenKind::KwRef:      return "'ref'";
  case TokenKind::KwTrue:     return "'true'";
  case TokenKind::KwFalse:    return "'false'";
  case TokenKind::KwAndalso:  return "'andalso'";
  case TokenKind::KwOrelse:   return "'orelse'";
  case TokenKind::KwMod:      return "'mod'";
  case TokenKind::KwNot:      return "'not'";
  case TokenKind::KwPrint:    return "'print'";
  case TokenKind::LParen:     return "'('";
  case TokenKind::RParen:     return "')'";
  case TokenKind::LBracket:   return "'['";
  case TokenKind::RBracket:   return "']'";
  case TokenKind::Comma:      return "','";
  case TokenKind::Semi:       return "';'";
  case TokenKind::Pipe:       return "'|'";
  case TokenKind::DArrow:     return "'=>'";
  case TokenKind::Arrow:      return "'->'";
  case TokenKind::Equal:      return "'='";
  case TokenKind::NotEqual:   return "'<>'";
  case TokenKind::Less:       return "'<'";
  case TokenKind::Greater:    return "'>'";
  case TokenKind::LessEq:     return "'<='";
  case TokenKind::GreaterEq:  return "'>='";
  case TokenKind::Plus:       return "'+'";
  case TokenKind::Minus:      return "'-'";
  case TokenKind::Star:       return "'*'";
  case TokenKind::Slash:      return "'/'";
  case TokenKind::FPlus:      return "'+.'";
  case TokenKind::FMinus:     return "'-.'";
  case TokenKind::FStar:      return "'*.'";
  case TokenKind::FSlash:     return "'/.'";
  case TokenKind::FLess:      return "'<.'";
  case TokenKind::FEqual:     return "'=.'";
  case TokenKind::ColonColon: return "'::'";
  case TokenKind::Colon:      return "':'";
  case TokenKind::Assign:     return "':='";
  case TokenKind::Bang:       return "'!'";
  case TokenKind::Tilde:      return "'~'";
  case TokenKind::Underscore: return "'_'";
  }
  return "token";
}

static const std::unordered_map<std::string, TokenKind> &keywordTable() {
  static const std::unordered_map<std::string, TokenKind> Table = {
      {"let", TokenKind::KwLet},           {"in", TokenKind::KwIn},
      {"end", TokenKind::KwEnd},           {"fun", TokenKind::KwFun},
      {"and", TokenKind::KwAnd},           {"val", TokenKind::KwVal},
      {"if", TokenKind::KwIf},             {"then", TokenKind::KwThen},
      {"else", TokenKind::KwElse},         {"case", TokenKind::KwCase},
      {"of", TokenKind::KwOf},             {"fn", TokenKind::KwFn},
      {"datatype", TokenKind::KwDatatype}, {"ref", TokenKind::KwRef},
      {"true", TokenKind::KwTrue},         {"false", TokenKind::KwFalse},
      {"andalso", TokenKind::KwAndalso},   {"orelse", TokenKind::KwOrelse},
      {"mod", TokenKind::KwMod},           {"not", TokenKind::KwNot},
      {"print", TokenKind::KwPrint},
  };
  return Table;
}

Lexer::Lexer(std::string Source, DiagnosticEngine &Diags)
    : Source(std::move(Source)), Diags(Diags) {}

char Lexer::peek(size_t Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipTrivia() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    // Nested (* ... *) comments.
    if (C == '(' && peek(1) == '*') {
      SourceLoc Start = loc();
      advance();
      advance();
      int Depth = 1;
      while (Depth > 0) {
        if (Pos >= Source.size()) {
          Diags.error(Start, "unterminated comment");
          return;
        }
        if (peek() == '(' && peek(1) == '*') {
          advance();
          advance();
          ++Depth;
        } else if (peek() == '*' && peek(1) == ')') {
          advance();
          advance();
          --Depth;
        } else {
          advance();
        }
      }
      continue;
    }
    return;
  }
}

Token Lexer::makeSimple(TokenKind Kind, SourceLoc Loc) {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  return T;
}

Token Lexer::lexNumber(SourceLoc Loc) {
  size_t Start = Pos;
  while (std::isdigit((unsigned char)peek()))
    advance();
  bool IsFloat = false;
  // A '.' starts a fraction only when followed by a digit, so "1." is the
  // integer 1 followed by a stray dot (an error later).
  if (peek() == '.' && std::isdigit((unsigned char)peek(1))) {
    IsFloat = true;
    advance();
    while (std::isdigit((unsigned char)peek()))
      advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    size_t Save = Pos;
    advance();
    if (peek() == '-' || peek() == '+')
      advance();
    if (std::isdigit((unsigned char)peek())) {
      IsFloat = true;
      while (std::isdigit((unsigned char)peek()))
        advance();
    } else {
      Pos = Save; // Not an exponent; re-lex 'e' as an identifier later.
    }
  }
  std::string Text = Source.substr(Start - 0, Pos - Start);
  Token T;
  T.Loc = Loc;
  if (IsFloat) {
    T.Kind = TokenKind::FloatLit;
    T.FloatValue = std::strtod(Text.c_str(), nullptr);
  } else {
    T.Kind = TokenKind::IntLit;
    T.IntValue = std::strtoll(Text.c_str(), nullptr, 10);
  }
  return T;
}

Token Lexer::lexWord(SourceLoc Loc) {
  size_t Start = Pos;
  while (std::isalnum((unsigned char)peek()) || peek() == '_' ||
         peek() == '\'')
    advance();
  std::string Text = Source.substr(Start, Pos - Start);
  auto It = keywordTable().find(Text);
  Token T;
  T.Loc = Loc;
  if (It != keywordTable().end()) {
    T.Kind = It->second;
    return T;
  }
  T.Kind = std::isupper((unsigned char)Text[0]) ? TokenKind::CapIdent
                                                : TokenKind::Ident;
  T.Text = std::move(Text);
  return T;
}

Token Lexer::lexTyVar(SourceLoc Loc) {
  size_t Start = Pos;
  while (std::isalnum((unsigned char)peek()) || peek() == '_')
    advance();
  Token T;
  T.Kind = TokenKind::TyVar;
  T.Loc = Loc;
  T.Text = Source.substr(Start, Pos - Start);
  if (T.Text.empty()) {
    Diags.error(Loc, "expected type variable name after '");
    T.Kind = TokenKind::Error;
  }
  return T;
}

Token Lexer::next() {
  skipTrivia();
  SourceLoc Loc = loc();
  if (Pos >= Source.size())
    return makeSimple(TokenKind::Eof, Loc);

  char C = peek();
  if (std::isdigit((unsigned char)C)) {
    return lexNumber(Loc);
  }
  if (std::isalpha((unsigned char)C)) {
    return lexWord(Loc);
  }

  advance();
  switch (C) {
  case '\'':
    return lexTyVar(Loc);
  case '(':
    return makeSimple(TokenKind::LParen, Loc);
  case ')':
    return makeSimple(TokenKind::RParen, Loc);
  case '[':
    return makeSimple(TokenKind::LBracket, Loc);
  case ']':
    return makeSimple(TokenKind::RBracket, Loc);
  case ',':
    return makeSimple(TokenKind::Comma, Loc);
  case ';':
    return makeSimple(TokenKind::Semi, Loc);
  case '|':
    return makeSimple(TokenKind::Pipe, Loc);
  case '_':
    return makeSimple(TokenKind::Underscore, Loc);
  case '~':
    return makeSimple(TokenKind::Tilde, Loc);
  case '!':
    return makeSimple(TokenKind::Bang, Loc);
  case '+':
    return makeSimple(match('.') ? TokenKind::FPlus : TokenKind::Plus, Loc);
  case '-':
    if (match('>'))
      return makeSimple(TokenKind::Arrow, Loc);
    return makeSimple(match('.') ? TokenKind::FMinus : TokenKind::Minus, Loc);
  case '*':
    return makeSimple(match('.') ? TokenKind::FStar : TokenKind::Star, Loc);
  case '/':
    return makeSimple(match('.') ? TokenKind::FSlash : TokenKind::Slash, Loc);
  case '=':
    if (match('>'))
      return makeSimple(TokenKind::DArrow, Loc);
    return makeSimple(match('.') ? TokenKind::FEqual : TokenKind::Equal, Loc);
  case '<':
    if (match('>'))
      return makeSimple(TokenKind::NotEqual, Loc);
    if (match('='))
      return makeSimple(TokenKind::LessEq, Loc);
    return makeSimple(match('.') ? TokenKind::FLess : TokenKind::Less, Loc);
  case '>':
    return makeSimple(match('=') ? TokenKind::GreaterEq : TokenKind::Greater,
                      Loc);
  case ':':
    if (match(':'))
      return makeSimple(TokenKind::ColonColon, Loc);
    if (match('='))
      return makeSimple(TokenKind::Assign, Loc);
    return makeSimple(TokenKind::Colon, Loc);
  default:
    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    return makeSimple(TokenKind::Error, Loc);
  }
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> Tokens;
  for (;;) {
    Tokens.push_back(next());
    if (Tokens.back().Kind == TokenKind::Eof)
      return Tokens;
  }
}
