//===- frontend/Ast.h - MiniML abstract syntax ------------------*- C++ -*-===//
///
/// \file
/// The MiniML AST: syntactic types, patterns, expressions and declarations.
/// Nodes carry a `Ty` slot that the type checker fills in; everything
/// downstream (lowering, GC metadata) reads types from here.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_FRONTEND_AST_H
#define TFGC_FRONTEND_AST_H

#include "support/Casting.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace tfgc {

class Type; // from types/Type.h; filled in by inference.

//===----------------------------------------------------------------------===//
// Syntactic types (as written in the source)
//===----------------------------------------------------------------------===//

struct TypeAst;
using TypeAstPtr = std::unique_ptr<TypeAst>;

enum class TypeAstKind : uint8_t {
  Var,   ///< 'a
  Name,  ///< int, bool, unit, float, or a datatype application: int list
  Fun,   ///< (t1, ..., tn) -> t   (n-ary, uncurried)
  Tuple, ///< t1 * ... * tn
};

struct TypeAst {
  TypeAstKind Kind;
  SourceLoc Loc;
  std::string Name;             ///< Var: tyvar spelling; Name: constructor.
  std::vector<TypeAstPtr> Args; ///< Name: type arguments; Fun: parameters;
                                ///< Tuple: elements.
  TypeAstPtr Result;            ///< Fun only.

  TypeAst(TypeAstKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
};

//===----------------------------------------------------------------------===//
// Patterns
//===----------------------------------------------------------------------===//

struct Pattern;
using PatternPtr = std::unique_ptr<Pattern>;

enum class PatternKind : uint8_t {
  Wild,  ///< _
  Var,   ///< x
  Int,   ///< 42
  Bool,  ///< true / false
  Tuple, ///< (p1, ..., pn)
  Ctor,  ///< Cons (p1, p2) or Nil
};

struct Pattern {
  PatternKind Kind;
  SourceLoc Loc;
  std::string Name; ///< Var / Ctor name.
  int64_t IntValue = 0;
  bool BoolValue = false;
  std::vector<PatternPtr> Elems; ///< Tuple elements or Ctor arguments.
  TypeAstPtr Annot;              ///< Optional `(x : ty)` annotation.
  Type *Ty = nullptr;            ///< Filled in by type inference.

  Pattern(PatternKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

class Expr;
using ExprPtr = std::unique_ptr<Expr>;
struct Decl;
using DeclPtr = std::unique_ptr<Decl>;

enum class ExprKind : uint8_t {
  Int,
  Float,
  Bool,
  Unit,
  Var,
  Ctor,
  Tuple,
  If,
  Let,
  Fn,
  App,
  Prim,
  Case,
  Seq,
  Annot,
};

/// Primitive operations. Arithmetic and comparisons are monomorphic by
/// operator (int vs. float spellings) so inference stays vanilla HM.
enum class PrimOp : uint8_t {
  Add, Sub, Mul, Div, Mod, Neg,
  Lt, Le, Gt, Ge, Eq, Ne,
  Not,
  FAdd, FSub, FMul, FDiv, FNeg, FLt, FEq,
  IntToFloat,
  Print,  ///< print : int -> unit (appends to the VM output buffer)
  RefNew, ///< ref : 'a -> 'a ref
  RefGet, ///< !  : 'a ref -> 'a
  RefSet, ///< := : 'a ref * 'a -> unit
};

class Expr {
public:
  const ExprKind Kind;
  SourceLoc Loc;
  Type *Ty = nullptr; ///< Filled in by type inference.

  ExprKind getKind() const { return Kind; }
  virtual ~Expr() = default;

protected:
  Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
};

class IntExpr : public Expr {
public:
  int64_t Value;
  IntExpr(SourceLoc Loc, int64_t Value)
      : Expr(ExprKind::Int, Loc), Value(Value) {}
  static bool classof(const Expr *E) { return E->getKind() == ExprKind::Int; }
};

class FloatExpr : public Expr {
public:
  double Value;
  FloatExpr(SourceLoc Loc, double Value)
      : Expr(ExprKind::Float, Loc), Value(Value) {}
  static bool classof(const Expr *E) { return E->getKind() == ExprKind::Float; }
};

class BoolExpr : public Expr {
public:
  bool Value;
  BoolExpr(SourceLoc Loc, bool Value)
      : Expr(ExprKind::Bool, Loc), Value(Value) {}
  static bool classof(const Expr *E) { return E->getKind() == ExprKind::Bool; }
};

class UnitExpr : public Expr {
public:
  explicit UnitExpr(SourceLoc Loc) : Expr(ExprKind::Unit, Loc) {}
  static bool classof(const Expr *E) { return E->getKind() == ExprKind::Unit; }
};

class VarExpr : public Expr {
public:
  std::string Name;
  VarExpr(SourceLoc Loc, std::string Name)
      : Expr(ExprKind::Var, Loc), Name(std::move(Name)) {}
  static bool classof(const Expr *E) { return E->getKind() == ExprKind::Var; }
};

class CtorExpr : public Expr {
public:
  std::string Name;
  std::vector<ExprPtr> Args;
  CtorExpr(SourceLoc Loc, std::string Name, std::vector<ExprPtr> Args)
      : Expr(ExprKind::Ctor, Loc), Name(std::move(Name)),
        Args(std::move(Args)) {}
  static bool classof(const Expr *E) { return E->getKind() == ExprKind::Ctor; }
};

class TupleExpr : public Expr {
public:
  std::vector<ExprPtr> Elems;
  TupleExpr(SourceLoc Loc, std::vector<ExprPtr> Elems)
      : Expr(ExprKind::Tuple, Loc), Elems(std::move(Elems)) {}
  static bool classof(const Expr *E) { return E->getKind() == ExprKind::Tuple; }
};

class IfExpr : public Expr {
public:
  ExprPtr Cond, Then, Else;
  IfExpr(SourceLoc Loc, ExprPtr Cond, ExprPtr Then, ExprPtr Else)
      : Expr(ExprKind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
  static bool classof(const Expr *E) { return E->getKind() == ExprKind::If; }
};

class LetExpr : public Expr {
public:
  std::vector<DeclPtr> Decls;
  ExprPtr Body;
  LetExpr(SourceLoc Loc, std::vector<DeclPtr> Decls, ExprPtr Body)
      : Expr(ExprKind::Let, Loc), Decls(std::move(Decls)),
        Body(std::move(Body)) {}
  static bool classof(const Expr *E) { return E->getKind() == ExprKind::Let; }
};

/// An anonymous unary function: `fn p => e`.
class FnExpr : public Expr {
public:
  PatternPtr Param;
  ExprPtr Body;
  FnExpr(SourceLoc Loc, PatternPtr Param, ExprPtr Body)
      : Expr(ExprKind::Fn, Loc), Param(std::move(Param)),
        Body(std::move(Body)) {}
  static bool classof(const Expr *E) { return E->getKind() == ExprKind::Fn; }
};

/// Saturated application `f a1 ... an`. MiniML functions are n-ary and
/// uncurried; partial application is a type error.
class AppExpr : public Expr {
public:
  ExprPtr Fn;
  std::vector<ExprPtr> Args;
  AppExpr(SourceLoc Loc, ExprPtr Fn, std::vector<ExprPtr> Args)
      : Expr(ExprKind::App, Loc), Fn(std::move(Fn)), Args(std::move(Args)) {}
  static bool classof(const Expr *E) { return E->getKind() == ExprKind::App; }
};

class PrimExpr : public Expr {
public:
  PrimOp Op;
  std::vector<ExprPtr> Args;
  PrimExpr(SourceLoc Loc, PrimOp Op, std::vector<ExprPtr> Args)
      : Expr(ExprKind::Prim, Loc), Op(Op), Args(std::move(Args)) {}
  static bool classof(const Expr *E) { return E->getKind() == ExprKind::Prim; }
};

struct CaseClause {
  PatternPtr Pat;
  ExprPtr Body;
};

class CaseExpr : public Expr {
public:
  ExprPtr Scrut;
  std::vector<CaseClause> Clauses;
  CaseExpr(SourceLoc Loc, ExprPtr Scrut, std::vector<CaseClause> Clauses)
      : Expr(ExprKind::Case, Loc), Scrut(std::move(Scrut)),
        Clauses(std::move(Clauses)) {}
  static bool classof(const Expr *E) { return E->getKind() == ExprKind::Case; }
};

/// `(e1; e2; ...; en)` — evaluates all, yields the last.
class SeqExpr : public Expr {
public:
  std::vector<ExprPtr> Elems;
  SeqExpr(SourceLoc Loc, std::vector<ExprPtr> Elems)
      : Expr(ExprKind::Seq, Loc), Elems(std::move(Elems)) {}
  static bool classof(const Expr *E) { return E->getKind() == ExprKind::Seq; }
};

class AnnotExpr : public Expr {
public:
  ExprPtr Body;
  TypeAstPtr Annot;
  AnnotExpr(SourceLoc Loc, ExprPtr Body, TypeAstPtr Annot)
      : Expr(ExprKind::Annot, Loc), Body(std::move(Body)),
        Annot(std::move(Annot)) {}
  static bool classof(const Expr *E) { return E->getKind() == ExprKind::Annot; }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

enum class DeclKind : uint8_t { Datatype, Fun, Val };

struct CtorDef {
  std::string Name;
  std::vector<TypeAstPtr> Fields; ///< `C of t1 * ... * tn` has n fields.
  SourceLoc Loc;
};

struct FunBind {
  std::string Name;
  std::vector<PatternPtr> Params;
  TypeAstPtr RetAnnot; ///< Optional result annotation.
  ExprPtr Body;
  SourceLoc Loc;
};

struct Decl {
  DeclKind Kind;
  SourceLoc Loc;

  // Datatype.
  std::string Name;
  std::vector<std::string> TyVars;
  std::vector<CtorDef> Ctors;

  // Fun: a `fun ... and ...` mutually recursive group.
  std::vector<FunBind> Binds;

  // Val.
  PatternPtr Pat;
  ExprPtr Init;

  Decl(DeclKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
};

/// A whole program: top-level declarations followed by an optional result
/// expression (defaults to `()`).
struct Program {
  std::vector<DeclPtr> Decls;
  ExprPtr Main;
};

} // namespace tfgc

#endif // TFGC_FRONTEND_AST_H
