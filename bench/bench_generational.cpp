//===- bench/bench_generational.cpp - E10: minor/major pause split -------===//
///
/// The generational payoff for a tag-free heap: with a retained live
/// structure that a full collection must recopy every time, minor
/// collections — which touch only nursery survivors plus the remembered
/// set — should pause far shorter than full copying collections at the
/// same total heap size. This bench fixes the heap, runs the
/// retained-live churn workload under full copying and under the
/// generational algorithm for every strategy, and reports the pause
/// percentile split, the write-barrier/remembered-set counters, and (with
/// --verify) the young-object census invariant
/// (allocated == promoted + young-dead + nursery-resident).
///
/// Acceptance line: generational minor p90 at least 3x below full
/// copying p90 for the compiled tag-free strategy.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace tfgc;
using namespace tfgc::bench;
namespace wl = tfgc::workloads;

namespace {

const GcStrategy Strategies[] = {
    GcStrategy::Tagged,
    GcStrategy::CompiledTagFree,
    GcStrategy::InterpretedTagFree,
    GcStrategy::AppelTagFree,
};

constexpr size_t HeapBytes = 1 << 20;
constexpr size_t NurseryBytes = 1 << 13;

std::string churnSource() { return wl::generationalChurn(20000, 30, 4000); }

/// Full-copying p90 per strategy, keyed by enum order; filled by the
/// first table and consumed by the speedup summary.
uint64_t CopyP90[4];

void reportPauses() {
  jsonWorkload("generationalChurn");
  tableHeader("E10: minor/major pause split at equal total heap",
              "retained-live churn; pauses in microseconds from the "
              "telemetry histograms; copying rows are full collections, "
              "generational rows split minor/major",
              {"strategy/algo", "collections", "minors", "majors",
               "p50 us", "p90 us", "p99 us", "major p90 us"});
  for (size_t I = 0; I < 4; ++I) {
    GcStrategy S = Strategies[I];
    Stats St = runOnce(churnSource(), S, GcAlgorithm::Copying, HeapBytes);
    CopyP90[I] = St.get(StatId::GcPauseNsP90);
    tableCell(std::string(gcStrategyName(S)) + "/copy");
    tableCell(St.get(StatId::GcCollections));
    tableCell(uint64_t(0));
    tableCell(uint64_t(0));
    tableCell((double)St.get(StatId::GcPauseNsP50) / 1000.0);
    tableCell((double)St.get(StatId::GcPauseNsP90) / 1000.0);
    tableCell((double)St.get(StatId::GcPauseNsP99) / 1000.0);
    tableCell(0.0);
    tableEnd();
  }
  for (GcStrategy S : Strategies) {
    Stats St = runOnce(churnSource(), S, GcAlgorithm::Generational,
                       HeapBytes, false, {}, NurseryBytes);
    tableCell(std::string(gcStrategyName(S)) + "/gen");
    tableCell(St.get(StatId::GcCollections));
    tableCell(St.get(StatId::GcMinorCollections));
    tableCell(St.get(StatId::GcMajorCollections));
    tableCell((double)St.get("gc.minor_pause_ns_p50") / 1000.0);
    tableCell((double)St.get("gc.minor_pause_ns_p90") / 1000.0);
    tableCell((double)St.get("gc.minor_pause_ns_p99") / 1000.0);
    tableCell((double)St.get("gc.major_pause_ns_p90") / 1000.0);
    tableEnd();
  }

  // The acceptance criterion, stated against the compiled strategy.
  Stats Gen = runOnce(churnSource(), GcStrategy::CompiledTagFree,
                      GcAlgorithm::Generational, HeapBytes, false, {},
                      NurseryBytes);
  uint64_t MinorP90 = Gen.get("gc.minor_pause_ns_p90");
  double Speedup = MinorP90 ? (double)CopyP90[1] / (double)MinorP90 : 0.0;
  std::printf("\ncompiled minor p90 = %.1f us, full-copying p90 = %.1f us, "
              "ratio = %.1fx (criterion >= 3x): %s\n",
              (double)MinorP90 / 1000.0, (double)CopyP90[1] / 1000.0,
              Speedup, Speedup >= 3.0 ? "PASS" : "FAIL");
  if (Speedup < 3.0)
    std::fprintf(stderr, "warning: minor-pause speedup below 3x\n");
}

void reportBarriers() {
  tableHeader("E10b: write barrier and remembered set",
              "mutation workloads under the generational algorithm; "
              "'dedup' = barrier executions per recorded remset entry",
              {"workload", "strategy", "barrier ops", "remset entries",
               "dedup", "promoted words", "minors", "majors"});
  struct Row {
    const char *Name;
    std::string Src;
  } Rows[] = {
      {"generationalChurn", churnSource()},
      {"refCells", wl::refCells(2000)},
  };
  for (const Row &R : Rows) {
    jsonWorkload(R.Name);
    for (GcStrategy S : Strategies) {
      Stats St = runOnce(R.Src, S, GcAlgorithm::Generational, HeapBytes,
                         false, {}, NurseryBytes);
      uint64_t Ops = St.get(StatId::GcBarrierOps);
      uint64_t Entries = St.get(StatId::GcRemsetEntries);
      tableCell(R.Name);
      tableCell(gcStrategyName(S));
      tableCell(Ops);
      tableCell(Entries);
      tableCell(Entries ? (double)Ops / (double)Entries : 0.0);
      tableCell(St.get(StatId::GcPromotedWords));
      tableCell(St.get(StatId::GcMinorCollections));
      tableCell(St.get(StatId::GcMajorCollections));
      tableEnd();
      if (!Ops)
        std::fprintf(stderr, "warning: no barrier ops under %s\n",
                     gcStrategyName(S));
    }
  }
}

/// --verify: rerun the workloads with after-GC graph verification on and
/// check the young-object census invariant. Aborts on any violation —
/// a bench that measures a broken heap is worse than no bench.
void verifyCensus() {
  std::printf("\n=== E10v: census invariant under --verify ===\n");
  const std::string Sources[] = {churnSource(), wl::refCells(2000)};
  for (const std::string &Src : Sources) {
    for (GcStrategy S : Strategies) {
      auto P = compileOrDie(Src);
      Stats St;
      std::string Err;
      auto Col = P->makeCollector(S, GcAlgorithm::Generational, HeapBytes,
                                  St, &Err, NurseryBytes);
      if (!Col) {
        std::fprintf(stderr, "makeCollector failed: %s\n", Err.c_str());
        std::abort();
      }
      Col->setVerifyAfterGc(true);
      Vm M(P->Prog, P->Image, *P->Types, *Col, defaultVmOptions(S));
      RunResult R = M.run();
      if (!R.Ok) {
        std::fprintf(stderr, "run failed under %s: %s\n", gcStrategyName(S),
                     R.Error.c_str());
        std::abort();
      }
      uint64_t Allocated = St.get(StatId::HeapObjectsAllocated);
      uint64_t Promoted = St.get("gc.promoted_objects");
      uint64_t Dead = St.get("gc.young_dead_objects");
      uint64_t Resident = St.get("gc.nursery_resident_objects");
      uint64_t Violations = St.get(StatId::GcVerifyViolations);
      std::printf("%-22s allocated=%llu promoted=%llu dead=%llu "
                  "resident=%llu violations=%llu\n",
                  gcStrategyName(S), (unsigned long long)Allocated,
                  (unsigned long long)Promoted, (unsigned long long)Dead,
                  (unsigned long long)Resident,
                  (unsigned long long)Violations);
      if (Allocated != Promoted + Dead + Resident || Violations) {
        std::fprintf(stderr, "census invariant violated under %s\n",
                     gcStrategyName(S));
        std::abort();
      }
    }
  }
  std::printf("census ok\n");
}

std::unique_ptr<CompiledProgram> &churn() {
  static auto P = compileOrDie(churnSource());
  return P;
}

void BM_GenChurn(benchmark::State &State, GcAlgorithm A, size_t Nursery) {
  timedRun(State, *churn(), GcStrategy::CompiledTagFree, A, HeapBytes,
           false, false, Nursery);
}

BENCHMARK_CAPTURE(BM_GenChurn, copying, GcAlgorithm::Copying, 0);
BENCHMARK_CAPTURE(BM_GenChurn, marksweep, GcAlgorithm::MarkSweep, 0);
BENCHMARK_CAPTURE(BM_GenChurn, generational, GcAlgorithm::Generational,
                  NurseryBytes);
BENCHMARK_CAPTURE(BM_GenChurn, generational_big_nursery,
                  GcAlgorithm::Generational, size_t(1) << 15);

} // namespace

int main(int argc, char **argv) {
  JsonSink Sink("generational", argc, argv);
  // Strip --verify before google-benchmark sees it.
  bool Verify = false;
  int Out = 1;
  for (int I = 1; I < argc; ++I) {
    if (std::string(argv[I]) == "--verify")
      Verify = true;
    else
      argv[Out++] = argv[I];
  }
  argc = Out;

  reportPauses();
  reportBarriers();
  if (Verify)
    verifyCensus();
  std::printf(
      "\nExpected shape: minor pauses track nursery survivors, not the "
      "retained list,\nso the generational minor p90 sits well below the "
      "full-copying p90; majors are\nrare and cost about what a full "
      "copying collection costs.\n\n");
  benchmark::Initialize(&argc, argv);
  Sink.runBenchmarksAndWrite();
  return 0;
}
