//===- ir/Monomorphise.h - Whole-program specialization ---------*- C++ -*-===//
///
/// \file
/// The alternative the paper's section 3 exists to avoid: instead of
/// collecting polymorphic frames with run-time type-GC routines, clone
/// every polymorphic function at each ground instantiation reachable from
/// main. Afterwards no function has type parameters, every slot type is
/// ground, the section-2 monomorphic collector handles everything — and
/// even Goldberg-'91-non-reconstructible closures become collectible
/// (their type variables are gone). The costs are code growth and the
/// loss of separate compilation, which is exactly why the paper keeps
/// "only one definition of each polymorphic function".
///
/// Requires main to be monomorphic (it is, by construction) and rank-1
/// polymorphism without polymorphic recursion (guaranteed by HM).
/// Unreachable functions are dropped as a side effect.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_IR_MONOMORPHISE_H
#define TFGC_IR_MONOMORPHISE_H

#include "ir/Ir.h"

namespace tfgc {

struct MonomorphiseResult {
  unsigned FunctionsBefore = 0;
  unsigned FunctionsAfter = 0;
  unsigned Specializations = 0; ///< Clones beyond one per polymorphic fn.
};

/// Rewrites \p P in place. All call-site analyses (trace sets, GC points,
/// code image, metadata) must run *after* this pass.
MonomorphiseResult monomorphise(IrProgram &P);

} // namespace tfgc

#endif // TFGC_IR_MONOMORPHISE_H
