//===- frontend/Lexer.h - MiniML lexer --------------------------*- C++ -*-===//
///
/// \file
/// Hand-written lexer for MiniML. Supports nested (* ... *) comments.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_FRONTEND_LEXER_H
#define TFGC_FRONTEND_LEXER_H

#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace tfgc {

class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags);

  /// Lexes the next token (Eof forever once the input is exhausted).
  Token next();

  /// Lexes the whole buffer. The final token is Eof.
  std::vector<Token> tokenize();

private:
  std::string Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;

  char peek(size_t Ahead = 0) const;
  char advance();
  bool match(char Expected);
  void skipTrivia();
  SourceLoc loc() const { return SourceLoc(Line, Col); }

  Token makeSimple(TokenKind Kind, SourceLoc Loc);
  Token lexNumber(SourceLoc Loc);
  Token lexWord(SourceLoc Loc);
  Token lexTyVar(SourceLoc Loc);
};

} // namespace tfgc

#endif // TFGC_FRONTEND_LEXER_H
