file(REMOVE_RECURSE
  "CMakeFiles/bench_poly.dir/bench_poly.cpp.o"
  "CMakeFiles/bench_poly.dir/bench_poly.cpp.o.d"
  "bench_poly"
  "bench_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
