
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/Ir.cpp" "src/ir/CMakeFiles/tfgc_ir.dir/Ir.cpp.o" "gcc" "src/ir/CMakeFiles/tfgc_ir.dir/Ir.cpp.o.d"
  "/root/repo/src/ir/Lower.cpp" "src/ir/CMakeFiles/tfgc_ir.dir/Lower.cpp.o" "gcc" "src/ir/CMakeFiles/tfgc_ir.dir/Lower.cpp.o.d"
  "/root/repo/src/ir/Monomorphise.cpp" "src/ir/CMakeFiles/tfgc_ir.dir/Monomorphise.cpp.o" "gcc" "src/ir/CMakeFiles/tfgc_ir.dir/Monomorphise.cpp.o.d"
  "/root/repo/src/ir/Verify.cpp" "src/ir/CMakeFiles/tfgc_ir.dir/Verify.cpp.o" "gcc" "src/ir/CMakeFiles/tfgc_ir.dir/Verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/types/CMakeFiles/tfgc_types.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/tfgc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tfgc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
