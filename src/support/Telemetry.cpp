//===- support/Telemetry.cpp ----------------------------------------------===//

#include "support/Telemetry.h"

#include "support/BuildInfo.h"
#include "support/FlightRecorder.h"

#include <cassert>
#include <cmath>
#include <ostream>

using namespace tfgc;

const char *tfgc::gcPhaseName(GcPhase P) {
  switch (P) {
  case GcPhase::RootScan:       return "root_scan";
  case GcPhase::PtrReversal:    return "ptr_reversal";
  case GcPhase::FrameDispatch:  return "frame_dispatch";
  case GcPhase::TgClosureBuild: return "tg_closure_build";
  case GcPhase::CopySweep:      return "copy_sweep";
  case GcPhase::RemsetScan:     return "remset_scan";
  case GcPhase::Verify:         return "verify";
  case GcPhase::NumPhases:      break;
  }
  return "?";
}

const char *tfgc::gcEventKindName(GcEventKind K) {
  switch (K) {
  case GcEventKind::Full:     return "full";
  case GcEventKind::Minor:    return "minor";
  case GcEventKind::Major:    return "major";
  case GcEventKind::NumKinds: break;
  }
  return "?";
}

const char *tfgc::censusKindName(CensusKind K) {
  switch (K) {
  case CensusKind::Tuple:      return "tuple";
  case CensusKind::Data:       return "data";
  case CensusKind::Closure:    return "closure";
  case CensusKind::Ref:        return "ref";
  case CensusKind::Raw:        return "raw";
  case CensusKind::TaggedScan: return "tagged_scan";
  case CensusKind::NumKinds:   break;
  }
  return "?";
}

uint64_t LogHistogram::percentile(double P) const {
  if (N == 0)
    return 0;
  double Frac = P / 100.0;
  if (Frac < 0.0)
    Frac = 0.0;
  if (Frac > 1.0)
    Frac = 1.0;
  uint64_t Rank = (uint64_t)std::ceil(Frac * (double)N);
  if (Rank < 1)
    Rank = 1;
  uint64_t Seen = 0;
  for (size_t I = 0; I < NumBuckets; ++I) {
    Seen += Counts[I];
    if (Seen >= Rank) {
      uint64_t Hi = bucketHi(I);
      return Hi < MaxV ? Hi : MaxV;
    }
  }
  return MaxV;
}

Telemetry::Telemetry(size_t RingCapacity)
    : Ring(RingCapacity ? RingCapacity : 1),
      Epoch(std::chrono::steady_clock::now()) {}

uint64_t Telemetry::nowNs() const {
  return (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - Epoch)
      .count();
}

void Telemetry::beginCollection(GcEventKind Kind) {
  assert(!InCollection && "collection already open");
  Event = GcEvent{};
  Event.Kind = Kind;
  Event.Tid = TraceTid;
  Event.Seq = TotalCollections;
  Event.StartNs = nowNs();
  LastMarkNs = Event.StartNs;
  Cur = GcPhase::NumPhases;
  Paused = false;
  InCollection = true;
  if (Flight) [[unlikely]]
    Flight->record(FlightEventType::GcBegin, (uint32_t)Kind, Event.Seq);
}

GcPhase Telemetry::switchPhase(GcPhase P) {
  if (!InCollection || Paused)
    return Cur;
  uint64_t Now = nowNs();
  if (Cur != GcPhase::NumPhases)
    Event.PhaseNs[(size_t)Cur] += Now - LastMarkNs;
  LastMarkNs = Now;
  GcPhase Prev = Cur;
  Cur = P;
  if (Flight) [[unlikely]]
    Flight->record(FlightEventType::GcPhase, (uint32_t)P, (uint64_t)Prev);
  return Prev;
}

void Telemetry::finishCollection(uint64_t LiveWordsAfter,
                                 uint64_t HeapCapacityBytesAfter) {
  assert(InCollection && "no collection open");
  uint64_t Now = nowNs();
  if (Cur != GcPhase::NumPhases && !Paused)
    Event.PhaseNs[(size_t)Cur] += Now - LastMarkNs;
  Cur = GcPhase::NumPhases;
  Event.PauseNs = Now - Event.StartNs;
  Event.LiveWordsAfter = LiveWordsAfter;
  Event.HeapCapacityBytesAfter = HeapCapacityBytesAfter;

  PauseHist.record(Event.PauseNs);
  PauseKindHists[(size_t)Event.Kind].record(Event.PauseNs);
  for (size_t I = 0; I < NumGcPhases; ++I) {
    PhaseHists[I].record(Event.PhaseNs[I]);
    PhaseTotals[I] += Event.PhaseNs[I];
  }
  for (size_t I = 0; I < NumCensusKinds; ++I) {
    CensusObjTotals[I] += Event.CensusObjects[I];
    CensusWordTotals[I] += Event.CensusWords[I];
  }

  if (LogStream)
    emitLogLine(Event);
  if (TraceStream)
    emitTraceEvents(Event);

  Ring[(size_t)(TotalCollections % Ring.size())] = Event;
  ++TotalCollections;
  InCollection = false;
  if (Flight) [[unlikely]]
    Flight->record(FlightEventType::GcEnd, (uint32_t)Event.Kind, Event.PauseNs,
                   Event.Seq);
  if (Sink)
    Sink->onGcEvent(Event);
}

const GcEvent &Telemetry::event(size_t I) const {
  assert(I < ringSize() && "event index out of range");
  size_t Oldest = TotalCollections <= Ring.size()
                      ? 0
                      : (size_t)(TotalCollections % Ring.size());
  return Ring[(Oldest + I) % Ring.size()];
}

uint64_t Telemetry::censusObjectsTotal() const {
  uint64_t S = 0;
  for (uint64_t V : CensusObjTotals)
    S += V;
  return S;
}

uint64_t Telemetry::censusWordsTotal() const {
  uint64_t S = 0;
  for (uint64_t V : CensusWordTotals)
    S += V;
  return S;
}

void Telemetry::emitLogLine(const GcEvent &E) const {
  std::fprintf(LogStream, "[gc]%s%s seq=%llu kind=%s pause_ns=%llu",
               Label.empty() ? "" : " ", Label.c_str(),
               (unsigned long long)E.Seq, gcEventKindName(E.Kind),
               (unsigned long long)E.PauseNs);
  for (size_t I = 0; I < NumGcPhases; ++I)
    if (E.PhaseNs[I])
      std::fprintf(LogStream, " %s_ns=%llu", gcPhaseName((GcPhase)I),
                   (unsigned long long)E.PhaseNs[I]);
  for (size_t I = 0; I < NumCensusKinds; ++I)
    if (E.CensusObjects[I])
      std::fprintf(LogStream, " census_%s=%llu/%llu",
                   censusKindName((CensusKind)I),
                   (unsigned long long)E.CensusObjects[I],
                   (unsigned long long)E.CensusWords[I]);
  std::fprintf(LogStream, " live_words=%llu cap_bytes=%llu\n",
               (unsigned long long)E.LiveWordsAfter,
               (unsigned long long)E.HeapCapacityBytesAfter);
}

namespace {

/// Chrome trace timestamps are microseconds; keep ns resolution as a
/// fractional part.
std::string usStr(uint64_t Ns) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%llu.%03u",
                (unsigned long long)(Ns / 1000), (unsigned)(Ns % 1000));
  return Buf;
}

} // namespace

void Telemetry::beginTrace(std::ostream &OS) {
  assert(!TraceStream && "trace already started");
  TraceStream = &OS;
  TraceFirstEvent = true;
  OS << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n"
     << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 1, "
        "\"args\": {\"name\": \"tfgc"
     << (Label.empty() ? "" : " ") << Label << "\"}}";
  // Under --threads, name one track per mutator so the trace shows every
  // thread even before (or without) it ever running a collection.
  // Sequential runs declare nothing, keeping their traces byte-identical.
  for (unsigned I = 0; I < DeclaredThreads; ++I)
    OS << ",\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
       << (1 + I) << ", \"args\": {\"name\": \"task " << I << "\"}}";
  TraceFirstEvent = false;
}

void Telemetry::emitTraceEvents(const GcEvent &E) {
  std::ostream &OS = *TraceStream;
  auto Sep = [&] { OS << (TraceFirstEvent ? "" : ",\n"); TraceFirstEvent = false; };
  Sep();
  // Full-heap collections keep the historical event name; the
  // generational kinds get their own so minor/major pauses are separable
  // in the trace viewer.
  const char *Name = E.Kind == GcEventKind::Minor   ? "gc.minor"
                     : E.Kind == GcEventKind::Major ? "gc.major"
                                                    : "gc.collection";
  OS << "{\"name\": \"" << Name << "\", \"cat\": \"gc\", \"ph\": \"X\", "
     << "\"ts\": " << usStr(E.StartNs) << ", \"dur\": " << usStr(E.PauseNs)
     << ", \"pid\": 1, \"tid\": " << E.Tid << ", \"args\": {\"seq\": " << E.Seq
     << ", \"kind\": \"" << gcEventKindName(E.Kind) << '"'
     << ", \"live_words\": " << E.LiveWordsAfter
     << ", \"capacity_bytes\": " << E.HeapCapacityBytesAfter
     << ", \"census_objects\": " << E.censusObjects()
     << ", \"census_words\": " << E.censusWords() << "}}";
  // Phases are recorded as per-phase aggregates, so lay them out
  // sequentially (enum order) inside the collection event; their sum is
  // the instrumented portion of the pause.
  uint64_t Cursor = E.StartNs;
  for (size_t I = 0; I < NumGcPhases; ++I) {
    if (!E.PhaseNs[I])
      continue;
    Sep();
    OS << "{\"name\": \"" << gcPhaseName((GcPhase)I)
       << "\", \"cat\": \"gc.phase\", \"ph\": \"X\", \"ts\": "
       << usStr(Cursor) << ", \"dur\": " << usStr(E.PhaseNs[I])
       << ", \"pid\": 1, \"tid\": " << E.Tid << "}";
    Cursor += E.PhaseNs[I];
  }
  // Flush per event: a crashed or aborted run still leaves every
  // completed collection in the trace file (endTrace only appends the
  // closing bracket, which Perfetto tolerates missing).
  OS.flush();
}

void Telemetry::endTrace() {
  if (!TraceStream)
    return;
  *TraceStream << "\n]}\n";
  TraceStream = nullptr;
}

namespace {

void histJson(std::ostream &OS, const LogHistogram &H) {
  OS << "{\"count\": " << H.count() << ", \"sum\": " << H.sum()
     << ", \"min\": " << H.min() << ", \"max\": " << H.max()
     << ", \"p50\": " << H.percentile(50) << ", \"p90\": " << H.percentile(90)
     << ", \"p99\": " << H.percentile(99) << ", \"buckets\": [";
  bool First = true;
  for (size_t I = 0; I < LogHistogram::NumBuckets; ++I) {
    if (!H.bucketCount(I))
      continue;
    OS << (First ? "" : ", ") << "{\"lo\": " << LogHistogram::bucketLo(I)
       << ", \"hi\": " << LogHistogram::bucketHi(I)
       << ", \"count\": " << H.bucketCount(I) << "}";
    First = false;
  }
  OS << "]}";
}

} // namespace

void Telemetry::writeStatsJson(std::ostream &OS, const Stats &St) const {
  OS << "{\n  \"schema\": 1,\n";
  if (!Label.empty())
    OS << "  \"label\": \"" << Label << "\",\n";
  const BuildInfo &BI = buildInfo();
  OS << "  \"build\": {\"git_sha\": \"" << BI.GitSha << "\", \"dispatch\": \""
     << BI.Dispatch << "\", \"sanitizer\": \"" << BI.Sanitizer
     << "\", \"build_type\": \"" << BI.BuildType << "\"},\n";
  OS << "  \"collections\": " << TotalCollections << ",\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : St.all()) {
    OS << (First ? "" : ", ") << '"' << Name << "\": " << Value;
    First = false;
  }
  OS << "},\n  \"collections_minor\": "
     << PauseKindHists[(size_t)GcEventKind::Minor].count()
     << ",\n  \"collections_major\": "
     << PauseKindHists[(size_t)GcEventKind::Major].count()
     << ",\n  \"pause_histogram\": ";
  histJson(OS, PauseHist);
  for (GcEventKind K : {GcEventKind::Minor, GcEventKind::Major}) {
    if (!PauseKindHists[(size_t)K].count())
      continue;
    OS << ",\n  \"pause_histogram_" << gcEventKindName(K) << "\": ";
    histJson(OS, PauseKindHists[(size_t)K]);
  }
  OS << ",\n  \"phase_histograms\": {";
  for (size_t I = 0; I < NumGcPhases; ++I) {
    OS << (I ? ", " : "") << '"' << gcPhaseName((GcPhase)I) << "\": ";
    histJson(OS, PhaseHists[I]);
  }
  OS << "},\n";
  if (WorldStopDelayHist.count()) {
    OS << "  \"world_stop_delay_histogram\": ";
    histJson(OS, WorldStopDelayHist);
    OS << ",\n";
  }
  OS << "  \"census_totals\": {";
  for (size_t I = 0; I < NumCensusKinds; ++I) {
    OS << (I ? ", " : "") << '"' << censusKindName((CensusKind)I)
       << "\": {\"objects\": " << CensusObjTotals[I]
       << ", \"words\": " << CensusWordTotals[I] << "}";
  }
  OS << "},\n  \"recent_collections\": [\n";
  // Newest events only, capped so the dump stays readable.
  size_t N = ringSize();
  size_t MaxRecent = 64;
  size_t Begin = N > MaxRecent ? N - MaxRecent : 0;
  for (size_t I = Begin; I < N; ++I) {
    const GcEvent &E = event(I);
    OS << "    {\"seq\": " << E.Seq << ", \"kind\": \""
       << gcEventKindName(E.Kind) << "\", \"start_ns\": " << E.StartNs
       << ", \"pause_ns\": " << E.PauseNs << ", \"phases_ns\": {";
    for (size_t J = 0; J < NumGcPhases; ++J)
      OS << (J ? ", " : "") << '"' << gcPhaseName((GcPhase)J)
         << "\": " << E.PhaseNs[J];
    OS << "}, \"live_words\": " << E.LiveWordsAfter << "}"
       << (I + 1 < N ? ",\n" : "\n");
  }
  OS << "  ]\n}\n";
}
