//===- types/Type.cpp -----------------------------------------------------===//

#include "types/Type.h"

#include <sstream>

using namespace tfgc;

TypeContext::TypeContext() {
  IntTy = alloc(TypeKind::Int);
  BoolTy = alloc(TypeKind::Bool);
  UnitTy = alloc(TypeKind::Unit);
  FloatTy = alloc(TypeKind::Float);

  // Predeclare:  datatype 'a list = Nil | Cons of 'a * 'a list
  ListTy = createDatatype("list", 1);
  Type *Elem = ListTy->Params[0];
  addCtor(ListTy, "Nil", {});
  addCtor(ListTy, "Cons", {Elem, makeData(ListTy, {Elem})});
}

Type *TypeContext::alloc(TypeKind Kind) {
  Types.push_back(std::unique_ptr<Type>(new Type(Kind)));
  return Types.back().get();
}

Type *TypeContext::freshVar(int Level) {
  Type *T = alloc(TypeKind::Var);
  T->VarId = NextVarId++;
  T->Level = Level;
  return T;
}

Type *TypeContext::makeFun(std::vector<Type *> Params, Type *Result) {
  Type *T = alloc(TypeKind::Fun);
  T->Args = std::move(Params);
  T->Result = Result;
  return T;
}

Type *TypeContext::makeTuple(std::vector<Type *> Elems) {
  assert(Elems.size() >= 2 && "unit is TypeKind::Unit, singleton is itself");
  Type *T = alloc(TypeKind::Tuple);
  T->Args = std::move(Elems);
  return T;
}

Type *TypeContext::makeData(DatatypeInfo *Info, std::vector<Type *> Args) {
  assert(Args.size() == Info->Params.size() && "datatype arity mismatch");
  Type *T = alloc(TypeKind::Data);
  T->Data = Info;
  T->Args = std::move(Args);
  return T;
}

Type *TypeContext::makeRef(Type *Elem) {
  Type *T = alloc(TypeKind::Ref);
  T->Args.push_back(Elem);
  return T;
}

DatatypeInfo *TypeContext::createDatatype(const std::string &Name,
                                          unsigned NumParams) {
  auto Info = std::make_unique<DatatypeInfo>();
  Info->Name = Name;
  Info->Id = (unsigned)Datatypes.size();
  for (unsigned I = 0; I < NumParams; ++I) {
    Type *P = freshVar(0);
    P->makeRigid((int)I);
    Info->Params.push_back(P);
  }
  DatatypeInfo *Raw = Info.get();
  Datatypes.push_back(std::move(Info));
  DatatypeOrder.push_back(Raw);
  DatatypeByName[Name] = Raw;
  return Raw;
}

void TypeContext::addCtor(DatatypeInfo *Info, const std::string &Name,
                          std::vector<Type *> Fields) {
  CtorByName[Name] = {Info, (unsigned)Info->Ctors.size()};
  Info->Ctors.push_back({Name, std::move(Fields)});
}

DatatypeInfo *TypeContext::lookupDatatype(const std::string &Name) const {
  auto It = DatatypeByName.find(Name);
  return It == DatatypeByName.end() ? nullptr : It->second;
}

std::pair<DatatypeInfo *, unsigned>
TypeContext::lookupCtor(const std::string &Name) const {
  auto It = CtorByName.find(Name);
  if (It == CtorByName.end())
    return {nullptr, 0};
  return It->second;
}

std::vector<Type *>
TypeContext::instantiateCtorFields(DatatypeInfo *Info, unsigned CtorIdx,
                                   const std::vector<Type *> &Args) {
  assert(CtorIdx < Info->Ctors.size());
  assert(Args.size() == Info->Params.size());
  std::unordered_map<Type *, Type *> Map;
  for (size_t I = 0; I < Args.size(); ++I)
    Map[Info->Params[I]] = Args[I];
  std::vector<Type *> Out;
  Out.reserve(Info->Ctors[CtorIdx].Fields.size());
  for (Type *F : Info->Ctors[CtorIdx].Fields)
    Out.push_back(substitute(F, Map));
  return Out;
}

bool TypeContext::occurs(Type *Var, Type *T) {
  T = T->resolved();
  if (T == Var)
    return true;
  if (T->getKind() == TypeKind::Var)
    return false;
  for (Type *A : T->args())
    if (occurs(Var, A))
      return true;
  if (T->getKind() == TypeKind::Fun)
    return occurs(Var, T->result());
  return false;
}

void TypeContext::adjustLevels(Type *T, int Level) {
  T = T->resolved();
  if (T->getKind() == TypeKind::Var) {
    if (!T->isRigid() && T->level() > Level)
      T->setLevel(Level);
    return;
  }
  for (Type *A : T->args())
    adjustLevels(A, Level);
  if (T->getKind() == TypeKind::Fun)
    adjustLevels(T->result(), Level);
}

bool TypeContext::unify(Type *A, Type *B) {
  A = A->resolved();
  B = B->resolved();
  if (A == B)
    return true;

  // Bind the non-rigid var with the deeper level.
  if (A->isVar() && !A->isRigid()) {
    if (occurs(A, B))
      return false;
    adjustLevels(B, A->level());
    A->bind(B);
    return true;
  }
  if (B->isVar() && !B->isRigid())
    return unify(B, A);

  if (A->getKind() != B->getKind())
    return false;

  switch (A->getKind()) {
  case TypeKind::Int:
  case TypeKind::Bool:
  case TypeKind::Unit:
  case TypeKind::Float:
    return true;
  case TypeKind::Var:
    return false; // Two distinct rigid vars never unify.
  case TypeKind::Fun: {
    if (A->numArgs() != B->numArgs())
      return false;
    for (unsigned I = 0; I < A->numArgs(); ++I)
      if (!unify(A->arg(I), B->arg(I)))
        return false;
    return unify(A->result(), B->result());
  }
  case TypeKind::Tuple: {
    if (A->numArgs() != B->numArgs())
      return false;
    for (unsigned I = 0; I < A->numArgs(); ++I)
      if (!unify(A->arg(I), B->arg(I)))
        return false;
    return true;
  }
  case TypeKind::Data: {
    if (A->data() != B->data())
      return false;
    for (unsigned I = 0; I < A->numArgs(); ++I)
      if (!unify(A->arg(I), B->arg(I)))
        return false;
    return true;
  }
  case TypeKind::Ref:
    return unify(A->refElem(), B->refElem());
  }
  return false;
}

TypeContext::Scheme TypeContext::generalize(Type *T, int Level) {
  Scheme S;
  S.Body = T;
  // Collect unbound vars deeper than Level, in deterministic first-visit
  // order, and mark them rigid.
  std::vector<Type *> Work;
  std::vector<Type *> Visit{T};
  while (!Visit.empty()) {
    Type *Cur = Visit.back()->resolved();
    Visit.pop_back();
    if (Cur->isVar()) {
      if (!Cur->isRigid() && Cur->level() > Level) {
        Cur->makeRigid((int)S.Params.size());
        S.Params.push_back(Cur);
      }
      continue;
    }
    // Push in reverse so traversal is left-to-right.
    if (Cur->getKind() == TypeKind::Fun)
      Visit.push_back(Cur->result());
    for (size_t I = Cur->args().size(); I-- > 0;)
      Visit.push_back(Cur->args()[I]);
  }
  (void)Work;
  return S;
}

Type *TypeContext::instantiate(const Scheme &S, int Level) {
  if (!S.isPoly())
    return S.Body;
  std::unordered_map<Type *, Type *> Map;
  for (Type *P : S.Params)
    Map[P] = freshVar(Level);
  return substitute(S.Body, Map);
}

Type *TypeContext::substitute(Type *T,
                              const std::unordered_map<Type *, Type *> &Map) {
  T = T->resolved();
  if (T->isVar()) {
    auto It = Map.find(T);
    return It == Map.end() ? T : It->second;
  }
  // Clone only if a child changes.
  bool Changed = false;
  std::vector<Type *> NewArgs;
  NewArgs.reserve(T->args().size());
  for (Type *A : T->args()) {
    Type *NA = substitute(A, Map);
    Changed |= NA != A->resolved();
    NewArgs.push_back(NA);
  }
  Type *NewResult = nullptr;
  if (T->getKind() == TypeKind::Fun) {
    NewResult = substitute(T->result(), Map);
    Changed |= NewResult != T->result()->resolved();
  }
  if (!Changed)
    return T;
  switch (T->getKind()) {
  case TypeKind::Fun:
    return makeFun(std::move(NewArgs), NewResult);
  case TypeKind::Tuple:
    return makeTuple(std::move(NewArgs));
  case TypeKind::Data:
    return makeData(T->data(), std::move(NewArgs));
  case TypeKind::Ref:
    return makeRef(NewArgs[0]);
  default:
    return T;
  }
}

void TypeContext::defaultFreeVars(Type *T) {
  T = T->resolved();
  if (T->isVar()) {
    if (!T->isRigid())
      T->bind(UnitTy);
    return;
  }
  for (Type *A : T->args())
    defaultFreeVars(A);
  if (T->getKind() == TypeKind::Fun)
    defaultFreeVars(T->result());
}

void TypeContext::collectRigidVars(Type *T, std::vector<Type *> &Out) {
  T = T->resolved();
  if (T->isVar()) {
    if (T->isRigid()) {
      for (Type *Existing : Out)
        if (Existing == T)
          return;
      Out.push_back(T);
    }
    return;
  }
  for (Type *A : T->args())
    collectRigidVars(A, Out);
  if (T->getKind() == TypeKind::Fun)
    collectRigidVars(T->result(), Out);
}

std::string TypeContext::render(Type *T) {
  T = T->resolved();
  std::ostringstream OS;
  switch (T->getKind()) {
  case TypeKind::Int:
    return "int";
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Unit:
    return "unit";
  case TypeKind::Float:
    return "float";
  case TypeKind::Var:
    if (T->isRigid()) {
      OS << '%' << T->paramIndex();
    } else {
      OS << '?' << T->varId();
    }
    return OS.str();
  case TypeKind::Fun: {
    OS << '(';
    for (unsigned I = 0; I < T->numArgs(); ++I) {
      if (I)
        OS << ", ";
      OS << render(T->arg(I));
    }
    OS << ") -> " << render(T->result());
    return OS.str();
  }
  case TypeKind::Tuple: {
    OS << '(';
    for (unsigned I = 0; I < T->numArgs(); ++I) {
      if (I)
        OS << " * ";
      OS << render(T->arg(I));
    }
    OS << ')';
    return OS.str();
  }
  case TypeKind::Data: {
    if (!T->args().empty()) {
      OS << '(';
      for (unsigned I = 0; I < T->numArgs(); ++I) {
        if (I)
          OS << ", ";
        OS << render(T->arg(I));
      }
      OS << ") ";
    }
    OS << T->data()->Name;
    return OS.str();
  }
  case TypeKind::Ref:
    return render(T->refElem()) + " ref";
  }
  return "?";
}
