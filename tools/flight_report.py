#!/usr/bin/env python3
"""Decodes a tfgc --flight-out recording.

The file is a 24-byte header (magic "TFGCFLR1", u32 version, u32 record
size, u64 reserved) followed by 32-byte little-endian records:

    u64 time_ns   since the recorder's construction (one clock for all
                  rings, so the whole file is one global timeline)
    u8  type      FlightEventType (support/FlightRecorder.h)
    u8  tid       0..N-1 mutator tasks, 128+k trace worker k, 254 the GC
                  ring (handshake arms + collection begin/phase/end)
    u16 reserved
    u32 arg32     e.g. the handshake epoch for park/resume/arm
    u64 arg_a     e.g. the request-to-park delay in ns
    u64 arg_b     e.g. last-parker flag, steal count

Default output: a per-handshake time-to-safepoint attribution table —
for every handshake epoch, which thread parked last (or handed the
collection off while exiting), how long after the request it arrived,
and what that thread's most recent prior event was (VM poll, TLAB
refill, GC request: the "what was it doing" column).

Modes:
    flight_report.py FILE                 attribution table + summary
    flight_report.py --check FILE         invariant check (monotone
                                          timestamps, handshake pairing);
                                          exit 1 on violation
    flight_report.py --stats STATS FILE   cross-check against the run's
                                          --stats-json (park counts per
                                          task == task.<i>.world_stop_delays)
    flight_report.py --chrome OUT FILE    multi-track Chrome trace JSON
                                          (one track per tid; view in
                                          Perfetto / chrome://tracing)
"""

import json
import struct
import sys

MAGIC = b"TFGCFLR1"
HEADER_BYTES = 24
RECORD_BYTES = 32
RECORD_FMT = "<QBBHIQQ"

GC_TID = 254
WORKER_TID_BASE = 128

TYPE_NAMES = {
    1: "thread_start",
    2: "thread_exit",
    3: "gc_request",
    4: "safepoint_arm",
    5: "park",
    6: "resume",
    7: "pending_handoff",
    8: "tlab_refill",
    9: "gc_begin",
    10: "gc_phase",
    11: "gc_end",
    12: "trace_worker_begin",
    13: "trace_worker_end",
    14: "vm_epoch",
    15: "dropped",
}
T_START, T_EXIT, T_REQUEST, T_ARM, T_PARK, T_RESUME, T_HANDOFF, \
    T_REFILL, T_GCBEGIN, T_GCPHASE, T_GCEND, T_WBEGIN, T_WEND, \
    T_VMEPOCH, T_DROPPED = range(1, 16)

GC_PHASE_NAMES = ["root_scan", "ptr_reversal", "frame_dispatch",
                  "tg_closure_build", "copy_sweep", "remset_scan",
                  "verify"]
GC_KIND_NAMES = ["full", "minor", "major"]


class Event:
    __slots__ = ("time_ns", "type", "tid", "arg32", "arg_a", "arg_b")

    def __init__(self, time_ns, type_, tid, arg32, arg_a, arg_b):
        self.time_ns = time_ns
        self.type = type_
        self.tid = tid
        self.arg32 = arg32
        self.arg_a = arg_a
        self.arg_b = arg_b

    def type_name(self):
        return TYPE_NAMES.get(self.type, f"?{self.type}")

    def tid_name(self):
        if self.tid == GC_TID:
            return "gc"
        if self.tid >= WORKER_TID_BASE:
            return f"worker-{self.tid - WORKER_TID_BASE}"
        return f"task-{self.tid}"


def load(path):
    with open(path, "rb") as f:
        data = f.read()
    if len(data) < HEADER_BYTES or data[:8] != MAGIC:
        raise SystemExit(f"error: {path} is not a tfgc flight recording "
                         f"(bad magic)")
    version, rec_bytes = struct.unpack_from("<II", data, 8)
    if version != 1 or rec_bytes != RECORD_BYTES:
        raise SystemExit(f"error: {path}: unsupported version {version} / "
                         f"record size {rec_bytes}")
    body = len(data) - HEADER_BYTES
    if body % RECORD_BYTES:
        # An abnormal exit mid-fwrite could in principle truncate a
        # record; whole records before it are still valid.
        print(f"warning: {body % RECORD_BYTES} trailing bytes ignored "
              f"(truncated final record)", file=sys.stderr)
        body -= body % RECORD_BYTES
    events = []
    for off in range(HEADER_BYTES, HEADER_BYTES + body, RECORD_BYTES):
        t, ty, tid, _, a32, aa, ab = struct.unpack_from(RECORD_FMT, data, off)
        events.append(Event(t, ty, tid, a32, aa, ab))
    return events


def check(events):
    """Invariant check. Returns a list of violation strings."""
    errs = []
    prev = 0
    for i, e in enumerate(events):
        if e.time_ns < prev:
            errs.append(f"record {i}: time {e.time_ns} < previous {prev} "
                        "(file must be globally monotone)")
        prev = e.time_ns
        if e.type not in TYPE_NAMES:
            errs.append(f"record {i}: unknown event type {e.type}")

    dropped = sum(1 for e in events if e.type == T_DROPPED)
    if dropped:
        # Rings overwrote events between drains: pairing counts are no
        # longer complete, so only the monotonicity check is meaningful.
        print(f"note: {dropped} dropped-marker(s) present; skipping "
              "handshake pairing (recording is newest-N per ring)",
              file=sys.stderr)
        return errs

    arms = {}
    parks = {}
    resumes = {}
    handoffs = {}
    last_parks = {}
    for e in events:
        ep = e.arg32
        if e.type == T_ARM:
            arms[ep] = arms.get(ep, 0) + 1
        elif e.type == T_PARK:
            parks[ep] = parks.get(ep, 0) + 1
            if e.arg_b:
                last_parks[ep] = last_parks.get(ep, 0) + 1
        elif e.type == T_RESUME:
            resumes[ep] = resumes.get(ep, 0) + 1
        elif e.type == T_HANDOFF:
            handoffs[ep] = handoffs.get(ep, 0) + 1

    for ep, n in arms.items():
        if n != 1:
            errs.append(f"epoch {ep}: {n} arm events, want exactly 1")
        if parks.get(ep, 0) != resumes.get(ep, 0):
            errs.append(f"epoch {ep}: {parks.get(ep, 0)} parks != "
                        f"{resumes.get(ep, 0)} resumes")
        lp = last_parks.get(ep, 0)
        ho = handoffs.get(ep, 0)
        if lp + ho != 1:
            errs.append(f"epoch {ep}: {lp} last-parker(s) + {ho} "
                        "handoff(s), want exactly one pause owner")
    for ep in parks:
        if ep not in arms:
            errs.append(f"epoch {ep}: parks without an arm event")
    return errs


def attribution(events):
    """Per-handshake attribution rows.

    Each row: epoch, owner tid, kind (park | handoff), request-to-stop
    delay ns, the slowest thread's prior activity (its most recent
    VM/TLAB/GC-request event before the park), and the per-epoch park
    delays of every participant.
    """
    last_activity = {}  # tid -> (type, time_ns)
    rows = []
    per_epoch = {}
    arm_time = {}
    for e in events:
        if e.type in (T_VMEPOCH, T_REFILL, T_REQUEST, T_START):
            last_activity[e.tid] = (e.type_name(), e.time_ns)
        elif e.type == T_ARM:
            arm_time[e.arg32] = e.time_ns
        elif e.type == T_PARK:
            per_epoch.setdefault(e.arg32, []).append((e.tid, e.arg_a))
            if e.arg_b:  # last parker: owns the pause
                act = last_activity.get(e.tid)
                rows.append({
                    "epoch": e.arg32, "owner": e.tid, "kind": "park",
                    "delay_ns": e.arg_a,
                    "prior": act[0] if act else "-",
                    "prior_gap_ns": e.time_ns - act[1] if act else None,
                })
        elif e.type == T_HANDOFF:
            act = last_activity.get(e.tid)
            rows.append({
                "epoch": e.arg32, "owner": e.tid, "kind": "handoff",
                "delay_ns": e.arg_a,
                "prior": act[0] if act else "-",
                "prior_gap_ns": e.time_ns - act[1] if act else None,
            })
    for r in rows:
        r["parks"] = sorted(per_epoch.get(r["epoch"], []))
    return rows


def print_report(events):
    n_by_type = {}
    tids = set()
    for e in events:
        n_by_type[e.type_name()] = n_by_type.get(e.type_name(), 0) + 1
        tids.add(e.tid)
    span_ms = (events[-1].time_ns - events[0].time_ns) / 1e6 if events else 0
    print(f"{len(events)} records over {span_ms:.1f} ms, "
          f"{len(tids)} timelines")
    for name in sorted(n_by_type):
        print(f"  {n_by_type[name]:8d}  {name}")
    rows = attribution(events)
    if not rows:
        print("\nno handshakes recorded (sequential run, or no "
              "collection was needed)")
        return
    print("\ntime-to-safepoint attribution "
          "(slowest = the thread the world waited for):")
    print(f"  {'epoch':>5}  {'stop-delay':>12}  {'slowest':>8}  "
          f"{'via':>8}  {'prior activity':>20}  per-task park delays")
    for r in rows:
        prior = r["prior"]
        if r["prior_gap_ns"] is not None:
            prior += f" (-{r['prior_gap_ns'] / 1e3:.0f}us)"
        parks = ", ".join(f"t{t}:{d / 1e3:.0f}us" for t, d in r["parks"])
        print(f"  {r['epoch']:5d}  {r['delay_ns'] / 1e3:10.0f}us  "
              f"task-{r['owner']:<3}  {r['kind']:>8}  {prior:>20}  "
              f"[{parks}]")


def cross_check_stats(events, stats_path):
    """Park counts per tid must equal task.<i>.world_stop_delays."""
    with open(stats_path) as f:
        stats = json.load(f)
    counters = stats.get("counters", {})
    if any(e.type == T_DROPPED for e in events):
        print("note: dropped markers present; skipping stats cross-check",
              file=sys.stderr)
        return []
    parks = {}
    for e in events:
        if e.type == T_PARK:
            parks[e.tid] = parks.get(e.tid, 0) + 1
    errs = []
    for key, want in counters.items():
        if not key.startswith("task.") or \
                not key.endswith(".world_stop_delays"):
            continue
        tid = int(key.split(".")[1])
        got = parks.get(tid, 0)
        if got != want:
            errs.append(f"task {tid}: {got} park events, stats report "
                        f"{key}={want}")
    total_parks = sum(parks.values())
    print(f"stats cross-check: {total_parks} parks across "
          f"{len(parks)} tasks match per-task world_stop_delays"
          if not errs else f"stats cross-check: {len(errs)} mismatch(es)")
    return errs


def chrome_trace(events, out_path):
    """One Chrome-trace track per tid; durations for pauses and parks,
    instants for the rest."""
    out = []
    tids = sorted({e.tid for e in events})
    for tid in tids:
        name = next(e for e in events if e.tid == tid).tid_name()
        out.append({"name": "thread_name", "ph": "M", "pid": 1,
                    "tid": tid, "args": {"name": name}})
    open_park = {}   # tid -> park event
    open_gc = None   # gc_begin event
    open_worker = {}
    for e in events:
        ts = e.time_ns / 1e3
        if e.type == T_PARK:
            open_park[e.tid] = e
        elif e.type == T_RESUME and e.tid in open_park:
            p = open_park.pop(e.tid)
            out.append({"name": "parked", "cat": "safepoint", "ph": "X",
                        "ts": p.time_ns / 1e3,
                        "dur": (e.time_ns - p.time_ns) / 1e3,
                        "pid": 1, "tid": e.tid,
                        "args": {"epoch": p.arg32,
                                 "park_delay_ns": p.arg_a,
                                 "last_parker": bool(p.arg_b)}})
        elif e.type == T_GCBEGIN:
            open_gc = e
        elif e.type == T_GCEND:
            kind = GC_KIND_NAMES[e.arg32] if e.arg32 < 3 else "?"
            start = open_gc.time_ns if open_gc else e.time_ns - e.arg_a
            out.append({"name": f"gc.{kind}", "cat": "gc", "ph": "X",
                        "ts": start / 1e3, "dur": e.arg_a / 1e3,
                        "pid": 1, "tid": GC_TID,
                        "args": {"seq": e.arg_b}})
            open_gc = None
        elif e.type == T_WBEGIN:
            open_worker[e.tid] = e
        elif e.type == T_WEND and e.tid in open_worker:
            b = open_worker.pop(e.tid)
            out.append({"name": "trace_worker", "cat": "gc", "ph": "X",
                        "ts": b.time_ns / 1e3,
                        "dur": (e.time_ns - b.time_ns) / 1e3,
                        "pid": 1, "tid": e.tid,
                        "args": {"steals": e.arg_a}})
        else:
            out.append({"name": e.type_name(), "cat": "flight", "ph": "i",
                        "ts": ts, "s": "t", "pid": 1, "tid": e.tid,
                        "args": {"arg32": e.arg32, "a": e.arg_a,
                                 "b": e.arg_b}})
    with open(out_path, "w") as f:
        json.dump({"displayTimeUnit": "ns", "traceEvents": out}, f)
    print(f"wrote {len(out)} trace events to {out_path}")


def main():
    args = sys.argv[1:]
    mode = "report"
    stats_path = out_path = None
    if args and args[0] == "--check":
        mode = "check"
        args = args[1:]
    elif args and args[0] == "--stats":
        mode = "stats"
        stats_path, args = args[1], args[2:]
    elif args and args[0] == "--chrome":
        mode = "chrome"
        out_path, args = args[1], args[2:]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    events = load(args[0])

    if mode == "check":
        errs = check(events)
        for e in errs:
            print(f"error: {e}", file=sys.stderr)
        if errs:
            return 1
        n_hs = len({e.arg32 for e in events if e.type == T_ARM})
        print(f"ok: {len(events)} records, {n_hs} handshakes, "
              "monotone + paired")
        return 0
    if mode == "stats":
        errs = cross_check_stats(events, stats_path)
        for e in errs:
            print(f"error: {e}", file=sys.stderr)
        return 1 if errs else 0
    if mode == "chrome":
        chrome_trace(events, out_path)
        return 0
    print_report(events)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)  # report piped into head/less; not an error
