
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/AppelCollector.cpp" "src/core/CMakeFiles/tfgc_core.dir/AppelCollector.cpp.o" "gcc" "src/core/CMakeFiles/tfgc_core.dir/AppelCollector.cpp.o.d"
  "/root/repo/src/core/Collector.cpp" "src/core/CMakeFiles/tfgc_core.dir/Collector.cpp.o" "gcc" "src/core/CMakeFiles/tfgc_core.dir/Collector.cpp.o.d"
  "/root/repo/src/core/GoldbergCollector.cpp" "src/core/CMakeFiles/tfgc_core.dir/GoldbergCollector.cpp.o" "gcc" "src/core/CMakeFiles/tfgc_core.dir/GoldbergCollector.cpp.o.d"
  "/root/repo/src/core/TaggedCollector.cpp" "src/core/CMakeFiles/tfgc_core.dir/TaggedCollector.cpp.o" "gcc" "src/core/CMakeFiles/tfgc_core.dir/TaggedCollector.cpp.o.d"
  "/root/repo/src/core/Tracer.cpp" "src/core/CMakeFiles/tfgc_core.dir/Tracer.cpp.o" "gcc" "src/core/CMakeFiles/tfgc_core.dir/Tracer.cpp.o.d"
  "/root/repo/src/core/TypeGc.cpp" "src/core/CMakeFiles/tfgc_core.dir/TypeGc.cpp.o" "gcc" "src/core/CMakeFiles/tfgc_core.dir/TypeGc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gcmeta/CMakeFiles/tfgc_gcmeta.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tfgc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/tfgc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/tfgc_types.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/tfgc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tfgc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tfgc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
