file(REMOVE_RECURSE
  "CMakeFiles/tagfree_append.dir/tagfree_append.cpp.o"
  "CMakeFiles/tagfree_append.dir/tagfree_append.cpp.o.d"
  "tagfree_append"
  "tagfree_append.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagfree_append.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
