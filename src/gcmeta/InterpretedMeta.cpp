//===- gcmeta/InterpretedMeta.cpp -----------------------------------------===//

#include "gcmeta/InterpretedMeta.h"

#include <sstream>

using namespace tfgc;

void InterpretedMetadata::build(const IrProgram &P,
                                const ReconstructResult &RR) {
  TypeContext &Ctx = *P.Types;
  FrameDescs.clear();
  FrameDedup.clear();

  SiteToFrame.assign(P.Sites.size(), 0);
  for (const CallSiteInfo &S : P.Sites) {
    const IrFunction &F = P.fn(S.Caller);
    FrameDescriptor FD;
    std::ostringstream Key;
    for (SlotIndex Slot : S.TraceSlots) {
      Type *Ty = F.SlotTypes[Slot]->resolved();
      if (isGroundType(Ty)) {
        if (isGcLeafType(Ty))
          continue; // Leaf slots are omitted from frame descriptors too.
        DescId D = Table.getOrCreate(Ty);
        FD.Slots.push_back({Slot, D});
        Key << 's' << Slot << ':' << D << ';';
      } else {
        FD.Open.push_back({Slot, Ty});
        Key << 'o' << Slot << ':' << Ctx.render(Ty) << '@' << F.Id << ';';
      }
    }
    std::string K = Key.str();
    auto It = FrameDedup.find(K);
    uint32_t Id;
    if (It != FrameDedup.end()) {
      Id = It->second;
    } else {
      FrameDescs.push_back(std::move(FD));
      Id = (uint32_t)(FrameDescs.size() - 1);
      FrameDedup.emplace(std::move(K), Id);
    }
    SiteToFrame[S.Id] = Id;
  }

  ClosureDescs.assign(P.Functions.size(), ClosureDescriptor{});
  for (const IrFunction &F : P.Functions) {
    if (!F.IsClosure)
      continue;
    ClosureDescriptor CD;
    CD.PayloadWords = 1 + (uint32_t)F.EnvTypes.size();
    for (unsigned I = 0; I < F.EnvTypes.size(); ++I) {
      Type *Ty = F.EnvTypes[I]->resolved();
      if (isGroundType(Ty)) {
        if (!isGcLeafType(Ty))
          CD.Fields.push_back({(SlotIndex)(I + 1), Table.getOrCreate(Ty)});
      } else {
        CD.Open.push_back({I + 1, Ty});
      }
    }
    CD.ParamPaths = RR.Paths[F.Id];
    ClosureDescs[F.Id] = std::move(CD);
  }
  Table.buildAllShapes();
}

size_t InterpretedMetadata::sizeBytes() const {
  size_t Bytes = Table.sizeBytes();
  for (const FrameDescriptor &FD : FrameDescs)
    Bytes += 16 + 8 * (FD.Slots.size() + FD.Open.size());
  for (const ClosureDescriptor &CD : ClosureDescs)
    Bytes += CD.PayloadWords == 0
                 ? 0
                 : 16 + 8 * (CD.Fields.size() + CD.Open.size());
  return Bytes;
}
