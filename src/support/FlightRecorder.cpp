//===- support/FlightRecorder.cpp -----------------------------------------===//

#include "support/FlightRecorder.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

using namespace tfgc;

FlightRecorder::FlightRecorder(unsigned NumTasks, unsigned NumWorkers,
                               size_t BufferKb)
    : Origin(std::chrono::steady_clock::now()) {
  size_t Cap = (BufferKb ? BufferKb : 1) * 1024 / sizeof(FlightEvent);
  for (unsigned I = 0; I < (NumTasks ? NumTasks : 1); ++I)
    TaskRings.push_back(std::make_unique<FlightRing>(Cap, (uint8_t)I, Origin));
  GcRing = std::make_unique<FlightRing>(Cap, GcTid, Origin);
  for (unsigned W = 0; W < (NumWorkers ? NumWorkers : 1); ++W)
    WorkerRings.push_back(
        std::make_unique<FlightRing>(Cap, (uint8_t)(WorkerTidBase + W),
                                     Origin));
}

std::string FlightRecorder::fileHeader() {
  std::string H(Magic, 8);
  uint32_t Ver = Version;
  uint32_t RecBytes = (uint32_t)sizeof(FlightEvent);
  uint64_t Reserved = 0;
  H.append((const char *)&Ver, 4);
  H.append((const char *)&RecBytes, 4);
  H.append((const char *)&Reserved, 8);
  return H;
}

bool FlightRecorder::openFile(const std::string &Path, std::string &Err) {
  File = std::fopen(Path.c_str(), "wb");
  if (!File) {
    Err = std::strerror(errno);
    return false;
  }
  std::string H = fileHeader();
  std::fwrite(H.data(), 1, H.size(), File);
  std::fflush(File);
  return true;
}

void FlightRecorder::drain() {
  Scratch.clear();
  for (auto &R : TaskRings)
    R->drain(Scratch);
  GcRing->drain(Scratch);
  for (auto &R : WorkerRings)
    R->drain(Scratch);
  if (Scratch.empty())
    return;
  // One globally ordered chunk. Stable so same-timestamp records keep
  // their ring order (a producer's own sequence is already chronological).
  std::stable_sort(Scratch.begin(), Scratch.end(),
                   [](const FlightEvent &A, const FlightEvent &B) {
                     return A.TimeNs < B.TimeNs;
                   });
  if (File) {
    // Buffered, not flushed: the drain must stay cheap inside the pause
    // (one memcpy into stdio), and every tfgc exit path — exit 3
    // included — runs finish(). A hard crash loses at most the last
    // partial stdio buffer, never a torn record: all writes after the
    // header are 32-byte records and the buffer size is a multiple of 32.
    std::fwrite(Scratch.data(), sizeof(FlightEvent), Scratch.size(), File);
  }
  Filed += Scratch.size();
  if (ChunkSink) {
    std::string Chunk = fileHeader();
    Chunk.append((const char *)Scratch.data(),
                 Scratch.size() * sizeof(FlightEvent));
    ChunkSink(Chunk);
  }
}

void FlightRecorder::maybeDrain() {
  // All rings drain together once any passes half full — draining a
  // subset would let an idle ring carry older events into a later chunk
  // and break cross-chunk time ordering.
  for (const auto &R : TaskRings)
    if (R->pending() * 2 > R->capacity())
      return drain();
  if (GcRing->pending() * 2 > GcRing->capacity())
    return drain();
  for (const auto &R : WorkerRings)
    if (R->pending() * 2 > R->capacity())
      return drain();
}

void FlightRecorder::finish() {
  drain();
  if (File) {
    std::fflush(File);
    std::fclose(File);
    File = nullptr;
  }
}

uint64_t FlightRecorder::droppedTotal() const {
  uint64_t D = GcRing->droppedTotal();
  for (const auto &R : TaskRings)
    D += R->droppedTotal();
  for (const auto &R : WorkerRings)
    D += R->droppedTotal();
  return D;
}
