//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//

#ifndef TFGC_TESTS_TESTUTIL_H
#define TFGC_TESTS_TESTUTIL_H

#include "driver/Compiler.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "ir/Lower.h"
#include "types/Infer.h"

#include <gtest/gtest.h>

namespace tfgc::test {

inline const GcStrategy AllStrategies[] = {
    GcStrategy::Tagged,
    GcStrategy::CompiledTagFree,
    GcStrategy::InterpretedTagFree,
    GcStrategy::AppelTagFree,
};

inline const GcAlgorithm AllAlgorithms[] = {
    GcAlgorithm::Copying,
    GcAlgorithm::MarkSweep,
    GcAlgorithm::Generational,
};

/// Parses a program or fails the test.
inline std::optional<Program> parse(const std::string &Source,
                                    std::string *Err = nullptr) {
  DiagnosticEngine Diags;
  Lexer Lex(Source, Diags);
  Parser P(Lex.tokenize(), Diags);
  std::optional<Program> Ast = P.parseProgram();
  if (Err)
    *Err = Diags.render();
  return Ast;
}

/// Full front half: source -> typed AST + IR. Returns nullopt on error.
struct Compiled {
  std::unique_ptr<CompiledProgram> P;
  std::string Error;
};
inline Compiled compile(const std::string &Source, CompileOptions O = {}) {
  Compiled C;
  Compiler Comp(O);
  C.P = Comp.compile(Source, &C.Error);
  return C;
}

/// Runs a program under one strategy and returns its rendered value,
/// failing the test on any error.
inline std::string runValue(const std::string &Source, GcStrategy S,
                            GcAlgorithm A = GcAlgorithm::Copying,
                            size_t HeapBytes = 1 << 16,
                            bool Stress = false) {
  ExecResult R = execProgram(Source, S, A, HeapBytes, Stress);
  EXPECT_TRUE(R.CompileOk) << R.CompileError;
  EXPECT_TRUE(R.Run.Ok) << R.Run.Error << " under " << gcStrategyName(S);
  return R.Run.Value;
}

/// Runs under every strategy (stressed, small heap) and checks that all
/// agree; returns the common value.
inline std::string runAllStrategies(const std::string &Source,
                                    size_t HeapBytes = 1 << 14,
                                    bool Stress = true) {
  std::string Expected;
  for (GcStrategy S : AllStrategies) {
    std::string V =
        runValue(Source, S, GcAlgorithm::Copying, HeapBytes, Stress);
    if (Expected.empty())
      Expected = V;
    else
      EXPECT_EQ(Expected, V) << "strategy " << gcStrategyName(S);
  }
  // Mark-sweep and generational spot checks with the paper's own
  // collector.
  std::string V = runValue(Source, GcStrategy::CompiledTagFree,
                           GcAlgorithm::MarkSweep, HeapBytes, Stress);
  EXPECT_EQ(Expected, V) << "mark-sweep";
  V = runValue(Source, GcStrategy::CompiledTagFree,
               GcAlgorithm::Generational, HeapBytes, Stress);
  EXPECT_EQ(Expected, V) << "generational";
  return Expected;
}

} // namespace tfgc::test

#endif // TFGC_TESTS_TESTUTIL_H
