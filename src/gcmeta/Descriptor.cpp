//===- gcmeta/Descriptor.cpp ----------------------------------------------===//

#include "gcmeta/Descriptor.h"

#include <cassert>
#include <sstream>

using namespace tfgc;

DescId DescriptorTable::intern(Descriptor D, const std::string &Key) {
  auto It = Dedup.find(Key);
  if (It != Dedup.end())
    return It->second;
  Descs.push_back(std::move(D));
  DescId Id = (DescId)(Descs.size() - 1);
  Dedup.emplace(Key, Id);
  return Id;
}

DescId DescriptorTable::leafId() {
  return intern(Descriptor{DescKind::Leaf, 0, {}}, "leaf");
}

static bool allCtorsNullary(const DatatypeInfo *Info) {
  for (const CtorInfo &C : Info->Ctors)
    if (!C.Fields.empty())
      return false;
  return true;
}

std::string DescriptorTable::keyFor(Type *T,
                                    const std::vector<Type *> &Params) {
  T = T->resolved();
  std::ostringstream OS;
  switch (T->getKind()) {
  case TypeKind::Int:
  case TypeKind::Bool:
  case TypeKind::Unit:
  case TypeKind::Float:
    return "leaf";
  case TypeKind::Var: {
    for (size_t I = 0; I < Params.size(); ++I)
      if (Params[I] == T)
        return "P" + std::to_string(I);
    assert(false && "rigid var outside datatype parameters in descriptor");
    return "P?";
  }
  case TypeKind::Fun: {
    OS << "fun(";
    for (Type *A : T->args())
      OS << keyFor(A, Params) << ',';
    OS << keyFor(T->result(), Params) << ')';
    return OS.str();
  }
  case TypeKind::Tuple: {
    OS << "T(";
    for (Type *A : T->args())
      OS << keyFor(A, Params) << ',';
    OS << ')';
    return OS.str();
  }
  case TypeKind::Data: {
    if (allCtorsNullary(T->data()))
      return "leaf";
    OS << 'D' << T->data()->Id << '(';
    for (Type *A : T->args())
      OS << keyFor(A, Params) << ',';
    OS << ')';
    return OS.str();
  }
  case TypeKind::Ref:
    return "R(" + keyFor(T->refElem(), Params) + ")";
  }
  return "?";
}

DescId DescriptorTable::createWithParams(Type *T,
                                         const std::vector<Type *> &Params) {
  T = T->resolved();
  std::string Key = keyFor(T, Params);
  auto It = Dedup.find(Key);
  if (It != Dedup.end())
    return It->second;

  auto ArgsGround = [&](const Descriptor &D) {
    for (DescId A : D.Args)
      if (!Descs[A].Ground)
        return false;
    return true;
  };

  switch (T->getKind()) {
  case TypeKind::Int:
  case TypeKind::Bool:
  case TypeKind::Unit:
  case TypeKind::Float:
    return leafId();
  case TypeKind::Var: {
    Descriptor D;
    D.Kind = DescKind::Param;
    D.Ground = false;
    for (size_t I = 0; I < Params.size(); ++I)
      if (Params[I] == T)
        D.A = (uint32_t)I;
    return intern(std::move(D), Key);
  }
  case TypeKind::Fun: {
    Descriptor D;
    D.Kind = DescKind::Fun;
    D.FunTy = T;
    return intern(std::move(D), Key);
  }
  case TypeKind::Tuple: {
    Descriptor D;
    D.Kind = DescKind::Tuple;
    for (Type *A : T->args())
      D.Args.push_back(createWithParams(A, Params));
    D.Ground = ArgsGround(D);
    return intern(std::move(D), Key);
  }
  case TypeKind::Data: {
    if (allCtorsNullary(T->data()))
      return leafId();
    Descriptor D;
    D.Kind = DescKind::Data;
    D.A = T->data()->Id;
    for (Type *A : T->args())
      D.Args.push_back(createWithParams(A, Params));
    D.Ground = ArgsGround(D);
    return intern(std::move(D), Key);
  }
  case TypeKind::Ref: {
    Descriptor D;
    D.Kind = DescKind::Ref;
    D.Args.push_back(createWithParams(T->refElem(), Params));
    D.Ground = ArgsGround(D);
    return intern(std::move(D), Key);
  }
  }
  return leafId();
}

DescId DescriptorTable::getOrCreate(Type *T) {
  return createWithParams(T, {});
}

const std::vector<DescId> &DescriptorTable::ctorShape(unsigned DatatypeId,
                                                      unsigned Ctor) {
  if (Shapes.size() <= DatatypeId) {
    Shapes.resize(DatatypeId + 1);
    ShapeBuilt.resize(DatatypeId + 1, false);
  }
  if (!ShapeBuilt[DatatypeId]) {
    DatatypeInfo *Info = Ctx.datatypes()[DatatypeId];
    auto &ByCtor = Shapes[DatatypeId];
    ByCtor.resize(Info->Ctors.size());
    for (size_t C = 0; C < Info->Ctors.size(); ++C)
      for (Type *F : Info->Ctors[C].Fields)
        ByCtor[C].push_back(createWithParams(F, Info->Params));
    ShapeBuilt[DatatypeId] = true;
  }
  return Shapes[DatatypeId][Ctor];
}

void DescriptorTable::buildAllShapes() {
  for (const DatatypeInfo *Info : Ctx.datatypes())
    if (!Info->Ctors.empty())
      (void)ctorShape(Info->Id, 0);
}

size_t DescriptorTable::sizeBytes() const {
  size_t Bytes = 0;
  for (const Descriptor &D : Descs)
    Bytes += 8 + 4 * D.Args.size();
  for (size_t I = 0; I < Shapes.size(); ++I)
    if (I < ShapeBuilt.size() && ShapeBuilt[I])
      for (const auto &Ctor : Shapes[I])
        Bytes += 4 * Ctor.size();
  return Bytes;
}
