//===- bench/bench_tasking.cpp - E8: tasking suspension policies ---------===//
///
/// Paper section 4: tasks suspend for collection only at procedure calls.
/// Testing only inside allocation routines is cheap but lets
/// allocation-free tasks run long after the heap is exhausted; testing at
/// every call stops the world fast but costs a test per call — unless the
/// Rgc register folds the test into the computed jump, getting both. This
/// bench runs workers plus a compute-heavy spinner under all three
/// policies.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "tasking/Tasking.h"

using namespace tfgc;
using namespace tfgc::bench;
namespace wl = tfgc::workloads;

namespace {

struct TaskRun {
  Stats St;
  bool Ok = false;
};

TaskRun runTasks(SuspendChecks Policy, int Workers, int Iters,
                 int SpinRounds, int SpinN, size_t HeapBytes) {
  TaskRun Out;
  // The every-call policies suspend tasks at arbitrary call sites, so
  // compile tasking-safe: gc_words everywhere and call arguments traced
  // (see DESIGN.md).
  CompileOptions O;
  O.TaskingSafe = true;
  auto P = compileOrDie(wl::taskWorkerAndSpinner(), O);
  std::string Err;
  auto Col = P->makeCollector(GcStrategy::CompiledTagFree,
                              GcAlgorithm::Copying, HeapBytes, Out.St, &Err);
  if (!Col)
    std::abort();
  TaskingOptions TO;
  TO.Policy = Policy;
  TaskingRuntime Rt(P->Prog, P->Image, *P->Types, *Col, TO);
  FuncId Worker = findFunction(P->Prog, "worker");
  FuncId Spinner = findFunction(P->Prog, "spinner");
  for (int64_t SeedIdx = 1; SeedIdx <= Workers; ++SeedIdx)
    Rt.spawnInt(Worker, {SeedIdx, Iters});
  if (SpinRounds > 0)
    Rt.spawnInt(Spinner, {SpinRounds, SpinN});
  Out.Ok = Rt.runAll();
  return Out;
}

const char *policyName(SuspendChecks P) {
  switch (P) {
  case SuspendChecks::AtAllocation: return "alloc-only";
  case SuspendChecks::AtEveryCall:  return "every-call";
  case SuspendChecks::RgcRegister:  return "rgc-register";
  default:                          return "?";
  }
}

void report(SuspendChecks Policy) {
  TaskRun R = runTasks(Policy, 3, 60, 60, 2500, 1 << 13);
  if (!R.Ok)
    std::abort();
  uint64_t Stops = R.St.get(StatId::TaskWorldStops);
  tableCell(policyName(Policy));
  tableCell(R.St.get(StatId::TaskSuspendChecks));
  tableCell(Stops);
  tableCell(Stops ? (double)R.St.get(StatId::TaskStepsToWorldStopTotal) /
                        (double)Stops
                  : 0.0);
  tableCell(R.St.get(StatId::TaskStepsToWorldStopMax));
  tableCell(R.St.get(StatId::TaskContextSwitches));
  tableEnd();
}

void BM_Tasking(benchmark::State &State, SuspendChecks Policy) {
  for (auto _ : State) {
    TaskRun R = runTasks(Policy, 3, 30, 30, 1500, 1 << 13);
    if (!R.Ok) {
      State.SkipWithError("task failure");
      return;
    }
    State.counters["world_stops"] = (double)R.St.get(StatId::TaskWorldStops);
  }
}
BENCHMARK_CAPTURE(BM_Tasking, alloc_only, SuspendChecks::AtAllocation);
BENCHMARK_CAPTURE(BM_Tasking, every_call, SuspendChecks::AtEveryCall);
BENCHMARK_CAPTURE(BM_Tasking, rgc_register, SuspendChecks::RgcRegister);

} // namespace

int main(int argc, char **argv) {
  JsonSink Sink("tasking", argc, argv);
  jsonWorkload("taskWorkerAndSpinner");
  tableHeader("E8: suspension policy (3 workers + 1 spinner, shared heap)",
              "checks = explicit suspension tests executed; stop latency = "
              "instructions other tasks run between heap exhaustion and "
              "world-stop",
              {"policy", "checks", "world stops", "avg stop latency",
               "max stop latency", "ctx switches"});
  report(SuspendChecks::AtAllocation);
  report(SuspendChecks::AtEveryCall);
  report(SuspendChecks::RgcRegister);
  std::printf("\nExpected shape: alloc-only runs the fewest checks but the "
              "spinner stalls the\nworld-stop (large max latency); "
              "every-call stops fast but pays a check per call;\n"
              "rgc-register matches alloc-only's explicit check count with "
              "every-call's latency\n(the test rides the computed jump).\n\n");
  benchmark::Initialize(&argc, argv);
  Sink.runBenchmarksAndWrite();
  return 0;
}
