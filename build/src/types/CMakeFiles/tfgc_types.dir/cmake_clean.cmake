file(REMOVE_RECURSE
  "CMakeFiles/tfgc_types.dir/Infer.cpp.o"
  "CMakeFiles/tfgc_types.dir/Infer.cpp.o.d"
  "CMakeFiles/tfgc_types.dir/Type.cpp.o"
  "CMakeFiles/tfgc_types.dir/Type.cpp.o.d"
  "libtfgc_types.a"
  "libtfgc_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfgc_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
