//===- tests/lower_test.cpp - AST to IR lowering --------------------------===//

#include "TestUtil.h"

using namespace tfgc;
using namespace tfgc::test;

namespace {

TEST(Lower, TopLevelFunsAreDirectCalls) {
  auto C = compile("fun inc (x : int) : int = x + 1;\ninc 3");
  ASSERT_TRUE(C.P) << C.Error;
  FuncId Inc = findFunction(C.P->Prog, "inc");
  ASSERT_NE(Inc, InvalidFunc);
  EXPECT_FALSE(C.P->Prog.fn(Inc).IsClosure);
  bool FoundDirect = false;
  for (const CallSiteInfo &S : C.P->Prog.Sites)
    if (S.Kind == SiteKind::Direct && S.Callee == Inc)
      FoundDirect = true;
  EXPECT_TRUE(FoundDirect);
}

TEST(Lower, LambdasBecomeClosures) {
  auto C = compile("let val k = 2 in (fn x => x + k) 1 end");
  ASSERT_TRUE(C.P) << C.Error;
  const IrFunction *Lambda = nullptr;
  for (const IrFunction &F : C.P->Prog.Functions)
    if (F.IsClosure)
      Lambda = &F;
  ASSERT_NE(Lambda, nullptr);
  EXPECT_EQ(Lambda->EnvTypes.size(), 1u); // Captures k.
  EXPECT_EQ(Lambda->EnvTypes[0]->resolved()->getKind(), TypeKind::Int);
}

TEST(Lower, NonCapturingLocalFunIsLifted) {
  auto C = compile("let fun sq (x : int) : int = x * x in sq 4 end");
  ASSERT_TRUE(C.P) << C.Error;
  FuncId Sq = findFunction(C.P->Prog, "sq");
  ASSERT_NE(Sq, InvalidFunc);
  EXPECT_FALSE(C.P->Prog.fn(Sq).IsClosure);
}

TEST(Lower, CapturingLocalFunIsClosure) {
  auto C = compile(
      "let val k = 3 fun addk (x : int) : int = x + k in addk 1 end");
  ASSERT_TRUE(C.P) << C.Error;
  FuncId AddK = findFunction(C.P->Prog, "addk");
  ASSERT_NE(AddK, InvalidFunc);
  EXPECT_TRUE(C.P->Prog.fn(AddK).IsClosure);
}

TEST(Lower, FunctionAsValueGetsStub) {
  auto C = compile("fun double (x : int) : int = x * 2;\n"
                   "fun apply (f : int -> int) (x : int) : int = f x;\n"
                   "apply double 5");
  ASSERT_TRUE(C.P) << C.Error;
  FuncId Stub = findFunction(C.P->Prog, "double$stub");
  ASSERT_NE(Stub, InvalidFunc);
  EXPECT_TRUE(C.P->Prog.fn(Stub).IsClosure);
  // apply's body calls through the closure.
  FuncId Apply = findFunction(C.P->Prog, "apply");
  bool FoundIndirect = false;
  for (const CallSiteInfo &S : C.P->Prog.Sites)
    if (S.Kind == SiteKind::Indirect && S.Caller == Apply)
      FoundIndirect = true;
  EXPECT_TRUE(FoundIndirect);
}

TEST(Lower, StubsAreCached) {
  auto C = compile("fun d (x : int) : int = x;\n"
                   "fun ap (f : int -> int) : int = f 1;\n"
                   "ap d + ap d");
  ASSERT_TRUE(C.P) << C.Error;
  int Stubs = 0;
  for (const IrFunction &F : C.P->Prog.Functions)
    if (F.Name == "d$stub")
      ++Stubs;
  EXPECT_EQ(Stubs, 1);
}

TEST(Lower, AllocationsCarrySites) {
  auto C = compile("((1, 2), [3], ref 4, fn x => x + 1, 5.0)");
  ASSERT_TRUE(C.P) << C.Error;
  int Allocs = 0;
  for (const CallSiteInfo &S : C.P->Prog.Sites)
    if (S.Kind == SiteKind::Alloc)
      ++Allocs;
  // Tuple inner + cons + ref + closure + float box + outer tuple.
  EXPECT_GE(Allocs, 6);
}

TEST(Lower, NullaryCtorIsNotAnAllocation) {
  auto C = compile("datatype c = Red | Green;\nRed");
  ASSERT_TRUE(C.P) << C.Error;
  for (const CallSiteInfo &S : C.P->Prog.Sites)
    if (S.Kind == SiteKind::Alloc) {
      const Instr &I = C.P->Prog.fn(S.Caller).Code[S.InstrIdx];
      EXPECT_NE(I.Op, Opcode::MakeData);
    }
}

TEST(Lower, DirectSiteRecordsInstantiation) {
  auto C = compile("fun id x = x;\n(id 1, id [true])");
  ASSERT_TRUE(C.P) << C.Error;
  FuncId Id = findFunction(C.P->Prog, "id");
  const IrFunction &F = C.P->Prog.fn(Id);
  ASSERT_EQ(F.TypeParams.size(), 1u);
  std::vector<std::string> Insts;
  for (const CallSiteInfo &S : C.P->Prog.Sites)
    if (S.Kind == SiteKind::Direct && S.Callee == Id) {
      ASSERT_EQ(S.CalleeTypeInst.size(), 1u);
      Insts.push_back(C.P->Types->render(S.CalleeTypeInst[0]));
    }
  ASSERT_EQ(Insts.size(), 2u);
  std::sort(Insts.begin(), Insts.end());
  EXPECT_EQ(Insts[0], "(bool) list");
  EXPECT_EQ(Insts[1], "int");
}

TEST(Lower, InstantiationOverCallerParamsPropagates) {
  // g's element type at f's call site is written over f's own parameter.
  auto C = compile("fun g xs = case xs of Nil => 0 | Cons(_, _) => 1;\n"
                   "fun f ys = g ys;\n"
                   "f [true]");
  ASSERT_TRUE(C.P) << C.Error;
  FuncId G = findFunction(C.P->Prog, "g");
  FuncId F = findFunction(C.P->Prog, "f");
  const IrFunction &FFn = C.P->Prog.fn(F);
  ASSERT_EQ(FFn.TypeParams.size(), 1u);
  for (const CallSiteInfo &S : C.P->Prog.Sites) {
    if (S.Kind != SiteKind::Direct || S.Caller != F || S.Callee != G)
      continue;
    ASSERT_EQ(S.CalleeTypeInst.size(), 1u);
    EXPECT_EQ(S.CalleeTypeInst[0]->resolved(), FFn.TypeParams[0]);
  }
}

TEST(Lower, IndirectSiteRecordsClosureType) {
  auto C = compile("fun ap (f : int -> bool) : bool = f 1;\n"
                   "ap (fn x => x > 0)");
  ASSERT_TRUE(C.P) << C.Error;
  FuncId Ap = findFunction(C.P->Prog, "ap");
  for (const CallSiteInfo &S : C.P->Prog.Sites) {
    if (S.Kind != SiteKind::Indirect || S.Caller != Ap)
      continue;
    ASSERT_NE(S.ClosureTy, nullptr);
    EXPECT_EQ(C.P->Types->render(S.ClosureTy), "(int) -> bool");
  }
}

TEST(Lower, PolymorphicLocalFunWithCapturesIsRejected) {
  Compiled C = compile(
      "fun outer (k : int) : int =\n"
      "  let fun keep xs = (k, xs)\n"
      "  in (case keep [1] of (a, _) => a) + (case keep [true] of (a, _) "
      "=> a) end;\nouter 1");
  EXPECT_EQ(C.P, nullptr);
  EXPECT_NE(C.Error.find("polymorphic local function"), std::string::npos);
}

TEST(Lower, SlotTypesCoverEverySlot) {
  auto C = compile("fun f (n : int) : int list = "
                   "let val a = [n] val b = (n, a) in case b of (x, _) => "
                   "[x] end;\nf 1");
  ASSERT_TRUE(C.P) << C.Error;
  for (const IrFunction &F : C.P->Prog.Functions) {
    EXPECT_EQ(F.SlotTypes.size(), F.numSlots());
    for (Type *T : F.SlotTypes)
      EXPECT_NE(T, nullptr);
  }
}

TEST(Lower, PrintIrIsStable) {
  auto C = compile("fun inc (x : int) : int = x + 1;\ninc 1");
  ASSERT_TRUE(C.P) << C.Error;
  std::string S = printIr(C.P->Prog);
  EXPECT_NE(S.find("fn"), std::string::npos);
  EXPECT_NE(S.find("call"), std::string::npos);
  EXPECT_NE(S.find("main"), std::string::npos);
}

TEST(Lower, MainReturnsBodyValue) {
  auto C = compile("42");
  ASSERT_TRUE(C.P) << C.Error;
  const IrFunction &Main = C.P->Prog.fn(C.P->Prog.MainId);
  ASSERT_FALSE(Main.Code.empty());
  EXPECT_EQ(Main.Code.back().Op, Opcode::Return);
}

} // namespace
