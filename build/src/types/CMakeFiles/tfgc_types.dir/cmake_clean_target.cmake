file(REMOVE_RECURSE
  "libtfgc_types.a"
)
