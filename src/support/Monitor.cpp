//===- support/Monitor.cpp ------------------------------------------------===//

#include "support/Monitor.h"

#include "support/Epoch.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

using namespace tfgc;

const char *tfgc::opClassName(OpClass C) {
  switch (C) {
  case OpClass::Load:       return "load";
  case OpClass::Prim:       return "prim";
  case OpClass::Alloc:      return "alloc";
  case OpClass::HeapAccess: return "heap_access";
  case OpClass::Branch:     return "branch";
  case OpClass::Call:       return "call";
  case OpClass::Other:      return "other";
  case OpClass::NumClasses: break;
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// MmuTracker
//===----------------------------------------------------------------------===//

void MmuTracker::addPause(uint64_t StartNs, uint64_t EndNs) {
  if (!Ends.empty() && StartNs < Ends.back())
    StartNs = Ends.back();
  if (EndNs < StartNs)
    EndNs = StartNs;
  Starts.push_back(StartNs);
  Ends.push_back(EndNs);
  Prefix.push_back(gcNsTotal() + (EndNs - StartNs));
}

uint64_t MmuTracker::gcNsIn(uint64_t T0, uint64_t T1) const {
  if (T1 <= T0 || Starts.empty())
    return 0;
  // Pauses overlapping [T0, T1): the first whose end exceeds T0 through
  // the last whose start precedes T1.
  size_t Lo = std::upper_bound(Ends.begin(), Ends.end(), T0) - Ends.begin();
  size_t Hi =
      std::lower_bound(Starts.begin(), Starts.end(), T1) - Starts.begin();
  if (Lo >= Hi)
    return 0;
  uint64_t Sum = Prefix[Hi - 1] - (Lo ? Prefix[Lo - 1] : 0);
  if (Starts[Lo] < T0)
    Sum -= T0 - Starts[Lo];
  if (Ends[Hi - 1] > T1)
    Sum -= Ends[Hi - 1] - T1;
  return Sum;
}

double MmuTracker::mmu(uint64_t WindowNs, uint64_t T0, uint64_t T1) const {
  if (T1 <= T0)
    return 1.0;
  if (WindowNs == 0)
    WindowNs = 1;
  uint64_t Span = T1 - T0;
  if (Span <= WindowNs)
    return 1.0 - (double)gcNsIn(T0, T1) / (double)Span;
  // The GC time inside a sliding window is piecewise linear in the window
  // position with maxima only where a window edge aligns with a pause
  // edge, so evaluating windows anchored at every pause start, every
  // pause end, and the two interval extremes finds the minimum.
  double MinU = 1.0;
  auto EvalStartingAt = [&](uint64_t T) {
    if (T < T0)
      T = T0;
    if (T > T1 - WindowNs)
      T = T1 - WindowNs;
    double U = 1.0 - (double)gcNsIn(T, T + WindowNs) / (double)WindowNs;
    if (U < MinU)
      MinU = U;
  };
  EvalStartingAt(T0);
  EvalStartingAt(T1 - WindowNs);
  for (size_t I = 0; I < Starts.size(); ++I) {
    if (Ends[I] <= T0 || Starts[I] >= T1)
      continue;
    EvalStartingAt(Starts[I]);
    if (Ends[I] >= WindowNs)
      EvalStartingAt(Ends[I] - WindowNs);
  }
  return MinU;
}

//===----------------------------------------------------------------------===//
// Monitor
//===----------------------------------------------------------------------===//

Monitor::Monitor(Options O)
    : Opts(O), OwnEpoch(std::chrono::steady_clock::now()) {
  if (Opts.SamplePeriodSteps == 0)
    Opts.SamplePeriodSteps = 1;
  if (Opts.HeartbeatPeriodMs == 0)
    Opts.HeartbeatPeriodMs = 1;
}

uint64_t Monitor::nowNs() const {
  if (Tel)
    return Tel->nowNs();
  return (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - OwnEpoch)
      .count();
}

void Monitor::attachTelemetry(Telemetry *T) {
  Tel = T;
  if (Tel)
    Tel->setEventSink(this);
}

void Monitor::setStream(std::ostream *OS) {
  Stream = OS;
  if (Stream)
    emitHeader();
}

void Monitor::beginRun() {
  if (RunStartNs != NoTime)
    return;
  RunStartNs = nowNs();
  LastResumeNs = RunStartNs;
  LastHbNs = RunStartNs;
}

void Monitor::endRun() {
  uint64_t Now = nowNs();
  if (RunStartNs == NoTime)
    beginRun();
  if (LastResumeNs != NoTime && Now > LastResumeNs)
    MutatorNsTotal += Now - LastResumeNs;
  LastResumeNs = Now;
  RunEndNs = Now;
}

void Monitor::onGcEvent(const GcEvent &E) {
  uint64_t Start = E.StartNs;
  uint64_t End = E.StartNs + E.PauseNs;
  if (RunStartNs == NoTime) {
    // Collection before any VM started (collector-only harnesses): open
    // the run window at the event so the interval math stays consistent.
    RunStartNs = Start;
    LastResumeNs = Start;
    LastHbNs = Start;
  }
  if (LastResumeNs != NoTime && Start > LastResumeNs)
    MutatorNsTotal += Start - LastResumeNs;
  if (LastResumeNs == NoTime || End > LastResumeNs)
    LastResumeNs = End;
  Mmu.addPause(Start, End);
  ++Collections;
}

void Monitor::recordSample(uint32_t Func, uint32_t Caller, OpClass C,
                           uint32_t TaskIdx, const SampleCounters &SC) {
  ++Samples;
  if (Func >= Flat.size())
    Flat.resize((size_t)Func + 1, 0);
  ++Flat[Func];
  ++Edges[((uint64_t)Caller << 32) | Func];
  ++ByClass[(size_t)C];
  if (TaskIdx >= Tasks.size())
    Tasks.resize((size_t)TaskIdx + 1);
  Tasks[TaskIdx].Steps = SC.Steps;
  ++Tasks[TaskIdx].Samples;

  if (!Stream && !Agg)
    return;
  uint64_t Now = nowNs();
  if (LastHbNs == NoTime)
    LastHbNs = Now;
  if (Now - LastHbNs >= Opts.HeartbeatPeriodMs * 1'000'000ull)
    emitHeartbeat(Now, SC);
}

void Monitor::recordTaskStopDelay(uint32_t TaskIdx, uint64_t DelayNs) {
  if (TaskIdx >= Tasks.size())
    Tasks.resize((size_t)TaskIdx + 1);
  Tasks[TaskIdx].StopDelay.record(DelayNs);
}

void Monitor::noteTaskSteps(uint32_t TaskIdx, uint64_t Steps) {
  if (TaskIdx >= Tasks.size())
    Tasks.resize((size_t)TaskIdx + 1);
  Tasks[TaskIdx].Steps = Steps;
}

uint64_t Monitor::stepsObserved() const {
  uint64_t S = 0;
  for (const TaskCell &T : Tasks)
    S += T.Steps;
  return S;
}

uint64_t Monitor::runEndOrNow() const {
  return RunEndNs != NoTime ? RunEndNs : nowNs();
}

uint64_t Monitor::wallNs() const {
  if (RunStartNs == NoTime)
    return 0;
  uint64_t End = runEndOrNow();
  return End > RunStartNs ? End - RunStartNs : 0;
}

uint64_t Monitor::mutatorNsAt(uint64_t Now) const {
  uint64_t M = MutatorNsTotal;
  if (LastResumeNs != NoTime && Now > LastResumeNs && RunEndNs == NoTime)
    M += Now - LastResumeNs;
  return M;
}

double Monitor::mutatorFraction() const {
  uint64_t Wall = wallNs();
  if (!Wall)
    return 1.0;
  return (double)mutatorNsAt(runEndOrNow()) / (double)Wall;
}

double Monitor::mmu(uint64_t WindowNs) const {
  if (RunStartNs == NoTime)
    return 1.0;
  return Mmu.mmu(WindowNs, RunStartNs, runEndOrNow());
}

const std::string &Monitor::funcName(uint32_t Func) const {
  static const std::string Unknown = "?";
  static const std::string Root = "<root>";
  if (Func == NoFunc)
    return Root;
  return Func < FuncNames.size() ? FuncNames[Func] : Unknown;
}

namespace {

/// JSON string escaping for labels/function names.
std::string jsonStr(const std::string &S) {
  std::string Out = "\"";
  for (char C : S) {
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if ((unsigned char)C < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", (unsigned)C);
      Out += Buf;
    } else {
      Out += C;
    }
  }
  Out += '"';
  return Out;
}

std::string fmtFrac(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  return Buf;
}

} // namespace

void Monitor::emitHeader() {
  *Stream << "{\"type\": \"header\", \"schema\": " << StreamSchema
          << ", \"tool\": \"tfgc-monitor\"";
  if (!Label.empty())
    *Stream << ", \"label\": " << jsonStr(Label);
  *Stream << ", \"sample_period_steps\": " << Opts.SamplePeriodSteps
          << ", \"heartbeat_period_ms\": " << Opts.HeartbeatPeriodMs
          << "}\n";
  Stream->flush();
}

void Monitor::writeTasksJson(std::ostream &OS) const {
  OS << "[";
  for (size_t I = 0; I < Tasks.size(); ++I) {
    const TaskCell &T = Tasks[I];
    OS << (I ? ", " : "") << "{\"task\": " << I << ", \"steps\": " << T.Steps
       << ", \"samples\": " << T.Samples
       << ", \"stop_delays\": " << T.StopDelay.count();
    if (T.StopDelay.count())
      OS << ", \"stop_delay_ns_p50\": " << T.StopDelay.percentile(50)
         << ", \"stop_delay_ns_p99\": " << T.StopDelay.percentile(99)
         << ", \"stop_delay_ns_max\": " << T.StopDelay.max();
    OS << "}";
  }
  OS << "]";
}

void Monitor::emitHeartbeat(uint64_t Now, const SampleCounters &SC) {
  // Sample points are cooperative safepoints (the VM flushes its hot
  // counters before calling in): fold a Heartbeat epoch first so the
  // served /metrics and this record describe the same instant.
  if (Agg)
    Agg->fold(SafepointKind::Heartbeat);
  uint64_t DtNs = Now - LastHbNs;
  double DtMs = (double)DtNs / 1e6;
  auto Rate = [&](uint64_t Cur, uint64_t Prev) {
    return DtMs > 0.0 && Cur >= Prev ? (double)(Cur - Prev) / DtMs : 0.0;
  };
  std::ostringstream OS;
  OS << "{\"type\": \"heartbeat\", \"seq\": " << HeartbeatSeq++
     << ", \"t_ns\": " << (Now - RunStartNs) << ", \"dt_ns\": " << DtNs
     << ", \"steps\": " << stepsObserved() << ", \"samples\": " << Samples
     << ", \"collections\": " << Collections << ", \"gc_ns\": " << gcNs()
     << ", \"mutator_ns\": " << mutatorNsAt(Now)
     << ", \"alloc_bytes\": " << SC.AllocBytes
     << ", \"alloc_rate_bytes_per_ms\": "
     << fmtFrac(Rate(SC.AllocBytes, LastHbCounters.AllocBytes))
     << ", \"barrier_ops\": " << SC.BarrierOps
     << ", \"barrier_rate_per_ms\": "
     << fmtFrac(Rate(SC.BarrierOps, LastHbCounters.BarrierOps))
     << ", \"remset_entries\": " << SC.RemsetEntries
     << ", \"remset_growth\": "
     << (SC.RemsetEntries >= LastHbCounters.RemsetEntries
             ? SC.RemsetEntries - LastHbCounters.RemsetEntries
             : 0)
     << ", \"sample_rate_per_ms\": "
     << fmtFrac(Rate(Samples, LastHbSamples))
     << ", \"mmu\": {\"1ms\": "
     << fmtFrac(Mmu.mmu(1'000'000, RunStartNs, Now)) << ", \"10ms\": "
     << fmtFrac(Mmu.mmu(10'000'000, RunStartNs, Now)) << ", \"100ms\": "
     << fmtFrac(Mmu.mmu(100'000'000, RunStartNs, Now)) << "}"
     << ", \"tasks\": ";
  writeTasksJson(OS);
  if (St) {
    OS << ", \"counters\": {";
    bool First = true;
    for (const auto &[Name, Value] : St->all()) {
      OS << (First ? "" : ", ") << '"' << Name << "\": " << Value;
      First = false;
    }
    OS << "}";
  }
  OS << "}\n";
  std::string Line = OS.str();
  if (Stream) {
    *Stream << Line;
    Stream->flush();
  }
  if (Agg)
    Agg->noteHeartbeat(Line);
  ++Heartbeats;
  LastHbNs = Now;
  LastHbCounters = SC;
  LastHbSamples = Samples;
}

void Monitor::finish() {
  if (Finished)
    return;
  Finished = true;
  if (RunStartNs != NoTime && RunEndNs == NoTime)
    endRun();
  if (!Stream)
    return;

  std::ostream &OS = *Stream;
  uint64_t Wall = wallNs();
  OS << "{\"type\": \"summary\", \"schema\": " << StreamSchema;
  if (!Label.empty())
    OS << ", \"label\": " << jsonStr(Label);
  OS << ", \"wall_ns\": " << Wall << ", \"mutator_ns\": " << MutatorNsTotal
     << ", \"gc_ns\": " << gcNs() << ", \"collections\": " << Collections
     << ", \"steps\": " << stepsObserved() << ", \"samples\": " << Samples
     << ", \"sample_period_steps\": " << Opts.SamplePeriodSteps
     << ", \"heartbeats\": " << Heartbeats
     << ", \"mutator_fraction\": " << fmtFrac(mutatorFraction())
     << ", \"mmu\": {\"1ms\": " << fmtFrac(mmu(1'000'000))
     << ", \"10ms\": " << fmtFrac(mmu(10'000'000))
     << ", \"100ms\": " << fmtFrac(mmu(100'000'000)) << "}";

  OS << ", \"op_classes\": {";
  for (size_t I = 0; I < NumOpClasses; ++I)
    OS << (I ? ", " : "") << '"' << opClassName((OpClass)I)
       << "\": " << ByClass[I];
  OS << "}";

  // Flat profile, top 64 by samples.
  std::vector<std::pair<uint64_t, uint32_t>> Top;
  for (uint32_t F = 0; F < Flat.size(); ++F)
    if (Flat[F])
      Top.push_back({Flat[F], F});
  std::sort(Top.begin(), Top.end(), std::greater<>());
  if (Top.size() > 64)
    Top.resize(64);
  OS << ", \"profile_flat\": [";
  for (size_t I = 0; I < Top.size(); ++I)
    OS << (I ? ", " : "") << "{\"func\": " << jsonStr(funcName(Top[I].second))
       << ", \"samples\": " << Top[I].first << "}";
  OS << "]";

  // Caller-attributed profile, top 64 edges.
  std::vector<std::pair<uint64_t, uint64_t>> TopEdges;
  for (const auto &[Key, N] : Edges)
    TopEdges.push_back({N, Key});
  std::sort(TopEdges.begin(), TopEdges.end(), std::greater<>());
  if (TopEdges.size() > 64)
    TopEdges.resize(64);
  OS << ", \"profile_callers\": [";
  for (size_t I = 0; I < TopEdges.size(); ++I) {
    uint32_t Caller = (uint32_t)(TopEdges[I].second >> 32);
    uint32_t Callee = (uint32_t)TopEdges[I].second;
    OS << (I ? ", " : "") << "{\"caller\": " << jsonStr(funcName(Caller))
       << ", \"func\": " << jsonStr(funcName(Callee))
       << ", \"samples\": " << TopEdges[I].first << "}";
  }
  OS << "]";

  OS << ", \"tasks\": ";
  writeTasksJson(OS);
  OS << "}\n";
  OS.flush();
}

namespace {

uint64_t ppm(double Frac) {
  if (Frac < 0.0)
    Frac = 0.0;
  if (Frac > 1.0)
    Frac = 1.0;
  return (uint64_t)(Frac * 1e6 + 0.5);
}

} // namespace

void Monitor::publishStats(Stats &Out) const {
  Out.set("mon.samples", Samples);
  Out.set("mon.sample_period_steps", Opts.SamplePeriodSteps);
  Out.set("mon.heartbeats", Heartbeats);
  Out.set("mon.collections", Collections);
  Out.set("mon.wall_ns", wallNs());
  Out.set("mon.mutator_ns", mutatorNsAt(runEndOrNow()));
  Out.set("mon.gc_ns", gcNs());
  Out.set("mon.mutator_fraction_ppm", ppm(mutatorFraction()));
  Out.set("mon.mmu_1ms_ppm", ppm(mmu(1'000'000)));
  Out.set("mon.mmu_10ms_ppm", ppm(mmu(10'000'000)));
  Out.set("mon.mmu_100ms_ppm", ppm(mmu(100'000'000)));
}

std::string Monitor::renderSummary(size_t TopN) const {
  std::ostringstream OS;
  uint64_t Wall = wallNs();
  OS << "[monitor]";
  if (!Label.empty())
    OS << ' ' << Label;
  OS << " wall_ms=" << fmtFrac((double)Wall / 1e6)
     << " mutator_ms=" << fmtFrac((double)MutatorNsTotal / 1e6)
     << " gc_ms=" << fmtFrac((double)gcNs() / 1e6)
     << " mutator_fraction=" << fmtFrac(mutatorFraction())
     << " mmu_1ms=" << fmtFrac(mmu(1'000'000))
     << " mmu_10ms=" << fmtFrac(mmu(10'000'000))
     << " mmu_100ms=" << fmtFrac(mmu(100'000'000))
     << " samples=" << Samples << "\n";
  std::vector<std::pair<uint64_t, uint32_t>> Top;
  for (uint32_t F = 0; F < Flat.size(); ++F)
    if (Flat[F])
      Top.push_back({Flat[F], F});
  std::sort(Top.begin(), Top.end(), std::greater<>());
  if (Top.size() > TopN)
    Top.resize(TopN);
  for (const auto &[N, F] : Top)
    OS << "[monitor]   " << funcName(F) << " samples=" << N << " ("
       << fmtFrac(Samples ? (double)N / (double)Samples : 0.0) << ")\n";
  return OS.str();
}
