file(REMOVE_RECURSE
  "libtfgc_gcmeta.a"
)
