//===- bench/bench_frame_init.cpp - E9: frame zeroing cost ---------------===//
///
/// Paper section 1.1.1's critique of per-procedure descriptors: if the
/// collector assumes every slot of every frame is valid, "all local
/// variables [must be] created as soon as the procedure is called, and
/// immediately initialized. This imposes an additional time and space
/// overhead during execution." Per-call-site routines (the paper's
/// method) trace only initialized slots, so frames need no zeroing. This
/// bench measures words zeroed and the wall-time impact on call-heavy
/// code.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace tfgc;
using namespace tfgc::bench;
namespace wl = tfgc::workloads;

namespace {

void report(const char *Config, const std::string &Src, GcStrategy S,
            bool ForceZero) {
  auto P = compileOrDie(Src);
  Stats St;
  std::string Err;
  auto Col = P->makeCollector(S, GcAlgorithm::Copying, 1 << 20, St, &Err);
  if (!Col)
    std::abort();
  VmOptions VO = defaultVmOptions(S);
  VO.ZeroFrames = VO.ZeroFrames || ForceZero;
  Vm M(P->Prog, P->Image, *P->Types, *Col, VO);
  RunResult R = M.run();
  if (!R.Ok)
    std::abort();
  tableCell(Config);
  tableCell(St.get(StatId::VmCalls));
  tableCell(St.get(StatId::VmFrameWordsZeroed));
  tableCell(St.get(StatId::VmCalls)
                ? (double)St.get(StatId::VmFrameWordsZeroed) /
                      (double)St.get(StatId::VmCalls)
                : 0.0);
  tableEnd();
}

std::unique_ptr<CompiledProgram> &queens() {
  static auto P = compileOrDie(wl::nqueens(7));
  return P;
}

void BM_GoldbergNoZeroing(benchmark::State &State) {
  timedRun(State, *queens(), GcStrategy::CompiledTagFree,
           GcAlgorithm::Copying, 1 << 20);
}
void BM_GoldbergForcedZeroing(benchmark::State &State) {
  timedRun(State, *queens(), GcStrategy::CompiledTagFree,
           GcAlgorithm::Copying, 1 << 20, /*ZeroFramesOverride=*/true);
}
void BM_AppelZeroes(benchmark::State &State) {
  timedRun(State, *queens(), GcStrategy::AppelTagFree, GcAlgorithm::Copying,
           1 << 20);
}
BENCHMARK(BM_GoldbergNoZeroing);
BENCHMARK(BM_GoldbergForcedZeroing);
BENCHMARK(BM_AppelZeroes);

} // namespace

int main(int argc, char **argv) {
  JsonSink Sink("frame_init", argc, argv);
  jsonWorkload("nqueens");
  std::string Src = wl::nqueens(7);
  tableHeader("E9: frame initialization (nqueens 7, call-heavy)",
              "Appel/tagged must zero every frame at entry; per-site "
              "routines trace only initialized slots and skip it",
              {"configuration", "calls", "words zeroed", "words/call"});
  report("goldberg (no zeroing)", Src, GcStrategy::CompiledTagFree, false);
  report("goldberg + forced zero", Src, GcStrategy::CompiledTagFree, true);
  report("appel (must zero)", Src, GcStrategy::AppelTagFree, false);
  report("tagged (must zero)", Src, GcStrategy::Tagged, false);
  std::printf("\nExpected shape: the paper's method zeroes nothing; "
              "Appel/tagged zero every\nframe word on every call — pure "
              "mutator overhead visible in the timings.\n\n");
  benchmark::Initialize(&argc, argv);
  Sink.runBenchmarksAndWrite();
  return 0;
}
