# Empty dependencies file for bench_gcpoints.
# This may be replaced when dependencies are built.
