//===- ir/Ir.h - Typed register IR ------------------------------*- C++ -*-===//
///
/// \file
/// The typed register IR the VM executes and the GC metadata generators
/// consume. Each function owns a flat instruction list with forward-only
/// jumps (loops exist only through recursion) and a typed slot per
/// parameter, local and temporary.
///
/// Every instruction that can start a collection — direct calls, indirect
/// calls, and allocations (the paper's "call to cons/new") — carries a
/// CallSiteId. Call sites are the unit the paper attaches frame GC routines
/// to: the word after the call instruction in the code image holds the
/// routine for tracing the *caller's* frame at exactly that point.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_IR_IR_H
#define TFGC_IR_IR_H

#include "support/SourceLoc.h"
#include "types/Type.h"

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace tfgc {

using SlotIndex = uint32_t;
using FuncId = uint32_t;
using CallSiteId = uint32_t;
using LabelId = uint32_t;

inline constexpr FuncId InvalidFunc = std::numeric_limits<FuncId>::max();
inline constexpr CallSiteId InvalidSite =
    std::numeric_limits<CallSiteId>::max();
inline constexpr uint32_t InvalidAllocSite =
    std::numeric_limits<uint32_t>::max();

enum class Opcode : uint8_t {
  // Constants and moves.
  LoadInt,   ///< Dst <- IntImm
  LoadFloat, ///< Dst <- FloatImm (boxed under the tagged model)
  LoadBool,  ///< Dst <- IntImm (0/1)
  LoadUnit,  ///< Dst <- unit
  Move,      ///< Dst <- Srcs[0]

  // Primitives.
  Prim,  ///< Dst <- PrimVal(Srcs...)
  Print, ///< append Srcs[0] to the VM output

  // Heap allocation (each carries a CallSiteId — GC may trigger here).
  MakeTuple,   ///< Dst <- new tuple(Srcs...)
  MakeData,    ///< Dst <- new CtorIdx(Srcs...) or immediate if nullary
  MakeClosure, ///< Dst <- new closure(Callee, Srcs... captured)
  MakeRef,     ///< Dst <- new ref(Srcs[0])

  // Heap access.
  GetField,        ///< Dst <- Srcs[0].field[FieldIdx] (tuple/data/closure env)
  GetTag,          ///< Dst <- constructor index of data value Srcs[0]
  SetClosureField, ///< Srcs[0].env[FieldIdx] <- Srcs[1] (closure cycle patch)
  RefLoad,         ///< Dst <- !Srcs[0]
  RefStore,        ///< Srcs[0] := Srcs[1]

  // Control flow (forward-only).
  Jump,   ///< goto Label
  Branch, ///< if Srcs[0] goto Label else goto Label2
  Call,   ///< Dst <- Callee(Srcs...)            [direct; CallSiteId]
  CallIndirect, ///< Dst <- Srcs[0](Srcs[1..])   [closure; CallSiteId]
  Return, ///< return Srcs[0]
  Abort,  ///< pattern-match failure
};

/// Which primitive a Prim instruction computes. Mirrors frontend PrimOp for
/// the arithmetic subset (ref/print have dedicated opcodes).
enum class PrimVal : uint8_t {
  Add, Sub, Mul, Div, Mod, Neg,
  Lt, Le, Gt, Ge, Eq, Ne,
  Not,
  FAdd, FSub, FMul, FDiv, FNeg, FLt, FEq,
  IntToFloat,
};

struct Instr {
  Opcode Op;
  SlotIndex Dst = 0;
  std::vector<SlotIndex> Srcs;
  int64_t IntImm = 0;
  double FloatImm = 0.0;
  PrimVal Prim = PrimVal::Add;
  FuncId Callee = InvalidFunc;
  CallSiteId Site = InvalidSite;
  uint32_t CtorIdx = 0;
  uint32_t FieldIdx = 0;
  LabelId Label = 0;
  LabelId Label2 = 0;
  DatatypeInfo *Data = nullptr; ///< MakeData / GetTag.

  /// True if this instruction writes Dst.
  bool hasDst() const;
  /// True if this instruction may allocate and therefore carries a site.
  bool isGcPoint() const { return Site != InvalidSite; }
};

/// How a call site can reach the collector.
enum class SiteKind : uint8_t {
  Direct,   ///< Call to a known function.
  Indirect, ///< Call through a closure.
  Alloc,    ///< Allocation ("call to cons/new", paper section 2.1).
};

/// Compile-time record for one GC point. TraceSlots is filled by the
/// liveness analysis (or set to "all initialized slots" when liveness is
/// disabled); CodeAddr is assigned by the code image builder.
struct CallSiteInfo {
  CallSiteId Id = InvalidSite;
  FuncId Caller = InvalidFunc;
  uint32_t InstrIdx = 0;
  SiteKind Kind = SiteKind::Alloc;

  FuncId Callee = InvalidFunc; ///< Direct only.
  /// Direct: instantiation of the callee's type parameters, written over the
  /// caller's type parameters (paper section 3: what the caller's frame GC
  /// routine passes to the callee's).
  std::vector<Type *> CalleeTypeInst;
  /// Indirect: the static type of the closure being called, over the
  /// caller's type parameters.
  Type *ClosureTy = nullptr;

  /// Slots of the caller to trace if GC happens here (live and initialized).
  std::vector<SlotIndex> TraceSlots;
  /// Result of the GC-point analysis: can this site actually start a
  /// collection? Alloc sites always can.
  bool CanTriggerGc = true;

  /// Address of the "call instruction" in the code image; the gc_word lives
  /// at CodeAddr + GcWordOffset and execution resumes at CodeAddr +
  /// ResumeOffset (paper Figure 1).
  uint32_t CodeAddr = 0;

  /// Source location of the expression that created this site (line 0 =
  /// synthesized, e.g. letrec sibling patches and stubs).
  SourceLoc Loc;
  /// Alloc sites only: dense index into [0, IrProgram::NumAllocSites) used
  /// by the heap profiler's flat per-site counters. InvalidAllocSite for
  /// call sites.
  uint32_t AllocId = InvalidAllocSite;
};

struct IrFunction {
  FuncId Id = InvalidFunc;
  std::string Name;
  unsigned NumParams = 0; ///< Slots [0, NumParams) are parameters.
  std::vector<Type *> SlotTypes;
  std::vector<Instr> Code;
  /// Label -> instruction index.
  std::vector<uint32_t> LabelTargets;

  /// The function's type parameters: the rigid vars of its scheme. Slot
  /// types may mention them; the collector binds them to type GC routines.
  std::vector<Type *> TypeParams;

  /// Closure-called functions (lambdas, local funs with captures, stubs):
  /// slot 0 is the closure itself ("self"), env field i has type
  /// EnvTypes[i] and is read as field i of self.
  bool IsClosure = false;
  std::vector<Type *> EnvTypes;
  /// The function's own function type (params excluding self, result).
  Type *FunTy = nullptr;

  /// Code image entry address (set by the code image builder). The word at
  /// Entry - 1 holds the closure GC metadata (paper section 2.2).
  uint32_t EntryAddr = 0;

  unsigned numSlots() const { return (unsigned)SlotTypes.size(); }
};

struct IrProgram {
  std::vector<IrFunction> Functions;
  std::vector<CallSiteInfo> Sites;
  /// Number of SiteKind::Alloc sites; their AllocIds form a dense
  /// [0, NumAllocSites) range in site order (re-densified after
  /// monomorphisation, which re-homes every site).
  uint32_t NumAllocSites = 0;
  FuncId MainId = InvalidFunc;
  TypeContext *Types = nullptr; ///< Non-owning.

  IrFunction &fn(FuncId Id) { return Functions[Id]; }
  const IrFunction &fn(FuncId Id) const { return Functions[Id]; }
  CallSiteInfo &site(CallSiteId Id) { return Sites[Id]; }
  const CallSiteInfo &site(CallSiteId Id) const { return Sites[Id]; }
};

/// Finds a function by name (InvalidFunc if absent). Top-level function
/// names are unique; lambdas have synthesized names.
FuncId findFunction(const IrProgram &P, const std::string &Name);

/// Renders the IR for tests and debugging.
std::string printIr(const IrProgram &P);
std::string printFunction(const IrProgram &P, const IrFunction &F);

} // namespace tfgc

#endif // TFGC_IR_IR_H
