file(REMOVE_RECURSE
  "CMakeFiles/bench_metadata_size.dir/bench_metadata_size.cpp.o"
  "CMakeFiles/bench_metadata_size.dir/bench_metadata_size.cpp.o.d"
  "bench_metadata_size"
  "bench_metadata_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_metadata_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
