//===- examples/quickstart.cpp - Public API tour --------------------------===//
///
/// Compile a MiniML program, pick a GC strategy, run it, inspect stats.
/// This is the whole public API: Compiler -> CompiledProgram ->
/// makeCollector -> Vm.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include <cstdio>

using namespace tfgc;

int main() {
  // A strongly typed program with very dynamic storage allocation: builds
  // and reverses lists, forcing collections in a small heap.
  const char *Source = R"(
    fun build (n : int) : int list =
      if n = 0 then [] else n :: build (n - 1);

    fun revAcc (xs : int list) (acc : int list) : int list =
      case xs of Nil => acc | Cons(x, r) => revAcc r (x :: acc);

    fun sum (xs : int list) : int =
      case xs of Nil => 0 | Cons(x, r) => x + sum r;

    fun rounds (i : int) (acc : int) : int =
      if i = 0 then acc
      else rounds (i - 1) (acc + sum (revAcc (build 100) []));

    rounds 50 0
  )";

  // 1. Compile once. The compiler type checks, lowers to IR, runs the
  //    liveness and GC-point analyses, and emits the GC metadata for every
  //    strategy (the tag-free frame routines ARE the paper's contribution).
  Compiler C;
  std::string Error;
  std::unique_ptr<CompiledProgram> P = C.compile(Source, &Error);
  if (!P) {
    std::fprintf(stderr, "compile error:\n%s", Error.c_str());
    return 1;
  }
  std::printf("compiled: %zu functions, %zu call sites, %zu frame routines\n",
              P->Prog.Functions.size(), P->Prog.Sites.size(),
              P->Compiled.numFrameRoutines());

  // 2. Run the same program under each strategy with a deliberately tiny
  //    heap so the collector earns its keep.
  for (GcStrategy S :
       {GcStrategy::Tagged, GcStrategy::CompiledTagFree,
        GcStrategy::InterpretedTagFree, GcStrategy::AppelTagFree}) {
    Stats St;
    std::unique_ptr<Collector> Col =
        P->makeCollector(S, GcAlgorithm::Copying, /*HeapBytes=*/8 * 1024, St,
                         &Error);
    if (!Col) {
      std::fprintf(stderr, "%s: %s\n", gcStrategyName(S), Error.c_str());
      return 1;
    }
    Vm M(P->Prog, P->Image, *P->Types, *Col, defaultVmOptions(S));
    RunResult R = M.run();
    if (!R.Ok) {
      std::fprintf(stderr, "%s: runtime error: %s\n", gcStrategyName(S),
                   R.Error.c_str());
      return 1;
    }
    std::printf(
        "%-20s result=%-8s collections=%-4llu avg pause=%6.1fus "
        "heap allocated=%llu bytes\n",
        gcStrategyName(S), R.Value.c_str(),
        (unsigned long long)St.get(StatId::GcCollections),
        St.get(StatId::GcCollections)
            ? (double)St.get(StatId::GcPauseNsTotal) /
                  (double)St.get(StatId::GcCollections) / 1000.0
            : 0.0,
        (unsigned long long)St.get(StatId::HeapBytesAllocatedTotal));
  }

  std::printf("\nAll four collectors return the same value; the tag-free "
              "ones did it without a\nsingle tag bit in the heap.\n");
  return 0;
}
