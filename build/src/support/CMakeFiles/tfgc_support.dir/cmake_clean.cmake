file(REMOVE_RECURSE
  "CMakeFiles/tfgc_support.dir/Arena.cpp.o"
  "CMakeFiles/tfgc_support.dir/Arena.cpp.o.d"
  "CMakeFiles/tfgc_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/tfgc_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/tfgc_support.dir/Stats.cpp.o"
  "CMakeFiles/tfgc_support.dir/Stats.cpp.o.d"
  "libtfgc_support.a"
  "libtfgc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfgc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
