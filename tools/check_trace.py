#!/usr/bin/env python3
"""Sanity-checks a tfgc --trace-out / --stats-json pair.

Asserts that the Chrome trace is valid JSON, that it contains one
collection event (gc.collection, gc.minor, or gc.major) per collection,
that per-kind event counts agree with the stats document's
collections_minor/collections_major split when present, and that the
per-phase span durations sum to within 5% of the telemetry pause total
(the spans are a partition of the pause; see DESIGN.md section 5,
"Telemetry layer").

A run with zero collections fails the check: a telemetry smoke test that
never collects has not exercised the collector, so treat it as a
misconfigured heap size rather than a pass.

Usage: check_trace.py TRACE.json STATS.json
"""

import json
import sys

COLLECTION_EVENTS = ("gc.collection", "gc.minor", "gc.major")


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    trace_path, stats_path = sys.argv[1], sys.argv[2]
    with open(trace_path) as f:
        trace = json.load(f)
    with open(stats_path) as f:
        stats = json.load(f)

    events = trace["traceEvents"]
    collections = [e for e in events
                   if e.get("name") in COLLECTION_EVENTS]
    phases = [e for e in events if e.get("cat") == "gc.phase"]
    n = stats["collections"]
    if n == 0:
        print(f"error: {stats_path} reports zero collections — the run "
              "never exercised the collector (heap too large for the "
              "workload?)", file=sys.stderr)
        return 1
    assert len(collections) == n, (
        f"trace has {len(collections)} collection events, "
        f"stats report {n} collections")
    assert phases, "trace has no gc.phase events"

    # Per-kind counts must agree with the stats split (present whenever
    # the generational algorithm ran; full collections count as neither).
    for kind, name in (("collections_minor", "gc.minor"),
                       ("collections_major", "gc.major")):
        if kind in stats:
            got = sum(1 for e in collections if e["name"] == name)
            assert got == stats[kind], (
                f"trace has {got} {name} events, "
                f"stats report {kind}={stats[kind]}")

    # Trace ts/dur are microseconds (with ns as the fractional part);
    # histogram sums are nanoseconds.
    phase_ns = round(sum(e["dur"] for e in phases) * 1000)
    pause_ns = stats["pause_histogram"]["sum"]
    assert pause_ns > 0, "no pause time recorded"
    ratio = phase_ns / pause_ns
    print(f"collections={n} phase_ns={phase_ns} pause_ns={pause_ns} "
          f"coverage={ratio:.4f}")
    assert 0.95 <= ratio <= 1.0001, (
        f"phase spans cover {ratio:.2%} of the pause, want within 5%")

    # The census must agree with the visit counters (verification off).
    census_objs = sum(k["objects"] for k in stats["census_totals"].values())
    counted = stats["counters"].get("gc.objects_visited", 0)
    assert census_objs == counted, (
        f"census objects {census_objs} != gc.objects_visited {counted}")

    # Under --threads=N the trace must carry one named track per mutator
    # (thread_name metadata, tids 1..N) and every collection event must
    # land on one of those tracks — never the hardcoded tid 1 of the
    # sequential writer.
    spawned = stats["counters"].get("task.spawned", 0)
    if spawned >= 2:
        tracks = sorted(e["tid"] for e in events
                        if e.get("name") == "thread_name")
        assert tracks == list(range(1, spawned + 1)), (
            f"trace names tracks {tracks}, want 1..{spawned} "
            f"(task.spawned={spawned})")
        bad = [e["tid"] for e in collections
               if not 1 <= e["tid"] <= spawned]
        assert not bad, (
            f"collection events on unnamed tracks {sorted(set(bad))}, "
            f"want tids in 1..{spawned}")
        print(f"tracks={spawned}")
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
