//===- analysis/Cfg.cpp ---------------------------------------------------===//

#include "analysis/Cfg.h"

using namespace tfgc;

Cfg::Cfg(const IrFunction &F) {
  size_t N = F.Code.size();
  Successors.resize(N);
  Predecessors.resize(N);
  for (size_t I = 0; I < N; ++I) {
    const Instr &In = F.Code[I];
    auto AddEdge = [&](uint32_t To) {
      if (To < N) {
        Successors[I].push_back(To);
        Predecessors[To].push_back((uint32_t)I);
      }
    };
    switch (In.Op) {
    case Opcode::Jump:
      AddEdge(F.LabelTargets[In.Label]);
      break;
    case Opcode::Branch:
      AddEdge(F.LabelTargets[In.Label]);
      AddEdge(F.LabelTargets[In.Label2]);
      break;
    case Opcode::Return:
    case Opcode::Abort:
      break;
    default:
      AddEdge((uint32_t)I + 1);
      break;
    }
  }
}
