# Empty compiler generated dependencies file for tfgc_vm.
# This may be replaced when dependencies are built.
