//===- sched/Tlab.h - Thread-local allocation buffer ------------*- C++ -*-===//
///
/// \file
/// A thread-local allocation buffer: a private [Top, End) window carved
/// out of a shared bump space so the mutator allocation fast path is two
/// thread-local pointer updates with no shared-memory traffic. Refill
/// (Heap::refillTlab / GenHeap::refillTlab) claims the next chunk off the
/// shared cursor with a CAS loop, so the whole allocation path is
/// lock-free for the copying and generational heaps.
///
/// Invariants (DESIGN.md section 11):
///  * A TLAB window is owned by exactly one mutator thread and is never
///    read by another thread while the owner runs — collections reset
///    every TLAB at the rendezvous, while the world is stopped.
///  * Shared-cursor accounting counts whole chunks at carve time, so
///    `heap.used_bytes` / `heap.bytes_allocated_total` include the
///    unused tails of live TLABs (standard TLAB-waste semantics).
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_SCHED_TLAB_H
#define TFGC_SCHED_TLAB_H

#include "runtime/Value.h"

#include <cstddef>
#include <cstdint>

namespace tfgc {

class FlightRing;

struct Tlab {
  /// Default refill request: big enough to amortize the CAS, small enough
  /// that per-thread waste stays a fraction of any test-sized nursery.
  static constexpr size_t ChunkWords = 256;

  Word *Top = nullptr;
  Word *End = nullptr;
  uint64_t Refills = 0;
  uint64_t AllocatedWords = 0;
  /// The owning task's flight-recorder ring (null when not recording):
  /// the refill slow path stamps a TlabRefill event with the bytes carved
  /// so a thread's allocation pressure shows on its timeline.
  FlightRing *Flight = nullptr;

  /// Fast path: thread-local bump, no atomics. Returns nullptr when the
  /// window can't fit \p Words (caller refills or collects).
  Word *bump(size_t Words) {
    if (Words > (size_t)(End - Top))
      return nullptr;
    Word *P = Top;
    Top += Words;
    AllocatedWords += Words;
    return P;
  }

  /// Drops the window. Called (a) while the world is stopped, before a
  /// collection moves the space under it, and (b) when the owning thread
  /// finishes.
  void reset() { Top = End = nullptr; }
};

} // namespace tfgc

#endif // TFGC_SCHED_TLAB_H
