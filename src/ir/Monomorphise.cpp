//===- ir/Monomorphise.cpp ------------------------------------------------===//

#include "ir/Monomorphise.h"

#include <cassert>
#include <deque>
#include <map>
#include <unordered_map>

using namespace tfgc;

namespace {

class Monomorphiser {
public:
  explicit Monomorphiser(IrProgram &P) : P(P), Ctx(*P.Types) {}

  MonomorphiseResult run() {
    MonomorphiseResult R;
    R.FunctionsBefore = (unsigned)P.Functions.size();

    // Seed: main with the empty instantiation.
    (void)specialize(P.MainId, {});
    while (!Work.empty()) {
      PendingBody B = Work.front();
      Work.pop_front();
      rewriteBody(B);
    }

    // Count real specializations (clones beyond the first per source fn).
    std::unordered_map<FuncId, unsigned> PerSource;
    for (const auto &[Key, NewId] : Specialized) {
      (void)NewId;
      ++PerSource[Key.first];
    }
    for (const auto &[Src, N] : PerSource) {
      (void)Src;
      if (N > 1)
        R.Specializations += N - 1;
    }

    IrProgram Out;
    Out.Types = P.Types;
    Out.Functions = std::move(NewFunctions);
    Out.Sites = std::move(NewSites);
    Out.NumAllocSites = NumAllocSites;
    Out.MainId = 0; // main is the first specialization requested.
    P = std::move(Out);
    R.FunctionsAfter = (unsigned)P.Functions.size();
    return R;
  }

private:
  IrProgram &P;
  TypeContext &Ctx;

  /// Key: (source function, rendered ground instantiation).
  using Key = std::pair<FuncId, std::string>;
  std::map<Key, FuncId> Specialized;
  std::vector<IrFunction> NewFunctions;
  std::vector<CallSiteInfo> NewSites;
  uint32_t NumAllocSites = 0;

  struct PendingBody {
    FuncId Source;
    FuncId Target;
    std::unordered_map<Type *, Type *> Subst;
  };
  std::deque<PendingBody> Work;

  std::string keyOf(const IrFunction &F,
                    const std::vector<Type *> &Inst) {
    std::string K;
    for (Type *T : Inst) {
      K += Ctx.render(T);
      K += ';';
    }
    (void)F;
    return K;
  }

  /// Requests (and memoizes) the specialization of \p Source at the
  /// ground types \p Inst (aligned with Source's TypeParams).
  FuncId specialize(FuncId Source, const std::vector<Type *> &Inst) {
    const IrFunction &F = P.fn(Source);
    assert(Inst.size() == F.TypeParams.size() &&
           "instantiation arity mismatch");
    Key K{Source, keyOf(F, Inst)};
    auto It = Specialized.find(K);
    if (It != Specialized.end())
      return It->second;

    std::unordered_map<Type *, Type *> Subst;
    for (size_t I = 0; I < Inst.size(); ++I)
      Subst[F.TypeParams[I]] = Inst[I];

    IrFunction Clone;
    Clone.Id = (FuncId)NewFunctions.size();
    Clone.Name = F.Name;
    if (!Inst.empty()) {
      Clone.Name += "<";
      for (size_t I = 0; I < Inst.size(); ++I)
        Clone.Name += (I ? "," : "") + Ctx.render(Inst[I]);
      Clone.Name += ">";
    }
    Clone.NumParams = F.NumParams;
    Clone.IsClosure = F.IsClosure;
    Clone.FunTy = Ctx.substitute(F.FunTy, Subst);
    for (Type *T : F.SlotTypes)
      Clone.SlotTypes.push_back(Ctx.substitute(T, Subst));
    for (Type *T : F.EnvTypes)
      Clone.EnvTypes.push_back(Ctx.substitute(T, Subst));
    Clone.LabelTargets = F.LabelTargets;
    // TypeParams intentionally empty: the whole point.

    FuncId NewId = Clone.Id;
    NewFunctions.push_back(std::move(Clone));
    Specialized.emplace(std::move(K), NewId);
    Work.push_back({Source, NewId, std::move(Subst)});
    return NewId;
  }

  /// Evaluates the instantiation types a call site passes to its callee,
  /// under the caller's own substitution.
  std::vector<Type *>
  groundInst(const std::vector<Type *> &Inst,
             const std::unordered_map<Type *, Type *> &Subst) {
    std::vector<Type *> Out;
    Out.reserve(Inst.size());
    for (Type *T : Inst)
      Out.push_back(Ctx.substitute(T, Subst));
    return Out;
  }

  void rewriteBody(const PendingBody &B) {
    const IrFunction &Src = P.fn(B.Source);
    std::vector<Instr> Code = Src.Code; // Clone, then patch.

    for (size_t Idx = 0; Idx < Code.size(); ++Idx) {
      Instr &I = Code[Idx];
      switch (I.Op) {
      case Opcode::Call: {
        const CallSiteInfo &S = P.site(I.Site);
        assert(S.Kind == SiteKind::Direct);
        I.Callee = specialize(I.Callee, groundInst(S.CalleeTypeInst, B.Subst));
        break;
      }
      case Opcode::MakeClosure: {
        // The lambda's type parameters all occur in the creating
        // function's context; project the substitution onto them.
        const IrFunction &L = P.fn(I.Callee);
        std::vector<Type *> Inst;
        Inst.reserve(L.TypeParams.size());
        for (Type *TP : L.TypeParams) {
          auto It = B.Subst.find(TP);
          assert(It != B.Subst.end() &&
                 "lambda type parameter unknown to its creator");
          Inst.push_back(It->second);
        }
        I.Callee = specialize(I.Callee, Inst);
        break;
      }
      default:
        break;
      }
      // Re-home the GC point.
      if (I.Site != InvalidSite) {
        const CallSiteInfo &Old = P.site(I.Site);
        CallSiteInfo NS;
        NS.Id = (CallSiteId)NewSites.size();
        NS.Caller = B.Target;
        NS.InstrIdx = (uint32_t)Idx;
        NS.Kind = Old.Kind;
        NS.Loc = Old.Loc;
        // Alloc sites get fresh dense ids: a cloned polymorphic function
        // contributes one profiler site per specialization.
        if (Old.Kind == SiteKind::Alloc)
          NS.AllocId = NumAllocSites++;
        if (Old.Kind == SiteKind::Direct) {
          NS.Callee = I.Callee; // Already specialized above.
          // Callee has no type parameters left.
        } else if (Old.Kind == SiteKind::Indirect) {
          NS.ClosureTy = Ctx.substitute(Old.ClosureTy, B.Subst);
        }
        I.Site = NS.Id;
        NewSites.push_back(std::move(NS));
      }
    }
    NewFunctions[B.Target].Code = std::move(Code);
  }
};

} // namespace

MonomorphiseResult tfgc::monomorphise(IrProgram &P) {
  Monomorphiser M(P);
  return M.run();
}
