//===- runtime/MarkSweepHeap.cpp ------------------------------------------===//

#include "runtime/MarkSweepHeap.h"

#include <algorithm>
#include <cassert>

using namespace tfgc;

MarkSweepHeap::MarkSweepHeap(size_t SegmentBytes) {
  SegmentWords = SegmentBytes / sizeof(Word);
  if (SegmentWords < 64)
    SegmentWords = 64;
  Bins.resize(MaxBin + 1);
  addSegment();
}

void MarkSweepHeap::addSegment() {
  Segment S;
  S.Mem = std::make_unique<Word[]>(SegmentWords);
  S.Base = (uintptr_t)S.Mem.get();
  S.End = S.Base + SegmentWords * sizeof(Word);
  S.MarkBits.assign((SegmentWords + 63) / 64, 0);
  Segments.push_back(std::move(S));

  uint32_t Idx = (uint32_t)(Segments.size() - 1);
  // Keep SegOrder sorted by base address so contains()/segmentOf() can
  // binary-search. Segments are added rarely (heap growth), so an
  // insertion into the sorted vector is fine.
  auto It = std::lower_bound(SegOrder.begin(), SegOrder.end(), Idx,
                             [&](uint32_t A, uint32_t B) {
                               return Segments[A].Base < Segments[B].Base;
                             });
  SegOrder.insert(It, Idx);

  BumpSeg = Idx;
  Bump = Segments[Idx].Mem.get();
  BumpEnd = Bump + SegmentWords;
}

uint32_t MarkSweepHeap::segmentOf(uintptr_t P) const {
  int S = findSegment(P);
  assert(S >= 0 && "pointer outside every heap segment");
  return (uint32_t)S;
}

void MarkSweepHeap::registerBlock(uint32_t Seg, uint32_t Off, size_t Words) {
  Segments[Seg].Blocks.push_back({Off, (uint32_t)Words});
  ++NumBlocks;
  UsedWords += Words;
  BytesAllocatedTotal += Words * sizeof(Word);
}

Word *MarkSweepHeap::tryAllocate(size_t Words) {
  assert(Words > 0);
  if (Words <= MaxBin && !Bins[Words].empty()) {
    FreeRef R = Bins[Words].back();
    Bins[Words].pop_back();
    registerBlock(R.Seg, R.Off, Words);
    return segWord(R.Seg, R.Off);
  }
  // First fit in the overflow list (before touching fresh bump space, to
  // curb fragmentation).
  for (size_t I = 0; I < OverflowFree.size(); ++I) {
    if (OverflowFree[I].Words >= Words) {
      FreeBlock B = OverflowFree[I];
      // Unsplit remainder is wasted until the block is freed again; the
      // registry records the requested size only.
      OverflowFree.erase(OverflowFree.begin() + (long)I);
      registerBlock(B.Seg, B.Off, Words);
      return segWord(B.Seg, B.Off);
    }
  }
  // Compare against the remaining word count: `Bump + Words` would be a
  // past-the-end pointer (UB) for adversarially large Words.
  if (Words <= (size_t)(BumpEnd - Bump)) {
    Word *P = Bump;
    Bump += Words;
    registerBlock(BumpSeg, (uint32_t)(P - Segments[BumpSeg].Mem.get()),
                  Words);
    return P;
  }
  return nullptr;
}

bool MarkSweepHeap::canAllocate(size_t Words) const {
  if (Words <= MaxBin && !Bins[Words].empty())
    return true;
  for (const FreeBlock &B : OverflowFree)
    if (B.Words >= Words)
      return true;
  return Words <= (size_t)(BumpEnd - Bump);
}

void MarkSweepHeap::beginMark() {
  for (Segment &S : Segments)
    std::fill(S.MarkBits.begin(), S.MarkBits.end(), 0);
}

size_t MarkSweepHeap::sweep() {
  size_t ReclaimedWords = 0;
  for (uint32_t SI = 0; SI < Segments.size(); ++SI) {
    Segment &S = Segments[SI];
    size_t Out = 0;
    for (size_t I = 0; I < S.Blocks.size(); ++I) {
      Block &B = S.Blocks[I];
      if ((S.MarkBits[B.Off >> 6] >> (B.Off & 63)) & 1) {
        S.Blocks[Out++] = B;
        continue;
      }
      ReclaimedWords += B.Words;
      UsedWords -= B.Words;
      --NumBlocks;
      if (B.Words <= MaxBin)
        Bins[B.Words].push_back({SI, B.Off});
      else
        OverflowFree.push_back({SI, B.Off, B.Words});
    }
    S.Blocks.resize(Out);
    // Drop the marks so stale bits cannot leak into the next cycle (the
    // old set-based implementation cleared its set here too).
    std::fill(S.MarkBits.begin(), S.MarkBits.end(), 0);
  }
  LastSweepLiveBlocks = NumBlocks;
  LastSweepLiveWords = UsedWords;
  return ReclaimedWords * sizeof(Word);
}
