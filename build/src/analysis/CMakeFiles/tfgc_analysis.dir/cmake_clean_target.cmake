file(REMOVE_RECURSE
  "libtfgc_analysis.a"
)
