# Empty dependencies file for tfgc_driver.
# This may be replaced when dependencies are built.
