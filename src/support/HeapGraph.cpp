//===- support/HeapGraph.cpp ----------------------------------------------===//

#include "support/HeapGraph.h"

#include <algorithm>
#include <cstdint>
#include <utility>

using namespace tfgc;

namespace {

void putVarint(std::string &S, uint64_t V) {
  while (V >= 0x80) {
    S.push_back((char)(0x80 | (V & 0x7f)));
    V >>= 7;
  }
  S.push_back((char)V);
}

void putZigzag(std::string &S, int64_t V) {
  putVarint(S, ((uint64_t)V << 1) ^ (uint64_t)(V >> 63));
}

void putStr(std::string &S, const std::string &Str) {
  putVarint(S, Str.size());
  S += Str;
}

constexpr uint32_t NoNode = ~0u;

} // namespace

bool HeapGraph::openFile(const std::string &Path, std::string *Err) {
  Out.open(Path, std::ios::binary | std::ios::trunc);
  if (!Out) {
    if (Err)
      *Err = "cannot open heap-dump file: " + Path;
    return false;
  }
  OutOpen = true;
  return true;
}

void HeapGraph::configure(const std::vector<AllocSiteDesc> *S,
                          const std::vector<std::string> *F, bool Tagged) {
  Sites = S;
  FuncNames = F;
  TaggedHeaders = Tagged;
}

bool HeapGraph::beginCapture(GcEventKind Kind) {
  // Minors trace the nursery only; a partial graph would dangle into
  // the untraced tenured set, so only full/major collections are
  // eligible (and count against the every-N gate).
  if (!active() || Kind == GcEventKind::Minor)
    return false;
  // Fire on the Nth, 2Nth, ... eligible collection (not the first): a
  // huge N is a true off-switch, which is also what makes the armed
  // state free — see bench_heap_graph.
  ++EligibleSeen;
  if (EligibleSeen % Every != 0)
    return false;
  Nodes.clear();
  Edges.clear();
  return true;
}

void HeapGraph::resetCapture() {
  Nodes.clear();
  Edges.clear();
}

void HeapGraph::finalizeCapture(
    uint64_t Seq, GcEventKind Kind, uint64_t CoveredBytes,
    const std::vector<HeapRoot> &Roots,
    const std::array<HeapProfiler::Tally, NumCensusKinds> &ByKind,
    const std::vector<HeapProfiler::SiteLifetime> &Lifetimes,
    const std::vector<uint64_t> &AllocCounts) {
  const size_t SiteCount = Sites ? Sites->size() : 0;
  const size_t NumSlots = SiteCount + 1; // Last slot = unknown bucket.

  // Addresses are unique (one first-visit per object per round).
  std::sort(Nodes.begin(), Nodes.end(),
            [](const NodeRec &A, const NodeRec &B) { return A.Addr < B.Addr; });
  const size_t N = Nodes.size();
  auto FindNode = [&](Word W) -> uint32_t {
    auto It = std::lower_bound(
        Nodes.begin(), Nodes.end(), W,
        [](const NodeRec &A, Word V) { return A.Addr < V; });
    if (It == Nodes.end() || It->Addr != W)
      return NoNode;
    return (uint32_t)(It - Nodes.begin());
  };

  // Resolve recorded references against the node set. Children that are
  // no object (immediates, nulls) drop out here; under the tag-free
  // models an unboxed value whose bits collide with a node address adds
  // a conservative extra edge — same caveat as the retention pass.
  std::vector<std::array<uint32_t, 3>> E; // {src, field, dst}
  uint64_t Dropped = 0;
  E.reserve(Edges.size() / 2);
  for (const EdgeRec &Ed : Edges) {
    if (TaggedHeaders && !isTaggedPointer(Ed.Child)) {
      ++Dropped;
      continue;
    }
    uint32_t D = FindNode(Ed.Child);
    if (D == NoNode) {
      ++Dropped;
      continue;
    }
    uint32_t S = FindNode(Ed.Parent);
    if (S == NoNode) {
      ++Dropped; // Parent outside the capture (should not happen).
      continue;
    }
    E.push_back({S, Ed.Field, D});
  }
  std::sort(E.begin(), E.end());
  E.erase(std::unique(E.begin(), E.end()), E.end());

  std::vector<std::pair<uint32_t, uint32_t>> RootsResolved; // (root, node)
  for (size_t I = 0; I < Roots.size(); ++I) {
    if (TaggedHeaders && !isTaggedPointer(Roots[I].Value))
      continue;
    uint32_t D = FindNode(Roots[I].Value);
    if (D != NoNode)
      RootsResolved.push_back({(uint32_t)I, D});
  }

  // -- Dominators (Cooper-Harvey-Kennedy) over the captured graph, from
  // a virtual root N whose successors are the resolved root nodes.
  const uint32_t RootN = (uint32_t)N;
  std::vector<std::vector<uint32_t>> Succ(N + 1);
  for (const auto &[RI, NI] : RootsResolved)
    Succ[RootN].push_back(NI);
  for (const auto &Ed : E)
    Succ[Ed[0]].push_back(Ed[2]);

  std::vector<int> RpoNum(N + 1, -1);
  std::vector<uint32_t> Order;
  {
    std::vector<uint32_t> Post;
    std::vector<std::pair<uint32_t, size_t>> Stack;
    std::vector<uint8_t> Visited(N + 1, 0);
    Stack.push_back({RootN, 0});
    Visited[RootN] = 1;
    while (!Stack.empty()) {
      auto &[V, Ei] = Stack.back();
      if (Ei < Succ[V].size()) {
        uint32_t W = Succ[V][Ei++];
        if (!Visited[W]) {
          Visited[W] = 1;
          Stack.push_back({W, 0});
        }
      } else {
        Post.push_back(V);
        Stack.pop_back();
      }
    }
    Order.assign(Post.rbegin(), Post.rend());
    for (size_t I = 0; I < Order.size(); ++I)
      RpoNum[Order[I]] = (int)I;
  }
  std::vector<std::vector<uint32_t>> Pred(N + 1);
  for (uint32_t V : Order)
    for (uint32_t W : Succ[V])
      if (RpoNum[W] >= 0)
        Pred[W].push_back(V);

  std::vector<int> Idom(N + 1, -1);
  Idom[RootN] = (int)RootN;
  auto Intersect = [&](int A, int B) {
    while (A != B) {
      while (RpoNum[A] > RpoNum[B])
        A = Idom[A];
      while (RpoNum[B] > RpoNum[A])
        B = Idom[B];
    }
    return A;
  };
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (size_t I = 1; I < Order.size(); ++I) {
      uint32_t V = Order[I];
      int NewIdom = -1;
      for (uint32_t P : Pred[V]) {
        if (Idom[P] == -1)
          continue;
        NewIdom = NewIdom == -1 ? (int)P : Intersect((int)P, NewIdom);
      }
      if (NewIdom != -1 && Idom[V] != NewIdom) {
        Idom[V] = NewIdom;
        Changed = true;
      }
    }
  }

  std::vector<uint64_t> Retained(N + 1, 0);
  for (size_t I = 0; I < N; ++I)
    if (RpoNum[I] >= 0)
      Retained[I] = Nodes[I].Words * sizeof(Word);
  for (size_t I = Order.size(); I-- > 1;) {
    uint32_t V = Order[I];
    if (Idom[V] >= 0)
      Retained[(size_t)Idom[V]] += Retained[V];
  }

  // -- Per-site retained with same-site dedup: a node contributes its
  // retained bytes to its site only when no *strict* dominator ancestor
  // shares the site — a list spine of one site counts its head once,
  // not every cons cell's nested subtree. One DFS over the dominator
  // tree with per-site depth counters does it in O(n).
  std::vector<uint64_t> SiteRetainedB(NumSlots, 0);
  {
    std::vector<std::vector<uint32_t>> Kids(N + 1);
    for (uint32_t V = 0; V < (uint32_t)N; ++V)
      if (RpoNum[V] >= 0 && Idom[V] >= 0 && Idom[V] != (int)V)
        Kids[(size_t)Idom[V]].push_back(V);
    std::vector<uint32_t> SiteDepth(NumSlots, 0);
    // (node, entered) DFS; RootN has no site.
    std::vector<std::pair<uint32_t, bool>> Stack{{RootN, false}};
    while (!Stack.empty()) {
      auto [V, Entered] = Stack.back();
      uint32_t Slot = V < N ? Nodes[V].Site : (uint32_t)NumSlots;
      if (Entered) {
        Stack.pop_back();
        if (Slot < NumSlots)
          --SiteDepth[Slot];
        continue;
      }
      Stack.back().second = true;
      if (Slot < NumSlots) {
        if (SiteDepth[Slot] == 0)
          SiteRetainedB[Slot] += Retained[V];
        ++SiteDepth[Slot];
      }
      for (uint32_t K : Kids[V])
        Stack.push_back({K, false});
    }
  }

  // -- Per-site live tallies and the capture summary.
  std::vector<HeapProfiler::Tally> SiteLive(NumSlots);
  Last = CaptureInfo{};
  Last.Valid = true;
  Last.Seq = Seq;
  Last.Kind = Kind;
  Last.Nodes = N;
  Last.Edges = E.size();
  Last.DroppedEdges = Dropped;
  Last.RootRefs = RootsResolved.size();
  for (const NodeRec &Nd : Nodes) {
    // Graph-derived census (the chunk footer carries the profiler's own
    // tallies; tests and --check compare the two).
    HeapProfiler::Tally &KT = Last.ByKind[Nd.Kind];
    ++KT.Objects;
    KT.Words += Nd.Words;
    uint32_t Slot = Nd.Site < NumSlots ? Nd.Site : (uint32_t)SiteCount;
    ++SiteLive[Slot].Objects;
    SiteLive[Slot].Words += Nd.Words;
  }

  if (PrevRetained.size() != NumSlots)
    PrevRetained.assign(NumSlots, 0);
  // Baseline for growth ranking: the first capture of the run. New
  // sites discovered later simply have a zero baseline.
  if (FirstRetained.size() < NumSlots)
    FirstRetained.resize(NumSlots, 0);
  if (FirstLiveObjects.size() < NumSlots)
    FirstLiveObjects.resize(NumSlots, 0);
  for (uint32_t Slot = 0; Slot < (uint32_t)NumSlots; ++Slot) {
    if (!SiteLive[Slot].Objects && !SiteRetainedB[Slot] &&
        !PrevRetained[Slot])
      continue;
    SiteRetainedRow Row;
    Row.Site = Slot;
    Row.LiveObjects = SiteLive[Slot].Objects;
    Row.LiveWords = SiteLive[Slot].Words;
    Row.RetainedBytes = SiteRetainedB[Slot];
    Row.DeltaBytes = HavePrev ? (int64_t)SiteRetainedB[Slot] -
                                    (int64_t)PrevRetained[Slot]
                              : 0;
    Row.GrowthBytes = HaveFirst ? (int64_t)SiteRetainedB[Slot] -
                                      (int64_t)FirstRetained[Slot]
                                : 0;
    Row.GrowthObjects = HaveFirst ? (int64_t)SiteLive[Slot].Objects -
                                        (int64_t)FirstLiveObjects[Slot]
                                  : 0;
    Last.Retained.push_back(Row);
  }
  std::sort(Last.Retained.begin(), Last.Retained.end(),
            [](const SiteRetainedRow &A, const SiteRetainedRow &B) {
              if (A.RetainedBytes != B.RetainedBytes)
                return A.RetainedBytes > B.RetainedBytes;
              return A.Site < B.Site;
            });
  if (!HaveFirst) {
    FirstRetained = SiteRetainedB;
    for (uint32_t Slot = 0; Slot < (uint32_t)NumSlots; ++Slot)
      FirstLiveObjects[Slot] = SiteLive[Slot].Objects;
    HaveFirst = true;
  }
  PrevRetained = std::move(SiteRetainedB);
  HavePrev = true;

  // -- Serialize, stream, publish. Flushed per chunk so an abnormal
  // exit (verify violation, crash) keeps everything captured so far.
  std::string Body = serializeChunk(Seq, Kind, CoveredBytes, RootsResolved,
                                    Roots, E, Lifetimes, AllocCounts, ByKind);
  std::string Framed;
  Framed.reserve(Body.size() + 12);
  Framed += "TFGH";
  Framed.push_back((char)1); // version
  Framed.push_back((char)(TaggedHeaders ? 1 : 0));
  Framed.push_back(0);
  Framed.push_back(0);
  uint32_t Len = (uint32_t)Body.size();
  for (int I = 0; I < 4; ++I)
    Framed.push_back((char)((Len >> (8 * I)) & 0xff));
  Framed += Body;
  if (OutOpen) {
    Out.write(Framed.data(), (std::streamsize)Framed.size());
    Out.flush();
  }
  ++Chunks;
  if (Sink)
    Sink(Framed);

  Nodes.clear();
  Edges.clear();
}

std::string HeapGraph::serializeChunk(
    uint64_t Seq, GcEventKind Kind, uint64_t CoveredBytes,
    const std::vector<std::pair<uint32_t, uint32_t>> &RootsResolved,
    const std::vector<HeapRoot> &Roots,
    const std::vector<std::array<uint32_t, 3>> &E,
    const std::vector<HeapProfiler::SiteLifetime> &Lifetimes,
    const std::vector<uint64_t> &AllocCounts,
    const std::array<HeapProfiler::Tally, NumCensusKinds> &FooterByKind)
    const {
  const size_t SiteCount = Sites ? Sites->size() : 0;
  std::string B;
  B.reserve(64 + Nodes.size() * 6 + E.size() * 4);

  putVarint(B, Seq);
  B.push_back((char)Kind);
  putVarint(B, CoveredBytes);

  // Site table (chunks are self-contained: /heapdump serves one alone).
  putVarint(B, SiteCount);
  for (size_t I = 0; I < SiteCount; ++I) {
    const AllocSiteDesc &D = (*Sites)[I];
    putStr(B, D.Func);
    putVarint(B, D.Line);
    putVarint(B, D.Col);
    putStr(B, D.TypeStr);
  }
  putVarint(B, FuncNames ? FuncNames->size() : 0);
  if (FuncNames)
    for (const std::string &F : *FuncNames)
      putStr(B, F);

  // Nodes, address-sorted and delta-encoded. Site SiteCount = unknown.
  putVarint(B, Nodes.size());
  Word Prev = 0;
  for (const NodeRec &Nd : Nodes) {
    putVarint(B, (uint64_t)(Nd.Addr - Prev));
    Prev = Nd.Addr;
    B.push_back((char)Nd.Kind);
    putVarint(B, Nd.Site);
    putVarint(B, Nd.Words);
  }

  // Edges, sorted by source; source delta-encoded.
  putVarint(B, E.size());
  uint32_t PrevSrc = 0;
  for (const auto &Ed : E) {
    putVarint(B, Ed[0] - PrevSrc);
    PrevSrc = Ed[0];
    putVarint(B, Ed[1]);
    putVarint(B, Ed[2]);
  }

  // Roots that resolved to a node: function, slot, node index.
  putVarint(B, RootsResolved.size());
  for (const auto &[RI, NI] : RootsResolved) {
    putVarint(B, Roots[RI].Func);
    putVarint(B, Roots[RI].Slot);
    putVarint(B, NI);
  }

  // Per-site live + retained (+ delta vs previous capture).
  putVarint(B, Last.Retained.size());
  for (const SiteRetainedRow &R : Last.Retained) {
    putVarint(B, R.Site);
    putVarint(B, R.LiveObjects);
    putVarint(B, R.LiveWords);
    putVarint(B, R.RetainedBytes);
    putZigzag(B, R.DeltaBytes);
  }

  // Cumulative per-site lifetime stats (empty when site tracking off).
  size_t LifeRows = 0;
  for (size_t I = 0; I < Lifetimes.size(); ++I) {
    const HeapProfiler::SiteLifetime &L = Lifetimes[I];
    bool Any = L.Deaths || L.PromotedObjects;
    for (uint64_t S : L.Survived)
      Any = Any || S;
    if (Any || (I < AllocCounts.size() && AllocCounts[I]))
      ++LifeRows;
  }
  putVarint(B, LifeRows);
  for (size_t I = 0; I < Lifetimes.size(); ++I) {
    const HeapProfiler::SiteLifetime &L = Lifetimes[I];
    bool Any = L.Deaths || L.PromotedObjects;
    for (uint64_t S : L.Survived)
      Any = Any || S;
    if (!Any && !(I < AllocCounts.size() && AllocCounts[I]))
      continue;
    putVarint(B, I);
    for (uint64_t S : L.Survived)
      putVarint(B, S);
    putVarint(B, L.Deaths);
    for (uint64_t D : L.DeathHist)
      putVarint(B, D);
    putVarint(B, L.PromotedObjects);
    putVarint(B, L.PromotedWords);
    putVarint(B, I < AllocCounts.size() ? AllocCounts[I] : 0);
  }

  // Census footer: the profiler's own per-kind tallies — the decoder
  // cross-checks the node-derived sums against these.
  putVarint(B, NumCensusKinds);
  uint64_t TotalObjects = 0, TotalWords = 0;
  for (size_t I = 0; I < NumCensusKinds; ++I) {
    putStr(B, censusKindName((CensusKind)I));
    putVarint(B, FooterByKind[I].Objects);
    putVarint(B, FooterByKind[I].Words);
    TotalObjects += FooterByKind[I].Objects;
    TotalWords += FooterByKind[I].Words;
  }
  putVarint(B, TotalObjects);
  putVarint(B, TotalWords);
  return B;
}

std::vector<SiteRetainedRow> HeapGraph::rankedDeltas() const {
  std::vector<SiteRetainedRow> Rows = Last.Retained;
  std::sort(Rows.begin(), Rows.end(),
            [](const SiteRetainedRow &A, const SiteRetainedRow &B) {
              if (A.GrowthBytes != B.GrowthBytes)
                return A.GrowthBytes > B.GrowthBytes;
              // A dominator that merely holds a growing structure (one
              // ref cell) ties the leaking site on retained growth but
              // stays at a constant object count; the leak accumulates.
              if (A.GrowthObjects != B.GrowthObjects)
                return A.GrowthObjects > B.GrowthObjects;
              return A.Site < B.Site;
            });
  return Rows;
}

void HeapGraph::finish() {
  if (OutOpen) {
    Out.flush();
    Out.close();
    OutOpen = false;
  }
}
