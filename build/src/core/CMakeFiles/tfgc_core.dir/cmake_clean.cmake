file(REMOVE_RECURSE
  "CMakeFiles/tfgc_core.dir/AppelCollector.cpp.o"
  "CMakeFiles/tfgc_core.dir/AppelCollector.cpp.o.d"
  "CMakeFiles/tfgc_core.dir/Collector.cpp.o"
  "CMakeFiles/tfgc_core.dir/Collector.cpp.o.d"
  "CMakeFiles/tfgc_core.dir/GoldbergCollector.cpp.o"
  "CMakeFiles/tfgc_core.dir/GoldbergCollector.cpp.o.d"
  "CMakeFiles/tfgc_core.dir/TaggedCollector.cpp.o"
  "CMakeFiles/tfgc_core.dir/TaggedCollector.cpp.o.d"
  "CMakeFiles/tfgc_core.dir/Tracer.cpp.o"
  "CMakeFiles/tfgc_core.dir/Tracer.cpp.o.d"
  "CMakeFiles/tfgc_core.dir/TypeGc.cpp.o"
  "CMakeFiles/tfgc_core.dir/TypeGc.cpp.o.d"
  "libtfgc_core.a"
  "libtfgc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfgc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
