//===- driver/Compiler.cpp ------------------------------------------------===//

#include "driver/Compiler.h"

#include "analysis/Liveness.h"
#include "ir/Verify.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "ir/Lower.h"
#include "types/Infer.h"

using namespace tfgc;

std::unique_ptr<CompiledProgram> Compiler::compile(const std::string &Source,
                                                   std::string *ErrorOut) {
  DiagnosticEngine Diags;
  auto Fail = [&]() -> std::unique_ptr<CompiledProgram> {
    if (ErrorOut)
      *ErrorOut = Diags.render();
    return nullptr;
  };

  Lexer Lex(Source, Diags);
  std::vector<Token> Tokens = Lex.tokenize();
  if (Diags.hasErrors())
    return Fail();

  Parser Parse(std::move(Tokens), Diags);
  std::optional<Program> Ast = Parse.parseProgram();
  if (!Ast)
    return Fail();

  auto Types = std::make_unique<TypeContext>();
  TypeChecker Checker(*Types, Diags, Options.RequireMonomorphic);
  std::optional<SemaInfo> Sema = Checker.check(*Ast);
  if (!Sema)
    return Fail();

  Lowerer Low(*Types, *Sema, Diags);
  std::optional<IrProgram> Ir = Low.lower(*Ast);
  if (!Ir)
    return Fail();
  std::string VerifyError;
  if (!verifyIr(*Ir, &VerifyError)) {
    Diags.error(SourceLoc(), "internal error: malformed IR: " + VerifyError);
    return Fail();
  }

  MonomorphiseResult MonoResult;
  if (Options.Monomorphise) {
    MonoResult = monomorphise(*Ir);
    if (!verifyIr(*Ir, &VerifyError)) {
      Diags.error(SourceLoc(),
                  "internal error: malformed IR after monomorphisation: " +
                      VerifyError);
      return Fail();
    }
  }

  auto CP = std::make_unique<CompiledProgram>();
  CP->Options = Options;
  CP->Mono = MonoResult;
  CP->Types = std::move(Types);
  CP->Prog = std::move(*Ir);
  CP->Prog.Types = CP->Types.get();

  LivenessOptions LiveOpts;
  LiveOpts.UseLiveness = Options.UseLiveness;
  LiveOpts.TraceCallArgs = Options.TaskingSafe;
  computeTraceSets(CP->Prog, LiveOpts);

  if (Options.UseGcPointAnalysis && !Options.TaskingSafe) {
    // FloatsAllocate = true keeps the shared code image sound for the
    // tagged model too (conservative for tag-free, which never collects
    // at float sites).
    GcPointOptions GcOpts;
    GcOpts.FloatsAllocate = true;
    CP->GcPoints = computeGcPoints(CP->Prog, GcOpts);
  } else {
    assumeAllSitesTrigger(CP->Prog);
  }

  CP->Image.build(CP->Prog);
  CP->Recon = computeExtractionPaths(CP->Prog);

  CP->Compiled.build(CP->Prog, CP->Recon);
  CP->Interp = std::make_unique<InterpretedMetadata>(*CP->Types);
  CP->Interp->build(CP->Prog, CP->Recon);
  CP->Appel = std::make_unique<AppelMetadata>(*CP->Types);
  CP->Appel->build(CP->Prog, CP->Recon);
  return CP;
}

std::unique_ptr<Collector>
CompiledProgram::makeCollector(GcStrategy Strategy, GcAlgorithm Algo,
                               size_t HeapBytes, Stats &St,
                               std::string *Error, size_t NurseryBytes) {
  if (Strategy != GcStrategy::Tagged && !Recon.ok() &&
      !Options.GlogerDummies) {
    if (Error) {
      std::string Msg =
          "program not collectible tag-free: type parameter(s) of ";
      for (const auto &V : Recon.Violations) {
        Msg += Prog.fn(V.Fn).Name;
        Msg += ' ';
      }
      Msg += "do not occur in the closure's function type (Goldberg '91 "
             "limitation, closed by Goldberg & Gloger '92)";
      *Error = Msg;
    }
    return nullptr;
  }
  switch (Strategy) {
  case GcStrategy::Tagged:
    return std::make_unique<TaggedCollector>(Algo, HeapBytes, St,
                                             NurseryBytes);
  case GcStrategy::CompiledTagFree:
    return std::make_unique<GoldbergCollector>(
        TraceMethod::Compiled, Algo, HeapBytes, St, Prog, Image, *Types,
        &Compiled, Interp.get(), Options.GlogerDummies, NurseryBytes);
  case GcStrategy::InterpretedTagFree:
    return std::make_unique<GoldbergCollector>(
        TraceMethod::Interpreted, Algo, HeapBytes, St, Prog, Image, *Types,
        &Compiled, Interp.get(), Options.GlogerDummies, NurseryBytes);
  case GcStrategy::AppelTagFree:
    return std::make_unique<AppelCollector>(Algo, HeapBytes, St, Prog, Image,
                                            *Types, Appel.get(),
                                            Options.GlogerDummies,
                                            NurseryBytes);
  }
  return nullptr;
}

VmOptions tfgc::defaultVmOptions(GcStrategy Strategy, bool GcStress) {
  VmOptions O;
  O.GcStress = GcStress;
  // Tagged scanning and Appel's per-procedure descriptors look at every
  // slot, initialized or not, so frames must be zeroed (paper 1.1.1).
  O.ZeroFrames =
      Strategy == GcStrategy::Tagged || Strategy == GcStrategy::AppelTagFree;
  return O;
}

void tfgc::attachHeapProfiler(const CompiledProgram &P, GcStrategy Strategy,
                              Collector &Col, HeapProfiler &Prof) {
  Prof.setEnabled(true);
  std::vector<AllocSiteDesc> Sites;
  Sites.reserve(P.Image.allocSites().size());
  for (const AllocSiteDebug &D : P.Image.allocSites())
    Sites.push_back({D.Func, D.Line, D.Col, D.TypeStr});
  Prof.setSites(std::move(Sites));
  std::vector<std::string> Names;
  Names.reserve(P.Prog.Functions.size());
  for (const IrFunction &F : P.Prog.Functions)
    Names.push_back(F.Name);
  Prof.setFunctionNames(std::move(Names));
  Prof.setTaggedHeaders(Strategy == GcStrategy::Tagged);
  Col.setHeapProfiler(&Prof);
}

void tfgc::attachMonitor(const CompiledProgram &P, Collector &Col,
                         Monitor &Mon) {
  std::vector<std::string> Names;
  Names.reserve(P.Prog.Functions.size());
  for (const IrFunction &F : P.Prog.Functions)
    Names.push_back(F.Name);
  Mon.setFunctionNames(std::move(Names));
  Col.setMonitor(&Mon);
}

ExecResult tfgc::execProgram(const std::string &Source, GcStrategy Strategy,
                             GcAlgorithm Algo, size_t HeapBytes, bool GcStress,
                             CompileOptions Options, size_t NurseryBytes) {
  ExecResult R;
  Compiler C(Options);
  std::unique_ptr<CompiledProgram> P = C.compile(Source, &R.CompileError);
  if (!P)
    return R;
  std::string ColError;
  std::unique_ptr<Collector> Col = P->makeCollector(
      Strategy, Algo, HeapBytes, R.St, &ColError, NurseryBytes);
  if (!Col) {
    R.CompileError = ColError;
    return R;
  }
  R.CompileOk = true;
  Vm M(P->Prog, P->Image, *P->Types, *Col,
       defaultVmOptions(Strategy, GcStress));
  R.Run = M.run();
  return R;
}
