//===- runtime/MarkSweepHeap.cpp ------------------------------------------===//

#include "runtime/MarkSweepHeap.h"

#include <cassert>

using namespace tfgc;

MarkSweepHeap::MarkSweepHeap(size_t SegmentBytes) {
  SegmentWords = SegmentBytes / sizeof(Word);
  if (SegmentWords < 64)
    SegmentWords = 64;
  Bins.resize(MaxBin + 1);
  addSegment();
}

void MarkSweepHeap::addSegment() {
  Segments.push_back(std::make_unique<Word[]>(SegmentWords));
  Bump = Segments.back().get();
  BumpEnd = Bump + SegmentWords;
}

Word *MarkSweepHeap::tryAllocate(size_t Words) {
  assert(Words > 0);
  Word *P = nullptr;
  if (Words <= MaxBin && !Bins[Words].empty()) {
    P = Bins[Words].back();
    Bins[Words].pop_back();
  }
  if (!P) {
    // First fit in the overflow list (before touching fresh bump space,
    // to curb fragmentation).
    for (size_t I = 0; I < OverflowFree.size(); ++I) {
      if (OverflowFree[I].Words >= Words) {
        P = OverflowFree[I].Ptr;
        // Unsplit remainder is wasted until the block is freed again; the
        // registry records the requested size only.
        OverflowFree.erase(OverflowFree.begin() + (long)I);
        break;
      }
    }
  }
  if (!P && Bump + Words <= BumpEnd) {
    P = Bump;
    Bump += Words;
  }
  if (!P)
    return nullptr;
  Blocks.push_back({P, (uint32_t)Words});
  UsedWords += Words;
  BytesAllocatedTotal += Words * sizeof(Word);
  return P;
}

bool MarkSweepHeap::canAllocate(size_t Words) const {
  if (Words <= MaxBin && !Bins[Words].empty())
    return true;
  for (const Block &B : OverflowFree)
    if (B.Words >= Words)
      return true;
  return Bump + Words <= BumpEnd;
}

void MarkSweepHeap::beginMark() { Marked.clear(); }

bool MarkSweepHeap::tryMark(const Word *Obj) {
  return Marked.insert(Obj).second;
}

size_t MarkSweepHeap::sweep() {
  size_t ReclaimedWords = 0;
  size_t Out = 0;
  for (size_t I = 0; I < Blocks.size(); ++I) {
    Block &B = Blocks[I];
    if (Marked.count(B.Ptr)) {
      Blocks[Out++] = B;
      continue;
    }
    ReclaimedWords += B.Words;
    UsedWords -= B.Words;
    if (B.Words <= MaxBin)
      Bins[B.Words].push_back(B.Ptr);
    else
      OverflowFree.push_back(B);
  }
  Blocks.resize(Out);
  Marked.clear();
  return ReclaimedWords * sizeof(Word);
}
