//===- tests/mono_test.cpp - Monomorphisation pass ------------------------===//

#include "TestUtil.h"
#include "workloads/Programs.h"

using namespace tfgc;
using namespace tfgc::test;
namespace wl = tfgc::workloads;

namespace {

CompileOptions monoOpts() {
  CompileOptions O;
  O.Monomorphise = true;
  return O;
}

TEST(Monomorphise, ResultsUnchangedAcrossWorkloads) {
  for (const std::string &Src :
       {wl::polyPaper(), wl::higherOrder(20), wl::polyDeep(20, 20),
        wl::listChurn(20, 3), wl::variantRecords(30)}) {
    ExecResult Plain = execProgram(Src, GcStrategy::CompiledTagFree,
                                   GcAlgorithm::Copying, 1 << 14, true);
    ASSERT_TRUE(Plain.Run.Ok) << Plain.Run.Error;
    for (GcStrategy S : AllStrategies) {
      ExecResult Mono = execProgram(Src, S, GcAlgorithm::Copying, 1 << 14,
                                    true, monoOpts());
      ASSERT_TRUE(Mono.Run.Ok)
          << gcStrategyName(S) << ": " << Mono.CompileError << Mono.Run.Error;
      EXPECT_EQ(Mono.Run.Value, Plain.Run.Value) << gcStrategyName(S);
    }
  }
}

TEST(Monomorphise, NoTypeParametersRemain) {
  auto C = compile(wl::polyPaper(), monoOpts());
  ASSERT_TRUE(C.P) << C.Error;
  for (const IrFunction &F : C.P->Prog.Functions) {
    EXPECT_TRUE(F.TypeParams.empty()) << F.Name;
    for (Type *T : F.SlotTypes)
      EXPECT_TRUE(isGroundType(T)) << F.Name;
  }
  for (const CallSiteInfo &S : C.P->Prog.Sites)
    EXPECT_TRUE(S.CalleeTypeInst.empty());
}

TEST(Monomorphise, SpecializesPerInstantiation) {
  auto C = compile("fun id x = x;\n(id 1, id true, id [2])", monoOpts());
  ASSERT_TRUE(C.P) << C.Error;
  int Ids = 0;
  for (const IrFunction &F : C.P->Prog.Functions)
    if (F.Name.substr(0, 3) == "id<")
      ++Ids;
  EXPECT_EQ(Ids, 3);
  EXPECT_EQ(C.P->Mono.Specializations, 2u); // Clones beyond the first.
}

TEST(Monomorphise, SharesEqualInstantiations) {
  auto C = compile("fun id x = x;\n(id 1, id 2, id 3)", monoOpts());
  ASSERT_TRUE(C.P) << C.Error;
  int Ids = 0;
  for (const IrFunction &F : C.P->Prog.Functions)
    if (F.Name.substr(0, 3) == "id<")
      ++Ids;
  EXPECT_EQ(Ids, 1);
}

TEST(Monomorphise, DropsUnreachableFunctions) {
  auto C = compile("fun used (x : int) : int = x;\n"
                   "fun unused (x : int) : int = x + 1;\n"
                   "used 1",
                   monoOpts());
  ASSERT_TRUE(C.P) << C.Error;
  EXPECT_EQ(findFunction(C.P->Prog, "unused"), InvalidFunc);
  EXPECT_NE(findFunction(C.P->Prog, "used"), InvalidFunc);
}

TEST(Monomorphise, NoTypeGcClosuresAtCollectionTime) {
  // After specialization the section-3 machinery is never exercised.
  ExecResult R = execProgram(wl::polyPaper(), GcStrategy::CompiledTagFree,
                             GcAlgorithm::Copying, 1 << 12, true, monoOpts());
  ASSERT_TRUE(R.Run.Ok) << R.Run.Error;
  EXPECT_EQ(R.St.get("gc.tg_nodes"), 0u);
  EXPECT_EQ(R.St.get("gc.chain_steps"), 0u);
}

TEST(Monomorphise, RescuesNonReconstructibleClosures) {
  // Goldberg '91 cannot collect this tag-free (the captured list's type
  // variable is invisible in the lambda's function type); after
  // specialization the variable is gone and everything works.
  std::string Src = "fun len xs = case xs of Nil => 0 "
                    "| Cons(_, r) => 1 + len r;\n"
                    "fun build (n : int) : int list = if n = 0 then [] "
                    "else n :: build (n - 1);\n"
                    "fun hide xs = fn (n : int) => n + len xs;\n"
                    "val f = hide [true, false];\n"
                    "let val junk = build 300 in f 3 end";
  auto Plain = compile(Src);
  ASSERT_TRUE(Plain.P);
  EXPECT_FALSE(Plain.P->Recon.ok());

  auto Mono = compile(Src, monoOpts());
  ASSERT_TRUE(Mono.P) << Mono.Error;
  EXPECT_TRUE(Mono.P->Recon.ok());
  ExecResult R = execProgram(Src, GcStrategy::CompiledTagFree,
                             GcAlgorithm::Copying, 1 << 12, true, monoOpts());
  ASSERT_TRUE(R.Run.Ok) << R.CompileError << R.Run.Error;
  EXPECT_EQ(R.Run.Value, "5");
}

TEST(Monomorphise, CodeGrowthIsMeasured) {
  auto Plain = compile(wl::polyDeep(10, 10));
  auto Mono = compile(wl::polyDeep(10, 10), monoOpts());
  ASSERT_TRUE(Plain.P && Mono.P);
  EXPECT_EQ(Mono.P->Mono.FunctionsBefore,
            (unsigned)Plain.P->Prog.Functions.size());
  // polyDeep instantiates deep/len at one type each; growth is modest
  // here, but the counter exists for E7's ablation.
  EXPECT_GE(Mono.P->Mono.FunctionsAfter, 3u);
}

TEST(Monomorphise, WorksUnderMarkSweepToo) {
  ExecResult R = execProgram(wl::polyPaper(), GcStrategy::InterpretedTagFree,
                             GcAlgorithm::MarkSweep, 1 << 12, true,
                             monoOpts());
  ASSERT_TRUE(R.Run.Ok) << R.Run.Error;
}

} // namespace
