//===- runtime/MarkSweepHeap.h - Mark-sweep heap ----------------*- C++ -*-===//
///
/// \file
/// A non-moving heap with segregated free lists, supporting the paper's
/// remark that the method "will support mark/sweep collection as well".
/// Because tag-free objects carry no headers, the allocator keeps a side
/// registry of (address, size) blocks for the sweep phase; the collector
/// supplies reachability (it knows sizes from types). The registry is the
/// documented substitution for the size information a real implementation
/// would derive from its block map.
///
/// The heap grows by adding segments (objects never move).
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_RUNTIME_MARKSWEEPHEAP_H
#define TFGC_RUNTIME_MARKSWEEPHEAP_H

#include "runtime/Value.h"

#include <cstddef>
#include <memory>
#include <unordered_set>
#include <vector>

namespace tfgc {

class MarkSweepHeap {
public:
  explicit MarkSweepHeap(size_t SegmentBytes);

  /// Allocates \p Words words; nullptr when full (caller collects or
  /// grows).
  Word *tryAllocate(size_t Words);

  /// True if tryAllocate(\p Words) would succeed.
  bool canAllocate(size_t Words) const;

  /// Adds another segment of the initial size.
  void addSegment();

  // -- Collector interface --------------------------------------------------
  void beginMark();
  /// Marks \p Obj; returns true on first visit.
  bool tryMark(const Word *Obj);
  bool isMarked(const Word *Obj) const { return Marked.count(Obj) != 0; }
  /// Frees every unmarked block; returns bytes reclaimed.
  size_t sweep();

  /// True if \p P points into any segment (verification support).
  bool contains(Word P) const {
    for (const auto &Seg : Segments) {
      auto Base = (Word)(uintptr_t)Seg.get();
      if (P >= Base && P < Base + SegmentWords * sizeof(Word))
        return true;
    }
    return false;
  }

  size_t capacityBytes() const { return Segments.size() * SegmentWords * 8; }
  size_t usedBytes() const { return UsedWords * 8; }
  uint64_t bytesAllocatedTotal() const { return BytesAllocatedTotal; }
  size_t numBlocks() const { return Blocks.size(); }

private:
  struct Block {
    Word *Ptr;
    uint32_t Words;
  };

  size_t SegmentWords;
  std::vector<std::unique_ptr<Word[]>> Segments;
  Word *Bump = nullptr, *BumpEnd = nullptr;
  /// Free lists for block sizes 1..MaxBin; larger blocks are rare and go
  /// to the overflow list (first fit).
  static constexpr size_t MaxBin = 64;
  std::vector<std::vector<Word *>> Bins;
  std::vector<Block> OverflowFree;
  std::vector<Block> Blocks; ///< Live allocation registry.
  std::unordered_set<const Word *> Marked;
  size_t UsedWords = 0;
  uint64_t BytesAllocatedTotal = 0;
};

} // namespace tfgc

#endif // TFGC_RUNTIME_MARKSWEEPHEAP_H
