# Empty dependencies file for bench_frame_init.
# This may be replaced when dependencies are built.
