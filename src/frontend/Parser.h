//===- frontend/Parser.h - MiniML parser ------------------------*- C++ -*-===//
///
/// \file
/// Recursive-descent parser for MiniML.
///
/// Grammar sketch (precedence low to high):
///   program  := decl* expr? EOF
///   decl     := 'datatype' tyvars? IDENT '=' ctor ('|' ctor)*
///             | 'fun' funbind ('and' funbind)*
///             | 'val' pat '=' expr
///   expr     := 'let' decl+ 'in' expr 'end' | 'if' | 'case' | 'fn'
///             | assign
///   assign   := orelse (':=' orelse)?
///   orelse   := andalso ('orelse' andalso)*
///   andalso  := cmp ('andalso' cmp)*
///   cmp      := cons (CMPOP cons)?
///   cons     := add ('::' cons)?
///   add      := mul (('+'|'-'|'+.'|'-.') mul)*
///   mul      := unary (('*'|'/'|'mod'|'*.'|'/.') unary)*
///   unary    := '~' unary | 'not' unary | '!' unary | 'ref' unary
///             | 'print' unary | app
///   app      := atom atom*
///
/// Constructor application `C (a, b)` splats a directly parenthesized tuple
/// into constructor arguments; `C ((a, b))` passes one tuple argument.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_FRONTEND_PARSER_H
#define TFGC_FRONTEND_PARSER_H

#include "frontend/Ast.h"
#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <optional>
#include <vector>

namespace tfgc {

class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags);

  /// Parses a whole program. Returns nullopt if any syntax error was
  /// reported.
  std::optional<Program> parseProgram();

private:
  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;

  const Token &peek(size_t Ahead = 0) const;
  const Token &advance();
  bool check(TokenKind Kind) const { return peek().Kind == Kind; }
  bool accept(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  SourceLoc loc() const { return peek().Loc; }

  bool atDeclStart() const;
  bool atAtomStart() const;

  // Declarations.
  DeclPtr parseDecl();
  DeclPtr parseDatatypeDecl();
  DeclPtr parseFunDecl();
  DeclPtr parseValDecl();

  // Types. A '(' t1, t2, ... ')' group can only be an n-ary function
  // domain or a multi-argument type application; the Group out-parameters
  // thread it upward until one of those resolves it.
  TypeAstPtr parseType();
  TypeAstPtr parseTypeProduct(std::vector<TypeAstPtr> &Group);
  TypeAstPtr parseTypePostfix(std::vector<TypeAstPtr> *Group);
  TypeAstPtr parseTypeAtomOrGroup(std::vector<TypeAstPtr> &Group);

  // Patterns.
  PatternPtr parsePattern();
  PatternPtr parseConsPattern();
  PatternPtr parseAtomicPattern();

  // Expressions.
  ExprPtr parseExpr();
  ExprPtr parseAssign();
  ExprPtr parseOrElse();
  ExprPtr parseAndAlso();
  ExprPtr parseCompare();
  ExprPtr parseCons();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parseApp();

  struct Atom {
    ExprPtr E;
    bool ParenTuple = false; ///< Directly written as (e1, ..., en).
  };
  Atom parseAtom();

  ExprPtr makeCons(SourceLoc Loc, ExprPtr Head, ExprPtr Tail);
  ExprPtr errorExpr(SourceLoc Loc);
};

} // namespace tfgc

#endif // TFGC_FRONTEND_PARSER_H
