//===- bench/bench_heap_space.cpp - E2: heap space per object ------------===//
///
/// Paper claim (section 1, "More efficient use of heap space"): removing
/// tags saves heap space — every object drops its header word, and floats
/// live unboxed. This bench runs identical workloads under both models
/// and reports total bytes allocated, objects allocated, bytes/object,
/// and peak residency.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace tfgc;
using namespace tfgc::bench;
namespace wl = tfgc::workloads;

namespace {

void report(const char *Name, const std::string &Src, size_t HeapBytes) {
  jsonWorkload(Name);
  for (GcStrategy S : {GcStrategy::Tagged, GcStrategy::CompiledTagFree}) {
    Stats St = runOnce(Src, S, GcAlgorithm::Copying, HeapBytes);
    uint64_t Bytes = St.get(StatId::HeapBytesAllocatedTotal);
    uint64_t Objects = St.get(StatId::HeapObjectsAllocated);
    tableCell(Name);
    tableCell(S == GcStrategy::Tagged ? "tagged" : "tag-free");
    tableCell(human(Bytes));
    tableCell(Objects);
    tableCell(Objects ? (double)Bytes / (double)Objects : 0.0);
    tableCell(human(St.get(StatId::HeapUsedBytes)));
    tableEnd();
  }
}

void BM_ChurnSpaceTagged(benchmark::State &State) {
  static auto P = compileOrDie(wl::listChurn(128, 32));
  timedRun(State, *P, GcStrategy::Tagged, GcAlgorithm::Copying, 1 << 15);
}
void BM_ChurnSpaceTagFree(benchmark::State &State) {
  static auto P = compileOrDie(wl::listChurn(128, 32));
  timedRun(State, *P, GcStrategy::CompiledTagFree, GcAlgorithm::Copying,
           1 << 15);
}
BENCHMARK(BM_ChurnSpaceTagged);
BENCHMARK(BM_ChurnSpaceTagFree);

} // namespace

int main(int argc, char **argv) {
  JsonSink Sink("heap_space", argc, argv);
  tableHeader("E2: heap space, tagged vs tag-free",
              "same programs, same allocations; tagged adds one header "
              "word per object and boxes floats",
              {"workload", "model", "bytes alloc'd", "objects", "bytes/obj",
               "final residency"});
  report("listChurn", wl::listChurn(128, 16), 1 << 16);
  report("binaryTrees", wl::binaryTrees(8, 4), 1 << 18);
  report("floatKernel", wl::floatKernel(64, 32), 1 << 16);
  report("variantRecords", wl::variantRecords(300), 1 << 16);
  std::printf("\nExpected shape: tag-free allocates strictly fewer bytes "
              "for the same object count;\nthe gap is one word per object "
              "plus a whole box per float (floatKernel).\n"
              "With identical semispace sizes, smaller objects also mean "
              "fewer collections (timings below).\n\n");
  benchmark::Initialize(&argc, argv);
  Sink.runBenchmarksAndWrite();
  return 0;
}
