file(REMOVE_RECURSE
  "libtfgc_runtime.a"
)
