# Empty compiler generated dependencies file for compiled_vs_interpreted.
# This may be replaced when dependencies are built.
