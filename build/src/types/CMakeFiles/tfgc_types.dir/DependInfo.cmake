
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/types/Infer.cpp" "src/types/CMakeFiles/tfgc_types.dir/Infer.cpp.o" "gcc" "src/types/CMakeFiles/tfgc_types.dir/Infer.cpp.o.d"
  "/root/repo/src/types/Type.cpp" "src/types/CMakeFiles/tfgc_types.dir/Type.cpp.o" "gcc" "src/types/CMakeFiles/tfgc_types.dir/Type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/tfgc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tfgc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
