//===- bench/BenchUtil.h - Shared bench harness helpers ---------*- C++ -*-===//
///
/// \file
/// Helpers shared by the experiment binaries (E1..E9). Each binary prints
/// a paper-style table derived from deterministic runs, then (where the
/// experiment is about wall time) runs google-benchmark timings.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_BENCH_BENCHUTIL_H
#define TFGC_BENCH_BENCHUTIL_H

#include "driver/Compiler.h"
#include "workloads/Programs.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace tfgc::bench {

/// Runs a program once and returns its stats (aborts on failure — benches
/// must not silently measure broken runs).
inline Stats runOnce(const std::string &Source, GcStrategy S,
                     GcAlgorithm A = GcAlgorithm::Copying,
                     size_t HeapBytes = 1 << 16, bool Stress = false,
                     CompileOptions Options = {}) {
  ExecResult R = execProgram(Source, S, A, HeapBytes, Stress, Options);
  if (!R.CompileOk || !R.Run.Ok) {
    std::fprintf(stderr, "bench workload failed under %s: %s%s\n",
                 gcStrategyName(S), R.CompileError.c_str(),
                 R.Run.Error.c_str());
    std::abort();
  }
  return std::move(R.St);
}

/// Compiles once; reused across benchmark iterations.
inline std::unique_ptr<CompiledProgram>
compileOrDie(const std::string &Source, CompileOptions Options = {}) {
  Compiler C(Options);
  std::string Err;
  auto P = C.compile(Source, &Err);
  if (!P) {
    std::fprintf(stderr, "bench workload failed to compile: %s\n",
                 Err.c_str());
    std::abort();
  }
  return P;
}

/// One timed end-to-end run on a precompiled program.
inline void timedRun(benchmark::State &State, CompiledProgram &P,
                     GcStrategy S, GcAlgorithm A, size_t HeapBytes,
                     bool ZeroFramesOverride = false, bool Stress = false) {
  for (auto _ : State) {
    Stats St;
    std::string Err;
    auto Col = P.makeCollector(S, A, HeapBytes, St, &Err);
    if (!Col) {
      State.SkipWithError(Err.c_str());
      return;
    }
    VmOptions VO = defaultVmOptions(S, Stress);
    VO.ZeroFrames = VO.ZeroFrames || ZeroFramesOverride;
    Vm M(P.Prog, P.Image, *P.Types, *Col, VO);
    RunResult R = M.run();
    if (!R.Ok) {
      State.SkipWithError(R.Error.c_str());
      return;
    }
    benchmark::DoNotOptimize(R.Value.data());
    State.counters["collections"] = (double)St.get("gc.collections");
  }
}

// -- Table printing -----------------------------------------------------

inline void tableHeader(const char *Title, const char *Legend,
                        const std::vector<std::string> &Cols) {
  std::printf("\n=== %s ===\n%s\n", Title, Legend);
  for (const std::string &C : Cols)
    std::printf("%-22s", C.c_str());
  std::printf("\n");
  for (size_t I = 0; I < Cols.size(); ++I)
    std::printf("%-22s", "--------------------");
  std::printf("\n");
}

inline void tableCell(const std::string &V) {
  std::printf("%-22s", V.c_str());
}
inline void tableCell(uint64_t V) { std::printf("%-22llu", (unsigned long long)V); }
inline void tableCell(double V) { std::printf("%-22.3f", V); }
inline void tableEnd() { std::printf("\n"); }

inline std::string human(uint64_t Bytes) {
  char Buf[32];
  if (Bytes >= 1024 * 1024)
    std::snprintf(Buf, sizeof(Buf), "%.1fMiB", (double)Bytes / (1 << 20));
  else if (Bytes >= 1024)
    std::snprintf(Buf, sizeof(Buf), "%.1fKiB", (double)Bytes / 1024);
  else
    std::snprintf(Buf, sizeof(Buf), "%lluB", (unsigned long long)Bytes);
  return Buf;
}

} // namespace tfgc::bench

#endif // TFGC_BENCH_BENCHUTIL_H
