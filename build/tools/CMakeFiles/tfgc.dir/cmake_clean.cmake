file(REMOVE_RECURSE
  "CMakeFiles/tfgc.dir/tfgc.cpp.o"
  "CMakeFiles/tfgc.dir/tfgc.cpp.o.d"
  "tfgc"
  "tfgc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfgc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
