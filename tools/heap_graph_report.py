#!/usr/bin/env python3
"""Decodes a tfgc --heap-dump typed heap-graph stream.

The file is a sequence of framed chunks, one per captured full/major
collection. Frame: magic "TFGH", u8 version (1), u8 flags (bit0 = tagged
value model), u16 reserved, u32 little-endian body length, body. The
body is LEB128-varint encoded (zigzag for signed deltas; strings are
length-prefixed):

    seq, kind(u8), covered_bytes
    site table: count; per site func str, line, col, type str
    function names: count; strs (indexed by root records)
    nodes: count; per node addr-delta, kind(u8), site, words
           (address-sorted; site == site-count means unknown)
    edges: count; per edge src-delta, field, dst (node indices, sorted)
    roots: count; per root func, slot, node index
    retained rows: count; per row site, live_objects, live_words,
                   retained_bytes, zigzag delta_bytes vs previous capture
    lifetime rows: count; per row site, survived[1,2,4,8 collections],
                   deaths, death_age_histogram[8], promoted_objects,
                   promoted_words, alloc_count (cumulative)
    census footer: num_kinds; per kind name str, objects, words; then
                   total_objects, total_words (the profiler's own
                   tallies — independent of the node records)

Modes:
    heap_graph_report.py FILE             per-chunk summary + top sites
    heap_graph_report.py --check FILE     invariant check, exit 1 on
                                          violation: edge/root closure,
                                          node-derived per-kind sums ==
                                          census footer, node-derived
                                          per-site live tallies ==
                                          retained rows, retained bytes
                                          bounded by total live bytes
    heap_graph_report.py --diff FILE      leak attribution: first vs
                                          last chunk, ranked by retained
                                          growth (also --diff A B for
                                          two files); --diff
                                          --expect-top FUNC exits 1
                                          unless suspect #1 is in FUNC
    heap_graph_report.py --dot OUT FILE   Graphviz subgraph of the top
                                          leak suspect's retaining path
                                          (root-to-suspect chain + the
                                          suspect's immediate children)
"""

import sys

WORD = 8


class Cursor:
    def __init__(self, buf):
        self.buf = buf
        self.off = 0

    def u8(self):
        v = self.buf[self.off]
        self.off += 1
        return v

    def varint(self):
        shift = 0
        out = 0
        while True:
            b = self.buf[self.off]
            self.off += 1
            out |= (b & 0x7F) << shift
            if not b & 0x80:
                return out
            shift += 7

    def zigzag(self):
        v = self.varint()
        return (v >> 1) ^ -(v & 1)

    def str_(self):
        n = self.varint()
        s = self.buf[self.off:self.off + n].decode("utf-8", "replace")
        self.off += n
        return s


def decode_chunk(body, tagged):
    c = Cursor(body)
    chunk = {"tagged": tagged}
    chunk["seq"] = c.varint()
    chunk["kind"] = c.u8()
    chunk["covered_bytes"] = c.varint()

    nsites = c.varint()
    chunk["sites"] = [
        {"func": c.str_(), "line": c.varint(), "col": c.varint(),
         "type": c.str_()}
        for _ in range(nsites)]
    chunk["funcs"] = [c.str_() for _ in range(c.varint())]

    nodes = []
    addr = 0
    for _ in range(c.varint()):
        addr += c.varint()
        kind = c.u8()
        site = c.varint()
        words = c.varint()
        nodes.append((addr, kind, site, words))
    chunk["nodes"] = nodes

    edges = []
    src = 0
    for _ in range(c.varint()):
        src += c.varint()
        field = c.varint()
        dst = c.varint()
        edges.append((src, field, dst))
    chunk["edges"] = edges

    chunk["roots"] = [
        (c.varint(), c.varint(), c.varint()) for _ in range(c.varint())]

    chunk["retained"] = [
        {"site": c.varint(), "live_objects": c.varint(),
         "live_words": c.varint(), "retained_bytes": c.varint(),
         "delta_bytes": c.zigzag()}
        for _ in range(c.varint())]

    life = []
    for _ in range(c.varint()):
        row = {"site": c.varint()}
        row["survived"] = [c.varint() for _ in range(4)]
        row["deaths"] = c.varint()
        row["death_hist"] = [c.varint() for _ in range(8)]
        row["promoted_objects"] = c.varint()
        row["promoted_words"] = c.varint()
        row["alloc_count"] = c.varint()
        life.append(row)
    chunk["lifetime"] = life

    census = []
    for _ in range(c.varint()):
        census.append({"kind": c.str_(), "objects": c.varint(),
                       "words": c.varint()})
    chunk["census"] = census
    chunk["census_total_objects"] = c.varint()
    chunk["census_total_words"] = c.varint()
    assert c.off == len(body), (
        f"chunk {chunk['seq']}: {len(body) - c.off} trailing bytes")
    return chunk


def read_chunks(path):
    data = sys.stdin.buffer.read() if path == "-" else open(path, "rb").read()
    chunks = []
    off = 0
    while off < len(data):
        assert data[off:off + 4] == b"TFGH", (
            f"{path}:{off}: bad frame magic {data[off:off + 4]!r}")
        version = data[off + 4]
        assert version == 1, f"{path}:{off}: unknown version {version}"
        tagged = bool(data[off + 5] & 1)
        n = int.from_bytes(data[off + 8:off + 12], "little")
        body = data[off + 12:off + 12 + n]
        assert len(body) == n, f"{path}:{off}: truncated chunk"
        chunks.append(decode_chunk(body, tagged))
        off += 12 + n
    assert chunks, f"{path}: no chunks"
    return chunks


def site_name(chunk, site):
    sites = chunk["sites"]
    if site >= len(sites):
        return f"site {site} (unknown)"
    s = sites[site]
    return f"{s['func']}:{s['line']}:{s['col']} ({s['type']})"


# GcEventKind in support/Telemetry.h.
KIND_NAMES = {0: "full", 1: "minor", 2: "major"}


def check(chunks, where):
    bad = []
    for chunk in chunks:
        seq = chunk["seq"]
        nodes, edges = chunk["nodes"], chunk["edges"]
        n = len(nodes)

        for i in range(1, n):
            if nodes[i][0] <= nodes[i - 1][0]:
                bad.append(f"chunk {seq}: nodes not strictly "
                           f"address-sorted at index {i}")
                break
        for src, field, dst in edges:
            if src >= n or dst >= n:
                bad.append(f"chunk {seq}: edge ({src},{field},{dst}) "
                           f"escapes the {n}-node set")
                break
        for func, slot, node in chunk["roots"]:
            if node >= n:
                bad.append(f"chunk {seq}: root ({func},{slot}) points at "
                           f"node {node} of {n}")
                break

        # Node-derived census vs the profiler's footer tallies.
        by_kind = {}
        for _, kind, _, words in nodes:
            objs, w = by_kind.get(kind, (0, 0))
            by_kind[kind] = (objs + 1, w + words)
        for i, row in enumerate(chunk["census"]):
            got = by_kind.get(i, (0, 0))
            want = (row["objects"], row["words"])
            if got != want:
                bad.append(f"chunk {seq}: kind {row['kind']}: graph has "
                           f"{got[0]} objects/{got[1]} words, census says "
                           f"{want[0]}/{want[1]}")
        total = (sum(o for o, _ in by_kind.values()),
                 sum(w for _, w in by_kind.values()))
        want_total = (chunk["census_total_objects"],
                      chunk["census_total_words"])
        if total != want_total:
            bad.append(f"chunk {seq}: graph totals {total} != census "
                       f"footer totals {want_total}")

        # Node-derived per-site tallies vs the retained rows.
        unknown = len(chunk["sites"])
        by_site = {}
        for _, _, site, words in nodes:
            site = min(site, unknown)
            objs, w = by_site.get(site, (0, 0))
            by_site[site] = (objs + 1, w + words)
        rows = {r["site"]: r for r in chunk["retained"]}
        for site, (objs, words) in by_site.items():
            row = rows.get(site)
            if row is None:
                bad.append(f"chunk {seq}: site {site} has live objects "
                           "but no retained row")
                continue
            if (row["live_objects"], row["live_words"]) != (objs, words):
                bad.append(
                    f"chunk {seq}: site {site}: rows say "
                    f"{row['live_objects']} objects/{row['live_words']} "
                    f"words, nodes sum to {objs}/{words}")
        live_bytes = sum(w for _, _, _, w in nodes) * WORD
        for row in chunk["retained"]:
            if row["retained_bytes"] > live_bytes:
                bad.append(f"chunk {seq}: site {row['site']} retains "
                           f"{row['retained_bytes']} bytes > "
                           f"{live_bytes} live bytes")

        # Lifetime rows: survival curves are monotone non-increasing by
        # construction (an object surviving 8 collections survived 4).
        for row in chunk["lifetime"]:
            s = row["survived"]
            if any(s[i] < s[i + 1] for i in range(3)):
                bad.append(f"chunk {seq}: site {row['site']}: survival "
                           f"curve {s} is not monotone non-increasing")
    if bad:
        print(f"{where}: {len(bad)} violation(s):", file=sys.stderr)
        for b in bad:
            print(f"  {b}", file=sys.stderr)
        return 1
    nodes = sum(len(c["nodes"]) for c in chunks)
    edges = sum(len(c["edges"]) for c in chunks)
    print(f"{where}: {len(chunks)} chunk(s), {nodes} nodes, "
          f"{edges} edges: ok")
    return 0


def summary(chunks, where):
    print(f"{where}: {len(chunks)} chunk(s)")
    for chunk in chunks:
        kind = KIND_NAMES.get(chunk["kind"], str(chunk["kind"]))
        live = sum(w for _, _, _, w in chunk["nodes"]) * WORD
        print(f"\nchunk seq={chunk['seq']} ({kind} collection): "
              f"{len(chunk['nodes'])} nodes, {len(chunk['edges'])} edges, "
              f"{len(chunk['roots'])} root refs, {live} live bytes")
        top = sorted(chunk["retained"],
                     key=lambda r: (-r["retained_bytes"], r["site"]))[:10]
        if top:
            print("  top sites by retained bytes:")
        for row in top:
            print(f"    {row['retained_bytes']:>10}  "
                  f"(live {row['live_objects']} obj / "
                  f"{row['live_words'] * WORD} B, "
                  f"delta {row['delta_bytes']:+})  "
                  f"{site_name(chunk, row['site'])}")
    return 0


def diff(old, new, where, expect_top=None):
    """Ranked retained-size growth between two captures. With
    expect_top, exit 1 unless suspect #1's function matches — the CI
    smoke asserts the planted leak wins the ranking."""
    old_rows = {r["site"]: r for r in old["retained"]}
    growth = []
    for row in new["retained"]:
        before = old_rows.get(row["site"], {"retained_bytes": 0,
                                            "live_objects": 0})
        # Equal retained growth is tie-broken by live-object growth: a
        # site accumulating objects is the leak, the single container
        # cell that happens to dominate them is not.
        growth.append((row["retained_bytes"] - before["retained_bytes"],
                       row["live_objects"] - before["live_objects"],
                       row["site"], row, before))
    growth.sort(key=lambda g: (-g[0], -g[1], g[2]))
    print(f"{where}: retained-size delta, capture seq {old['seq']} -> "
          f"{new['seq']}")
    print(f"{'delta_bytes':>12} {'retained':>12} {'live_obj':>9}  site")
    for delta, _, site, row, before in growth[:15]:
        print(f"{delta:>+12} {row['retained_bytes']:>12} "
              f"{row['live_objects']:>9}  {site_name(new, site)}")
    if growth and growth[0][0] > 0:
        _, _, site, row, _ = growth[0]
        life = {r["site"]: r for r in new["lifetime"]}.get(site)
        print(f"\nleak suspect #1: {site_name(new, site)}")
        print(f"  retained {row['retained_bytes']} bytes "
              f"(+{growth[0][0]} since seq {old['seq']}), "
              f"{row['live_objects']} live objects")
        if life:
            print(f"  allocated {life['alloc_count']}, died "
                  f"{life['deaths']}, survived 1/2/4/8 collections: "
                  f"{'/'.join(str(s) for s in life['survived'])}, "
                  f"promoted {life['promoted_objects']} "
                  f"({life['promoted_words'] * WORD} B)")
    if expect_top is not None:
        top = growth[0] if growth and growth[0][0] > 0 else None
        func = (new["sites"][top[2]]["func"]
                if top and top[2] < len(new["sites"]) else None)
        if func != expect_top:
            print(f"{where}: FAIL — expected leak suspect #1 in "
                  f"'{expect_top}', got "
                  f"{site_name(new, top[2]) if top else 'no growth'}",
                  file=sys.stderr)
            return 1
        print(f"{where}: suspect #1 in '{expect_top}' as expected")
    return 0


def dot(chunks, out_path, where):
    """Retaining path of the top retained-size site in the last chunk."""
    chunk = chunks[-1]
    rows = sorted(chunk["retained"],
                  key=lambda r: (-r["retained_bytes"], r["site"]))
    unknown = len(chunk["sites"])
    assert rows, f"{where}: no retained rows"
    suspect = rows[0]["site"]
    nodes = chunk["nodes"]

    # Reverse-BFS from the suspect's biggest node back to a root.
    preds = {}
    for src, field, dst in chunk["edges"]:
        preds.setdefault(dst, []).append((src, field))
    rooted = {node for _, _, node in chunk["roots"]}
    best = max((i for i, nd in enumerate(nodes)
                if min(nd[2], unknown) == suspect),
               key=lambda i: nodes[i][3], default=None)
    assert best is not None, f"{where}: suspect site has no nodes"
    path = []
    seen = {best}
    frontier = [(best, [])]
    while frontier:
        node, trail = frontier.pop(0)
        if node in rooted or node not in preds:
            # trail is the (pred, field) hops walked from best; reverse
            # it so the path reads root-first.
            path = list(reversed([best] + [n for n, _ in trail]))
            break
        for pred, field in preds[node]:
            if pred not in seen:
                seen.add(pred)
                frontier.append((pred, trail + [(pred, field)]))
    if not path:
        path = [best]

    with open(out_path, "w") as f:
        f.write("digraph retain {\n  rankdir=LR;\n")
        emitted = set()

        def emit(i, color=None):
            if i in emitted:
                return
            emitted.add(i)
            addr, kind, site, words = nodes[i]
            label = (f"n{i}\\n{site_name(chunk, min(site, unknown))}"
                     f"\\n{words * WORD} B")
            style = f', style=filled, fillcolor="{color}"' if color else ""
            f.write(f'  n{i} [label="{label}"{style}];\n')

        for i in path:
            emit(i, "lightcoral" if i == path[-1] else
                 ("lightblue" if i in rooted else None))
        for a, b in zip(path, path[1:]):
            f.write(f"  n{a} -> n{b};\n")
        kids = [(field, dst) for src, field, dst in chunk["edges"]
                if src == path[-1]][:8]
        for field, child in kids:
            emit(child)
            f.write(f'  n{path[-1]} -> n{child} [label="f{field}"];\n')
        f.write("}\n")
    print(f"{where}: wrote retaining path of "
          f"{site_name(chunk, suspect)} ({len(path)} hops, "
          f"{len(kids)} children) to {out_path}")
    return 0


def main():
    args = sys.argv[1:]
    mode = "summary"
    out = None
    expect_top = None
    if args and args[0] == "--check":
        mode = "check"
        args = args[1:]
    elif args and args[0] == "--diff":
        mode = "diff"
        args = args[1:]
        if len(args) >= 2 and args[0] == "--expect-top":
            expect_top = args[1]
            args = args[2:]
    elif args and args[0] == "--dot":
        assert len(args) >= 2, "--dot needs an output path"
        mode = "dot"
        out = args[1]
        args = args[2:]
    if not args or len(args) > 2 or (len(args) == 2 and mode != "diff"):
        print(__doc__.strip(), file=sys.stderr)
        return 2

    if mode == "diff" and len(args) == 2:
        a, b = read_chunks(args[0]), read_chunks(args[1])
        return diff(a[-1], b[-1], f"{args[0]} vs {args[1]}", expect_top)
    chunks = read_chunks(args[0])
    if mode == "check":
        return check(chunks, args[0])
    if mode == "diff":
        assert len(chunks) >= 2, (
            f"{args[0]}: --diff needs at least two chunks "
            f"(have {len(chunks)}; lower --heap-dump-every or give two "
            "files)")
        return diff(chunks[0], chunks[-1], args[0], expect_top)
    if mode == "dot":
        return dot(chunks, out, args[0])
    return summary(chunks, args[0])


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)
