//===- core/AppelCollector.h - Appel-style baseline -------------*- C++ -*-===//
///
/// \file
/// The paper's reconstruction of Appel '89 (section 1.1.1): one descriptor
/// per procedure covering every slot, frames walked newest to oldest, and
/// polymorphic frames resolved by recursively walking *down* the dynamic
/// chain until ground types are found — independently for every frame, so
/// deep polymorphic stacks pay a quadratic number of chain steps (the cost
/// the paper's single oldest-to-newest pass avoids; measured by E7).
///
/// Requires zero-initialized frames (every slot is traced whether or not
/// the program has initialized it yet) — E9 measures that mutator cost.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_CORE_APPELCOLLECTOR_H
#define TFGC_CORE_APPELCOLLECTOR_H

#include "core/Collector.h"
#include "core/Tracer.h"

namespace tfgc {

class AppelCollector : public Collector {
public:
  AppelCollector(GcAlgorithm Algo, size_t HeapBytes, Stats &St,
                 const IrProgram &Prog, const CodeImage &Img,
                 TypeContext &Types, AppelMetadata *AM,
                 bool GlogerDummies = false, size_t NurseryBytes = 0);

protected:
  void traceRoots(RootSet &Roots, Space &Sp) override;
  void traceRemset(Space &Sp) override;

private:
  const IrProgram &Prog;
  const CodeImage &Img;
  TypeContext &Types;
  AppelMetadata *AM;
  bool GlogerDummies;
  /// Lives as long as the collector so the cross-collection ground-type
  /// closure cache pays off; reset() after every traceRoots pass drops the
  /// per-collection nodes.
  TypeGcEngine Eng;

  /// Walks the dynamic chain downward from frame \p Idx until the type
  /// parameters of its function are ground (paper section 3's description
  /// of Appel's approach). Counters land in \p S (a worker's private
  /// domain on the parallel path).
  std::vector<const TypeGc *> resolveBinds(TaskStack &Stack, uint32_t Idx,
                                           TypeGcEngine &Eng,
                                           TagFreeTracer &Tr, Stats &S);

  /// Traces one task's stack newest-to-oldest. \p T is the telemetry to
  /// charge phase spans to; parallel GC workers pass nullptr along with
  /// their private engine/stats.
  void traceOneStack(TaskStack &Stack, TagFreeTracer &Tr, TypeGcEngine &E,
                     Stats &S, Telemetry *T);
};

} // namespace tfgc

#endif // TFGC_CORE_APPELCOLLECTOR_H
