//===- bench/bench_gcpoints.cpp - E6: GC-point analysis ------------------===//
///
/// Paper section 5.1: the fixpoint S of functions that may lead to a
/// collection. Sites outside S need no gc_word at all, and many sites in
/// S still share the single no_trace routine. This bench reports both
/// effects per workload, plus the fixpoint iteration count.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/GcPoints.h"

using namespace tfgc;
using namespace tfgc::bench;
namespace wl = tfgc::workloads;

namespace {

void report(const char *Name, const std::string &Src) {
  auto P = compileOrDie(Src);
  uint64_t NoTrace = P->Compiled.numNoTraceSites();
  uint64_t Total = P->Prog.Sites.size();
  uint64_t Omitted = P->GcPoints.SitesCannotTrigger;
  uint64_t MayCollect = 0;
  for (bool B : P->GcPoints.MayCollect)
    MayCollect += B;
  tableCell(Name);
  tableCell(Total);
  tableCell(Omitted);
  tableCell(100.0 * (double)Omitted / (double)Total);
  tableCell(NoTrace);
  tableCell((uint64_t)P->GcPoints.FixpointIterations);
  tableCell(MayCollect);
  tableCell((uint64_t)P->Prog.Functions.size());
  tableEnd();
}

/// Timing: the analysis itself is a compile-time cost; measure it.
void BM_GcPointAnalysis(benchmark::State &State) {
  auto P = compileOrDie(wl::nqueens(6));
  GcPointOptions O;
  O.FloatsAllocate = true;
  for (auto _ : State) {
    GcPointResult R = computeGcPoints(P->Prog, O);
    benchmark::DoNotOptimize(R.SitesCannotTrigger);
  }
}
BENCHMARK(BM_GcPointAnalysis);

} // namespace

int main(int argc, char **argv) {
  JsonSink Sink("gcpoints", argc, argv);
  tableHeader("E6: GC-point analysis (section 5.1)",
              "omitted = sites with no gc_word; no_trace = sites whose "
              "routine is empty (paper 2.4)",
              {"workload", "sites", "omitted", "omitted %", "no_trace",
               "fixpoint iters", "fns in S", "fns total"});
  report("appendPaper", wl::appendPaper(10));
  report("arithKernel", wl::arithKernel(10));
  report("nqueens", wl::nqueens(4));
  report("listChurn", wl::listChurn(10, 2));
  report("binaryTrees", wl::binaryTrees(4, 2));
  report("higherOrder", wl::higherOrder(10));
  report("taskSpinner", wl::taskWorkerAndSpinner());
  std::printf("\nExpected shape: call-heavy, allocation-light code "
              "(nqueens' safe/abs, the spinner)\nhas a high omitted "
              "fraction; allocation-dense code keeps most gc_words but "
              "still\nshares no_trace heavily (the paper's append "
              "observation).\n\n");
  benchmark::Initialize(&argc, argv);
  Sink.runBenchmarksAndWrite();
  return 0;
}
