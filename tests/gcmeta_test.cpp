//===- tests/gcmeta_test.cpp - Descriptors, routines, code image ---------===//

#include "TestUtil.h"

using namespace tfgc;
using namespace tfgc::test;

namespace {

TEST(Descriptors, DedupIsByGcShape) {
  TypeContext Ctx;
  DescriptorTable T(Ctx);
  Type *IntList = Ctx.makeData(Ctx.listInfo(), {Ctx.intTy()});
  Type *IntList2 = Ctx.makeData(Ctx.listInfo(), {Ctx.intTy()});
  EXPECT_EQ(T.getOrCreate(IntList), T.getOrCreate(IntList2));
  // int list and bool list share a descriptor: the collector treats all
  // single-word non-pointers alike.
  EXPECT_EQ(T.getOrCreate(IntList),
            T.getOrCreate(Ctx.makeData(Ctx.listInfo(), {Ctx.boolTy()})));
  // A list of lists has a different shape.
  EXPECT_NE(T.getOrCreate(IntList),
            T.getOrCreate(Ctx.makeData(Ctx.listInfo(), {IntList})));
}

TEST(Descriptors, LeavesCollapse) {
  TypeContext Ctx;
  DescriptorTable T(Ctx);
  EXPECT_EQ(T.getOrCreate(Ctx.intTy()), T.getOrCreate(Ctx.boolTy()));
  EXPECT_EQ(T.getOrCreate(Ctx.unitTy()), T.leafId());
  EXPECT_EQ(T.getOrCreate(Ctx.floatTy()), T.leafId());
}

TEST(Descriptors, AllNullaryDatatypeIsLeaf) {
  TypeContext Ctx;
  DatatypeInfo *Color = Ctx.createDatatype("color", 0);
  Ctx.addCtor(Color, "Red", {});
  Ctx.addCtor(Color, "Blue", {});
  DescriptorTable T(Ctx);
  EXPECT_EQ(T.getOrCreate(Ctx.makeData(Color, {})), T.leafId());
}

TEST(Descriptors, CtorShapesUseParams) {
  TypeContext Ctx;
  DescriptorTable T(Ctx);
  // list shape: Nil has no fields; Cons has [Param0, Data(list, Param0)].
  const auto &NilShape = T.ctorShape(Ctx.listInfo()->Id, 0);
  EXPECT_TRUE(NilShape.empty());
  const auto &ConsShape = T.ctorShape(Ctx.listInfo()->Id, 1);
  ASSERT_EQ(ConsShape.size(), 2u);
  EXPECT_EQ(T.desc(ConsShape[0]).Kind, DescKind::Param);
  EXPECT_EQ(T.desc(ConsShape[1]).Kind, DescKind::Data);
}

TEST(Descriptors, SizeBytesGrowsWithTypes) {
  TypeContext Ctx;
  DescriptorTable T(Ctx);
  size_t S0 = T.sizeBytes();
  T.getOrCreate(Ctx.makeData(Ctx.listInfo(), {Ctx.intTy()}));
  EXPECT_GT(T.sizeBytes(), S0);
}

TEST(CompiledMeta, NoTraceIsShared) {
  // Many sites with nothing to trace share one frame routine (the paper's
  // single no_trace).
  auto C = compile("fun build (n : int) : int list = if n = 0 then [] "
                   "else n :: build (n - 1);\n"
                   "fun a (n : int) : int list = build n;\n"
                   "fun b (n : int) : int list = build (n + 1);\n"
                   "(a 1, b 1)");
  ASSERT_TRUE(C.P) << C.Error;
  FuncId A = findFunction(C.P->Prog, "a"), B = findFunction(C.P->Prog, "b");
  uint32_t FrameA = ~0u, FrameB = ~0u;
  for (const CallSiteInfo &S : C.P->Prog.Sites) {
    if (S.Kind != SiteKind::Direct)
      continue;
    if (S.Caller == A)
      FrameA = C.P->Compiled.siteFrameId(S.Id);
    if (S.Caller == B)
      FrameB = C.P->Compiled.siteFrameId(S.Id);
  }
  ASSERT_NE(FrameA, ~0u);
  ASSERT_NE(FrameB, ~0u);
  EXPECT_EQ(FrameA, FrameB);
  EXPECT_TRUE(C.P->Compiled.siteRoutine(0).isNoTrace() ||
              C.P->Compiled.numNoTraceSites() > 0);
}

TEST(CompiledMeta, LeafFieldsGenerateNoActions) {
  // The tuple must be live across an allocating call so its routine is
  // actually generated.
  auto C = compile(
      "fun build (n : int) : int list = if n = 0 then [] "
      "else n :: build (n - 1);\n"
      "fun sum (xs : int list) : int = case xs of Nil => 0 "
      "| Cons(x, r) => x + sum r;\n"
      "fun f (t : int * int * int) : int =\n"
      "  sum (build 3) + (case t of (a, _, _) => a);\n"
      "f (1, 2, 3)");
  ASSERT_TRUE(C.P) << C.Error;
  // Find the Record routine for (int * int * int): no field actions.
  bool Found = false;
  for (size_t I = 0; I < C.P->Compiled.numTypeRoutines(); ++I) {
    const TypeRoutine &R = C.P->Compiled.routine((RoutineId)I);
    if (R.F == TypeRoutine::Form::Record && R.PayloadWords == 3) {
      EXPECT_TRUE(R.Fields.empty());
      Found = true;
    }
  }
  EXPECT_TRUE(Found);
}

TEST(CompiledMeta, RecursiveTypeRoutineTiesKnot) {
  auto C = compile("[1, 2]");
  ASSERT_TRUE(C.P) << C.Error;
  // The int list routine's Cons tail action points at itself.
  bool Found = false;
  for (size_t I = 0; I < C.P->Compiled.numTypeRoutines(); ++I) {
    const TypeRoutine &R = C.P->Compiled.routine((RoutineId)I);
    if (R.F != TypeRoutine::Form::DataSwitch)
      continue;
    for (const auto &Ctor : R.CtorFields)
      for (const FieldAction &A : Ctor)
        if (A.Routine == (RoutineId)I)
          Found = true;
  }
  EXPECT_TRUE(Found);
}

TEST(CompiledMeta, VariantRecordSwitchHasPerCtorSizes) {
  auto C = compile(
      "datatype shape = Point | Circle of float | Rect of float * float;\n"
      "fun build (n : int) : int list = if n = 0 then [] "
      "else n :: build (n - 1);\n"
      "fun len (xs : int list) : int = case xs of Nil => 0 "
      "| Cons(_, r) => 1 + len r;\n"
      "fun f (s : shape) : int =\n"
      "  len (build 2) + (case s of Point => 0 | Circle _ => 1 "
      "| Rect(_, _) => 2);\n"
      "f (Rect(1.0, 2.0))");
  ASSERT_TRUE(C.P) << C.Error;
  bool Found = false;
  for (size_t I = 0; I < C.P->Compiled.numTypeRoutines(); ++I) {
    const TypeRoutine &R = C.P->Compiled.routine((RoutineId)I);
    if (R.F == TypeRoutine::Form::DataSwitch && R.CtorSizes.size() == 3) {
      EXPECT_EQ(R.CtorSizes[0], 1u); // Point: just the discriminant.
      EXPECT_EQ(R.CtorSizes[1], 2u); // Circle of float.
      EXPECT_EQ(R.CtorSizes[2], 3u); // Rect of float * float.
      Found = true;
    }
  }
  EXPECT_TRUE(Found);
}

TEST(CompiledMeta, InterpretedIsSmallerThanCompiled) {
  // The trade-off the paper poses in section 2.4: descriptors dedup
  // program-wide, compiled routines multiply per call site.
  auto C = compile(
      "datatype shape = Point | Circle of float | Rect of float * float;\n"
      "fun area (s : shape) : float = case s of Point => 0.0 "
      "| Circle r => r *. r | Rect(w, h) => w *. h;\n"
      "fun consume (ss : shape list) (acc : float) : float = case ss of "
      "Nil => acc | Cons(s, r) => consume r (acc +. area s);\n"
      "fun seed (i : int) : shape list = if i = 0 then [] "
      "else Circle (real i) :: seed (i - 1);\n"
      "consume (seed 5) 0.0");
  ASSERT_TRUE(C.P) << C.Error;
  EXPECT_LT(C.P->Interp->sizeBytes(), C.P->Compiled.sizeBytes());
}

TEST(CodeImage, Figure1Layout) {
  auto C = compile("fun build (n : int) : int list = if n = 0 then [] "
                   "else n :: build (n - 1);\nbuild 3");
  ASSERT_TRUE(C.P) << C.Error;
  const CodeImage &Img = C.P->Image;
  // The word before every function entry holds its closure metadata.
  for (const IrFunction &F : C.P->Prog.Functions) {
    EXPECT_EQ(Img.functionAt(F.EntryAddr), F.Id);
    EXPECT_EQ(Img.closureMetaAt(F.EntryAddr), (Word)F.Id);
  }
  // Call sites: gc_word two words after the call, resume at three
  // (the paper's n+8 / n+12 bytes).
  EXPECT_EQ(CodeImage::GcWordOffset, 2u);
  EXPECT_EQ(CodeImage::ResumeOffset, 3u);
  for (const CallSiteInfo &S : C.P->Prog.Sites) {
    if (S.CanTriggerGc)
      EXPECT_EQ(Img.gcWordAt(S.CodeAddr), (Word)S.Id);
    else
      EXPECT_EQ(Img.gcWordAt(S.CodeAddr), CodeImage::OmittedGcWord);
  }
}

TEST(CodeImage, GcWordAccounting) {
  auto C = compile("fun spin (n : int) : int = if n = 0 then 0 "
                   "else spin (n - 1);\n"
                   "fun mk (n : int) : int list = [n];\n"
                   "(spin 2, mk 2)");
  ASSERT_TRUE(C.P) << C.Error;
  size_t Total = C.P->Prog.Sites.size();
  EXPECT_EQ(C.P->Image.omittedGcWords() +
                C.P->Image.gcWordBytes() / sizeof(Word),
            Total);
  EXPECT_GT(C.P->Image.omittedGcWords(), 0u);
}

TEST(AppelMeta, CoversEverySlot) {
  auto C = compile("fun f (xs : int list) (n : int) : int =\n"
                   "  let val a = [n] val b = (n, xs) in n end;\nf [1] 2");
  ASSERT_TRUE(C.P) << C.Error;
  FuncId F = findFunction(C.P->Prog, "f");
  const FrameDescriptor &FD = C.P->Appel->procDescriptor(F);
  // Every pointer-holding slot appears, live or dead.
  size_t PointerSlots = 0;
  for (Type *T : C.P->Prog.fn(F).SlotTypes)
    if (!isGroundType(T) || !isGcLeafType(T))
      ++PointerSlots;
  EXPECT_EQ(FD.Slots.size() + FD.Open.size(), PointerSlots);
}

TEST(MetadataSizes, TaggedIsZeroMetadata) {
  // The tagged strategy needs no per-program tables; its cost is per
  // object (headers) and per word (tag bits) instead — E2/E4 report that.
  auto C = compile("[1, 2, 3]");
  ASSERT_TRUE(C.P) << C.Error;
  EXPECT_GT(C.P->Compiled.sizeBytes(), 0u);
  EXPECT_GT(C.P->Interp->sizeBytes(), 0u);
  EXPECT_GT(C.P->Appel->sizeBytes(), 0u);
}

} // namespace
