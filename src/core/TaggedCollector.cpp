//===- core/TaggedCollector.cpp -------------------------------------------===//

#include "core/TaggedCollector.h"

#include <vector>

using namespace tfgc;

Word TaggedCollector::traceWord(Space &Sp, std::vector<Word> &ScanList,
                                Word W) {
  // Non-pointers pass through unchanged: small ints (low bit 1), unit/
  // bool immediates, and self-tagged floats (low bits 0b010 after the
  // rotate — runtime/Value.h). Boxed floats still arrive as Raw-kind
  // heap objects and are visited like any other pointer.
  if (!isTaggedPointer(W))
    return W;
  Word NewRef;
  if (Sp.alreadyVisited(W, NewRef))
    return NewRef;
  const Word *Old = reinterpret_cast<const Word *>(W);
  Word Header = Old[-1];
  NewRef = Sp.visitNew(W, headerSize(Header));
  St.add(StatId::GcObjectsVisited);
  St.add(StatId::GcWordsVisited, headerSize(Header) + 1);
  CensusKind K = headerKind(Header) == ObjKind::Scan ? CensusKind::TaggedScan
                                                     : CensusKind::Raw;
  Tel.census(K, headerSize(Header) + 1);
  if (Prof) [[unlikely]]
    Prof->recordVisit(W, NewRef, K, headerSize(Header) + 1);
  if (headerKind(Header) == ObjKind::Scan)
    ScanList.push_back(NewRef);
  return NewRef;
}

void TaggedCollector::drainScanList(Space &Sp, std::vector<Word> &ScanList) {
  while (!ScanList.empty()) {
    Word Ref = ScanList.back();
    ScanList.pop_back();
    Word *Pl = Sp.payload(Ref);
    uint32_t Size = headerSize(Pl[-1]);
    for (uint32_t I = 0; I < Size; ++I)
      Pl[I] = traceWord(Sp, ScanList, Pl[I]);
  }
}

void TaggedCollector::traceRoots(RootSet &Roots, Space &Sp) {
  std::vector<Word> ScanList;

  for (TaskStack *Stack : Roots.Stacks) {
    for (FrameInfo &Fr : Stack->Frames) {
      St.add(StatId::GcFramesTraced);
      Word *Slots = Stack->frameSlots(Fr);
      // No metadata: every slot of every frame is scanned.
      for (uint32_t I = 0; I < Fr.NumSlots; ++I) {
        St.add(StatId::GcSlotsTraced);
        Slots[I] = traceWord(Sp, ScanList, Slots[I]);
      }
    }
  }

  drainScanList(Sp, ScanList);
}

void TaggedCollector::traceRemset(Space &Sp) {
  // Remembered tenured slots are extra roots for a minor collection; the
  // header model needs no types, so each slot is retraced by its tag bit.
  std::vector<Word> ScanList;
  for (const RemsetEntry &E : remset()) {
    St.add(StatId::GcSlotsTraced);
    *E.Slot = traceWord(Sp, ScanList, *E.Slot);
  }
  drainScanList(Sp, ScanList);
}
