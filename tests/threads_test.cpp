//===- tests/threads_test.cpp - OS-thread tasking + safepoints -----------===//
///
/// Exercises the sched/ subsystem end to end: the Chase-Lev deque and
/// TLAB primitives in isolation, then the ThreadedRuntime against the
/// cooperative scheduler (the logical-semantics reference) across every
/// strategy x algorithm, and finally a full-rate handshake stress with a
/// live /metrics scraper hammering the introspection server while four
/// mutator threads allocate as fast as they can.

#include "TestUtil.h"
#include "sched/ThreadedTasking.h"
#include "sched/WorkSteal.h"
#include "support/Epoch.h"
#include "support/Introspect.h"
#include "workloads/Programs.h"

#include <arpa/inet.h>
#include <atomic>
#include <netinet/in.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace tfgc;
using namespace tfgc::test;
namespace wl = tfgc::workloads;

namespace {

//===----------------------------------------------------------------------===//
// WorkStealDeque
//===----------------------------------------------------------------------===//

TEST(WorkStealDeque, OwnerPushPopIsLifo) {
  WorkStealDeque<uint32_t> D;
  for (uint32_t I = 0; I < 10; ++I)
    D.push(I);
  uint32_t V;
  for (uint32_t I = 10; I-- > 0;) {
    ASSERT_TRUE(D.pop(V));
    EXPECT_EQ(V, I);
  }
  EXPECT_FALSE(D.pop(V));
  EXPECT_TRUE(D.emptyApprox());
}

TEST(WorkStealDeque, GrowthPreservesElements) {
  // Push past the initial ring capacity so grow() copies live elements
  // into a doubled ring mid-stream.
  WorkStealDeque<uint32_t> D(8);
  const uint32_t N = 1000;
  for (uint32_t I = 0; I < N; ++I)
    D.push(I);
  std::vector<bool> Seen(N, false);
  uint32_t V;
  while (D.pop(V)) {
    ASSERT_LT(V, N);
    EXPECT_FALSE(Seen[V]) << "duplicate " << V;
    Seen[V] = true;
  }
  for (uint32_t I = 0; I < N; ++I)
    EXPECT_TRUE(Seen[I]) << "lost " << I;
}

TEST(WorkStealDeque, ConcurrentStealsLoseNothingDuplicateNothing) {
  // One owner interleaves pushes with pops while three thieves steal from
  // the top. Every element must be consumed by exactly one thread.
  constexpr uint32_t N = 50000;
  constexpr int Thieves = 3;
  WorkStealDeque<uint32_t> D(16);
  std::vector<std::atomic<uint32_t>> Claims(N);
  for (auto &C : Claims)
    C.store(0, std::memory_order_relaxed);
  std::atomic<bool> OwnerDone{false};

  auto Claim = [&](uint32_t V) {
    ASSERT_LT(V, N);
    Claims[V].fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> Ts;
  for (int T = 0; T < Thieves; ++T)
    Ts.emplace_back([&] {
      uint32_t V;
      while (!OwnerDone.load(std::memory_order_acquire) || !D.emptyApprox())
        if (D.steal(V))
          Claim(V);
    });

  // Owner: push in bursts, pop some of its own so the last-element CAS
  // race (pop vs steal at Tp == B) gets exercised constantly.
  uint32_t V;
  for (uint32_t I = 0; I < N; ++I) {
    D.push(I);
    if ((I & 7) == 0 && D.pop(V))
      Claim(V);
  }
  while (D.pop(V))
    Claim(V);
  OwnerDone.store(true, std::memory_order_release);
  for (auto &T : Ts)
    T.join();

  for (uint32_t I = 0; I < N; ++I)
    EXPECT_EQ(Claims[I].load(), 1u) << "element " << I;
}

//===----------------------------------------------------------------------===//
// Tlab
//===----------------------------------------------------------------------===//

TEST(Tlab, BumpAccountsAndRefusesOverflow) {
  Word Backing[64] = {};
  Tlab T;
  T.Top = Backing;
  T.End = Backing + 64;
  EXPECT_EQ(T.bump(10), Backing);
  EXPECT_EQ(T.bump(54), Backing + 10);
  EXPECT_EQ(T.AllocatedWords, 64u);
  // Window exhausted: the fast path refuses, leaving state untouched for
  // the refill slow path.
  EXPECT_EQ(T.bump(1), nullptr);
  EXPECT_EQ(T.AllocatedWords, 64u);
  T.reset();
  EXPECT_EQ(T.Top, nullptr);
  EXPECT_EQ(T.End, nullptr);
  EXPECT_EQ(T.bump(1), nullptr);
}

//===----------------------------------------------------------------------===//
// ThreadedRuntime vs the cooperative reference
//===----------------------------------------------------------------------===//

struct TWorld {
  std::unique_ptr<CompiledProgram> P;
  Stats St;
  std::unique_ptr<Collector> Col;
  std::unique_ptr<ThreadedRuntime> Rt;
};

TWorld makeThreaded(const std::string &Source, GcStrategy S, GcAlgorithm A,
                    size_t HeapBytes, unsigned GcThreads, bool Verify) {
  TWorld W;
  CompileOptions O;
  O.TaskingSafe = true;
  Compiler C(O);
  std::string Err;
  W.P = C.compile(Source, &Err);
  EXPECT_TRUE(W.P != nullptr) << Err;
  W.Col = W.P->makeCollector(S, A, HeapBytes, W.St, &Err);
  EXPECT_TRUE(W.Col != nullptr) << Err;
  W.Col->setVerifyAfterGc(Verify);
  if (GcThreads >= 2)
    W.Col->setGcThreads(GcThreads);
  TaskingOptions TO;
  TO.Policy = SuspendChecks::AtEveryCall;
  TO.ZeroFrames = S == GcStrategy::Tagged || S == GcStrategy::AppelTagFree;
  W.Rt = std::make_unique<ThreadedRuntime>(W.P->Prog, W.P->Image, *W.P->Types,
                                           *W.Col, TO);
  return W;
}

TEST(Threads, ResultsMatchCooperativeAllStrategiesAllAlgorithms) {
  // Expected values from the cooperative scheduler on a roomy heap.
  std::vector<std::string> Expected;
  {
    CompileOptions O;
    O.TaskingSafe = true;
    Compiler C(O);
    std::string Err;
    auto P = C.compile(wl::taskWorker(), &Err);
    ASSERT_TRUE(P != nullptr) << Err;
    Stats St;
    auto Col = P->makeCollector(GcStrategy::CompiledTagFree,
                                GcAlgorithm::Copying, 1 << 20, St, &Err);
    ASSERT_TRUE(Col != nullptr) << Err;
    TaskingOptions TO;
    TO.Policy = SuspendChecks::AtEveryCall;
    TaskingRuntime Rt(P->Prog, P->Image, *P->Types, *Col, TO);
    FuncId Worker = findFunction(P->Prog, "worker");
    ASSERT_NE(Worker, InvalidFunc);
    for (int64_t Seed = 1; Seed <= 4; ++Seed)
      Rt.spawnInt(Worker, {Seed, 40});
    ASSERT_TRUE(Rt.runAll());
    for (const TaskResult &R : Rt.results())
      Expected.push_back(R.Value);
  }

  // Four real threads on a tight heap: every strategy x algorithm must
  // reproduce the same per-task values with census verification on, and
  // every armed GC request must account for exactly one handshake.
  for (GcStrategy S : AllStrategies) {
    for (GcAlgorithm A : AllAlgorithms) {
      TWorld W = makeThreaded(wl::taskWorker(), S, A, 1 << 13, 4, true);
      FuncId Worker = findFunction(W.P->Prog, "worker");
      ASSERT_NE(Worker, InvalidFunc);
      for (int64_t Seed = 1; Seed <= 4; ++Seed)
        W.Rt->spawnInt(Worker, {Seed, 40});
      ASSERT_TRUE(W.Rt->runAll())
          << gcStrategyName(S) << "/" << gcAlgorithmName(A);
      for (size_t I = 0; I < 4; ++I)
        EXPECT_EQ(W.Rt->results()[I].Value, Expected[I])
            << gcStrategyName(S) << "/" << gcAlgorithmName(A) << " task "
            << I;

      // No lost handshakes: armed request == world stop == epoch, and
      // the tight heap forced at least one.
      uint64_t Requests = W.St.get(StatId::TaskGcRequests);
      uint64_t Stops = W.St.get(StatId::TaskWorldStops);
      EXPECT_GT(Stops, 0u) << gcStrategyName(S) << "/" << gcAlgorithmName(A);
      EXPECT_EQ(Requests, Stops)
          << gcStrategyName(S) << "/" << gcAlgorithmName(A);
      EXPECT_EQ(W.Rt->gcEpochs(), Stops)
          << gcStrategyName(S) << "/" << gcAlgorithmName(A);
      EXPECT_EQ(W.St.get("sched.handshake_epochs"), Stops);

      // Census verification ran after every collection and found the
      // heap intact.
      EXPECT_GT(W.St.get(StatId::GcVerifyPasses), 0u);
      EXPECT_EQ(W.St.get(StatId::GcVerifyViolations), 0u)
          << gcStrategyName(S) << "/" << gcAlgorithmName(A);
    }
  }
}

TEST(Threads, PerTaskTlabAndStopDelayStats) {
  TWorld W = makeThreaded(wl::taskWorker(), GcStrategy::CompiledTagFree,
                          GcAlgorithm::Generational, 1 << 13, 4, false);
  FuncId Worker = findFunction(W.P->Prog, "worker");
  for (int64_t Seed = 1; Seed <= 4; ++Seed)
    W.Rt->spawnInt(Worker, {Seed, 40});
  ASSERT_TRUE(W.Rt->runAll());
  ASSERT_GT(W.St.get(StatId::TaskWorldStops), 0u);

  uint64_t Delays = 0;
  for (int I = 0; I < 4; ++I) {
    std::string Base = "task." + std::to_string(I);
    EXPECT_GT(W.St.get(Base + ".mutator_steps"), 0u) << Base;
    // Every thread allocates through its TLAB, so each one refilled at
    // least once and the words it bumped are accounted.
    EXPECT_GT(W.St.get(Base + ".tlab_refills"), 0u) << Base;
    EXPECT_GT(W.St.get(Base + ".tlab_alloc_words"), 0u) << Base;
    Delays += W.St.get(Base + ".world_stop_delays");
    uint64_t P50 = W.St.get(Base + ".world_stop_delay_ns_p50");
    uint64_t P90 = W.St.get(Base + ".world_stop_delay_ns_p90");
    uint64_t P99 = W.St.get(Base + ".world_stop_delay_ns_p99");
    EXPECT_LE(P50, P90) << Base;
    EXPECT_LE(P90, P99) << Base;
  }
  // Each handshake parks every still-live task; the triggering thread
  // records a delay too (request-to-collection time), so the histogram
  // counts at least one entry per stop.
  EXPECT_GE(Delays, W.St.get(StatId::TaskWorldStops));
}

TEST(Threads, ParallelTraceEngagesWithFourStacks) {
  // Four parked stacks and a 4-way tracer: the parallel path must engage
  // (gc.parallel_traces), spin up more than one worker at least once,
  // and the logical results stay correct.
  TWorld W = makeThreaded(wl::taskWorker(), GcStrategy::CompiledTagFree,
                          GcAlgorithm::Copying, 1 << 13, 4, false);
  FuncId Worker = findFunction(W.P->Prog, "worker");
  for (int64_t Seed = 1; Seed <= 4; ++Seed)
    W.Rt->spawnInt(Worker, {Seed, 40});
  ASSERT_TRUE(W.Rt->runAll());
  ASSERT_GT(W.St.get(StatId::GcCollections), 0u);
  EXPECT_GT(W.St.get(StatId::GcParallelTraces), 0u);
  uint64_t Workers = W.St.get(StatId::GcParallelWorkers);
  EXPECT_GE(Workers, 2u);
  EXPECT_LE(Workers, 4u);
}

TEST(Threads, FinishingThreadsHandOffPendingCollections) {
  // Tasks of very different lengths: short tasks exit while long ones
  // still allocate, shrinking the rendezvous population mid-run. A
  // request armed while an exiting thread is the last unparked one must
  // still complete (threadFinished runs the collection).
  TWorld W = makeThreaded(wl::taskWorker(), GcStrategy::CompiledTagFree,
                          GcAlgorithm::Generational, 1 << 13, 4, true);
  FuncId Worker = findFunction(W.P->Prog, "worker");
  for (int64_t N : {5, 15, 30, 45})
    W.Rt->spawnInt(Worker, {N, N});
  ASSERT_TRUE(W.Rt->runAll());
  EXPECT_EQ(W.St.get(StatId::TaskGcRequests),
            W.St.get(StatId::TaskWorldStops));
  EXPECT_EQ(W.St.get(StatId::GcVerifyViolations), 0u);
}

//===----------------------------------------------------------------------===//
// Handshake stress under a live /metrics scraper
//===----------------------------------------------------------------------===//

/// Minimal HTTP/1.1 client: one request, reads to EOF (the server closes).
std::string httpGet(uint16_t Port, const std::string &Target) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return {};
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Fd, (sockaddr *)&Addr, sizeof(Addr)) != 0) {
    ::close(Fd);
    return {};
  }
  std::string Req = "GET " + Target +
                    " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  (void)!::send(Fd, Req.data(), Req.size(), 0);
  std::string Resp;
  char Buf[4096];
  ssize_t N;
  while ((N = ::recv(Fd, Buf, sizeof(Buf), 0)) > 0)
    Resp.append(Buf, (size_t)N);
  ::close(Fd);
  return Resp;
}

/// Parses `name value` out of a Prometheus exposition; -1 when absent.
int64_t metricValue(const std::string &Body, const std::string &Name) {
  size_t Pos = 0;
  while ((Pos = Body.find(Name, Pos)) != std::string::npos) {
    size_t After = Pos + Name.size();
    bool AtLineStart = Pos == 0 || Body[Pos - 1] == '\n';
    if (AtLineStart && After < Body.size() && Body[After] == ' ')
      return std::atoll(Body.c_str() + After + 1);
    Pos = After;
  }
  return -1;
}

TEST(Threads, HandshakeStressUnderLiveMetricsScraper) {
  // Four mutator threads allocating flat out on a tight heap (hundreds
  // of handshakes), while a scraper thread GETs /metrics every ~2ms.
  // Epoch folds happen inside each pause; every scrape must observe a
  // coherent snapshot with monotone epoch and collection counters.
  TWorld W = makeThreaded(wl::taskWorker(), GcStrategy::CompiledTagFree,
                          GcAlgorithm::Generational, 1 << 13, 4, true);
  FuncId Worker = findFunction(W.P->Prog, "worker");
  for (int64_t Seed = 1; Seed <= 4; ++Seed)
    W.Rt->spawnInt(Worker, {Seed, 45});

  EpochAggregator Agg;
  Agg.attachStats(&W.St);
  Agg.setLabel("threads-stress");
  W.Col->setEpochAggregator(&Agg);
  IntrospectServer Srv;
  std::string Err;
  uint16_t Port = Srv.start(0, Err);
  ASSERT_NE(Port, 0u) << Err;
  Agg.attachServer(&Srv);
  // Epoch 1 before any mutator runs: the world is trivially stopped.
  Agg.fold(SafepointKind::Startup);

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Scrapes{0};
  std::atomic<bool> Monotone{true};
  std::thread Scraper([&] {
    int64_t LastSeq = -1, LastCollections = -1;
    while (!Stop.load(std::memory_order_acquire)) {
      std::string Body = httpGet(Port, "/metrics");
      if (!Body.empty() && Body.find("200") != std::string::npos) {
        int64_t Seq = metricValue(Body, "tfgc_epoch_seq");
        int64_t Col = metricValue(Body, "tfgc_gc_collections");
        if (Seq < LastSeq || Col < LastCollections)
          Monotone.store(false, std::memory_order_relaxed);
        LastSeq = std::max(LastSeq, Seq);
        LastCollections = std::max(LastCollections, Col);
        Scrapes.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  ASSERT_TRUE(W.Rt->runAll());
  Agg.fold(SafepointKind::RunEnd);
  Stop.store(true, std::memory_order_release);
  Scraper.join();

  EXPECT_GT(Scrapes.load(), 0u);
  EXPECT_TRUE(Monotone.load()) << "epoch or collection counter regressed";

  // No lost handshakes across hundreds of cycles, heap verified after
  // every one of them.
  uint64_t Stops = W.St.get(StatId::TaskWorldStops);
  EXPECT_GT(Stops, 0u);
  EXPECT_EQ(W.St.get(StatId::TaskGcRequests), Stops);
  EXPECT_EQ(W.Rt->gcEpochs(), Stops);
  EXPECT_EQ(W.St.get(StatId::GcVerifyViolations), 0u);

  // The final fold published the run's last word: the served exposition
  // agrees with the in-process stats.
  std::string Body = httpGet(Port, "/metrics");
  EXPECT_EQ(metricValue(Body, "tfgc_gc_collections"),
            (int64_t)W.St.get(StatId::GcCollections));
}

} // namespace
