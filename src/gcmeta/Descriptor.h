//===- gcmeta/Descriptor.h - Interpreted-method descriptors -----*- C++ -*-===//
///
/// \file
/// The *interpreted method* of Branquart & Lewi as the paper describes it:
/// each type gets a parse-tree-like descriptor; the collector traverses
/// the descriptor while traversing the data. Descriptors are deduplicated
/// program-wide, so they are much smaller than compiled routines — at the
/// cost of interpretation work during collection (the space/time trade-off
/// of paper section 2.4, measured by E3/E4).
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_GCMETA_DESCRIPTOR_H
#define TFGC_GCMETA_DESCRIPTOR_H

#include "ir/Ir.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace tfgc {

using DescId = uint32_t;

enum class DescKind : uint8_t {
  Leaf,  ///< int/bool/unit/float or an all-nullary datatype: nothing to do.
  Tuple, ///< Args = one descriptor per field.
  Data,  ///< A = datatype id; Args = one descriptor per type argument.
  Ref,   ///< Args[0] = element descriptor.
  Fun,   ///< Closure value; layout discovered through the code pointer.
  Param, ///< A = index into the surrounding datatype's type arguments
         ///< (used only inside constructor shape templates).
};

struct Descriptor {
  DescKind Kind = DescKind::Leaf;
  uint32_t A = 0;
  std::vector<DescId> Args;
  /// Fun only: the static function type, used to rebuild a type-GC closure
  /// when a polymorphic lambda is reached through a ground field.
  Type *FunTy = nullptr;
  /// True if no Param node occurs transitively: the descriptor means the
  /// same thing under every environment.
  bool Ground = true;
};

/// Program-wide descriptor store plus per-datatype constructor shape
/// templates.
class DescriptorTable {
public:
  explicit DescriptorTable(TypeContext &Ctx) : Ctx(Ctx) {}

  /// Descriptor for a *ground* type (no rigid vars).
  DescId getOrCreate(Type *T);

  const Descriptor &desc(DescId Id) const { return Descs[Id]; }
  DescId leafId();

  /// Shape template for constructor \p Ctor of datatype \p Id: one
  /// descriptor per field, where Param nodes refer to the datatype's own
  /// type parameters (instantiated by the Data descriptor's Args at trace
  /// time).
  const std::vector<DescId> &ctorShape(unsigned DatatypeId, unsigned Ctor);

  /// Builds every datatype's constructor shapes eagerly. Must be called
  /// before collection starts: the table must not grow while the tracer
  /// holds references into it.
  void buildAllShapes();

  size_t numDescriptors() const { return Descs.size(); }
  /// Modeled size: 8 bytes per descriptor node + 4 per argument.
  size_t sizeBytes() const;

private:
  TypeContext &Ctx;
  std::vector<Descriptor> Descs;
  std::unordered_map<std::string, DescId> Dedup;
  /// [datatype][ctor] -> field descriptor templates, built lazily.
  std::vector<std::vector<std::vector<DescId>>> Shapes;
  std::vector<bool> ShapeBuilt;

  DescId intern(Descriptor D, const std::string &Key);
  /// Internal: descriptor for a type that may mention the given datatype
  /// parameters (mapped to Param nodes).
  DescId createWithParams(Type *T, const std::vector<Type *> &Params);
  std::string keyFor(Type *T, const std::vector<Type *> &Params);
};

} // namespace tfgc

#endif // TFGC_GCMETA_DESCRIPTOR_H
