//===- core/TypeGc.h - Type GC routine closures -----------------*- C++ -*-===//
///
/// \file
/// The run-time *type GC routines* of paper section 3. During a collection
/// of a polymorphic program the collector builds closures that mirror the
/// structure of types:
///
///   const_gc                    -> Const node (ints, bools, ...)
///   trace_list_of(elem_gc)      -> Data node (generalized to any datatype,
///                                  paper Figure 3)
///   type gc routine for g       -> Fun node, from which the routines for a
///                                  callee lambda's type parameters are
///                                  extracted by path (paper Figure 4's
///                                  trace_result_of_g, generalized)
///
/// Nodes live in an arena that is reset when the collection ends — the
/// closures "reflect the creation of structures during execution" and are
/// rebuilt each collection, exactly as in the paper.
///
/// Two memo layers keep the building cheap:
///
///  - Within one collection, Data nodes are memoized by (datatype id,
///    argument-node identities) in a hash table so recursive datatypes tie
///    the knot and repeated instantiations share one closure.
///  - Across collections, closures of *ground* types (no rigid type
///    variables anywhere) are cached keyed on the resolved Type node.
///    Ground closures cannot depend on the per-collection type-parameter
///    bindings, so they are bitwise identical every time the paper's
///    algorithm would rebuild them; caching them is a pure memoization of
///    the "rebuilt each collection" model, invalidated only when the type
///    bindings themselves could change (resetAll). Their nodes live in a
///    separate persistent arena so reset() can still drop everything
///    per-collection.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_CORE_TYPEGC_H
#define TFGC_CORE_TYPEGC_H

#include "analysis/Reconstruct.h"
#include "ir/Ir.h"
#include "support/Arena.h"
#include "support/Stats.h"
#include "support/Telemetry.h"

#include <unordered_map>
#include <vector>

namespace tfgc {

struct TypeGc {
  enum class Kind : uint8_t {
    Const,  ///< Single-word non-pointer value (paper's const_gc).
    Record, ///< Tuple: Args = field routines (NumArgs of them).
    Data,   ///< Datatype: A = datatype id, Args = type-argument routines,
            ///< CtorFields = per-constructor field routines.
    Ref,    ///< Args[0] = element routine.
    Fun,    ///< Closure values: Args = parameter routines + result routine.
  };
  Kind K = Kind::Const;
  uint32_t A = 0;       ///< Data: datatype id; Fun: #params.
  uint32_t NumArgs = 0; ///< Length of Args.
  const TypeGc *const *Args = nullptr;
  /// Data only: per-constructor field routine arrays (CtorFieldCounts[i]
  /// entries each). Built when the node is created; recursive datatypes
  /// point back at this node.
  const TypeGc *const *const *CtorFields = nullptr;
  const uint32_t *CtorFieldCounts = nullptr;
  uint32_t NumCtors = 0;
};

/// Bindings for a function's type parameters during collection: Binds[i]
/// is the type GC routine for F.TypeParams[i].
struct TgEnv {
  const std::vector<Type *> *Params = nullptr;
  const TypeGc *const *Binds = nullptr;

  const TypeGc *lookup(Type *Rigid) const;
};

/// Builds type GC routine closures. One instance per *collector*: reset()
/// is called after each collection and drops the per-collection nodes
/// while the ground-closure cache carries over (see file comment).
class TypeGcEngine {
public:
  /// \p Tel, when given, charges closure-construction time to the
  /// TgClosureBuild telemetry phase (one span per outermost eval; the
  /// engine's recursive evals re-enter the active phase for free).
  TypeGcEngine(TypeContext &Types, Stats &St, Telemetry *Tel = nullptr)
      : Types(Types), St(St), Tel(Tel) {}

  /// Evaluates static type \p T under \p Env into a routine closure.
  const TypeGc *eval(Type *T, const TgEnv &Env) {
    PhaseScope Span(Tel, GcPhase::TgClosureBuild);
    return evalImpl(T, Env);
  }

  /// Walks \p Path through a routine (paper Figure 4: recovering a callee
  /// lambda's parameter routines from its function-type routine).
  const TypeGc *extract(const TypeGc *Root, const TypePath &Path);

  const TypeGc *constGc() { return &ConstNode; }

  /// Drops every node built during this collection; ground-type closures
  /// in the cross-collection cache survive (their Type nodes are stable
  /// after inference, so the cached closures stay valid).
  void reset();

  /// Full invalidation: reset() plus the cross-collection cache. Required
  /// only if the underlying type bindings change (never during a normal
  /// program run; exists for tests and future dynamic-code paths).
  void resetAll();

  /// Disables (or re-enables) the cross-collection ground cache. On by
  /// default; the off switch exists to measure its effect.
  void setCrossCollectionCache(bool Enabled) { CacheEnabled = Enabled; }

  size_t nodesBuilt() const { return NumNodes; }
  size_t cachedClosures() const { return GroundCache.size(); }

private:
  /// Memo key for Data nodes: datatype id + argument node identities.
  struct DataKey {
    uint32_t Id;
    std::vector<const TypeGc *> Args;
    bool operator==(const DataKey &O) const {
      return Id == O.Id && Args == O.Args;
    }
  };
  struct DataKeyHash {
    size_t operator()(const DataKey &K) const {
      // FNV-ish mix over the id and the arg-node identities. Arg nodes
      // are themselves memoized, so pointer identity is the right notion
      // of equality and hashes in O(#args).
      uint64_t H = 0xcbf29ce484222325ull ^ K.Id;
      for (const TypeGc *A : K.Args) {
        H ^= (uint64_t)(uintptr_t)A >> 3;
        H *= 0x100000001b3ull;
      }
      return (size_t)H;
    }
  };
  using DataMemoMap = std::unordered_map<DataKey, TypeGc *, DataKeyHash>;

  TypeContext &Types;
  Stats &St;
  Telemetry *Tel;
  Arena Nodes{16 * 1024};
  /// Arena for cached ground closures; survives reset().
  Arena PersistentNodes{16 * 1024};
  size_t NumNodes = 0;
  TypeGc ConstNode; // Kind::Const
  /// Per-collection Data memo (ties recursive knots; cleared by reset).
  DataMemoMap DataMemo;
  /// Persistent Data memo for nodes built in persistent mode. Kept apart
  /// from DataMemo so a persistent-mode eval can never capture a
  /// per-collection node that dies at reset().
  DataMemoMap PersistentDataMemo;
  /// Cross-collection closure cache: resolved ground Type -> closure.
  std::unordered_map<Type *, const TypeGc *> GroundCache;
  /// Groundness memo (the type graph is stable after inference).
  std::unordered_map<Type *, bool> GroundMemo;
  bool CacheEnabled = true;
  /// True while building a cached ground closure: allocate persistently.
  bool PersistentMode = false;

  bool isGround(Type *T);
  const TypeGc *evalImpl(Type *T, const TgEnv &Env);
  const TypeGc *evalUncached(Type *T, const TgEnv &Env);
  TypeGc *alloc();
  const TypeGc *const *copyArgs(const std::vector<const TypeGc *> &Args);
};

} // namespace tfgc

#endif // TFGC_CORE_TYPEGC_H
