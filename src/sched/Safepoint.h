//===- sched/Safepoint.h - Stop-the-world rendezvous ------------*- C++ -*-===//
///
/// \file
/// The handshake that stops real OS-thread mutators for a collection
/// (paper section 4, with std::thread standing in for Ada tasks). The
/// protocol has three verbs:
///
///   requestStop   a mutator exhausted the heap: arm the stop flag (the
///                 word every VM polls through its fuel counter) and
///                 stamp the request time;
///   park          a mutator reached a GC point (its stack walkable, the
///                 pending site recorded): count it in and sleep. The
///                 *last* mutator to park owns the pause — it runs the
///                 collection thunk under the coordinator lock, advances
///                 the epoch and wakes everyone;
///   threadFinished a mutator's task completed: leave the rendezvous set,
///                 and — if every remaining mutator is already parked —
///                 run the pending collection on their behalf before
///                 exiting (otherwise they would wait forever on a
///                 thread that is gone).
///
/// The flag itself is an atomic read with relaxed ordering — the poll is
/// on the interpreter hot path and synchronization happens on the mutex
/// when a mutator actually parks. A stale read is benign in both
/// directions: missing the flag delays the park by one poll interval;
/// seeing a completed stop just bounces off the lock (park returns
/// without waiting when no stop is armed).
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_SCHED_SAFEPOINT_H
#define TFGC_SCHED_SAFEPOINT_H

#include "support/FlightRecorder.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>

namespace tfgc {

class SafepointCoordinator {
public:
  /// The collection thunk, run with the world stopped and the coordinator
  /// lock held: \p NeedWords is the largest payload demand among the
  /// requesters this cycle, \p StopDelayNs the request-to-world-stop
  /// latency (the slowest mutator's park delay).
  using CollectFn = std::function<void(size_t NeedWords, uint64_t StopDelayNs)>;

  /// What park() tells the parking thread about its own handshake slot.
  struct ParkInfo {
    uint64_t DelayNs;  ///< Request-to-this-park latency (time-to-safepoint).
    uint64_t Epoch;    ///< Handshake id (the epoch this stop completes).
    bool LastParker;   ///< This park completed the rendezvous.
  };
  using ParkedFn = std::function<void(const ParkInfo &)>;
  using ResumedFn = std::function<void(uint64_t Epoch)>;
  using HandoffFn = std::function<void(uint64_t Epoch, uint64_t DelayNs)>;

  explicit SafepointCoordinator(unsigned LiveThreads) : Live(LiveThreads) {}

  /// Attaches the flight recorder's GC ring (nullptr disables). Arm
  /// events are recorded under the coordinator lock, which is what makes
  /// the GC ring single-producer-at-a-time.
  void setFlightRing(FlightRing *R) { Flight = R; }

  /// Lock-free mutator poll (the VM's fuel-counter safepoint check and
  /// the test inside the allocation routines).
  bool pending() const {
    return StopRequested.load(std::memory_order_relaxed);
  }

  /// Arms the stop (first caller per cycle) and raises the word demand.
  /// Returns true when this call armed it — the caller owns the
  /// task.gc_requests increment, so requests are counted once per
  /// handshake cycle exactly like the cooperative scheduler counts them.
  bool requestStop(size_t NeedWords) {
    std::lock_guard<std::mutex> Lock(M);
    bool Armed = false;
    if (!StopArmed) {
      StopArmed = true;
      StopRequested.store(true, std::memory_order_relaxed);
      RequestTime = std::chrono::steady_clock::now();
      Armed = true;
      if (Flight) [[unlikely]]
        Flight->record(FlightEventType::SafepointArm,
                       (uint32_t)Epoch.load(std::memory_order_relaxed),
                       NeedWords);
    }
    if (NeedWords > Need)
      Need = NeedWords;
    return Armed;
  }

  /// Parks the calling mutator at a GC point. \p OnParked runs under the
  /// lock with this thread's request-to-park delay, the handshake epoch,
  /// and whether this park completed the rendezvous (per-task
  /// time-to-safepoint and last-parker attribution); the last thread to
  /// park runs \p Collect and advances the epoch. \p OnResumed (optional)
  /// runs once the handshake this thread parked in has completed — on
  /// every parked thread, the pause owner included — so park/resume
  /// events pair up per epoch. Returns immediately when no stop is armed
  /// (the poll raced with a completing handshake).
  void park(const ParkedFn &OnParked, const CollectFn &Collect,
            const ResumedFn &OnResumed = {}) {
    std::unique_lock<std::mutex> Lock(M);
    if (!StopArmed)
      return;
    uint64_t DelayNs = sinceRequestNs();
    uint64_t MyEpoch = Epoch.load(std::memory_order_relaxed);
    ++Parked;
    bool Last = Parked == Live;
    if (OnParked)
      OnParked({DelayNs, MyEpoch, Last});
    if (Last) {
      Collect(Need, DelayNs);
      finishStop();
      Lock.unlock();
      CV.notify_all();
      if (OnResumed)
        OnResumed(MyEpoch);
      return;
    }
    CV.wait(Lock, [&] {
      return Epoch.load(std::memory_order_relaxed) != MyEpoch;
    });
    if (OnResumed)
      OnResumed(MyEpoch);
  }

  /// Removes the calling mutator from the rendezvous set (its task is
  /// done; its roots must already be out of the root set). If its exit
  /// completes a pending rendezvous, the collection runs here, on the
  /// exiting thread, so the parked mutators are not stranded; \p OnHandoff
  /// (optional) is told about it under the lock before the collection.
  void threadFinished(const CollectFn &Collect,
                      const HandoffFn &OnHandoff = {}) {
    std::unique_lock<std::mutex> Lock(M);
    --Live;
    if (!StopArmed)
      return;
    if (Live > 0 && Parked == Live) {
      uint64_t DelayNs = sinceRequestNs();
      if (OnHandoff)
        OnHandoff(Epoch.load(std::memory_order_relaxed), DelayNs);
      Collect(Need, DelayNs);
      finishStop();
      Lock.unlock();
      CV.notify_all();
    } else if (Live == 0) {
      // Unreachable in practice — the requester always parks before its
      // task can finish — but don't leave a stop armed with nobody to
      // serve it.
      StopArmed = false;
      StopRequested.store(false, std::memory_order_relaxed);
      Need = 0;
    }
  }

  /// Completed world stops. Strictly monotone, advanced only inside the
  /// pause; the stress test asserts it never goes backwards and ends
  /// equal to the number of armed requests (no lost handshakes).
  uint64_t epoch() const { return Epoch.load(std::memory_order_relaxed); }

private:
  uint64_t sinceRequestNs() const {
    return (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - RequestTime)
        .count();
  }

  /// Lock held. Resets the cycle and publishes the new epoch (the CV
  /// predicate the parked mutators wake on).
  void finishStop() {
    StopArmed = false;
    StopRequested.store(false, std::memory_order_relaxed);
    Need = 0;
    Parked = 0;
    Epoch.fetch_add(1, std::memory_order_relaxed);
  }

  std::mutex M;
  std::condition_variable CV;
  /// The armed flag under the lock; StopRequested mirrors it for the
  /// lock-free poll.
  bool StopArmed = false;
  std::atomic<bool> StopRequested{false};
  size_t Need = 0;
  unsigned Live;
  unsigned Parked = 0;
  std::chrono::steady_clock::time_point RequestTime;
  std::atomic<uint64_t> Epoch{0};
  FlightRing *Flight = nullptr;
};

} // namespace tfgc

#endif // TFGC_SCHED_SAFEPOINT_H
