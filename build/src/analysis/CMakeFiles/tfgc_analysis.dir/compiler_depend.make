# Empty compiler generated dependencies file for tfgc_analysis.
# This may be replaced when dependencies are built.
