# Empty dependencies file for tfgc_frontend.
# This may be replaced when dependencies are built.
