//===- core/Collector.h - Collector interface -------------------*- C++ -*-===//
///
/// \file
/// Base class for all collectors. A collector owns the heap (semispace or
/// mark-sweep), provides mutator allocation, and implements root tracing
/// according to its strategy:
///
///   TaggedCollector      program-independent scan by tag bits + headers
///   GoldbergCollector    the paper's tag-free method (compiled or
///                        interpreted frame routines; oldest-to-newest
///                        traversal with type-GC closures for polymorphism)
///   AppelCollector       one descriptor per procedure, dynamic-chain type
///                        reconstruction (paper section 1.1.1)
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_CORE_COLLECTOR_H
#define TFGC_CORE_COLLECTOR_H

#include "gcmeta/CodeImage.h"
#include "runtime/GenHeap.h"
#include "runtime/Heap.h"
#include "runtime/MarkSweepHeap.h"
#include "runtime/Roots.h"
#include "sched/Tlab.h"
#include "support/Epoch.h"
#include "support/HeapProfile.h"
#include "support/Monitor.h"
#include "support/Stats.h"
#include "support/Telemetry.h"

#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

namespace tfgc {

class FlightRecorder;
class Type;

enum class GcAlgorithm : uint8_t { Copying, MarkSweep, Generational };

const char *gcAlgorithmName(GcAlgorithm A);

enum class GcStrategy : uint8_t {
  Tagged,
  CompiledTagFree,
  InterpretedTagFree,
  AppelTagFree,
};

const char *gcStrategyName(GcStrategy S);

class Space;

class Collector {
public:
  /// \p NurseryBytes only applies to GcAlgorithm::Generational (0 picks a
  /// default of HeapBytes/8); the nursery is carved out of \p HeapBytes so
  /// total capacity is comparable across algorithms.
  Collector(ValueModel Model, GcAlgorithm Algo, size_t HeapBytes, Stats &St,
            size_t NurseryBytes = 0);
  virtual ~Collector() = default;

  ValueModel model() const { return Model; }
  GcAlgorithm algorithm() const { return Algo; }
  Stats &stats() { return St; }

  /// Per-collection phase spans, pause/phase histograms, and heap census
  /// (see support/Telemetry.h). Recorded unconditionally — the ring is
  /// preallocated and a span costs one clock read per phase switch.
  Telemetry &telemetry() { return Tel; }
  const Telemetry &telemetry() const { return Tel; }

  /// Attaches a heap profiler (not owned; may be null). The collector
  /// drives its collection lifecycle — begin/trace-round/finish, pausing
  /// during the verify pass — and the strategy tracers feed it the same
  /// first-visit stream as the telemetry census.
  void setHeapProfiler(HeapProfiler *P) { Prof = P; }
  HeapProfiler *heapProfiler() { return Prof; }

  /// Attaches the mutator-side monitor (not owned; may be null). The
  /// monitor adopts this collector's telemetry timebase and receives
  /// every collection event; the VM polls monitor() at construction to
  /// arm its sample-point fuel, so attach before creating VMs.
  void setMonitor(Monitor *M) {
    Mon = M;
    if (M)
      M->attachTelemetry(&Tel);
  }
  Monitor *monitor() { return Mon; }

  /// Attaches the flight recorder (not owned; may be null). Wires the
  /// telemetry's GC ring mirror, makes the trace workers stamp begin/end
  /// events into their per-worker rings, and drains all rings at the end
  /// of every collection (the world is stopped, so no producer races the
  /// drain). Null (the default) costs one untaken branch per site.
  void setFlightRecorder(FlightRecorder *F);
  FlightRecorder *flightRecorder() { return Flight; }

  /// Attaches the epoch aggregator (not owned; may be null). When present,
  /// every collection ends — still inside the world-stopped pause — with a
  /// publishTelemetryStats() + shard fold, so sinks observe a coherent
  /// Collection epoch. Null (the default) costs nothing on any path.
  void setEpochAggregator(EpochAggregator *A) { Agg = A; }
  EpochAggregator *epochAggregator() { return Agg; }

  /// Flushes derived telemetry into the stats registry: pause percentiles
  /// (gc.pause_ns_p50/p90/p99), cumulative per-phase times
  /// (gc.phase_<name>_ns), live census totals (gc.census_<kind>_*), and
  /// tasking world-stop delay percentiles. Called by Vm::flushCounters so
  /// every run's Stats snapshot carries the histogram summaries.
  void publishTelemetryStats();

  /// Mutator allocation of \p PayloadWords payload words; under the tagged
  /// model a header word is added and initialized. Returns nullptr when a
  /// collection is needed.
  ///
  /// Threaded mutators pass their TLAB (\p T) and their stats shard
  /// (\p Sh): the fast path bumps the TLAB, the slow path refills it with
  /// one CAS on the shared cursor (mark-sweep has no bump cursor and
  /// takes a mutex instead), and the allocation counter lands in the
  /// caller's own shard. With \p T null the sequential path is
  /// byte-for-byte the pre-threading behavior.
  Word *tryAllocatePayload(size_t PayloadWords, ObjKind Kind,
                           Tlab *T = nullptr, StatsShard *Sh = nullptr);

  /// Number of GC worker threads for the trace phase (1 = serial, the
  /// default). Arms the heaps' claim/publish protocol when > 1. Call
  /// before the first collection.
  void setGcThreads(unsigned N);
  unsigned gcThreads() const { return GcThreads; }

  /// Declares that mutator threads run concurrently: the write barrier's
  /// remembered-set slow path takes a mutex, and mark-sweep mutator
  /// allocation serializes. No-op cost when false (the default).
  void setParallelMutators(bool On) { ParallelMutators = On; }
  bool parallelMutators() const { return ParallelMutators; }

  /// Collects, growing the heap as needed until \p NeedPayloadWords can be
  /// allocated.
  void collect(RootSet &Roots, size_t NeedPayloadWords);

  /// After every collection, re-traverse the reachable graph read-only
  /// and count references that escaped the live heap (collector bug
  /// detector; results in stats key "gc.verify_violations").
  void setVerifyAfterGc(bool Enabled) { VerifyAfterGc = Enabled; }

  /// Testing hook: makes every verify pass report one artificial
  /// violation, so the abnormal-exit paths (nonzero exit code, flushed
  /// diagnostics) can be exercised without an actual collector bug.
  void setInjectVerifyViolation(bool Enabled) {
    InjectVerifyViolation = Enabled;
  }

  size_t heapUsedBytes() const;
  size_t heapCapacityBytes() const;
  uint64_t bytesAllocatedTotal() const;

  /// An old→young edge candidate recorded by the write barrier. \p Ty is
  /// the static type of the stored value (from IrFunction::SlotTypes) so
  /// the tag-free strategies can rescan the slot precisely at the next
  /// minor collection; the tagged strategy ignores it and uses headers.
  struct RemsetEntry {
    Word *Slot;
    Type *Ty;
  };

  /// Post-store write barrier for the generational algorithm (no-op
  /// otherwise). Hot path: filters stores whose slot is not tenured or
  /// whose value is not a young pointer, then records the slot in the
  /// sequential-store-buffer remembered set. Initializing stores never
  /// pass through here — every object is born in the nursery, so a fresh
  /// object cannot be an old→young source (DESIGN.md section 6).
  void writeBarrier(Word *Slot, Word Val, Type *StaticTy) {
    if (!Gen)
      return;
    if (!Gen->inTenured((Word)(uintptr_t)Slot))
      return;
    // Under the tagged model only genuine pointers can be young; the
    // tag-free models conservatively admit unboxed values whose bits
    // happen to land in the nursery — harmless, because the remset scan
    // re-derives pointerness from the recorded static type. Self-tagged
    // floats (runtime/Value.h) fail isTaggedPointer by construction
    // (low bits 0b010, heap pointers are 8-aligned), so a float-valued
    // store can never enter the remembered set.
    if (Model == ValueModel::Tagged ? !(isTaggedPointer(Val) &&
                                        Gen->inNursery(Val))
                                    : !Gen->inNursery(Val))
      return;
    recordRemset(Slot, StaticTy);
  }

protected:
  /// Strategy-specific root tracing into \p Sp.
  virtual void traceRoots(RootSet &Roots, Space &Sp) = 0;

  /// Fans the per-stack trace jobs of one collection out over GcThreads
  /// workers. Stack indices are seeded round-robin into per-worker
  /// Chase-Lev deques; an idle worker steals from its peers. Each worker
  /// owns a sibling Space (Space::makeWorkerSpace), a private Stats and a
  /// private CensusCounts, all merged back on this thread after the
  /// workers join (worker 0 runs inline on the collecting thread).
  ///
  /// \p TraceStack traces one suspended stack into the worker's space,
  /// recording counters into the worker's stats; census increments must
  /// go through the worker's CensusCounts (TagFreeTracer::setCensusSink).
  ///
  /// Returns false — caller must run its serial path — when parallelism
  /// is not engaged: one worker configured, a heap profiler attached
  /// (its visit stream is inherently serial), fewer than two stacks, or
  /// a Space that cannot trace in parallel (CheckSpace, so --verify
  /// re-traces stay serial and exact).
  bool traceStacksParallel(
      RootSet &Roots, Space &Sp,
      const std::function<void(TaskStack &Stack, Space &WorkerSp,
                               Stats &WorkerSt, CensusCounts &WorkerCensus)>
          &TraceStack);

  /// Strategy-specific scan of the remembered set during a minor
  /// collection (entries are extra roots). The base implementation is a
  /// no-op for strategies that never run generationally-specific paths.
  virtual void traceRemset(Space &Sp) { (void)Sp; }

  const std::vector<RemsetEntry> &remset() const { return Remset; }

  ValueModel Model;
  GcAlgorithm Algo;
  Stats &St;
  Telemetry Tel;
  unsigned GcThreads = 1;
  bool ParallelMutators = false;
  HeapProfiler *Prof = nullptr;
  Monitor *Mon = nullptr;
  EpochAggregator *Agg = nullptr;
  FlightRecorder *Flight = nullptr;
  /// Last mid-run publishTelemetryStats() from epochSafepoint(); derived
  /// gauges refresh at most every 10 ms between pauses (see there).
  std::chrono::steady_clock::time_point LastDerivedPublish{};
  bool VerifyAfterGc = false;
  bool InjectVerifyViolation = false;
  std::unique_ptr<Heap> Copying;
  std::unique_ptr<MarkSweepHeap> Ms;
  std::unique_ptr<GenHeap> Gen;

private:
  void recordRemset(Word *Slot, Type *Ty);
  /// Conservative retention roots: every slot of every suspended frame,
  /// labeled frame-function:slot (the dominator pass drops values that
  /// match no live object, so stale slots only cost a failed lookup).
  std::vector<HeapRoot> captureProfilerRoots(RootSet &Roots) const;
  void collectGenerational(RootSet &Roots, size_t Need);
  void minorCollection(RootSet &Roots, bool Promote);
  void majorCollection(RootSet &Roots, size_t Need);
  void verifyPass(RootSet &Roots);
  void pruneRemset();
  /// Publish + fold at the end of a world-stopped collection pause.
  void epochSafepoint();

  /// Remembered set: a sequential store buffer with a dedup index so the
  /// same tenured slot stored repeatedly costs one entry per collection
  /// cycle.
  std::vector<RemsetEntry> Remset;
  std::unordered_set<Word *> RemsetIndex;
  /// Serializes recordRemset (and, for mark-sweep, mutator allocation)
  /// between concurrent mutator threads. Uncontended when mutators are
  /// cooperative.
  std::mutex MutatorMutex;
  /// A store of a non-ground-typed value landed in a tenured slot; the
  /// slot cannot be rescanned standalone under the tag-free models, so
  /// the next collection is forced major (which needs no remset).
  bool RemsetImprecise = false;
  /// Every PromoteEvery'th minor collection promotes all survivors en
  /// masse. Per-object promotion is unsound here: a promoted object
  /// pointing at a still-young survivor would be an unrecorded old→young
  /// edge, and without headers the promoted object cannot be rescanned.
  static constexpr unsigned PromoteEvery = 4;
  unsigned MinorsSincePromotion = 0;

  /// Young-object census for the invariant "allocated == promoted +
  /// young-dead + nursery-resident" (resident = survivors at the last
  /// collection + allocations since).
  uint64_t LiveYoungObjects = 0;
  uint64_t AllocSnapshot = 0;
  uint64_t PromotedObjectsTotal = 0;
  uint64_t DeadYoungObjectsTotal = 0;
};

} // namespace tfgc

#endif // TFGC_CORE_COLLECTOR_H
