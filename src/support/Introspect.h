//===- support/Introspect.h - Live introspection server ---------*- C++ -*-===//
///
/// \file
/// A minimal embedded HTTP/1.1 server (`tfgc --serve=PORT`) for live
/// introspection of a running VM. It serves *epoch-coherent strings
/// only*: the EpochAggregator pushes a /snapshot body (schema-1
/// heap-profile JSON) and the latest /heartbeat record at each safepoint
/// fold, plus a deferred /metrics render — a closure over the immutable
/// epoch snapshot that the server materializes (and caches) on the
/// scraper's thread at the first GET, so the text exposition is never
/// built inside a collection pause. The accept loop runs on its own
/// std::thread and never touches live StatsShards, the heap, or any VM
/// state — a scrape can observe only epoch-coherent data, and a slow or
/// hostile client can delay other scrapes but never the mutator.
///
/// Routes: /metrics (text/plain; Prometheus 0.0.4), /snapshot
/// (application/json; 404 until a heap profile is published), /heartbeat
/// (application/json; 404 until the monitor emits one), /flightrecord
/// (application/octet-stream; the latest drained flight-recorder chunk,
/// 404 until --flight-out drains one), /heapdump
/// (application/octet-stream; the latest typed heap-graph chunk, 404
/// until --heap-dump captures one), /healthz.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_SUPPORT_INTROSPECT_H
#define TFGC_SUPPORT_INTROSPECT_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace tfgc {

class IntrospectServer {
public:
  IntrospectServer() = default;
  ~IntrospectServer() { stop(); }
  IntrospectServer(const IntrospectServer &) = delete;
  IntrospectServer &operator=(const IntrospectServer &) = delete;

  /// Binds 127.0.0.1:\p Port (0 picks an ephemeral port) and starts the
  /// accept thread. Returns the bound port, or 0 with \p Err set.
  uint16_t start(uint16_t Port, std::string &Err);

  /// Stops the accept thread and closes the socket. Idempotent; also run
  /// by the destructor.
  void stop();

  bool running() const { return Running.load(); }
  uint16_t port() const { return BoundPort; }

  // -- Epoch-coherent bodies, pushed by the EpochAggregator ----------------
  void publishMetrics(std::string Body);
  /// Deferred /metrics: \p Render runs on the serving thread at the first
  /// GET after this publish (then the result is cached until the next
  /// publish). \p Render must capture only immutable state.
  void publishMetricsLazy(std::function<std::string()> Render);
  void publishSnapshot(std::string Body);
  void publishHeartbeat(std::string Body);
  /// The latest flight-recorder chunk as a standalone decodable file body
  /// (24-byte header + records); pushed by the recorder's chunk sink at
  /// each world-stopped drain.
  void publishFlightRecord(std::string Body);
  /// The latest heap-graph chunk as a standalone decodable framed body
  /// ("TFGH" frame); pushed by HeapGraph's chunk sink at each capture.
  void publishHeapDump(std::string Body);

  /// Total requests answered (any route, any status). Test hook.
  uint64_t requestsServed() const { return Requests.load(); }

private:
  void serveLoop();
  void handleConn(int Fd);

  std::thread Thread;
  std::atomic<bool> Running{false};
  std::atomic<bool> StopFlag{false};
  std::atomic<uint64_t> Requests{0};
  int ListenFd = -1;
  uint16_t BoundPort = 0;

  /// Takes MetricsBody if cached, else materializes it from MetricsRender.
  std::string metricsBody();

  std::mutex BodyMutex;
  std::string MetricsBody;
  std::function<std::string()> MetricsRender;
  std::string SnapshotBody;
  std::string HeartbeatBody;
  std::string FlightBody;
  std::string HeapDumpBody;
};

} // namespace tfgc

#endif // TFGC_SUPPORT_INTROSPECT_H
