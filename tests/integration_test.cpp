//===- tests/integration_test.cpp - Workloads under every strategy -------===//
///
/// Every workload program must produce identical results under all four
/// strategies and both heap algorithms, with and without GC stress.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "workloads/Programs.h"

using namespace tfgc;
using namespace tfgc::test;
namespace wl = tfgc::workloads;

namespace {

TEST(Integration, ListChurn) {
  runAllStrategies(wl::listChurn(40, 20));
}

TEST(Integration, BinaryTrees) {
  runAllStrategies(wl::binaryTrees(6, 4));
}

TEST(Integration, NQueens) {
  EXPECT_EQ(runAllStrategies(wl::nqueens(6), 1 << 14, false), "4");
}

TEST(Integration, AppendPaper) {
  EXPECT_EQ(runAllStrategies(wl::appendPaper(50)),
            std::to_string(2 * (50 * 51 / 2)));
}

TEST(Integration, ArithKernel) {
  runAllStrategies(wl::arithKernel(5000));
}

TEST(Integration, FloatKernel) {
  runAllStrategies(wl::floatKernel(20, 10));
}

TEST(Integration, VariantRecords) {
  runAllStrategies(wl::variantRecords(60));
}

TEST(Integration, HigherOrder) {
  runAllStrategies(wl::higherOrder(40));
}

TEST(Integration, RefCells) {
  runAllStrategies(wl::refCells(200));
}

TEST(Integration, PolyDeep) {
  runAllStrategies(wl::polyDeep(40, 30));
}

TEST(Integration, PolyPaper) {
  std::string V = runAllStrategies(wl::polyPaper());
  EXPECT_EQ(V, "((([true], [true]), [3]), ((7, 7), [3]), 4, 3)");
}

TEST(Integration, DeadVars) {
  runAllStrategies(wl::deadVars(100, 200));
}

TEST(Integration, SymbolicDiff) {
  // d/dx (x^4 + 3x^2 + 7x + 5) = 4x^3 + 6x + 7; at x=2: 32+12+7 = 51,
  // summed over 40 rounds.
  EXPECT_EQ(runAllStrategies(wl::symbolicDiff(1)), std::to_string(40 * 51));
  // Second derivative 12x^2 + 6; at 2: 54.
  EXPECT_EQ(runAllStrategies(wl::symbolicDiff(2)), std::to_string(40 * 54));
  runAllStrategies(wl::symbolicDiff(4));
}

TEST(Integration, TinyHeapForcesGrowth) {
  // Start with a heap too small for the live set; growth must kick in.
  for (GcStrategy S : AllStrategies) {
    ExecResult R = execProgram(wl::listChurn(200, 2), S,
                               GcAlgorithm::Copying, 512, false);
    ASSERT_TRUE(R.Run.Ok) << R.Run.Error;
    EXPECT_GT(R.St.get("gc.heap_growths"), 0u) << gcStrategyName(S);
  }
}

TEST(Integration, LivenessOffMatchesResults) {
  // Disabling the liveness analysis changes retention, never results.
  CompileOptions NoLive;
  NoLive.UseLiveness = false;
  for (GcStrategy S : AllStrategies) {
    ExecResult R = execProgram(wl::listChurn(30, 5), S, GcAlgorithm::Copying,
                               1 << 14, true, NoLive);
    ASSERT_TRUE(R.Run.Ok) << R.Run.Error;
    EXPECT_EQ(R.Run.Value,
              runValue(wl::listChurn(30, 5), S, GcAlgorithm::Copying));
  }
}

TEST(Integration, GcPointAnalysisOffMatchesResults) {
  CompileOptions NoGcPoints;
  NoGcPoints.UseGcPointAnalysis = false;
  for (GcStrategy S : AllStrategies) {
    ExecResult R = execProgram(wl::binaryTrees(5, 2), S, GcAlgorithm::Copying,
                               1 << 14, true, NoGcPoints);
    ASSERT_TRUE(R.Run.Ok) << R.Run.Error;
  }
}

TEST(Integration, MonomorphicModeRunsMonoWorkloads) {
  CompileOptions Mono;
  Mono.RequireMonomorphic = true;
  ExecResult R = execProgram(wl::listChurn(20, 3), GcStrategy::CompiledTagFree,
                             GcAlgorithm::Copying, 1 << 14, false, Mono);
  EXPECT_TRUE(R.Run.Ok) << R.CompileError << R.Run.Error;
}

TEST(Integration, TaggedRetainsMoreThanLiveCompiled) {
  // E5's shape as a hard invariant: with a dead large structure, the
  // liveness-aware compiled collector must retain no more than the tagged
  // collector (which scans every slot).
  std::string Src = wl::deadVars(400, 400);
  ExecResult Tagged = execProgram(Src, GcStrategy::Tagged,
                                  GcAlgorithm::Copying, 1 << 20, true);
  ExecResult Live = execProgram(Src, GcStrategy::CompiledTagFree,
                                GcAlgorithm::Copying, 1 << 20, true);
  ASSERT_TRUE(Tagged.Run.Ok && Live.Run.Ok);
  EXPECT_LE(Live.St.get("gc.words_visited"),
            Tagged.St.get("gc.words_visited"));
}

} // namespace
