file(REMOVE_RECURSE
  "CMakeFiles/tfgc_tasking.dir/Tasking.cpp.o"
  "CMakeFiles/tfgc_tasking.dir/Tasking.cpp.o.d"
  "libtfgc_tasking.a"
  "libtfgc_tasking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfgc_tasking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
