//===- tests/types_test.cpp - Type graph, unification, schemes -----------===//

#include "types/Type.h"

#include <gtest/gtest.h>

using namespace tfgc;

namespace {

struct TypesFixture : ::testing::Test {
  TypeContext Ctx;
};

TEST_F(TypesFixture, UnifyPrimitives) {
  EXPECT_TRUE(Ctx.unify(Ctx.intTy(), Ctx.intTy()));
  EXPECT_FALSE(Ctx.unify(Ctx.intTy(), Ctx.boolTy()));
  EXPECT_FALSE(Ctx.unify(Ctx.floatTy(), Ctx.intTy()));
}

TEST_F(TypesFixture, UnifyVarBinds) {
  Type *V = Ctx.freshVar(0);
  EXPECT_TRUE(Ctx.unify(V, Ctx.intTy()));
  EXPECT_EQ(V->resolved(), Ctx.intTy());
  // Bound vars behave like their instance.
  EXPECT_TRUE(Ctx.unify(V, Ctx.intTy()));
  EXPECT_FALSE(Ctx.unify(V, Ctx.boolTy()));
}

TEST_F(TypesFixture, OccursCheckRejectsInfiniteTypes) {
  Type *V = Ctx.freshVar(0);
  Type *ListV = Ctx.makeData(Ctx.listInfo(), {V});
  EXPECT_FALSE(Ctx.unify(V, ListV));
}

TEST_F(TypesFixture, FunArityMismatch) {
  Type *F1 = Ctx.makeFun({Ctx.intTy()}, Ctx.intTy());
  Type *F2 = Ctx.makeFun({Ctx.intTy(), Ctx.intTy()}, Ctx.intTy());
  EXPECT_FALSE(Ctx.unify(F1, F2));
}

TEST_F(TypesFixture, UnifyThroughStructure) {
  Type *A = Ctx.freshVar(0), *B = Ctx.freshVar(0);
  Type *L1 = Ctx.makeData(Ctx.listInfo(), {Ctx.makeTuple({A, Ctx.intTy()})});
  Type *L2 = Ctx.makeData(Ctx.listInfo(), {Ctx.makeTuple({Ctx.boolTy(), B})});
  EXPECT_TRUE(Ctx.unify(L1, L2));
  EXPECT_EQ(A->resolved(), Ctx.boolTy());
  EXPECT_EQ(B->resolved(), Ctx.intTy());
}

TEST_F(TypesFixture, RigidVarsNeverUnify) {
  Type *R1 = Ctx.freshVar(0);
  R1->makeRigid(0);
  Type *R2 = Ctx.freshVar(0);
  R2->makeRigid(1);
  EXPECT_FALSE(Ctx.unify(R1, R2));
  EXPECT_FALSE(Ctx.unify(R1, Ctx.intTy()));
  // But a flexible var can bind to a rigid one.
  Type *V = Ctx.freshVar(0);
  EXPECT_TRUE(Ctx.unify(V, R1));
  EXPECT_EQ(V->resolved(), R1);
}

TEST_F(TypesFixture, GeneralizeCollectsDeepVarsInOrder) {
  Type *A = Ctx.freshVar(1), *B = Ctx.freshVar(1);
  Type *F = Ctx.makeFun({A, B}, A);
  TypeScheme S = Ctx.generalize(F, 0);
  ASSERT_EQ(S.Params.size(), 2u);
  EXPECT_EQ(S.Params[0], A);
  EXPECT_EQ(S.Params[1], B);
  EXPECT_TRUE(A->isRigid());
  EXPECT_EQ(A->paramIndex(), 0);
  EXPECT_EQ(B->paramIndex(), 1);
}

TEST_F(TypesFixture, GeneralizeSkipsShallowVars) {
  Type *Shallow = Ctx.freshVar(0); // At the generalization level.
  Type *Deep = Ctx.freshVar(1);
  TypeScheme S = Ctx.generalize(Ctx.makeTuple({Shallow, Deep}), 0);
  ASSERT_EQ(S.Params.size(), 1u);
  EXPECT_EQ(S.Params[0], Deep);
  EXPECT_FALSE(Shallow->isRigid());
}

TEST_F(TypesFixture, InstantiateClonesRigids) {
  Type *A = Ctx.freshVar(1);
  Type *F = Ctx.makeFun({A}, Ctx.makeData(Ctx.listInfo(), {A}));
  TypeScheme S = Ctx.generalize(F, 0);
  Type *I1 = Ctx.instantiate(S, 0);
  Type *I2 = Ctx.instantiate(S, 0);
  EXPECT_NE(I1, I2);
  EXPECT_TRUE(Ctx.unify(I1->arg(0), Ctx.intTy()));
  EXPECT_TRUE(Ctx.unify(I2->arg(0), Ctx.boolTy())); // Independent copies.
  // The scheme body itself is untouched (still rigid).
  EXPECT_TRUE(S.Body->resolved()->arg(0)->resolved()->isRigid());
}

TEST_F(TypesFixture, SubstituteSharesUnchangedSubtrees) {
  Type *A = Ctx.freshVar(0);
  A->makeRigid(0);
  Type *IntList = Ctx.makeData(Ctx.listInfo(), {Ctx.intTy()});
  Type *Pair = Ctx.makeTuple({IntList, A});
  std::unordered_map<Type *, Type *> M{{A, Ctx.boolTy()}};
  Type *Out = Ctx.substitute(Pair, M);
  EXPECT_NE(Out, Pair);
  EXPECT_EQ(Out->arg(0), IntList); // Shared: no rigid inside.
  EXPECT_EQ(Out->arg(1), Ctx.boolTy());
  // No change at all -> same node.
  EXPECT_EQ(Ctx.substitute(IntList, M), IntList);
}

TEST_F(TypesFixture, InstantiateCtorFields) {
  auto Fields =
      Ctx.instantiateCtorFields(Ctx.listInfo(), 1, {Ctx.intTy()});
  ASSERT_EQ(Fields.size(), 2u);
  EXPECT_EQ(Fields[0]->resolved(), Ctx.intTy());
  Type *Tail = Fields[1]->resolved();
  EXPECT_EQ(Tail->getKind(), TypeKind::Data);
  EXPECT_EQ(Tail->arg(0)->resolved(), Ctx.intTy());
}

TEST_F(TypesFixture, RenderForms) {
  EXPECT_EQ(Ctx.render(Ctx.intTy()), "int");
  EXPECT_EQ(Ctx.render(Ctx.makeTuple({Ctx.intTy(), Ctx.boolTy()})),
            "(int * bool)");
  EXPECT_EQ(Ctx.render(Ctx.makeData(Ctx.listInfo(), {Ctx.floatTy()})),
            "(float) list");
  EXPECT_EQ(Ctx.render(Ctx.makeRef(Ctx.intTy())), "int ref");
  EXPECT_EQ(Ctx.render(Ctx.makeFun({Ctx.intTy()}, Ctx.boolTy())),
            "(int) -> bool");
  Type *R = Ctx.freshVar(0);
  R->makeRigid(3);
  EXPECT_EQ(Ctx.render(R), "%3");
}

TEST_F(TypesFixture, DefaultFreeVars) {
  Type *V = Ctx.freshVar(0);
  Type *L = Ctx.makeData(Ctx.listInfo(), {V});
  Ctx.defaultFreeVars(L);
  EXPECT_EQ(V->resolved(), Ctx.unitTy());
  // Rigid vars stay.
  Type *R = Ctx.freshVar(0);
  R->makeRigid(0);
  Ctx.defaultFreeVars(R);
  EXPECT_TRUE(R->isRigid());
}

TEST_F(TypesFixture, CollectRigidVarsDedups) {
  Type *A = Ctx.freshVar(0);
  A->makeRigid(0);
  Type *T = Ctx.makeTuple({A, Ctx.makeData(Ctx.listInfo(), {A})});
  std::vector<Type *> Out;
  Ctx.collectRigidVars(T, Out);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], A);
}

TEST_F(TypesFixture, CtorLookup) {
  auto [Info, Idx] = Ctx.lookupCtor("Cons");
  EXPECT_EQ(Info, Ctx.listInfo());
  EXPECT_EQ(Idx, 1u);
  EXPECT_EQ(Ctx.lookupCtor("Nope").first, nullptr);
}

} // namespace
