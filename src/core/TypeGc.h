//===- core/TypeGc.h - Type GC routine closures -----------------*- C++ -*-===//
///
/// \file
/// The run-time *type GC routines* of paper section 3. During a collection
/// of a polymorphic program the collector builds closures that mirror the
/// structure of types:
///
///   const_gc                    -> Const node (ints, bools, ...)
///   trace_list_of(elem_gc)      -> Data node (generalized to any datatype,
///                                  paper Figure 3)
///   type gc routine for g       -> Fun node, from which the routines for a
///                                  callee lambda's type parameters are
///                                  extracted by path (paper Figure 4's
///                                  trace_result_of_g, generalized)
///
/// Nodes live in an arena that is reset when the collection ends — the
/// closures "reflect the creation of structures during execution" and are
/// rebuilt each collection, exactly as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_CORE_TYPEGC_H
#define TFGC_CORE_TYPEGC_H

#include "analysis/Reconstruct.h"
#include "ir/Ir.h"
#include "support/Arena.h"
#include "support/Stats.h"

#include <map>
#include <vector>

namespace tfgc {

struct TypeGc {
  enum class Kind : uint8_t {
    Const,  ///< Single-word non-pointer value (paper's const_gc).
    Record, ///< Tuple: Args = field routines (NumArgs of them).
    Data,   ///< Datatype: A = datatype id, Args = type-argument routines,
            ///< CtorFields = per-constructor field routines.
    Ref,    ///< Args[0] = element routine.
    Fun,    ///< Closure values: Args = parameter routines + result routine.
  };
  Kind K = Kind::Const;
  uint32_t A = 0;       ///< Data: datatype id; Fun: #params.
  uint32_t NumArgs = 0; ///< Length of Args.
  const TypeGc *const *Args = nullptr;
  /// Data only: per-constructor field routine arrays (CtorFieldCounts[i]
  /// entries each). Built when the node is created; recursive datatypes
  /// point back at this node.
  const TypeGc *const *const *CtorFields = nullptr;
  const uint32_t *CtorFieldCounts = nullptr;
  uint32_t NumCtors = 0;
};

/// Bindings for a function's type parameters during collection: Binds[i]
/// is the type GC routine for F.TypeParams[i].
struct TgEnv {
  const std::vector<Type *> *Params = nullptr;
  const TypeGc *const *Binds = nullptr;

  const TypeGc *lookup(Type *Rigid) const;
};

/// Builds type GC routine closures; one instance per collection.
class TypeGcEngine {
public:
  TypeGcEngine(TypeContext &Types, Stats &St) : Types(Types), St(St) {}

  /// Evaluates static type \p T under \p Env into a routine closure.
  const TypeGc *eval(Type *T, const TgEnv &Env);

  /// Walks \p Path through a routine (paper Figure 4: recovering a callee
  /// lambda's parameter routines from its function-type routine).
  const TypeGc *extract(const TypeGc *Root, const TypePath &Path);

  const TypeGc *constGc() { return &ConstNode; }

  /// Drops every node built during this collection.
  void reset();

  size_t nodesBuilt() const { return NumNodes; }

private:
  TypeContext &Types;
  Stats &St;
  Arena Nodes{16 * 1024};
  size_t NumNodes = 0;
  TypeGc ConstNode; // Kind::Const
  /// Memo for Data nodes so recursive datatypes tie the knot:
  /// (datatype id, arg nodes) -> node.
  std::map<std::pair<uint32_t, std::vector<const TypeGc *>>, TypeGc *>
      DataMemo;

  TypeGc *alloc();
  const TypeGc *const *copyArgs(const std::vector<const TypeGc *> &Args);
};

} // namespace tfgc

#endif // TFGC_CORE_TYPEGC_H
