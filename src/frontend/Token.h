//===- frontend/Token.h - MiniML tokens -------------------------*- C++ -*-===//
///
/// \file
/// Token kinds produced by the MiniML lexer.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_FRONTEND_TOKEN_H
#define TFGC_FRONTEND_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace tfgc {

enum class TokenKind : uint8_t {
  Eof,
  Error,

  IntLit,   // 42
  FloatLit, // 3.14
  Ident,    // append  (lowercase-initial)
  CapIdent, // Cons    (uppercase-initial: constructors)
  TyVar,    // 'a

  // Keywords.
  KwLet,
  KwIn,
  KwEnd,
  KwFun,
  KwAnd,
  KwVal,
  KwIf,
  KwThen,
  KwElse,
  KwCase,
  KwOf,
  KwFn,
  KwDatatype,
  KwRef,
  KwTrue,
  KwFalse,
  KwAndalso,
  KwOrelse,
  KwMod,
  KwNot,
  KwPrint,

  // Punctuation and operators.
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Pipe,
  DArrow,     // =>
  Arrow,      // ->
  Equal,      // =
  NotEqual,   // <>
  Less,       // <
  Greater,    // >
  LessEq,     // <=
  GreaterEq,  // >=
  Plus,       // +
  Minus,      // -
  Star,       // *
  Slash,      // /
  FPlus,      // +.
  FMinus,     // -.
  FStar,      // *.
  FSlash,     // /.
  FLess,      // <.
  FEqual,     // =.
  ColonColon, // ::
  Colon,      // :
  Assign,     // :=
  Bang,       // !
  Tilde,      // ~ (negation)
  Underscore, // _
};

/// Returns a human-readable spelling for diagnostics.
const char *tokenKindName(TokenKind Kind);

struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string Text;   // identifier / tyvar spelling
  int64_t IntValue = 0;
  double FloatValue = 0.0;
};

} // namespace tfgc

#endif // TFGC_FRONTEND_TOKEN_H
