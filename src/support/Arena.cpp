//===- support/Arena.cpp --------------------------------------------------===//

#include "support/Arena.h"

using namespace tfgc;

void *Arena::allocate(size_t Bytes, size_t Align) {
  assert(Align != 0 && (Align & (Align - 1)) == 0 && "alignment not power of 2");
  uintptr_t P = reinterpret_cast<uintptr_t>(Cur);
  uintptr_t Aligned = (P + Align - 1) & ~(uintptr_t)(Align - 1);
  size_t Needed = (Aligned - P) + Bytes;
  if (Cur == nullptr || Needed > (size_t)(End - Cur)) {
    addBlock(Bytes + Align);
    P = reinterpret_cast<uintptr_t>(Cur);
    Aligned = (P + Align - 1) & ~(uintptr_t)(Align - 1);
    Needed = (Aligned - P) + Bytes;
  }
  Cur += Needed;
  BytesAllocated += Bytes;
  return reinterpret_cast<void *>(Aligned);
}

void Arena::reset() {
  Blocks.clear();
  Cur = End = nullptr;
  BytesAllocated = 0;
}

void Arena::addBlock(size_t MinBytes) {
  size_t Size = MinBytes > BlockBytes ? MinBytes : BlockBytes;
  Blocks.push_back(std::make_unique<char[]>(Size));
  Cur = Blocks.back().get();
  End = Cur + Size;
}
