file(REMOVE_RECURSE
  "CMakeFiles/bench_heap_space.dir/bench_heap_space.cpp.o"
  "CMakeFiles/bench_heap_space.dir/bench_heap_space.cpp.o.d"
  "bench_heap_space"
  "bench_heap_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heap_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
