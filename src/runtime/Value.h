//===- runtime/Value.h - Run-time value representation ----------*- C++ -*-===//
///
/// \file
/// Run-time words under the two value models the experiments compare.
///
/// Tag-free model (the paper's): a word is a raw 64-bit integer, a raw
/// aligned pointer to a heap payload, an unboxed double, or a small
/// immediate (nullary datatype constructor, bool, unit). Nothing about a
/// word says which — only the compiler-generated GC metadata knows.
///
/// Tagged model (the baseline): the low bit distinguishes immediates
/// (bit 1, value in the upper 63 bits) from pointers (8-byte aligned).
/// Every heap object carries a one-word header at payload[-1]. Doubles
/// are self-tagged into the remaining even, non-aligned bit patterns
/// (exponent-biased rotation; see below) and only box when the exponent
/// is out of range. This is the classic SML/NJ-style scheme the paper
/// wants to eliminate.
///
/// Heap object payload layouts (identical across models; tagged adds the
/// header in front and tags each stored word):
///   tuple    [f0 .. fn-1]
///   data     [discriminant, f0 .. fk-1]   (nullary ctors are immediates)
///   closure  [code address, e0 .. em-1]
///   ref      [v]
///   floatbox [bits]                        (tagged model only)
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_RUNTIME_VALUE_H
#define TFGC_RUNTIME_VALUE_H

#include <cstdint>
#include <cstring>

namespace tfgc {

using Word = uint64_t;

enum class ValueModel : uint8_t { TagFree, Tagged };

/// Nullary-constructor immediates are below this bound; heap pointers are
/// real addresses and always far above it.
inline constexpr Word ImmediateCtorLimit = 2048;

// -- Tagged-model helpers ---------------------------------------------------

inline Word tagInt(int64_t V) { return ((uint64_t)V << 1) | 1; }
inline int64_t untagInt(Word W) { return (int64_t)W >> 1; }
inline bool isTaggedImmediate(Word W) { return (W & 1) != 0; }
/// In the tagged model a non-null 8-byte-aligned word is a pointer.
/// Odd words are immediates; the remaining even non-aligned patterns are
/// reserved for self-tagged floats (below), which the collectors must
/// treat as non-pointers.
inline bool isTaggedPointer(Word W) { return W != 0 && (W & 7) == 0; }

// -- Float bit casts ----------------------------------------------------------

inline Word floatToWord(double D) {
  Word W;
  std::memcpy(&W, &D, sizeof(W));
  return W;
}
inline double wordToFloat(Word W) {
  double D;
  std::memcpy(&D, &W, sizeof(D));
  return D;
}

// -- Float self-tagging (tagged model) ----------------------------------------
//
// Melançon/Serrano/Feeley-style value tagging for doubles: bias the IEEE
// exponent by +256 and rotate left 3, so every double whose biased
// exponent lands in [1024,1536) — i.e. |x| in [2^-255, 2^257), either
// sign — encodes as a word with low bits 0b10. That pattern is disjoint
// from tagged immediates (odd) and heap pointers (8-byte aligned), so the
// tagged tracers and the generational write barrier reject self-tagged
// floats with the same isTaggedPointer test they already use. ±0.0 get
// the reserved words 4 and 12 ((W & 7) == 4, also non-pointer,
// non-immediate). NaNs, infinities, denormals and extreme exponents
// don't fit and fall back to the heap float box (vm.float_boxes counts
// exactly those).

inline constexpr Word FloatSelfTagBias = (Word)1 << 60;
inline constexpr Word FloatPosZeroWord = 4;
inline constexpr Word FloatNegZeroWord = 12;

/// Encodes \p D as a self-tagged word. Returns false (W untouched) when
/// the exponent is out of the self-taggable range.
inline bool trySelfTagFloat(double D, Word &W) {
  Word Bits = floatToWord(D);
  if ((Bits << 1) == 0) { // +0.0 / -0.0: exponent 0, reserved words.
    W = Bits == 0 ? FloatPosZeroWord : FloatNegZeroWord;
    return true;
  }
  Word E = Bits + FloatSelfTagBias;
  Word R = (E << 3) | (E >> 61);
  if ((R & 3) != 2)
    return false;
  W = R;
  return true;
}

inline bool isSelfTagFloat(Word W) {
  return (W & 3) == 2 || W == FloatPosZeroWord || W == FloatNegZeroWord;
}

/// Exact inverse of trySelfTagFloat (bit-preserving).
inline double selfTagToFloat(Word W) {
  if (W == FloatPosZeroWord)
    return 0.0;
  if (W == FloatNegZeroWord)
    return -0.0;
  Word E = (W >> 3) | (W << 61);
  return wordToFloat(E - FloatSelfTagBias);
}

// -- Tagged-model object headers ---------------------------------------------

enum class ObjKind : uint8_t {
  Scan = 0, ///< Scan every payload word by its tag bit.
  Raw = 1,  ///< No pointers (float box).
};

inline Word makeHeader(uint32_t PayloadWords, ObjKind Kind) {
  return ((Word)PayloadWords << 8) | (Word)Kind;
}
inline uint32_t headerSize(Word Header) { return (uint32_t)(Header >> 8); }
inline ObjKind headerKind(Word Header) {
  return (ObjKind)(Header & 0xff);
}

} // namespace tfgc

#endif // TFGC_RUNTIME_VALUE_H
