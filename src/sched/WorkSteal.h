//===- sched/WorkSteal.h - Chase-Lev work-stealing deque --------*- C++ -*-===//
///
/// \file
/// A growable single-owner work-stealing deque (Chase & Lev, SPAA'05) used
/// by the parallel trace phase: each GC worker owns one deque, pushes and
/// pops gray work at the bottom, and steals from the top of other workers'
/// deques when its own runs dry.
///
/// Memory-ordering note: the orderings here are deliberately *stronger*
/// than the minimal set proven sufficient by Le et al. (PPoPP'13). That
/// proof leans on standalone atomic_thread_fence, which ThreadSanitizer
/// does not model — the fence-based variant reports false races that
/// would make the TSan CI leg useless. Indices use seq_cst, slots are
/// atomic with relaxed access (slot cells are genuinely racy when a
/// steal and a wrapping push collide; the Top CAS arbitrates). The deque
/// carries coarse GC work units, not mutator-path operations, so the
/// stronger orderings cost nothing measurable.
///
/// Retired ring buffers are retained until deque destruction instead of
/// being freed on growth, which makes a racing steal's buffer pointer
/// valid for the whole collection (the classic Chase-Lev reclamation
/// dodge; a deque's rings total at most twice the peak element count).
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_SCHED_WORKSTEAL_H
#define TFGC_SCHED_WORKSTEAL_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace tfgc {

template <typename T> class WorkStealDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "deque elements are copied through atomic slots");

  struct Ring {
    int64_t Cap;
    std::unique_ptr<std::atomic<T>[]> Slots;
    explicit Ring(int64_t C) : Cap(C), Slots(new std::atomic<T>[C]) {}
    T get(int64_t I) const {
      return Slots[I & (Cap - 1)].load(std::memory_order_relaxed);
    }
    void put(int64_t I, T V) {
      Slots[I & (Cap - 1)].store(V, std::memory_order_relaxed);
    }
  };

public:
  explicit WorkStealDeque(int64_t InitialCap = 64) {
    Rings.push_back(std::make_unique<Ring>(InitialCap));
    Buf.store(Rings.back().get(), std::memory_order_relaxed);
  }

  /// Owner only.
  void push(T V) {
    int64_t B = Bottom.load(std::memory_order_relaxed);
    int64_t Tp = Top.load(std::memory_order_acquire);
    Ring *R = Buf.load(std::memory_order_relaxed);
    if (B - Tp >= R->Cap) {
      R = grow(R, Tp, B);
    }
    R->put(B, V);
    Bottom.store(B + 1, std::memory_order_seq_cst);
  }

  /// Owner only. Returns false when the deque is empty (or the last
  /// element was lost to a concurrent steal).
  bool pop(T &Out) {
    int64_t B = Bottom.load(std::memory_order_relaxed) - 1;
    Ring *R = Buf.load(std::memory_order_relaxed);
    Bottom.store(B, std::memory_order_seq_cst);
    int64_t Tp = Top.load(std::memory_order_seq_cst);
    if (Tp > B) {
      Bottom.store(B + 1, std::memory_order_seq_cst);
      return false;
    }
    Out = R->get(B);
    if (Tp == B) {
      // Last element: race the thieves for it.
      bool Won = Top.compare_exchange_strong(Tp, Tp + 1,
                                             std::memory_order_seq_cst);
      Bottom.store(B + 1, std::memory_order_seq_cst);
      return Won;
    }
    return true;
  }

  /// Any thread. Returns false when empty or the steal lost a race.
  bool steal(T &Out) {
    int64_t Tp = Top.load(std::memory_order_seq_cst);
    int64_t B = Bottom.load(std::memory_order_seq_cst);
    if (Tp >= B)
      return false;
    Ring *R = Buf.load(std::memory_order_acquire);
    T V = R->get(Tp);
    if (!Top.compare_exchange_strong(Tp, Tp + 1, std::memory_order_seq_cst))
      return false;
    Out = V;
    return true;
  }

  /// Racy size estimate — only good for "is there plausibly work here"
  /// steal-target selection and end-of-phase termination rechecks.
  bool emptyApprox() const {
    return Top.load(std::memory_order_seq_cst) >=
           Bottom.load(std::memory_order_seq_cst);
  }

private:
  Ring *grow(Ring *Old, int64_t Tp, int64_t B) {
    auto Fresh = std::make_unique<Ring>(Old->Cap * 2);
    for (int64_t I = Tp; I < B; ++I)
      Fresh->put(I, Old->get(I));
    Ring *R = Fresh.get();
    Rings.push_back(std::move(Fresh));
    Buf.store(R, std::memory_order_release);
    return R;
  }

  std::atomic<int64_t> Top{0};
  std::atomic<int64_t> Bottom{0};
  std::atomic<Ring *> Buf{nullptr};
  /// All rings ever used, retained so thieves never chase freed memory.
  /// Owner-only mutation (grow); thieves reach rings through Buf.
  std::vector<std::unique_ptr<Ring>> Rings;
};

} // namespace tfgc

#endif // TFGC_SCHED_WORKSTEAL_H
