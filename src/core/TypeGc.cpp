//===- core/TypeGc.cpp ----------------------------------------------------===//

#include "core/TypeGc.h"

#include <cassert>

using namespace tfgc;

const TypeGc *TgEnv::lookup(Type *Rigid) const {
  assert(Params && "rigid var with no bindings in scope");
  for (size_t I = 0; I < Params->size(); ++I)
    if ((*Params)[I] == Rigid)
      return Binds[I];
  assert(false && "rigid var not among the function's type parameters");
  return nullptr;
}

TypeGc *TypeGcEngine::alloc() {
  ++NumNodes;
  St.add(StatId::GcTgNodes);
  return PersistentMode ? PersistentNodes.make<TypeGc>()
                        : Nodes.make<TypeGc>();
}

const TypeGc *const *
TypeGcEngine::copyArgs(const std::vector<const TypeGc *> &Args) {
  if (Args.empty())
    return nullptr;
  Arena &A = PersistentMode ? PersistentNodes : Nodes;
  auto **Arr = static_cast<const TypeGc **>(
      A.allocate(sizeof(TypeGc *) * Args.size(), alignof(TypeGc *)));
  for (size_t I = 0; I < Args.size(); ++I)
    Arr[I] = Args[I];
  return Arr;
}

bool TypeGcEngine::isGround(Type *T) {
  T = T->resolved();
  switch (T->getKind()) {
  case TypeKind::Int:
  case TypeKind::Bool:
  case TypeKind::Unit:
  case TypeKind::Float:
    return true;
  case TypeKind::Var:
    return false;
  default:
    break;
  }
  auto It = GroundMemo.find(T);
  if (It != GroundMemo.end())
    return It->second;
  bool G = true;
  for (Type *A : T->args())
    G = G && isGround(A);
  if (G && T->getKind() == TypeKind::Fun)
    G = isGround(T->result());
  GroundMemo.emplace(T, G);
  return G;
}

const TypeGc *TypeGcEngine::evalImpl(Type *T, const TgEnv &Env) {
  T = T->resolved();
  switch (T->getKind()) {
  case TypeKind::Int:
  case TypeKind::Bool:
  case TypeKind::Unit:
  case TypeKind::Float:
    return &ConstNode;
  case TypeKind::Var:
    assert(T->isRigid() && "free type variable at collection time");
    return Env.lookup(T);
  default:
    break;
  }

  // Ground structured types route through the cross-collection cache:
  // their closure is independent of Env and of which collection this is.
  if (CacheEnabled && isGround(T)) {
    auto It = GroundCache.find(T);
    if (It != GroundCache.end()) {
      St.add(StatId::GcTgCacheHits);
      return It->second;
    }
    St.add(StatId::GcTgCacheMisses);
    bool WasPersistent = PersistentMode;
    PersistentMode = true;
    const TypeGc *N = evalUncached(T, Env);
    PersistentMode = WasPersistent;
    GroundCache.emplace(T, N);
    return N;
  }
  return evalUncached(T, Env);
}

const TypeGc *TypeGcEngine::evalUncached(Type *T, const TgEnv &Env) {
  switch (T->getKind()) {
  case TypeKind::Int:
  case TypeKind::Bool:
  case TypeKind::Unit:
  case TypeKind::Float:
    return &ConstNode;
  case TypeKind::Var:
    assert(T->isRigid() && "free type variable at collection time");
    return Env.lookup(T);
  case TypeKind::Tuple: {
    std::vector<const TypeGc *> Fields;
    Fields.reserve(T->numArgs());
    for (Type *A : T->args())
      Fields.push_back(eval(A, Env));
    TypeGc *N = alloc();
    N->K = TypeGc::Kind::Record;
    N->NumArgs = T->numArgs();
    N->Args = copyArgs(Fields);
    return N;
  }
  case TypeKind::Ref: {
    std::vector<const TypeGc *> Elem{eval(T->refElem(), Env)};
    TypeGc *N = alloc();
    N->K = TypeGc::Kind::Ref;
    N->NumArgs = 1;
    N->Args = copyArgs(Elem);
    return N;
  }
  case TypeKind::Fun: {
    std::vector<const TypeGc *> Parts;
    for (Type *A : T->args())
      Parts.push_back(eval(A, Env));
    Parts.push_back(eval(T->result(), Env));
    TypeGc *N = alloc();
    N->K = TypeGc::Kind::Fun;
    N->A = T->numArgs();
    N->NumArgs = (uint32_t)Parts.size();
    N->Args = copyArgs(Parts);
    return N;
  }
  case TypeKind::Data: {
    DatatypeInfo *Info = T->data();
    std::vector<const TypeGc *> ArgTgs;
    ArgTgs.reserve(T->numArgs());
    for (Type *A : T->args())
      ArgTgs.push_back(eval(A, Env));

    // All-nullary datatypes are immediates everywhere.
    bool AllNullary = true;
    for (const CtorInfo &C : Info->Ctors)
      if (!C.Fields.empty())
        AllNullary = false;
    if (AllNullary)
      return &ConstNode;

    DataKey Key{Info->Id, ArgTgs};
    // Persistent nodes are valid in any collection, so both modes may hit
    // the persistent memo; only normal mode may touch the per-collection
    // one (a persistent node must never point at a node that dies at
    // reset()).
    auto PIt = PersistentDataMemo.find(Key);
    if (PIt != PersistentDataMemo.end()) {
      St.add(StatId::GcTgMemoHits);
      return PIt->second;
    }
    if (!PersistentMode) {
      auto It = DataMemo.find(Key);
      if (It != DataMemo.end()) {
        St.add(StatId::GcTgMemoHits);
        return It->second;
      }
    }

    TypeGc *N = alloc();
    N->K = TypeGc::Kind::Data;
    N->A = Info->Id;
    N->NumArgs = (uint32_t)ArgTgs.size();
    N->Args = copyArgs(ArgTgs);
    // Tie the knot before building constructor fields so that recursive
    // datatypes (lists, trees) reference this very node.
    DataMemoMap &Memo = PersistentMode ? PersistentDataMemo : DataMemo;
    Memo.emplace(std::move(Key), N);

    TgEnv DataEnv;
    DataEnv.Params = &Info->Params;
    DataEnv.Binds = N->Args;

    Arena &A = PersistentMode ? PersistentNodes : Nodes;
    N->NumCtors = (uint32_t)Info->Ctors.size();
    auto **CtorArrs = static_cast<const TypeGc *const **>(
        A.allocate(sizeof(void *) * N->NumCtors, alignof(void *)));
    auto *Counts = static_cast<uint32_t *>(
        A.allocate(sizeof(uint32_t) * N->NumCtors, alignof(uint32_t)));
    for (uint32_t C = 0; C < N->NumCtors; ++C) {
      const CtorInfo &Ctor = Info->Ctors[C];
      Counts[C] = (uint32_t)Ctor.Fields.size();
      std::vector<const TypeGc *> Fields;
      Fields.reserve(Ctor.Fields.size());
      for (Type *F : Ctor.Fields)
        Fields.push_back(eval(F, DataEnv));
      CtorArrs[C] = copyArgs(Fields);
    }
    N->CtorFields = CtorArrs;
    N->CtorFieldCounts = Counts;
    return N;
  }
  }
  return &ConstNode;
}

const TypeGc *TypeGcEngine::extract(const TypeGc *Root, const TypePath &Path) {
  const TypeGc *Cur = Root;
  for (uint32_t Step : Path) {
    assert(Cur && Step < Cur->NumArgs && "extraction path mismatch");
    Cur = Cur->Args[Step];
  }
  return Cur;
}

void TypeGcEngine::reset() {
  Nodes.reset();
  DataMemo.clear();
  NumNodes = 0;
}

void TypeGcEngine::resetAll() {
  reset();
  PersistentNodes.reset();
  PersistentDataMemo.clear();
  GroundCache.clear();
  GroundMemo.clear();
}
