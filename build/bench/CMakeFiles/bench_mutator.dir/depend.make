# Empty dependencies file for bench_mutator.
# This may be replaced when dependencies are built.
