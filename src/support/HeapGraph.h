//===- support/HeapGraph.h - Typed heap-graph dumps -------------*- C++ -*-===//
///
/// \file
/// Typed object-graph capture riding the tag-free trace. The paper's
/// machinery reconstructs every live object's shape at collection time;
/// this subsystem additionally records, during selected collections, the
/// *edges* the tracers follow (parent object, field index, child object)
/// and streams the resulting typed graph to a binary dump file
/// (`--heap-dump=FILE`), one self-contained chunk per captured
/// collection. `tools/heap_graph_report.py` decodes, checks, and diffs
/// the chunks.
///
/// Capture policy: graphs are captured at **full and major** collections
/// only (a minor's trace covers the nursery, so its "graph" would dangle
/// into the untraced tenured set — the same reason the retention pass
/// skips minors), every `--heap-dump-every=N`-th eligible collection.
/// Chunks are serialized and flushed as soon as the collection finishes,
/// so a run that exits abnormally (e.g. verify-violation exit 3) still
/// leaves every captured chunk decodable on disk; the Cli artifact-flush
/// path calls finish() to close the stream on every exit.
///
/// Each chunk carries, besides nodes (address, census kind, alloc site —
/// whose static type string reconstructs the node's type — and size) and
/// edges (field index), the per-site *retained* sizes computed by a
/// dominator pass over the captured graph, their deltas against the
/// previous capture (the differential leak-attribution signal), and the
/// cumulative per-site lifetime statistics the profiler maintains
/// (survival curves, death-age histograms, promotion attribution).
///
/// Chunk framing: `"TFGH"` magic, u8 version, u8 flags (bit0 =
/// tagged headers), u16 reserved, u32 little-endian body length, body.
/// Body fields are LEB128 varints (zigzag for signed); strings are
/// length-prefixed. See serializeChunk() for the field order — the
/// Python decoder mirrors it exactly.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_SUPPORT_HEAPGRAPH_H
#define TFGC_SUPPORT_HEAPGRAPH_H

#include "support/HeapProfile.h"

#include <array>
#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

namespace tfgc {

/// One row of the per-site retained-size table of a capture.
struct SiteRetainedRow {
  uint32_t Site = 0; ///< numSites() == the unknown bucket.
  uint64_t LiveObjects = 0;
  uint64_t LiveWords = 0;
  uint64_t RetainedBytes = 0;
  /// Retained delta vs the previous capture (0 for the first capture;
  /// negative when the site shrank). Ranking by this column is the
  /// leak-suspect report.
  int64_t DeltaBytes = 0;
  /// Growth vs the FIRST capture (in-memory only, not serialized — the
  /// report tool recomputes deltas across chunks). Consecutive-capture
  /// deltas are noisy: a stack root transiently pointing into a
  /// structure chops its owner's dominator subtree for one capture, so
  /// the owner's per-interval delta can spike when the root retreats.
  /// First-to-last growth averages such transients out; rankedDeltas()
  /// ranks by it, matching heap_graph_report.py --diff.
  int64_t GrowthBytes = 0;
  /// Live-object growth vs the first capture; breaks retained-growth
  /// ties in rankedDeltas(): a dominator that merely holds a growing
  /// structure (one ref cell) stays at constant object count, while
  /// the site actually leaking accumulates objects.
  int64_t GrowthObjects = 0;
};

class HeapGraph {
public:
  /// Opens the dump stream. Returns false (and sets \p Err) when the
  /// file cannot be created.
  bool openFile(const std::string &Path, std::string *Err);

  /// Capture every N-th eligible (full/major) collection; 0/1 = all.
  void setEvery(uint64_t N) { Every = N ? N : 1; }

  /// Also hand each serialized chunk (framed, same bytes as the file)
  /// to \p S — the introspection server republishes the latest one at
  /// /heapdump.
  void setChunkSink(std::function<void(const std::string &)> S) {
    Sink = std::move(S);
  }

  /// Site/function tables and the header model, borrowed from the
  /// profiler's configuration (stable after driver setup).
  void configure(const std::vector<AllocSiteDesc> *Sites,
                 const std::vector<std::string> *FuncNames,
                 bool TaggedHeaders);

  /// True once a destination (file or sink) exists — without one every
  /// capture hook is a no-op.
  bool active() const { return OutOpen || (bool)Sink; }

  // -- Capture lifecycle (driven by the HeapProfiler) ----------------------

  /// Called at the start of every collection the profiler sees; returns
  /// true when this collection's graph should be captured (eligible
  /// kind, every-N gate passes, a destination exists). Clears the
  /// capture buffers when it fires.
  bool beginCapture(GcEventKind Kind);

  /// A copying grow-loop retraces from scratch; the aborted round's
  /// partial node/edge capture is dropped.
  void resetCapture();

  /// First-visit hook (new address, i.e. post-move).
  void recordNode(Word Addr, uint32_t Site, CensusKind K, uint64_t Words) {
    Nodes.push_back({Addr, Words, Site, (uint8_t)K});
  }

  /// One traced reference: \p Parent and \p Child are post-move
  /// addresses; \p Field is the payload slot index in the parent.
  /// Non-reference children (immediates) are filtered at finalize.
  void recordEdge(Word Parent, uint32_t Field, Word Child) {
    Edges.push_back({Parent, Child, Field});
  }

  /// Ends a capture: resolves edges against the node set, runs the
  /// dominator pass for per-site retained sizes, serializes the chunk,
  /// appends it to the dump file (flushed immediately) and the sink.
  /// \p Lifetimes/\p AllocCounts may be empty when site tracking is off.
  void finalizeCapture(
      uint64_t Seq, GcEventKind Kind, uint64_t CoveredBytes,
      const std::vector<HeapRoot> &Roots,
      const std::array<HeapProfiler::Tally, NumCensusKinds> &ByKind,
      const std::vector<HeapProfiler::SiteLifetime> &Lifetimes,
      const std::vector<uint64_t> &AllocCounts);

  /// Flushes and closes the dump stream (idempotent). Wired into the
  /// Cli artifact-flush path so abnormal exits keep the dump.
  void finish();

  // -- Results (tests, introspection) --------------------------------------

  struct CaptureInfo {
    bool Valid = false;
    uint64_t Seq = 0;
    GcEventKind Kind = GcEventKind::Full;
    uint64_t Nodes = 0;
    uint64_t Edges = 0;        ///< Edges that resolved to node pairs.
    uint64_t DroppedEdges = 0; ///< Immediate-valued children, filtered.
    uint64_t RootRefs = 0;     ///< Roots that resolved to a node.
    std::array<HeapProfiler::Tally, NumCensusKinds> ByKind{};
    /// Ranked by RetainedBytes descending.
    std::vector<SiteRetainedRow> Retained;
  };
  const CaptureInfo &lastCapture() const { return Last; }
  uint64_t chunksWritten() const { return Chunks; }

  /// The last capture's rows re-ranked by retained-size growth — the
  /// leak-suspect order `heap_graph_report.py --diff` prints.
  std::vector<SiteRetainedRow> rankedDeltas() const;

private:
  struct NodeRec {
    Word Addr;
    uint64_t Words;
    uint32_t Site;
    uint8_t Kind;
  };
  struct EdgeRec {
    Word Parent;
    Word Child;
    uint32_t Field;
  };

  std::string serializeChunk(
      uint64_t Seq, GcEventKind Kind, uint64_t CoveredBytes,
      const std::vector<std::pair<uint32_t, uint32_t>>
          &RootsResolved, // (root idx, node idx)
      const std::vector<HeapRoot> &Roots,
      const std::vector<std::array<uint32_t, 3>> &E,
      const std::vector<HeapProfiler::SiteLifetime> &Lifetimes,
      const std::vector<uint64_t> &AllocCounts,
      const std::array<HeapProfiler::Tally, NumCensusKinds> &FooterByKind)
      const;

  const std::vector<AllocSiteDesc> *Sites = nullptr;
  const std::vector<std::string> *FuncNames = nullptr;
  bool TaggedHeaders = false;

  std::ofstream Out;
  bool OutOpen = false;
  std::function<void(const std::string &)> Sink;
  uint64_t Every = 1;
  uint64_t EligibleSeen = 0;
  uint64_t Chunks = 0;

  std::vector<NodeRec> Nodes;
  std::vector<EdgeRec> Edges;

  /// Previous capture's retained-by-site (index = site, last = unknown),
  /// for the delta column.
  std::vector<uint64_t> PrevRetained;
  std::vector<uint64_t> FirstRetained;
  std::vector<uint64_t> FirstLiveObjects;
  bool HavePrev = false;
  bool HaveFirst = false;

  CaptureInfo Last;
};

} // namespace tfgc

#endif // TFGC_SUPPORT_HEAPGRAPH_H
