//===- tests/heap_graph_test.cpp - Heap-graph + lifetime tests ------------===//
///
/// Covers the typed heap-graph capture (support/HeapGraph.h) and the
/// profiler's lifetime tracking: graph/census agreement for every
/// strategy and algorithm under post-GC verification, age-histogram
/// totals, survival-curve monotonicity, promotion attribution summing
/// exactly to gc.promoted_words, the minor-collection capture skip, the
/// every-N gate, and differential leak attribution ranking a planted
/// unbounded cache as suspect #1.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "support/HeapGraph.h"
#include "support/HeapProfile.h"
#include "workloads/Programs.h"

#include <string>

using namespace tfgc;
using namespace tfgc::test;
namespace wl = tfgc::workloads;

namespace {

/// An unbounded memo cache: the cons onto !cache in memo() is the
/// planted leak (mirrors examples/programs/leaky_cache.mml); scratch
/// data churns and dies young.
const char *LeakySrc = R"(
fun scratch (n : int) : int list =
  if n = 0 then [] else (n * 7) mod 93 :: scratch (n - 1);
fun sum (xs : int list) : int =
  case xs of Nil => 0 | Cons(x, r) => x + sum r;
val cache = ref ([] : int list);
fun memo (key : int) : int =
  let val answer = (key + sum (scratch 10)) mod 1000000007 in
    (cache := answer :: !cache; answer)
  end;
fun serve (i : int) (acc : int) : int =
  if i = 0 then acc
  else serve (i - 1) ((acc + memo i) mod 1000000007);
serve 400 0 + sum (!cache)
)";

struct GraphRun {
  Stats St;
  std::unique_ptr<CompiledProgram> P;
  std::unique_ptr<Collector> Col;
  HeapProfiler Prof;
  HeapGraph Graph;
  uint64_t SinkChunks = 0;
};

/// Runs \p Source with the profiler and (optionally) a sink-backed heap
/// graph attached, by default under stress so collections are frequent.
std::unique_ptr<GraphRun>
runGraphed(const std::string &Source, GcStrategy S, GcAlgorithm A,
           size_t HeapBytes = 1 << 14, bool Verify = false,
           bool AttachGraph = true, uint64_t Every = 1,
           size_t NurseryBytes = 0, bool Stress = true) {
  auto R = std::make_unique<GraphRun>();
  Compiled C = compile(Source);
  EXPECT_TRUE(C.P) << C.Error;
  if (!C.P)
    return nullptr;
  R->P = std::move(C.P);
  std::string Error;
  R->Col =
      R->P->makeCollector(S, A, HeapBytes, R->St, &Error, NurseryBytes);
  EXPECT_TRUE(R->Col) << Error;
  if (!R->Col)
    return nullptr;
  R->Col->setVerifyAfterGc(Verify);
  attachHeapProfiler(*R->P, S, *R->Col, R->Prof);
  if (AttachGraph) {
    // Sink-only destination: no file needed, chunks count via the sink.
    GraphRun *RP = R.get();
    R->Graph.setChunkSink([RP](const std::string &) { ++RP->SinkChunks; });
    R->Graph.setEvery(Every);
    R->Prof.setHeapGraph(&R->Graph);
  }
  Vm M(R->P->Prog, R->P->Image, *R->P->Types, *R->Col,
       defaultVmOptions(S, /*GcStress=*/Stress));
  RunResult Run = M.run();
  EXPECT_TRUE(Run.Ok) << Run.Error << " under " << gcStrategyName(S);
  return R;
}

uint64_t byKindObjects(
    const std::array<HeapProfiler::Tally, NumCensusKinds> &ByKind) {
  uint64_t N = 0;
  for (const HeapProfiler::Tally &T : ByKind)
    N += T.Objects;
  return N;
}

uint64_t byKindWords(
    const std::array<HeapProfiler::Tally, NumCensusKinds> &ByKind) {
  uint64_t N = 0;
  for (const HeapProfiler::Tally &T : ByKind)
    N += T.Words;
  return N;
}

} // namespace

TEST(HeapGraph, GraphInvariantsEveryStrategyAndAlgorithmUnderVerify) {
  // The core guarantee: a captured graph is a faithful census — its
  // node records sum, per reconstructed kind, to exactly the tallies the
  // profiler counted during the same trace, and the per-site retained
  // table covers every live object once. Verify is on, so the pass that
  // re-runs the tracers must not leak nodes or edges into the capture.
  for (GcStrategy S : AllStrategies)
    for (GcAlgorithm A : AllAlgorithms) {
      std::string Label = std::string(gcStrategyName(S)) + "/" +
                          gcAlgorithmName(A);
      auto R = runGraphed(LeakySrc, S, A, 1 << 14, /*Verify=*/true,
                          /*AttachGraph=*/true, /*Every=*/1,
                          A == GcAlgorithm::Generational ? 1 << 12 : 0);
      ASSERT_TRUE(R) << Label;
      EXPECT_EQ(R->St.get(StatId::GcVerifyViolations), 0u) << Label;
      ASSERT_GT(R->Graph.chunksWritten(), 0u) << Label;
      EXPECT_EQ(R->Graph.chunksWritten(), R->SinkChunks) << Label;

      const HeapGraph::CaptureInfo &Cap = R->Graph.lastCapture();
      ASSERT_TRUE(Cap.Valid) << Label;
      EXPECT_NE(Cap.Kind, GcEventKind::Minor) << Label;
      ASSERT_GT(Cap.Nodes, 0u) << Label;
      EXPECT_EQ(byKindObjects(Cap.ByKind), Cap.Nodes) << Label;

      // Retained rows: live tallies partition the node set, the ranking
      // is by retained size descending, and no site retains more than
      // the whole captured heap.
      uint64_t RowObjects = 0, RowWords = 0, PrevRetained = ~0ull;
      for (const SiteRetainedRow &Row : Cap.Retained) {
        RowObjects += Row.LiveObjects;
        RowWords += Row.LiveWords;
        EXPECT_LE(Row.RetainedBytes, PrevRetained) << Label;
        EXPECT_LE(Row.RetainedBytes,
                  byKindWords(Cap.ByKind) * sizeof(Word))
            << Label;
        PrevRetained = Row.RetainedBytes;
      }
      EXPECT_EQ(RowObjects, Cap.Nodes) << Label;
      EXPECT_EQ(RowWords, byKindWords(Cap.ByKind)) << Label;

      // Full-heap algorithms: the last collection is the last capture,
      // so the graph-derived census must equal the snapshot's census.
      if (A != GcAlgorithm::Generational) {
        const HeapProfiler::Snapshot &Snap = R->Prof.snapshot();
        ASSERT_TRUE(Snap.Valid) << Label;
        EXPECT_EQ(Cap.Nodes, Snap.Objects) << Label;
        for (size_t I = 0; I < NumCensusKinds; ++I) {
          EXPECT_EQ(Cap.ByKind[I].Objects, Snap.ByKind[I].Objects)
              << Label << " kind " << censusKindName((CensusKind)I);
          EXPECT_EQ(Cap.ByKind[I].Words, Snap.ByKind[I].Words)
              << Label << " kind " << censusKindName((CensusKind)I);
        }
        // A rooted object graph has root references, and every non-root
        // node was reached over a recorded edge: edges + roots >= nodes.
        EXPECT_GE(Cap.Edges + Cap.RootRefs, Cap.Nodes) << Label;
        EXPECT_GT(Cap.RootRefs, 0u) << Label;
      }
    }
}

TEST(HeapGraph, AgeHistogramTotalsMatchObjectsUnderVerify) {
  // Every object visited by a collection contributes exactly one age
  // observation — across semispace flips, grow-loop retraces, and the
  // verify pass (which must contribute none).
  for (GcStrategy S : AllStrategies)
    for (GcAlgorithm A : AllAlgorithms) {
      std::string Label = std::string(gcStrategyName(S)) + "/" +
                          gcAlgorithmName(A);
      auto R = runGraphed(LeakySrc, S, A, 1 << 14, /*Verify=*/true,
                          /*AttachGraph=*/false, /*Every=*/1,
                          A == GcAlgorithm::Generational ? 1 << 12 : 0);
      ASSERT_TRUE(R) << Label;
      const HeapProfiler::Snapshot &Snap = R->Prof.snapshot();
      ASSERT_TRUE(Snap.Valid) << Label;
      EXPECT_EQ(Snap.AgeObservations, Snap.Objects) << Label;
      uint64_t HistSum = 0;
      for (uint64_t H : Snap.AgeHist)
        HistSum += H;
      EXPECT_EQ(HistSum, Snap.Objects) << Label;
      // Every visited object has, by definition, survived the collection
      // observing it: the age-0 bucket is always empty. (The final
      // snapshot itself may be empty — a generational run can end on a
      // minor whose nursery promoted everything.)
      EXPECT_EQ(Snap.AgeHist[0], 0u) << Label;
      // Aging is cumulative across the run: under constant stress the
      // scratch conses survive a few collections before dying, so the
      // death-age histogram has mass above age 0 regardless of what the
      // final snapshot happened to see.
      uint64_t AgedDeaths = 0;
      for (const HeapProfiler::SiteLifetime &L : R->Prof.lifetimes())
        for (size_t B = 1; B < L.DeathHist.size(); ++B)
          AgedDeaths += L.DeathHist[B];
      EXPECT_GT(AgedDeaths, 0u) << Label;
    }
}

TEST(HeapGraph, SurvivalCurvesMonotoneEveryStrategyAndAlgorithm) {
  // An object that survived 8 collections survived 4, 2, and 1: each
  // site's survival curve is monotone non-increasing by construction,
  // and no site reports more survivors than allocations.
  for (GcStrategy S : AllStrategies)
    for (GcAlgorithm A : AllAlgorithms) {
      std::string Label = std::string(gcStrategyName(S)) + "/" +
                          gcAlgorithmName(A);
      auto R = runGraphed(LeakySrc, S, A, 1 << 14, /*Verify=*/true,
                          /*AttachGraph=*/false, /*Every=*/1,
                          A == GcAlgorithm::Generational ? 1 << 12 : 0);
      ASSERT_TRUE(R) << Label;
      bool AnySurvivor = false;
      for (uint32_t I = 0; I <= R->Prof.numSites(); ++I) {
        const HeapProfiler::SiteLifetime &L = R->Prof.lifetime(I);
        for (size_t K = 1; K < L.Survived.size(); ++K)
          EXPECT_LE(L.Survived[K], L.Survived[K - 1])
              << Label << " site " << I;
        if (I < R->Prof.numSites())
          EXPECT_LE(L.Survived[0], R->Prof.allocCount(I))
              << Label << " site " << I;
        AnySurvivor = AnySurvivor || L.Survived[0] > 0;
      }
      // The immortal cache guarantees survivors under constant stress.
      EXPECT_TRUE(AnySurvivor) << Label;
    }
}

TEST(HeapGraph, PromotionAttributionSumsToPromotedWords) {
  // Generational: the per-site promoted-words attribution is exact —
  // summed over sites it reproduces the collector's gc.promoted_words
  // counter, for every type-reconstruction strategy.
  for (GcStrategy S : AllStrategies) {
    auto R = runGraphed(LeakySrc, S, GcAlgorithm::Generational, 1 << 14,
                        /*Verify=*/true, /*AttachGraph=*/false,
                        /*Every=*/1, /*NurseryBytes=*/1 << 12);
    ASSERT_TRUE(R) << gcStrategyName(S);
    EXPECT_GT(R->St.get(StatId::GcPromotedWords), 0u) << gcStrategyName(S);
    EXPECT_EQ(R->Prof.promotedWordsAttributed(),
              R->St.get(StatId::GcPromotedWords))
        << gcStrategyName(S);
  }
}

TEST(HeapGraph, DeathAccountingBalancesAllocations) {
  // Cumulative per-site conservation: everything allocated either died
  // (in some collection) or is still alive (survived or never visited).
  auto R = runGraphed(LeakySrc, GcStrategy::CompiledTagFree,
                      GcAlgorithm::Copying, 1 << 14, /*Verify=*/true,
                      /*AttachGraph=*/false);
  ASSERT_TRUE(R);
  uint64_t Deaths = 0;
  for (const HeapProfiler::SiteLifetime &L : R->Prof.lifetimes())
    Deaths += L.Deaths;
  EXPECT_GT(Deaths, 0u); // scratch lists die young
  EXPECT_LE(Deaths, R->Prof.allocTotal());
  for (uint32_t I = 0; I < R->Prof.numSites(); ++I)
    EXPECT_LE(R->Prof.lifetime(I).Deaths, R->Prof.allocCount(I))
        << "site " << I;
}

TEST(HeapGraph, LeakSuspectRankedFirstByRetainedGrowth) {
  // Differential leak attribution: across captures the planted cache
  // cons site (in memo) grows monotonically; ranked by retained-size
  // delta it must come out #1. No stress here — under stress every
  // allocation collects and consecutive-capture deltas are one-object
  // noise; natural collections bracket many memo conses per capture.
  auto R = runGraphed(LeakySrc, GcStrategy::CompiledTagFree,
                      GcAlgorithm::Copying, 1 << 13, /*Verify=*/false,
                      /*AttachGraph=*/true, /*Every=*/1,
                      /*NurseryBytes=*/0, /*Stress=*/false);
  ASSERT_TRUE(R);
  ASSERT_GT(R->Graph.chunksWritten(), 1u); // deltas need two captures
  std::vector<SiteRetainedRow> Ranked = R->Graph.rankedDeltas();
  ASSERT_FALSE(Ranked.empty());
  EXPECT_GT(Ranked.front().GrowthBytes, 0);
  ASSERT_LT(Ranked.front().Site, R->Prof.numSites());
  EXPECT_EQ(R->Prof.site(Ranked.front().Site).Func, "memo");
}

TEST(HeapGraph, MinorCollectionsAreNotCaptured) {
  // A minor's trace covers the nursery only; a graph over it would
  // dangle into tenured space, so minors never produce chunks.
  auto R = runGraphed(LeakySrc, GcStrategy::CompiledTagFree,
                      GcAlgorithm::Generational, 1 << 14,
                      /*Verify=*/false, /*AttachGraph=*/true,
                      /*Every=*/1, /*NurseryBytes=*/1 << 12);
  ASSERT_TRUE(R);
  EXPECT_GT(R->St.get(StatId::GcMinorCollections), 0u);
  ASSERT_GT(R->Graph.chunksWritten(), 0u);
  EXPECT_EQ(R->Graph.lastCapture().Kind, GcEventKind::Major);
  EXPECT_LE(R->Graph.chunksWritten(),
            R->St.get(StatId::GcMajorCollections));
}

TEST(HeapGraph, EveryNGateThinsCaptures) {
  auto All = runGraphed(LeakySrc, GcStrategy::CompiledTagFree,
                        GcAlgorithm::Copying, 1 << 14, /*Verify=*/false,
                        /*AttachGraph=*/true, /*Every=*/1);
  auto Thinned = runGraphed(LeakySrc, GcStrategy::CompiledTagFree,
                            GcAlgorithm::Copying, 1 << 14,
                            /*Verify=*/false, /*AttachGraph=*/true,
                            /*Every=*/4);
  ASSERT_TRUE(All);
  ASSERT_TRUE(Thinned);
  ASSERT_GT(All->Graph.chunksWritten(), 4u);
  EXPECT_LE(Thinned->Graph.chunksWritten(),
            All->Graph.chunksWritten() / 4 + 1);
  EXPECT_GT(Thinned->Graph.chunksWritten(), 0u);
}

TEST(HeapGraph, DetachedGraphIsInert) {
  // Without a destination (file or sink), beginCapture never fires: no
  // chunks, no capture info, and the mutator-visible counters match a
  // plain profiled run.
  HeapGraph G;
  EXPECT_FALSE(G.active());
  auto R = runGraphed(LeakySrc, GcStrategy::CompiledTagFree,
                      GcAlgorithm::Copying, 1 << 14, /*Verify=*/false,
                      /*AttachGraph=*/false);
  ASSERT_TRUE(R);
  EXPECT_EQ(R->Graph.chunksWritten(), 0u);
  EXPECT_FALSE(R->Graph.lastCapture().Valid);
}
