//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//

#ifndef TFGC_TESTS_TESTUTIL_H
#define TFGC_TESTS_TESTUTIL_H

#include "driver/Compiler.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "ir/Lower.h"
#include "types/Infer.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>

namespace tfgc::test {

inline const GcStrategy AllStrategies[] = {
    GcStrategy::Tagged,
    GcStrategy::CompiledTagFree,
    GcStrategy::InterpretedTagFree,
    GcStrategy::AppelTagFree,
};

inline const GcAlgorithm AllAlgorithms[] = {
    GcAlgorithm::Copying,
    GcAlgorithm::MarkSweep,
    GcAlgorithm::Generational,
};

/// Parses a program or fails the test.
inline std::optional<Program> parse(const std::string &Source,
                                    std::string *Err = nullptr) {
  DiagnosticEngine Diags;
  Lexer Lex(Source, Diags);
  Parser P(Lex.tokenize(), Diags);
  std::optional<Program> Ast = P.parseProgram();
  if (Err)
    *Err = Diags.render();
  return Ast;
}

/// Full front half: source -> typed AST + IR. Returns nullopt on error.
struct Compiled {
  std::unique_ptr<CompiledProgram> P;
  std::string Error;
};
inline Compiled compile(const std::string &Source, CompileOptions O = {}) {
  Compiled C;
  Compiler Comp(O);
  C.P = Comp.compile(Source, &C.Error);
  return C;
}

/// Runs a program under one strategy and returns its rendered value,
/// failing the test on any error.
inline std::string runValue(const std::string &Source, GcStrategy S,
                            GcAlgorithm A = GcAlgorithm::Copying,
                            size_t HeapBytes = 1 << 16,
                            bool Stress = false) {
  ExecResult R = execProgram(Source, S, A, HeapBytes, Stress);
  EXPECT_TRUE(R.CompileOk) << R.CompileError;
  EXPECT_TRUE(R.Run.Ok) << R.Run.Error << " under " << gcStrategyName(S);
  return R.Run.Value;
}

/// Runs under every strategy (stressed, small heap) and checks that all
/// agree; returns the common value.
inline std::string runAllStrategies(const std::string &Source,
                                    size_t HeapBytes = 1 << 14,
                                    bool Stress = true) {
  std::string Expected;
  for (GcStrategy S : AllStrategies) {
    std::string V =
        runValue(Source, S, GcAlgorithm::Copying, HeapBytes, Stress);
    if (Expected.empty())
      Expected = V;
    else
      EXPECT_EQ(Expected, V) << "strategy " << gcStrategyName(S);
  }
  // Mark-sweep and generational spot checks with the paper's own
  // collector.
  std::string V = runValue(Source, GcStrategy::CompiledTagFree,
                           GcAlgorithm::MarkSweep, HeapBytes, Stress);
  EXPECT_EQ(Expected, V) << "mark-sweep";
  V = runValue(Source, GcStrategy::CompiledTagFree,
               GcAlgorithm::Generational, HeapBytes, Stress);
  EXPECT_EQ(Expected, V) << "generational";
  return Expected;
}

//===----------------------------------------------------------------------===//
// Minimal recursive-descent JSON syntax checker, shared by the
// telemetry and monitor stream tests.
//===----------------------------------------------------------------------===//

class JsonChecker {
public:
  explicit JsonChecker(const std::string &S) : S(S) {}
  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == S.size();
  }

private:
  const std::string &S;
  size_t Pos = 0;

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }
  bool lit(const char *L) {
    size_t N = std::strlen(L);
    if (S.compare(Pos, N, L) != 0)
      return false;
    Pos += N;
    return true;
  }
  bool string() {
    if (Pos >= S.size() || S[Pos] != '"')
      return false;
    ++Pos;
    while (Pos < S.size() && S[Pos] != '"') {
      if (S[Pos] == '\\') {
        ++Pos;
        if (Pos >= S.size())
          return false;
      }
      ++Pos;
    }
    if (Pos >= S.size())
      return false;
    ++Pos; // closing quote
    return true;
  }
  bool number() {
    size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    while (Pos < S.size() && std::isdigit((unsigned char)S[Pos]))
      ++Pos;
    if (Pos < S.size() && S[Pos] == '.') {
      ++Pos;
      while (Pos < S.size() && std::isdigit((unsigned char)S[Pos]))
        ++Pos;
    }
    if (Pos < S.size() && (S[Pos] == 'e' || S[Pos] == 'E')) {
      ++Pos;
      if (Pos < S.size() && (S[Pos] == '+' || S[Pos] == '-'))
        ++Pos;
      while (Pos < S.size() && std::isdigit((unsigned char)S[Pos]))
        ++Pos;
    }
    return Pos > Start;
  }
  bool value() {
    skipWs();
    if (Pos >= S.size())
      return false;
    switch (S[Pos]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return lit("true");
    case 'f':
      return lit("false");
    case 'n':
      return lit("null");
    default:
      return number();
    }
  }
  bool object() {
    ++Pos; // '{'
    skipWs();
    if (Pos < S.size() && S[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (Pos >= S.size() || S[Pos] != ':')
        return false;
      ++Pos;
      if (!value())
        return false;
      skipWs();
      if (Pos < S.size() && S[Pos] == ',') {
        ++Pos;
        continue;
      }
      break;
    }
    if (Pos >= S.size() || S[Pos] != '}')
      return false;
    ++Pos;
    return true;
  }
  bool array() {
    ++Pos; // '['
    skipWs();
    if (Pos < S.size() && S[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      if (!value())
        return false;
      skipWs();
      if (Pos < S.size() && S[Pos] == ',') {
        ++Pos;
        continue;
      }
      break;
    }
    if (Pos >= S.size() || S[Pos] != ']')
      return false;
    ++Pos;
    return true;
  }
};

inline bool validJson(const std::string &S) {
  return JsonChecker(S).valid();
}

} // namespace tfgc::test

#endif // TFGC_TESTS_TESTUTIL_H
