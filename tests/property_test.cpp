//===- tests/property_test.cpp - Randomized differential testing ---------===//
///
/// Generates random well-typed MiniML programs (type-directed) and checks
/// that all four strategies, both heap algorithms, and GC-stress mode
/// agree on the result. This is the strongest whole-system invariant: the
/// collector must be completely transparent.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "support/Rng.h"

#include <sstream>

using namespace tfgc;
using namespace tfgc::test;

namespace {

class ProgramGen {
public:
  explicit ProgramGen(uint64_t Seed) : R(Seed) {}

  std::string generate() {
    std::ostringstream OS;
    OS << "fun build (n : int) : int list = if n = 0 then [] "
          "else n :: build (n - 1);\n"
          "fun sum (xs : int list) : int = case xs of Nil => 0 "
          "| Cons(x, r) => x + sum r;\n"
          "fun len (xs : int list) : int = case xs of Nil => 0 "
          "| Cons(_, r) => 1 + len r;\n"
          "fun append (xs : int list) (ys : int list) : int list = "
          "case xs of Nil => ys | Cons(x, r) => x :: append r ys;\n"
          "fun revA (xs : int list) (a : int list) : int list = "
          "case xs of Nil => a | Cons(x, r) => revA r (x :: a);\n"
          "fun id x = x;\n"
          "fun fst p = case p of (a, _) => a;\n"
          "fun mapi (f : int -> int) (xs : int list) : int list = "
          "case xs of Nil => Nil | Cons(x, r) => Cons(f x, mapi f r);\n"
          "fun foldi (f : (int * int) -> int) (acc : int) "
          "(xs : int list) : int = "
          "case xs of Nil => acc | Cons(x, r) => foldi f (f (acc, x)) r;\n";
    OS << genInt(3);
    return OS.str();
  }

private:
  Rng R;
  int IntVars = 0;
  int ListVars = 0;

  std::string iv(int I) { return "i" + std::to_string(I); }
  std::string lv(int I) { return "l" + std::to_string(I); }

  std::string genInt(int Depth) {
    if (Depth <= 0 || R.chance(1, 4)) {
      if (IntVars > 0 && R.chance(1, 2))
        return iv((int)R.below((uint64_t)IntVars));
      int64_t V = R.range(-20, 20);
      return V < 0 ? "(~" + std::to_string(-V) + ")" : std::to_string(V);
    }
    switch (R.below(10)) {
    case 0:
      return "(" + genInt(Depth - 1) + " + " + genInt(Depth - 1) + ")";
    case 1:
      return "(" + genInt(Depth - 1) + " * " + genInt(Depth - 1) + ")";
    case 2:
      return "(" + genInt(Depth - 1) + " - " + genInt(Depth - 1) + ")";
    case 3:
      return "(if " + genBool(Depth - 1) + " then " + genInt(Depth - 1) +
             " else " + genInt(Depth - 1) + ")";
    case 4:
      return "(sum " + genList(Depth - 1) + ")";
    case 5:
      return "(len " + genList(Depth - 1) + ")";
    case 6: {
      // let-bound locals of both kinds.
      std::string IVar = iv(IntVars++);
      std::string LVar = lv(ListVars++);
      std::string Body = genInt(Depth - 1);
      --IntVars;
      --ListVars;
      return "(let val " + IVar + " = " + genInt(Depth - 1) + " val " +
             LVar + " = " + genList(Depth - 1) + " in " + Body + " end)";
    }
    case 7:
      return "(case " + genList(Depth - 1) +
             " of Nil => " + genInt(Depth - 1) +
             " | Cons(h, _) => (h + " + genInt(Depth - 1) + "))";
    case 8:
      return "(id " + genInt(Depth - 1) + " + fst (" + genInt(Depth - 1) +
             ", " + genList(Depth - 1) + "))";
    case 9:
      return "(foldi (fn (a, b) => a + b) " + genInt(Depth - 1) + " " +
             genList(Depth - 1) + ")";
    }
    return "0";
  }

  std::string genList(int Depth) {
    if (Depth <= 0 || R.chance(1, 4)) {
      if (ListVars > 0 && R.chance(1, 2))
        return lv((int)R.below((uint64_t)ListVars));
      if (R.chance(1, 3))
        return "[]";
      return "(build " + std::to_string(R.below(12) + 1) + ")";
    }
    switch (R.below(6)) {
    case 0:
      return "(append " + genList(Depth - 1) + " " + genList(Depth - 1) +
             ")";
    case 1:
      return "(revA " + genList(Depth - 1) + " [])";
    case 2:
      return "(" + genInt(Depth - 1) + " :: " + genList(Depth - 1) + ")";
    case 3:
      return "(id " + genList(Depth - 1) + ")";
    case 4:
      return "(case " + genList(Depth - 1) + " of Nil => " +
             genList(Depth - 1) + " | Cons(_, t) => t)";
    case 5:
      // A capturing closure mapped over a list.
      return "(let val k = " + genInt(Depth - 1) +
             " in mapi (fn x => x + k) " + genList(Depth - 1) + " end)";
    }
    return "[]";
  }

  std::string genBool(int Depth) {
    if (Depth <= 0 || R.chance(1, 3))
      return R.chance(1, 2) ? "true" : "false";
    switch (R.below(3)) {
    case 0:
      return "(" + genInt(Depth - 1) + " < " + genInt(Depth - 1) + ")";
    case 1:
      return "(" + genInt(Depth - 1) + " = " + genInt(Depth - 1) + ")";
    case 2:
      return "(not " + genBool(Depth - 1) + ")";
    }
    return "true";
  }
};

class RandomPrograms : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomPrograms, AllStrategiesAgree) {
  ProgramGen G(GetParam());
  std::string Src = G.generate();
  SCOPED_TRACE(Src);

  // Reference: tagged, big heap, no stress.
  ExecResult Ref = execProgram(Src, GcStrategy::Tagged, GcAlgorithm::Copying,
                               1 << 20, false);
  ASSERT_TRUE(Ref.CompileOk) << Ref.CompileError;
  ASSERT_TRUE(Ref.Run.Ok) << Ref.Run.Error;

  for (GcStrategy S : AllStrategies) {
    for (GcAlgorithm A : AllAlgorithms) {
      ExecResult R = execProgram(Src, S, A, 1 << 12, /*Stress=*/true);
      ASSERT_TRUE(R.Run.Ok)
          << gcStrategyName(S) << ": " << R.Run.Error << R.CompileError;
      EXPECT_EQ(R.Run.Value, Ref.Run.Value) << gcStrategyName(S);
    }
  }

  // And once more, monomorphised.
  CompileOptions Mono;
  Mono.Monomorphise = true;
  ExecResult M = execProgram(Src, GcStrategy::CompiledTagFree,
                             GcAlgorithm::Copying, 1 << 12, true, Mono);
  ASSERT_TRUE(M.Run.Ok) << M.Run.Error << M.CompileError;
  EXPECT_EQ(M.Run.Value, Ref.Run.Value) << "monomorphised";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range<uint64_t>(1, 31));

TEST(RandomPrograms, GeneratorIsDeterministic) {
  EXPECT_EQ(ProgramGen(7).generate(), ProgramGen(7).generate());
  EXPECT_NE(ProgramGen(7).generate(), ProgramGen(8).generate());
}

} // namespace
