//===- tests/parser_test.cpp ----------------------------------------------===//

#include "TestUtil.h"

using namespace tfgc;
using namespace tfgc::test;

namespace {

TEST(Parser, EmptyProgramHasUnitMain) {
  auto P = parse("");
  ASSERT_TRUE(P.has_value());
  EXPECT_TRUE(P->Decls.empty());
  ASSERT_TRUE(P->Main);
  EXPECT_EQ(P->Main->getKind(), ExprKind::Unit);
}

TEST(Parser, ArithPrecedence) {
  auto P = parse("1 + 2 * 3");
  ASSERT_TRUE(P);
  auto *Add = cast<PrimExpr>(P->Main.get());
  EXPECT_EQ(Add->Op, PrimOp::Add);
  auto *Mul = cast<PrimExpr>(Add->Args[1].get());
  EXPECT_EQ(Mul->Op, PrimOp::Mul);
}

TEST(Parser, ConsIsRightAssociative) {
  auto P = parse("1 :: 2 :: []");
  ASSERT_TRUE(P);
  auto *Outer = cast<CtorExpr>(P->Main.get());
  EXPECT_EQ(Outer->Name, "Cons");
  auto *Inner = cast<CtorExpr>(Outer->Args[1].get());
  EXPECT_EQ(Inner->Name, "Cons");
}

TEST(Parser, ListLiteralDesugars) {
  auto P = parse("[1, 2, 3]");
  ASSERT_TRUE(P);
  const Expr *Cur = P->Main.get();
  int Elems = 0;
  while (const auto *C = dyn_cast<CtorExpr>(Cur)) {
    if (C->Name == "Nil")
      break;
    ASSERT_EQ(C->Name, "Cons");
    ++Elems;
    Cur = C->Args[1].get();
  }
  EXPECT_EQ(Elems, 3);
}

TEST(Parser, ApplicationCollectsArgs) {
  auto P = parse("f 1 2 3");
  ASSERT_TRUE(P);
  auto *App = cast<AppExpr>(P->Main.get());
  EXPECT_EQ(App->Args.size(), 3u);
  EXPECT_EQ(cast<VarExpr>(App->Fn.get())->Name, "f");
}

TEST(Parser, CtorTupleSplat) {
  auto P = parse("Pair (1, 2)");
  ASSERT_TRUE(P);
  auto *C = cast<CtorExpr>(P->Main.get());
  EXPECT_EQ(C->Args.size(), 2u);
}

TEST(Parser, CtorNestedParensPassOneTuple) {
  auto P = parse("Wrap ((1, 2))");
  ASSERT_TRUE(P);
  auto *C = cast<CtorExpr>(P->Main.get());
  ASSERT_EQ(C->Args.size(), 1u);
  EXPECT_EQ(C->Args[0]->getKind(), ExprKind::Tuple);
}

TEST(Parser, AndAlsoDesugarsToIf) {
  auto P = parse("true andalso false");
  ASSERT_TRUE(P);
  EXPECT_EQ(P->Main->getKind(), ExprKind::If);
}

TEST(Parser, OrElseDesugarsToIf) {
  auto P = parse("true orelse false");
  ASSERT_TRUE(P);
  EXPECT_EQ(P->Main->getKind(), ExprKind::If);
}

TEST(Parser, SeqExpr) {
  auto P = parse("(print 1; print 2; 3)");
  ASSERT_TRUE(P);
  auto *S = cast<SeqExpr>(P->Main.get());
  EXPECT_EQ(S->Elems.size(), 3u);
}

TEST(Parser, TupleVsGroup) {
  auto P1 = parse("(1)");
  ASSERT_TRUE(P1);
  EXPECT_EQ(P1->Main->getKind(), ExprKind::Int);
  auto P2 = parse("(1, 2)");
  ASSERT_TRUE(P2);
  EXPECT_EQ(P2->Main->getKind(), ExprKind::Tuple);
}

TEST(Parser, Annotation) {
  auto P = parse("([] : int list)");
  ASSERT_TRUE(P);
  auto *A = cast<AnnotExpr>(P->Main.get());
  EXPECT_EQ(A->Annot->Kind, TypeAstKind::Name);
  EXPECT_EQ(A->Annot->Name, "list");
  ASSERT_EQ(A->Annot->Args.size(), 1u);
  EXPECT_EQ(A->Annot->Args[0]->Name, "int");
}

TEST(Parser, FunDeclParams) {
  auto P = parse("fun f x (y : int) (a, b) = x");
  ASSERT_TRUE(P);
  ASSERT_EQ(P->Decls.size(), 1u);
  const Decl *D = P->Decls[0].get();
  ASSERT_EQ(D->Binds.size(), 1u);
  const FunBind &B = D->Binds[0];
  ASSERT_EQ(B.Params.size(), 3u);
  EXPECT_EQ(B.Params[0]->Kind, PatternKind::Var);
  EXPECT_EQ(B.Params[1]->Kind, PatternKind::Var);
  EXPECT_TRUE(B.Params[1]->Annot != nullptr);
  EXPECT_EQ(B.Params[2]->Kind, PatternKind::Tuple);
}

TEST(Parser, MutualRecursionGroup) {
  auto P = parse("fun even n = if n = 0 then true else odd (n - 1)\n"
                 "and odd n = if n = 0 then false else even (n - 1)");
  ASSERT_TRUE(P);
  ASSERT_EQ(P->Decls.size(), 1u);
  EXPECT_EQ(P->Decls[0]->Binds.size(), 2u);
}

TEST(Parser, DatatypeDecl) {
  auto P = parse("datatype ('k, 'v) entry = Empty | Pair of 'k * 'v");
  ASSERT_TRUE(P);
  const Decl *D = P->Decls[0].get();
  EXPECT_EQ(D->Name, "entry");
  ASSERT_EQ(D->TyVars.size(), 2u);
  ASSERT_EQ(D->Ctors.size(), 2u);
  EXPECT_TRUE(D->Ctors[0].Fields.empty());
  EXPECT_EQ(D->Ctors[1].Fields.size(), 2u);
}

TEST(Parser, DatatypeParenFieldIsOneTupleField) {
  auto P = parse("datatype t = C of (int * bool)");
  ASSERT_TRUE(P);
  EXPECT_EQ(P->Decls[0]->Ctors[0].Fields.size(), 1u);
  EXPECT_EQ(P->Decls[0]->Ctors[0].Fields[0]->Kind, TypeAstKind::Tuple);
}

TEST(Parser, CasePatterns) {
  auto P = parse("case x of [] => 0 | y :: _ => y | _ => 2");
  ASSERT_TRUE(P);
  auto *C = cast<CaseExpr>(P->Main.get());
  ASSERT_EQ(C->Clauses.size(), 3u);
  EXPECT_EQ(C->Clauses[0].Pat->Name, "Nil");
  EXPECT_EQ(C->Clauses[1].Pat->Name, "Cons");
  EXPECT_EQ(C->Clauses[2].Pat->Kind, PatternKind::Wild);
}

TEST(Parser, NegativeIntPattern) {
  auto P = parse("case x of ~3 => 0 | _ => 1");
  ASSERT_TRUE(P);
  auto *C = cast<CaseExpr>(P->Main.get());
  EXPECT_EQ(C->Clauses[0].Pat->IntValue, -3);
}

TEST(Parser, NestedCaseBindsClausesToInnermost) {
  auto P = parse("case x of 0 => case y of 1 => 10 | 2 => 20 | _ => 99");
  ASSERT_TRUE(P);
  auto *Outer = cast<CaseExpr>(P->Main.get());
  // All '|' clauses after the inner case belong to the inner case.
  ASSERT_EQ(Outer->Clauses.size(), 1u);
  auto *Inner = cast<CaseExpr>(Outer->Clauses[0].Body.get());
  EXPECT_EQ(Inner->Clauses.size(), 3u);
}

TEST(Parser, LetWithMultipleDecls) {
  auto P = parse("let val x = 1 val y = 2 in x + y end");
  ASSERT_TRUE(P);
  auto *L = cast<LetExpr>(P->Main.get());
  EXPECT_EQ(L->Decls.size(), 2u);
}

TEST(Parser, SemiTerminatesDecl) {
  auto P = parse("fun f (x : int) : int = f (x - 1);\nf 3");
  ASSERT_TRUE(P);
  EXPECT_EQ(P->Decls.size(), 1u);
  auto *App = cast<AppExpr>(P->Main.get());
  EXPECT_EQ(App->Args.size(), 1u);
}

TEST(Parser, FnExpression) {
  auto P = parse("fn x => x + 1");
  ASSERT_TRUE(P);
  auto *F = cast<FnExpr>(P->Main.get());
  EXPECT_EQ(F->Param->Kind, PatternKind::Var);
}

TEST(Parser, RefOperators) {
  auto P = parse("(ref 1; !r; r := 2)");
  ASSERT_TRUE(P);
  auto *S = cast<SeqExpr>(P->Main.get());
  EXPECT_EQ(cast<PrimExpr>(S->Elems[0].get())->Op, PrimOp::RefNew);
  EXPECT_EQ(cast<PrimExpr>(S->Elems[1].get())->Op, PrimOp::RefGet);
  EXPECT_EQ(cast<PrimExpr>(S->Elems[2].get())->Op, PrimOp::RefSet);
}

TEST(Parser, NAryFunctionTypeAnnotation) {
  auto P = parse("(f : (int, bool) -> int)");
  ASSERT_TRUE(P);
  auto *A = cast<AnnotExpr>(P->Main.get());
  EXPECT_EQ(A->Annot->Kind, TypeAstKind::Fun);
  EXPECT_EQ(A->Annot->Args.size(), 2u);
}

TEST(Parser, TupleToUnaryFunctionType) {
  auto P = parse("(f : int * bool -> int)");
  ASSERT_TRUE(P);
  auto *A = cast<AnnotExpr>(P->Main.get());
  ASSERT_EQ(A->Annot->Kind, TypeAstKind::Fun);
  ASSERT_EQ(A->Annot->Args.size(), 1u);
  EXPECT_EQ(A->Annot->Args[0]->Kind, TypeAstKind::Tuple);
}

TEST(Parser, PostfixTypeApplication) {
  auto P = parse("(x : int list list)");
  ASSERT_TRUE(P);
  auto *A = cast<AnnotExpr>(P->Main.get());
  EXPECT_EQ(A->Annot->Name, "list");
  EXPECT_EQ(A->Annot->Args[0]->Name, "list");
  EXPECT_EQ(A->Annot->Args[0]->Args[0]->Name, "int");
}

TEST(Parser, ErrorRecovery) {
  std::string Err;
  auto P = parse("fun = 3", &Err);
  EXPECT_FALSE(P.has_value());
  EXPECT_NE(Err.find("error"), std::string::npos);
}

TEST(Parser, MissingEnd) {
  std::string Err;
  auto P = parse("let val x = 1 in x", &Err);
  EXPECT_FALSE(P.has_value());
}

} // namespace
