//===- bench/bench_poly.cpp - E7: polymorphic collection -----------------===//
///
/// Paper section 3 vs section 1.1.1: Goldberg's method traverses the
/// stack at most twice (one pointer-reversal pass, one oldest-to-newest
/// pass threading type GC routines); Appel's reconstruction walks the
/// dynamic chain downward for every polymorphic frame, which is quadratic
/// in stack depth. This bench sweeps the depth of a polymorphic stack and
/// reports chain steps, reversal steps, type-GC closures built, and pause
/// times.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace tfgc;
using namespace tfgc::bench;
namespace wl = tfgc::workloads;

namespace {

void reportRow(int Depth, const char *Name, const Stats &St) {
  uint64_t N = St.get(StatId::GcCollections);
  tableCell((uint64_t)Depth);
  tableCell(Name);
  tableCell(N);
  tableCell(St.get(StatId::GcPtrReversalSteps));
  tableCell(St.get(StatId::GcChainSteps));
  tableCell(St.get(StatId::GcTgNodes));
  tableCell(St.get(StatId::GcTgCacheHits));
  tableCell(St.get(StatId::GcTgCacheMisses));
  tableCell(N ? (double)St.get(StatId::GcPauseNsTotal) / (double)N / 1000.0
              : 0.0);
  tableEnd();
}

void reportDepth(int Depth) {
  jsonWorkload("polyDeep/" + std::to_string(Depth));
  Stats G = runOnce(wl::polyDeep(Depth, 48), GcStrategy::CompiledTagFree,
                    GcAlgorithm::Copying, 1 << 12, /*Stress=*/true);
  reportRow(Depth, "goldberg", G);
  Stats A = runOnce(wl::polyDeep(Depth, 48), GcStrategy::AppelTagFree,
                    GcAlgorithm::Copying, 1 << 12, /*Stress=*/true);
  reportRow(Depth, "appel", A);
  // Ablation: specialize away the polymorphism entirely (code growth in
  // exchange for purely monomorphic collection — the alternative the
  // paper's section 3 exists to avoid).
  CompileOptions Mono;
  Mono.Monomorphise = true;
  Stats M = runOnce(wl::polyDeep(Depth, 48), GcStrategy::CompiledTagFree,
                    GcAlgorithm::Copying, 1 << 12, /*Stress=*/true, Mono);
  reportRow(Depth, "monomorphised", M);
}

std::unique_ptr<CompiledProgram> &deepProgram() {
  static auto P = compileOrDie(wl::polyDeep(96, 300));
  return P;
}
std::unique_ptr<CompiledProgram> &deepMonoProgram() {
  static CompileOptions O = [] {
    CompileOptions X;
    X.Monomorphise = true;
    return X;
  }();
  static auto P = compileOrDie(wl::polyDeep(96, 300), O);
  return P;
}
std::unique_ptr<CompiledProgram> &paperProgram() {
  static auto P = compileOrDie(wl::polyPaper());
  return P;
}

void BM_DeepGoldberg(benchmark::State &State) {
  timedRun(State, *deepProgram(), GcStrategy::CompiledTagFree,
           GcAlgorithm::Copying, 1 << 12);
}
void BM_DeepAppel(benchmark::State &State) {
  timedRun(State, *deepProgram(), GcStrategy::AppelTagFree,
           GcAlgorithm::Copying, 1 << 12);
}
void BM_DeepMonomorphised(benchmark::State &State) {
  timedRun(State, *deepMonoProgram(), GcStrategy::CompiledTagFree,
           GcAlgorithm::Copying, 1 << 12);
}
void BM_PaperGoldberg(benchmark::State &State) {
  timedRun(State, *paperProgram(), GcStrategy::CompiledTagFree,
           GcAlgorithm::Copying, 1 << 12, false, /*Stress=*/true);
}
void BM_PaperInterpreted(benchmark::State &State) {
  timedRun(State, *paperProgram(), GcStrategy::InterpretedTagFree,
           GcAlgorithm::Copying, 1 << 12, false, /*Stress=*/true);
}
void BM_PaperAppel(benchmark::State &State) {
  timedRun(State, *paperProgram(), GcStrategy::AppelTagFree,
           GcAlgorithm::Copying, 1 << 12, false, /*Stress=*/true);
}
BENCHMARK(BM_DeepGoldberg);
BENCHMARK(BM_DeepAppel);
BENCHMARK(BM_DeepMonomorphised);
BENCHMARK(BM_PaperGoldberg);
BENCHMARK(BM_PaperInterpreted);
BENCHMARK(BM_PaperAppel);

} // namespace

int main(int argc, char **argv) {
  JsonSink Sink("poly", argc, argv);
  tableHeader("E7: polymorphic frames, Goldberg vs Appel (polyDeep sweep)",
              "ptr reversal steps grow linearly with depth; Appel chain "
              "steps grow quadratically",
              {"depth", "method", "collections", "reversal steps",
               "chain steps", "tg closures", "cache hits", "cache misses",
               "avg pause us"});
  for (int Depth : {8, 16, 32, 64, 128})
    reportDepth(Depth);
  std::printf("\nExpected shape: goldberg chain steps are always zero "
              "(single two-pass traversal);\nappel's grow ~quadratically "
              "with depth — the cost the paper's method avoids.\n"
              "Ground-type closures are cached across collections: cache "
              "hits dwarf misses\nonce the second collection runs, so tg "
              "closures built stays near-flat in depth.\n\n");
  benchmark::Initialize(&argc, argv);
  Sink.runBenchmarksAndWrite();
  return 0;
}
