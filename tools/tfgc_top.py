#!/usr/bin/env python3
"""Live top-style view of a running tfgc --serve=PORT process.

Polls http://HOST:PORT/metrics and renders the latest epoch: heap
occupancy, collection and pause totals, mutator throughput (epoch-over-
epoch rates for steps, allocation, barriers), and MMU / mutator fraction
when the run has --monitor. Rates need two polls; the first frame shows
totals only.

Usage: tfgc_top.py [--interval SECS] [--once] [HOST:]PORT

  --interval SECS   poll period (default 1.0)
  --once            print a single frame and exit (no screen clearing);
                    also the mode CI uses to probe a live run

Exit: 0 on a clean ^C or --once success, 1 if the first poll fails.
Once connected, a poll error (run ended, linger expired) prints the last
frame's totals and exits 0.
"""

import sys
import time
import urllib.error
import urllib.request


def fetch(url):
    with urllib.request.urlopen(url, timeout=5) as r:
        return r.read().decode()


def parse(text):
    samples = {}
    label = ""
    for line in text.splitlines():
        if line.startswith("tfgc_info{"):
            lo = line.find('label="')
            if lo >= 0:
                label = line[lo + 7:line.find('"', lo + 7)]
            continue
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) == 2 and parts[1].isdigit():
            samples[parts[0]] = int(parts[1])
    return samples, label


def fmt_bytes(n):
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024


def fmt_ns(n):
    if n >= 1e9:
        return f"{n / 1e9:.2f} s"
    if n >= 1e6:
        return f"{n / 1e6:.2f} ms"
    if n >= 1e3:
        return f"{n / 1e3:.1f} us"
    return f"{n} ns"


def rate(cur, prev, key, dt):
    if prev is None or dt <= 0 or key not in cur or key not in prev:
        return None
    return (cur[key] - prev[key]) / dt


def frame(url, cur, label, prev, dt):
    lines = []
    seq = cur.get("tfgc_epoch_seq", 0)
    t_ms = cur.get("tfgc_epoch_time_ns", 0) / 1e6
    lines.append(f"tfgc {url}  {label}  epoch {seq} @ {t_ms:.1f} ms")

    used = cur.get("tfgc_heap_used_bytes", 0)
    cap = cur.get("tfgc_heap_capacity_bytes", 0)
    pct = 100.0 * used / cap if cap else 0.0
    lines.append(f"  heap       {fmt_bytes(used)} / {fmt_bytes(cap)} "
                 f"({pct:.1f}%)  allocated "
                 f"{fmt_bytes(cur.get('tfgc_heap_bytes_allocated_total', 0))}")

    cols = cur.get("tfgc_gc_collections", 0)
    minor = cur.get("tfgc_gc_minor_collections", 0)
    pause = cur.get("tfgc_gc_pause_ns_total", 0)
    pmax = cur.get("tfgc_gc_pause_ns_max", 0)
    lines.append(f"  gc         {cols} collections ({minor} minor)  pause "
                 f"total {fmt_ns(pause)}  max {fmt_ns(pmax)}")

    steps = cur.get("tfgc_vm_steps", 0)
    srate = rate(cur, prev, "tfgc_vm_steps", dt)
    arate = rate(cur, prev, "tfgc_heap_bytes_allocated_total", dt)
    brate = rate(cur, prev, "tfgc_gc_barrier_ops", dt)
    mut = f"  mutator    {steps} steps"
    if srate is not None:
        mut += f"  {srate / 1e6:.2f} Msteps/s"
    if arate is not None:
        mut += f"  {fmt_bytes(arate)}/s alloc"
    if brate is not None and cur.get("tfgc_gc_barrier_ops", 0):
        mut += f"  {brate:.0f} barriers/s"
    lines.append(mut)

    if "tfgc_mon_mmu_10ms_ppm" in cur:
        lines.append(
            "  MMU        "
            f"1ms {cur.get('tfgc_mon_mmu_1ms_ppm', 0) / 1e6:.3f}  "
            f"10ms {cur.get('tfgc_mon_mmu_10ms_ppm', 0) / 1e6:.3f}  "
            f"100ms {cur.get('tfgc_mon_mmu_100ms_ppm', 0) / 1e6:.3f}  "
            "mutator "
            f"{cur.get('tfgc_mon_mutator_fraction_ppm', 0) / 1e6:.3f}")

    # Per-task shard columns (--threads runs publish one group per task
    # at every safepoint fold): steps + rate, TLAB allocation, and the
    # p99 time-to-safepoint — the straggler column. The task that
    # completed the most recent rendezvous (everyone else was already
    # waiting on it) is marked "<- last parker".
    tasks = sorted(k for k in cur if k.startswith("tfgc_task_")
                   and k.endswith("_mutator_steps"))
    last_parker = cur.get("tfgc_sched_last_parker_task")
    if tasks:
        epochs = cur.get("tfgc_sched_handshake_epochs")
        hdr = "  tasks      "
        if epochs is not None:
            hdr += f"{epochs} handshake epochs"
        lines.append(hdr.rstrip())
    for k in tasks[:8]:
        idx = k[len("tfgc_task_"):-len("_mutator_steps")]
        base = f"tfgc_task_{idx}_"
        row = f"  task {idx}     {cur[k]} steps"
        krate = rate(cur, prev, k, dt)
        if krate is not None:
            row += f"  {krate / 1e6:.2f} Msteps/s"
        words = cur.get(base + "tlab_alloc_words")
        if words is not None:
            row += f"  tlab {fmt_bytes(words * 8)}"
            refills = cur.get(base + "tlab_refills", 0)
            row += f" ({refills} refills)"
        tts = cur.get(base + "time_to_safepoint_ns_p99")
        if tts is not None:
            row += f"  tts p99 {fmt_ns(tts)}"
        if last_parker is not None and str(last_parker) == idx:
            row += "  <- last parker"
        lines.append(row)
    return "\n".join(lines)


def main():
    args = sys.argv[1:]
    interval, once = 1.0, False
    while args and args[0].startswith("--"):
        if args[0] == "--once":
            once = True
            args = args[1:]
        elif args[0] == "--interval":
            interval = float(args[1])
            args = args[2:]
        else:
            print(__doc__.strip(), file=sys.stderr)
            return 2
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    target = args[0] if ":" in args[0] else f"127.0.0.1:{args[0]}"
    url = f"http://{target}/metrics"

    prev, prev_t = None, None
    first = True
    try:
        while True:
            t0 = time.monotonic()
            try:
                cur, label = parse(fetch(url))
            except (urllib.error.URLError, OSError, TimeoutError) as e:
                if first:
                    print(f"tfgc_top: cannot reach {url}: {e}",
                          file=sys.stderr)
                    return 1
                print(f"\ntfgc_top: {url} gone ({e}); run ended")
                return 0
            dt = t0 - prev_t if prev_t is not None else 0.0
            text = frame(url, cur, label, prev, dt)
            if once:
                print(text)
                return 0
            # Clear + home, then the frame; plain enough for any terminal.
            sys.stdout.write("\x1b[2J\x1b[H" + text + "\n")
            sys.stdout.flush()
            first = False
            prev, prev_t = cur, t0
            time.sleep(interval)
    except KeyboardInterrupt:
        print()
        return 0


if __name__ == "__main__":
    sys.exit(main())
