# Empty compiler generated dependencies file for tfgc_core.
# This may be replaced when dependencies are built.
