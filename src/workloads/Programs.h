//===- workloads/Programs.h - MiniML workload programs ----------*- C++ -*-===//
///
/// \file
/// Parameterized MiniML programs shared by the tests, benches and
/// examples. Each function returns complete source; the parameters size
/// the workload. The suite covers every behaviour the paper discusses:
/// list churn, trees, variant records, floats (boxing), refs (mutation and
/// cycles), higher-order closures, deep polymorphic stacks, dead
/// variables, and tasking workers.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_WORKLOADS_PROGRAMS_H
#define TFGC_WORKLOADS_PROGRAMS_H

#include <string>

namespace tfgc::workloads {

/// Shared helpers (`build`, `sum`, `len`, `append`, `rev`): monomorphic
/// int-list toolkit.
std::string listPrelude();

/// Repeatedly builds, reverses and sums an N-element list, Iters times —
/// the garbage-heavy core workload. Result: checksum int.
std::string listChurn(int N, int Iters);

/// GCBench-style binary trees of the given depth, Iters rounds.
std::string binaryTrees(int Depth, int Iters);

/// N-queens solution count (call-heavy, medium allocation).
std::string nqueens(int N);

/// The paper's section 2.4 append, plus a driver. The recursive call's
/// frame GC routine is `no_trace`.
std::string appendPaper(int N);

/// Arithmetic-only kernel (E1 mutator overhead): Iters iterations of
/// add/mul/mod with no allocation after warm-up.
std::string arithKernel(int Iters);

/// Float-heavy kernel: builds and sums float lists (boxing under the
/// tagged model).
std::string floatKernel(int N, int Iters);

/// Pure float arithmetic, no list allocation: Iters iterations of
/// fadd/fmul/fdiv/flt on values kept in the self-taggable range. Under
/// the tagged model with float self-tagging this allocates nothing in
/// steady state (vm.float_boxes = 0); with --float-tag=box every
/// intermediate is a heap box.
std::string floatMath(int Iters);

/// Opcode-mix kernel (E13): one call, one datatype field read, compares,
/// branches and modular arithmetic per iteration over a single retained
/// record — exercises every dispatch class without steady-state
/// allocation, so the bench isolates dispatch+fusion from GC effects.
std::string opcodeMix(int Iters);

/// Variant records (paper section 2.3): a shape datatype with mixed
/// nullary/unary/binary constructors.
std::string variantRecords(int N);

/// Higher-order suite: map/filter/fold with capturing lambdas.
std::string higherOrder(int N);

/// Ref cells: mutation, generational-style churn, and a ref cycle.
std::string refCells(int N);

/// The generational hypothesis in one program (E10): a Retained-element
/// list stays live to the end while Iters rounds each cons an N-element
/// temporary; a long-lived ref cell is repeatedly re-pointed at fresh
/// young lists (old-to-young stores once the cell tenures). Full
/// collections recopy the retained list every time; minor collections
/// touch only nursery survivors.
std::string generationalChurn(int Retained, int N, int Iters);

/// Deep polymorphic stack (E7): a polymorphic function recursing Depth
/// deep, then allocating; Appel's chain walk is quadratic here.
std::string polyDeep(int Depth, int AllocN);

/// The paper's section 3 program: `f x = ((x,x), [3])` used at bool list
/// and int, plus polymorphic map over different element types.
std::string polyPaper();

/// Dead-variable workload (E5): a large structure becomes dead before a
/// long allocating call; liveness lets the collector drop it.
std::string deadVars(int BigN, int AllocN);

/// Symbolic differentiation and simplification over an expression
/// datatype — the "complex user-defined types" case of the paper's
/// code-size discussion. Differentiates a polynomial N times, simplifying
/// after each step; returns the expression's value at X = 2.
std::string symbolicDiff(int N);

/// Tasking: `worker (seed, iters)` building and folding lists, returning a
/// checksum. Entry function name: "worker".
std::string taskWorker();

/// Tasking adversary: `worker` as above plus `spinner (rounds, spin)`
/// which computes without allocating between coarse rounds — it delays
/// world-stop under the AllocationOnly policy.
std::string taskWorkerAndSpinner();

} // namespace tfgc::workloads

#endif // TFGC_WORKLOADS_PROGRAMS_H
