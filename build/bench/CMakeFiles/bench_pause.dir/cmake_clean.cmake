file(REMOVE_RECURSE
  "CMakeFiles/bench_pause.dir/bench_pause.cpp.o"
  "CMakeFiles/bench_pause.dir/bench_pause.cpp.o.d"
  "bench_pause"
  "bench_pause.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pause.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
