//===- vm/Vm.h - Register VM over the IR ------------------------*- C++ -*-===//
///
/// \file
/// Executes the IR with explicit activation records (runtime/Roots.h).
/// The VM plays the role of the compiled mutator:
///
/// * values follow the collector's value model (tag-free or tagged, with
///   tag stripping/reinstating under the tagged model — the mutator
///   overheads of E1; in-range tagged floats self-tag instead of boxing,
///   see runtime/Value.h);
/// * before any instruction that might collect, the current frame records
///   the site's code image address — the "return address" the collector
///   dereferences (Figure 1/2);
/// * frames are zero-initialized only under strategies that require it
///   (tagged and Appel; the paper's per-site routines trace only
///   initialized slots, so the Goldberg strategies skip zeroing — E9).
///
/// The hot path runs over a pre-decoded instruction stream (vm/Decode.h)
/// through one of two dispatch loops generated from the same handler
/// bodies (vm/VmExec.inc): a computed-goto direct-threaded loop (GNU
/// toolchains, unless configured out with -DTFGC_THREADED_DISPATCH=OFF)
/// and a portable switch loop. Both loops drive a unified fuel counter
/// that folds the sampling profiler, the step limit, the execution budget
/// and the tasking GC safepoint poll into a single per-instruction
/// compare (see exec()).
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_VM_VM_H
#define TFGC_VM_VM_H

#include "core/Collector.h"
#include "gcmeta/CodeImage.h"
#include "ir/Ir.h"
#include "runtime/Roots.h"
#include "vm/Decode.h"

#include <memory>
#include <string>
#include <vector>

/// Configure-time master switch for the computed-goto loop (CMake option
/// TFGC_THREADED_DISPATCH). Compiler support is still required on top.
#ifndef TFGC_THREADED_DISPATCH
#define TFGC_THREADED_DISPATCH 1
#endif
#if TFGC_THREADED_DISPATCH && defined(__GNUC__)
#define TFGC_HAVE_THREADED 1
#else
#define TFGC_HAVE_THREADED 0
#endif

namespace tfgc {

/// Where a task polls for a pending world-stop (paper section 4).
enum class SuspendChecks : uint8_t {
  None,         ///< Sequential VM: collect immediately on exhaustion.
  AtAllocation, ///< Suspend only inside the allocation routines.
  AtEveryCall,  ///< Explicit test at every call site.
  RgcRegister,  ///< Every call, via the Rgc register trick (free test).
};

/// How the interpreter loop dispatches decoded instructions.
enum class DispatchMode : uint8_t {
  Auto,     ///< Threaded when compiled in, else switch.
  Switch,   ///< Portable switch loop.
  Threaded, ///< Computed-goto direct threading (GNU toolchains).
};

/// Mediates stop-the-world collections across tasks. Implemented by the
/// tasking runtime; the sequential VM has none.
class GcCoordinator {
public:
  virtual ~GcCoordinator() = default;
  /// True when some task exhausted the heap and the world must stop.
  virtual bool gcPending() const = 0;
  /// Called by the task that exhausted the heap.
  virtual void requestGc(size_t NeedWords) = 0;
};

struct VmOptions {
  /// Collect at every allocation (testing).
  bool GcStress = false;
  /// Zero frame slots at function entry (forced on for tagged/Appel).
  bool ZeroFrames = false;
  /// Execution fuse.
  uint64_t MaxSteps = 2'000'000'000ull;
  /// Tasking: suspension polling policy and the coordinator to poll.
  SuspendChecks Checks = SuspendChecks::None;
  GcCoordinator *Coord = nullptr;
  /// This VM's task index in the monitor's per-task cells (0 for the
  /// sequential VM; the tasking runtime numbers its tasks).
  uint32_t TaskIndex = 0;
  /// Dispatch loop selection; Auto resolves to threaded when available.
  DispatchMode Dispatch = DispatchMode::Auto;
  /// Fuse superinstruction windows at decode time.
  bool FuseSuperinstructions = true;
  /// Tagged model: self-tag in-range float doubles instead of boxing.
  bool FloatSelfTag = true;
  /// Decode self-recursive tail calls into frame-reusing transfers.
  bool TailCalls = true;
  /// Pre-decoded program shared across VMs (the tasking runtime decodes
  /// once for all tasks). Must match this VM's model/fusion/float config;
  /// the VM decodes privately when null.
  DecodedProgram *Decoded = nullptr;
  /// Thread-local allocation buffer for OS-thread mutators (sched/
  /// ThreadedTasking). When set, allocation bumps this buffer and refills
  /// it with a CAS off the shared nursery cursor — no lock on the fast
  /// path — and allocation counters land in this task's shard. Null for
  /// the sequential VM and the cooperative scheduler (bit-identical
  /// counters with the pre-thread runtime depend on this).
  Tlab *ThreadTlab = nullptr;
  /// This task's flight-recorder ring (null when not recording). The VM
  /// stamps GcRequest on heap exhaustion and a cheap VmEpoch at each
  /// safepoint poll window, so a thread's timeline shows it was running
  /// between parks. Null keeps both sites at one never-taken branch.
  FlightRing *Flight = nullptr;
};

enum class StepResult : uint8_t {
  Ran,         ///< Executed at least one instruction (budget or safepoint
               ///< yield included).
  Done,        ///< Program finished; returnValue() is valid.
  Failed,      ///< Runtime error; error() is set.
  BlockedOnGc, ///< Suspended at a GC safe point (tasking only); the
               ///< instruction re-executes after the collection.
};

struct RunResult {
  bool Ok = false;
  std::string Value;  ///< Rendered final value.
  std::string Output; ///< print output, one line per call.
  std::string Error;
};

class Vm {
public:
  Vm(const IrProgram &Prog, const CodeImage &Img, TypeContext &Types,
     Collector &Col, VmOptions Opts = {});

  RunResult run();

  /// Executes up to \p Budget instruction steps (a fused superinstruction
  /// counts as its constituent steps), returning early on completion,
  /// failure, a GC block, or — under tasking — a safepoint poll that saw
  /// a pending collection. Always makes progress: the first instruction
  /// of a call runs even if it alone exceeds the budget.
  StepResult exec(uint64_t Budget);

  /// Executes one instruction (legacy single-step interface).
  StepResult step() { return exec(1); }

  /// True when this build contains the computed-goto loop.
  static bool threadedDispatchAvailable() { return TFGC_HAVE_THREADED; }
  /// The loop this VM actually uses (after Auto resolution).
  DispatchMode dispatchMode() const {
    return UseThreaded ? DispatchMode::Threaded : DispatchMode::Switch;
  }
  const DecodedProgram &decoded() const { return *DP; }

  /// Starts execution at \p Entry (a non-closure function) with the given
  /// argument words (already in the value model's representation). run()
  /// and exec() default to the program's main function.
  void start(FuncId Entry, const std::vector<Word> &Args);
  Word returnValue() const { return ReturnValue; }
  const std::string &error() const { return Error; }
  /// Renders the final value (after Done).
  std::string renderResult();
  const std::string &output() const { return Output; }
  TaskStack &mutableStack() { return Stack; }

  /// Renders a value of type \p Ty under the current value model.
  std::string renderValue(Word V, Type *Ty, int Depth = 0);

  Collector &collector() { return Col; }
  Stats &stats() { return Col.stats(); }
  const TaskStack &stack() const { return Stack; }
  /// Instructions executed so far (the hot counter, not the Stats slot).
  uint64_t steps() const { return Steps; }

  /// Flushes the hot counters (steps, tag ops, zeroed words, ...) into the
  /// stats registry; called automatically at the end of run().
  void flushCounters();

  /// Flushes only the VM-owned hot counters into this task's StatsShard —
  /// no gauges, no telemetry publish. Called at every safepoint the VM
  /// reaches (GC handoff in allocate(), sample points) so collection and
  /// heartbeat epoch folds see fresh vm.* values. Cheap: a dozen stores
  /// into the task's own cache-line-padded shard.
  void flushHotCounters();

  /// Steps between tasking safepoint polls in the fuel counter; also the
  /// guaranteed minimum progress per exec() before a poll may yield.
  static constexpr uint64_t SafepointPollSteps = 64;

private:
  const IrProgram &Prog;
  const CodeImage &Img;
  TypeContext &Types;
  Collector &Col;
  VmOptions Opts;
  ValueModel Model;

  /// Decoded instruction stream (shared or owned).
  DecodedProgram *DP = nullptr;
  std::unique_ptr<DecodedProgram> OwnedDecoded;
  bool UseThreaded = false;

  /// This task's counter shard (task TaskIndex -> shard TaskIndex+1;
  /// shard 0 is the collector's). Written with plain stores only by this
  /// VM; read by epoch folds at safepoints.
  StatsShard *Shard = nullptr;

  TaskStack Stack;
  uint32_t SlotTop = 0;
  std::string Output;
  std::string Error;
  Word ReturnValue = 0;
  FuncId EntryFn = 0;
  bool DoneFlag = false;
  bool Blocked = false;
  bool Started = false;

  // Hot counters (plain fields; Stats map lookups are too slow for the
  // interpreter loop).
  uint64_t Steps = 0;
  uint64_t TagOps = 0;
  uint64_t FloatBoxes = 0;
  uint64_t Calls = 0;
  uint64_t WordsZeroed = 0;
  uint64_t SuspendChecksRun = 0;
  uint64_t BarrierOps = 0;
  /// Superinstructions executed (vm.superinstructions_executed).
  uint64_t SuperExec = 0;
  /// Frame-reusing self tail calls taken (vm.tail_calls).
  uint64_t TailCallsExec = 0;
  /// True when the collector runs the generational algorithm (cached so
  /// the non-generational store fast path stays a single branch).
  bool GenBarriers = false;
  /// Cached Opts decisions for the hot loop.
  bool ChecksAtCalls = false;  ///< AtEveryCall or RgcRegister.
  bool CountCallChecks = false;///< AtEveryCall (Rgc checks are free).
  bool SelfTagFloats = false;  ///< Tagged model with float self-tagging.
  uint32_t MaxFrames = 0;
  uint32_t MaxSlotWords = 0;

  /// Sampling monitor hook. The fuel counter stops the loop at the
  /// absolute step NextSampleAt (UINT64_MAX with no monitor attached);
  /// fireSample() attributes the sample and re-arms.
  Monitor *Mon = nullptr;
  uint64_t SamplePeriod = 0;
  uint64_t NextSampleAt = UINT64_MAX;
  /// Next absolute step at which a tasking VM polls the coordinator for a
  /// pending world-stop (re-armed at every exec() entry; UINT64_MAX for
  /// the sequential VM).
  uint64_t NextPollAt = UINT64_MAX;
  /// Cached Opts.Flight for the dispatch loops.
  FlightRing *FlightR = nullptr;

  /// The two dispatch loops, generated from vm/VmExec.inc. The threaded
  /// loop doubles as the label-table exporter: called with \p TableOut it
  /// returns the handler address table without executing (in non-threaded
  /// builds it forwards to the switch loop).
  StepResult execSwitchLoop(uint64_t Budget);
  StepResult execThreadedLoop(uint64_t Budget, const void *const **TableOut);
  /// Fills DInstr::Handler across \p D from the threaded loop's table.
  void fillHandlers(DecodedProgram &D);

  void pushFrame(FuncId Callee, const Word *Args, unsigned NumArgs,
                 bool HasSelf, Word Self, SlotIndex CallerDst);
  /// Allocates through the collector, recording the pending site and
  /// collecting when needed. Returns the payload or null on OOM.
  Word *allocate(size_t PayloadWords, ObjKind Kind, CallSiteId Site,
                 uint32_t FrameIdx);

  /// Every successful allocation funnels through here; with a heap
  /// profiler attached it logs (site, address) for allocation-site
  /// attribution. One null check when profiling is off.
  Word *finishAlloc(Word *P, CallSiteId Site) {
    if (P)
      if (HeapProfiler *Prof = Col.heapProfiler()) [[unlikely]]
        Prof->recordAlloc(Prog.site(Site).AllocId, (Word)(uintptr_t)P);
    return P;
  }
  bool fail(const std::string &Message);

  /// Out-of-line sample point: attributes one profiler sample (class
  /// \p Cls — for superinstructions, the class of the constituent the
  /// sampled step lands on) and re-arms NextSampleAt.
  void fireSample(uint32_t FrameIdx, OpClass Cls);

  /// Tagged-model float read: self-tagged word or box pointer.
  double readFloatTG(Word W) const {
    return isSelfTagFloat(W) ? selfTagToFloat(W)
                             : wordToFloat(*reinterpret_cast<const Word *>(W));
  }
  double readFloat(Word W) const;
};

} // namespace tfgc

#endif // TFGC_VM_VM_H
