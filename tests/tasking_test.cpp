//===- tests/tasking_test.cpp - Multi-task collection (paper sec. 4) -----===//

#include "TestUtil.h"
#include "tasking/Tasking.h"
#include "workloads/Programs.h"

using namespace tfgc;
using namespace tfgc::test;
namespace wl = tfgc::workloads;

namespace {

struct World {
  std::unique_ptr<CompiledProgram> P;
  Stats St;
  std::unique_ptr<Collector> Col;
  std::unique_ptr<TaskingRuntime> Rt;
};

World makeWorld(const std::string &Source, GcStrategy S, SuspendChecks Policy,
                size_t HeapBytes = 1 << 13,
                GcAlgorithm Algo = GcAlgorithm::Copying) {
  World W;
  // Tasking needs gc_words at every call site and call-argument tracing
  // (see DESIGN.md).
  CompileOptions O;
  O.TaskingSafe = true;
  Compiler C(O);
  std::string Err;
  W.P = C.compile(Source, &Err);
  EXPECT_TRUE(W.P != nullptr) << Err;
  W.Col = W.P->makeCollector(S, Algo, HeapBytes, W.St, &Err);
  EXPECT_TRUE(W.Col != nullptr) << Err;
  TaskingOptions TO;
  TO.Policy = Policy;
  TO.ZeroFrames = S == GcStrategy::Tagged || S == GcStrategy::AppelTagFree;
  W.Rt = std::make_unique<TaskingRuntime>(W.P->Prog, W.P->Image, *W.P->Types,
                                          *W.Col, TO);
  return W;
}

const SuspendChecks AllPolicies[] = {
    SuspendChecks::AtAllocation,
    SuspendChecks::AtEveryCall,
    SuspendChecks::RgcRegister,
};

TEST(Tasking, SingleTaskMatchesSequential) {
  ExecResult Seq = execProgram(wl::taskWorker(), GcStrategy::CompiledTagFree);
  ASSERT_TRUE(Seq.Run.Ok);

  World W = makeWorld(wl::taskWorker(), GcStrategy::CompiledTagFree,
                      SuspendChecks::AtEveryCall);
  FuncId Worker = findFunction(W.P->Prog, "worker");
  ASSERT_NE(Worker, InvalidFunc);
  W.Rt->spawnInt(Worker, {1, 1});
  ASSERT_TRUE(W.Rt->runAll());
  EXPECT_EQ(W.Rt->results()[0].Value, Seq.Run.Value);
}

TEST(Tasking, ManyTasksAllPoliciesAllStrategies) {
  // 4 workers with distinct seeds; expected values from sequential runs
  // computed once.
  std::vector<std::string> Expected;
  {
    World W = makeWorld(wl::taskWorker(), GcStrategy::CompiledTagFree,
                        SuspendChecks::AtEveryCall, 1 << 20);
    FuncId Worker = findFunction(W.P->Prog, "worker");
    for (int64_t Seed = 1; Seed <= 4; ++Seed)
      W.Rt->spawnInt(Worker, {Seed, 40});
    ASSERT_TRUE(W.Rt->runAll());
    for (const TaskResult &R : W.Rt->results())
      Expected.push_back(R.Value);
  }

  for (GcStrategy S : AllStrategies) {
    for (SuspendChecks Policy : AllPolicies) {
      World W = makeWorld(wl::taskWorker(), S, Policy);
      FuncId Worker = findFunction(W.P->Prog, "worker");
      for (int64_t Seed = 1; Seed <= 4; ++Seed)
        W.Rt->spawnInt(Worker, {Seed, 40});
      ASSERT_TRUE(W.Rt->runAll()) << gcStrategyName(S);
      for (size_t I = 0; I < 4; ++I)
        EXPECT_EQ(W.Rt->results()[I].Value, Expected[I])
            << gcStrategyName(S) << " policy " << (int)Policy;
      EXPECT_GT(W.St.get("task.world_stops"), 0u) << gcStrategyName(S);
    }
  }
}

TEST(Tasking, WorldStopsRequireAllTasksSuspended) {
  World W = makeWorld(wl::taskWorker(), GcStrategy::CompiledTagFree,
                      SuspendChecks::AtEveryCall, 1 << 12);
  FuncId Worker = findFunction(W.P->Prog, "worker");
  for (int64_t Seed = 1; Seed <= 3; ++Seed)
    W.Rt->spawnInt(Worker, {Seed, 30});
  ASSERT_TRUE(W.Rt->runAll());
  EXPECT_GT(W.St.get("task.gc_requests"), 0u);
  EXPECT_GE(W.St.get("task.world_stops"), W.St.get("task.gc_requests"));
}

TEST(Tasking, EveryCallPolicyExecutesMoreChecksThanAllocationOnly) {
  uint64_t Checks[2];
  SuspendChecks Policies[2] = {SuspendChecks::AtAllocation,
                               SuspendChecks::AtEveryCall};
  for (int I = 0; I < 2; ++I) {
    World W = makeWorld(wl::taskWorker(), GcStrategy::CompiledTagFree,
                        Policies[I]);
    FuncId Worker = findFunction(W.P->Prog, "worker");
    W.Rt->spawnInt(Worker, {1, 30});
    W.Rt->spawnInt(Worker, {2, 30});
    ASSERT_TRUE(W.Rt->runAll());
    Checks[I] = W.St.get("task.suspend_checks");
  }
  EXPECT_GT(Checks[1], Checks[0]);
}

TEST(Tasking, RgcPolicyHasAllocationOnlyCheckCost) {
  // The Rgc register folds the per-call test into the jump, so explicit
  // checks match the allocation-only policy while stop latency matches
  // the every-call policy.
  uint64_t RgcChecks, AllocChecks;
  {
    World W = makeWorld(wl::taskWorker(), GcStrategy::CompiledTagFree,
                        SuspendChecks::RgcRegister);
    FuncId Worker = findFunction(W.P->Prog, "worker");
    W.Rt->spawnInt(Worker, {1, 30});
    W.Rt->spawnInt(Worker, {2, 30});
    ASSERT_TRUE(W.Rt->runAll());
    RgcChecks = W.St.get("task.suspend_checks");
  }
  {
    World W = makeWorld(wl::taskWorker(), GcStrategy::CompiledTagFree,
                        SuspendChecks::AtAllocation);
    FuncId Worker = findFunction(W.P->Prog, "worker");
    W.Rt->spawnInt(Worker, {1, 30});
    W.Rt->spawnInt(Worker, {2, 30});
    ASSERT_TRUE(W.Rt->runAll());
    AllocChecks = W.St.get("task.suspend_checks");
  }
  // Same workload, same suspension checks charged.
  EXPECT_NEAR((double)RgcChecks, (double)AllocChecks,
              0.2 * (double)AllocChecks);
}

TEST(Tasking, SpinnerDelaysWorldStopUnderAllocationOnly) {
  // A task that computes without allocating keeps running after another
  // task exhausts the heap; with every-call checks it stops at its next
  // call instead.
  auto Run = [&](SuspendChecks Policy) -> uint64_t {
    World W = makeWorld(wl::taskWorkerAndSpinner(),
                        GcStrategy::CompiledTagFree, Policy, 1 << 12);
    FuncId Worker = findFunction(W.P->Prog, "worker");
    FuncId Spinner = findFunction(W.P->Prog, "spinner");
    W.Rt->spawnInt(Worker, {1, 40});
    W.Rt->spawnInt(Spinner, {40, 3000});
    EXPECT_TRUE(W.Rt->runAll());
    return W.St.get("task.steps_to_world_stop_max");
  };
  uint64_t AllocOnly = Run(SuspendChecks::AtAllocation);
  uint64_t EveryCall = Run(SuspendChecks::AtEveryCall);
  EXPECT_GT(AllocOnly, EveryCall);
}

TEST(Tasking, MarkSweepSharedHeap) {
  World W = makeWorld(wl::taskWorker(), GcStrategy::CompiledTagFree,
                      SuspendChecks::AtEveryCall, 1 << 13,
                      GcAlgorithm::MarkSweep);
  FuncId Worker = findFunction(W.P->Prog, "worker");
  for (int64_t Seed = 1; Seed <= 3; ++Seed)
    W.Rt->spawnInt(Worker, {Seed, 30});
  ASSERT_TRUE(W.Rt->runAll());
  EXPECT_GT(W.St.get("task.world_stops"), 0u);

  World Ref = makeWorld(wl::taskWorker(), GcStrategy::CompiledTagFree,
                        SuspendChecks::AtEveryCall, 1 << 20);
  FuncId W2 = findFunction(Ref.P->Prog, "worker");
  for (int64_t Seed = 1; Seed <= 3; ++Seed)
    Ref.Rt->spawnInt(W2, {Seed, 30});
  ASSERT_TRUE(Ref.Rt->runAll());
  for (size_t I = 0; I < 3; ++I)
    EXPECT_EQ(W.Rt->results()[I].Value, Ref.Rt->results()[I].Value);
}

TEST(Tasking, AppelStrategyZeroFramesUnderTasking) {
  World W = makeWorld(wl::taskWorker(), GcStrategy::AppelTagFree,
                      SuspendChecks::AtAllocation, 1 << 13);
  FuncId Worker = findFunction(W.P->Prog, "worker");
  W.Rt->spawnInt(Worker, {1, 25});
  W.Rt->spawnInt(Worker, {2, 25});
  ASSERT_TRUE(W.Rt->runAll());
  EXPECT_GT(W.St.get("vm.frame_words_zeroed"), 0u);
}

TEST(Tasking, TaskFailurePropagates) {
  World W = makeWorld("fun boom (x : int) (y : int) : int = x / y;\nboom 1 0",
                      GcStrategy::CompiledTagFree,
                      SuspendChecks::AtEveryCall);
  FuncId Boom = findFunction(W.P->Prog, "boom");
  W.Rt->spawnInt(Boom, {1, 0});
  EXPECT_FALSE(W.Rt->runAll());
  EXPECT_EQ(W.Rt->results()[0].Error, "division by zero");
}

TEST(Tasking, SharedHeapObjectsStayCoherent) {
  // Tasks do not share values directly here, but they interleave
  // allocations in one heap; collections triggered by one task must keep
  // every other task's structures intact.
  World W = makeWorld(wl::taskWorker(), GcStrategy::CompiledTagFree,
                      SuspendChecks::AtEveryCall, 1 << 12);
  FuncId Worker = findFunction(W.P->Prog, "worker");
  for (int64_t Seed = 1; Seed <= 6; ++Seed)
    W.Rt->spawnInt(Worker, {Seed, 25});
  ASSERT_TRUE(W.Rt->runAll());
  World Ref = makeWorld(wl::taskWorker(), GcStrategy::CompiledTagFree,
                        SuspendChecks::AtEveryCall, 1 << 20);
  FuncId W2 = findFunction(Ref.P->Prog, "worker");
  for (int64_t Seed = 1; Seed <= 6; ++Seed)
    Ref.Rt->spawnInt(W2, {Seed, 25});
  ASSERT_TRUE(Ref.Rt->runAll());
  for (size_t I = 0; I < 6; ++I)
    EXPECT_EQ(W.Rt->results()[I].Value, Ref.Rt->results()[I].Value);
}

TEST(Tasking, PerTaskStepAndStopDelayStats) {
  // Every task publishes task.<i>.mutator_steps, and tasks that were
  // parked at a GC safe point publish a world-stop-delay histogram.
  World W = makeWorld(wl::taskWorker(), GcStrategy::CompiledTagFree,
                      SuspendChecks::AtEveryCall, 1 << 12);
  FuncId Worker = findFunction(W.P->Prog, "worker");
  for (int64_t Seed = 1; Seed <= 3; ++Seed)
    W.Rt->spawnInt(Worker, {Seed, 30});
  ASSERT_TRUE(W.Rt->runAll());
  ASSERT_GT(W.St.get("task.world_stops"), 0u);

  uint64_t TotalSteps = 0, TotalDelays = 0;
  for (int I = 0; I < 3; ++I) {
    std::string Base = "task." + std::to_string(I);
    uint64_t Steps = W.St.get(Base + ".mutator_steps");
    EXPECT_GT(Steps, 0u) << Base;
    TotalSteps += Steps;
    uint64_t Delays = W.St.get(Base + ".world_stop_delays");
    TotalDelays += Delays;
    if (Delays > 0) {
      // Percentiles come from a log histogram: monotone, and present
      // exactly when the count is.
      uint64_t P50 = W.St.get(Base + ".world_stop_delay_ns_p50");
      uint64_t P90 = W.St.get(Base + ".world_stop_delay_ns_p90");
      uint64_t P99 = W.St.get(Base + ".world_stop_delay_ns_p99");
      EXPECT_LE(P50, P90) << Base;
      EXPECT_LE(P90, P99) << Base;
    }
  }
  // Each VM's counter flush sets the shared vm.steps stat (last writer
  // wins), so the per-task split is the only complete accounting; it
  // dominates any single task's count.
  EXPECT_GE(TotalSteps, W.St.get(StatId::VmSteps));
  // Each world stop parks every task that did not trigger it; with 3
  // tasks at least the non-triggering ones record a delay. (A task that
  // already finished records none, hence >= rather than ==.)
  EXPECT_GE(TotalDelays, W.St.get("task.world_stops"));
}

TEST(Tasking, MonitorSeesPerTaskActivity) {
  // With a monitor attached before the tasks spawn, samples and stop
  // delays are attributed per task and surface in mon.* stats.
  World W;
  CompileOptions O;
  O.TaskingSafe = true;
  Compiler C(O);
  std::string Err;
  W.P = C.compile(wl::taskWorker(), &Err);
  ASSERT_TRUE(W.P != nullptr) << Err;
  W.Col = W.P->makeCollector(GcStrategy::CompiledTagFree,
                             GcAlgorithm::Copying, 1 << 12, W.St, &Err);
  ASSERT_TRUE(W.Col != nullptr) << Err;
  Monitor::Options MO;
  MO.SamplePeriodSteps = 64;
  Monitor Mon(MO);
  attachMonitor(*W.P, *W.Col, Mon);
  TaskingOptions TO;
  TO.Policy = SuspendChecks::AtEveryCall;
  W.Rt = std::make_unique<TaskingRuntime>(W.P->Prog, W.P->Image, *W.P->Types,
                                          *W.Col, TO);
  FuncId Worker = findFunction(W.P->Prog, "worker");
  for (int64_t Seed = 1; Seed <= 3; ++Seed)
    W.Rt->spawnInt(Worker, {Seed, 30});
  ASSERT_TRUE(W.Rt->runAll());

  // Monitor step accounting covers all tasks and agrees with the
  // per-task stats published by the runtime.
  uint64_t TotalSteps = 0;
  for (int I = 0; I < 3; ++I)
    TotalSteps += W.St.get("task." + std::to_string(I) + ".mutator_steps");
  EXPECT_EQ(Mon.stepsObserved(), TotalSteps);
  // Sampling stayed armed across task switches (each VM counts down its
  // own fuel), so the invariant holds with one period of slack per task.
  uint64_t Drift = Mon.samples() * 64 > TotalSteps
                       ? Mon.samples() * 64 - TotalSteps
                       : TotalSteps - Mon.samples() * 64;
  EXPECT_LE(Drift, 64u * 4) << "samples " << Mon.samples() << " steps "
                            << TotalSteps;
  EXPECT_GT(W.St.get("mon.samples"), 0u);
}

} // namespace
