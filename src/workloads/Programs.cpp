//===- workloads/Programs.cpp ---------------------------------------------===//

#include "workloads/Programs.h"

using namespace tfgc;

static std::string num(int N) { return std::to_string(N); }

std::string workloads::listPrelude() {
  return R"(
fun build (n : int) : int list =
  if n = 0 then [] else n :: build (n - 1);

fun sum (xs : int list) : int =
  case xs of Nil => 0 | Cons(x, r) => x + sum r;

fun len (xs : int list) : int =
  case xs of Nil => 0 | Cons(_, r) => 1 + len r;

fun append (xs : int list) (ys : int list) : int list =
  case xs of Nil => ys | Cons(x, r) => x :: append r ys;

fun revAcc (xs : int list) (acc : int list) : int list =
  case xs of Nil => acc | Cons(x, r) => revAcc r (x :: acc);

fun rev (xs : int list) : int list = revAcc xs [];
)";
}

std::string workloads::listChurn(int N, int Iters) {
  return listPrelude() + R"(
fun churn (i : int) (acc : int) : int =
  if i = 0 then acc
  else churn (i - 1) (acc + sum (rev (build )" +
         num(N) + R"())) mod 1000000007;
churn )" +
         num(Iters) + " 0\n";
}

std::string workloads::binaryTrees(int Depth, int Iters) {
  return R"(
datatype tree = Leaf | Node of tree * int * tree;

fun make (d : int) : tree =
  if d = 0 then Leaf else Node(make (d - 1), d, make (d - 1));

fun check (t : tree) : int =
  case t of Leaf => 0 | Node(l, v, r) => v + check l + check r;

fun rounds (i : int) (acc : int) : int =
  if i = 0 then acc
  else rounds (i - 1) (acc + check (make )" +
         num(Depth) + R"());
rounds )" +
         num(Iters) + " 0\n";
}

std::string workloads::nqueens(int N) {
  return R"(
fun abs (x : int) : int = if x < 0 then ~x else x;

fun safe (q : int) (d : int) (qs : int list) : bool =
  case qs of
    Nil => true
  | Cons(x, r) =>
      if x = q then false
      else if abs (x - q) = d then false
      else safe q (d + 1) r;

fun solve (k : int) (qs : int list) (n : int) : int =
  if k = 0 then 1 else tryCols n qs k n
and tryCols (c : int) (qs : int list) (k : int) (n : int) : int =
  if c = 0 then 0
  else (if safe c 1 qs then solve (k - 1) (c :: qs) n else 0)
       + tryCols (c - 1) qs k n;

solve )" + num(N) +
         " [] " + num(N) + "\n";
}

std::string workloads::appendPaper(int N) {
  return listPrelude() + R"(
sum (append (build )" +
         num(N) + R"() (build )" + num(N) + "))\n";
}

std::string workloads::arithKernel(int Iters) {
  return R"(
fun kern (i : int) (acc : int) : int =
  if i = 0 then acc
  else kern (i - 1) ((acc * 3 + i) mod 262139);
kern )" + num(Iters) +
         " 1\n";
}

std::string workloads::floatKernel(int N, int Iters) {
  return R"(
fun fbuild (n : int) : float list =
  if n = 0 then [] else real n :: fbuild (n - 1);

fun fsum (xs : float list) : float =
  case xs of Nil => 0.0 | Cons(x, r) => x +. fsum r;

fun frounds (i : int) (acc : float) : float =
  if i = 0 then acc
  else frounds (i - 1) (acc +. fsum (fbuild )" +
         num(N) + R"());
frounds )" +
         num(Iters) + " 0.0\n";
}

std::string workloads::floatMath(int Iters) {
  return R"(
fun fm (i : int) (acc : float) : float =
  if i = 0 then acc
  else
    let val t = acc *. 1.0000001 +. real i /. 3.0 -. 0.5
    in fm (i - 1) (if t <. 1000000.0 then t else t /. 1000000.0) end;
fm )" + num(Iters) +
         " 1.0\n";
}

std::string workloads::opcodeMix(int Iters) {
  return R"(
datatype rec2 = R of int * int;

fun pick (b : rec2) (i : int) : int =
  case b of R(a, c) => if i mod 2 = 0 then a else c;

fun mix (i : int) (acc : int) (b : rec2) : int =
  if i = 0 then acc
  else
    let val v = pick b i
        val acc2 = (acc * 5 + v - i) mod 999983
    in mix (i - 1) (if acc2 < 0 then acc2 + 999983 else acc2) b end;

mix )" + num(Iters) +
         " 1 (R(3, 11))\n";
}

std::string workloads::variantRecords(int N) {
  return R"(
datatype shape = Point | Circle of float | Rect of float * float;

fun area (s : shape) : float =
  case s of
    Point => 0.0
  | Circle r => r *. r *. 3.14159
  | Rect(w, h) => w *. h;

fun mk (i : int) : shape =
  if i mod 3 = 0 then Point
  else if i mod 3 = 1 then Circle (real i)
  else Rect(real i, 2.0);

fun mkAll (i : int) : shape list =
  if i = 0 then [] else mk i :: mkAll (i - 1);

fun total (ss : shape list) : float =
  case ss of Nil => 0.0 | Cons(s, r) => area s +. total r;

total (mkAll )" +
         num(N) + ")\n";
}

std::string workloads::higherOrder(int N) {
  return listPrelude() + R"(
fun map (f : int -> int) (xs : int list) : int list =
  case xs of Nil => Nil | Cons(x, r) => Cons(f x, map f r);

fun filter (p : int -> bool) (xs : int list) : int list =
  case xs of
    Nil => Nil
  | Cons(x, r) => if p x then x :: filter p r else filter p r;

fun foldl (f : (int * int) -> int) (acc : int) (xs : int list) : int =
  case xs of Nil => acc | Cons(x, r) => foldl f (f (acc, x)) r;

fun compose (f : int -> int) (g : int -> int) : int -> int =
  fn x => f (g x);

val base = build )" +
         num(N) + R"(;
val k = 7;
val bumped = map (fn x => x + k) base;
val evens = filter (fn x => x mod 2 = 0) bumped;
val doubledPlus = map (compose (fn x => x * 2) (fn x => x + 1)) evens;
foldl (fn (a, b) => a + b) 0 doubledPlus
)";
}

std::string workloads::refCells(int N) {
  return listPrelude() + R"(
datatype node = End | Link of int * node ref;

val acc = ref ([] : int list);

fun pump (i : int) : int =
  if i = 0 then sum (!acc)
  else (acc := i :: !acc;
        (if i mod 16 = 0 then acc := [] else ());
        pump (i - 1));

val a = ref End;
val n1 = Link(1, a);
val b = ref n1;
val n2 = Link(2, b);
val mkCycle = a := n2;

fun chase (n : node) (fuel : int) : int =
  case n of
    End => 0
  | Link(v, r) => if fuel = 0 then v else v + chase (!r) (fuel - 1);

pump )" + num(N) +
         R"( + chase n1 10
)";
}

std::string workloads::generationalChurn(int Retained, int N, int Iters) {
  return R"(
fun build (n : int) : int list =
  if n = 0 then [] else n :: build (n - 1);

fun sum (xs : int list) : int =
  case xs of Nil => 0 | Cons(x, r) => x + sum r;

val keep = build )" +
         num(Retained) + R"(;
val cell = ref ([] : int list);

fun churn (i : int) (acc : int) : int =
  if i = 0 then acc + sum (!cell)
  else (cell := i :: !cell;
        (if i mod 8 = 0 then cell := [] else ());
        churn (i - 1) ((acc + sum (build )" +
         num(N) + R"()) mod 1000000007));

churn )" +
         num(Iters) + " 0 + sum keep\n";
}

std::string workloads::polyDeep(int Depth, int AllocN) {
  return R"(
fun len xs =
  case xs of Nil => 0 | Cons(_, r) => 1 + len r;

fun build (n : int) : int list =
  if n = 0 then [] else n :: build (n - 1);

fun deep xs (d : int) : int =
  if d = 0 then len (build )" +
         num(AllocN) + R"() + len xs
  else deep xs (d - 1) + len xs;

deep [(1, true), (2, false)] )" +
         num(Depth) + "\n";
}

std::string workloads::polyPaper() {
  return R"(
fun map f xs =
  case xs of Nil => Nil | Cons(x, r) => Cons(f x, map f r);

fun length xs =
  case xs of Nil => 0 | Cons(_, r) => 1 + length r;

fun f x = let val y = (x, x) in (y, [3]) end;

val r1 = f [true];
val r2 = f 7;
val pairs = map (fn n => (n, n * 2)) [1, 2, 3, 4];
val flags = map (fn b => not b) [true, false, true];
(r1, r2, length pairs, length flags)
)";
}

std::string workloads::deadVars(int BigN, int AllocN) {
  return listPrelude() + R"(
fun work (u : int) : int =
  let
    val big = build )" +
         num(BigN) + R"(
    val s = sum big
  in
    (* `big` is dead from here on; a live-variable-aware collector frees
       it during the allocation below. *)
    s + len (build )" +
         num(AllocN) + R"()
  end;
work 0
)";
}

std::string workloads::symbolicDiff(int N) {
  return R"(
datatype expr =
    Num of int
  | Var
  | Add of expr * expr
  | Mul of expr * expr;

fun deriv (e : expr) : expr =
  case e of
    Num _ => Num 0
  | Var => Num 1
  | Add(a, b) => Add(deriv a, deriv b)
  | Mul(a, b) => Add(Mul(deriv a, b), Mul(a, deriv b));

fun simp (e : expr) : expr =
  case e of
    Num n => Num n
  | Var => Var
  | Add(a, b) =>
      (case (simp a, simp b) of
         (Num 0, sb) => sb
       | (sa, Num 0) => sa
       | (Num x, Num y) => Num (x + y)
       | (sa, sb) => Add(sa, sb))
  | Mul(a, b) =>
      (case (simp a, simp b) of
         (Num 0, _) => Num 0
       | (_, Num 0) => Num 0
       | (Num 1, sb) => sb
       | (sa, Num 1) => sa
       | (Num x, Num y) => Num (x * y)
       | (sa, sb) => Mul(sa, sb));

fun evalAt (e : expr) (x : int) : int =
  case e of
    Num n => n
  | Var => x
  | Add(a, b) => evalAt a x + evalAt b x
  | Mul(a, b) => evalAt a x * evalAt b x;

(* x^4 + 3x^2 + 7x + 5, written out. *)
fun poly (u : int) : expr =
  Add(Mul(Var, Mul(Var, Mul(Var, Var))),
      Add(Mul(Num 3, Mul(Var, Var)),
          Add(Mul(Num 7, Var), Num 5)));

fun derivN (e : expr) (n : int) : expr =
  if n = 0 then e else derivN (simp (deriv e)) (n - 1);

fun rounds (i : int) (acc : int) : int =
  if i = 0 then acc
  else rounds (i - 1) (acc + evalAt (derivN (poly 0) )" +
         num(N) + R"() 2);

rounds 40 0
)";
}

std::string workloads::taskWorker() {
  return listPrelude() + R"(
fun worker (seed : int) (iters : int) : int =
  if iters = 0 then seed
  else worker ((seed + sum (rev (build (16 + seed mod 17)))) mod 100003)
              (iters - 1);
worker 1 1
)";
}

std::string workloads::taskWorkerAndSpinner() {
  return listPrelude() + R"(
fun worker (seed : int) (iters : int) : int =
  if iters = 0 then seed
  else worker ((seed + sum (rev (build (16 + seed mod 17)))) mod 100003)
              (iters - 1);

fun spin (n : int) : int = if n = 0 then 0 else spin (n - 1);

fun spinner (rounds : int) (spinN : int) : int =
  if rounds = 0 then 0
  else len (build 4) + spin spinN + spinner (rounds - 1) spinN;
worker 1 1
)";
}
