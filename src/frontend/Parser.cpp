//===- frontend/Parser.cpp ------------------------------------------------===//

#include "frontend/Parser.h"

#include <cassert>

using namespace tfgc;

Parser::Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
    : Tokens(std::move(Tokens)), Diags(Diags) {
  assert(!this->Tokens.empty() && this->Tokens.back().Kind == TokenKind::Eof &&
         "token stream must end with Eof");
}

const Token &Parser::peek(size_t Ahead) const {
  size_t Index = Pos + Ahead;
  if (Index >= Tokens.size())
    Index = Tokens.size() - 1;
  return Tokens[Index];
}

const Token &Parser::advance() {
  const Token &T = Tokens[Pos];
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::accept(TokenKind Kind) {
  if (!check(Kind))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (accept(Kind))
    return true;
  Diags.error(loc(), std::string("expected ") + tokenKindName(Kind) + " " +
                         Context + ", found " + tokenKindName(peek().Kind));
  return false;
}

bool Parser::atDeclStart() const {
  TokenKind K = peek().Kind;
  return K == TokenKind::KwDatatype || K == TokenKind::KwFun ||
         K == TokenKind::KwVal;
}

bool Parser::atAtomStart() const {
  switch (peek().Kind) {
  case TokenKind::IntLit:
  case TokenKind::FloatLit:
  case TokenKind::KwTrue:
  case TokenKind::KwFalse:
  case TokenKind::Ident:
  case TokenKind::CapIdent:
  case TokenKind::LParen:
  case TokenKind::LBracket:
    return true;
  default:
    return false;
  }
}

std::optional<Program> Parser::parseProgram() {
  Program P;
  // An optional ';' terminates a declaration — needed when the next line
  // starts with an expression that juxtaposition application would
  // otherwise swallow (like OCaml's ';;').
  while (atDeclStart() || check(TokenKind::Semi)) {
    if (accept(TokenKind::Semi))
      continue;
    P.Decls.push_back(parseDecl());
  }
  if (!check(TokenKind::Eof))
    P.Main = parseExpr();
  else
    P.Main = std::make_unique<UnitExpr>(loc());
  expect(TokenKind::Eof, "after program");
  if (Diags.hasErrors())
    return std::nullopt;
  return P;
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

DeclPtr Parser::parseDecl() {
  switch (peek().Kind) {
  case TokenKind::KwDatatype:
    return parseDatatypeDecl();
  case TokenKind::KwFun:
    return parseFunDecl();
  case TokenKind::KwVal:
    return parseValDecl();
  default:
    Diags.error(loc(), "expected declaration");
    advance();
    return std::make_unique<Decl>(DeclKind::Val, loc());
  }
}

DeclPtr Parser::parseDatatypeDecl() {
  SourceLoc Loc = loc();
  expect(TokenKind::KwDatatype, "at datatype declaration");
  auto D = std::make_unique<Decl>(DeclKind::Datatype, Loc);

  // Optional type parameters: 'a  or  ('a, 'b).
  if (check(TokenKind::TyVar)) {
    D->TyVars.push_back(advance().Text);
  } else if (check(TokenKind::LParen) && peek(1).Kind == TokenKind::TyVar) {
    advance();
    do {
      if (!check(TokenKind::TyVar)) {
        Diags.error(loc(), "expected type variable");
        break;
      }
      D->TyVars.push_back(advance().Text);
    } while (accept(TokenKind::Comma));
    expect(TokenKind::RParen, "after datatype type parameters");
  }

  if (check(TokenKind::Ident))
    D->Name = advance().Text;
  else
    Diags.error(loc(), "expected datatype name (lowercase identifier)");
  expect(TokenKind::Equal, "after datatype name");

  do {
    CtorDef C;
    C.Loc = loc();
    if (check(TokenKind::CapIdent))
      C.Name = advance().Text;
    else {
      Diags.error(loc(), "expected constructor name (capitalized)");
      advance();
    }
    if (accept(TokenKind::KwOf)) {
      // Fields: tyPostfix ('*' tyPostfix)*; a parenthesized product counts
      // as a single field of tuple type.
      C.Fields.push_back(parseTypePostfix(nullptr));
      while (accept(TokenKind::Star))
        C.Fields.push_back(parseTypePostfix(nullptr));
    }
    D->Ctors.push_back(std::move(C));
  } while (accept(TokenKind::Pipe));
  return D;
}

DeclPtr Parser::parseFunDecl() {
  SourceLoc Loc = loc();
  expect(TokenKind::KwFun, "at function declaration");
  auto D = std::make_unique<Decl>(DeclKind::Fun, Loc);
  do {
    FunBind B;
    B.Loc = loc();
    if (check(TokenKind::Ident))
      B.Name = advance().Text;
    else
      Diags.error(loc(), "expected function name");
    // One or more atomic patterns.
    while (!check(TokenKind::Equal) && !check(TokenKind::Colon) &&
           !check(TokenKind::Eof)) {
      B.Params.push_back(parseAtomicPattern());
    }
    if (B.Params.empty())
      Diags.error(B.Loc, "function '" + B.Name + "' needs at least one parameter");
    if (accept(TokenKind::Colon))
      B.RetAnnot = parseType();
    expect(TokenKind::Equal, "before function body");
    B.Body = parseExpr();
    D->Binds.push_back(std::move(B));
  } while (accept(TokenKind::KwAnd));
  return D;
}

DeclPtr Parser::parseValDecl() {
  SourceLoc Loc = loc();
  expect(TokenKind::KwVal, "at value declaration");
  auto D = std::make_unique<Decl>(DeclKind::Val, Loc);
  D->Pat = parsePattern();
  expect(TokenKind::Equal, "after value pattern");
  D->Init = parseExpr();
  return D;
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

TypeAstPtr Parser::parseType() {
  std::vector<TypeAstPtr> Group;
  TypeAstPtr T = parseTypeProduct(Group);
  if (!T) {
    // A parenthesized group of >= 2 types: must be an n-ary function
    // domain.
    SourceLoc Loc = Group.empty() ? loc() : Group.front()->Loc;
    if (accept(TokenKind::Arrow)) {
      auto F = std::make_unique<TypeAst>(TypeAstKind::Fun, Loc);
      F->Args = std::move(Group);
      F->Result = parseType();
      return F;
    }
    Diags.error(loc(), "expected '->' after parenthesized parameter types "
                       "(tuple types are written t1 * t2)");
    return std::make_unique<TypeAst>(TypeAstKind::Name, Loc);
  }
  // Arrow: unary function from T.
  if (accept(TokenKind::Arrow)) {
    auto F = std::make_unique<TypeAst>(TypeAstKind::Fun, T->Loc);
    F->Args.push_back(std::move(T));
    F->Result = parseType();
    return F;
  }
  return T;
}

TypeAstPtr Parser::parseTypeProduct(std::vector<TypeAstPtr> &Group) {
  TypeAstPtr T = parseTypePostfix(&Group);
  if (!T)
    return nullptr;
  if (!check(TokenKind::Star))
    return T;
  auto Tup = std::make_unique<TypeAst>(TypeAstKind::Tuple, T->Loc);
  Tup->Args.push_back(std::move(T));
  while (accept(TokenKind::Star))
    Tup->Args.push_back(parseTypePostfix(nullptr));
  return Tup;
}

/// Parses a type at postfix-application precedence: atom followed by any
/// number of postfix constructor names (`int list list`). A paren group is
/// resolved as a multi-argument type application if an identifier follows;
/// otherwise it is handed to the caller through \p Group (null = error).
TypeAstPtr Parser::parseTypePostfix(std::vector<TypeAstPtr> *Group) {
  std::vector<TypeAstPtr> Local;
  TypeAstPtr T = parseTypeAtomOrGroup(Local);
  if (!T) {
    if (check(TokenKind::Ident)) {
      // (t1, t2) name — multi-argument type application.
      SourceLoc Loc = loc();
      auto App = std::make_unique<TypeAst>(TypeAstKind::Name, Loc);
      App->Name = advance().Text;
      App->Args = std::move(Local);
      T = std::move(App);
    } else if (Group) {
      *Group = std::move(Local);
      return nullptr;
    } else {
      Diags.error(loc(), "expected type constructor after '(t1, t2)' "
                         "(tuple types are written t1 * t2)");
      return std::make_unique<TypeAst>(TypeAstKind::Name, loc());
    }
  }
  while (check(TokenKind::Ident) || check(TokenKind::KwRef)) {
    SourceLoc Loc = loc();
    auto App = std::make_unique<TypeAst>(TypeAstKind::Name, Loc);
    App->Name = check(TokenKind::KwRef) ? "ref" : peek().Text;
    advance();
    App->Args.push_back(std::move(T));
    T = std::move(App);
  }
  return T;
}

/// Parses a type atom. For '(' t ')' returns the inner type; for
/// '(' t1, t2, ... ')' fills \p Group and returns null (the caller decides
/// whether it is a function domain or a type application argument list).
TypeAstPtr Parser::parseTypeAtomOrGroup(std::vector<TypeAstPtr> &Group) {
  SourceLoc Loc = loc();
  if (check(TokenKind::TyVar)) {
    auto T = std::make_unique<TypeAst>(TypeAstKind::Var, Loc);
    T->Name = advance().Text;
    return T;
  }
  if (check(TokenKind::Ident)) {
    auto T = std::make_unique<TypeAst>(TypeAstKind::Name, Loc);
    T->Name = advance().Text;
    return T;
  }
  if (check(TokenKind::KwRef)) {
    // `ref` used as a bare type name is invalid; refs are written `t ref`
    // which the postfix loop handles via Ident. Reaching here is an error.
    Diags.error(Loc, "'ref' must follow an element type: t ref");
    advance();
    return std::make_unique<TypeAst>(TypeAstKind::Name, Loc);
  }
  if (accept(TokenKind::LParen)) {
    std::vector<TypeAstPtr> Elems;
    Elems.push_back(parseType());
    while (accept(TokenKind::Comma))
      Elems.push_back(parseType());
    expect(TokenKind::RParen, "after type");
    if (Elems.size() == 1) {
      TypeAstPtr T = std::move(Elems.front());
      // Allow postfix application after a parenthesized type.
      while (check(TokenKind::Ident) || check(TokenKind::KwRef)) {
        auto App = std::make_unique<TypeAst>(TypeAstKind::Name, loc());
        App->Name = check(TokenKind::KwRef) ? "ref" : peek().Text;
        advance();
        App->Args.push_back(std::move(T));
        T = std::move(App);
      }
      return T;
    }
    Group = std::move(Elems);
    return nullptr;
  }
  Diags.error(Loc, std::string("expected type, found ") +
                       tokenKindName(peek().Kind));
  advance();
  return std::make_unique<TypeAst>(TypeAstKind::Name, Loc);
}

//===----------------------------------------------------------------------===//
// Patterns
//===----------------------------------------------------------------------===//

PatternPtr Parser::parsePattern() { return parseConsPattern(); }

PatternPtr Parser::parseConsPattern() {
  PatternPtr P = parseAtomicPattern();
  if (!accept(TokenKind::ColonColon))
    return P;
  PatternPtr Tail = parseConsPattern();
  auto Cons = std::make_unique<Pattern>(PatternKind::Ctor, P->Loc);
  Cons->Name = "Cons";
  Cons->Elems.push_back(std::move(P));
  Cons->Elems.push_back(std::move(Tail));
  return Cons;
}

PatternPtr Parser::parseAtomicPattern() {
  SourceLoc Loc = loc();
  switch (peek().Kind) {
  case TokenKind::Underscore: {
    advance();
    return std::make_unique<Pattern>(PatternKind::Wild, Loc);
  }
  case TokenKind::Ident: {
    auto P = std::make_unique<Pattern>(PatternKind::Var, Loc);
    P->Name = advance().Text;
    return P;
  }
  case TokenKind::IntLit: {
    auto P = std::make_unique<Pattern>(PatternKind::Int, Loc);
    P->IntValue = advance().IntValue;
    return P;
  }
  case TokenKind::Tilde: {
    advance();
    auto P = std::make_unique<Pattern>(PatternKind::Int, Loc);
    if (check(TokenKind::IntLit))
      P->IntValue = -advance().IntValue;
    else
      Diags.error(loc(), "expected integer after '~' in pattern");
    return P;
  }
  case TokenKind::KwTrue:
  case TokenKind::KwFalse: {
    auto P = std::make_unique<Pattern>(PatternKind::Bool, Loc);
    P->BoolValue = advance().Kind == TokenKind::KwTrue;
    return P;
  }
  case TokenKind::CapIdent: {
    auto P = std::make_unique<Pattern>(PatternKind::Ctor, Loc);
    P->Name = advance().Text;
    // Optional argument: one atomic pattern; a parenthesized tuple pattern
    // splats into constructor arguments.
    switch (peek().Kind) {
    case TokenKind::Underscore:
    case TokenKind::Ident:
    case TokenKind::IntLit:
    case TokenKind::KwTrue:
    case TokenKind::KwFalse:
    case TokenKind::CapIdent:
    case TokenKind::LParen:
    case TokenKind::LBracket: {
      PatternPtr Arg = parseAtomicPattern();
      if (Arg->Kind == PatternKind::Tuple && !Arg->Annot) {
        for (PatternPtr &E : Arg->Elems)
          P->Elems.push_back(std::move(E));
      } else {
        P->Elems.push_back(std::move(Arg));
      }
      break;
    }
    default:
      break;
    }
    return P;
  }
  case TokenKind::LParen: {
    advance();
    if (accept(TokenKind::RParen))
      return std::make_unique<Pattern>(PatternKind::Tuple, Loc); // unit
    std::vector<PatternPtr> Elems;
    Elems.push_back(parsePattern());
    // Optional annotation on a single parenthesized pattern.
    if (Elems.size() == 1 && accept(TokenKind::Colon)) {
      Elems.front()->Annot = parseType();
      expect(TokenKind::RParen, "after annotated pattern");
      return std::move(Elems.front());
    }
    while (accept(TokenKind::Comma))
      Elems.push_back(parsePattern());
    expect(TokenKind::RParen, "after pattern");
    if (Elems.size() == 1)
      return std::move(Elems.front());
    auto P = std::make_unique<Pattern>(PatternKind::Tuple, Loc);
    P->Elems = std::move(Elems);
    return P;
  }
  case TokenKind::LBracket: {
    advance();
    std::vector<PatternPtr> Elems;
    if (!check(TokenKind::RBracket)) {
      Elems.push_back(parsePattern());
      while (accept(TokenKind::Comma))
        Elems.push_back(parsePattern());
    }
    expect(TokenKind::RBracket, "after list pattern");
    // Desugar [p1, p2] into Cons(p1, Cons(p2, Nil)).
    PatternPtr Tail = std::make_unique<Pattern>(PatternKind::Ctor, Loc);
    Tail->Name = "Nil";
    for (size_t I = Elems.size(); I-- > 0;) {
      auto Cons = std::make_unique<Pattern>(PatternKind::Ctor, Elems[I]->Loc);
      Cons->Name = "Cons";
      Cons->Elems.push_back(std::move(Elems[I]));
      Cons->Elems.push_back(std::move(Tail));
      Tail = std::move(Cons);
    }
    return Tail;
  }
  default:
    Diags.error(Loc, std::string("expected pattern, found ") +
                         tokenKindName(peek().Kind));
    advance();
    return std::make_unique<Pattern>(PatternKind::Wild, Loc);
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::errorExpr(SourceLoc Loc) {
  return std::make_unique<UnitExpr>(Loc);
}

ExprPtr Parser::makeCons(SourceLoc Loc, ExprPtr Head, ExprPtr Tail) {
  std::vector<ExprPtr> Args;
  Args.push_back(std::move(Head));
  Args.push_back(std::move(Tail));
  return std::make_unique<CtorExpr>(Loc, "Cons", std::move(Args));
}

ExprPtr Parser::parseExpr() {
  SourceLoc Loc = loc();
  switch (peek().Kind) {
  case TokenKind::KwLet: {
    advance();
    std::vector<DeclPtr> Decls;
    while (atDeclStart() || check(TokenKind::Semi)) {
      if (accept(TokenKind::Semi))
        continue;
      Decls.push_back(parseDecl());
    }
    if (Decls.empty())
      Diags.error(Loc, "'let' needs at least one declaration");
    expect(TokenKind::KwIn, "in let expression");
    ExprPtr Body = parseExpr();
    expect(TokenKind::KwEnd, "to close let expression");
    return std::make_unique<LetExpr>(Loc, std::move(Decls), std::move(Body));
  }
  case TokenKind::KwIf: {
    advance();
    ExprPtr Cond = parseExpr();
    expect(TokenKind::KwThen, "in if expression");
    ExprPtr Then = parseExpr();
    expect(TokenKind::KwElse, "in if expression");
    ExprPtr Else = parseExpr();
    return std::make_unique<IfExpr>(Loc, std::move(Cond), std::move(Then),
                                    std::move(Else));
  }
  case TokenKind::KwCase: {
    advance();
    ExprPtr Scrut = parseExpr();
    expect(TokenKind::KwOf, "in case expression");
    accept(TokenKind::Pipe); // optional leading '|'
    std::vector<CaseClause> Clauses;
    do {
      CaseClause C;
      C.Pat = parsePattern();
      expect(TokenKind::DArrow, "in case clause");
      C.Body = parseExpr();
      Clauses.push_back(std::move(C));
    } while (accept(TokenKind::Pipe));
    return std::make_unique<CaseExpr>(Loc, std::move(Scrut),
                                      std::move(Clauses));
  }
  case TokenKind::KwFn: {
    advance();
    PatternPtr Param = parseAtomicPattern();
    expect(TokenKind::DArrow, "in fn expression");
    ExprPtr Body = parseExpr();
    return std::make_unique<FnExpr>(Loc, std::move(Param), std::move(Body));
  }
  default:
    return parseAssign();
  }
}

ExprPtr Parser::parseAssign() {
  ExprPtr Lhs = parseOrElse();
  if (!accept(TokenKind::Assign))
    return Lhs;
  SourceLoc Loc = Lhs->Loc;
  ExprPtr Rhs = parseOrElse();
  std::vector<ExprPtr> Args;
  Args.push_back(std::move(Lhs));
  Args.push_back(std::move(Rhs));
  return std::make_unique<PrimExpr>(Loc, PrimOp::RefSet, std::move(Args));
}

ExprPtr Parser::parseOrElse() {
  ExprPtr E = parseAndAlso();
  while (check(TokenKind::KwOrelse)) {
    SourceLoc Loc = loc();
    advance();
    ExprPtr Rhs = parseAndAlso();
    // e1 orelse e2  ==  if e1 then true else e2
    E = std::make_unique<IfExpr>(Loc, std::move(E),
                                 std::make_unique<BoolExpr>(Loc, true),
                                 std::move(Rhs));
  }
  return E;
}

ExprPtr Parser::parseAndAlso() {
  ExprPtr E = parseCompare();
  while (check(TokenKind::KwAndalso)) {
    SourceLoc Loc = loc();
    advance();
    ExprPtr Rhs = parseCompare();
    // e1 andalso e2  ==  if e1 then e2 else false
    E = std::make_unique<IfExpr>(Loc, std::move(E), std::move(Rhs),
                                 std::make_unique<BoolExpr>(Loc, false));
  }
  return E;
}

ExprPtr Parser::parseCompare() {
  ExprPtr E = parseCons();
  PrimOp Op;
  switch (peek().Kind) {
  case TokenKind::Equal:     Op = PrimOp::Eq; break;
  case TokenKind::NotEqual:  Op = PrimOp::Ne; break;
  case TokenKind::Less:      Op = PrimOp::Lt; break;
  case TokenKind::LessEq:    Op = PrimOp::Le; break;
  case TokenKind::Greater:   Op = PrimOp::Gt; break;
  case TokenKind::GreaterEq: Op = PrimOp::Ge; break;
  case TokenKind::FLess:     Op = PrimOp::FLt; break;
  case TokenKind::FEqual:    Op = PrimOp::FEq; break;
  default:
    return E;
  }
  SourceLoc Loc = loc();
  advance();
  ExprPtr Rhs = parseCons();
  std::vector<ExprPtr> Args;
  Args.push_back(std::move(E));
  Args.push_back(std::move(Rhs));
  return std::make_unique<PrimExpr>(Loc, Op, std::move(Args));
}

ExprPtr Parser::parseCons() {
  ExprPtr E = parseAdditive();
  if (!check(TokenKind::ColonColon))
    return E;
  SourceLoc Loc = loc();
  advance();
  ExprPtr Tail = parseCons(); // right-associative
  return makeCons(Loc, std::move(E), std::move(Tail));
}

ExprPtr Parser::parseAdditive() {
  ExprPtr E = parseMultiplicative();
  for (;;) {
    PrimOp Op;
    switch (peek().Kind) {
    case TokenKind::Plus:   Op = PrimOp::Add; break;
    case TokenKind::Minus:  Op = PrimOp::Sub; break;
    case TokenKind::FPlus:  Op = PrimOp::FAdd; break;
    case TokenKind::FMinus: Op = PrimOp::FSub; break;
    default:
      return E;
    }
    SourceLoc Loc = loc();
    advance();
    ExprPtr Rhs = parseMultiplicative();
    std::vector<ExprPtr> Args;
    Args.push_back(std::move(E));
    Args.push_back(std::move(Rhs));
    E = std::make_unique<PrimExpr>(Loc, Op, std::move(Args));
  }
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr E = parseUnary();
  for (;;) {
    PrimOp Op;
    switch (peek().Kind) {
    case TokenKind::Star:   Op = PrimOp::Mul; break;
    case TokenKind::Slash:  Op = PrimOp::Div; break;
    case TokenKind::KwMod:  Op = PrimOp::Mod; break;
    case TokenKind::FStar:  Op = PrimOp::FMul; break;
    case TokenKind::FSlash: Op = PrimOp::FDiv; break;
    default:
      return E;
    }
    SourceLoc Loc = loc();
    advance();
    ExprPtr Rhs = parseUnary();
    std::vector<ExprPtr> Args;
    Args.push_back(std::move(E));
    Args.push_back(std::move(Rhs));
    E = std::make_unique<PrimExpr>(Loc, Op, std::move(Args));
  }
}

ExprPtr Parser::parseUnary() {
  SourceLoc Loc = loc();
  PrimOp Op;
  switch (peek().Kind) {
  case TokenKind::Tilde:   Op = PrimOp::Neg; break;
  case TokenKind::KwNot:   Op = PrimOp::Not; break;
  case TokenKind::Bang:    Op = PrimOp::RefGet; break;
  case TokenKind::KwRef:   Op = PrimOp::RefNew; break;
  case TokenKind::KwPrint: Op = PrimOp::Print; break;
  default:
    return parseApp();
  }
  advance();
  // `~3.14` negates a float literal directly.
  if (Op == PrimOp::Neg && check(TokenKind::FloatLit)) {
    Token T = advance();
    return std::make_unique<FloatExpr>(Loc, -T.FloatValue);
  }
  ExprPtr Operand = parseUnary();
  std::vector<ExprPtr> Args;
  Args.push_back(std::move(Operand));
  return std::make_unique<PrimExpr>(Loc, Op, std::move(Args));
}

ExprPtr Parser::parseApp() {
  Atom First = parseAtom();
  if (!atAtomStart())
    return std::move(First.E);

  std::vector<Atom> Args;
  while (atAtomStart())
    Args.push_back(parseAtom());

  // Constructor application: splat a directly parenthesized tuple.
  if (auto *C = dyn_cast<CtorExpr>(First.E.get());
      C && C->Args.empty()) {
    if (Args.size() == 1 && Args[0].ParenTuple) {
      auto *Tup = cast<TupleExpr>(Args[0].E.get());
      for (ExprPtr &E : Tup->Elems)
        C->Args.push_back(std::move(E));
    } else {
      for (Atom &A : Args)
        C->Args.push_back(std::move(A.E));
    }
    if (C->Args.size() > 1 && !(Args.size() == 1 && Args[0].ParenTuple)) {
      Diags.error(C->Loc, "constructor '" + C->Name +
                              "' takes its arguments as C (a, b)");
    }
    return std::move(First.E);
  }

  std::vector<ExprPtr> ArgExprs;
  ArgExprs.reserve(Args.size());
  for (Atom &A : Args)
    ArgExprs.push_back(std::move(A.E));
  return std::make_unique<AppExpr>(First.E->Loc, std::move(First.E),
                                   std::move(ArgExprs));
}

Parser::Atom Parser::parseAtom() {
  SourceLoc Loc = loc();
  switch (peek().Kind) {
  case TokenKind::IntLit: {
    Token T = advance();
    return {std::make_unique<IntExpr>(Loc, T.IntValue), false};
  }
  case TokenKind::FloatLit: {
    Token T = advance();
    return {std::make_unique<FloatExpr>(Loc, T.FloatValue), false};
  }
  case TokenKind::KwTrue:
    advance();
    return {std::make_unique<BoolExpr>(Loc, true), false};
  case TokenKind::KwFalse:
    advance();
    return {std::make_unique<BoolExpr>(Loc, false), false};
  case TokenKind::Ident: {
    Token T = advance();
    return {std::make_unique<VarExpr>(Loc, T.Text), false};
  }
  case TokenKind::CapIdent: {
    Token T = advance();
    return {std::make_unique<CtorExpr>(Loc, T.Text, std::vector<ExprPtr>()),
            false};
  }
  case TokenKind::LParen: {
    advance();
    if (accept(TokenKind::RParen))
      return {std::make_unique<UnitExpr>(Loc), false};
    ExprPtr E = parseExpr();
    if (accept(TokenKind::Colon)) {
      TypeAstPtr Ty = parseType();
      expect(TokenKind::RParen, "after annotated expression");
      return {std::make_unique<AnnotExpr>(Loc, std::move(E), std::move(Ty)),
              false};
    }
    if (check(TokenKind::Comma)) {
      std::vector<ExprPtr> Elems;
      Elems.push_back(std::move(E));
      while (accept(TokenKind::Comma))
        Elems.push_back(parseExpr());
      expect(TokenKind::RParen, "after tuple");
      return {std::make_unique<TupleExpr>(Loc, std::move(Elems)), true};
    }
    if (check(TokenKind::Semi)) {
      std::vector<ExprPtr> Elems;
      Elems.push_back(std::move(E));
      while (accept(TokenKind::Semi))
        Elems.push_back(parseExpr());
      expect(TokenKind::RParen, "after sequence");
      return {std::make_unique<SeqExpr>(Loc, std::move(Elems)), false};
    }
    expect(TokenKind::RParen, "after expression");
    return {std::move(E), false};
  }
  case TokenKind::LBracket: {
    advance();
    std::vector<ExprPtr> Elems;
    if (!check(TokenKind::RBracket)) {
      Elems.push_back(parseExpr());
      while (accept(TokenKind::Comma))
        Elems.push_back(parseExpr());
    }
    expect(TokenKind::RBracket, "after list");
    ExprPtr Tail =
        std::make_unique<CtorExpr>(Loc, "Nil", std::vector<ExprPtr>());
    for (size_t I = Elems.size(); I-- > 0;) {
      SourceLoc ELoc = Elems[I]->Loc;
      Tail = makeCons(ELoc, std::move(Elems[I]), std::move(Tail));
    }
    return {std::move(Tail), false};
  }
  default:
    Diags.error(Loc, std::string("expected expression, found ") +
                         tokenKindName(peek().Kind));
    advance();
    return {errorExpr(Loc), false};
  }
}
