//===- tests/regression_test.cpp - Pinned bug fixes ------------------------===//
///
/// Each test here reproduces a bug found during development and pins the
/// fix.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/Liveness.h"
#include "workloads/Programs.h"

using namespace tfgc;
using namespace tfgc::test;

namespace {

TEST(Regression, RecursiveTemplateDescriptorsUseEnvChains) {
  // Bug: the interpreted tracer resolved a shape field's Param nodes
  // against the field's own arguments instead of the parent
  // instantiation, blowing the "Param outside datatype context" assert
  // on recursive datatypes with non-tail recursive fields (trees).
  std::string Src =
      "datatype 'a tr = Lf | Nd of 'a tr * 'a * 'a tr;\n"
      "fun ins (t : (int * int) tr) (v : int) : (int * int) tr =\n"
      "  case t of Lf => Nd(Lf, (v, v * 2), Lf)\n"
      "  | Nd(l, p, r) => (case p of (x, _) =>\n"
      "      if v < x then Nd(ins l v, p, r) else Nd(l, p, ins r v));\n"
      "fun tot (t : (int * int) tr) : int =\n"
      "  case t of Lf => 0 | Nd(l, p, r) => (case p of (a, b) => "
      "a + b + tot l + tot r);\n"
      "fun fill (t : (int * int) tr) (i : int) : (int * int) tr =\n"
      "  if i = 0 then t else fill (ins t (i * 13 mod 37)) (i - 1);\n"
      "tot (fill Lf 24)";
  runAllStrategies(Src, 1 << 12);
}

TEST(Regression, NestedCompositeTypeArgumentsInShapes) {
  // A constructor field instantiating the datatype with a *composite* of
  // its parameters (('a * 'a) list) requires real environment chains —
  // flat argument substitution is not enough.
  std::string Src =
      "datatype 'a bag = Empty | More of ('a * 'a) list * 'a bag;\n"
      "fun pairs (n : int) : (int * int) list =\n"
      "  if n = 0 then [] else (n, n * n) :: pairs (n - 1);\n"
      "fun grow (b : int bag) (i : int) : int bag =\n"
      "  if i = 0 then b else grow (More(pairs i, b)) (i - 1);\n"
      "fun weigh (b : int bag) : int =\n"
      "  case b of Empty => 0\n"
      "  | More(ps, rest) =>\n"
      "      (case ps of Nil => 0 | Cons(p, _) => (case p of (a, b2) => "
      "a + b2)) + weigh rest;\n"
      "weigh (grow Empty 12)";
  runAllStrategies(Src, 1 << 12);
}

TEST(Regression, DeepListTracingIsIterative) {
  // The tail-field loop in all three tracing engines keeps C++ recursion
  // depth constant while tracing a 60k-element list spine.
  std::string Src =
      "fun build (n : int) : int list = if n = 0 then [] "
      "else n :: build (n - 1);\n"
      "fun hold (xs : int list) (u : int) : int =\n"
      "  case xs of Nil => u | Cons(x, _) => x + u + "
      "(case build 10 of Nil => 0 | Cons(y, _) => y);\n"
      "hold (build 60000) 1";
  // Heap sized below the list (1.44 MiB tag-free), forcing growth
  // collections while the long spine is live.
  for (GcStrategy S : AllStrategies) {
    ExecResult R = execProgram(Src, S, GcAlgorithm::Copying, 1 << 20, false);
    ASSERT_TRUE(R.Run.Ok) << gcStrategyName(S) << ": " << R.Run.Error;
    EXPECT_EQ(R.Run.Value, "60011");
    EXPECT_GT(R.St.get("gc.collections"), 0u) << gcStrategyName(S);
  }
}

TEST(Regression, TaskingSafeTracesCallArguments) {
  // Bug: a task suspended *at* a call site re-executes the call after
  // collection; without TaskingSafe the argument slots were untraced and
  // the resumed call read stale pointers (heap corruption).
  std::string Src =
      "fun len (xs : int list) : int = case xs of Nil => 0 "
      "| Cons(_, r) => 1 + len r;\n"
      "fun pass (xs : int list) (ys : int list) : int = len xs + len ys;\n"
      "pass [1] [2, 3]";
  CompileOptions Plain, Safe;
  Safe.TaskingSafe = true;
  auto P1 = compile(Src, Plain);
  auto P2 = compile(Src, Safe);
  ASSERT_TRUE(P1.P && P2.P);

  auto SiteArgsTraced = [](CompiledProgram &P) {
    FuncId Main = P.Prog.MainId;
    for (const CallSiteInfo &S : P.Prog.Sites) {
      if (S.Kind != SiteKind::Direct || S.Caller != Main)
        continue;
      const IrFunction &F = P.Prog.fn(Main);
      const Instr &I = F.Code[S.InstrIdx];
      if (P.Prog.fn(S.Callee).Name != "pass")
        continue;
      // Are all argument slots in the trace set?
      for (SlotIndex Arg : I.Srcs) {
        bool Found = false;
        for (SlotIndex T : S.TraceSlots)
          if (T == Arg)
            Found = true;
        if (!Found)
          return false;
      }
      return true;
    }
    return false;
  };
  EXPECT_FALSE(SiteArgsTraced(*P1.P)); // Args dead after the call.
  EXPECT_TRUE(SiteArgsTraced(*P2.P));

  // And TaskingSafe implies gc_words everywhere.
  EXPECT_EQ(P2.P->Image.omittedGcWords(), 0u);
  EXPECT_GT(P1.P->Image.omittedGcWords(), 0u);
}

TEST(Regression, RefAsPostfixTypeConstructor) {
  // Bug: `node ref` in a datatype field failed to parse ('ref' is a
  // keyword, not an identifier).
  std::string V = runAllStrategies(
      "datatype node = End | Link of int * node ref;\n"
      "val a = ref End;\n"
      "val n1 = Link(7, a);\n"
      "case n1 of End => 0 | Link(v, _) => v",
      1 << 14);
  EXPECT_EQ(V, "7");
}

TEST(Regression, SemicolonStopsJuxtaposition) {
  // Bug: without the ';', `f 7` swallowed the following parenthesized
  // main expression as a second argument.
  auto P = parse("fun f (x : int) : int = x;\nval r = f 7;\n(r, r)");
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->Main->getKind(), ExprKind::Tuple);
}

TEST(Regression, StressTinyHeapAllWorkloads) {
  // A sweep that previously surfaced the descriptor-table reallocation
  // use-after-free: collect at every allocation with a minimal heap.
  namespace wl = tfgc::workloads;
  for (const std::string &Src :
       {wl::listChurn(16, 2), wl::variantRecords(24), wl::higherOrder(12),
        wl::polyPaper(), wl::refCells(48)}) {
    runAllStrategies(Src, 2048);
  }
}

} // namespace
