//===- tests/observe_test.cpp - Sharded observability core tests ----------===//
///
/// Covers the sharded Stats refactor and the epoch/introspection layer on
/// top of it: StatsShard fold math (Sum vs Max, touched-bit union),
/// fold-equals-single-domain bit-identity across every strategy and
/// algorithm under --verify, the dynamic-name safepoint guard (death
/// test), EpochAggregator snapshot consistency across cooperative task
/// switches, the Prometheus rendering, the IntrospectServer end-to-end
/// over a real loopback socket, and the CLI guarantees: --metrics-out
/// totals equal to --stats-json, and a coherent final epoch on the
/// exit-3 abnormal path.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "driver/Cli.h"
#include "support/Epoch.h"
#include "support/Introspect.h"
#include "tasking/Tasking.h"
#include "workloads/Programs.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

using namespace tfgc;
using namespace tfgc::test;
namespace wl = tfgc::workloads;

namespace {

std::string tmpPath(const char *Name) {
  return ::testing::TempDir() + "tfgc_observe_test_" + Name;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

//===----------------------------------------------------------------------===//
// StatsShard fold math
//===----------------------------------------------------------------------===//

TEST(StatsShard, SumCountersFoldBySummation) {
  Stats St;
  St.add(StatId::GcObjectsVisited, 10);          // shard 0
  St.shardForTask(0).add(StatId::GcObjectsVisited, 7);
  St.shardForTask(1).add(StatId::GcObjectsVisited, 5);
  EXPECT_EQ(St.numShards(), 3u);
  EXPECT_EQ(St.get(StatId::GcObjectsVisited), 22u);
  EXPECT_EQ(St.get("gc.objects_visited"), 22u);
}

TEST(StatsShard, HighWaterMarksFoldByMax) {
  // Two tasks with 40 and 60 live frames have a 60-frame maximum, not 100.
  Stats St;
  St.shardForTask(0).set(StatId::VmMaxFrames, 40);
  St.shardForTask(1).set(StatId::VmMaxFrames, 60);
  EXPECT_EQ(statFold(StatId::VmMaxFrames), StatFold::Max);
  EXPECT_EQ(St.get(StatId::VmMaxFrames), 60u);
  // All four high-water ids are Max; spot-check the others are Sum.
  EXPECT_EQ(statFold(StatId::GcPauseNsMax), StatFold::Max);
  EXPECT_EQ(statFold(StatId::TaskStepsToWorldStopMax), StatFold::Max);
  EXPECT_EQ(statFold(StatId::VmMaxSlotWords), StatFold::Max);
  EXPECT_EQ(statFold(StatId::GcCollections), StatFold::Sum);
  EXPECT_EQ(statFold(StatId::VmSteps), StatFold::Sum);
}

TEST(StatsShard, TouchedBitsUnionAcrossShards) {
  Stats St;
  EXPECT_FALSE(St.has(StatId::TaskSuspendChecks));
  // An explicit write of zero in some task's shard makes the counter
  // visible globally — render parity with the old single map.
  St.shardForTask(2).add(StatId::TaskSuspendChecks, 0);
  EXPECT_TRUE(St.has(StatId::TaskSuspendChecks));
  EXPECT_EQ(St.get(StatId::TaskSuspendChecks), 0u);
  auto All = St.all();
  EXPECT_EQ(All.count("task.suspend_checks"), 1u);
}

TEST(StatsShard, ClearZeroesEveryShardButKeepsThem) {
  Stats St;
  St.add(StatId::VmSteps, 3);
  StatsShard &S1 = St.shardForTask(0);
  S1.add(StatId::VmSteps, 9);
  St.clear();
  EXPECT_EQ(St.numShards(), 2u);
  EXPECT_FALSE(St.has(StatId::VmSteps));
  // The shard pointer stays valid (cached by each Vm across clears).
  S1.add(StatId::VmSteps, 4);
  EXPECT_EQ(St.get(StatId::VmSteps), 4u);
}

TEST(StatsShard, ShardForTaskIsStableAndSparseSafe) {
  Stats St;
  StatsShard &A = St.shardForTask(5); // creates shards 1..6
  EXPECT_EQ(St.numShards(), 7u);
  EXPECT_EQ(&St.shardForTask(5), &A);
  EXPECT_EQ(&St.shardForTask(0), &const_cast<StatsShard &>(St.shard(1)));
}

//===----------------------------------------------------------------------===//
// Dynamic-name safepoint guard
//===----------------------------------------------------------------------===//

TEST(StatsGuard, SingleShardDynamicWritesAreUnrestricted) {
  Stats St;
  St.set("custom.counter", 42); // one shard: no guard
  EXPECT_EQ(St.get("custom.counter"), 42u);
}

TEST(StatsGuard, SafepointScopeLegalizesDynamicWrites) {
  Stats St;
  St.shardForTask(0);
  {
    Stats::SafepointScope Scope(St);
    EXPECT_TRUE(St.inSafepoint());
    St.set("task.0.mutator_steps", 1234);
  }
  EXPECT_FALSE(St.inSafepoint());
  EXPECT_EQ(St.get("task.0.mutator_steps"), 1234u);
}

TEST(StatsGuardDeathTest, DynamicWriteOutsideSafepointAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Stats St;
  St.shardForTask(0); // two shards: dynamic registration now racy
  EXPECT_DEATH(St.set("task.0.mutator_steps", 1),
               "Stats::SafepointScope");
}

//===----------------------------------------------------------------------===//
// Fold bit-identity on real runs: the folded view a sharded run reports
// equals a manual single-domain recomputation of the same shards, under
// every strategy x algorithm with --verify on (satellite 3).
//===----------------------------------------------------------------------===//

TEST(ObserveFold, FoldedTotalsMatchManualRefoldAllStrategiesAllAlgorithms) {
  for (GcStrategy S : AllStrategies) {
    for (GcAlgorithm A : AllAlgorithms) {
      Compiled C = compile(wl::listChurn(30, 6));
      ASSERT_TRUE(C.P) << C.Error;
      Stats St;
      std::string Err;
      auto Col = C.P->makeCollector(S, A, 1 << 15, St, &Err);
      ASSERT_TRUE(Col) << Err << " under " << gcStrategyName(S);
      Col->setVerifyAfterGc(true);
      Vm M(C.P->Prog, C.P->Image, *C.P->Types, *Col,
           defaultVmOptions(S, /*GcStress=*/true));
      RunResult R = M.run();
      ASSERT_TRUE(R.Ok) << R.Error << " under " << gcStrategyName(S);
      M.flushCounters();
      EXPECT_EQ(St.get(StatId::GcVerifyViolations), 0u);

      // Recompute every fixed counter from the raw shards with the fold
      // rules; the facade's folded view must agree exactly.
      for (size_t I = 0; I < NumStatIds; ++I) {
        StatId Id = (StatId)I;
        uint64_t Want = 0;
        bool Touched = false;
        for (size_t Sh = 0; Sh < St.numShards(); ++Sh) {
          const StatsShard &Shard = St.shard(Sh);
          if (!Shard.has(Id))
            continue;
          Touched = true;
          Want = statFold(Id) == StatFold::Max
                     ? std::max(Want, Shard.get(Id))
                     : Want + Shard.get(Id);
        }
        EXPECT_EQ(St.get(Id), Want)
            << Stats::name(Id) << " under " << gcStrategyName(S) << "/"
            << gcAlgorithmName(A);
        EXPECT_EQ(St.has(Id), Touched) << Stats::name(Id);
      }

      // And the epoch layer reports exactly the facade's folded view.
      EpochAggregator Agg;
      Agg.attachStats(&St);
      const EpochSnapshot &E = Agg.fold(SafepointKind::RunEnd);
      EXPECT_EQ(E.counters(), St.all())
          << gcStrategyName(S) << "/" << gcAlgorithmName(A);
    }
  }
}

TEST(ObserveFold, SequentialRunCountersAreDeterministicAcrossRuns) {
  // Two identical sequential runs fold to the same values for every
  // non-time counter — the shard refactor introduced no nondeterminism.
  auto RunOnce = [] {
    ExecResult R = execProgram(wl::listChurn(25, 5),
                               GcStrategy::CompiledTagFree,
                               GcAlgorithm::Generational, 1 << 15,
                               /*GcStress=*/false, {}, 1 << 12);
    EXPECT_TRUE(R.Run.Ok) << R.Run.Error;
    return R.St.all();
  };
  auto A = RunOnce(), B = RunOnce();
  ASSERT_EQ(A.size(), B.size());
  for (const auto &[Name, Value] : A) {
    if (Name.find("ns") != std::string::npos ||
        Name.compare(0, 4, "mon.") == 0)
      continue; // wall-clock derived
    EXPECT_EQ(B.at(Name), Value) << Name;
  }
}

//===----------------------------------------------------------------------===//
// Epoch aggregation across cooperative task switches (satellite 3)
//===----------------------------------------------------------------------===//

TEST(ObserveEpoch, ConsistentAcrossTaskSwitches) {
  CompileOptions CO;
  CO.TaskingSafe = true;
  Compiler C(CO);
  std::string Err;
  auto P = C.compile(wl::taskWorker(), &Err);
  ASSERT_TRUE(P) << Err;
  Stats St;
  auto Col = P->makeCollector(GcStrategy::CompiledTagFree,
                              GcAlgorithm::Copying, 1 << 13, St, &Err);
  ASSERT_TRUE(Col) << Err;
  EpochAggregator Agg;
  Agg.attachStats(&St);
  Col->setEpochAggregator(&Agg);

  TaskingOptions TO;
  TO.Policy = SuspendChecks::AtEveryCall;
  TO.TimeSliceSteps = 64; // frequent switches between tasks
  TaskingRuntime Rt(P->Prog, P->Image, *P->Types, *Col, TO);
  FuncId Worker = findFunction(P->Prog, "worker");
  ASSERT_NE(Worker, InvalidFunc);
  for (int64_t Seed = 1; Seed <= 3; ++Seed)
    Rt.spawnInt(Worker, {Seed, 30});
  ASSERT_TRUE(Rt.runAll());
  Agg.fold(SafepointKind::RunEnd);

  // Collections happened (small heap) and each produced an epoch.
  ASSERT_GE(Agg.epochCount(), 2u);
  ASSERT_GE(St.get(StatId::GcCollections), 1u);

  const auto &Hist = Agg.history();
  uint64_t LastSeq = 0, LastWhen = 0, LastSteps = 0, LastCols = 0;
  for (const auto &Snap : Hist) {
    const EpochSnapshot &E = *Snap;
    const auto Counters = E.counters();
    EXPECT_GT(E.Seq, LastSeq);
    EXPECT_GE(E.WhenNs, LastWhen);
    // Sum-folded accumulators never regress between epochs, no matter
    // which task was mid-slice when the world stopped.
    auto Steps = Counters.find("vm.steps");
    if (Steps != Counters.end()) {
      EXPECT_GE(Steps->second, LastSteps) << "epoch " << E.Seq;
      LastSteps = Steps->second;
    }
    auto Cols = Counters.find("gc.collections");
    if (Cols != Counters.end()) {
      EXPECT_GE(Cols->second, LastCols) << "epoch " << E.Seq;
      LastCols = Cols->second;
    }
    // Cross-counter coherence inside one epoch: the minor/major split
    // never exceeds the total, and visited words imply visited objects.
    auto Get = [&](const char *N) {
      auto It = Counters.find(N);
      return It == Counters.end() ? 0u : It->second;
    };
    EXPECT_LE(Get("gc.minor_collections") + Get("gc.major_collections"),
              Get("gc.collections"))
        << "epoch " << E.Seq;
    if (Get("gc.words_visited") > 0) {
      EXPECT_GT(Get("gc.objects_visited"), 0u) << "epoch " << E.Seq;
    }
    LastSeq = E.Seq;
    LastWhen = E.WhenNs;
  }
  // The final epoch agrees with the quiescent facade fold.
  EXPECT_EQ(Hist.back()->counters(), St.all());
}

TEST(ObserveEpoch, HistoryIsCappedButLatestAlwaysCurrent) {
  Stats St;
  EpochAggregator Agg;
  Agg.attachStats(&St);
  for (int I = 0; I < 100; ++I) {
    St.add(StatId::GcCollections);
    Agg.fold(SafepointKind::Collection);
  }
  EXPECT_EQ(Agg.history().size(), EpochAggregator::HistoryCap);
  EXPECT_EQ(Agg.epochCount(), 100u);
  EXPECT_EQ(Agg.latest().Seq, 100u);
  EXPECT_EQ(Agg.latest().counters().at("gc.collections"), 100u);
  EXPECT_EQ(Agg.history().front()->Seq,
            100u - EpochAggregator::HistoryCap + 1);
}

//===----------------------------------------------------------------------===//
// Prometheus rendering
//===----------------------------------------------------------------------===//

TEST(ObservePrometheus, RendersTypedSanitizedSamples) {
  Stats St;
  St.set(StatId::GcCollections, 3);
  St.set(StatId::GcPauseNsMax, 777);
  St.set(StatId::HeapUsedBytes, 4096);
  {
    Stats::SafepointScope Scope(St);
    St.set("task.0.world_stop_delay_ns_p99", 55);
  }
  EpochAggregator Agg;
  Agg.attachStats(&St);
  Agg.setLabel("compiled-tagfree/copying");
  Agg.fold(SafepointKind::Collection);
  std::string Text = Agg.renderPrometheus();

  EXPECT_NE(Text.find("tfgc_info{label=\"compiled-tagfree/copying\"} 1"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("tfgc_epoch_seq 1"), std::string::npos);
  // Dots sanitized to underscores; counter vs gauge typing.
  EXPECT_NE(Text.find("# TYPE tfgc_gc_collections counter"),
            std::string::npos);
  EXPECT_NE(Text.find("tfgc_gc_collections 3"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE tfgc_gc_pause_ns_max gauge"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE tfgc_heap_used_bytes gauge"),
            std::string::npos);
  EXPECT_NE(Text.find("tfgc_task_0_world_stop_delay_ns_p99 55"),
            std::string::npos);
  // Every non-comment line is "name value".
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    size_t Space = Line.find(' ');
    ASSERT_NE(Space, std::string::npos) << Line;
    EXPECT_EQ(Line.find(' ', Space + 1), std::string::npos) << Line;
  }
}

//===----------------------------------------------------------------------===//
// IntrospectServer end-to-end over loopback
//===----------------------------------------------------------------------===//

/// Minimal HTTP/1.1 client: one request, reads to EOF (the server closes).
std::string httpGet(uint16_t Port, const std::string &Target,
                    const char *Method = "GET") {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(Fd, 0);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(Fd, (sockaddr *)&Addr, sizeof(Addr)), 0);
  std::string Req = std::string(Method) + " " + Target +
                    " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  EXPECT_EQ(::send(Fd, Req.data(), Req.size(), 0), (ssize_t)Req.size());
  std::string Resp;
  char Buf[4096];
  ssize_t N;
  while ((N = ::recv(Fd, Buf, sizeof(Buf), 0)) > 0)
    Resp.append(Buf, (size_t)N);
  ::close(Fd);
  return Resp;
}

TEST(IntrospectServer, ServesEpochBodiesOverLoopback) {
  IntrospectServer Srv;
  std::string Err;
  uint16_t Port = Srv.start(0, Err); // ephemeral
  ASSERT_NE(Port, 0u) << Err;
  ASSERT_TRUE(Srv.running());

  // Before any epoch: health is up, metrics 503, snapshot/heartbeat 404.
  EXPECT_NE(httpGet(Port, "/healthz").find("200"), std::string::npos);
  EXPECT_NE(httpGet(Port, "/metrics").find("503"), std::string::npos);
  EXPECT_NE(httpGet(Port, "/snapshot").find("404"), std::string::npos);
  EXPECT_NE(httpGet(Port, "/heartbeat").find("404"), std::string::npos);
  EXPECT_NE(httpGet(Port, "/nope").find("404"), std::string::npos);
  EXPECT_NE(httpGet(Port, "/metrics", "POST").find("405"),
            std::string::npos);

  // Publish an epoch through the aggregator and scrape it back.
  Stats St;
  St.set(StatId::GcCollections, 9);
  EpochAggregator Agg;
  Agg.attachStats(&St);
  Agg.attachServer(&Srv);
  Agg.setSnapshotProvider(
      [] { return std::string("{\"tool\": \"tfgc-heap-profile\"}"); });
  Agg.fold(SafepointKind::Collection);
  Agg.noteHeartbeat("{\"type\": \"heartbeat\", \"seq\": 0}\n");

  std::string Metrics = httpGet(Port, "/metrics");
  EXPECT_NE(Metrics.find("HTTP/1.1 200"), std::string::npos) << Metrics;
  EXPECT_NE(Metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(Metrics.find("tfgc_gc_collections 9"), std::string::npos);
  // Query strings route like the bare path.
  EXPECT_NE(httpGet(Port, "/metrics?x=1").find("tfgc_gc_collections 9"),
            std::string::npos);
  EXPECT_NE(httpGet(Port, "/snapshot").find("tfgc-heap-profile"),
            std::string::npos);
  EXPECT_NE(httpGet(Port, "/heartbeat").find("\"heartbeat\""),
            std::string::npos);

  // A later epoch replaces the served body atomically.
  St.set(StatId::GcCollections, 10);
  Agg.fold(SafepointKind::Collection);
  EXPECT_NE(httpGet(Port, "/metrics").find("tfgc_gc_collections 10"),
            std::string::npos);

  EXPECT_GE(Srv.requestsServed(), 10u);
  Srv.stop();
  EXPECT_FALSE(Srv.running());
  // stop() is idempotent.
  Srv.stop();
}

TEST(IntrospectServer, RebindsAfterStop) {
  IntrospectServer Srv;
  std::string Err;
  uint16_t Port = Srv.start(0, Err);
  ASSERT_NE(Port, 0u) << Err;
  Srv.stop();
  uint16_t Port2 = Srv.start(0, Err);
  ASSERT_NE(Port2, 0u) << Err;
  EXPECT_NE(httpGet(Port2, "/healthz").find("200"), std::string::npos);
  Srv.stop();
}

//===----------------------------------------------------------------------===//
// CLI integration: --metrics-out equals --stats-json; abnormal exit
// still flushes a coherent final epoch (satellite 3); flag validation.
//===----------------------------------------------------------------------===//

bool parseOk(const std::vector<std::string> &Args, CliOptions &O) {
  std::string Err;
  bool HelpOnly = false;
  bool Ok = parseCli(Args, O, Err, HelpOnly);
  EXPECT_TRUE(Ok) << Err;
  return Ok;
}

/// Extracts `"name": N` from the stats JSON counters map.
uint64_t jsonCounter(const std::string &Doc, const std::string &Name) {
  std::string Key = "\"" + Name + "\": ";
  size_t At = Doc.find(Key);
  EXPECT_NE(At, std::string::npos) << Name;
  if (At == std::string::npos)
    return ~0ull;
  return std::stoull(Doc.substr(At + Key.size()));
}

/// Extracts `tfgc_name N` from a Prometheus exposition.
uint64_t promSample(const std::string &Doc, const std::string &Metric) {
  size_t At = 0;
  while ((At = Doc.find(Metric, At)) != std::string::npos) {
    size_t After = At + Metric.size();
    bool LineStart = At == 0 || Doc[At - 1] == '\n';
    if (LineStart && After < Doc.size() && Doc[After] == ' ')
      return std::stoull(Doc.substr(After + 1));
    At = After;
  }
  ADD_FAILURE() << "no sample " << Metric;
  return ~0ull;
}

TEST(ObserveCli, MetricsOutTotalsEqualStatsJson) {
  std::string Metrics = tmpPath("metrics.txt");
  std::string StatsJson = tmpPath("metrics_stats.json");
  std::remove(Metrics.c_str());
  std::remove(StatsJson.c_str());

  CliOptions O;
  ASSERT_TRUE(parseOk({"--algo=generational", "--heap=32768",
                       "--nursery-bytes=8192", "--verify",
                       "--metrics-out=" + Metrics,
                       "--stats-json=" + StatsJson, "-e",
                       wl::generationalChurn(40, 6, 60)},
                      O));
  EXPECT_EQ(runTfgc(O), 0);

  std::string Prom = slurp(Metrics);
  std::string Json = slurp(StatsJson);
  ASSERT_FALSE(Prom.empty());
  ASSERT_FALSE(Json.empty());
  EXPECT_NE(Prom.find("run_end safepoint"), std::string::npos);
  for (const char *Name :
       {"gc.collections", "gc.minor_collections", "vm.steps", "vm.calls",
        "heap.bytes_allocated_total", "gc.pause_ns_total", "vm.max_frames",
        "gc.objects_visited", "gc.verify_passes"}) {
    std::string Metric = "tfgc_";
    for (const char *C = Name; *C; ++C)
      Metric.push_back(*C == '.' ? '_' : *C);
    EXPECT_EQ(promSample(Prom, Metric), jsonCounter(Json, Name)) << Name;
  }

  std::remove(Metrics.c_str());
  std::remove(StatsJson.c_str());
}

TEST(ObserveCli, AbnormalExitStillFlushesFinalEpoch) {
  // Exit 3 (injected verify violations) must leave a complete final
  // epoch on disk, same guarantee as the other diagnostic artifacts.
  std::string Metrics = tmpPath("abnormal_metrics.txt");
  std::remove(Metrics.c_str());

  CliOptions O;
  ASSERT_TRUE(parseOk({"--stress", "--heap=16384", "--verify",
                       "--inject-verify-violation",
                       "--metrics-out=" + Metrics, "-e",
                       wl::listChurn(20, 3)},
                      O));
  EXPECT_EQ(runTfgc(O), 3);

  std::string Prom = slurp(Metrics);
  ASSERT_FALSE(Prom.empty()) << Metrics;
  EXPECT_NE(Prom.find("run_end safepoint"), std::string::npos) << Prom;
  EXPECT_GE(promSample(Prom, "tfgc_epoch_seq"), 1u);
  EXPECT_GE(promSample(Prom, "tfgc_gc_verify_violations"), 1u);
  // Coherent: the violation count rode along with the collections that
  // produced it in one fold.
  EXPECT_GE(promSample(Prom, "tfgc_gc_collections"), 1u);

  std::remove(Metrics.c_str());
}

TEST(ObserveCli, ServeFlagValidation) {
  CliOptions O;
  std::string Err;
  bool HelpOnly = false;
  EXPECT_FALSE(parseCli({"--serve=70000", "-e", "1"}, O, Err, HelpOnly));
  EXPECT_NE(Err.find("port"), std::string::npos) << Err;

  CliOptions O2;
  Err.clear();
  EXPECT_FALSE(parseCli({"--serve-linger-ms=10", "-e", "1"}, O2, Err,
                        HelpOnly));
  EXPECT_NE(Err.find("--serve"), std::string::npos) << Err;

  CliOptions O3;
  ASSERT_TRUE(parseOk({"--serve=0", "--serve-linger-ms=5", "-e", "1"}, O3));
  EXPECT_EQ(O3.ServePort, 0);
  EXPECT_EQ(O3.ServeLingerMs, 5u);
  CliOptions O4;
  ASSERT_TRUE(parseOk({"-e", "1"}, O4));
  EXPECT_EQ(O4.ServePort, -1);
}

TEST(ObserveCli, ServedRunScrapesDuringAndAfter) {
  // End-to-end through runTfgc: serve on an ephemeral... no — runTfgc
  // prints the bound port to stderr, which a unit test cannot easily
  // capture, so use a fixed high port and tolerate a busy environment by
  // trying a few.
  for (uint16_t Port : {38471, 38477, 38483}) {
    {
      IntrospectServer Probe;
      std::string Err;
      if (Probe.start(Port, Err) == 0)
        continue; // busy; try the next candidate
      Probe.stop();
    }
    std::string Metrics = tmpPath("serve_metrics.txt");
    std::remove(Metrics.c_str());
    CliOptions O;
    ASSERT_TRUE(parseOk({"--algo=generational", "--heap=32768",
                         "--nursery-bytes=8192",
                         "--serve=" + std::to_string(Port),
                         "--serve-linger-ms=400",
                         "--metrics-out=" + Metrics, "-e",
                         wl::generationalChurn(40, 6, 40)},
                        O));
    // The linger window keeps the final epoch served after the run body
    // finishes; scrape from a second thread while runTfgc lingers.
    std::string Scraped;
    std::thread Scraper([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      Scraped = httpGet(Port, "/metrics");
    });
    EXPECT_EQ(runTfgc(O), 0);
    Scraper.join();
    ASSERT_NE(Scraped.find("HTTP/1.1 200"), std::string::npos) << Scraped;
    uint64_t Live = promSample(Scraped, "tfgc_epoch_seq");
    EXPECT_GE(Live, 1u);
    // The scrape happened during linger: it saw the final epoch, which
    // matches what --metrics-out wrote.
    std::string Final = slurp(Metrics);
    EXPECT_EQ(promSample(Final, "tfgc_epoch_seq"), Live);
    EXPECT_EQ(promSample(Final, "tfgc_vm_steps"),
              promSample(Scraped, "tfgc_vm_steps"));
    std::remove(Metrics.c_str());
    return;
  }
  GTEST_SKIP() << "all candidate ports busy";
}

} // namespace
