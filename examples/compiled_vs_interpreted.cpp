//===- examples/compiled_vs_interpreted.cpp - Paper section 2.4 ----------===//
///
/// "What the precise space/time trade-off is remains to be seen from
/// experiments that we are planning to perform in the near future." —
/// this example runs that experiment for one workload: the compiled
/// method (flat frame/type GC routines, bigger, faster) against the
/// interpreted method (shared descriptors, smaller, slower), with the
/// tagged baseline alongside.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "workloads/Programs.h"

#include <cstdio>

using namespace tfgc;

int main() {
  std::string Source = workloads::binaryTrees(10, 24);
  Compiler C;
  std::string Error;
  auto P = C.compile(Source, &Error);
  if (!P) {
    std::fprintf(stderr, "%s", Error.c_str());
    return 1;
  }

  std::printf("workload: GCBench-style binary trees (depth 10, 24 rounds)\n\n");
  std::printf("compile-time metadata (modeled bytes):\n");
  std::printf("  compiled method     %6zu  (%zu frame routines, %zu type "
              "routines — generated code)\n",
              P->Compiled.sizeBytes(), P->Compiled.numFrameRoutines(),
              P->Compiled.numTypeRoutines());
  std::printf("  interpreted method  %6zu  (%zu descriptors, shared "
              "program-wide)\n",
              P->Interp->sizeBytes(),
              P->Interp->descriptors().numDescriptors());
  std::printf("  tagged baseline          0  (but one header word per heap "
              "object at run time)\n\n");

  std::printf("collection-time behaviour (48KiB heap):\n");
  for (GcStrategy S :
       {GcStrategy::CompiledTagFree, GcStrategy::InterpretedTagFree,
        GcStrategy::Tagged}) {
    Stats St;
    auto Col =
        P->makeCollector(S, GcAlgorithm::Copying, 48 * 1024, St, &Error);
    Vm M(P->Prog, P->Image, *P->Types, *Col, defaultVmOptions(S));
    RunResult R = M.run();
    if (!R.Ok) {
      std::fprintf(stderr, "%s\n", R.Error.c_str());
      return 1;
    }
    uint64_t N = St.get(StatId::GcCollections);
    std::printf("  %-22s collections=%-3llu avg pause=%7.1fus  "
                "trace steps: compiled=%llu descriptor=%llu\n",
                gcStrategyName(S), (unsigned long long)N,
                N ? (double)St.get(StatId::GcPauseNsTotal) / (double)N / 1e3
                  : 0.0,
                (unsigned long long)St.get(StatId::GcCompiledActions),
                (unsigned long long)St.get(StatId::GcDescSteps));
  }

  std::printf(
      "\nShape: the interpreted method is the smallest metadata but does "
      "strictly more\nwork per traced object (about 1.5x the trace steps "
      "here — it walks the\ndescriptor graph where the compiled method "
      "pre-resolved everything). On a type\nthis simple the wall-clock gap "
      "is modest — the paper predicted collection would\nbe \"somewhat "
      "slower\", and it is; bench_pause sweeps richer types where the gap\n"
      "widens. The paper's open question, answered: compiled wins time, "
      "interpreted\nwins space.\n");
  return 0;
}
