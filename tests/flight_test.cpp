//===- tests/flight_test.cpp - Binary flight recorder tests ---------------===//
///
/// Covers the flight recorder tentpole: FlightRing wraparound semantics
/// (newest-N, Dropped marker, never torn), recorder-attached runs being
/// counter-bit-identical to recorder-off runs across every strategy and
/// algorithm under --verify, the exit-3 abnormal path still flushing a
/// decodable recording, in-process round-trip through FlightRecorder's
/// file writer, and a 4-thread end-to-end run whose decoded timeline
/// satisfies the handshake pairing invariants flight_report.py checks.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "driver/Cli.h"
#include "support/FlightRecorder.h"
#include "workloads/Programs.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

using namespace tfgc;
using namespace tfgc::test;
namespace wl = tfgc::workloads;

namespace {

std::string tmpPath(const char *Name) {
  return ::testing::TempDir() + "tfgc_flight_test_" + Name;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

bool parseOk(const std::vector<std::string> &Args, CliOptions &O) {
  std::string Err;
  bool HelpOnly = false;
  bool Ok = parseCli(Args, O, Err, HelpOnly);
  EXPECT_TRUE(Ok) << Err;
  return Ok;
}

/// Decodes a flight file (header validated) into events.
std::vector<FlightEvent> decodeFlightFile(const std::string &Path) {
  std::string Bytes = slurp(Path);
  EXPECT_GE(Bytes.size(), 24u) << Path;
  EXPECT_EQ(Bytes.compare(0, 8, "TFGCFLR1"), 0) << Path;
  uint32_t Ver, RecBytes;
  std::memcpy(&Ver, Bytes.data() + 8, 4);
  std::memcpy(&RecBytes, Bytes.data() + 12, 4);
  EXPECT_EQ(Ver, FlightRecorder::Version);
  EXPECT_EQ(RecBytes, sizeof(FlightEvent));
  size_t Payload = Bytes.size() - 24;
  EXPECT_EQ(Payload % sizeof(FlightEvent), 0u)
      << Path << " has a torn trailing record";
  std::vector<FlightEvent> Events(Payload / sizeof(FlightEvent));
  std::memcpy(Events.data(), Bytes.data() + 24, Payload);
  return Events;
}

size_t countType(const std::vector<FlightEvent> &Es, FlightEventType T) {
  size_t N = 0;
  for (const FlightEvent &E : Es)
    N += E.Type == (uint8_t)T;
  return N;
}

//===----------------------------------------------------------------------===//
// FlightRing wraparound: newest-N, Dropped marker, deterministic
//===----------------------------------------------------------------------===//

TEST(FlightRing, WraparoundKeepsNewestAndMarksDropped) {
  auto Origin = std::chrono::steady_clock::now();
  FlightRing R(8, /*Tid=*/3, Origin);
  ASSERT_EQ(R.capacity(), 8u);
  for (uint64_t I = 0; I < 20; ++I)
    R.record(FlightEventType::TlabRefill, 0, I);
  EXPECT_EQ(R.recordsWritten(), 20u);

  std::vector<FlightEvent> Out;
  EXPECT_EQ(R.drain(Out), 12u);
  // One Dropped marker then exactly the newest 8, in write order.
  ASSERT_EQ(Out.size(), 9u);
  EXPECT_EQ(Out[0].Type, (uint8_t)FlightEventType::Dropped);
  EXPECT_EQ(Out[0].ArgA, 12u);
  EXPECT_EQ(Out[0].Tid, 3u);
  // The marker carries the oldest survivor's timestamp so the chunk
  // stays sortable.
  EXPECT_EQ(Out[0].TimeNs, Out[1].TimeNs);
  for (size_t I = 1; I < Out.size(); ++I) {
    EXPECT_EQ(Out[I].Type, (uint8_t)FlightEventType::TlabRefill);
    EXPECT_EQ(Out[I].Tid, 3u);
    EXPECT_EQ(Out[I].ArgA, 12 + (I - 1)); // newest-8 = ordinals 12..19
    if (I > 1) {
      EXPECT_GE(Out[I].TimeNs, Out[I - 1].TimeNs);
    }
  }
  EXPECT_EQ(R.droppedTotal(), 12u);

  // A second drain sees only what came after — no re-delivery, no
  // spurious Dropped marker.
  Out.clear();
  EXPECT_EQ(R.drain(Out), 0u);
  EXPECT_TRUE(Out.empty());
  for (uint64_t I = 20; I < 24; ++I)
    R.record(FlightEventType::VmEpoch, 0, I);
  EXPECT_EQ(R.drain(Out), 0u);
  ASSERT_EQ(Out.size(), 4u);
  for (size_t I = 0; I < 4; ++I)
    EXPECT_EQ(Out[I].ArgA, 20 + I);
}

TEST(FlightRing, CapacityRoundsUpToPowerOfTwo) {
  auto Origin = std::chrono::steady_clock::now();
  EXPECT_EQ(FlightRing(1, 0, Origin).capacity(), 8u);
  EXPECT_EQ(FlightRing(9, 0, Origin).capacity(), 16u);
  EXPECT_EQ(FlightRing(64, 0, Origin).capacity(), 64u);
}

//===----------------------------------------------------------------------===//
// FlightRecorder file round-trip
//===----------------------------------------------------------------------===//

TEST(FlightRecorder, FileRoundTripAndChunkSink) {
  std::string Path = tmpPath("roundtrip.bin");
  std::remove(Path.c_str());
  std::string ChunkBody;
  {
    FlightRecorder F(/*NumTasks=*/2, /*NumWorkers=*/1, /*BufferKb=*/1);
    std::string Err;
    ASSERT_TRUE(F.openFile(Path, Err)) << Err;
    F.setChunkSink([&](const std::string &C) { ChunkBody = C; });
    F.taskRing(0).record(FlightEventType::ThreadStart);
    F.taskRing(1).record(FlightEventType::ThreadStart);
    F.gcRing().record(FlightEventType::SafepointArm, 1, 100);
    F.workerRing(0).record(FlightEventType::TraceWorkerBegin, 0);
    F.finish();
    EXPECT_EQ(F.recordsFiled(), 4u);
    EXPECT_EQ(F.droppedTotal(), 0u);
  }
  std::vector<FlightEvent> Events = decodeFlightFile(Path);
  ASSERT_EQ(Events.size(), 4u);
  // Time-sorted within the chunk, ring identity preserved.
  std::multiset<uint8_t> Tids;
  for (size_t I = 0; I < Events.size(); ++I) {
    Tids.insert(Events[I].Tid);
    if (I) {
      EXPECT_GE(Events[I].TimeNs, Events[I - 1].TimeNs);
    }
  }
  EXPECT_EQ(Tids, (std::multiset<uint8_t>{0, 1, FlightRecorder::WorkerTidBase,
                                          FlightRecorder::GcTid}));
  // The chunk sink saw the same records as a standalone document.
  ASSERT_EQ(ChunkBody.size(), 24 + 4 * sizeof(FlightEvent));
  EXPECT_EQ(ChunkBody.compare(0, 8, "TFGCFLR1"), 0);
  EXPECT_EQ(std::memcmp(ChunkBody.data() + 24, Events.data(),
                        4 * sizeof(FlightEvent)),
            0);
  // finish() is idempotent: destructor already ran it again above.
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Recorder on/off counter bit-identity (satellite 3)
//===----------------------------------------------------------------------===//

/// Extracts the deterministic counters (everything except wall-clock
/// derived "_ns" names) from a --stats-json document.
std::map<std::string, uint64_t> jsonCounters(const std::string &Path) {
  std::string Doc = slurp(Path);
  std::map<std::string, uint64_t> Out;
  size_t At = Doc.find("\"counters\": {");
  EXPECT_NE(At, std::string::npos) << Path;
  if (At == std::string::npos)
    return Out;
  size_t End = Doc.find('}', At);
  std::string Body = Doc.substr(At + 13, End - At - 13);
  size_t Pos = 0;
  while ((Pos = Body.find('"', Pos)) != std::string::npos) {
    size_t Close = Body.find('"', Pos + 1);
    std::string Name = Body.substr(Pos + 1, Close - Pos - 1);
    size_t Colon = Body.find(':', Close);
    uint64_t Value = std::stoull(Body.substr(Colon + 1));
    if (Name.find("_ns") == std::string::npos)
      Out[Name] = Value;
    Pos = Body.find(',', Colon);
    if (Pos == std::string::npos)
      break;
  }
  return Out;
}

TEST(FlightCli, RecorderOnOffCountersBitIdenticalAllStrategiesAllAlgorithms) {
  // The recorder writes no Stats counters and allocates nothing on the
  // heap it observes, so attaching it must not perturb any deterministic
  // counter — under --verify, for every strategy x algorithm.
  auto CliStrategy = [](GcStrategy S) {
    switch (S) {
    case GcStrategy::Tagged:
      return "tagged";
    case GcStrategy::InterpretedTagFree:
      return "interpreted";
    case GcStrategy::AppelTagFree:
      return "appel";
    default:
      return "compiled";
    }
  };
  auto CliAlgo = [](GcAlgorithm A) {
    switch (A) {
    case GcAlgorithm::MarkSweep:
      return "marksweep";
    case GcAlgorithm::Generational:
      return "generational";
    default:
      return "copying";
    }
  };
  for (GcStrategy S : AllStrategies) {
    for (GcAlgorithm A : AllAlgorithms) {
      std::string Label = std::string(gcStrategyName(S)) + "/" +
                          gcAlgorithmName(A);
      std::string StatsOff = tmpPath("onoff_off.json");
      std::string StatsOn = tmpPath("onoff_on.json");
      std::string Flight = tmpPath("onoff.bin");
      for (const std::string &P : {StatsOff, StatsOn, Flight})
        std::remove(P.c_str());

      std::vector<std::string> Base = {
          std::string("--strategy=") + CliStrategy(S),
          std::string("--algo=") + CliAlgo(A), "--heap=32768", "--verify"};
      if (A == GcAlgorithm::Generational)
        Base.push_back("--nursery-bytes=8192");
      std::string Src = wl::listChurn(20, 4);

      CliOptions Off;
      auto OffArgs = Base;
      OffArgs.insert(OffArgs.end(),
                     {"--stats-json=" + StatsOff, "-e", Src});
      ASSERT_TRUE(parseOk(OffArgs, Off)) << Label;
      ASSERT_EQ(runTfgc(Off), 0) << Label;

      CliOptions On;
      auto OnArgs = Base;
      OnArgs.insert(OnArgs.end(), {"--stats-json=" + StatsOn,
                                   "--flight-out=" + Flight, "-e", Src});
      ASSERT_TRUE(parseOk(OnArgs, On)) << Label;
      ASSERT_EQ(runTfgc(On), 0) << Label;

      auto COff = jsonCounters(StatsOff), COn = jsonCounters(StatsOn);
      ASSERT_FALSE(COff.empty()) << Label;
      EXPECT_EQ(COff, COn) << Label;
      // And the ride-along recording decodes.
      std::vector<FlightEvent> Events = decodeFlightFile(Flight);
      EXPECT_GE(Events.size(), 2u) << Label; // >= ThreadStart + ThreadExit
      for (const std::string &P : {StatsOff, StatsOn, Flight})
        std::remove(P.c_str());
    }
  }
}

//===----------------------------------------------------------------------===//
// Sequential end-to-end: decodable file, correct ring usage
//===----------------------------------------------------------------------===//

TEST(FlightCli, SequentialRunProducesCoherentTimeline) {
  std::string Flight = tmpPath("seq.bin");
  std::remove(Flight.c_str());
  CliOptions O;
  ASSERT_TRUE(parseOk({"--stress", "--heap=16384",
                       "--flight-out=" + Flight, "-e", wl::listChurn(20, 3)},
                      O));
  EXPECT_EQ(runTfgc(O), 0);

  std::vector<FlightEvent> Events = decodeFlightFile(Flight);
  // Globally monotone: drains happen only at world-stopped points.
  for (size_t I = 1; I < Events.size(); ++I)
    EXPECT_GE(Events[I].TimeNs, Events[I - 1].TimeNs) << "record " << I;
  // The single mutator brackets the run on task ring 0.
  EXPECT_EQ(countType(Events, FlightEventType::ThreadStart), 1u);
  EXPECT_EQ(countType(Events, FlightEventType::ThreadExit), 1u);
  EXPECT_EQ(Events.front().Type, (uint8_t)FlightEventType::ThreadStart);
  EXPECT_EQ(Events.front().Tid, 0u);
  // Collections mirror as paired GcBegin/GcEnd on the GC ring.
  size_t Begins = countType(Events, FlightEventType::GcBegin);
  EXPECT_GE(Begins, 1u);
  EXPECT_EQ(Begins, countType(Events, FlightEventType::GcEnd));
  EXPECT_GE(countType(Events, FlightEventType::GcPhase), Begins);
  // No handshake machinery and no fuel polls in the sequential VM: the
  // stop flag is never armed, so the poll counter stays disarmed too.
  EXPECT_EQ(countType(Events, FlightEventType::SafepointArm), 0u);
  EXPECT_EQ(countType(Events, FlightEventType::ThreadPark), 0u);
  EXPECT_EQ(countType(Events, FlightEventType::VmEpoch), 0u);
  std::remove(Flight.c_str());
}

//===----------------------------------------------------------------------===//
// Abnormal exit (exit 3) still flushes a decodable recording
//===----------------------------------------------------------------------===//

TEST(FlightCli, AbnormalExitStillFlushesDecodableRecording) {
  std::string Flight = tmpPath("abnormal.bin");
  std::remove(Flight.c_str());
  CliOptions O;
  ASSERT_TRUE(parseOk({"--stress", "--heap=16384", "--verify",
                       "--inject-verify-violation",
                       "--flight-out=" + Flight, "-e", wl::listChurn(20, 3)},
                      O));
  EXPECT_EQ(runTfgc(O), 3);

  // Same artifact guarantee as --metrics-out: the recording is on disk,
  // header-valid, whole records only, with the run's collections in it.
  std::vector<FlightEvent> Events = decodeFlightFile(Flight);
  ASSERT_GE(Events.size(), 3u);
  EXPECT_GE(countType(Events, FlightEventType::GcBegin), 1u);
  EXPECT_EQ(countType(Events, FlightEventType::ThreadExit), 1u);
  std::remove(Flight.c_str());
}

//===----------------------------------------------------------------------===//
// 4-thread end-to-end: handshake pairing invariants
//===----------------------------------------------------------------------===//

TEST(FlightCli, ThreadedRunSatisfiesHandshakePairing) {
  std::string Flight = tmpPath("threaded.bin");
  std::remove(Flight.c_str());
  CliOptions O;
  ASSERT_TRUE(parseOk({"--threads=4", "--algo=generational", "--heap=65536",
                       "--nursery-bytes=4096", "--verify",
                       "--flight-out=" + Flight, "-e",
                       wl::generationalChurn(60, 8, 80)},
                      O));
  EXPECT_EQ(runTfgc(O), 0);

  std::vector<FlightEvent> Events = decodeFlightFile(Flight);
  for (size_t I = 1; I < Events.size(); ++I)
    EXPECT_GE(Events[I].TimeNs, Events[I - 1].TimeNs) << "record " << I;
  EXPECT_EQ(countType(Events, FlightEventType::ThreadStart), 4u);
  EXPECT_EQ(countType(Events, FlightEventType::ThreadExit), 4u);

  bool AnyDropped = countType(Events, FlightEventType::Dropped) > 0;
  size_t Arms = countType(Events, FlightEventType::SafepointArm);
  EXPECT_EQ(countType(Events, FlightEventType::GcBegin),
            countType(Events, FlightEventType::GcEnd));
  if (!AnyDropped) {
    // Per-epoch pairing (flight_report.py --check asserts the same):
    // parks == resumes, and exactly one pause owner — either the last
    // parker (ThreadPark with ArgB=1) or an exiting thread's handoff.
    std::map<uint32_t, int> Parks, Resumes, Owners;
    for (const FlightEvent &E : Events) {
      if (E.Type == (uint8_t)FlightEventType::ThreadPark) {
        ++Parks[E.Arg32];
        if (E.ArgB)
          ++Owners[E.Arg32];
      } else if (E.Type == (uint8_t)FlightEventType::ThreadResume) {
        ++Resumes[E.Arg32];
      } else if (E.Type == (uint8_t)FlightEventType::PendingHandoff) {
        ++Owners[E.Arg32];
      }
    }
    EXPECT_EQ(Parks, Resumes);
    EXPECT_EQ(Owners.size(), Arms) << "every armed epoch has a pause owner";
    for (const auto &[Epoch, N] : Owners)
      EXPECT_EQ(N, 1) << "epoch " << Epoch;
    // Worker begin/end pair up per collection.
    EXPECT_EQ(countType(Events, FlightEventType::TraceWorkerBegin),
              countType(Events, FlightEventType::TraceWorkerEnd));
  }
  std::remove(Flight.c_str());
}

//===----------------------------------------------------------------------===//
// Flag validation
//===----------------------------------------------------------------------===//

TEST(FlightCli, FlagValidation) {
  CliOptions O;
  std::string Err;
  bool HelpOnly = false;
  EXPECT_FALSE(parseCli({"--flight-buffer-kb=16", "-e", "1"}, O, Err,
                        HelpOnly));
  EXPECT_NE(Err.find("--flight-out"), std::string::npos) << Err;

  CliOptions O2;
  ASSERT_TRUE(parseOk({"--flight-out=/tmp/f.bin", "--flight-buffer-kb=16",
                       "-e", "1"},
                      O2));
  EXPECT_EQ(O2.FlightOutPath, "/tmp/f.bin");
  EXPECT_EQ(O2.FlightBufferKb, 16u);
}

} // namespace
