//===- runtime/Roots.h - Activation record stacks ---------------*- C++ -*-===//
///
/// \file
/// The shadow stack the collectors traverse. Each activation record
/// (frame) carries the executing function, the base of its slot window in
/// the task's slot array, a *dynamic link* to its caller, and the code
/// image address of the call site it is suspended at — the return address
/// the paper dereferences (+8) to find the frame GC routine (Figure 1/2).
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_RUNTIME_ROOTS_H
#define TFGC_RUNTIME_ROOTS_H

#include "runtime/Value.h"

#include <cstdint>
#include <vector>

namespace tfgc {

inline constexpr uint32_t NoFrame = 0xffffffffu;

/// One activation record.
struct FrameInfo {
  uint32_t FuncId = 0;
  uint32_t SlotBase = 0; ///< First slot in the task's slot array.
  uint32_t NumSlots = 0;
  /// Code image address of the call/allocation site this frame is
  /// currently executing or suspended at; the collector reads the gc_word
  /// at PendingSiteAddr + GcWordOffset. Equals NoSiteAddr briefly before
  /// the first GC point.
  uint32_t PendingSiteAddr = 0;
  /// Dynamic link: index of the caller's frame (NoFrame for the oldest).
  /// Held explicitly so the polymorphic collector can run its
  /// pointer-reversal pass (paper section 3).
  uint32_t DynamicLink = NoFrame;
  /// Where to resume in the caller: destination slot and instruction.
  uint32_t CallerDst = 0;
  uint32_t ResumeInstr = 0;
};

inline constexpr uint32_t NoSiteAddr = 0xffffffffu;

/// One task's stack: a flat slot array plus the frame records. In the
/// sequential VM there is exactly one; the tasking runtime has one per
/// task.
struct TaskStack {
  std::vector<Word> Slots;
  std::vector<FrameInfo> Frames;

  Word *frameSlots(const FrameInfo &F) { return Slots.data() + F.SlotBase; }
};

/// Everything the collector can reach: the stacks of all suspended tasks.
struct RootSet {
  std::vector<TaskStack *> Stacks;
};

} // namespace tfgc

#endif // TFGC_RUNTIME_ROOTS_H
