file(REMOVE_RECURSE
  "CMakeFiles/tfgc_workloads.dir/Programs.cpp.o"
  "CMakeFiles/tfgc_workloads.dir/Programs.cpp.o.d"
  "libtfgc_workloads.a"
  "libtfgc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfgc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
