//===- bench/bench_tasking.cpp - E8/E15: tasking policies + real threads -===//
///
/// E8 — paper section 4: tasks suspend for collection only at procedure
/// calls. Testing only inside allocation routines is cheap but lets
/// allocation-free tasks run long after the heap is exhausted; testing at
/// every call stops the world fast but costs a test per call — unless the
/// Rgc register folds the test into the computed jump, getting both. This
/// bench runs workers plus a compute-heavy spinner under all three
/// policies.
///
/// E15 — the same N-tasks-one-heap model on real OS threads: GC-bound
/// generational churn at 1/2/4/8 mutator threads (1 = the cooperative
/// scheduler, the semantics reference). Reports collection throughput
/// (bytes traced over total pause time — the parallel tracer's win) and
/// the worst per-task p99 request-to-park stop delay (the safepoint
/// handshake's cost). One work unit per thread, so allocation pressure
/// scales with the thread count.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "sched/ThreadedTasking.h"
#include "tasking/Tasking.h"

using namespace tfgc;
using namespace tfgc::bench;
namespace wl = tfgc::workloads;

namespace {

struct TaskRun {
  Stats St;
  bool Ok = false;
};

TaskRun runTasks(SuspendChecks Policy, int Workers, int Iters,
                 int SpinRounds, int SpinN, size_t HeapBytes) {
  TaskRun Out;
  // The every-call policies suspend tasks at arbitrary call sites, so
  // compile tasking-safe: gc_words everywhere and call arguments traced
  // (see DESIGN.md).
  CompileOptions O;
  O.TaskingSafe = true;
  auto P = compileOrDie(wl::taskWorkerAndSpinner(), O);
  std::string Err;
  auto Col = P->makeCollector(GcStrategy::CompiledTagFree,
                              GcAlgorithm::Copying, HeapBytes, Out.St, &Err);
  if (!Col)
    std::abort();
  TaskingOptions TO;
  TO.Policy = Policy;
  TaskingRuntime Rt(P->Prog, P->Image, *P->Types, *Col, TO);
  FuncId Worker = findFunction(P->Prog, "worker");
  FuncId Spinner = findFunction(P->Prog, "spinner");
  for (int64_t SeedIdx = 1; SeedIdx <= Workers; ++SeedIdx)
    Rt.spawnInt(Worker, {SeedIdx, Iters});
  if (SpinRounds > 0)
    Rt.spawnInt(Spinner, {SpinRounds, SpinN});
  Out.Ok = Rt.runAll();
  return Out;
}

const char *policyName(SuspendChecks P) {
  switch (P) {
  case SuspendChecks::AtAllocation: return "alloc-only";
  case SuspendChecks::AtEveryCall:  return "every-call";
  case SuspendChecks::RgcRegister:  return "rgc-register";
  default:                          return "?";
  }
}

void report(SuspendChecks Policy) {
  TaskRun R = runTasks(Policy, 3, 60, 60, 2500, 1 << 13);
  if (!R.Ok)
    std::abort();
  uint64_t Stops = R.St.get(StatId::TaskWorldStops);
  tableCell(policyName(Policy));
  tableCell(R.St.get(StatId::TaskSuspendChecks));
  tableCell(Stops);
  tableCell(Stops ? (double)R.St.get(StatId::TaskStepsToWorldStopTotal) /
                        (double)Stops
                  : 0.0);
  tableCell(R.St.get(StatId::TaskStepsToWorldStopMax));
  tableCell(R.St.get(StatId::TaskContextSwitches));
  tableEnd();
}

//===----------------------------------------------------------------------===//
// E15: GC-bound generational churn on real threads
//===----------------------------------------------------------------------===//

struct ThreadedRun {
  Stats St;
  bool Ok = false;
};

/// One churn task per thread on a shared generational heap small enough
/// that collection dominates. Threads==1 runs the cooperative scheduler
/// (same logical program, no OS threads) as the baseline row.
ThreadedRun runThreadedChurn(unsigned Threads, int Iters, size_t HeapBytes) {
  ThreadedRun Out;
  CompileOptions O;
  O.TaskingSafe = true;
  auto P = compileOrDie(wl::taskWorker(), O);
  std::string Err;
  auto Col =
      P->makeCollector(GcStrategy::CompiledTagFree, GcAlgorithm::Generational,
                       HeapBytes, Out.St, &Err);
  if (!Col)
    std::abort();
  TaskingOptions TO;
  TO.Policy = SuspendChecks::AtEveryCall;
  FuncId Worker = findFunction(P->Prog, "worker");
  auto Spawn = [&](auto &Rt) {
    for (unsigned I = 0; I < Threads; ++I)
      Rt.spawnInt(Worker, {(int64_t)I + 1, Iters});
    Out.Ok = Rt.runAll();
  };
  if (Threads <= 1) {
    TaskingRuntime Rt(P->Prog, P->Image, *P->Types, *Col, TO);
    Spawn(Rt);
  } else {
    Col->setGcThreads(Threads);
    ThreadedRuntime Rt(P->Prog, P->Image, *P->Types, *Col, TO);
    Spawn(Rt);
  }
  return Out;
}

/// Worst per-task p99 request-to-park delay across the run.
uint64_t worstStopDelayP99(const Stats &St, unsigned Threads) {
  uint64_t Worst = 0;
  for (unsigned I = 0; I < Threads; ++I)
    Worst = std::max(Worst, St.get("task." + std::to_string(I) +
                                   ".world_stop_delay_ns_p99"));
  return Worst;
}

void reportThreaded(unsigned Threads, size_t HeapBytes) {
  ThreadedRun R = runThreadedChurn(Threads, 60, HeapBytes);
  if (!R.Ok)
    std::abort();
  if (JsonSink *Sink = JsonSink::active())
    Sink->record("compiled", GcAlgorithm::Generational, HeapBytes, R.St, 0,
                 Threads);
  // Copying-family collectors have no per-cycle reclaimed counter; the
  // tracer's work rate (bytes traced per pause second) is the number the
  // parallel mark/copy phase actually moves.
  uint64_t TracedBytes = R.St.get(StatId::GcWordsVisited) * sizeof(Word);
  uint64_t PauseNs = R.St.get(StatId::GcPauseNsTotal);
  tableCell((uint64_t)Threads);
  tableCell(R.St.get(StatId::TaskWorldStops));
  tableCell(R.St.get(StatId::GcCollections));
  tableCell(TracedBytes / 1024);
  tableCell((double)PauseNs / 1e6);
  tableCell(PauseNs ? (double)TracedBytes * 1e3 / (double)PauseNs : 0.0);
  tableCell((double)worstStopDelayP99(R.St, Threads) / 1e3);
  tableEnd();
}

void BM_ThreadedChurn(benchmark::State &State, unsigned Threads) {
  for (auto _ : State) {
    ThreadedRun R = runThreadedChurn(Threads, 30, 1 << 13);
    if (!R.Ok) {
      State.SkipWithError("task failure");
      return;
    }
    State.counters["threads"] = (double)Threads;
    State.counters["collections"] = (double)R.St.get(StatId::GcCollections);
    uint64_t PauseNs = R.St.get(StatId::GcPauseNsTotal);
    State.counters["trace_mb_per_s"] =
        PauseNs ? (double)R.St.get(StatId::GcWordsVisited) * sizeof(Word) *
                      1e3 / (double)PauseNs
                : 0.0;
    State.counters["stop_p99_ns"] =
        (double)worstStopDelayP99(R.St, Threads);
  }
}
BENCHMARK_CAPTURE(BM_ThreadedChurn, t1, 1u);
BENCHMARK_CAPTURE(BM_ThreadedChurn, t2, 2u);
BENCHMARK_CAPTURE(BM_ThreadedChurn, t4, 4u);
BENCHMARK_CAPTURE(BM_ThreadedChurn, t8, 8u);

void BM_Tasking(benchmark::State &State, SuspendChecks Policy) {
  for (auto _ : State) {
    TaskRun R = runTasks(Policy, 3, 30, 30, 1500, 1 << 13);
    if (!R.Ok) {
      State.SkipWithError("task failure");
      return;
    }
    State.counters["world_stops"] = (double)R.St.get(StatId::TaskWorldStops);
  }
}
BENCHMARK_CAPTURE(BM_Tasking, alloc_only, SuspendChecks::AtAllocation);
BENCHMARK_CAPTURE(BM_Tasking, every_call, SuspendChecks::AtEveryCall);
BENCHMARK_CAPTURE(BM_Tasking, rgc_register, SuspendChecks::RgcRegister);

} // namespace

int main(int argc, char **argv) {
  JsonSink Sink("tasking", argc, argv);
  jsonWorkload("taskWorkerAndSpinner");
  tableHeader("E8: suspension policy (3 workers + 1 spinner, shared heap)",
              "checks = explicit suspension tests executed; stop latency = "
              "instructions other tasks run between heap exhaustion and "
              "world-stop",
              {"policy", "checks", "world stops", "avg stop latency",
               "max stop latency", "ctx switches"});
  report(SuspendChecks::AtAllocation);
  report(SuspendChecks::AtEveryCall);
  report(SuspendChecks::RgcRegister);
  std::printf("\nExpected shape: alloc-only runs the fewest checks but the "
              "spinner stalls the\nworld-stop (large max latency); "
              "every-call stops fast but pays a check per call;\n"
              "rgc-register matches alloc-only's explicit check count with "
              "every-call's latency\n(the test rides the computed jump).\n\n");

  jsonWorkload("taskWorker-churn");
  tableHeader("E15: generational churn on real threads (one task per "
              "thread, shared heap)",
              "trace MB/s = bytes traced / total pause time; stop p99 us = "
              "worst per-task p99 request-to-park delay",
              {"threads", "world stops", "collections", "traced KiB",
               "pause ms", "trace MB/s", "stop p99 us"});
  for (unsigned Threads : {1u, 2u, 4u, 8u})
    reportThreaded(Threads, 1 << 13);
  std::printf("\nExpected shape: pause time per traced byte falls as the "
              "work-stealing tracer\nspreads N parked stacks over N workers "
              "(needs real cores — on a single-core host\nthe workers "
              "serialize and throughput stays flat); stop p99 grows mildly "
              "with the\nthread count since the slowest mutator gates every "
              "handshake.\n\n");
  benchmark::Initialize(&argc, argv);
  Sink.runBenchmarksAndWrite();
  return 0;
}
