file(REMOVE_RECURSE
  "CMakeFiles/compiled_vs_interpreted.dir/compiled_vs_interpreted.cpp.o"
  "CMakeFiles/compiled_vs_interpreted.dir/compiled_vs_interpreted.cpp.o.d"
  "compiled_vs_interpreted"
  "compiled_vs_interpreted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiled_vs_interpreted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
