//===- analysis/GcPoints.h - GC-point analysis ------------------*- C++ -*-===//
///
/// \file
/// Paper section 5.1: the fixpoint computation of the set S of functions
/// whose invocation can ultimately lead to a collection, seeded with the
/// allocating instructions (the built-in "cons/new"). Call sites whose
/// callees are all outside S cannot trigger GC, so their gc_words can be
/// omitted entirely.
///
/// Higher-order calls are handled with the conservative closure analysis
/// the paper suggests: an indirect call may invoke any closure-converted
/// function in the program.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_ANALYSIS_GCPOINTS_H
#define TFGC_ANALYSIS_GCPOINTS_H

#include "ir/Ir.h"

#include <vector>

namespace tfgc {

struct GcPointOptions {
  /// Count float boxing as allocation (true under the tagged model, where
  /// floats are heap boxes; false under the tag-free model, where floats
  /// live unboxed in slots).
  bool FloatsAllocate = false;
};

struct GcPointResult {
  /// Functions in the paper's set S (may lead to a collection).
  std::vector<bool> MayCollect;
  unsigned FixpointIterations = 0;
  unsigned SitesTotal = 0;
  unsigned SitesCannotTrigger = 0; ///< gc_word omitted.
};

/// Runs the analysis and sets CallSiteInfo::CanTriggerGc for every site.
GcPointResult computeGcPoints(IrProgram &P, const GcPointOptions &Opts = {});

/// Marks every site as able to trigger GC (the analysis-off baseline).
void assumeAllSitesTrigger(IrProgram &P);

} // namespace tfgc

#endif // TFGC_ANALYSIS_GCPOINTS_H
