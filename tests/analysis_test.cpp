//===- tests/analysis_test.cpp - Liveness, GC points, reconstruction -----===//

#include "TestUtil.h"

using namespace tfgc;
using namespace tfgc::test;

namespace {

/// Compiles and finds the single direct call site from \p Caller to
/// \p Callee.
const CallSiteInfo *findDirectSite(const CompiledProgram &P,
                                   const std::string &Caller,
                                   const std::string &Callee) {
  FuncId CalleeId = findFunction(P.Prog, Callee);
  FuncId CallerId = findFunction(P.Prog, Caller);
  for (const CallSiteInfo &S : P.Prog.Sites)
    if (S.Kind == SiteKind::Direct && S.Caller == CallerId &&
        S.Callee == CalleeId)
      return &S;
  return nullptr;
}

TEST(Liveness, AppendRecursiveCallTracesNothing) {
  // The paper's section 2.4 observation: at append's recursive call, no
  // heap-typed variable of the caller is live — the frame routine is
  // no_trace.
  std::string Src =
      "fun append (xs : int list) (ys : int list) : int list =\n"
      "  case xs of Nil => ys | Cons(x, r) => x :: append r ys;\n"
      "append [1] [2]";
  auto C = compile(Src);
  ASSERT_TRUE(C.P) << C.Error;
  const CallSiteInfo *S = findDirectSite(*C.P, "append", "append");
  ASSERT_NE(S, nullptr);
  const IrFunction &F = C.P->Prog.fn(S->Caller);
  // Only the int head `x` may remain (it is consumed by the cons after
  // the call); no list-typed slot is traced.
  for (SlotIndex Slot : S->TraceSlots)
    EXPECT_EQ(F.SlotTypes[Slot]->resolved()->getKind(), TypeKind::Int)
        << "slot " << Slot;
  EXPECT_TRUE(C.P->Compiled.siteRoutine(S->Id).isNoTrace());
}

TEST(Liveness, LiveListIsTraced) {
  std::string Src =
      "fun len (xs : int list) : int = case xs of Nil => 0 "
      "| Cons(_, r) => 1 + len r;\n"
      "fun f (xs : int list) : int = len xs + len xs;\n"
      "f [1, 2]";
  auto C = compile(Src);
  ASSERT_TRUE(C.P) << C.Error;
  const CallSiteInfo *S = findDirectSite(*C.P, "f", "len");
  ASSERT_NE(S, nullptr);
  // At the FIRST call to len, xs (slot 0) is still live.
  EXPECT_FALSE(C.P->Compiled.siteRoutine(S->Id).isNoTrace());
}

TEST(Liveness, WithoutLivenessEverythingInitializedIsTraced) {
  std::string Src =
      "fun len (xs : int list) : int = case xs of Nil => 0 "
      "| Cons(_, r) => 1 + len r;\n"
      "fun f (xs : int list) (ys : int list) : int = len ys;\n"
      "f [1] [2, 3]";
  CompileOptions NoLive;
  NoLive.UseLiveness = false;
  auto C = compile(Src, NoLive);
  ASSERT_TRUE(C.P) << C.Error;
  const CallSiteInfo *S = findDirectSite(*C.P, "f", "len");
  ASSERT_NE(S, nullptr);
  // Both parameters are traced even though xs is dead.
  ASSERT_GE(S->TraceSlots.size(), 2u);
  EXPECT_EQ(S->TraceSlots[0], 0u);
  EXPECT_EQ(S->TraceSlots[1], 1u);
}

TEST(Liveness, UninitializedSlotsAreNeverTraced) {
  // GC during the first `build` call must not trace the slot that will
  // later hold the second list.
  std::string Src =
      "fun build (n : int) : int list = if n = 0 then [] "
      "else n :: build (n - 1);\n"
      "fun f (u : int) : int =\n"
      "  let val a = build 5 val b = build 6 in 0 end;\n"
      "f 0";
  auto C = compile(Src);
  ASSERT_TRUE(C.P) << C.Error;
  FuncId FId = findFunction(C.P->Prog, "f");
  // Find the first call site in f (the `build 5` call).
  const CallSiteInfo *First = nullptr;
  for (const CallSiteInfo &S : C.P->Prog.Sites)
    if (S.Caller == FId && S.Kind == SiteKind::Direct &&
        (!First || S.InstrIdx < First->InstrIdx))
      First = &S;
  ASSERT_NE(First, nullptr);
  const IrFunction &F = C.P->Prog.fn(FId);
  const Instr &I = F.Code[First->InstrIdx];
  for (SlotIndex Slot : First->TraceSlots)
    EXPECT_NE(Slot, I.Dst); // `a` is not initialized during the call.
}

TEST(GcPoints, PureFunctionsCannotTrigger) {
  std::string Src =
      "fun spin (n : int) : int = if n = 0 then 0 else spin (n - 1);\n"
      "fun build (n : int) : int list = if n = 0 then [] "
      "else n :: build (n - 1);\n"
      "(spin 3, build 3)";
  auto C = compile(Src);
  ASSERT_TRUE(C.P) << C.Error;
  const CallSiteInfo *SpinCall = findDirectSite(*C.P, "spin", "spin");
  ASSERT_NE(SpinCall, nullptr);
  EXPECT_FALSE(SpinCall->CanTriggerGc);
  const CallSiteInfo *BuildCall = findDirectSite(*C.P, "build", "build");
  ASSERT_NE(BuildCall, nullptr);
  EXPECT_TRUE(BuildCall->CanTriggerGc);
  EXPECT_GT(C.P->GcPoints.SitesCannotTrigger, 0u);
  EXPECT_GT(C.P->Image.omittedGcWords(), 0u);
}

TEST(GcPoints, TransitiveAllocationPropagates) {
  std::string Src =
      "fun mk (n : int) : int list = [n];\n"
      "fun outer (n : int) : int list = mk n;\n"
      "fun caller (n : int) : int list = outer n;\n"
      "caller 1";
  auto C = compile(Src);
  ASSERT_TRUE(C.P) << C.Error;
  const CallSiteInfo *S = findDirectSite(*C.P, "caller", "outer");
  ASSERT_NE(S, nullptr);
  EXPECT_TRUE(S->CanTriggerGc);
  EXPECT_TRUE(C.P->GcPoints.MayCollect[findFunction(C.P->Prog, "caller")]);
}

TEST(GcPoints, IndirectCallsAreConservative) {
  std::string Src =
      "fun apply (f : int -> int) (x : int) : int = f x;\n"
      "fun lenOf (xs : int list) : int = case xs of Nil => 0 "
      "| Cons(_, r) => 1 + lenOf r;\n"
      "apply (fn x => lenOf [x, x]) 3";
  auto C = compile(Src);
  ASSERT_TRUE(C.P) << C.Error;
  FuncId Apply = findFunction(C.P->Prog, "apply");
  const CallSiteInfo *Indirect = nullptr;
  for (const CallSiteInfo &S : C.P->Prog.Sites)
    if (S.Caller == Apply && S.Kind == SiteKind::Indirect)
      Indirect = &S;
  ASSERT_NE(Indirect, nullptr);
  // Some closure allocates, so the indirect site may trigger.
  EXPECT_TRUE(Indirect->CanTriggerGc);
}

TEST(GcPoints, AnalysisOffMarksEverything) {
  std::string Src =
      "fun spin (n : int) : int = if n = 0 then 0 else spin (n - 1);\n"
      "spin 3";
  CompileOptions O;
  O.UseGcPointAnalysis = false;
  auto C = compile(Src, O);
  ASSERT_TRUE(C.P) << C.Error;
  for (const CallSiteInfo &S : C.P->Prog.Sites)
    EXPECT_TRUE(S.CanTriggerGc);
  EXPECT_EQ(C.P->Image.omittedGcWords(), 0u);
}

TEST(GcPoints, FixpointIterationsReported) {
  auto C = compile("fun a (n : int) : int list = b n\n"
                   "and b (n : int) : int list = c n\n"
                   "and c (n : int) : int list = [n];\n"
                   "a 1");
  ASSERT_TRUE(C.P) << C.Error;
  EXPECT_GE(C.P->GcPoints.FixpointIterations, 2u);
}

TEST(Reconstruct, PathsPointIntoFunctionTypes) {
  std::string Src = "fun map f xs = case xs of Nil => Nil "
                    "| Cons(x, r) => Cons(f x, map f r);\n"
                    "map (fn x => (x, x)) [1, 2]";
  auto C = compile(Src);
  ASSERT_TRUE(C.P) << C.Error;
  ASSERT_TRUE(C.P->Recon.ok());
  FuncId Map = findFunction(C.P->Prog, "map");
  const IrFunction &F = C.P->Prog.fn(Map);
  // map's type parameters must each be extractable from its fun type.
  for (size_t I = 0; I < F.TypeParams.size(); ++I) {
    const ClosureParamPath &P = C.P->Recon.Paths[Map][I];
    ASSERT_TRUE(P.Found);
    TypePath Expect;
    ASSERT_TRUE(findTypePath(F.FunTy, F.TypeParams[I], Expect));
    EXPECT_EQ(P.Path, Expect);
  }
}

TEST(Reconstruct, ViolationNamesTheLambda) {
  std::string Src = "fun hide xs = fn (n : int) => n + (case xs of Nil => 0 "
                    "| Cons(_, _) => 1);\n"
                    "(hide [true]) 3";
  auto C = compile(Src);
  ASSERT_TRUE(C.P) << C.Error;
  ASSERT_FALSE(C.P->Recon.ok());
  const IrFunction &F = C.P->Prog.fn(C.P->Recon.Violations[0].Fn);
  EXPECT_TRUE(F.IsClosure);
}

TEST(Cfg, BranchesAndJoins) {
  auto C = compile("fun f (b : bool) : int = if b then 1 else 2;\nf true");
  ASSERT_TRUE(C.P) << C.Error;
  // Smoke: compiled fine means CFG-based dataflow converged; check sites
  // got trace sets assigned (possibly empty).
  for (const CallSiteInfo &S : C.P->Prog.Sites)
    EXPECT_LE(S.TraceSlots.size(),
              (size_t)C.P->Prog.fn(S.Caller).numSlots());
}

} // namespace
