//===- tests/poly_gc_test.cpp - Polymorphic collection (paper sec. 3) ----===//

#include "TestUtil.h"
#include "workloads/Programs.h"

using namespace tfgc;
using namespace tfgc::test;
namespace wl = tfgc::workloads;

namespace {

TEST(PolyGc, TypeGcClosuresAreBuiltDuringCollection) {
  ExecResult R = execProgram(wl::polyPaper(), GcStrategy::CompiledTagFree,
                             GcAlgorithm::Copying, 1 << 12, true);
  ASSERT_TRUE(R.Run.Ok) << R.Run.Error;
  EXPECT_GT(R.St.get("gc.tg_nodes"), 0u);
}

TEST(PolyGc, MonomorphicProgramsBuildNoTypeGcClosures) {
  ExecResult R = execProgram(wl::listChurn(30, 3), GcStrategy::CompiledTagFree,
                             GcAlgorithm::Copying, 1 << 12, true);
  ASSERT_TRUE(R.Run.Ok);
  EXPECT_EQ(R.St.get("gc.tg_nodes"), 0u);
}

TEST(PolyGc, GoldbergTraversesWithPointerReversal) {
  ExecResult R = execProgram(wl::polyDeep(50, 40), GcStrategy::CompiledTagFree,
                             GcAlgorithm::Copying, 1 << 12, true);
  ASSERT_TRUE(R.Run.Ok);
  EXPECT_GT(R.St.get("gc.ptr_reversal_steps"), 0u);
  EXPECT_EQ(R.St.get("gc.chain_steps"), 0u); // Never walks caller chains.
}

TEST(PolyGc, AppelWalksDynamicChainsQuadratically) {
  // Appel resolves each polymorphic frame by walking down to ground
  // callers; with a depth-D stack of polymorphic frames, chain steps grow
  // quadratically while Goldberg's stay zero.
  ExecResult Shallow = execProgram(wl::polyDeep(20, 40),
                                   GcStrategy::AppelTagFree,
                                   GcAlgorithm::Copying, 1 << 12, true);
  ExecResult Deep = execProgram(wl::polyDeep(40, 40),
                                GcStrategy::AppelTagFree,
                                GcAlgorithm::Copying, 1 << 12, true);
  ASSERT_TRUE(Shallow.Run.Ok && Deep.Run.Ok);
  uint64_t S = Shallow.St.get("gc.chain_steps");
  uint64_t D = Deep.St.get("gc.chain_steps");
  ASSERT_GT(S, 0u);
  // Doubling the depth should much more than double the chain work.
  EXPECT_GT(D, 3 * S);
}

TEST(PolyGc, ExtractionPathsExistForReconstructibleLambdas) {
  auto C = compile(wl::polyPaper());
  ASSERT_TRUE(C.P) << C.Error;
  EXPECT_TRUE(C.P->Recon.ok());
  // Every closure function's type parameters all have paths.
  for (const IrFunction &F : C.P->Prog.Functions) {
    if (!F.IsClosure)
      continue;
    for (const ClosureParamPath &P : C.P->Recon.Paths[F.Id])
      EXPECT_TRUE(P.Found);
  }
}

TEST(PolyGc, NonReconstructibleLambdaIsRejectedTagFree) {
  // The lambda's captured value has type 'a, but its function type is
  // int -> int: 'a cannot be recovered from the closure's type (the
  // Goldberg '91 gap, closed by Goldberg & Gloger '92).
  std::string Src = "fun len xs = case xs of Nil => 0 "
                    "| Cons(_, r) => 1 + len r;\n"
                    "fun hide xs = fn (n : int) => n + len xs;\n"
                    "(hide [true]) 3";
  auto C = compile(Src);
  ASSERT_TRUE(C.P) << C.Error;
  EXPECT_FALSE(C.P->Recon.ok());

  Stats St;
  std::string Err;
  auto Col = C.P->makeCollector(GcStrategy::CompiledTagFree,
                                GcAlgorithm::Copying, 1 << 14, St, &Err);
  EXPECT_EQ(Col, nullptr);
  EXPECT_NE(Err.find("not collectible tag-free"), std::string::npos);

  // The tagged collector handles it fine: tags need no reconstruction.
  ExecResult R = execProgram(Src, GcStrategy::Tagged, GcAlgorithm::Copying,
                             1 << 14, true);
  ASSERT_TRUE(R.Run.Ok) << R.CompileError << R.Run.Error;
  EXPECT_EQ(R.Run.Value, "4");
}

TEST(PolyGc, ClosuresReachedThroughGroundFieldsTraceCorrectly) {
  // A polymorphic-capturing lambda stored in a list and only traced
  // through the list's ground element type: the collector must rebuild
  // the function-type routine from the static type (Figure 4).
  // mk's lambda captures xs : 'a list and has type 'a -> int, so 'a is
  // recoverable from the closure's function type.
  std::string Src =
      "fun len xs = case xs of Nil => 0 | Cons(_, r) => 1 + len r;\n"
      "fun build (n : int) : int list = if n = 0 then [] "
      "else n :: build (n - 1);\n"
      "fun consume (fs : (bool -> int) list) (acc : int) : int =\n"
      "  case fs of Nil => acc | Cons(f, r) => consume r (acc + f true);\n"
      "fun mk xs = fn y => len (y :: xs);\n"
      "val fs = [mk [true], mk [false, true]];\n"
      "let val junk = build 300 in consume fs 0 end";
  EXPECT_EQ(runAllStrategies(Src, 1 << 12), "5");
}

TEST(PolyGc, HigherOrderPolymorphicMap) {
  std::string Src =
      "fun map f xs = case xs of Nil => Nil "
      "| Cons(x, r) => Cons(f x, map f r);\n"
      "fun build (n : int) : int list = if n = 0 then [] "
      "else n :: build (n - 1);\n"
      "fun sum (xs : int list) : int = case xs of Nil => 0 "
      "| Cons(x, r) => x + sum r;\n"
      "sum (map (fn p => case p of (a, b) => a + b)\n"
      "         (map (fn x => (x, x * 2)) (build 30)))";
  EXPECT_EQ(runAllStrategies(Src, 1 << 12),
            std::to_string(3 * (30 * 31 / 2)));
}

TEST(PolyGc, PolymorphicDataStructuresSurviveStress) {
  std::string Src =
      "datatype 'a tree2 = Lf | Nd of 'a tree2 * 'a * 'a tree2;\n"
      "fun insert (t : int tree2) (v : int) : int tree2 =\n"
      "  case t of Lf => Nd(Lf, v, Lf)\n"
      "  | Nd(l, x, r) => if v < x then Nd(insert l v, x, r)\n"
      "                   else Nd(l, x, insert r v);\n"
      "fun total (t : int tree2) : int =\n"
      "  case t of Lf => 0 | Nd(l, x, r) => total l + x + total r;\n"
      "fun fill (t : int tree2) (i : int) : int tree2 =\n"
      "  if i = 0 then t else fill (insert t (i * 7 mod 31)) (i - 1);\n"
      "total (fill Lf 30)";
  runAllStrategies(Src, 1 << 12);
}

TEST(PolyGc, StrategiesAgreeOnPolyPaperStats) {
  // Compiled and interpreted differ in ground-type mechanics but must
  // visit the same objects.
  ExecResult A = execProgram(wl::polyPaper(), GcStrategy::CompiledTagFree,
                             GcAlgorithm::Copying, 1 << 12, true);
  ExecResult B = execProgram(wl::polyPaper(), GcStrategy::InterpretedTagFree,
                             GcAlgorithm::Copying, 1 << 12, true);
  ASSERT_TRUE(A.Run.Ok && B.Run.Ok);
  EXPECT_EQ(A.St.get("gc.objects_visited"), B.St.get("gc.objects_visited"));
  // ...and the interpreted method does strictly more descriptor walking
  // than the compiled method does.
  EXPECT_GT(B.St.get("gc.desc_steps"), A.St.get("gc.desc_steps"));
}

} // namespace
