#!/usr/bin/env python3
"""Diff a fresh run_benches.sh output against committed BENCH_*.json.

The committed BENCH_*.json files are the repo's perf trajectory. Their
`table_runs` counters come from the deterministic VM/GC stat domains, so
on the same source they are bit-identical run to run — any difference is
a real behavior change that slipped past the tests (an extra collection,
a changed visit count, a lost superinstruction). Timings, by contrast,
are machine-dependent: they are reported, never failed on.

Usage:
  tools/bench_diff.py FRESH_DIR [--baseline DIR] [--bench NAME]...
                      [--warn-ratio R]

  FRESH_DIR      directory holding the freshly generated BENCH_*.json
                 (e.g. the target dir passed to `run_benches.sh` plus a
                 copy step, or just the repo root after rerunning)
  --baseline     directory with the committed baselines (default: the
                 repo root, i.e. this script's parent's parent)
  --bench NAME   restrict to BENCH_<NAME>.json (repeatable; default all
                 baselines present)
  --warn-ratio R warn when a timing moved by more than R x (default 1.5)

Exit status: 1 on counter drift (or a missing/extra run), 0 otherwise —
timing warnings never fail the diff.

Typical CI wiring:
  tools/run_benches.sh build && mkdir fresh && mv BENCH_*.json fresh/ \
      && git checkout -- 'BENCH_*.json' \
      && tools/bench_diff.py fresh
"""

import argparse
import glob
import json
import os
import sys

# Counters whose values are derived from wall-clock time: identical
# behavior produces different numbers every run, so they are excluded
# from the bit-identical contract.
TIME_COUNTER_MARKERS = ("_ns", "pause_ns", "wall_ms")


def is_time_counter(name):
    return any(m in name for m in TIME_COUNTER_MARKERS)


def run_key(run):
    return (
        run.get("workload", ""),
        run.get("strategy", ""),
        run.get("algorithm", ""),
        run.get("heap_bytes", 0),
        run.get("nursery_bytes", 0),
    )


def fmt_key(key):
    wl, strat, algo, heap, nursery = key
    s = "%s/%s/%s heap=%d" % (wl, strat, algo, heap)
    if nursery:
        s += " nursery=%d" % nursery
    return s


def diff_table_runs(name, base, fresh):
    """Returns (drift_lines, warn_lines) for one bench's table_runs."""
    drift, warns = [], []
    base_runs = {run_key(r): r for r in base.get("table_runs", [])}
    fresh_runs = {run_key(r): r for r in fresh.get("table_runs", [])}
    for key in sorted(set(base_runs) | set(fresh_runs)):
        if key not in fresh_runs:
            drift.append("%s: run missing from fresh output: %s" %
                         (name, fmt_key(key)))
            continue
        if key not in base_runs:
            drift.append("%s: run not in baseline (new?): %s" %
                         (name, fmt_key(key)))
            continue
        bc = base_runs[key].get("counters", {})
        fc = fresh_runs[key].get("counters", {})
        for counter in sorted(set(bc) | set(fc)):
            if is_time_counter(counter):
                continue
            bv, fv = bc.get(counter), fc.get(counter)
            if bv != fv:
                drift.append("%s: %s: %s: %s -> %s" %
                             (name, fmt_key(key), counter, bv, fv))
    return drift, warns


def diff_timings(name, base, fresh, warn_ratio):
    """Warn-only comparison of google-benchmark real_time medians."""
    warns = []
    base_bms = {b["name"]: b
                for b in base.get("benchmark", {}).get("benchmarks", [])}
    fresh_bms = {b["name"]: b
                 for b in fresh.get("benchmark", {}).get("benchmarks", [])}
    for bm in sorted(set(base_bms) & set(fresh_bms)):
        bt = base_bms[bm].get("real_time", 0.0)
        ft = fresh_bms[bm].get("real_time", 0.0)
        if not bt or not ft:
            continue
        ratio = ft / bt
        if ratio > warn_ratio or ratio < 1.0 / warn_ratio:
            warns.append("%s: %s: real_time %.3fms -> %.3fms (%.2fx)" %
                         (name, bm, bt / 1e6, ft / 1e6, ratio))
    return warns


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("fresh_dir")
    ap.add_argument("--baseline",
                    default=os.path.dirname(
                        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--bench", action="append", default=[])
    ap.add_argument("--warn-ratio", type=float, default=1.5)
    args = ap.parse_args()

    if args.bench:
        names = ["BENCH_%s.json" % n for n in args.bench]
    else:
        names = sorted(os.path.basename(p) for p in
                       glob.glob(os.path.join(args.baseline, "BENCH_*.json")))
    if not names:
        print("bench_diff: no BENCH_*.json baselines in %s" % args.baseline,
              file=sys.stderr)
        return 1

    all_drift, all_warns, compared = [], [], 0
    for name in names:
        base_path = os.path.join(args.baseline, name)
        fresh_path = os.path.join(args.fresh_dir, name)
        if not os.path.exists(base_path):
            all_drift.append("%s: baseline missing at %s" % (name, base_path))
            continue
        if not os.path.exists(fresh_path):
            all_drift.append("%s: fresh output missing at %s (bench not run?)"
                             % (name, fresh_path))
            continue
        with open(base_path) as f:
            base = json.load(f)
        with open(fresh_path) as f:
            fresh = json.load(f)
        compared += 1
        drift, _ = diff_table_runs(name, base, fresh)
        all_drift.extend(drift)
        all_warns.extend(diff_timings(name, base, fresh, args.warn_ratio))

    for w in all_warns:
        print("warn (timing): %s" % w)
    for d in all_drift:
        print("DRIFT: %s" % d)
    if all_drift:
        print("\nbench_diff: FAIL — %d counter drift(s) across %d bench(es); "
              "counters are deterministic, so either fix the regression or "
              "re-run tools/run_benches.sh and commit the new baselines with "
              "the change that moved them" % (len(all_drift), compared))
        return 1
    print("bench_diff: OK — %d bench(es), counters bit-identical%s" %
          (compared,
           ", %d timing warning(s)" % len(all_warns) if all_warns else ""))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)
