file(REMOVE_RECURSE
  "libtfgc_support.a"
)
