//===- analysis/Reconstruct.cpp -------------------------------------------===//

#include "analysis/Reconstruct.h"

using namespace tfgc;

bool tfgc::findTypePath(Type *Root, Type *Target, TypePath &Out) {
  Root = Root->resolved();
  if (Root == Target)
    return true;
  if (Root->isVar())
    return false;
  for (unsigned I = 0; I < Root->numArgs(); ++I) {
    Out.push_back(I);
    if (findTypePath(Root->arg(I), Target, Out))
      return true;
    Out.pop_back();
  }
  if (Root->getKind() == TypeKind::Fun) {
    Out.push_back(Root->numArgs());
    if (findTypePath(Root->result(), Target, Out))
      return true;
    Out.pop_back();
  }
  return false;
}

ReconstructResult tfgc::computeExtractionPaths(const IrProgram &P) {
  ReconstructResult R;
  R.Paths.resize(P.Functions.size());
  for (const IrFunction &F : P.Functions) {
    auto &Entry = R.Paths[F.Id];
    Entry.resize(F.TypeParams.size());
    for (size_t I = 0; I < F.TypeParams.size(); ++I) {
      TypePath Path;
      if (F.FunTy && findTypePath(F.FunTy, F.TypeParams[I], Path)) {
        Entry[I].Found = true;
        Entry[I].Path = std::move(Path);
      } else if (F.IsClosure) {
        R.Violations.push_back({F.Id, F.TypeParams[I]});
      }
    }
  }
  return R;
}
