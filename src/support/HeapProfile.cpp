//===- support/HeapProfile.cpp --------------------------------------------===//

#include "support/HeapProfile.h"

#include "support/HeapGraph.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>

using namespace tfgc;

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':  Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\t': Out += "\\t"; break;
    default:
      if ((unsigned char)C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

void HeapProfiler::setSites(std::vector<AllocSiteDesc> S) {
  Sites = std::move(S);
  SiteAllocCounts.assign(Sites.size(), 0);
  CurSite.assign(Sites.size() + 1, Tally{});
  Life.assign(Sites.size() + 1, SiteLifetime{});
}

void HeapProfiler::recordEdge(Word Parent, uint32_t Field, Word Child) {
  Graph->recordEdge(Parent, Field, Child);
}

std::vector<uint64_t> HeapProfiler::allocCountsNow() const {
  std::vector<uint64_t> Counts = SiteAllocCounts;
  for (const AddrSite &E : AddrLog) // Allocated since the last collection.
    if (E.Site < Counts.size())
      ++Counts[E.Site];
  return Counts;
}

void HeapProfiler::resetCollectionTallies() {
  CurKind.fill(Tally{});
  CurSite.assign(Sites.size() + 1, Tally{});
  CurNursery = Tally{};
  CurTenured = Tally{};
  CurObjects = 0;
  CurWords = 0;
  CurAgeObs = 0;
  CurAgeHist.fill(0);
  Objects.clear();
}

void HeapProfiler::beginCollection(GcEventKind Kind,
                                   std::function<bool(Word)> IsTenuredFn) {
  if (!Enabled)
    return;
  assert(!InCollection && "nested collection");
  InCollection = true;
  Paused = false;
  CurEventKind = Kind;
  IsTenured = std::move(IsTenuredFn);
  MinorScope = Kind == GcEventKind::Minor && (bool)IsTenured;
  FirstRound = true;
  GraphActive = false;
  if (Graph) {
    Graph->configure(&Sites, &FuncNames, TaggedHeaders);
    GraphActive = Graph->beginCapture(Kind);
  }
  resetCollectionTallies();
  if (siteTracking()) {
    // Merge the allocation log into the survivor table. Addresses are
    // disjoint in the steady state (the mutator only bump-allocates past
    // the survivors, and dead blocks left the table at their collection),
    // but a last-wins merge keeps a reused address correct anyway: on a
    // tie std::merge emits the first range's entry first and the dedup
    // below keeps the last duplicate, so the newest source wins.
    //
    // A minor trace never visits a tenured object, so TenSet stays out of
    // the merge entirely — the per-minor cost is nursery-bounded instead
    // of growing with every promotion since the last major. Table is
    // sorted by construction and TenSet accumulates in promotion (bump)
    // order, so only the allocation log needs an actual sort.
    auto ByAddr = [](const AddrSite &A, const AddrSite &B) {
      return A.Addr < B.Addr;
    };
    // Fold the log into the cumulative per-site counts here, off the
    // mutator's allocation path.
    for (const AddrSite &E : AddrLog)
      ++SiteAllocCounts[E.Site];
    std::sort(AddrLog.begin(), AddrLog.end(), ByAddr);
    Lookup.clear();
    if (MinorScope) {
      Lookup.resize(Table.size() + AddrLog.size());
      std::merge(Table.begin(), Table.end(), AddrLog.begin(), AddrLog.end(),
                 Lookup.begin(), ByAddr);
    } else {
      if (!std::is_sorted(TenSet.begin(), TenSet.end(), ByAddr))
        std::sort(TenSet.begin(), TenSet.end(), ByAddr);
      MergeScratch.resize(Table.size() + TenSet.size());
      std::merge(Table.begin(), Table.end(), TenSet.begin(), TenSet.end(),
                 MergeScratch.begin(), ByAddr);
      TenSet.clear();
      Lookup.resize(MergeScratch.size() + AddrLog.size());
      std::merge(MergeScratch.begin(), MergeScratch.end(), AddrLog.begin(),
                 AddrLog.end(), Lookup.begin(), ByAddr);
    }
    AddrLog.clear();
    size_t Keep = 0;
    for (size_t I = 0; I < Lookup.size(); ++I) {
      if (I + 1 < Lookup.size() && Lookup[I + 1].Addr == Lookup[I].Addr)
        continue; // An older entry for the same address: drop it.
      Lookup[Keep++] = Lookup[I];
    }
    Lookup.resize(Keep);
    Consumed.assign(Lookup.size(), 0);
    NextTable.clear();
    buildLookupIndex();
  }
}

void HeapProfiler::buildLookupIndex() {
  DenseValid = false;
  if (Lookup.empty())
    return;
  constexpr uint64_t GapWords = (64 * 1024) / sizeof(Word);
  Regions.clear();
  uint64_t Slots = 0;
  size_t Start = 0;
  for (size_t I = 1; I <= Lookup.size(); ++I) {
    if (I < Lookup.size() &&
        (Lookup[I].Addr - Lookup[I - 1].Addr) / sizeof(Word) <= GapWords)
      continue;
    Word Base = Lookup[Start].Addr;
    Regions.push_back({Base, Lookup[I - 1].Addr, Slots});
    Slots += (Lookup[I - 1].Addr - Base) / sizeof(Word) + 1;
    Start = I;
  }
  if (Slots > DenseSlotCap || Regions.size() > MaxDenseRegions ||
      Lookup.size() >= (1u << 24)) {
    Regions.clear();
    return; // Pathologically sparse or fragmented: binary-search fallback.
  }
  if (++DenseEpoch == 256) {
    // Epoch wrap: stale slots from 255 rebuilds ago could alias.
    std::fill(Dense.begin(), Dense.end(), 0);
    DenseEpoch = 1;
  }
  if (Dense.size() < Slots)
    Dense.resize(Slots, 0);
  size_t R = 0;
  for (size_t I = 0; I < Lookup.size(); ++I) {
    while (Lookup[I].Addr > Regions[R].End)
      ++R;
    Dense[Regions[R].SlotOff +
          (Lookup[I].Addr - Regions[R].Base) / sizeof(Word)] =
        (DenseEpoch << 24) | (uint32_t)I;
  }
  DenseValid = true;
}

void HeapProfiler::beginTraceRound() {
  if (!Enabled || !InCollection)
    return;
  resetCollectionTallies();
  FirstRound = false;
  if (GraphActive)
    Graph->resetCapture();
  if (siteTracking()) {
    // The grow loop only retraces after a *complete* round (the free-
    // space check runs post-trace), so the outgoing Lookup's unconsumed
    // entries are genuinely dead — account them now; they will not be
    // seen again. Grow rounds are full-heap, so nothing is "kept".
    accountDeaths(nullptr);
    // The previous round's post-trace addresses are this round's
    // pre-trace addresses (the grow loop flips spaces and retraces).
    Lookup = std::move(NextTable);
    NextTable.clear();
    auto ByAddr = [](const AddrSite &A, const AddrSite &B) {
      return A.Addr < B.Addr;
    };
    if (!std::is_sorted(Lookup.begin(), Lookup.end(), ByAddr))
      std::sort(Lookup.begin(), Lookup.end(), ByAddr);
    Consumed.assign(Lookup.size(), 0);
    buildLookupIndex();
  }
}

size_t HeapProfiler::lookupIndex(Word OldRef) {
  size_t Idx;
  if (DenseValid) {
    // Regions are sorted and few; first region whose end covers the
    // address decides (a miss inside a gap holds no table entry).
    const DenseRegion *Hit = nullptr;
    for (const DenseRegion &R : Regions) {
      if (OldRef > R.End)
        continue;
      if (OldRef >= R.Base)
        Hit = &R;
      break;
    }
    if (!Hit)
      return SIZE_MAX;
    uint32_t E =
        Dense[Hit->SlotOff + (OldRef - Hit->Base) / sizeof(Word)];
    if ((E >> 24) != DenseEpoch)
      return SIZE_MAX;
    Idx = E & 0xffffffu;
    if (Lookup[Idx].Addr != OldRef)
      return SIZE_MAX; // Misaligned probe rounded onto a neighbor.
  } else {
    auto It = std::lower_bound(
        Lookup.begin(), Lookup.end(), OldRef,
        [](const AddrSite &A, Word W) { return A.Addr < W; });
    if (It == Lookup.end() || It->Addr != OldRef)
      return SIZE_MAX;
    Idx = (size_t)(It - Lookup.begin());
  }
  Consumed[Idx] = 1;
  return Idx;
}

void HeapProfiler::accountDeaths(const std::function<bool(Word)> &Keep) {
  if (!siteTracking())
    return;
  for (size_t I = 0; I < Lookup.size(); ++I) {
    if (Consumed[I])
      continue;
    if (Keep && Keep(Lookup[I].Addr))
      continue;
    uint32_t Site = Lookup[I].Site;
    SiteLifetime &L = Life[Site == UnknownSite ? Sites.size() : Site];
    ++L.DeathHist[ageBucket(Lookup[I].AgeBits & AgeMask)];
    ++L.Deaths;
  }
}

void HeapProfiler::recordVisit(Word OldRef, Word NewRef, CensusKind K,
                               uint64_t Words) {
  if (!Enabled || Paused || !InCollection)
    return;
  ++CurObjects;
  CurWords += Words;
  Tally &KT = CurKind[(size_t)K];
  ++KT.Objects;
  KT.Words += Words;
  ++VisitObjectsTotal;
  // During a major every survivor is evacuated into the tenured to-space,
  // whose addresses the from-space IsTenured predicate does not cover
  // until the region pointers flip at endMajor.
  const bool DestTenured =
      IsTenured &&
      (CurEventKind == GcEventKind::Major || IsTenured(NewRef));
  uint32_t Site = UnknownSite;
  if (siteTracking()) {
    size_t Idx = lookupIndex(OldRef);
    uint32_t AgeBits;
    bool WasTenured;
    if (Idx != SIZE_MAX) {
      Site = Lookup[Idx].Site;
      AgeBits = Lookup[Idx].AgeBits;
      WasTenured = (AgeBits & TenuredBit) != 0;
      if (FirstRound) {
        // The object survived one more collection. A grow-loop retrace
        // revisits the same live set, so only the first round ages; a
        // retrace's lookup table already holds the incremented age.
        uint32_t Age = AgeBits & AgeMask;
        if (Age < AgeMask)
          ++Age;
        AgeBits = (AgeBits & ~AgeMask) | Age;
        size_t LifeIdx = Site == UnknownSite ? Sites.size() : Site;
        for (size_t M = 0; M < SurvivalAges.size(); ++M)
          if (Age == SurvivalAges[M])
            ++Life[LifeIdx].Survived[M];
      }
    } else {
      // Never logged (allocation predates profiling): age unknown —
      // count it as having survived this one collection, and infer the
      // generation it came from by its pre-trace address.
      AgeBits = 1;
      WasTenured = IsTenured && IsTenured(OldRef);
      if (WasTenured)
        AgeBits |= TenuredBit;
    }
    size_t LifeIdx = Site == UnknownSite ? Sites.size() : Site;
    Tally &ST = CurSite[LifeIdx];
    ++ST.Objects;
    ST.Words += Words;
    ++CurAgeObs;
    ++CurAgeHist[ageBucket(AgeBits & AgeMask)];
    if (DestTenured) {
      if (!WasTenured && FirstRound) {
        ++Life[LifeIdx].PromotedObjects;
        Life[LifeIdx].PromotedWords += Words;
      }
      AgeBits |= TenuredBit;
    }
    NextTable.push_back({NewRef, Site, AgeBits});
  }
  if (IsTenured) {
    Tally &GT = DestTenured ? CurTenured : CurNursery;
    ++GT.Objects;
    GT.Words += Words;
  }
  if (wantsRetention())
    Objects.push_back({NewRef, Site, K, Words});
  if (GraphActive)
    Graph->recordNode(NewRef, Site == UnknownSite ? (uint32_t)Sites.size()
                                                  : Site,
                      K, Words);
}

void HeapProfiler::finishCollection(
    uint64_t CoveredBytes, const std::function<bool(Word)> &KeepUnvisited,
    std::vector<HeapRoot> Roots) {
  if (!Enabled || !InCollection)
    return;
  InCollection = false;
  Paused = false;

  if (siteTracking()) {
    // Unconsumed entries that nothing keeps were live last cycle and
    // went unvisited by this (full-coverage-for-them) trace: they died.
    // Their stored age — not incremented — is the age at death.
    accountDeaths(KeepUnvisited);
    // Rebuild the table for the next cycle: everything the trace visited
    // (at its new address) plus the unvisited entries that survive a
    // partial-coverage collection (tenured objects during a minor).
    if (KeepUnvisited)
      for (size_t I = 0; I < Lookup.size(); ++I)
        if (!Consumed[I] && KeepUnvisited(Lookup[I].Addr))
          NextTable.push_back(Lookup[I]);
    if (IsTenured) {
      // Route tenured entries (promotions, and after a major the whole
      // live set) to TenSet so they stop costing the minors anything.
      size_t Keep = 0;
      for (const AddrSite &E : NextTable) {
        if (IsTenured(E.Addr))
          TenSet.push_back(E);
        else
          NextTable[Keep++] = E;
      }
      NextTable.resize(Keep);
    }
    // Visit order follows bump allocation of the new addresses, so the
    // rebuilt table is usually already sorted.
    auto ByAddr = [](const AddrSite &A, const AddrSite &B) {
      return A.Addr < B.Addr;
    };
    if (!std::is_sorted(NextTable.begin(), NextTable.end(), ByAddr))
      std::sort(NextTable.begin(), NextTable.end(), ByAddr);
    Table = std::move(NextTable);
    NextTable.clear();
    Lookup.clear();
    Consumed.clear();
  }

  Snap.Valid = true;
  Snap.Seq = Collections++;
  Snap.Kind = CurEventKind;
  Snap.CoveredBytes = CoveredBytes;
  Snap.Objects = CurObjects;
  Snap.Words = CurWords;
  Snap.ByKind = CurKind;
  Snap.BySite = siteTracking() ? CurSite : std::vector<Tally>{};
  Snap.HasGenSplit = (bool)IsTenured;
  Snap.Nursery = CurNursery;
  Snap.Tenured = CurTenured;
  Snap.Retainers.clear();
  Snap.AgeObservations = CurAgeObs;
  Snap.AgeHist = CurAgeHist;
  // A minor collection's object list covers the young generation only, so
  // dominator math over it would misattribute retention; retention reports
  // ride full/major collections.
  Snap.RetainersComputed =
      wantsRetention() && CurEventKind != GcEventKind::Minor;
  if (Snap.RetainersComputed)
    computeRetention(Roots);
  if (GraphActive) {
    Graph->finalizeCapture(Snap.Seq, CurEventKind, CoveredBytes, Roots,
                           CurKind, Life, allocCountsNow());
    GraphActive = false;
  }
  Objects.clear();
  IsTenured = nullptr;
}

void HeapProfiler::computeRetention(const std::vector<HeapRoot> &Roots) {
  const size_t N = Objects.size();
  std::sort(Objects.begin(), Objects.end(),
            [](const ObjRec &A, const ObjRec &B) { return A.Addr < B.Addr; });
  auto Find = [&](Word W) -> int {
    auto It = std::lower_bound(
        Objects.begin(), Objects.end(), W,
        [](const ObjRec &O, Word V) { return O.Addr < V; });
    if (It == Objects.end() || It->Addr != W)
      return -1;
    return (int)(It - Objects.begin());
  };

  // Reference graph: a payload word that exactly matches a recorded live
  // address is an edge (under the tagged model the pointer tag filters
  // candidates first; tag-free is conservative — an unboxed value whose
  // bits collide with a live address adds a spurious edge, which can only
  // understate retained sizes by merging dominators, never crash).
  const uint32_t RootN = (uint32_t)N;
  std::vector<std::vector<uint32_t>> Succ(N + 1);
  std::vector<std::string> RootLabel(N);
  for (const HeapRoot &R : Roots) {
    if (TaggedHeaders && !isTaggedPointer(R.Value))
      continue;
    int J = Find(R.Value);
    if (J < 0)
      continue;
    Succ[RootN].push_back((uint32_t)J);
    if (RootLabel[J].empty()) {
      std::string Fn = R.Func < FuncNames.size()
                           ? FuncNames[R.Func]
                           : "fn" + std::to_string(R.Func);
      RootLabel[J] = Fn + ":slot" + std::to_string(R.Slot);
    }
  }
  for (size_t I = 0; I < N; ++I) {
    const ObjRec &O = Objects[I];
    uint64_t PayloadWords = O.Words - (TaggedHeaders ? 1 : 0);
    const Word *Pl = reinterpret_cast<const Word *>(O.Addr);
    for (uint64_t K = 0; K < PayloadWords; ++K) {
      Word W = Pl[K];
      if (TaggedHeaders && !isTaggedPointer(W))
        continue;
      if (W == O.Addr)
        continue;
      int J = Find(W);
      if (J >= 0)
        Succ[I].push_back((uint32_t)J);
    }
  }

  // Reverse postorder from the virtual root (unreachable objects — cycles
  // kept alive only by each other would have died — cannot occur here; a
  // conservatively-unmatched root just leaves its subgraph out of the
  // report).
  std::vector<int> RpoNum(N + 1, -1);
  std::vector<uint32_t> Order;
  {
    std::vector<uint32_t> Post;
    std::vector<std::pair<uint32_t, size_t>> Stack;
    std::vector<uint8_t> Visited(N + 1, 0);
    Stack.push_back({RootN, 0});
    Visited[RootN] = 1;
    while (!Stack.empty()) {
      auto &[V, Ei] = Stack.back();
      if (Ei < Succ[V].size()) {
        uint32_t W = Succ[V][Ei++];
        if (!Visited[W]) {
          Visited[W] = 1;
          Stack.push_back({W, 0});
        }
      } else {
        Post.push_back(V);
        Stack.pop_back();
      }
    }
    Order.assign(Post.rbegin(), Post.rend());
    for (size_t I = 0; I < Order.size(); ++I)
      RpoNum[Order[I]] = (int)I;
  }
  std::vector<std::vector<uint32_t>> Pred(N + 1);
  for (uint32_t V : Order)
    for (uint32_t W : Succ[V])
      if (RpoNum[W] >= 0)
        Pred[W].push_back(V);

  // Cooper-Harvey-Kennedy iterative dominators over the RPO.
  std::vector<int> Idom(N + 1, -1);
  Idom[RootN] = (int)RootN;
  auto Intersect = [&](int A, int B) {
    while (A != B) {
      while (RpoNum[A] > RpoNum[B])
        A = Idom[A];
      while (RpoNum[B] > RpoNum[A])
        B = Idom[B];
    }
    return A;
  };
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (size_t I = 1; I < Order.size(); ++I) {
      uint32_t V = Order[I];
      int NewIdom = -1;
      for (uint32_t P : Pred[V]) {
        if (Idom[P] == -1)
          continue;
        NewIdom = NewIdom == -1 ? (int)P : Intersect((int)P, NewIdom);
      }
      if (NewIdom != -1 && Idom[V] != NewIdom) {
        Idom[V] = NewIdom;
        Changed = true;
      }
    }
  }

  // Retained size: own bytes plus everything in the dominator subtree.
  // Reverse RPO visits children before their idom (idom's RPO number is
  // always smaller), so one bottom-up pass accumulates exactly.
  std::vector<uint64_t> Retained(N + 1, 0);
  for (size_t I = 0; I < N; ++I)
    if (RpoNum[I] >= 0)
      Retained[I] = Objects[I].Words * sizeof(Word);
  for (size_t I = Order.size(); I-- > 1;) {
    uint32_t V = Order[I];
    if (Idom[V] >= 0)
      Retained[(size_t)Idom[V]] += Retained[V];
  }

  // BFS parents give each reported retainer one sample root path.
  std::vector<int> Parent(N + 1, -1);
  {
    std::vector<uint32_t> Queue{RootN};
    std::vector<uint8_t> Seen(N + 1, 0);
    Seen[RootN] = 1;
    for (size_t Qi = 0; Qi < Queue.size(); ++Qi) {
      uint32_t V = Queue[Qi];
      for (uint32_t W : Succ[V])
        if (!Seen[W]) {
          Seen[W] = 1;
          Parent[W] = (int)V;
          Queue.push_back(W);
        }
    }
  }
  auto Descr = [&](uint32_t V) {
    const ObjRec &O = Objects[V];
    std::string S = censusKindName(O.Kind);
    if (O.Site != UnknownSite && O.Site < Sites.size()) {
      const AllocSiteDesc &D = Sites[O.Site];
      S += "@";
      S += D.Func;
      if (D.Line)
        S += ":" + std::to_string(D.Line);
    }
    return S;
  };

  std::vector<uint32_t> Ranked;
  for (uint32_t V = 0; V < (uint32_t)N; ++V)
    if (RpoNum[V] >= 0)
      Ranked.push_back(V);
  std::sort(Ranked.begin(), Ranked.end(), [&](uint32_t A, uint32_t B) {
    if (Retained[A] != Retained[B])
      return Retained[A] > Retained[B];
    return RpoNum[A] < RpoNum[B];
  });
  if (Ranked.size() > TopRetainers)
    Ranked.resize(TopRetainers);

  for (uint32_t V : Ranked) {
    RetainerInfo R;
    R.Addr = Objects[V].Addr;
    R.Site = Objects[V].Site;
    R.Kind = Objects[V].Kind;
    R.SelfBytes = Objects[V].Words * sizeof(Word);
    R.RetainedBytes = Retained[V];
    // Climb the BFS tree to the root; cap the sample path so a deep list
    // spine reports its head, not a thousand hops.
    std::vector<uint32_t> Chain;
    for (int C = (int)V; C != (int)RootN && C >= 0 && Chain.size() < 64;
         C = Parent[C])
      Chain.push_back((uint32_t)C);
    if (!Chain.empty() && !RootLabel[Chain.back()].empty())
      R.Path.push_back(RootLabel[Chain.back()]);
    size_t Shown = 0;
    for (size_t I = Chain.size(); I-- > 0 && Shown < 12; ++Shown)
      R.Path.push_back(Descr(Chain[I]));
    Snap.Retainers.push_back(std::move(R));
  }
}

void HeapProfiler::writeSnapshotJson(std::ostream &OS) const {
  OS << "{\n  \"schema\": 1,\n  \"tool\": \"tfgc-heap-profile\",\n";
  OS << "  \"label\": \"" << jsonEscape(Label) << "\",\n";
  OS << "  \"valid\": " << (Snap.Valid ? "true" : "false") << ",\n";
  OS << "  \"site_tracking\": " << (siteTracking() ? "true" : "false")
     << ",\n";
  OS << "  \"collection\": {\"seq\": " << Snap.Seq << ", \"kind\": \""
     << gcEventKindName(Snap.Kind) << "\"},\n";
  OS << "  \"used_bytes\": " << Snap.CoveredBytes << ",\n";
  OS << "  \"objects\": " << Snap.Objects << ",\n";
  OS << "  \"bytes\": " << Snap.Words * sizeof(Word) << ",\n";

  OS << "  \"by_kind\": [";
  bool First = true;
  for (size_t I = 0; I < NumCensusKinds; ++I) {
    const Tally &T = Snap.ByKind[I];
    if (!T.Objects)
      continue;
    OS << (First ? "" : ",") << "\n    {\"kind\": \""
       << censusKindName((CensusKind)I) << "\", \"objects\": " << T.Objects
       << ", \"bytes\": " << T.Words * sizeof(Word) << "}";
    First = false;
  }
  OS << (First ? "]" : "\n  ]") << ",\n";

  auto SiteFields = [&](uint32_t Id) {
    const AllocSiteDesc &D = Sites[Id];
    OS << "\"site\": " << Id << ", \"func\": \"" << jsonEscape(D.Func)
       << "\", \"line\": " << D.Line << ", \"col\": " << D.Col
       << ", \"type\": \"" << jsonEscape(D.TypeStr) << "\"";
  };

  OS << "  \"by_site\": [";
  First = true;
  for (size_t I = 0; I < Snap.BySite.size(); ++I) {
    const Tally &T = Snap.BySite[I];
    if (!T.Objects)
      continue;
    OS << (First ? "" : ",") << "\n    {";
    if (I < Sites.size())
      SiteFields((uint32_t)I);
    else
      OS << "\"site\": -1, \"func\": \"<unknown>\", \"line\": 0, "
            "\"col\": 0, \"type\": \"\"";
    OS << ", \"objects\": " << T.Objects
       << ", \"bytes\": " << T.Words * sizeof(Word) << "}";
    First = false;
  }
  OS << (First ? "]" : "\n  ]") << ",\n";

  if (Snap.HasGenSplit) {
    OS << "  \"gen\": {\"nursery_objects\": " << Snap.Nursery.Objects
       << ", \"nursery_bytes\": " << Snap.Nursery.Words * sizeof(Word)
       << ", \"tenured_objects\": " << Snap.Tenured.Objects
       << ", \"tenured_bytes\": " << Snap.Tenured.Words * sizeof(Word)
       << "},\n";
  }

  if (siteTracking()) {
    OS << "  \"age_observations\": " << Snap.AgeObservations << ",\n";
    OS << "  \"age_hist\": [";
    for (size_t I = 0; I < Snap.AgeHist.size(); ++I)
      OS << (I ? ", " : "") << Snap.AgeHist[I];
    OS << "],\n";
    OS << "  \"lifetime\": [";
    First = true;
    for (size_t I = 0; I < Life.size(); ++I) {
      const SiteLifetime &L = Life[I];
      bool Any = L.Deaths || L.PromotedObjects;
      for (uint64_t S : L.Survived)
        Any = Any || S;
      if (!Any)
        continue;
      OS << (First ? "" : ",") << "\n    {\"site\": "
         << (I < Sites.size() ? (int64_t)I : -1) << ", \"survived\": [";
      for (size_t M = 0; M < L.Survived.size(); ++M)
        OS << (M ? ", " : "") << L.Survived[M];
      OS << "], \"deaths\": " << L.Deaths << ", \"death_hist\": [";
      for (size_t M = 0; M < L.DeathHist.size(); ++M)
        OS << (M ? ", " : "") << L.DeathHist[M];
      OS << "], \"promoted_objects\": " << L.PromotedObjects
         << ", \"promoted_words\": " << L.PromotedWords << "}";
      First = false;
    }
    OS << (First ? "]" : "\n  ]") << ",\n";
  }
  OS << "  \"alloc_total\": " << AllocTotal << ",\n";
  OS << "  \"alloc_sites\": [";
  First = true;
  std::vector<uint64_t> Counts = allocCountsNow();
  for (size_t I = 0; I < Counts.size(); ++I) {
    if (!Counts[I])
      continue;
    OS << (First ? "" : ",") << "\n    {";
    SiteFields((uint32_t)I);
    OS << ", \"count\": " << Counts[I] << "}";
    First = false;
  }
  OS << (First ? "]" : "\n  ]");

  if (Snap.RetainersComputed) {
    OS << ",\n  \"retainers\": [";
    First = true;
    for (const RetainerInfo &R : Snap.Retainers) {
      OS << (First ? "" : ",") << "\n    {\"addr\": \"0x" << std::hex
         << R.Addr << std::dec << "\", \"kind\": \""
         << censusKindName(R.Kind) << "\", \"site\": "
         << (R.Site == UnknownSite ? -1 : (int64_t)R.Site)
         << ", \"self_bytes\": " << R.SelfBytes
         << ", \"retained_bytes\": " << R.RetainedBytes << ", \"path\": [";
      for (size_t I = 0; I < R.Path.size(); ++I)
        OS << (I ? ", " : "") << '"' << jsonEscape(R.Path[I]) << '"';
      OS << "]}";
      First = false;
    }
    OS << (First ? "]" : "\n  ]");
  }
  OS << "\n}\n";
}
