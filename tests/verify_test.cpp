//===- tests/verify_test.cpp - IR verifier --------------------------------===//

#include "TestUtil.h"

#include "ir/Verify.h"

using namespace tfgc;
using namespace tfgc::test;

namespace {

TEST(Verify, AcceptsEveryWorkload) {
  // The driver already verifies; double-check explicitly on a rich program.
  auto C = compile(
      "datatype shape = Point | Circle of float | Rect of float * float;\n"
      "fun area (s : shape) : float = case s of Point => 0.0 "
      "| Circle r => r *. r | Rect(w, h) => w *. h;\n"
      "fun map f xs = case xs of Nil => Nil | Cons(x, r) => "
      "Cons(f x, map f r);\n"
      "map (fn s => area s) [Point, Circle 1.0]");
  ASSERT_TRUE(C.P) << C.Error;
  std::string Err;
  EXPECT_TRUE(verifyIr(C.P->Prog, &Err)) << Err;
}

/// Builds a minimal single-function program by hand.
struct ManualIr {
  TypeContext Ctx;
  IrProgram P;

  ManualIr() {
    IrFunction Main;
    Main.Id = 0;
    Main.Name = "main";
    Main.NumParams = 0;
    Main.SlotTypes = {Ctx.intTy()};
    Main.FunTy = Ctx.makeFun({}, Ctx.intTy());
    Instr Load;
    Load.Op = Opcode::LoadInt;
    Load.Dst = 0;
    Load.IntImm = 1;
    Instr Ret;
    Ret.Op = Opcode::Return;
    Ret.Srcs = {0};
    Main.Code = {Load, Ret};
    P.Functions.push_back(std::move(Main));
    P.MainId = 0;
    P.Types = &Ctx;
  }
};

TEST(Verify, AcceptsMinimalProgram) {
  ManualIr M;
  std::string Err;
  EXPECT_TRUE(verifyIr(M.P, &Err)) << Err;
}

TEST(Verify, RejectsSlotOutOfRange) {
  ManualIr M;
  M.P.Functions[0].Code[0].Dst = 7;
  std::string Err;
  EXPECT_FALSE(verifyIr(M.P, &Err));
  EXPECT_NE(Err.find("destination slot out of range"), std::string::npos);
}

TEST(Verify, RejectsFallthrough) {
  ManualIr M;
  M.P.Functions[0].Code.pop_back(); // Drop the Return.
  std::string Err;
  EXPECT_FALSE(verifyIr(M.P, &Err));
  EXPECT_NE(Err.find("fall off"), std::string::npos);
}

TEST(Verify, RejectsUnknownLabel) {
  ManualIr M;
  Instr J;
  J.Op = Opcode::Jump;
  J.Label = 3; // No labels exist.
  M.P.Functions[0].Code.insert(M.P.Functions[0].Code.begin(), J);
  std::string Err;
  EXPECT_FALSE(verifyIr(M.P, &Err));
  EXPECT_NE(Err.find("unknown label"), std::string::npos);
}

TEST(Verify, RejectsBadSiteBackReference) {
  ManualIr M;
  CallSiteInfo S;
  S.Id = 0;
  S.Caller = 0;
  S.InstrIdx = 1; // Points at Return, but instr 0 claims it.
  S.Kind = SiteKind::Alloc;
  M.P.Sites.push_back(S);
  M.P.Functions[0].Code[0].Site = 0;
  std::string Err;
  EXPECT_FALSE(verifyIr(M.P, &Err));
  EXPECT_NE(Err.find("back-reference"), std::string::npos);
}

TEST(Verify, RejectsArityMismatchedCall) {
  ManualIr M;
  // Add a callee taking one parameter, then call it with zero.
  IrFunction Callee;
  Callee.Id = 1;
  Callee.Name = "callee";
  Callee.NumParams = 1;
  Callee.SlotTypes = {M.Ctx.intTy()};
  Callee.FunTy = M.Ctx.makeFun({M.Ctx.intTy()}, M.Ctx.intTy());
  Instr Ret;
  Ret.Op = Opcode::Return;
  Ret.Srcs = {0};
  Callee.Code = {Ret};
  M.P.Functions.push_back(std::move(Callee));

  Instr Call;
  Call.Op = Opcode::Call;
  Call.Dst = 0;
  Call.Callee = 1;
  M.P.Functions[0].Code.insert(M.P.Functions[0].Code.begin(), Call);
  std::string Err;
  EXPECT_FALSE(verifyIr(M.P, &Err));
  EXPECT_NE(Err.find("arity"), std::string::npos);
}

TEST(Verify, RejectsClosureMain) {
  ManualIr M;
  M.P.Functions[0].IsClosure = true;
  std::string Err;
  EXPECT_FALSE(verifyIr(M.P, &Err));
}

} // namespace
