# Empty compiler generated dependencies file for polymorphic_closures.
# This may be replaced when dependencies are built.
