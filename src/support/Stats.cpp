//===- support/Stats.cpp --------------------------------------------------===//

#include "support/Stats.h"

#include <sstream>

using namespace tfgc;

std::string Stats::render() const {
  std::ostringstream OS;
  for (const auto &[Name, Value] : Counters)
    OS << Name << " = " << Value << '\n';
  return OS.str();
}
