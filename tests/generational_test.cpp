//===- tests/generational_test.cpp - Generational collection --------------===//
///
/// The generational algorithm's soundness hinges on the write barrier and
/// the remembered set: a tenured object mutated to point at a nursery
/// object must keep that object alive across minor collections even
/// though tenured objects are never rescanned. These tests drive
/// mutation-heavy workloads across every strategy and algorithm, check
/// the remembered-set bookkeeping (dedup, pruning), the closure
/// cycle-patching path, the young-object census invariant, and the
/// minor/major telemetry split.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "workloads/Programs.h"

#include <gtest/gtest.h>

namespace {

using namespace tfgc;
using namespace tfgc::test;

/// Mutually recursive local closures: lowering emits SetClosureField to
/// patch the capture cycle after both closures are allocated. Allocation
/// churn keeps collections happening while the cycle is live.
const char *CycleProgram = R"(
fun build (n : int) : int list =
  if n = 0 then [] else n :: build (n - 1);

fun len (xs : int list) : int =
  case xs of [] => 0 | _ :: t => 1 + len t;

fun mk (k : int) : int -> int =
  let fun even (n : int) : int =
        if n = 0 then k + len (build 5) else odd (n - 1)
      and odd (n : int) : int = if n = 0 then 0 - k else even (n - 1)
  in even end;

val f = mk 100;
val g = mk 7;
f 10 + g 9 + len (build 200)
)";

/// Runs \p Source under Generational with after-GC graph verification on,
/// returning the rendered value; \p St receives the run's counters.
std::string runGenerationalVerified(const std::string &Source, GcStrategy S,
                                    size_t HeapBytes, size_t NurseryBytes,
                                    bool Stress, Stats &St) {
  Compiled C = compile(Source);
  EXPECT_TRUE(C.P) << C.Error;
  if (!C.P)
    return "";
  std::string Err;
  std::unique_ptr<Collector> Col =
      C.P->makeCollector(S, GcAlgorithm::Generational, HeapBytes, St, &Err,
                         NurseryBytes);
  EXPECT_TRUE(Col) << Err;
  if (!Col)
    return "";
  Col->setVerifyAfterGc(true);
  Vm M(C.P->Prog, C.P->Image, *C.P->Types, *Col,
       defaultVmOptions(S, Stress));
  RunResult R = M.run();
  EXPECT_TRUE(R.Ok) << R.Error << " under " << gcStrategyName(S);
  return R.Value;
}

TEST(Generational, MutationWorkloadsAgreeAcrossStrategiesAndAlgorithms) {
  const std::string Workloads[] = {
      workloads::refCells(400),
      workloads::listChurn(60, 16),
      workloads::higherOrder(40),
  };
  for (const std::string &Src : Workloads) {
    std::string Expected;
    for (GcStrategy S : AllStrategies) {
      for (GcAlgorithm A : AllAlgorithms) {
        ExecResult R = execProgram(Src, S, A, 1 << 14, /*GcStress=*/true);
        ASSERT_TRUE(R.CompileOk) << R.CompileError;
        ASSERT_TRUE(R.Run.Ok) << R.Run.Error << " under "
                              << gcStrategyName(S) << "/"
                              << gcAlgorithmName(A);
        if (Expected.empty())
          Expected = R.Run.Value;
        else
          EXPECT_EQ(Expected, R.Run.Value)
              << gcStrategyName(S) << "/" << gcAlgorithmName(A);
      }
    }
  }
}

TEST(Generational, OldToYoungRefsSurviveMinorsUnderVerify) {
  // refCells mutates a long-lived ref cell (tenured after promotion) to
  // point at freshly consed nursery lists, and patches a ref cycle
  // through datatype nodes — the old→young edges only the remembered set
  // keeps alive. The verify pass retraces the full graph after every
  // collection and counts escaped references.
  for (GcStrategy S : AllStrategies) {
    Stats St;
    std::string V = runGenerationalVerified(workloads::refCells(400), S,
                                            1 << 15, 1 << 12,
                                            /*Stress=*/true, St);
    EXPECT_FALSE(V.empty());
    EXPECT_GT(St.get(StatId::GcVerifyPasses), 0u);
    EXPECT_EQ(St.get(StatId::GcVerifyViolations), 0u)
        << "under " << gcStrategyName(S);
    EXPECT_GT(St.get(StatId::GcMinorCollections), 0u);
    EXPECT_GT(St.get(StatId::GcBarrierOps), 0u);
  }
}

TEST(Generational, ClosureCyclePatchSurvivesMinorCollections) {
  std::string Expected;
  for (GcStrategy S : AllStrategies) {
    Stats St;
    std::string V = runGenerationalVerified(CycleProgram, S, 1 << 14,
                                            1 << 11, /*Stress=*/true, St);
    EXPECT_EQ(St.get(StatId::GcVerifyViolations), 0u);
    EXPECT_GT(St.get(StatId::GcMinorCollections), 0u);
    if (Expected.empty())
      Expected = V;
    else
      EXPECT_EQ(Expected, V) << "strategy " << gcStrategyName(S);
  }
  // The same program agrees with the non-generational algorithms.
  EXPECT_EQ(Expected, runValue(CycleProgram, GcStrategy::CompiledTagFree,
                               GcAlgorithm::Copying, 1 << 14, true));
}

TEST(Generational, RemsetDeduplicatesRepeatedStores) {
  // refCells stores into the same ref cell thousands of times between
  // collections; the sequential store buffer must record each tenured
  // slot once per collection cycle, not once per store.
  ExecResult R = execProgram(workloads::refCells(2000),
                             GcStrategy::CompiledTagFree,
                             GcAlgorithm::Generational, 1 << 16);
  ASSERT_TRUE(R.Run.Ok) << R.Run.Error;
  uint64_t Barriers = R.St.get(StatId::GcBarrierOps);
  uint64_t Entries = R.St.get(StatId::GcRemsetEntries);
  EXPECT_GT(Barriers, 1000u);
  EXPECT_GT(Entries, 0u);
  // Dedup: orders of magnitude fewer entries than barrier executions.
  EXPECT_LT(Entries * 10, Barriers);
}

TEST(Generational, CensusInvariantHolds) {
  // allocated == promoted + young-dead + nursery-resident, at any flush
  // point, for every strategy.
  const std::string Workloads[] = {
      workloads::refCells(1500),
      workloads::listChurn(100, 24),
  };
  for (const std::string &Src : Workloads) {
    for (GcStrategy S : AllStrategies) {
      ExecResult R =
          execProgram(Src, S, GcAlgorithm::Generational, 1 << 15);
      ASSERT_TRUE(R.Run.Ok) << R.Run.Error;
      uint64_t Allocated = R.St.get(StatId::HeapObjectsAllocated);
      uint64_t Promoted = R.St.get("gc.promoted_objects");
      uint64_t Dead = R.St.get("gc.young_dead_objects");
      uint64_t Resident = R.St.get("gc.nursery_resident_objects");
      EXPECT_EQ(Allocated, Promoted + Dead + Resident)
          << gcStrategyName(S) << ": " << Promoted << " promoted + " << Dead
          << " dead + " << Resident << " resident";
    }
  }
}

TEST(Generational, MinorAndMajorCollectionsBothHappen) {
  // binary_trees keeps a live tree per depth while churning temporaries:
  // small nursery ⇒ many minors; promotions eventually fill tenured ⇒
  // majors. Stats and telemetry must agree on the per-kind counts.
  Compiled C = compile(workloads::binaryTrees(7, 6));
  ASSERT_TRUE(C.P) << C.Error;
  Stats St;
  std::string Err;
  std::unique_ptr<Collector> Col = C.P->makeCollector(
      GcStrategy::CompiledTagFree, GcAlgorithm::Generational, 1 << 14, St,
      &Err, 1 << 10);
  ASSERT_TRUE(Col) << Err;
  Vm M(C.P->Prog, C.P->Image, *C.P->Types, *Col,
       defaultVmOptions(GcStrategy::CompiledTagFree));
  RunResult R = M.run();
  ASSERT_TRUE(R.Ok) << R.Error;

  uint64_t Minors = St.get(StatId::GcMinorCollections);
  uint64_t Majors = St.get(StatId::GcMajorCollections);
  EXPECT_GT(Minors, 0u);
  EXPECT_GT(Majors, 0u);
  EXPECT_EQ(Minors + Majors, St.get(StatId::GcCollections));

  const Telemetry &Tel = Col->telemetry();
  EXPECT_EQ(Minors, Tel.collections(GcEventKind::Minor));
  EXPECT_EQ(Majors, Tel.collections(GcEventKind::Major));
  EXPECT_EQ(0u, Tel.collections(GcEventKind::Full));
  EXPECT_EQ(Minors, Tel.pauseHistogram(GcEventKind::Minor).count());
  EXPECT_EQ(Majors, Tel.pauseHistogram(GcEventKind::Major).count());
  EXPECT_GT(St.get(StatId::GcPromotedWords), 0u);
}

TEST(Generational, NurseryBytesOptionBoundsMinorWork) {
  // A larger nursery means fewer minor collections for the same
  // allocation volume.
  ExecResult Small =
      execProgram(workloads::listChurn(80, 20), GcStrategy::CompiledTagFree,
                  GcAlgorithm::Generational, 1 << 17, false, {}, 1 << 11);
  ExecResult Large =
      execProgram(workloads::listChurn(80, 20), GcStrategy::CompiledTagFree,
                  GcAlgorithm::Generational, 1 << 17, false, {}, 1 << 14);
  ASSERT_TRUE(Small.Run.Ok) << Small.Run.Error;
  ASSERT_TRUE(Large.Run.Ok) << Large.Run.Error;
  EXPECT_EQ(Small.Run.Value, Large.Run.Value);
  EXPECT_GT(Small.St.get(StatId::GcMinorCollections),
            Large.St.get(StatId::GcMinorCollections));
}

} // namespace
