//===- core/TaggedCollector.cpp -------------------------------------------===//

#include "core/TaggedCollector.h"

#include <vector>

using namespace tfgc;

void TaggedCollector::traceRoots(RootSet &Roots, Space &Sp) {
  std::vector<Word> ScanList;

  auto TraceWord = [&](Word W) -> Word {
    if (!isTaggedPointer(W))
      return W;
    Word NewRef;
    if (Sp.alreadyVisited(W, NewRef))
      return NewRef;
    const Word *Old = reinterpret_cast<const Word *>(W);
    Word Header = Old[-1];
    NewRef = Sp.visitNew(W, headerSize(Header));
    St.add(StatId::GcObjectsVisited);
    St.add(StatId::GcWordsVisited, headerSize(Header) + 1);
    Tel.census(headerKind(Header) == ObjKind::Scan ? CensusKind::TaggedScan
                                                   : CensusKind::Raw,
               headerSize(Header) + 1);
    if (headerKind(Header) == ObjKind::Scan)
      ScanList.push_back(NewRef);
    return NewRef;
  };

  for (TaskStack *Stack : Roots.Stacks) {
    for (FrameInfo &Fr : Stack->Frames) {
      St.add(StatId::GcFramesTraced);
      Word *Slots = Stack->frameSlots(Fr);
      // No metadata: every slot of every frame is scanned.
      for (uint32_t I = 0; I < Fr.NumSlots; ++I) {
        St.add(StatId::GcSlotsTraced);
        Slots[I] = TraceWord(Slots[I]);
      }
    }
  }

  while (!ScanList.empty()) {
    Word Ref = ScanList.back();
    ScanList.pop_back();
    Word *Pl = Sp.payload(Ref);
    uint32_t Size = headerSize(Pl[-1]);
    for (uint32_t I = 0; I < Size; ++I)
      Pl[I] = TraceWord(Pl[I]);
  }
}
