//===- tests/exhaustiveness_test.cpp - Match exhaustiveness warnings -----===//

#include "TestUtil.h"

using namespace tfgc;
using namespace tfgc::test;

namespace {

/// Type checks and returns the rendered warnings (empty if none).
std::string warningsOf(const std::string &Source) {
  DiagnosticEngine Diags;
  Lexer Lex(Source, Diags);
  Parser P(Lex.tokenize(), Diags);
  std::optional<Program> Ast = P.parseProgram();
  EXPECT_TRUE(Ast.has_value()) << Diags.render();
  if (!Ast)
    return "<parse error>";
  TypeContext Ctx;
  TypeChecker Checker(Ctx, Diags, false);
  EXPECT_TRUE(Checker.check(*Ast).has_value()) << Diags.render();
  std::string Out;
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Severity == DiagSeverity::Warning)
      Out += D.Message + "\n";
  return Out;
}

TEST(Exhaustiveness, CompleteDatatypeMatchIsSilent) {
  EXPECT_EQ(warningsOf("case [1] of Nil => 0 | Cons(_, _) => 1"), "");
}

TEST(Exhaustiveness, CatchAllIsSilent) {
  EXPECT_EQ(warningsOf("case [1] of Cons(x, _) => x | _ => 0"), "");
  EXPECT_EQ(warningsOf("case 3 of 1 => 10 | n => n"), "");
}

TEST(Exhaustiveness, MissingCtorWarns) {
  std::string W = warningsOf("case [1] of Cons(x, _) => x");
  EXPECT_NE(W.find("non-exhaustive"), std::string::npos);
  EXPECT_NE(W.find("Nil"), std::string::npos);
}

TEST(Exhaustiveness, MissingCtorNamedExactly) {
  std::string Src =
      "datatype shape = Point | Circle of float | Rect of float * float;\n"
      "case Point of Point => 1 | Circle _ => 2";
  std::string W = warningsOf(Src);
  EXPECT_NE(W.find("Rect"), std::string::npos);
  EXPECT_EQ(W.find("Circle"), std::string::npos);
}

TEST(Exhaustiveness, BoolNeedsBothArms) {
  EXPECT_EQ(warningsOf("case 1 < 2 of true => 1 | false => 0"), "");
  std::string W = warningsOf("case 1 < 2 of true => 1");
  EXPECT_NE(W.find("false"), std::string::npos);
}

TEST(Exhaustiveness, IntLiteralsNeverCover) {
  std::string W = warningsOf("case 3 of 1 => 10 | 2 => 20");
  EXPECT_NE(W.find("catch-all"), std::string::npos);
}

TEST(Exhaustiveness, TupleOfVarsIsIrrefutable) {
  EXPECT_EQ(warningsOf("case (1, 2) of (a, b) => a + b"), "");
}

TEST(Exhaustiveness, NestedRefutableArgIsNotComplete) {
  // Cons(1, _) only covers part of Cons's space.
  std::string W = warningsOf("case [1] of Nil => 0 | Cons(1, _) => 1");
  EXPECT_NE(W.find("Cons"), std::string::npos);
}

TEST(Exhaustiveness, SingleCtorDatatypePatternIsIrrefutable) {
  std::string Src = "datatype box = B of int;\n"
                    "case B 3 of B n => n";
  EXPECT_EQ(warningsOf(Src), "");
}

TEST(Exhaustiveness, WarningsDoNotBlockExecution) {
  ExecResult R = execProgram("case [1, 2] of Cons(x, _) => x",
                             GcStrategy::CompiledTagFree);
  ASSERT_TRUE(R.Run.Ok) << R.CompileError << R.Run.Error;
  EXPECT_EQ(R.Run.Value, "1");
}

} // namespace
