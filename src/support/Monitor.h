//===- support/Monitor.h - Mutator-side observability -----------*- C++ -*-===//
///
/// \file
/// Always-available, off-by-default mutator observability. The paper's
/// claim is that tag-free collection costs the *mutator* nothing; the
/// telemetry layer (Telemetry.h) can only see the collector side of that
/// bargain. The Monitor watches the other side:
///
///  * **Sampling profiler.** The VM dispatch loop keeps a fuel counter
///    and calls recordSample() every samplePeriodSteps() instructions
///    (one decrement + one never-taken branch when no monitor is
///    attached — the same disabled-by-null discipline as the heap
///    profiler's alloc hook). Each sample attributes the current step to
///    its function, its caller (via the frame's dynamic link), and an
///    opcode class, yielding flat and caller-attributed profiles without
///    any per-call bookkeeping.
///
///  * **MMU tracker.** The Monitor registers as the Telemetry's event
///    sink, so every collection's (start, pause) span arrives on the
///    telemetry timebase; mutator intervals are accumulated explicitly
///    between spans. From the span list it computes Minimum Mutator
///    Utilization — the worst-case fraction of any wall-clock window the
///    mutator gets to run — at 1/10/100 ms windows, plus the overall
///    mutator/GC split. Because mutator and GC time are accumulated
///    independently, `mutator_ns + gc_ns ≈ wall_ns` is a real invariant:
///    a missed or double-counted span breaks it (tools/monitor_report.py
///    --check enforces >95% coverage).
///
///  * **Rate timeline + live streaming.** With a stream attached
///    (`--monitor-out=FILE`), sample points additionally emit
///    schema-versioned JSONL heartbeats every heartbeat period: the
///    current Stats snapshot, allocation/barrier/remset rates over the
///    elapsed bucket, MMU so far, and per-task step / world-stop-delay
///    numbers. A final summary record (MMU curves, flat and caller
///    profiles, opcode-class mix) is flushed through the same
///    abnormal-exit artifact path as the other diagnostics.
///
/// The support layer does not depend on the IR: function identity is a
/// plain index (names installed via setFunctionNames) and the VM maps
/// opcodes onto the coarse OpClass enum below.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_SUPPORT_MONITOR_H
#define TFGC_SUPPORT_MONITOR_H

#include "support/Stats.h"
#include "support/Telemetry.h"

#include <array>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

namespace tfgc {

class EpochAggregator;

/// Coarse instruction classes for sample attribution (the VM maps each
/// Opcode onto one of these; the support layer never sees the IR).
enum class OpClass : uint8_t {
  Load,       ///< Constants and register moves.
  Prim,       ///< Arithmetic/comparison primitives and print.
  Alloc,      ///< Heap-allocating instructions (tuple/data/closure/ref).
  HeapAccess, ///< Field/tag reads, ref load/store, closure patching.
  Branch,     ///< Jumps and conditional branches.
  Call,       ///< Calls (direct and indirect) and returns.
  Other,
  NumClasses
};
inline constexpr size_t NumOpClasses = (size_t)OpClass::NumClasses;
const char *opClassName(OpClass C);

/// Non-overlapping GC pause intervals plus the MMU query over them.
/// Separate from the Monitor so the window math is unit-testable on
/// synthetic span sequences.
class MmuTracker {
public:
  /// Appends a pause [StartNs, EndNs). Pauses must arrive in time order
  /// (collections are sequential); an overlapping start is clamped.
  void addPause(uint64_t StartNs, uint64_t EndNs);

  size_t pauses() const { return Starts.size(); }
  uint64_t gcNsTotal() const { return Prefix.empty() ? 0 : Prefix.back(); }

  /// Total GC time overlapping the half-open interval [T0, T1).
  uint64_t gcNsIn(uint64_t T0, uint64_t T1) const;

  /// Minimum mutator utilization: the minimum, over every window of
  /// WindowNs within [T0, T1), of the fraction of the window the mutator
  /// ran. When the whole interval is shorter than the window, the
  /// interval's overall utilization is returned. 1.0 with no pauses.
  double mmu(uint64_t WindowNs, uint64_t T0, uint64_t T1) const;

private:
  // Parallel arrays, sorted, non-overlapping. Prefix[i] is the total
  // duration of pauses [0, i) so any clipped range sum is O(log n).
  std::vector<uint64_t> Starts;
  std::vector<uint64_t> Ends;
  std::vector<uint64_t> Prefix;
};

struct MonitorOptions {
  /// VM steps between profiler samples.
  uint64_t SamplePeriodSteps = 512;
  /// Heartbeat period for the JSONL stream.
  uint64_t HeartbeatPeriodMs = 50;
};

/// The mutator-side monitor. Attach with Collector::setMonitor() *before*
/// constructing VMs (the VM caches the sample period at construction,
/// like the zero-frames flag).
class Monitor : public GcEventSink {
public:
  /// Caller index meaning "no caller" (the oldest frame).
  static constexpr uint32_t NoFunc = 0xffffffffu;
  static constexpr int StreamSchema = 1;

  using Options = MonitorOptions;

  /// Counters the VM hands over at each sample point (cheap reads there;
  /// the monitor derives per-bucket rates from consecutive snapshots).
  struct SampleCounters {
    uint64_t Steps = 0;         ///< This VM's step count.
    uint64_t AllocBytes = 0;    ///< Collector-wide bytes allocated.
    uint64_t BarrierOps = 0;    ///< Collector-wide write-barrier tests.
    uint64_t RemsetEntries = 0; ///< Remembered-set entries recorded.
  };

  explicit Monitor(Options O = {});

  // -- Wiring ---------------------------------------------------------------
  /// Adopts \p T's epoch as the timebase and registers as its event sink
  /// (Collector::setMonitor does this).
  void attachTelemetry(Telemetry *T);
  void setFunctionNames(std::vector<std::string> Names) {
    FuncNames = std::move(Names);
  }
  void setLabel(std::string L) { Label = std::move(L); }
  /// Stats registry snapshotted into heartbeats (not owned; may be null).
  void setStats(const Stats *S) { St = S; }
  /// Starts JSONL streaming: writes the header record immediately,
  /// heartbeats from sample points, and the summary record at finish().
  void setStream(std::ostream *OS);
  /// Attaches the epoch aggregator (not owned; may be null). With an
  /// aggregator, every heartbeat becomes a Heartbeat safepoint: the
  /// shards are folded into a new epoch *before* the record is built, and
  /// the rendered line is forwarded to the introspection server's
  /// /heartbeat — heartbeats fire even without a --monitor-out stream.
  void setAggregator(EpochAggregator *A) { Agg = A; }

  uint64_t samplePeriodSteps() const { return Opts.SamplePeriodSteps; }
  uint64_t heartbeatPeriodMs() const { return Opts.HeartbeatPeriodMs; }

  // -- Run lifecycle (driven by the VM) -------------------------------------
  /// First call stamps the run's start; later calls (other tasks) are
  /// no-ops.
  void beginRun();
  /// Accumulates the mutator interval since the last GC/endRun and stamps
  /// the run's end; safe to call once per task.
  void endRun();

  // -- Sample point (hot-ish: once per samplePeriodSteps VM steps) ----------
  void recordSample(uint32_t Func, uint32_t Caller, OpClass C,
                    uint32_t TaskIdx, const SampleCounters &SC);

  // -- Tasking --------------------------------------------------------------
  /// A task reached its GC safe point \p DelayNs after the world stop was
  /// requested.
  void recordTaskStopDelay(uint32_t TaskIdx, uint64_t DelayNs);
  /// Exact final step count for a task (recorded at counter flush;
  /// sample-time counts are only period-granular).
  void noteTaskSteps(uint32_t TaskIdx, uint64_t Steps);

  // -- GcEventSink ----------------------------------------------------------
  void onGcEvent(const GcEvent &E) override;

  // -- Inspection -----------------------------------------------------------
  uint64_t samples() const { return Samples; }
  uint64_t heartbeatsEmitted() const { return Heartbeats; }
  uint64_t collectionsSeen() const { return Collections; }
  uint64_t stepsObserved() const;
  uint64_t flatSamples(uint32_t Func) const {
    return Func < Flat.size() ? Flat[Func] : 0;
  }
  uint64_t opClassSamples(OpClass C) const { return ByClass[(size_t)C]; }
  uint64_t wallNs() const;
  uint64_t mutatorNs() const { return MutatorNsTotal; }
  uint64_t gcNs() const { return Mmu.gcNsTotal(); }
  /// mutator_ns / wall_ns (1.0 before any wall-clock has elapsed).
  double mutatorFraction() const;
  /// MMU over the run window so far.
  double mmu(uint64_t WindowNs) const;
  const MmuTracker &mmuTracker() const { return Mmu; }

  // -- Output ---------------------------------------------------------------
  /// Emits the final summary record and flushes the stream. Idempotent;
  /// called from the driver's artifact-flush path so abnormal exits keep
  /// the stream complete.
  void finish();
  /// Publishes mon.* counters (samples, MMU in ppm, mutator/GC split)
  /// into \p Out; Collector::publishTelemetryStats calls this.
  void publishStats(Stats &Out) const;
  /// Human-readable summary: mutator/GC split, MMU row, top-N functions.
  std::string renderSummary(size_t TopN = 10) const;

private:
  uint64_t nowNs() const;
  uint64_t runEndOrNow() const;
  /// Mutator time including the currently open interval at \p Now.
  uint64_t mutatorNsAt(uint64_t Now) const;
  void emitHeader();
  void emitHeartbeat(uint64_t Now, const SampleCounters &SC);
  void writeTasksJson(std::ostream &OS) const;
  const std::string &funcName(uint32_t Func) const;

  Options Opts;
  Telemetry *Tel = nullptr;
  const Stats *St = nullptr;
  EpochAggregator *Agg = nullptr;
  std::ostream *Stream = nullptr;
  std::vector<std::string> FuncNames;
  std::string Label;

  // Fallback epoch when no telemetry is attached (unit tests).
  std::chrono::steady_clock::time_point OwnEpoch;

  // Run window + mutator/GC interval accounting, all on the telemetry
  // epoch. LastResumeNs is the start of the currently open mutator
  // interval.
  static constexpr uint64_t NoTime = UINT64_MAX;
  uint64_t RunStartNs = NoTime;
  uint64_t RunEndNs = NoTime;
  uint64_t LastResumeNs = NoTime;
  uint64_t MutatorNsTotal = 0;
  uint64_t Collections = 0;
  MmuTracker Mmu;

  // Profile accumulators.
  uint64_t Samples = 0;
  std::vector<uint64_t> Flat;                      ///< Indexed by function.
  std::unordered_map<uint64_t, uint64_t> Edges;    ///< caller<<32 | callee.
  std::array<uint64_t, NumOpClasses> ByClass{};

  // Per-task cells (grown on first touch).
  struct TaskCell {
    uint64_t Steps = 0;
    uint64_t Samples = 0;
    LogHistogram StopDelay;
  };
  std::vector<TaskCell> Tasks;

  // Heartbeat state: previous bucket's counter snapshot for rates.
  uint64_t HeartbeatSeq = 0;
  uint64_t Heartbeats = 0;
  uint64_t LastHbNs = NoTime;
  SampleCounters LastHbCounters;
  uint64_t LastHbSamples = 0;
  bool Finished = false;
};

} // namespace tfgc

#endif // TFGC_SUPPORT_MONITOR_H
