//===- core/Tracer.cpp ----------------------------------------------------===//

#include "core/Tracer.h"

#include <cassert>

using namespace tfgc;

Word TagFreeTracer::traceCompiled(Word V, RoutineId R) {
  Word Result = V;
  Word *Patch = &Result;
  // Heap-graph bookkeeping for the tail-iteration loop: once Patch is
  // redirected into an object's payload, (PatchObj, PatchField) name the
  // slot it points at, so the deferred `*Patch = NewRef` writes can be
  // mirrored as graph edges. 0 = Patch still aims at the caller's slot
  // (a frame root or a field whose edge the caller records).
  Word PatchObj = 0;
  uint32_t PatchField = 0;
  for (;;) {
    const TypeRoutine &TR = CM->routine(R);
    switch (TR.F) {
    case TypeRoutine::Form::Leaf:
      *Patch = V; // Non-reference: no edge.
      return Result;
    case TypeRoutine::Form::FunValue:
      *Patch = traceClosureValue(V, nullptr, TR.FunStaticTy);
      if (EdgeRec)
        edge(PatchObj, PatchField, *Patch);
      return Result;
    case TypeRoutine::Form::Record:
    case TypeRoutine::Form::RefCell: {
      if (V == 0) {
        *Patch = 0;
        return Result;
      }
      Word NewRef;
      // tryClaim is the parallel arbitration seam (a serial Space claims
      // unconditionally). Word-0 reads — discriminants, closure code
      // addresses — below this point are safe because only the claim
      // winner reaches them, and publish is what clobbers word 0.
      if (Sp.alreadyVisited(V, NewRef) || !Sp.tryClaim(V, NewRef)) {
        *Patch = NewRef;
        if (EdgeRec)
          edge(PatchObj, PatchField, NewRef);
        return Result;
      }
      NewRef = Sp.visitNew(V, TR.PayloadWords);
      St.add(StatId::GcObjectsVisited);
      St.add(StatId::GcWordsVisited, TR.PayloadWords);
      visit(V, NewRef,
            TR.F == TypeRoutine::Form::RefCell ? CensusKind::Ref
                                               : CensusKind::Tuple,
            TR.PayloadWords);
      *Patch = NewRef;
      if (EdgeRec)
        edge(PatchObj, PatchField, NewRef);
      Word *Pl = Sp.payload(NewRef);
      for (const FieldAction &A : TR.Fields) {
        St.add(StatId::GcCompiledActions);
        Pl[A.Offset] = traceCompiled(Pl[A.Offset], A.Routine);
        if (EdgeRec)
          edge(NewRef, A.Offset, Pl[A.Offset]);
      }
      return Result;
    }
    case TypeRoutine::Form::DataSwitch: {
      if (V < ImmediateCtorLimit) { // Covers nullary ctors and null.
        *Patch = V;
        return Result;
      }
      Word NewRef;
      // tryClaim is the parallel arbitration seam (a serial Space claims
      // unconditionally). Word-0 reads — discriminants, closure code
      // addresses — below this point are safe because only the claim
      // winner reaches them, and publish is what clobbers word 0.
      if (Sp.alreadyVisited(V, NewRef) || !Sp.tryClaim(V, NewRef)) {
        *Patch = NewRef;
        if (EdgeRec)
          edge(PatchObj, PatchField, NewRef);
        return Result;
      }
      Word Disc = *reinterpret_cast<const Word *>(V);
      assert(Disc < TR.CtorSizes.size() && "corrupt discriminant");
      NewRef = Sp.visitNew(V, TR.CtorSizes[Disc]);
      St.add(StatId::GcObjectsVisited);
      St.add(StatId::GcWordsVisited, TR.CtorSizes[Disc]);
      visit(V, NewRef, CensusKind::Data, TR.CtorSizes[Disc]);
      *Patch = NewRef;
      if (EdgeRec)
        edge(PatchObj, PatchField, NewRef);
      Word *Pl = Sp.payload(NewRef);
      const std::vector<FieldAction> &Acts = TR.CtorFields[Disc];
      size_t N = Acts.size();
      for (size_t I = 0; I + 1 < N; ++I) {
        St.add(StatId::GcCompiledActions);
        Pl[Acts[I].Offset] = traceCompiled(Pl[Acts[I].Offset], Acts[I].Routine);
        if (EdgeRec)
          edge(NewRef, Acts[I].Offset, Pl[Acts[I].Offset]);
      }
      if (N != 0) {
        const FieldAction &Last = Acts[N - 1];
        St.add(StatId::GcCompiledActions);
        if (Last.Routine == R) {
          // Iterate on the tail field (cdr of a list) instead of
          // recursing.
          V = Pl[Last.Offset];
          Patch = &Pl[Last.Offset];
          PatchObj = NewRef;
          PatchField = Last.Offset;
          continue;
        }
        Pl[Last.Offset] = traceCompiled(Pl[Last.Offset], Last.Routine);
        if (EdgeRec)
          edge(NewRef, Last.Offset, Pl[Last.Offset]);
      }
      return Result;
    }
    }
  }
}

DescBinding TagFreeTracer::resolveArg(DescId A, const DescEnvNode *Env) {
  const Descriptor &AD = descTable().desc(A);
  if (AD.Kind == DescKind::Param) {
    assert(Env && "Param descriptor with no environment");
    return Env->Binds[AD.A];
  }
  return DescBinding{A, Env};
}

bool TagFreeTracer::bindingsEqual(const DescBinding &A,
                                  const DescBinding &B) {
  if (A.D != B.D)
    return false;
  // Ground descriptors mean the same thing under every environment.
  return A.Env == B.Env || descTable().desc(A.D).Ground;
}

Word TagFreeTracer::traceDesc(Word V, DescId D, const DescEnvNode *Env) {
  Word Result = V;
  Word *Patch = &Result;
  // (PatchObj, PatchField): the payload slot Patch aims at once the tail
  // loop redirects it — see traceCompiled.
  Word PatchObj = 0;
  uint32_t PatchField = 0;
  for (;;) {
    DescriptorTable &T = descTable();
    const Descriptor &Desc = T.desc(D);
    St.add(StatId::GcDescSteps);
    switch (Desc.Kind) {
    case DescKind::Leaf:
      *Patch = V; // Non-reference: no edge.
      return Result;
    case DescKind::Param: {
      assert(Env && "Param descriptor outside a datatype context");
      DescBinding B = Env->Binds[Desc.A];
      D = B.D;
      Env = B.Env;
      continue;
    }
    case DescKind::Fun:
      *Patch = traceClosureValue(V, nullptr, Desc.FunTy);
      if (EdgeRec)
        edge(PatchObj, PatchField, *Patch);
      return Result;
    case DescKind::Tuple: {
      if (V == 0) {
        *Patch = 0;
        return Result;
      }
      Word NewRef;
      // tryClaim is the parallel arbitration seam (a serial Space claims
      // unconditionally). Word-0 reads — discriminants, closure code
      // addresses — below this point are safe because only the claim
      // winner reaches them, and publish is what clobbers word 0.
      if (Sp.alreadyVisited(V, NewRef) || !Sp.tryClaim(V, NewRef)) {
        *Patch = NewRef;
        if (EdgeRec)
          edge(PatchObj, PatchField, NewRef);
        return Result;
      }
      NewRef = Sp.visitNew(V, Desc.Args.size());
      St.add(StatId::GcObjectsVisited);
      St.add(StatId::GcWordsVisited, Desc.Args.size());
      visit(V, NewRef, CensusKind::Tuple, Desc.Args.size());
      *Patch = NewRef;
      if (EdgeRec)
        edge(PatchObj, PatchField, NewRef);
      Word *Pl = Sp.payload(NewRef);
      // The interpreted method walks the descriptor for every field, even
      // ones with nothing to trace.
      for (size_t I = 0; I < Desc.Args.size(); ++I) {
        Pl[I] = traceDesc(Pl[I], Desc.Args[I], Env);
        if (EdgeRec)
          edge(NewRef, (uint32_t)I, Pl[I]);
      }
      return Result;
    }
    case DescKind::Ref: {
      if (V == 0) {
        *Patch = 0;
        return Result;
      }
      Word NewRef;
      // tryClaim is the parallel arbitration seam (a serial Space claims
      // unconditionally). Word-0 reads — discriminants, closure code
      // addresses — below this point are safe because only the claim
      // winner reaches them, and publish is what clobbers word 0.
      if (Sp.alreadyVisited(V, NewRef) || !Sp.tryClaim(V, NewRef)) {
        *Patch = NewRef;
        if (EdgeRec)
          edge(PatchObj, PatchField, NewRef);
        return Result;
      }
      NewRef = Sp.visitNew(V, 1);
      St.add(StatId::GcObjectsVisited);
      St.add(StatId::GcWordsVisited, 1);
      visit(V, NewRef, CensusKind::Ref, 1);
      *Patch = NewRef;
      if (EdgeRec)
        edge(PatchObj, PatchField, NewRef);
      Word *Pl = Sp.payload(NewRef);
      Pl[0] = traceDesc(Pl[0], Desc.Args[0], Env);
      if (EdgeRec)
        edge(NewRef, 0, Pl[0]);
      return Result;
    }
    case DescKind::Data: {
      if (V < ImmediateCtorLimit) {
        *Patch = V;
        return Result;
      }
      Word NewRef;
      // tryClaim is the parallel arbitration seam (a serial Space claims
      // unconditionally). Word-0 reads — discriminants, closure code
      // addresses — below this point are safe because only the claim
      // winner reaches them, and publish is what clobbers word 0.
      if (Sp.alreadyVisited(V, NewRef) || !Sp.tryClaim(V, NewRef)) {
        *Patch = NewRef;
        if (EdgeRec)
          edge(PatchObj, PatchField, NewRef);
        return Result;
      }
      Word Disc = *reinterpret_cast<const Word *>(V);
      const std::vector<DescId> &Shape = T.ctorShape(Desc.A, (unsigned)Disc);
      NewRef = Sp.visitNew(V, 1 + Shape.size());
      St.add(StatId::GcObjectsVisited);
      St.add(StatId::GcWordsVisited, 1 + Shape.size());
      visit(V, NewRef, CensusKind::Data, 1 + Shape.size());
      *Patch = NewRef;
      if (EdgeRec)
        edge(PatchObj, PatchField, NewRef);
      Word *Pl = Sp.payload(NewRef);

      // Effective bindings of this datatype's parameters: the Data
      // descriptor's argument descriptors resolved under the current
      // environment (the run-time analogue of instantiating the shape).
      std::vector<DescBinding> Binds;
      Binds.reserve(Desc.Args.size());
      for (DescId A : Desc.Args)
        Binds.push_back(resolveArg(A, Env));

      // A shape field referring to the same datatype with identical
      // effective bindings is a self reference: trace it in the current
      // (D, Env) context — iteratively if it is the last field.
      auto IsSelf = [&](DescId F) {
        const Descriptor &FD = T.desc(F);
        if (FD.Kind != DescKind::Data || FD.A != Desc.A ||
            FD.Args.size() != Binds.size())
          return false;
        for (size_t I = 0; I < FD.Args.size(); ++I) {
          const Descriptor &AD = T.desc(FD.Args[I]);
          DescBinding B = AD.Kind == DescKind::Param
                              ? Binds[AD.A]
                              : DescBinding{FD.Args[I], nullptr};
          if (AD.Kind != DescKind::Param && !AD.Ground)
            return false; // Conservative: fall back to a fresh env.
          if (!bindingsEqual(B, Binds[I]))
            return false;
        }
        return true;
      };

      const DescEnvNode *FieldEnv = nullptr;
      auto GetFieldEnv = [&]() {
        if (!FieldEnv) {
          EnvStorage.emplace_back();
          EnvStorage.back().Binds = Binds;
          FieldEnv = &EnvStorage.back();
        }
        return FieldEnv;
      };

      size_t N = Shape.size();
      for (size_t I = 0; I < N; ++I) {
        DescId F = Shape[I];
        const Descriptor &FD = T.desc(F);
        bool Last = I + 1 == N;
        Word *Slot = &Pl[1 + I];

        if (FD.Kind == DescKind::Param) {
          DescBinding B = Binds[FD.A];
          if (Last) {
            V = *Slot;
            Patch = Slot;
            PatchObj = NewRef;
            PatchField = (uint32_t)(1 + I);
            D = B.D;
            Env = B.Env;
            goto tail;
          }
          *Slot = traceDesc(*Slot, B.D, B.Env);
          if (EdgeRec)
            edge(NewRef, (uint32_t)(1 + I), *Slot);
          continue;
        }
        if (IsSelf(F)) {
          if (Last) {
            V = *Slot;
            Patch = Slot;
            PatchObj = NewRef;
            PatchField = (uint32_t)(1 + I);
            goto tail; // Same D, same Env: the list-spine loop.
          }
          *Slot = traceDesc(*Slot, D, Env);
          if (EdgeRec)
            edge(NewRef, (uint32_t)(1 + I), *Slot);
          continue;
        }
        if (FD.Ground) {
          if (Last) {
            V = *Slot;
            Patch = Slot;
            PatchObj = NewRef;
            PatchField = (uint32_t)(1 + I);
            D = F;
            Env = nullptr;
            goto tail;
          }
          *Slot = traceDesc(*Slot, F, nullptr);
          if (EdgeRec)
            edge(NewRef, (uint32_t)(1 + I), *Slot);
          continue;
        }
        // Open template field: needs the instantiated environment.
        if (Last) {
          V = *Slot;
          Patch = Slot;
          PatchObj = NewRef;
          PatchField = (uint32_t)(1 + I);
          D = F;
          Env = GetFieldEnv();
          goto tail;
        }
        *Slot = traceDesc(*Slot, F, GetFieldEnv());
        if (EdgeRec)
          edge(NewRef, (uint32_t)(1 + I), *Slot);
      }
      return Result;
    tail:
      continue;
    }
    }
  }
}

Word TagFreeTracer::traceTg(Word V, const TypeGc *Tg) {
  Word Result = V;
  Word *Patch = &Result;
  // (PatchObj, PatchField): the payload slot Patch aims at once the tail
  // loop redirects it — see traceCompiled. Const-kind fields are never
  // traced, so they also record no edge (they hold no reference).
  Word PatchObj = 0;
  uint32_t PatchField = 0;
  for (;;) {
    St.add(StatId::GcTgSteps);
    switch (Tg->K) {
    case TypeGc::Kind::Const:
      *Patch = V;
      return Result;
    case TypeGc::Kind::Fun:
      *Patch = traceClosureValue(V, Tg, nullptr);
      if (EdgeRec)
        edge(PatchObj, PatchField, *Patch);
      return Result;
    case TypeGc::Kind::Record: {
      if (V == 0) {
        *Patch = 0;
        return Result;
      }
      Word NewRef;
      // tryClaim is the parallel arbitration seam (a serial Space claims
      // unconditionally). Word-0 reads — discriminants, closure code
      // addresses — below this point are safe because only the claim
      // winner reaches them, and publish is what clobbers word 0.
      if (Sp.alreadyVisited(V, NewRef) || !Sp.tryClaim(V, NewRef)) {
        *Patch = NewRef;
        if (EdgeRec)
          edge(PatchObj, PatchField, NewRef);
        return Result;
      }
      NewRef = Sp.visitNew(V, Tg->NumArgs);
      St.add(StatId::GcObjectsVisited);
      St.add(StatId::GcWordsVisited, Tg->NumArgs);
      visit(V, NewRef, CensusKind::Tuple, Tg->NumArgs);
      *Patch = NewRef;
      if (EdgeRec)
        edge(PatchObj, PatchField, NewRef);
      Word *Pl = Sp.payload(NewRef);
      for (uint32_t I = 0; I < Tg->NumArgs; ++I)
        if (Tg->Args[I]->K != TypeGc::Kind::Const) {
          Pl[I] = traceTg(Pl[I], Tg->Args[I]);
          if (EdgeRec)
            edge(NewRef, I, Pl[I]);
        }
      return Result;
    }
    case TypeGc::Kind::Ref: {
      if (V == 0) {
        *Patch = 0;
        return Result;
      }
      Word NewRef;
      // tryClaim is the parallel arbitration seam (a serial Space claims
      // unconditionally). Word-0 reads — discriminants, closure code
      // addresses — below this point are safe because only the claim
      // winner reaches them, and publish is what clobbers word 0.
      if (Sp.alreadyVisited(V, NewRef) || !Sp.tryClaim(V, NewRef)) {
        *Patch = NewRef;
        if (EdgeRec)
          edge(PatchObj, PatchField, NewRef);
        return Result;
      }
      NewRef = Sp.visitNew(V, 1);
      St.add(StatId::GcObjectsVisited);
      St.add(StatId::GcWordsVisited, 1);
      visit(V, NewRef, CensusKind::Ref, 1);
      *Patch = NewRef;
      if (EdgeRec)
        edge(PatchObj, PatchField, NewRef);
      Word *Pl = Sp.payload(NewRef);
      if (Tg->Args[0]->K != TypeGc::Kind::Const) {
        Pl[0] = traceTg(Pl[0], Tg->Args[0]);
        if (EdgeRec)
          edge(NewRef, 0, Pl[0]);
      }
      return Result;
    }
    case TypeGc::Kind::Data: {
      if (V < ImmediateCtorLimit) {
        *Patch = V;
        return Result;
      }
      Word NewRef;
      // tryClaim is the parallel arbitration seam (a serial Space claims
      // unconditionally). Word-0 reads — discriminants, closure code
      // addresses — below this point are safe because only the claim
      // winner reaches them, and publish is what clobbers word 0.
      if (Sp.alreadyVisited(V, NewRef) || !Sp.tryClaim(V, NewRef)) {
        *Patch = NewRef;
        if (EdgeRec)
          edge(PatchObj, PatchField, NewRef);
        return Result;
      }
      Word Disc = *reinterpret_cast<const Word *>(V);
      uint32_t NumFields = Tg->CtorFieldCounts[Disc];
      NewRef = Sp.visitNew(V, 1 + NumFields);
      St.add(StatId::GcObjectsVisited);
      St.add(StatId::GcWordsVisited, 1 + NumFields);
      visit(V, NewRef, CensusKind::Data, 1 + NumFields);
      *Patch = NewRef;
      if (EdgeRec)
        edge(PatchObj, PatchField, NewRef);
      Word *Pl = Sp.payload(NewRef);
      const TypeGc *const *Fields = Tg->CtorFields[Disc];
      for (uint32_t I = 0; I + 1 < NumFields; ++I)
        if (Fields[I]->K != TypeGc::Kind::Const) {
          Pl[1 + I] = traceTg(Pl[1 + I], Fields[I]);
          if (EdgeRec)
            edge(NewRef, 1 + I, Pl[1 + I]);
        }
      if (NumFields != 0) {
        const TypeGc *Last = Fields[NumFields - 1];
        if (Last == Tg) {
          V = Pl[NumFields];
          Patch = &Pl[NumFields];
          PatchObj = NewRef;
          PatchField = NumFields;
          continue;
        }
        if (Last->K != TypeGc::Kind::Const) {
          Pl[NumFields] = traceTg(Pl[NumFields], Last);
          if (EdgeRec)
            edge(NewRef, NumFields, Pl[NumFields]);
        }
      }
      return Result;
    }
    }
  }
}

const TypeGc *TagFreeTracer::bindParam(const ClosureParamPath &P,
                                       const TypeGc *FunTg) {
  if (P.Found)
    return Eng.extract(FunTg, P.Path);
  assert(GlogerDummies &&
         "non-reconstructible closure reached the collector");
  St.add(StatId::GcGlogerDummies);
  return Eng.constGc();
}

Word TagFreeTracer::traceClosureValue(Word V, const TypeGc *FunTg,
                                      Type *StaticFunTy) {
  if (V == 0)
    return 0; // Unpatched placeholder in a recursive closure group.
  Word NewRef;
  if (Sp.alreadyVisited(V, NewRef) || !Sp.tryClaim(V, NewRef))
    return NewRef;

  // Post-claim: the code-address read in word 0 is stable (see above).
  Word CodeAddr = *reinterpret_cast<const Word *>(V);
  FuncId L = (FuncId)Img.closureMetaAt((uint32_t)CodeAddr);
  const IrFunction &LF = Prog.fn(L);

  uint32_t PayloadWords;
  const std::vector<ClosureParamPath> *Paths;
  switch (Method) {
  case TraceMethod::Compiled: {
    const ClosureRoutine &CR = CM->closureRoutine(L);
    PayloadWords = CR.PayloadWords;
    Paths = &CR.ParamPaths;
    break;
  }
  case TraceMethod::Interpreted: {
    const ClosureDescriptor &CD = IM->closureDescriptor(L);
    PayloadWords = CD.PayloadWords;
    Paths = &CD.ParamPaths;
    break;
  }
  case TraceMethod::Appel: {
    const ClosureDescriptor &CD = AM->closureDescriptor(L);
    PayloadWords = CD.PayloadWords;
    Paths = &CD.ParamPaths;
    break;
  }
  }

  NewRef = Sp.visitNew(V, PayloadWords);
  St.add(StatId::GcObjectsVisited);
  St.add(StatId::GcWordsVisited, PayloadWords);
  visit(V, NewRef, CensusKind::Closure, PayloadWords);
  Word *Pl = Sp.payload(NewRef);

  // Recover the lambda's type parameters from its function-type routine
  // (paper Figure 4).
  std::vector<const TypeGc *> Binds;
  if (!LF.TypeParams.empty()) {
    if (!FunTg) {
      assert(StaticFunTy && "no function type available for extraction");
      TgEnv Empty;
      FunTg = Eng.eval(StaticFunTy, Empty);
    }
    for (const ClosureParamPath &P : *Paths)
      Binds.push_back(bindParam(P, FunTg));
  }
  TgEnv Env;
  Env.Params = &LF.TypeParams;
  Env.Binds = Binds.data();

  switch (Method) {
  case TraceMethod::Compiled: {
    const ClosureRoutine &CR = CM->closureRoutine(L);
    for (const FieldAction &A : CR.Fields) {
      St.add(StatId::GcCompiledActions);
      Pl[A.Offset] = traceCompiled(Pl[A.Offset], A.Routine);
      if (EdgeRec)
        edge(NewRef, A.Offset, Pl[A.Offset]);
    }
    for (const OpenAction &A : CR.Open) {
      Pl[A.Index] = traceTg(Pl[A.Index], Eng.eval(A.Ty, Env));
      if (EdgeRec)
        edge(NewRef, A.Index, Pl[A.Index]);
    }
    break;
  }
  case TraceMethod::Interpreted:
  case TraceMethod::Appel: {
    const ClosureDescriptor &CD = Method == TraceMethod::Interpreted
                                      ? IM->closureDescriptor(L)
                                      : AM->closureDescriptor(L);
    for (const FrameDescriptor::SlotDesc &F : CD.Fields) {
      Pl[F.Slot] = traceDesc(Pl[F.Slot], F.Desc, nullptr);
      if (EdgeRec)
        edge(NewRef, F.Slot, Pl[F.Slot]);
    }
    for (const OpenAction &A : CD.Open) {
      Pl[A.Index] = traceTg(Pl[A.Index], Eng.eval(A.Ty, Env));
      if (EdgeRec)
        edge(NewRef, A.Index, Pl[A.Index]);
    }
    break;
  }
  }
  return NewRef;
}

void TagFreeTracer::traceFrame(Word *Slots, const FrameRoutine &FR,
                               const TgEnv *Env) {
  for (const FrameRoutine::SlotAction &A : FR.Slots) {
    St.add(StatId::GcSlotsTraced);
    Slots[A.Slot] = traceCompiled(Slots[A.Slot], A.Routine);
  }
  for (const OpenAction &A : FR.Open) {
    St.add(StatId::GcSlotsTraced);
    assert(Env && "open slot without type parameter bindings");
    Slots[A.Index] = traceTg(Slots[A.Index], Eng.eval(A.Ty, *Env));
  }
}

void TagFreeTracer::traceFrame(Word *Slots, const FrameDescriptor &FD,
                               const TgEnv *Env) {
  for (const FrameDescriptor::SlotDesc &A : FD.Slots) {
    St.add(StatId::GcSlotsTraced);
    Slots[A.Slot] = traceDesc(Slots[A.Slot], A.Desc, nullptr);
  }
  for (const OpenAction &A : FD.Open) {
    St.add(StatId::GcSlotsTraced);
    assert(Env && "open slot without type parameter bindings");
    Slots[A.Index] = traceTg(Slots[A.Index], Eng.eval(A.Ty, *Env));
  }
}
