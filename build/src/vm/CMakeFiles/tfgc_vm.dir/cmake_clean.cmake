file(REMOVE_RECURSE
  "CMakeFiles/tfgc_vm.dir/Vm.cpp.o"
  "CMakeFiles/tfgc_vm.dir/Vm.cpp.o.d"
  "libtfgc_vm.a"
  "libtfgc_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfgc_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
