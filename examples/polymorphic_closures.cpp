//===- examples/polymorphic_closures.cpp - Paper section 3 ---------------===//
///
/// The paper's polymorphic example:
///
///   let fun f x = let y = (x, x) in (y, [3]) end
///   in (f [true], f 7) end
///
/// f's frame GC routine cannot know x's type — it is *parameterized* by a
/// type GC routine for x, passed down the stack during the oldest-to-
/// newest traversal. Type GC routines for compound types are closures
/// built during collection (trace_list_of(const_gc) and friends, Figure
/// 3); for function values they support extraction of the callee's
/// parameter routines (Figure 4). This example runs the program under
/// every strategy and shows the machinery's footprints.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "workloads/Programs.h"

#include <cstdio>

using namespace tfgc;

int main() {
  std::string Source = workloads::polyPaper();
  std::printf("program (paper section 3, extended with polymorphic map):\n"
              "%s\n",
              Source.c_str());

  Compiler C;
  std::string Error;
  auto P = C.compile(Source, &Error);
  if (!P) {
    std::fprintf(stderr, "%s", Error.c_str());
    return 1;
  }

  // Show f's type parameters and each call site's instantiation — the
  // compile-time data the frame routines thread through the stack.
  FuncId F = findFunction(P->Prog, "f");
  const IrFunction &Fn = P->Prog.fn(F);
  std::printf("f has %zu type parameter(s); call sites instantiate them "
              "as:\n",
              Fn.TypeParams.size());
  for (const CallSiteInfo &S : P->Prog.Sites) {
    if (S.Kind != SiteKind::Direct || S.Callee != F)
      continue;
    std::printf("  site %-3u in %-10s: ", S.Id,
                P->Prog.fn(S.Caller).Name.c_str());
    for (Type *T : S.CalleeTypeInst)
      std::printf("%s ", P->Types->render(T).c_str());
    std::printf("\n");
  }

  std::printf("\nrunning with a 4KiB heap and collection at every "
              "allocation:\n");
  for (GcStrategy S :
       {GcStrategy::Tagged, GcStrategy::CompiledTagFree,
        GcStrategy::InterpretedTagFree, GcStrategy::AppelTagFree}) {
    Stats St;
    auto Col =
        P->makeCollector(S, GcAlgorithm::Copying, 4 * 1024, St, &Error);
    if (!Col) {
      std::fprintf(stderr, "%s: %s\n", gcStrategyName(S), Error.c_str());
      return 1;
    }
    VmOptions VO = defaultVmOptions(S, /*GcStress=*/true);
    Vm M(P->Prog, P->Image, *P->Types, *Col, VO);
    RunResult R = M.run();
    if (!R.Ok) {
      std::fprintf(stderr, "%s: %s\n", gcStrategyName(S), R.Error.c_str());
      return 1;
    }
    std::printf("  %-20s collections=%-4llu type-gc closures built=%-5llu "
                "chain steps=%-5llu\n",
                gcStrategyName(S),
                (unsigned long long)St.get(StatId::GcCollections),
                (unsigned long long)St.get(StatId::GcTgNodes),
                (unsigned long long)St.get(StatId::GcChainSteps));
    if (S == GcStrategy::Tagged)
      std::printf("       result: %s\n", R.Value.c_str());
  }

  std::printf(
      "\nFootprints to notice:\n"
      " * tagged builds no type-GC closures — headers carry the layout;\n"
      " * the Goldberg strategies build trace_list_of-style closures during "
      "each\n   collection (Figure 3) and never walk caller chains;\n"
      " * Appel's scheme resolves every polymorphic frame by walking down "
      "the dynamic\n   chain (nonzero chain steps) — the cost the paper's "
      "two-pass traversal avoids.\n");
  return 0;
}
