//===- bench/bench_liveness.cpp - E5: live-variable accuracy -------------===//
///
/// Paper claim (section 1, "More accurate recognition of live data and
/// garbage"): per-call-site routines trace only variables that are still
/// live, so dead structures are reclaimed promptly. The deadVars workload
/// drops a large list just before a long allocating call; this bench
/// compares retained work with liveness on, liveness off, and under the
/// strategies that cannot use liveness at all (tagged scan, Appel
/// per-procedure descriptors).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace tfgc;
using namespace tfgc::bench;
namespace wl = tfgc::workloads;

namespace {

void report(const char *Config, const std::string &Src, GcStrategy S,
            bool UseLiveness, size_t HeapBytes) {
  CompileOptions O;
  O.UseLiveness = UseLiveness;
  Stats St = runOnce(Src, S, GcAlgorithm::Copying, HeapBytes, true, O);
  uint64_t N = St.get(StatId::GcCollections);
  tableCell(Config);
  tableCell(N);
  tableCell(St.get(StatId::GcObjectsVisited));
  tableCell(St.get(StatId::GcWordsVisited));
  tableCell(N ? (double)St.get(StatId::GcWordsVisited) / (double)N : 0.0);
  tableCell(St.get(StatId::GcSlotsTraced));
  tableEnd();
}

std::unique_ptr<CompiledProgram> &liveProgram() {
  static auto P = compileOrDie(wl::deadVars(600, 600));
  return P;
}
std::unique_ptr<CompiledProgram> &noLiveProgram() {
  static CompileOptions O = [] {
    CompileOptions X;
    X.UseLiveness = false;
    return X;
  }();
  static auto P = compileOrDie(wl::deadVars(600, 600), O);
  return P;
}

void BM_WithLiveness(benchmark::State &State) {
  timedRun(State, *liveProgram(), GcStrategy::CompiledTagFree,
           GcAlgorithm::Copying, 1 << 13);
}
void BM_WithoutLiveness(benchmark::State &State) {
  timedRun(State, *noLiveProgram(), GcStrategy::CompiledTagFree,
           GcAlgorithm::Copying, 1 << 13);
}
void BM_TaggedScansEverything(benchmark::State &State) {
  timedRun(State, *liveProgram(), GcStrategy::Tagged, GcAlgorithm::Copying,
           1 << 13);
}
BENCHMARK(BM_WithLiveness);
BENCHMARK(BM_WithoutLiveness);
BENCHMARK(BM_TaggedScansEverything);

} // namespace

int main(int argc, char **argv) {
  JsonSink Sink("liveness", argc, argv);
  jsonWorkload("deadVars");
  std::string Src = wl::deadVars(600, 600);
  tableHeader("E5: dead-variable retention (deadVars 600/600, GC stress)",
              "a 600-cons list dies before a 600-cons allocating call; "
              "words visited measures what each configuration keeps "
              "copying",
              {"configuration", "collections", "objs visited",
               "words visited", "words/collection", "slots traced"});
  report("compiled+liveness", Src, GcStrategy::CompiledTagFree, true,
         1 << 20);
  report("compiled, no liveness", Src, GcStrategy::CompiledTagFree, false,
         1 << 20);
  report("interpreted+liveness", Src, GcStrategy::InterpretedTagFree, true,
         1 << 20);
  report("appel (all slots)", Src, GcStrategy::AppelTagFree, true, 1 << 20);
  report("tagged (scan all)", Src, GcStrategy::Tagged, true, 1 << 20);
  std::printf("\nExpected shape: with liveness the dead list is not "
              "traced, so words/collection\ndrops sharply; no-liveness, "
              "Appel and tagged all keep dragging the dead list\nthrough "
              "every collection.\n\n");
  benchmark::Initialize(&argc, argv);
  Sink.runBenchmarksAndWrite();
  return 0;
}
