//===- support/Introspect.cpp ---------------------------------------------===//

#include "support/Introspect.h"

#include <cerrno>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

using namespace tfgc;

uint16_t IntrospectServer::start(uint16_t Port, std::string &Err) {
  if (Running.load()) {
    Err = "introspection server already running";
    return 0;
  }
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return 0;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Fd, (sockaddr *)&Addr, sizeof(Addr)) < 0) {
    std::ostringstream OS;
    OS << "bind 127.0.0.1:" << Port << ": " << std::strerror(errno);
    Err = OS.str();
    ::close(Fd);
    return 0;
  }
  if (::listen(Fd, 16) < 0) {
    Err = std::string("listen: ") + std::strerror(errno);
    ::close(Fd);
    return 0;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, (sockaddr *)&Addr, &Len) < 0) {
    Err = std::string("getsockname: ") + std::strerror(errno);
    ::close(Fd);
    return 0;
  }
  BoundPort = ntohs(Addr.sin_port);
  ListenFd = Fd;
  StopFlag.store(false);
  Running.store(true);
  Thread = std::thread([this] { serveLoop(); });
  return BoundPort;
}

void IntrospectServer::stop() {
  if (!Running.load())
    return;
  StopFlag.store(true);
  // Wake the accept loop: shutdown makes a blocked poll/accept return.
  ::shutdown(ListenFd, SHUT_RDWR);
  if (Thread.joinable())
    Thread.join();
  ::close(ListenFd);
  ListenFd = -1;
  Running.store(false);
}

void IntrospectServer::serveLoop() {
  while (!StopFlag.load()) {
    pollfd P{ListenFd, POLLIN, 0};
    int R = ::poll(&P, 1, 200);
    if (StopFlag.load())
      break;
    if (R <= 0)
      continue;
    int Conn = ::accept(ListenFd, nullptr, nullptr);
    if (Conn < 0)
      continue;
    // Bound how long one client can hold the (single) serving thread.
    timeval Tv{2, 0};
    ::setsockopt(Conn, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
    ::setsockopt(Conn, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv));
    handleConn(Conn);
    ::close(Conn);
  }
}

namespace {

void writeAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
    if (N <= 0)
      return;
    Off += (size_t)N;
  }
}

void respond(int Fd, int Status, const char *Reason, const char *ContentType,
             const std::string &Body) {
  std::ostringstream OS;
  OS << "HTTP/1.1 " << Status << ' ' << Reason << "\r\n"
     << "Content-Type: " << ContentType << "\r\n"
     << "Content-Length: " << Body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << Body;
  writeAll(Fd, OS.str());
}

} // namespace

void IntrospectServer::handleConn(int Fd) {
  // Read until the end of the request head (we ignore any body).
  std::string Req;
  char Buf[1024];
  while (Req.size() < 16 * 1024 && Req.find("\r\n\r\n") == std::string::npos) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      break;
    Req.append(Buf, (size_t)N);
  }
  Requests.fetch_add(1);
  size_t Eol = Req.find("\r\n");
  std::string Line = Req.substr(0, Eol == std::string::npos ? Req.size() : Eol);
  size_t Sp1 = Line.find(' ');
  size_t Sp2 = Line.find(' ', Sp1 == std::string::npos ? 0 : Sp1 + 1);
  if (Sp1 == std::string::npos || Sp2 == std::string::npos) {
    respond(Fd, 400, "Bad Request", "text/plain", "bad request\n");
    return;
  }
  std::string Method = Line.substr(0, Sp1);
  std::string Path = Line.substr(Sp1 + 1, Sp2 - Sp1 - 1);
  if (size_t Q = Path.find('?'); Q != std::string::npos)
    Path.resize(Q);
  if (Method != "GET") {
    respond(Fd, 405, "Method Not Allowed", "text/plain",
            "only GET is supported\n");
    return;
  }
  if (Path == "/healthz") {
    respond(Fd, 200, "OK", "text/plain", "ok\n");
    return;
  }
  std::string Body;
  if (Path == "/metrics") {
    Body = metricsBody();
    if (Body.empty())
      respond(Fd, 503, "Service Unavailable", "text/plain",
              "no epoch folded yet\n");
    else
      respond(Fd, 200, "OK", "text/plain; version=0.0.4", Body);
    return;
  }
  if (Path == "/snapshot") {
    {
      std::lock_guard<std::mutex> G(BodyMutex);
      Body = SnapshotBody;
    }
    if (Body.empty())
      respond(Fd, 404, "Not Found", "text/plain",
              "no heap snapshot (run with --heap-profile)\n");
    else
      respond(Fd, 200, "OK", "application/json", Body);
    return;
  }
  if (Path == "/heartbeat") {
    {
      std::lock_guard<std::mutex> G(BodyMutex);
      Body = HeartbeatBody;
    }
    if (Body.empty())
      respond(Fd, 404, "Not Found", "text/plain",
              "no heartbeat yet (run with --monitor)\n");
    else
      respond(Fd, 200, "OK", "application/json", Body);
    return;
  }
  if (Path == "/flightrecord") {
    {
      std::lock_guard<std::mutex> G(BodyMutex);
      Body = FlightBody;
    }
    if (Body.empty())
      respond(Fd, 404, "Not Found", "text/plain",
              "no flight recording (run with --flight-out)\n");
    else
      respond(Fd, 200, "OK", "application/octet-stream", Body);
    return;
  }
  if (Path == "/heapdump") {
    {
      std::lock_guard<std::mutex> G(BodyMutex);
      Body = HeapDumpBody;
    }
    if (Body.empty())
      respond(Fd, 404, "Not Found", "text/plain",
              "no heap dump (run with --heap-dump)\n");
    else
      respond(Fd, 200, "OK", "application/octet-stream", Body);
    return;
  }
  respond(Fd, 404, "Not Found", "text/plain",
          "not found (try /metrics, /snapshot, /heartbeat, /flightrecord, "
          "/heapdump, /healthz)\n");
}

std::string IntrospectServer::metricsBody() {
  std::lock_guard<std::mutex> G(BodyMutex);
  if (MetricsBody.empty() && MetricsRender) {
    // First scrape of this epoch: materialize the deferred render and
    // cache it for subsequent scrapes. The closure holds an immutable
    // snapshot, so running it here (the serving thread) is safe.
    MetricsBody = MetricsRender();
    MetricsRender = nullptr;
  }
  return MetricsBody;
}

void IntrospectServer::publishMetrics(std::string Body) {
  std::lock_guard<std::mutex> G(BodyMutex);
  MetricsBody = std::move(Body);
  MetricsRender = nullptr;
}

void IntrospectServer::publishMetricsLazy(std::function<std::string()> Render) {
  std::lock_guard<std::mutex> G(BodyMutex);
  MetricsRender = std::move(Render);
  MetricsBody.clear();
}

void IntrospectServer::publishSnapshot(std::string Body) {
  std::lock_guard<std::mutex> G(BodyMutex);
  SnapshotBody = std::move(Body);
}

void IntrospectServer::publishHeartbeat(std::string Body) {
  std::lock_guard<std::mutex> G(BodyMutex);
  HeartbeatBody = std::move(Body);
}

void IntrospectServer::publishFlightRecord(std::string Body) {
  std::lock_guard<std::mutex> G(BodyMutex);
  FlightBody = std::move(Body);
}

void IntrospectServer::publishHeapDump(std::string Body) {
  std::lock_guard<std::mutex> G(BodyMutex);
  HeapDumpBody = std::move(Body);
}
