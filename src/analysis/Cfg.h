//===- analysis/Cfg.h - Instruction-level CFG -------------------*- C++ -*-===//
///
/// \file
/// Successor/predecessor edges over a function's instruction list. The IR
/// has forward-only jumps (loops happen through recursion), but the
/// dataflow solvers below iterate to a fixpoint anyway for robustness.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_ANALYSIS_CFG_H
#define TFGC_ANALYSIS_CFG_H

#include "ir/Ir.h"

#include <vector>

namespace tfgc {

/// Per-instruction successor lists for one function.
class Cfg {
public:
  explicit Cfg(const IrFunction &F);

  const std::vector<uint32_t> &succs(uint32_t Idx) const {
    return Successors[Idx];
  }
  const std::vector<uint32_t> &preds(uint32_t Idx) const {
    return Predecessors[Idx];
  }
  size_t size() const { return Successors.size(); }

private:
  std::vector<std::vector<uint32_t>> Successors;
  std::vector<std::vector<uint32_t>> Predecessors;
};

} // namespace tfgc

#endif // TFGC_ANALYSIS_CFG_H
