//===- gcmeta/CodeImage.cpp -----------------------------------------------===//

#include "gcmeta/CodeImage.h"

using namespace tfgc;

void CodeImage::build(IrProgram &P) {
  Image.clear();
  AllocDebug.clear();
  AllocDebug.resize(P.NumAllocSites);
  LiveGcWords = 0;
  OmittedCount = 0;

  for (IrFunction &F : P.Functions) {
    // Closure metadata word, then the entry marker.
    Image.push_back((Word)F.Id);
    F.EntryAddr = (uint32_t)Image.size();
    Image.push_back((Word)F.Id);
  }

  // Sites, grouped per function in instruction order.
  for (IrFunction &F : P.Functions) {
    for (const Instr &I : F.Code) {
      if (I.Site == InvalidSite)
        continue;
      CallSiteInfo &S = P.site(I.Site);
      S.CodeAddr = (uint32_t)Image.size();
      if (S.AllocId != InvalidAllocSite) {
        AllocSiteDebug &D = AllocDebug[S.AllocId];
        D.Func = F.Name;
        D.Line = S.Loc.Line;
        D.Col = S.Loc.Col;
        if (P.Types && I.hasDst() && F.SlotTypes[I.Dst])
          D.TypeStr = P.Types->render(F.SlotTypes[I.Dst]);
      }
      Image.push_back((Word)S.Id); // call instruction
      Image.push_back(0);          // delay slot
      if (S.CanTriggerGc) {
        Image.push_back((Word)S.Id); // gc_word
        ++LiveGcWords;
      } else {
        Image.push_back(OmittedGcWord);
        ++OmittedCount;
      }
      Image.push_back(0); // resume point
    }
  }
}
