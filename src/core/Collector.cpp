//===- core/Collector.cpp -------------------------------------------------===//

#include "core/Collector.h"
#include "core/Space.h"

#include <cassert>
#include <chrono>

using namespace tfgc;

const char *tfgc::gcStrategyName(GcStrategy S) {
  switch (S) {
  case GcStrategy::Tagged:             return "tagged";
  case GcStrategy::CompiledTagFree:    return "compiled-tagfree";
  case GcStrategy::InterpretedTagFree: return "interpreted-tagfree";
  case GcStrategy::AppelTagFree:       return "appel-tagfree";
  }
  return "?";
}

Collector::Collector(ValueModel Model, GcAlgorithm Algo, size_t HeapBytes,
                     Stats &St)
    : Model(Model), Algo(Algo), St(St) {
  if (Algo == GcAlgorithm::Copying)
    Copying = std::make_unique<Heap>(HeapBytes);
  else
    Ms = std::make_unique<MarkSweepHeap>(HeapBytes);
}

Word *Collector::tryAllocatePayload(size_t PayloadWords, ObjKind Kind) {
  assert(PayloadWords > 0);
  size_t Total =
      Model == ValueModel::Tagged ? PayloadWords + 1 : PayloadWords;
  Word *P = Copying ? Copying->tryAllocate(Total) : Ms->tryAllocate(Total);
  if (!P)
    return nullptr;
  St.add(StatId::HeapObjectsAllocated);
  if (Model == ValueModel::Tagged) {
    P[0] = makeHeader((uint32_t)PayloadWords, Kind);
    return P + 1;
  }
  return P;
}

void Collector::collect(RootSet &Roots, size_t NeedPayloadWords) {
  size_t Need = NeedPayloadWords + (Model == ValueModel::Tagged ? 1 : 0);
  Tel.beginCollection();
  {
    // The RootScan span stays open for the whole collection so the phase
    // spans partition the pause: finer spans (pointer reversal, frame
    // dispatch, closure build, copy/sweep, verify) nest inside it and
    // steal their time from it, and whatever is in none of them — loop
    // control, counter updates — stays charged to RootScan. The stats
    // clock starts inside the span so its read is covered, not slack.
    PhaseScope Outer(&Tel, GcPhase::RootScan);
    auto Start = std::chrono::steady_clock::now();

    if (Copying) {
      size_t Capacity = Copying->capacityBytes() / sizeof(Word);
      for (;;) {
        {
          PhaseScope P(&Tel, GcPhase::CopySweep);
          Copying->beginCollection(Capacity);
        }
        CopyingSpace Sp(*Copying, Model == ValueModel::Tagged);
        traceRoots(Roots, Sp);
        {
          PhaseScope P(&Tel, GcPhase::CopySweep);
          Copying->endCollection();
        }
        if (Copying->freeWords() >= Need)
          break;
        // Not enough reclaimed: grow and collect again (the roots now live
        // in the new space, which becomes from-space for the next round).
        size_t UsedWords = Copying->usedBytes() / sizeof(Word);
        Capacity = Capacity * 2 > UsedWords + Need ? Capacity * 2
                                                   : (UsedWords + Need) * 2;
        St.add(StatId::GcHeapGrowths);
      }
    } else {
      {
        PhaseScope P(&Tel, GcPhase::CopySweep);
        Ms->beginMark();
      }
      MarkSpace Sp(*Ms, Model == ValueModel::Tagged);
      traceRoots(Roots, Sp);
      size_t Reclaimed;
      {
        PhaseScope P(&Tel, GcPhase::CopySweep);
        Reclaimed = Ms->sweep();
        while (!Ms->canAllocate(Need)) {
          Ms->addSegment();
          St.add(StatId::GcHeapGrowths);
        }
      }
      St.add(StatId::GcBytesReclaimed, Reclaimed);
    }

    // The pause counters exclude the diagnostic verify pass (historical
    // behavior); the telemetry event includes it as its own phase.
    auto Ns = (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
    St.add(StatId::GcCollections);
    St.add(StatId::GcPauseNsTotal, Ns);
    St.max(StatId::GcPauseNsMax, Ns);

    if (VerifyAfterGc) {
      // Note: the verification pass re-runs the frame routines, so work
      // counters (objects visited, trace steps) double while it is on —
      // enable it in correctness tests only.
      PhaseScope V(&Tel, GcPhase::Verify);
      // The re-trace must not re-count census objects or re-enter the
      // tracing phases; its whole duration is charged to Verify.
      Tel.setPaused(true);
      CheckSpace Check(
          [this](Word P) {
            return Copying ? Copying->contains(P) : Ms->contains(P);
          },
          Model == ValueModel::Tagged);
      traceRoots(Roots, Check);
      Tel.setPaused(false);
      St.add(StatId::GcVerifyPasses);
      St.add(StatId::GcVerifyViolations, Check.violations());
    }

    // Finish while the RootScan span is still open: finishCollection's
    // one clock read closes the span AND stamps the pause, leaving zero
    // end-of-collection slack (Outer's destructor then no-ops because
    // the collection is already closed).
    Tel.finishCollection(Copying ? Copying->survivorWords()
                                 : Ms->liveWordsAfterSweep(),
                         heapCapacityBytes());
  }
}

void Collector::publishTelemetryStats() {
  const LogHistogram &Pause = Tel.pauseHistogram();
  if (Pause.count()) {
    St.set(StatId::GcPauseNsP50, Pause.percentile(50));
    St.set(StatId::GcPauseNsP90, Pause.percentile(90));
    St.set(StatId::GcPauseNsP99, Pause.percentile(99));
  }
  for (size_t I = 0; I < NumGcPhases; ++I)
    if (uint64_t Total = Tel.phaseNsTotal((GcPhase)I))
      St.set(std::string("gc.phase_") + gcPhaseName((GcPhase)I) + "_ns",
             Total);
  for (size_t I = 0; I < NumCensusKinds; ++I) {
    CensusKind K = (CensusKind)I;
    if (uint64_t Objects = Tel.censusObjectsTotal(K)) {
      std::string Base = std::string("gc.census_") + censusKindName(K);
      St.set(Base + "_objects", Objects);
      St.set(Base + "_words", Tel.censusWordsTotal(K));
    }
  }
  const LogHistogram &Stop = Tel.worldStopDelayHistogram();
  if (Stop.count()) {
    St.set("task.world_stop_delay_ns_p50", Stop.percentile(50));
    St.set("task.world_stop_delay_ns_p90", Stop.percentile(90));
    St.set("task.world_stop_delay_ns_p99", Stop.percentile(99));
  }
}

size_t Collector::heapUsedBytes() const {
  return Copying ? Copying->usedBytes() : Ms->usedBytes();
}

size_t Collector::heapCapacityBytes() const {
  return Copying ? Copying->capacityBytes() : Ms->capacityBytes();
}

uint64_t Collector::bytesAllocatedTotal() const {
  return Copying ? Copying->bytesAllocatedTotal()
                 : Ms->bytesAllocatedTotal();
}
