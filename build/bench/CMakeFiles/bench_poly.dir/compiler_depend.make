# Empty compiler generated dependencies file for bench_poly.
# This may be replaced when dependencies are built.
