//===- bench/bench_heap_graph.cpp - E17: heap-graph capture cost ---------===//
///
/// What does the typed heap-graph pipeline cost? The graph rides the
/// profiler's first-visit hook, which itself rides the collector's
/// type-reconstructing trace, so the claim to verify is that the whole
/// subsystem is free until a capture actually fires:
///
///   off      neither profiler nor graph attached: the seed-equivalent
///            path. `--heap-dump` absent leaves the mutator and the
///            tracers bit-identical to a build without HeapGraph.
///   profile  profiler attached, no graph: the E11 baseline this bench
///            layers on.
///   armed    profiler + graph attached with a huge --heap-dump-every,
///            so the every-N gate rejects every capture: zero chunks,
///            and the per-visit cost is a single predicted-false
///            branch. This is the "dump-off" state the E17 acceptance
///            prices.
///   dump     profiler + graph capturing at EVERY full/major collection
///            (--heap-dump-every=1): node+edge recording, dominator
///            retention, serialization, and the sink write, priced so
///            users know what a dump-heavy run costs before tracing a
///            leak in a tight loop.
///
/// Reports wall-clock medians over interleaved runs (page cache, CPU
/// frequency, and load drift hit every mode equally) for listChurn
/// (allocation-heavy, full copying) and generationalChurn
/// (minor-dominated — minors are never captured, so `dump` only pays at
/// majors). The google-benchmark entries feed BENCH_heap_graph.json.
///
/// Acceptance line (E17): armed/profile <= 1.01 on listChurn — dumps
/// switched off cost at most 1% on top of profiling alone.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/HeapGraph.h"

#include <algorithm>
#include <array>
#include <chrono>

using namespace tfgc;
using namespace tfgc::bench;
namespace wl = tfgc::workloads;

namespace {

constexpr size_t HeapBytes = 1 << 16;
constexpr size_t GenHeapBytes = 1 << 20;
constexpr size_t GenNurseryBytes = 1 << 13;

enum GraphMode { Off = 0, Profile = 1, Armed = 2, Dump = 3 };
constexpr int NumModes = 4;

const char *modeName(GraphMode M) {
  switch (M) {
  case Off:
    return "off";
  case Profile:
    return "profile";
  case Armed:
    return "armed";
  default:
    return "dump";
  }
}

/// One full compile-free run under \p Mode; returns stats, optionally
/// wall time, chunk count, and dumped bytes.
Stats graphedRun(CompiledProgram &P, GcStrategy S, GcAlgorithm A,
                 size_t Heap, size_t Nursery, GraphMode Mode,
                 uint64_t *WallNs = nullptr, uint64_t *Chunks = nullptr,
                 uint64_t *Bytes = nullptr) {
  Stats St;
  std::string Err;
  auto Col = P.makeCollector(S, A, Heap, St, &Err, Nursery);
  if (!Col) {
    std::fprintf(stderr, "makeCollector failed: %s\n", Err.c_str());
    std::abort();
  }
  HeapProfiler Prof;
  HeapGraph Graph;
  uint64_t Dumped = 0;
  if (Mode != Off) {
    attachHeapProfiler(P, S, *Col, Prof);
    if (Mode != Profile) {
      // Sink-only destination: prices the pipeline without fs jitter.
      Graph.setChunkSink(
          [&Dumped](const std::string &Chunk) { Dumped += Chunk.size(); });
      Graph.setEvery(Mode == Armed ? 1u << 30 : 1);
      Prof.setHeapGraph(&Graph);
    }
  }
  Vm M(P.Prog, P.Image, *P.Types, *Col, defaultVmOptions(S));
  auto T0 = std::chrono::steady_clock::now();
  RunResult R = M.run();
  auto T1 = std::chrono::steady_clock::now();
  if (!R.Ok) {
    std::fprintf(stderr, "bench run failed: %s\n", R.Error.c_str());
    std::abort();
  }
  if (WallNs)
    *WallNs =
        (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(T1 -
                                                                       T0)
            .count();
  if (Chunks)
    *Chunks = Graph.chunksWritten();
  if (Bytes)
    *Bytes = Dumped;
  return St;
}

/// Samples all modes round-robin (after one untimed warmup) so drift
/// hits every mode equally instead of penalizing whichever ran first.
std::array<uint64_t, NumModes> medianWallNs(CompiledProgram &P,
                                            GcStrategy S, GcAlgorithm A,
                                            size_t Heap, size_t Nursery,
                                            int Reps = 9) {
  graphedRun(P, S, A, Heap, Nursery, Off);
  std::array<std::vector<uint64_t>, NumModes> Ns;
  for (int I = 0; I < Reps; ++I)
    for (GraphMode Mode : {Off, Profile, Armed, Dump}) {
      uint64_t W = 0;
      graphedRun(P, S, A, Heap, Nursery, Mode, &W);
      Ns[Mode].push_back(W);
    }
  std::array<uint64_t, NumModes> Med;
  for (int M = 0; M < NumModes; ++M) {
    std::sort(Ns[M].begin(), Ns[M].end());
    Med[M] = Ns[M][Ns[M].size() / 2];
  }
  return Med;
}

void reportCost() {
  struct Workload {
    const char *Name;
    std::string Src;
    GcAlgorithm Algo;
    size_t Heap, Nursery;
  } Workloads[] = {
      {"listChurn", wl::listChurn(1000, 64), GcAlgorithm::Copying, HeapBytes,
       0},
      {"generationalChurn", wl::generationalChurn(20000, 30, 4000),
       GcAlgorithm::Generational, GenHeapBytes, GenNurseryBytes},
  };

  tableHeader("E17: heap-graph capture cost (compiled tag-free)",
              "wall-clock medians over 9 interleaved runs; 'ratio' is vs "
              "'profile' (the E11 baseline); 'armed' gates captures off "
              "with a huge every-N, 'dump' captures every full/major",
              {"workload", "mode", "median ms", "ratio", "collections",
               "chunks", "dump KiB"});
  bool Pass = true;
  for (Workload &W : Workloads) {
    jsonWorkload(W.Name);
    auto P = compileOrDie(W.Src);
    std::array<uint64_t, NumModes> Med = medianWallNs(
        *P, GcStrategy::CompiledTagFree, W.Algo, W.Heap, W.Nursery);
    for (GraphMode Mode : {Off, Profile, Armed, Dump}) {
      double Ratio =
          Med[Profile] ? (double)Med[Mode] / (double)Med[Profile] : 0.0;
      uint64_t Chunks = 0, Bytes = 0;
      Stats St = graphedRun(*P, GcStrategy::CompiledTagFree, W.Algo, W.Heap,
                            W.Nursery, Mode, nullptr, &Chunks, &Bytes);
      if (JsonSink *Sink = JsonSink::active())
        Sink->record((std::string(gcStrategyName(GcStrategy::CompiledTagFree)) +
                      "+" + modeName(Mode))
                         .c_str(),
                     W.Algo, W.Heap, St, W.Nursery);
      tableCell(W.Name);
      tableCell(modeName(Mode));
      tableCell((double)Med[Mode] / 1e6);
      tableCell(Ratio);
      tableCell(St.get(StatId::GcCollections));
      tableCell(Chunks);
      tableCell((double)Bytes / 1024.0);
      tableEnd();
      if (std::string(W.Name) == "listChurn" && Mode == Armed &&
          Ratio > 1.01)
        Pass = false;
    }
  }
  std::printf(
      "\nE17 acceptance — dumps off (armed) cost <= 1.01x profiling alone "
      "on listChurn: %s\n",
      Pass ? "PASS"
           : "not met this run — the armed path adds one predicted-false "
             "branch per\nfirst-visit and captures nothing; rerun on a "
             "quiet machine before reading\nanything into a miss");
}

std::unique_ptr<CompiledProgram> &churnList() {
  static auto P = compileOrDie(wl::listChurn(1000, 64));
  return P;
}
std::unique_ptr<CompiledProgram> &churnGen() {
  static auto P = compileOrDie(wl::generationalChurn(20000, 30, 4000));
  return P;
}

void BM_ListChurn(benchmark::State &State, GraphMode Mode) {
  for (auto _ : State) {
    uint64_t W = 0, Chunks = 0;
    Stats St = graphedRun(*churnList(), GcStrategy::CompiledTagFree,
                          GcAlgorithm::Copying, HeapBytes, 0, Mode, &W,
                          &Chunks);
    State.counters["collections"] = (double)St.get(StatId::GcCollections);
    State.counters["chunks"] = (double)Chunks;
    benchmark::DoNotOptimize(W);
  }
}

void BM_GenChurn(benchmark::State &State, GraphMode Mode) {
  for (auto _ : State) {
    uint64_t W = 0, Chunks = 0;
    Stats St = graphedRun(*churnGen(), GcStrategy::CompiledTagFree,
                          GcAlgorithm::Generational, GenHeapBytes,
                          GenNurseryBytes, Mode, &W, &Chunks);
    State.counters["collections"] = (double)St.get(StatId::GcCollections);
    State.counters["chunks"] = (double)Chunks;
    benchmark::DoNotOptimize(W);
  }
}

BENCHMARK_CAPTURE(BM_ListChurn, off, Off);
BENCHMARK_CAPTURE(BM_ListChurn, profile, Profile);
BENCHMARK_CAPTURE(BM_ListChurn, armed, Armed);
BENCHMARK_CAPTURE(BM_ListChurn, dump, Dump);
BENCHMARK_CAPTURE(BM_GenChurn, off, Off);
BENCHMARK_CAPTURE(BM_GenChurn, profile, Profile);
BENCHMARK_CAPTURE(BM_GenChurn, armed, Armed);
BENCHMARK_CAPTURE(BM_GenChurn, dump, Dump);

} // namespace

int main(int argc, char **argv) {
  JsonSink Sink("heap_graph", argc, argv);
  reportCost();
  std::printf(
      "\nExpected shape: 'off' is the seed path (no profiler, no graph — "
      "`--heap-dump`\nabsent leaves the tracers untouched); 'armed' tracks "
      "'profile' within noise; 'dump'\npays per capture for edge "
      "recording, dominators, and serialization — visible on\nlistChurn "
      "(every collection is a full) and small on generationalChurn "
      "(minors\nare never captured).\n\n");
  benchmark::Initialize(&argc, argv);
  Sink.runBenchmarksAndWrite();
  return 0;
}
