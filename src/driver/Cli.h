//===- driver/Cli.h - tfgc command-line driver ------------------*- C++ -*-===//
///
/// \file
/// The tfgc command line as a library: a flag table that is the single
/// source of truth for both the parser and the usage text (so a flag
/// cannot be parsed without being documented), an options struct, and an
/// in-process runTfgc() that tools/tfgc.cpp wraps in main() and the test
/// suite calls directly to exercise end-to-end behavior — exit codes,
/// diagnostic flushing on abnormal exit, snapshot emission.
///
/// Exit codes: 0 success, 1 compile/runtime error, 2 usage or I/O error,
/// 3 post-GC verification detected violations.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_DRIVER_CLI_H
#define TFGC_DRIVER_CLI_H

#include "driver/Compiler.h"

#include <string>
#include <vector>

namespace tfgc {

/// One command-line flag. Value flags are spelled --name=VALUE (except
/// -e, which consumes the next argument).
struct CliFlag {
  const char *Name;
  bool HasValue;
  const char *Help;
};

/// The full flag table, in usage order.
const std::vector<CliFlag> &cliFlags();

/// Usage text rendered from cliFlags() — every parseable flag appears.
std::string usageText();

struct CliOptions {
  GcStrategy Strategy = GcStrategy::CompiledTagFree;
  GcAlgorithm Algo = GcAlgorithm::Copying;
  size_t HeapBytes = 1 << 20;
  size_t NurseryBytes = 0;
  bool Stress = false;
  /// --threads: 0 = sequential VM (default); 1 = run main as one task on
  /// the cooperative scheduler; >=2 = N tasks, one OS thread each, with
  /// per-thread TLABs and N-way parallel GC tracing. Nonzero forces
  /// tasking-safe compilation (gc_words at every site, call arguments
  /// traced) so tasks can suspend at arbitrary calls.
  unsigned Threads = 0;
  /// Mutator fast-path knobs (vm/VmExec.inc): --dispatch picks the loop
  /// (Auto = threaded where the toolchain supports computed goto),
  /// --no-fuse disables superinstruction fusion, --float-tag=box forces
  /// every float into a heap box under the tagged model, --no-tailcall
  /// disables frame reuse for self-recursive tail calls.
  DispatchMode Dispatch = DispatchMode::Auto;
  bool Fuse = true;
  bool FloatSelfTag = true;
  bool TailCalls = true;
  bool DumpIr = false;
  bool DumpMeta = false;
  bool ShowStats = false;
  bool GcLog = false;
  bool Verify = false;
  bool InjectVerifyViolation = false;
  bool HeapProfile = false;
  unsigned Retainers = 0;
  /// Typed heap-graph dump stream (support/HeapGraph.h); empty = off.
  /// Implies --heap-profile (the graph rides the profiler's visit hook).
  std::string HeapDumpPath;
  /// 0 means "not given" (default 1 = every eligible full/major
  /// collection); giving it without --heap-dump is a usage error.
  uint64_t HeapDumpEvery = 0;
  bool Monitor = false;
  std::string MonitorOutPath;
  /// 0 means "not given" (the default of 50 is applied in runTfgc);
  /// giving it without --monitor-out is a usage error.
  uint64_t MonitorPeriodMs = 0;
  uint64_t MonitorSampleSteps = 512;
  /// Live introspection server: -1 = off, 0 = ephemeral port (the bound
  /// port is printed to stderr), else the port to bind on 127.0.0.1.
  int ServePort = -1;
  /// Keep serving the final epoch for this long after the run (so
  /// scrapers can pull end-of-run totals); requires --serve.
  uint64_t ServeLingerMs = 0;
  /// Write the final epoch as Prometheus text (abnormal exits included).
  std::string MetricsOutPath;
  /// Binary flight recording (support/FlightRecorder.h); empty = off.
  std::string FlightOutPath;
  /// 0 means "not given" (the default of 64 KiB per ring is applied in
  /// runTfgc); giving it without --flight-out is a usage error.
  uint64_t FlightBufferKb = 0;
  std::string HeapSnapshotPath;
  std::string TraceOutPath;
  std::string StatsJsonPath;
  CompileOptions Compile;
  std::string Source;
  bool HaveSource = false;
};

/// Parses \p Args (argv[1..]) into \p O. Returns false with \p Err set on
/// a bad flag/missing source; sets \p HelpOnly when --help was given (the
/// caller prints usageText() and exits 0). File operands are read here.
bool parseCli(const std::vector<std::string> &Args, CliOptions &O,
              std::string &Err, bool &HelpOnly);

/// Compiles and runs per \p O; writes program output to stdout and
/// diagnostics to stderr. All requested diagnostic artifacts (trace,
/// stats JSON, heap snapshot) are flushed *before* the exit code is
/// decided, so a failing run still leaves them on disk.
int runTfgc(const CliOptions &O);

} // namespace tfgc

#endif // TFGC_DRIVER_CLI_H
