file(REMOVE_RECURSE
  "CMakeFiles/tfgc_driver.dir/Compiler.cpp.o"
  "CMakeFiles/tfgc_driver.dir/Compiler.cpp.o.d"
  "libtfgc_driver.a"
  "libtfgc_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfgc_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
