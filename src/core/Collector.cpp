//===- core/Collector.cpp -------------------------------------------------===//

#include "core/Collector.h"
#include "core/Space.h"

#include <cassert>
#include <chrono>

using namespace tfgc;

const char *tfgc::gcStrategyName(GcStrategy S) {
  switch (S) {
  case GcStrategy::Tagged:             return "tagged";
  case GcStrategy::CompiledTagFree:    return "compiled-tagfree";
  case GcStrategy::InterpretedTagFree: return "interpreted-tagfree";
  case GcStrategy::AppelTagFree:       return "appel-tagfree";
  }
  return "?";
}

Collector::Collector(ValueModel Model, GcAlgorithm Algo, size_t HeapBytes,
                     Stats &St)
    : Model(Model), Algo(Algo), St(St) {
  if (Algo == GcAlgorithm::Copying)
    Copying = std::make_unique<Heap>(HeapBytes);
  else
    Ms = std::make_unique<MarkSweepHeap>(HeapBytes);
}

Word *Collector::tryAllocatePayload(size_t PayloadWords, ObjKind Kind) {
  assert(PayloadWords > 0);
  size_t Total =
      Model == ValueModel::Tagged ? PayloadWords + 1 : PayloadWords;
  Word *P = Copying ? Copying->tryAllocate(Total) : Ms->tryAllocate(Total);
  if (!P)
    return nullptr;
  St.add(StatId::HeapObjectsAllocated);
  if (Model == ValueModel::Tagged) {
    P[0] = makeHeader((uint32_t)PayloadWords, Kind);
    return P + 1;
  }
  return P;
}

void Collector::collect(RootSet &Roots, size_t NeedPayloadWords) {
  size_t Need = NeedPayloadWords + (Model == ValueModel::Tagged ? 1 : 0);
  auto Start = std::chrono::steady_clock::now();

  if (Copying) {
    size_t Capacity = Copying->capacityBytes() / sizeof(Word);
    for (;;) {
      Copying->beginCollection(Capacity);
      CopyingSpace Sp(*Copying, Model == ValueModel::Tagged);
      traceRoots(Roots, Sp);
      Copying->endCollection();
      if (Copying->freeWords() >= Need)
        break;
      // Not enough reclaimed: grow and collect again (the roots now live
      // in the new space, which becomes from-space for the next round).
      size_t UsedWords = Copying->usedBytes() / sizeof(Word);
      Capacity = Capacity * 2 > UsedWords + Need ? Capacity * 2
                                                 : (UsedWords + Need) * 2;
      St.add(StatId::GcHeapGrowths);
    }
  } else {
    Ms->beginMark();
    MarkSpace Sp(*Ms, Model == ValueModel::Tagged);
    traceRoots(Roots, Sp);
    size_t Reclaimed = Ms->sweep();
    St.add(StatId::GcBytesReclaimed, Reclaimed);
    while (!Ms->canAllocate(Need)) {
      Ms->addSegment();
      St.add(StatId::GcHeapGrowths);
    }
  }

  auto Ns = (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - Start)
                .count();
  St.add(StatId::GcCollections);
  St.add(StatId::GcPauseNsTotal, Ns);
  St.max(StatId::GcPauseNsMax, Ns);

  if (VerifyAfterGc) {
    // Note: the verification pass re-runs the frame routines, so work
    // counters (objects visited, trace steps) double while it is on —
    // enable it in correctness tests only.
    CheckSpace Check(
        [this](Word P) {
          return Copying ? Copying->contains(P) : Ms->contains(P);
        },
        Model == ValueModel::Tagged);
    traceRoots(Roots, Check);
    St.add(StatId::GcVerifyPasses);
    St.add(StatId::GcVerifyViolations, Check.violations());
  }
}

size_t Collector::heapUsedBytes() const {
  return Copying ? Copying->usedBytes() : Ms->usedBytes();
}

size_t Collector::heapCapacityBytes() const {
  return Copying ? Copying->capacityBytes() : Ms->capacityBytes();
}

uint64_t Collector::bytesAllocatedTotal() const {
  return Copying ? Copying->bytesAllocatedTotal()
                 : Ms->bytesAllocatedTotal();
}
