# Empty dependencies file for tfgc_ir.
# This may be replaced when dependencies are built.
