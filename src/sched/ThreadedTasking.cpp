//===- sched/ThreadedTasking.cpp ------------------------------------------===//

#include "sched/ThreadedTasking.h"

#include <cassert>
#include <thread>

using namespace tfgc;

ThreadedRuntime::ThreadedRuntime(const IrProgram &Prog, const CodeImage &Img,
                                 TypeContext &Types, Collector &Col,
                                 TaskingOptions Opts)
    : Prog(Prog), Img(Img), Types(Types), Col(Col), Opts(Opts) {
  Col.setParallelMutators(true);
  DecodeConfig DC;
  DC.Model = Col.model();
  DC.Fuse = Opts.FuseSuperinstructions;
  DC.FloatSelfTag = Opts.FloatSelfTag;
  DC.TailCalls = Opts.TailCalls;
  Decoded = decodeProgram(Prog, DC);
}

void ThreadedRuntime::spawnInt(FuncId Entry,
                               const std::vector<int64_t> &Args) {
  assert(!Coord && "spawn after runAll");
  Task T;
  T.TaskTlab = std::make_unique<Tlab>();
  T.Label = "mutator-" + std::to_string(Tasks.size());
  VmOptions VO;
  VO.ZeroFrames = Opts.ZeroFrames;
  VO.MaxSteps = Opts.MaxTotalSteps;
  VO.Checks = Opts.Policy;
  VO.Coord = this;
  VO.TaskIndex = (uint32_t)Tasks.size();
  VO.Dispatch = Opts.Dispatch;
  VO.FuseSuperinstructions = Opts.FuseSuperinstructions;
  VO.FloatSelfTag = Opts.FloatSelfTag;
  VO.TailCalls = Opts.TailCalls;
  VO.Decoded = &Decoded;
  VO.ThreadTlab = T.TaskTlab.get();
  // Constructing the VM here claims shard TaskIndex+1 on the launching
  // thread — the shard vector is frozen before any mutator thread starts.
  T.Machine = std::make_unique<Vm>(Prog, Img, Types, Col, VO);
  std::vector<Word> Words;
  for (int64_t A : Args)
    Words.push_back(Col.model() == ValueModel::Tagged ? tagInt(A) : (Word)A);
  T.Machine->start(Entry, Words);
  Tasks.push_back(std::move(T));
  Col.stats().add(StatId::TaskSpawned);
}

void ThreadedRuntime::requestGc(size_t NeedWords) {
  assert(Coord && "allocation before runAll");
  // Exactly one arm per handshake cycle owns the request counter, so
  // task.gc_requests == task.world_stops at the end of a clean run (the
  // no-lost-handshakes invariant the stress test checks). The shard-0
  // write is ordered against the collector's by the coordinator mutex:
  // this thread arms, then parks; the pause only starts after the park.
  if (Coord->requestStop(NeedWords))
    Col.stats().add(StatId::TaskGcRequests);
}

void ThreadedRuntime::collectWorld(size_t NeedWords, uint64_t StopDelayNs) {
  RootSet Roots;
  for (Task &T : Tasks)
    if (!T.Done)
      Roots.Stacks.push_back(&T.Machine->mutableStack());
  // Retire every TLAB before the spaces move: the collection reuses the
  // nursery under the parked windows, and the owners refill from the
  // fresh cursor when they resume. Finished tasks' TLABs are inert.
  for (Task &T : Tasks)
    T.TaskTlab->reset();
  Col.telemetry().recordWorldStopDelay(StopDelayNs);
  // With a live scraper attached, refresh the per-task view and the heap
  // gauges before the collector's epoch fold (inside this same pause)
  // snapshots them; every mutator is parked or finished, so their
  // counters are mutex-ordered ahead of these reads.
  if (Col.epochAggregator()) {
    publishTaskStats();
    Stats &St = Col.stats();
    St.set(StatId::HeapUsedBytes, Col.heapUsedBytes());
    St.set(StatId::HeapCapacityBytes, Col.heapCapacityBytes());
    St.set(StatId::HeapBytesAllocatedTotal, Col.bytesAllocatedTotal());
  }
  Col.collect(Roots, NeedWords ? NeedWords : 1);
  Col.stats().add(StatId::TaskWorldStops);
}

void ThreadedRuntime::threadMain(size_t Idx) {
  Task &T = Tasks[Idx];
  Stats::setThreadLabel(T.Label.c_str());
  auto Collect = [this](size_t Need, uint64_t DelayNs) {
    collectWorld(Need, DelayNs);
  };
  for (;;) {
    StepResult R = T.Machine->exec(Opts.TimeSliceSteps);
    if (R == StepResult::Ran)
      continue;
    if (R == StepResult::BlockedOnGc) {
      Coord->park(
          [&](uint64_t DelayNs) {
            T.StopDelayHist.record(DelayNs);
            if (Monitor *M = Col.monitor())
              M->recordTaskStopDelay((uint32_t)Idx, DelayNs);
          },
          Collect);
      continue;
    }
    // Done or Failed. Render the result while this thread still counts
    // as live: no pause can start until it parks or finishes, so the
    // heap cannot move under renderResult().
    T.Machine->flushHotCounters();
    TaskResult &TR = Results[Idx];
    TR.Output = T.Machine->output();
    if (R == StepResult::Done) {
      TR.Ok = true;
      TR.Value = T.Machine->renderResult();
    } else {
      TR.Error = T.Machine->error();
    }
    T.Done = true;
    Coord->threadFinished(Collect);
    return;
  }
}

bool ThreadedRuntime::runAll() {
  Results.assign(Tasks.size(), TaskResult{});
  if (Tasks.empty())
    return true;
  Coord = std::make_unique<SafepointCoordinator>((unsigned)Tasks.size());
  std::vector<std::thread> Threads;
  Threads.reserve(Tasks.size());
  for (size_t I = 0; I < Tasks.size(); ++I)
    Threads.emplace_back([this, I] { threadMain(I); });
  for (std::thread &Th : Threads)
    Th.join();

  // The joins are the final safepoint: every shard is quiescent, so the
  // gauges, the telemetry-derived stats and the per-task view can be
  // published from this thread like the sequential VM does at run end.
  Stats &St = Col.stats();
  St.set(StatId::HeapUsedBytes, Col.heapUsedBytes());
  St.set(StatId::HeapCapacityBytes, Col.heapCapacityBytes());
  St.set(StatId::HeapBytesAllocatedTotal, Col.bytesAllocatedTotal());
  Col.publishTelemetryStats();
  publishTaskStats();

  bool AllOk = true;
  for (const TaskResult &R : Results)
    if (!R.Ok)
      AllOk = false;
  return AllOk;
}

void ThreadedRuntime::publishTaskStats() {
  Stats &St = Col.stats();
  Stats::SafepointScope Scope(St);
  for (size_t I = 0; I < Tasks.size(); ++I) {
    std::string Base = "task." + std::to_string(I);
    St.set(Base + ".mutator_steps", Tasks[I].Machine->steps());
    St.set(Base + ".tlab_refills", Tasks[I].TaskTlab->Refills);
    St.set(Base + ".tlab_alloc_words", Tasks[I].TaskTlab->AllocatedWords);
    const LogHistogram &H = Tasks[I].StopDelayHist;
    if (!H.count())
      continue;
    St.set(Base + ".world_stop_delays", H.count());
    St.set(Base + ".world_stop_delay_ns_p50", H.percentile(50));
    St.set(Base + ".world_stop_delay_ns_p90", H.percentile(90));
    St.set(Base + ".world_stop_delay_ns_p99", H.percentile(99));
  }
  St.set("sched.handshake_epochs", Coord ? Coord->epoch() : 0);
}
