file(REMOVE_RECURSE
  "CMakeFiles/bench_tasking.dir/bench_tasking.cpp.o"
  "CMakeFiles/bench_tasking.dir/bench_tasking.cpp.o.d"
  "bench_tasking"
  "bench_tasking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tasking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
