//===- core/Collector.cpp -------------------------------------------------===//

#include "core/Collector.h"
#include "core/Space.h"
#include "gcmeta/CompiledRoutines.h"
#include "sched/WorkSteal.h"
#include "support/FlightRecorder.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

using namespace tfgc;

namespace {
uint64_t nsSince(std::chrono::steady_clock::time_point Start) {
  return (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - Start)
      .count();
}
} // namespace

const char *tfgc::gcAlgorithmName(GcAlgorithm A) {
  switch (A) {
  case GcAlgorithm::Copying:      return "copying";
  case GcAlgorithm::MarkSweep:    return "marksweep";
  case GcAlgorithm::Generational: return "generational";
  }
  return "?";
}

const char *tfgc::gcStrategyName(GcStrategy S) {
  switch (S) {
  case GcStrategy::Tagged:             return "tagged";
  case GcStrategy::CompiledTagFree:    return "compiled-tagfree";
  case GcStrategy::InterpretedTagFree: return "interpreted-tagfree";
  case GcStrategy::AppelTagFree:       return "appel-tagfree";
  }
  return "?";
}

Collector::Collector(ValueModel Model, GcAlgorithm Algo, size_t HeapBytes,
                     Stats &St, size_t NurseryBytes)
    : Model(Model), Algo(Algo), St(St) {
  if (Algo == GcAlgorithm::Copying) {
    Copying = std::make_unique<Heap>(HeapBytes);
  } else if (Algo == GcAlgorithm::MarkSweep) {
    Ms = std::make_unique<MarkSweepHeap>(HeapBytes);
  } else {
    size_t Nursery = NurseryBytes ? NurseryBytes : HeapBytes / 8;
    Nursery = std::min(Nursery, HeapBytes);
    Gen = std::make_unique<GenHeap>(HeapBytes - Nursery, Nursery);
  }
}

Word *Collector::tryAllocatePayload(size_t PayloadWords, ObjKind Kind,
                                    Tlab *T, StatsShard *Sh) {
  assert(PayloadWords > 0);
  size_t Total =
      Model == ValueModel::Tagged ? PayloadWords + 1 : PayloadWords;
  Word *P;
  if (T && !Ms) {
    // Threaded bump-heap path: thread-local bump, CAS refill on miss.
    P = T->bump(Total);
    if (!P) {
      Word *Top, *End;
      bool Ok = Copying
                    ? Copying->refillTlab(Total, Tlab::ChunkWords, Top, End)
                    : Gen->refillTlab(Total, Tlab::ChunkWords, Top, End);
      if (!Ok)
        return nullptr;
      T->Top = Top;
      T->End = End;
      ++T->Refills;
      if (T->Flight) [[unlikely]]
        T->Flight->record(FlightEventType::TlabRefill, 0,
                          (uint64_t)(End - Top) * sizeof(Word), T->Refills);
      P = T->bump(Total);
    }
  } else if (Ms && ParallelMutators) {
    // Mark-sweep has free lists, not a bump cursor: serialize.
    std::lock_guard<std::mutex> Lock(MutatorMutex);
    P = Ms->tryAllocate(Total);
  } else {
    P = Copying ? Copying->tryAllocate(Total)
        : Ms    ? Ms->tryAllocate(Total)
                : Gen->tryAllocate(Total);
  }
  if (!P)
    return nullptr;
  if (Sh)
    Sh->add(StatId::HeapObjectsAllocated);
  else
    St.add(StatId::HeapObjectsAllocated);
  if (Model == ValueModel::Tagged) {
    P[0] = makeHeader((uint32_t)PayloadWords, Kind);
    return P + 1;
  }
  return P;
}

void Collector::setFlightRecorder(FlightRecorder *F) {
  Flight = F;
  Tel.setFlightRing(F ? &F->gcRing() : nullptr);
}

void Collector::setGcThreads(unsigned N) {
  GcThreads = N ? N : 1;
  bool Par = GcThreads > 1;
  if (Copying)
    Copying->setParallelTracing(Par);
  if (Gen)
    Gen->setParallelTracing(Par);
}

bool Collector::traceStacksParallel(
    RootSet &Roots, Space &Sp,
    const std::function<void(TaskStack &Stack, Space &WorkerSp,
                             Stats &WorkerSt, CensusCounts &WorkerCensus)>
        &TraceStack) {
  unsigned NumStacks = (unsigned)Roots.Stacks.size();
  if (GcThreads < 2 || Prof || NumStacks < 2)
    return false;
  unsigned K = std::min(GcThreads, NumStacks);

  // A worker's private world: a sibling Space targeting the same heap
  // through the claim/publish protocol, a counter domain, a census
  // accumulator, and a deque of stack indices. unique_ptr because the
  // deque holds atomics (not movable).
  struct WorkerCtx {
    std::unique_ptr<Space> Sp;
    Stats St;
    CensusCounts Census;
    WorkStealDeque<uint32_t> Deque;
  };
  std::vector<std::unique_ptr<WorkerCtx>> Workers;
  for (unsigned W = 0; W < K; ++W) {
    auto C = std::make_unique<WorkerCtx>();
    C->Sp = Sp.makeWorkerSpace();
    if (!C->Sp)
      return false; // CheckSpace / unarmed heap: serial only.
    Workers.push_back(std::move(C));
  }
  // Seed round-robin before any thread exists (owner-only push is safe:
  // nobody steals yet).
  for (uint32_t I = 0; I < NumStacks; ++I)
    Workers[I % K]->Deque.push(I);

  auto RunWorker = [&](unsigned W) {
    WorkerCtx &C = *Workers[W];
    // Each worker is the sole producer of its own flight ring (drained
    // later, after the joins, by the end-of-collection drain).
    FlightRing *FR = Flight ? &Flight->workerRing(W) : nullptr;
    if (FR)
      FR->record(FlightEventType::TraceWorkerBegin, W);
    uint64_t Steals = 0;
    for (;;) {
      uint32_t Idx;
      bool Ran = false;
      while (C.Deque.pop(Idx)) {
        Ran = true;
        TraceStack(*Roots.Stacks[Idx], *C.Sp, C.St, C.Census);
      }
      bool Any = false;
      for (unsigned D = 1; D < K; ++D) {
        WorkStealDeque<uint32_t> &Victim = Workers[(W + D) % K]->Deque;
        if (Victim.steal(Idx)) {
          C.St.add(StatId::GcStackSteals);
          ++Steals;
          TraceStack(*Roots.Stacks[Idx], *C.Sp, C.St, C.Census);
          Ran = Any = true;
          break;
        }
        if (!Victim.emptyApprox())
          Any = true; // Lost a race to another thief; sweep again.
      }
      if (!Ran && !Any)
        break;
    }
    if (FR)
      FR->record(FlightEventType::TraceWorkerEnd, W, Steals);
  };

  std::vector<std::thread> Threads;
  Threads.reserve(K - 1);
  for (unsigned W = 1; W < K; ++W)
    Threads.emplace_back([&RunWorker, W] {
      Stats::setThreadLabel("gc-worker");
      RunWorker(W);
    });
  RunWorker(0);
  for (std::thread &Th : Threads)
    Th.join();

  // Single-threaded again (joins give happens-before): merge each
  // worker's space-local tallies, counters, and census.
  for (auto &C : Workers) {
    Sp.mergeWorker(*C->Sp);
    Stats::mergeShard(St.baseShard(), C->St.baseShard());
    Tel.censusBulk(C->Census);
  }
  St.add(StatId::GcParallelTraces);
  St.max(StatId::GcParallelWorkers, K);
  return true;
}

void Collector::collect(RootSet &Roots, size_t NeedPayloadWords) {
  size_t Need = NeedPayloadWords + (Model == ValueModel::Tagged ? 1 : 0);
  if (Gen) {
    collectGenerational(Roots, Need);
    return;
  }
  Tel.beginCollection();
  {
    // The RootScan span stays open for the whole collection so the phase
    // spans partition the pause: finer spans (pointer reversal, frame
    // dispatch, closure build, copy/sweep, verify) nest inside it and
    // steal their time from it, and whatever is in none of them — loop
    // control, counter updates — stays charged to RootScan. The stats
    // clock starts inside the span so its read is covered, not slack.
    // The profiler's begin (side-table merge + index build) runs inside
    // the span for the same reason: its time is pause, so it must be
    // covered by a phase.
    PhaseScope Outer(&Tel, GcPhase::RootScan);
    auto Start = std::chrono::steady_clock::now();
    if (Prof)
      Prof->beginCollection(GcEventKind::Full, nullptr);

    if (Copying) {
      size_t Capacity = Copying->capacityBytes() / sizeof(Word);
      for (bool FirstRound = true;; FirstRound = false) {
        if (!FirstRound && Prof)
          Prof->beginTraceRound();
        {
          PhaseScope P(&Tel, GcPhase::CopySweep);
          Copying->beginCollection(Capacity);
        }
        CopyingSpace Sp(*Copying, Model == ValueModel::Tagged);
        traceRoots(Roots, Sp);
        {
          PhaseScope P(&Tel, GcPhase::CopySweep);
          Copying->endCollection();
        }
        if (Copying->freeWords() >= Need)
          break;
        // Not enough reclaimed: grow and collect again (the roots now live
        // in the new space, which becomes from-space for the next round).
        size_t UsedWords = Copying->usedBytes() / sizeof(Word);
        Capacity = Capacity * 2 > UsedWords + Need ? Capacity * 2
                                                   : (UsedWords + Need) * 2;
        St.add(StatId::GcHeapGrowths);
      }
    } else {
      {
        PhaseScope P(&Tel, GcPhase::CopySweep);
        Ms->beginMark();
      }
      MarkSpace Sp(*Ms, Model == ValueModel::Tagged);
      traceRoots(Roots, Sp);
      size_t Reclaimed;
      {
        PhaseScope P(&Tel, GcPhase::CopySweep);
        Reclaimed = Ms->sweep();
        while (!Ms->canAllocate(Need)) {
          Ms->addSegment();
          St.add(StatId::GcHeapGrowths);
        }
      }
      St.add(StatId::GcBytesReclaimed, Reclaimed);
    }

    // The pause counters exclude the diagnostic verify pass (historical
    // behavior); the telemetry event includes it as its own phase.
    auto Ns = (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
    St.add(StatId::GcCollections);
    St.add(StatId::GcPauseNsTotal, Ns);
    St.max(StatId::GcPauseNsMax, Ns);

    if (VerifyAfterGc)
      verifyPass(Roots);

    if (Prof && Prof->enabled()) {
      uint64_t Covered = Copying ? (uint64_t)Copying->usedBytes()
                                 : Ms->liveWordsAfterSweep() * sizeof(Word);
      Prof->finishCollection(Covered, nullptr,
                             Prof->wantsRoots()
                                 ? captureProfilerRoots(Roots)
                                 : std::vector<HeapRoot>{});
    }

    // Finish while the RootScan span is still open: finishCollection's
    // one clock read closes the span AND stamps the pause, leaving zero
    // end-of-collection slack (Outer's destructor then no-ops because
    // the collection is already closed).
    Tel.finishCollection(Copying ? Copying->survivorWords()
                                 : Ms->liveWordsAfterSweep(),
                         heapCapacityBytes());
  }
  epochSafepoint();
  // World still stopped: every ring's producer is parked or joined, so
  // the drain reads quiescent rings and the chunk lands globally ordered.
  if (Flight)
    Flight->maybeDrain();
}

std::vector<HeapRoot> Collector::captureProfilerRoots(RootSet &Roots) const {
  std::vector<HeapRoot> Out;
  for (TaskStack *Stack : Roots.Stacks)
    for (const FrameInfo &F : Stack->Frames) {
      const Word *Slots = Stack->Slots.data() + F.SlotBase;
      for (uint32_t I = 0; I < F.NumSlots; ++I) {
        Word V = Slots[I];
        if (Model == ValueModel::Tagged ? !isTaggedPointer(V) : V == 0)
          continue;
        Out.push_back({F.FuncId, I, V});
      }
    }
  return Out;
}

void Collector::verifyPass(RootSet &Roots) {
  // Note: the verification pass re-runs the frame routines, so work
  // counters (objects visited, trace steps) double while it is on —
  // enable it in correctness tests only.
  PhaseScope V(&Tel, GcPhase::Verify);
  // The re-trace must not re-count census objects or re-enter the
  // tracing phases; its whole duration is charged to Verify. The heap
  // profiler pauses for the same reason: its per-collection tallies must
  // see each live object exactly once.
  Tel.setPaused(true);
  if (Prof)
    Prof->setPaused(true);
  CheckSpace Check(
      [this](Word P) {
        return Copying ? Copying->contains(P)
               : Ms    ? Ms->contains(P)
                       : Gen->contains(P);
      },
      Model == ValueModel::Tagged);
  traceRoots(Roots, Check);
  Tel.setPaused(false);
  if (Prof)
    Prof->setPaused(false);
  St.add(StatId::GcVerifyPasses);
  St.add(StatId::GcVerifyViolations, Check.violations());
  if (InjectVerifyViolation)
    St.add(StatId::GcVerifyViolations, 1);
}

void Collector::recordRemset(Word *Slot, Type *Ty) {
  // Concurrent mutators race here (the fast-path filters in writeBarrier
  // are read-only); cooperative runs never contend.
  std::unique_lock<std::mutex> Lock(MutatorMutex, std::defer_lock);
  if (ParallelMutators)
    Lock.lock();
  if (Model != ValueModel::Tagged && (!Ty || !isGroundType(Ty))) {
    // Without headers a slot holding a non-ground-typed value cannot be
    // rescanned standalone (its layout depends on a frame's type-GC
    // environment, which the barrier does not have). Rare in practice:
    // mutation opcodes are monomorphic in every workload we generate.
    // Escalate the next collection to a full major, which needs no
    // remembered set.
    RemsetImprecise = true;
    return;
  }
  if (!RemsetIndex.insert(Slot).second)
    return; // Same tenured slot already buffered this cycle.
  Remset.push_back({Slot, Ty});
  St.add(StatId::GcRemsetEntries);
}

void Collector::pruneRemset() {
  // After a non-promoting minor every traced entry was patched to the
  // survivor's new address, so entries stay valid; drop the ones whose
  // slot no longer holds a young pointer (the store was overwritten, or
  // it was a conservative false positive on an unboxed value).
  size_t Keep = 0;
  for (const RemsetEntry &E : Remset) {
    Word V = *E.Slot;
    bool Young = Model == ValueModel::Tagged
                     ? isTaggedPointer(V) && Gen->inNursery(V)
                     : Gen->inNursery(V);
    if (Young)
      Remset[Keep++] = E;
  }
  Remset.resize(Keep);
  RemsetIndex.clear();
  for (const RemsetEntry &E : Remset)
    RemsetIndex.insert(E.Slot);
}

void Collector::collectGenerational(RootSet &Roots, size_t Need) {
  // A minor collection is only sound/useful when (a) the remembered set
  // is precise, (b) the request fits a freshly emptied nursery, and (c)
  // the tenured space could absorb the whole nursery fill (so en-masse
  // promotion and remset-target promotion cannot overflow mid-trace).
  bool NeedMajor = RemsetImprecise || Need > Gen->nurseryCapacityWords() ||
                   Gen->tenuredFreeWords() < Gen->nurseryUsedWords();
  if (!NeedMajor) {
    ++MinorsSincePromotion;
    bool Promote = MinorsSincePromotion >= PromoteEvery;
    minorCollection(Roots, Promote);
    if (Promote)
      MinorsSincePromotion = 0;
    // Nursery still too full (long-lived young data): escalate.
    NeedMajor = Gen->nurseryFreeWords() < Need;
  }
  if (NeedMajor)
    majorCollection(Roots, Need);
  // One epoch per world pause, even when a minor escalated into a major.
  epochSafepoint();
  if (Flight)
    Flight->maybeDrain();
}

void Collector::minorCollection(RootSet &Roots, bool Promote) {
  Tel.beginCollection(GcEventKind::Minor);
  // Same span discipline as collect(): RootScan stays open for the whole
  // pause, finer phases nest inside it (the profiler's side-table merge
  // included), finishCollection closes both.
  PhaseScope Outer(&Tel, GcPhase::RootScan);
  auto Start = std::chrono::steady_clock::now();
  if (Prof)
    Prof->beginCollection(GcEventKind::Minor,
                          [this](Word W) { return Gen->inTenured(W); });

  uint64_t YoungBefore =
      LiveYoungObjects + (St.get(StatId::HeapObjectsAllocated) - AllocSnapshot);

  {
    PhaseScope P(&Tel, GcPhase::CopySweep);
    Gen->beginMinor();
  }
  GenMinorSpace Sp(*Gen, Model == ValueModel::Tagged, Promote);
  traceRoots(Roots, Sp);
  {
    PhaseScope P(&Tel, GcPhase::RemsetScan);
    traceRemset(Sp);
  }
  {
    PhaseScope P(&Tel, GcPhase::CopySweep);
    Gen->endMinor();
  }

  if (Promote) {
    // En-masse promotion leaves the nursery empty, so no old→young edge
    // survives and the remembered set restarts from scratch.
    Remset.clear();
    RemsetIndex.clear();
  } else {
    pruneRemset();
  }

  PromotedObjectsTotal += Sp.promotedObjects();
  DeadYoungObjectsTotal +=
      YoungBefore - (Sp.promotedObjects() + Sp.survivorObjects());
  LiveYoungObjects = Sp.survivorObjects();
  AllocSnapshot = St.get(StatId::HeapObjectsAllocated);
  if (Sp.promotedWords())
    St.add(StatId::GcPromotedWords, Sp.promotedWords());

  uint64_t Ns = nsSince(Start);
  St.add(StatId::GcCollections);
  St.add(StatId::GcMinorCollections);
  St.add(StatId::GcPauseNsTotal, Ns);
  St.max(StatId::GcPauseNsMax, Ns);

  if (VerifyAfterGc)
    verifyPass(Roots);

  if (Prof && Prof->enabled()) {
    // A minor collection traces the young generation only: its snapshot
    // covers survivors + promotions, and the side-table entries of
    // untraced tenured objects carry over to the next collection.
    uint64_t Covered =
        (Sp.survivorWords() + Sp.promotedWords()) * sizeof(Word);
    Prof->finishCollection(
        Covered, [this](Word W) { return Gen->inTenured(W); }, {});
  }

  Tel.finishCollection(Gen->nurseryUsedWords() + Gen->tenuredUsedWords(),
                       heapCapacityBytes());
}

void Collector::majorCollection(RootSet &Roots, size_t Need) {
  Tel.beginCollection(GcEventKind::Major);
  PhaseScope Outer(&Tel, GcPhase::RootScan);
  auto Start = std::chrono::steady_clock::now();
  if (Prof)
    Prof->beginCollection(GcEventKind::Major,
                          [this](Word W) { return Gen->inTenured(W); });

  uint64_t YoungBefore =
      LiveYoungObjects + (St.get(StatId::HeapObjectsAllocated) - AllocSnapshot);
  size_t CapacityBefore = heapCapacityBytes();

  // Size the to-space from the live upper bound (everything currently
  // resident), with headroom for the pending request and enough tenured
  // free space that future minors can promote a full nursery.
  size_t LiveUpper = Gen->tenuredUsedWords() + Gen->nurseryUsedWords();
  size_t Cap = std::max(2 * LiveUpper,
                        LiveUpper + 2 * Gen->nurseryCapacityWords());
  Cap = std::max(Cap, LiveUpper + 2 * Need);

  {
    PhaseScope P(&Tel, GcPhase::CopySweep);
    Gen->beginMajor(Cap);
  }
  GenMajorSpace Sp(*Gen, Model == ValueModel::Tagged);
  traceRoots(Roots, Sp);
  {
    PhaseScope P(&Tel, GcPhase::CopySweep);
    Gen->endMajor();
  }

  // Everything young was either evacuated (now old) or died; the nursery
  // is empty and every remset entry is stale.
  Remset.clear();
  RemsetIndex.clear();
  RemsetImprecise = false;
  MinorsSincePromotion = 0;

  PromotedObjectsTotal += Sp.youngEvacuatedObjects();
  DeadYoungObjectsTotal += YoungBefore - Sp.youngEvacuatedObjects();
  LiveYoungObjects = 0;
  AllocSnapshot = St.get(StatId::HeapObjectsAllocated);
  if (Sp.youngEvacuatedWords())
    St.add(StatId::GcPromotedWords, Sp.youngEvacuatedWords());

  if (Gen->nurseryFreeWords() < Need)
    Gen->growNursery(2 * Need);
  if (heapCapacityBytes() > CapacityBefore)
    St.add(StatId::GcHeapGrowths);

  uint64_t Ns = nsSince(Start);
  St.add(StatId::GcCollections);
  St.add(StatId::GcMajorCollections);
  St.add(StatId::GcPauseNsTotal, Ns);
  St.max(StatId::GcPauseNsMax, Ns);

  if (VerifyAfterGc)
    verifyPass(Roots);

  if (Prof && Prof->enabled())
    Prof->finishCollection((uint64_t)Gen->usedBytes(), nullptr,
                           Prof->wantsRoots()
                               ? captureProfilerRoots(Roots)
                               : std::vector<HeapRoot>{});

  Tel.finishCollection(Gen->nurseryUsedWords() + Gen->tenuredUsedWords(),
                       heapCapacityBytes());
}

void Collector::epochSafepoint() {
  if (!Agg)
    return;
  // The mutators are stopped (this runs inside the collection pause), so
  // publishing derived stats and folding the shards is race-free. The
  // fold itself is allocation-free and runs at every pause; the derived
  // gauges (percentiles, phase/census breakdowns) build dynamic string
  // names, so mid-run they refresh at most every 10 ms — a /metrics
  // scrape sees counters from *this* pause and gauges at most one
  // scrape-interval stale. Run-end artifacts always get a full publish
  // (Vm::flushCounters), so final totals are exact.
  auto Now = std::chrono::steady_clock::now();
  if (LastDerivedPublish.time_since_epoch().count() == 0 ||
      Now - LastDerivedPublish >= std::chrono::milliseconds(10)) {
    publishTelemetryStats();
    LastDerivedPublish = Now;
  }
  Agg->fold(SafepointKind::Collection);
}

void Collector::publishTelemetryStats() {
  // Derived stats use dynamic string names (phase/census breakdowns are
  // data-dependent); every caller is at a safepoint, so legalize them.
  Stats::SafepointScope Scope(St);
  const LogHistogram &Pause = Tel.pauseHistogram();
  if (Pause.count()) {
    St.set(StatId::GcPauseNsP50, Pause.percentile(50));
    St.set(StatId::GcPauseNsP90, Pause.percentile(90));
    St.set(StatId::GcPauseNsP99, Pause.percentile(99));
  }
  for (size_t I = 0; I < NumGcPhases; ++I)
    if (uint64_t Total = Tel.phaseNsTotal((GcPhase)I))
      St.set(std::string("gc.phase_") + gcPhaseName((GcPhase)I) + "_ns",
             Total);
  for (size_t I = 0; I < NumCensusKinds; ++I) {
    CensusKind K = (CensusKind)I;
    if (uint64_t Objects = Tel.censusObjectsTotal(K)) {
      std::string Base = std::string("gc.census_") + censusKindName(K);
      St.set(Base + "_objects", Objects);
      St.set(Base + "_words", Tel.censusWordsTotal(K));
    }
  }
  for (GcEventKind K : {GcEventKind::Minor, GcEventKind::Major}) {
    const LogHistogram &H = Tel.pauseHistogram(K);
    if (!H.count())
      continue;
    std::string Base = std::string("gc.") + gcEventKindName(K);
    St.set(Base + "_pause_ns_p50", H.percentile(50));
    St.set(Base + "_pause_ns_p90", H.percentile(90));
    St.set(Base + "_pause_ns_p99", H.percentile(99));
  }
  if (Gen) {
    // Young-object census: allocated == promoted + dead + resident holds
    // at every flush point (resident = survivors at the last collection
    // plus allocations since).
    St.set("gc.promoted_objects", PromotedObjectsTotal);
    St.set("gc.young_dead_objects", DeadYoungObjectsTotal);
    St.set("gc.nursery_resident_objects",
           LiveYoungObjects +
               (St.get(StatId::HeapObjectsAllocated) - AllocSnapshot));
  }
  if (Prof && Prof->enabled()) {
    St.set("heap.profile_allocs", Prof->allocTotal());
    St.set("heap.profile_visit_objects", Prof->visitObjectsTotal());
    // Promotion attribution: per-site tenured words, summing (exactly) to
    // gc.promoted_words. Sites with no promotions publish nothing.
    const auto &Life = Prof->lifetimes();
    uint64_t Attributed = 0;
    for (size_t I = 0; I < Life.size(); ++I) {
      if (!Life[I].PromotedWords)
        continue;
      Attributed += Life[I].PromotedWords;
      St.set("site." + std::to_string(I) + ".promoted_words",
             Life[I].PromotedWords);
    }
    if (Attributed)
      St.set("heap.promoted_words_attributed", Attributed);
  }
  const LogHistogram &Stop = Tel.worldStopDelayHistogram();
  if (Stop.count()) {
    St.set("task.world_stop_delay_ns_p50", Stop.percentile(50));
    St.set("task.world_stop_delay_ns_p90", Stop.percentile(90));
    St.set("task.world_stop_delay_ns_p99", Stop.percentile(99));
  }
  if (Mon)
    Mon->publishStats(St);
}

size_t Collector::heapUsedBytes() const {
  return Copying ? Copying->usedBytes()
         : Ms    ? Ms->usedBytes()
                 : Gen->usedBytes();
}

size_t Collector::heapCapacityBytes() const {
  return Copying ? Copying->capacityBytes()
         : Ms    ? Ms->capacityBytes()
                 : Gen->capacityBytes();
}

uint64_t Collector::bytesAllocatedTotal() const {
  return Copying ? Copying->bytesAllocatedTotal()
         : Ms    ? Ms->bytesAllocatedTotal()
                 : Gen->bytesAllocatedTotal();
}
