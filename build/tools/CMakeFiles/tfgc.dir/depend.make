# Empty dependencies file for tfgc.
# This may be replaced when dependencies are built.
