//===- gcmeta/CodeImage.h - Figure 1 code image -----------------*- C++ -*-===//
///
/// \file
/// A simulated code image laid out exactly as the paper's Figure 1:
///
///   entry-1:  closure GC metadata word          (paper section 2.2: "n-4")
///   entry  :  function marker
///   ...
///   n      :  call instruction of a call site   (the return address)
///   n+1    :  delay slot
///   n+2    :  gc_word                            (paper: byte offset n+8)
///   n+3    :  resume point                       (paper: byte offset n+12)
///
/// Frames store return addresses (= call word addresses) into this image;
/// the collector's main loop reads the gc_word at ra+2 to find the frame
/// GC routine, and a normal return resumes at ra+3 — so the mechanism
/// costs the mutator nothing (replacing "jmpl %o7+8" with "jmpl %o7+12").
///
/// Substitution note: on a real machine the gc_word holds the routine's
/// address; here it holds the call-site id and each strategy keeps a table
/// from site id to its routine, which is the same single indirection.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_GCMETA_CODEIMAGE_H
#define TFGC_GCMETA_CODEIMAGE_H

#include "ir/Ir.h"
#include "runtime/Value.h"

#include <string>
#include <vector>

namespace tfgc {

/// Debug record for one allocation site, indexed by the site's dense
/// AllocId. The heap profiler labels its per-site rows with these; a real
/// compiler would emit the same table into the binary's debug info, so
/// (like the gc_words) it costs the mutator nothing.
struct AllocSiteDebug {
  std::string Func;    ///< Allocating function's name.
  uint32_t Line = 0;   ///< Source line (0 = synthesized).
  uint32_t Col = 0;
  std::string TypeStr; ///< Rendered static type of the allocated value.
};

class CodeImage {
public:
  static constexpr uint32_t GcWordOffset = 2;
  static constexpr uint32_t ResumeOffset = 3;
  /// Stored in a gc_word when the GC-point analysis proved the site cannot
  /// trigger a collection, so the word could be omitted from a real image.
  static constexpr Word OmittedGcWord = ~(Word)0;

  /// Lays the image out and assigns CallSiteInfo::CodeAddr and
  /// IrFunction::EntryAddr.
  void build(IrProgram &P);

  /// The gc_word read through a return address (paper: *(ra + 8)).
  Word gcWordAt(uint32_t ReturnAddr) const {
    return Image[ReturnAddr + GcWordOffset];
  }
  /// The function whose code starts at \p EntryAddr.
  FuncId functionAt(uint32_t EntryAddr) const {
    return (FuncId)Image[EntryAddr];
  }
  /// Closure GC metadata stored in the word before the entry (section 2.2).
  Word closureMetaAt(uint32_t EntryAddr) const { return Image[EntryAddr - 1]; }

  size_t sizeWords() const { return Image.size(); }
  /// Bytes occupied by gc_words that were *not* omitted (E4/E6 accounting).
  size_t gcWordBytes() const { return LiveGcWords * sizeof(Word); }
  size_t omittedGcWords() const { return OmittedCount; }

  /// Allocation-site debug table, indexed by CallSiteInfo::AllocId.
  /// Covers [0, IrProgram::NumAllocSites); type strings are empty when the
  /// program had no TypeContext attached at build time.
  const std::vector<AllocSiteDebug> &allocSites() const { return AllocDebug; }

private:
  std::vector<Word> Image;
  std::vector<AllocSiteDebug> AllocDebug;
  size_t LiveGcWords = 0;
  size_t OmittedCount = 0;
};

} // namespace tfgc

#endif // TFGC_GCMETA_CODEIMAGE_H
