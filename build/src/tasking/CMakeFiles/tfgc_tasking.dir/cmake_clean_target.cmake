file(REMOVE_RECURSE
  "libtfgc_tasking.a"
)
