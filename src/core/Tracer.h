//===- core/Tracer.h - Tag-free tracing engine ------------------*- C++ -*-===//
///
/// \file
/// Executes the compiler-generated GC metadata over untagged heap values.
/// One instance lives for the duration of a single collection. Three
/// tracing paths exist, matching the artifacts the compiler produced:
///
///   traceCompiled  flat compiled type routines (the compiled method)
///   traceDesc      descriptor-graph interpretation (the interpreted
///                  method / Appel's descriptors)
///   traceTg        type-GC-routine closures built during this collection
///                  (polymorphic slots, paper section 3)
///
/// Closure values are traced through their code pointer: the word before
/// the code entry names the lambda, whose metadata gives the environment
/// layout and the extraction paths for its type parameters (sections 2.2
/// and 3, Figure 4).
///
/// All three paths run the tail field iteratively so that tracing a
/// million-element list does not recurse a million deep.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_CORE_TRACER_H
#define TFGC_CORE_TRACER_H

#include "core/Space.h"
#include "core/TypeGc.h"
#include "gcmeta/AppelMeta.h"
#include "gcmeta/CodeImage.h"
#include "gcmeta/CompiledRoutines.h"
#include "gcmeta/InterpretedMeta.h"
#include "support/HeapProfile.h"

#include <deque>

namespace tfgc {

enum class TraceMethod : uint8_t { Compiled, Interpreted, Appel };

/// Binding of one datatype parameter during descriptor interpretation:
/// a descriptor plus the environment its own Param nodes resolve in.
struct DescEnvNode;
struct DescBinding {
  DescId D = 0;
  const DescEnvNode *Env = nullptr;
};
struct DescEnvNode {
  std::vector<DescBinding> Binds;
};

class TagFreeTracer {
public:
  TagFreeTracer(const IrProgram &Prog, const CodeImage &Img,
                TypeGcEngine &Eng, Space &Sp, Stats &St, TraceMethod Method,
                const CompiledMetadata *CM, InterpretedMetadata *IM,
                AppelMetadata *AM, bool GlogerDummies = false,
                Telemetry *Tel = nullptr, HeapProfiler *Prof = nullptr)
      : Prog(Prog), Img(Img), Eng(Eng), Sp(Sp), St(St), Method(Method),
        CM(CM), IM(IM), AM(AM), GlogerDummies(GlogerDummies), Tel(Tel),
        Prof(Prof),
        EdgeRec(Prof != nullptr && Prof->edgesActive()) {}

  /// Binds one closure type parameter: by extraction path, or — under the
  /// Goldberg & Gloger '92 rule — to const_gc when no path exists (a value
  /// whose type cannot be reconstructed can never be inspected, so it need
  /// not be traced).
  const TypeGc *bindParam(const ClosureParamPath &P, const TypeGc *FunTg);

  /// Ground value of compiled routine \p R. Returns the new reference.
  Word traceCompiled(Word V, RoutineId R);

  /// Value by descriptor interpretation. \p Env resolves Param nodes (the
  /// surrounding Data descriptor's type arguments); top-level descriptors
  /// are ground and take nullptr.
  Word traceDesc(Word V, DescId D, const DescEnvNode *Env);

  /// Value by type-GC-routine closure.
  Word traceTg(Word V, const TypeGc *Tg);

  /// Closure value. \p FunTg is the function-type routine (for recovering
  /// the lambda's type parameters); when null, \p StaticFunTy (ground) is
  /// evaluated instead if needed.
  Word traceClosureValue(Word V, const TypeGc *FunTg, Type *StaticFunTy);

  /// Frame tracing (Env required whenever the routine has open slots).
  void traceFrame(Word *Slots, const FrameRoutine &FR, const TgEnv *Env);
  void traceFrame(Word *Slots, const FrameDescriptor &FD, const TgEnv *Env);

  /// Routes census increments into a thread-local accumulator instead of
  /// the (shared, unsynchronized) Telemetry event. Parallel GC workers
  /// set this on their private tracer; the collecting thread merges the
  /// accumulators with Telemetry::censusBulk after the workers join.
  void setCensusSink(CensusCounts *C) { Census = C; }

private:
  const IrProgram &Prog;
  const CodeImage &Img;
  TypeGcEngine &Eng;
  Space &Sp;
  Stats &St;
  TraceMethod Method;
  const CompiledMetadata *CM;
  InterpretedMetadata *IM;
  AppelMetadata *AM;
  bool GlogerDummies;
  Telemetry *Tel;
  HeapProfiler *Prof;
  CensusCounts *Census = nullptr;
  /// Cached at construction (tracers are built per collection, after the
  /// profiler decided whether this collection's graph is captured): the
  /// edge hooks below stay a single predictable branch when off.
  const bool EdgeRec = false;

  /// First-visit hook next to every visitNew; the (kind, words) increments
  /// mirror the gc.objects_visited / gc.words_visited counter increments.
  /// Feeds the telemetry census and — with the old→new address pair — the
  /// heap profiler's typed snapshot and allocation-site side table.
  void visit(Word Old, Word New, CensusKind K, uint64_t Words) {
    if (Census)
      Census->record(K, Words);
    else if (Tel)
      Tel->census(K, Words);
    if (Prof) [[unlikely]]
      Prof->recordVisit(Old, New, K, Words);
  }

  /// Heap-graph edge hook: records that field \p Field of the object at
  /// (post-move) \p Parent holds \p Child. Parent 0 marks a root slot —
  /// those come from the collector's root capture, not the edge stream.
  /// Only called under `if (EdgeRec)`; non-reference children are
  /// filtered when the capture is finalized.
  void edge(Word Parent, uint32_t Field, Word Child) {
    if (Parent)
      Prof->recordEdge(Parent, Field, Child);
  }

  DescriptorTable &descTable() {
    return Method == TraceMethod::Appel ? AM->descriptors()
                                        : IM->descriptors();
  }
  /// Environments built during this collection (stable addresses).
  std::deque<DescEnvNode> EnvStorage;

  DescBinding resolveArg(DescId A, const DescEnvNode *Env);
  bool bindingsEqual(const DescBinding &A, const DescBinding &B);
};

} // namespace tfgc

#endif // TFGC_CORE_TRACER_H
