//===- ir/Fusion.cpp ------------------------------------------------------===//

#include "ir/Fusion.h"

using namespace tfgc;

const char *tfgc::fusePatternName(FusePattern P) {
  switch (P) {
  case FusePattern::ArithImm:     return "arith_imm";
  case FusePattern::CmpImm:       return "cmp_imm";
  case FusePattern::CmpBranch:    return "cmp_branch";
  case FusePattern::CmpImmBranch: return "cmp_imm_branch";
  case FusePattern::MoveReturn:   return "move_return";
  case FusePattern::GetField2:    return "get_field2";
  }
  return "?";
}

namespace {

bool isIntArith(PrimVal P) {
  switch (P) {
  case PrimVal::Add:
  case PrimVal::Sub:
  case PrimVal::Mul:
  case PrimVal::Div:
  case PrimVal::Mod:
    return true;
  default:
    return false;
  }
}

bool isIntCmp(PrimVal P) {
  switch (P) {
  case PrimVal::Lt:
  case PrimVal::Le:
  case PrimVal::Gt:
  case PrimVal::Ge:
  case PrimVal::Eq:
  case PrimVal::Ne:
    return true;
  default:
    return false;
  }
}

/// LoadInt t feeding a Prim's second operand, with the first operand
/// distinct from t (the fused handler writes t then reads both). Div/Mod
/// by a zero constant stays unfused so the division-by-zero failure path
/// keeps its exact step position.
bool loadFeedsPrim(const Instr &Load, const Instr &P) {
  if (P.Op != Opcode::Prim || P.Srcs.size() != 2)
    return false;
  if (P.Srcs[1] != Load.Dst || P.Srcs[0] == Load.Dst)
    return false;
  if ((P.Prim == PrimVal::Div || P.Prim == PrimVal::Mod) && Load.IntImm == 0)
    return false;
  return true;
}

} // namespace

std::vector<FusedSeq> tfgc::planFusion(const IrFunction &F) {
  const std::vector<Instr> &C = F.Code;
  // A window may not extend across a jump target: fused execution never
  // stops between constituents, so control may only enter at the start.
  std::vector<bool> IsTarget(C.size(), false);
  for (uint32_t T : F.LabelTargets)
    if (T < C.size())
      IsTarget[T] = true;

  std::vector<FusedSeq> Plan;
  auto free2 = [&](size_t I) { return I + 1 < C.size() && !IsTarget[I + 1]; };
  auto free3 = [&](size_t I) {
    return I + 2 < C.size() && !IsTarget[I + 1] && !IsTarget[I + 2];
  };

  for (size_t I = 0; I < C.size();) {
    const Instr &I0 = C[I];
    // Longest first: LoadInt; cmp; Branch.
    if (I0.Op == Opcode::LoadInt && free3(I) && isIntCmp(C[I + 1].Prim) &&
        loadFeedsPrim(I0, C[I + 1]) && C[I + 2].Op == Opcode::Branch &&
        C[I + 2].Srcs[0] == C[I + 1].Dst) {
      Plan.push_back({(uint32_t)I, 3, FusePattern::CmpImmBranch});
      I += 3;
      continue;
    }
    if (I0.Op == Opcode::LoadInt && free2(I) && loadFeedsPrim(I0, C[I + 1]) &&
        (isIntArith(C[I + 1].Prim) || isIntCmp(C[I + 1].Prim))) {
      Plan.push_back({(uint32_t)I, 2,
                      isIntArith(C[I + 1].Prim) ? FusePattern::ArithImm
                                                : FusePattern::CmpImm});
      I += 2;
      continue;
    }
    if (I0.Op == Opcode::Prim && I0.Srcs.size() == 2 && isIntCmp(I0.Prim) &&
        free2(I) && C[I + 1].Op == Opcode::Branch &&
        C[I + 1].Srcs[0] == I0.Dst) {
      Plan.push_back({(uint32_t)I, 2, FusePattern::CmpBranch});
      I += 2;
      continue;
    }
    if (I0.Op == Opcode::Move && free2(I) && C[I + 1].Op == Opcode::Return &&
        C[I + 1].Srcs[0] == I0.Dst) {
      Plan.push_back({(uint32_t)I, 2, FusePattern::MoveReturn});
      I += 2;
      continue;
    }
    // Two adjacent field reads; the packed operand form needs 16-bit slot
    // and field indices (always true in practice, checked anyway).
    if (I0.Op == Opcode::GetField && free2(I) &&
        C[I + 1].Op == Opcode::GetField && C[I + 1].Srcs[0] < 0x10000 &&
        C[I + 1].FieldIdx < 0x10000) {
      Plan.push_back({(uint32_t)I, 2, FusePattern::GetField2});
      I += 2;
      continue;
    }
    ++I;
  }
  return Plan;
}
