//===- tests/dispatch_test.cpp - Mutator fast-path equivalence ------------===//
///
/// The fast path (vm/VmExec.inc) must be an *observation-preserving*
/// rebuild of the interpreter: switch and threaded dispatch execute the
/// same decoded stream, fusion rewrites only windows whose slot state at
/// every GC point is untouched, and float self-tagging changes the value
/// representation without changing program results. This suite pins:
///
///  * bit-identical deterministic counters (visits, census, remsets,
///    promotions, steps, ...) across switch/threaded under all four
///    strategies x three algorithms with --verify re-tracing;
///  * fused vs unfused sequential runs identical except the
///    superinstruction counter itself;
///  * float self-tag round-trips (bit-preserving) and the NaN/Inf/
///    denormal fallback to boxing;
///  * the fuel-counter safepoint poll: bounded yield latency with a
///    pending GC, guaranteed forward progress, and exec() budgets that
///    are smaller than one fused superinstruction;
///  * fusion-plan well-formedness on real lowered IR.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "ir/Fusion.h"
#include "support/Monitor.h"
#include "tasking/Tasking.h"
#include "workloads/Programs.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>

using namespace tfgc;
using namespace tfgc::test;
namespace wl = tfgc::workloads;

namespace {

/// One complete run under an explicit fast-path configuration.
struct ModeRun {
  bool CollectorOk = false;
  bool Ok = false;
  std::string Value;
  std::string Output;
  std::string Error;
  DispatchMode Used = DispatchMode::Switch;
  /// Deterministic counters only: wall-clock keys (*_ns*) are dropped,
  /// everything else must match bit-for-bit across dispatch modes.
  std::map<std::string, uint64_t> Counters;
};

std::map<std::string, uint64_t> deterministicCounters(const Stats &St) {
  std::map<std::string, uint64_t> Out;
  for (const auto &[Name, Value] : St.all())
    if (Name.find("_ns") == std::string::npos)
      Out[Name] = Value;
  return Out;
}

ModeRun runMode(CompiledProgram &P, GcStrategy S, GcAlgorithm A,
                size_t HeapBytes, DispatchMode D, bool Fuse, bool SelfTag,
                bool Verify = true, bool TailCalls = true,
                bool Stress = false) {
  ModeRun R;
  Stats St;
  std::string Err;
  auto Col = P.makeCollector(S, A, HeapBytes, St, &Err);
  if (!Col) {
    R.Error = Err;
    return R;
  }
  R.CollectorOk = true;
  Col->setVerifyAfterGc(Verify);
  VmOptions VO = defaultVmOptions(S, Stress);
  VO.Dispatch = D;
  VO.FuseSuperinstructions = Fuse;
  VO.FloatSelfTag = SelfTag;
  VO.TailCalls = TailCalls;
  Vm M(P.Prog, P.Image, *P.Types, *Col, VO);
  R.Used = M.dispatchMode();
  RunResult Run = M.run();
  R.Ok = Run.Ok;
  R.Value = Run.Value;
  R.Output = Run.Output;
  R.Error = Run.Error;
  R.Counters = deterministicCounters(St);
  return R;
}

void expectSameCounters(const ModeRun &A, const ModeRun &B,
                        const std::string &Label) {
  ASSERT_EQ(A.CollectorOk, B.CollectorOk) << Label;
  if (!A.CollectorOk)
    return;
  ASSERT_TRUE(A.Ok) << Label << ": " << A.Error;
  ASSERT_TRUE(B.Ok) << Label << ": " << B.Error;
  EXPECT_EQ(A.Value, B.Value) << Label;
  EXPECT_EQ(A.Output, B.Output) << Label;
  EXPECT_EQ(A.Counters.size(), B.Counters.size()) << Label;
  for (const auto &[Name, Value] : A.Counters) {
    auto It = B.Counters.find(Name);
    ASSERT_NE(It, B.Counters.end()) << Label << ": missing " << Name;
    EXPECT_EQ(Value, It->second) << Label << ": counter " << Name;
  }
}

TEST(Dispatch, AutoResolvesToCompiledInLoop) {
  auto C = compile("1 + 2");
  ASSERT_TRUE(C.P) << C.Error;
  ModeRun R = runMode(*C.P, GcStrategy::CompiledTagFree, GcAlgorithm::Copying,
                      1 << 16, DispatchMode::Auto, true, true);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Used, Vm::threadedDispatchAvailable() ? DispatchMode::Threaded
                                                    : DispatchMode::Switch);
  // An explicit --dispatch=switch always takes the portable loop.
  ModeRun Sw = runMode(*C.P, GcStrategy::CompiledTagFree, GcAlgorithm::Copying,
                       1 << 16, DispatchMode::Switch, true, true);
  EXPECT_EQ(Sw.Used, DispatchMode::Switch);
}

TEST(Dispatch, CountersBitIdenticalSwitchVsThreadedEverywhere) {
  if (!Vm::threadedDispatchAvailable())
    GTEST_SKIP() << "threaded dispatch not compiled in";
  // Garbage-heavy workload on a small heap: many collections, heap
  // growth, remset traffic under generational — every deterministic
  // counter must agree between the two loops, verified re-tracing on.
  auto C = compile(wl::listChurn(60, 8));
  ASSERT_TRUE(C.P) << C.Error;
  for (GcStrategy S : AllStrategies) {
    for (GcAlgorithm A : AllAlgorithms) {
      std::string Label = std::string(gcStrategyName(S)) + "/" +
                          gcAlgorithmName(A);
      ModeRun Sw = runMode(*C.P, S, A, 1 << 15, DispatchMode::Switch, true,
                           true);
      ModeRun Th = runMode(*C.P, S, A, 1 << 15, DispatchMode::Threaded, true,
                           true);
      expectSameCounters(Sw, Th, Label);
    }
  }
}

TEST(Dispatch, CountersBitIdenticalOnFloatWorkload) {
  if (!Vm::threadedDispatchAvailable())
    GTEST_SKIP() << "threaded dispatch not compiled in";
  auto C = compile(wl::floatKernel(24, 12));
  ASSERT_TRUE(C.P) << C.Error;
  for (GcStrategy S : AllStrategies) {
    for (bool SelfTag : {true, false}) {
      std::string Label = std::string(gcStrategyName(S)) +
                          (SelfTag ? "/selftag" : "/boxed");
      ModeRun Sw = runMode(*C.P, S, GcAlgorithm::Copying, 1 << 15,
                           DispatchMode::Switch, true, SelfTag);
      ModeRun Th = runMode(*C.P, S, GcAlgorithm::Copying, 1 << 15,
                           DispatchMode::Threaded, true, SelfTag);
      expectSameCounters(Sw, Th, Label);
    }
  }
}

TEST(Dispatch, FusionPreservesEverythingButTheSuperinstructionCounter) {
  // Sequential runs only: under tasking a fused window executes
  // atomically, which legally shifts time-slice boundaries. Sequentially
  // the fusion invariants (all dst slots written, no GC point inside a
  // window, constituent step accounting) make every other deterministic
  // counter — vm.steps included — bit-identical.
  struct Prog {
    const char *Name;
    std::string Src;
  } Progs[] = {
      {"arith", wl::arithKernel(4000)},
      {"churn", wl::listChurn(40, 6)},
      {"nqueens", wl::nqueens(5)},
      {"float", wl::floatKernel(16, 8)},
  };
  for (const Prog &Pr : Progs) {
    auto C = compile(Pr.Src);
    ASSERT_TRUE(C.P) << C.Error;
    for (GcStrategy S : {GcStrategy::Tagged, GcStrategy::CompiledTagFree}) {
      std::string Label = std::string(Pr.Name) + "/" + gcStrategyName(S);
      ModeRun Fused = runMode(*C.P, S, GcAlgorithm::Copying, 1 << 15,
                              DispatchMode::Auto, true, true);
      ModeRun Plain = runMode(*C.P, S, GcAlgorithm::Copying, 1 << 15,
                              DispatchMode::Auto, false, true);
      ASSERT_TRUE(Fused.Ok && Plain.Ok) << Label;
      EXPECT_EQ(Fused.Value, Plain.Value) << Label;
      // The only legal difference.
      EXPECT_EQ(Plain.Counters["vm.superinstructions_executed"], 0u) << Label;
      Fused.Counters.erase("vm.superinstructions_executed");
      Plain.Counters.erase("vm.superinstructions_executed");
      expectSameCounters(Fused, Plain, Label);
    }
  }
}

TEST(Dispatch, SuperinstructionsExecuteOnTheArithKernel) {
  auto C = compile(wl::arithKernel(2000));
  ASSERT_TRUE(C.P) << C.Error;
  ModeRun R = runMode(*C.P, GcStrategy::CompiledTagFree, GcAlgorithm::Copying,
                      1 << 16, DispatchMode::Auto, true, true);
  ASSERT_TRUE(R.Ok) << R.Error;
  // The kernel's loop body is constant-feed arithmetic + compare-branch:
  // the planner must find windows and the VM must execute them.
  EXPECT_GT(R.Counters["vm.superinstructions_executed"], 1000u);
}

TEST(Dispatch, MonitorSamplesIdenticalAcrossModes) {
  if (!Vm::threadedDispatchAvailable())
    GTEST_SKIP() << "threaded dispatch not compiled in";
  // The fuel counter owns sample arming in both loops, and fused
  // superinstructions attribute the sampled step to the constituent
  // opcode class — sample counts and the class profile must match
  // switch vs threaded vs fused exactly.
  auto C = compile(wl::arithKernel(3000));
  ASSERT_TRUE(C.P) << C.Error;
  struct Cfg {
    DispatchMode D;
    bool Fuse;
  } Cfgs[] = {{DispatchMode::Switch, true},
              {DispatchMode::Threaded, true},
              {DispatchMode::Threaded, false}};
  uint64_t Samples[3];
  uint64_t ByClass[3][NumOpClasses];
  for (int I = 0; I < 3; ++I) {
    Stats St;
    std::string Err;
    auto Col = C.P->makeCollector(GcStrategy::CompiledTagFree,
                                  GcAlgorithm::Copying, 1 << 16, St, &Err);
    ASSERT_TRUE(Col) << Err;
    Monitor Mon(Monitor::Options{64, 50});
    attachMonitor(*C.P, *Col, Mon);
    VmOptions VO = defaultVmOptions(GcStrategy::CompiledTagFree, false);
    VO.Dispatch = Cfgs[I].D;
    VO.FuseSuperinstructions = Cfgs[I].Fuse;
    Vm M(C.P->Prog, C.P->Image, *C.P->Types, *Col, VO);
    RunResult R = M.run();
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(Mon.samples(), M.steps() / 64) << "config " << I;
    Samples[I] = Mon.samples();
    for (size_t K = 0; K < NumOpClasses; ++K)
      ByClass[I][K] = Mon.opClassSamples((OpClass)K);
  }
  for (int I = 1; I < 3; ++I) {
    EXPECT_EQ(Samples[I], Samples[0]) << "config " << I;
    for (size_t K = 0; K < NumOpClasses; ++K)
      EXPECT_EQ(ByClass[I][K], ByClass[0][K])
          << "config " << I << " class " << opClassName((OpClass)K);
  }
}

// -- Float self-tagging ---------------------------------------------------

TEST(FloatSelfTag, RoundTripIsBitPreserving) {
  const double InRange[] = {1.0,     -1.0,       3.141592653589793,
                            1e-50,   -1e-50,     1e50,
                            -1e50,   0.5,        -0.5,
                            65536.0, 1.0 / 3.0,  -123456.789};
  for (double D : InRange) {
    Word W = 0;
    ASSERT_TRUE(trySelfTagFloat(D, W)) << D;
    EXPECT_TRUE(isSelfTagFloat(W)) << D;
    // Disjoint from both tagged-pointer and tagged-immediate patterns:
    // the collectors classify self-tagged floats as non-pointers with
    // their existing tests.
    EXPECT_FALSE(isTaggedPointer(W)) << D;
    EXPECT_FALSE(isTaggedImmediate(W)) << D;
    EXPECT_EQ(floatToWord(selfTagToFloat(W)), floatToWord(D)) << D;
  }
}

TEST(FloatSelfTag, SignedZerosUseReservedWords) {
  Word W = 0;
  ASSERT_TRUE(trySelfTagFloat(0.0, W));
  EXPECT_EQ(W, FloatPosZeroWord);
  ASSERT_TRUE(trySelfTagFloat(-0.0, W));
  EXPECT_EQ(W, FloatNegZeroWord);
  EXPECT_EQ(floatToWord(selfTagToFloat(FloatPosZeroWord)), floatToWord(0.0));
  EXPECT_EQ(floatToWord(selfTagToFloat(FloatNegZeroWord)), floatToWord(-0.0));
  EXPECT_FALSE(isTaggedPointer(FloatPosZeroWord));
  EXPECT_FALSE(isTaggedPointer(FloatNegZeroWord));
}

TEST(FloatSelfTag, OutOfRangeValuesRefuseToSelfTag) {
  const double Boxed[] = {
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::denorm_min(),
      5e-324,  // smallest denormal, spelled out
      1e300,   // exponent above 2^257
      -1e300,
      1e-100,  // below 2^-255
  };
  for (double D : Boxed) {
    Word W = 0;
    EXPECT_FALSE(trySelfTagFloat(D, W)) << D;
  }
}

TEST(FloatSelfTag, ExhaustiveRandomPatternsRoundTrip) {
  // Deterministic 64-bit LCG over raw bit patterns: whatever
  // trySelfTagFloat accepts must round-trip to the identical bits, and
  // must never look like a pointer or an immediate.
  uint64_t X = 0x9e3779b97f4a7c15ull;
  int Accepted = 0;
  for (int I = 0; I < 200000; ++I) {
    X = X * 6364136223846793005ull + 1442695040888963407ull;
    double D = wordToFloat(X);
    Word W = 0;
    if (!trySelfTagFloat(D, W))
      continue;
    ++Accepted;
    ASSERT_TRUE(isSelfTagFloat(W));
    ASSERT_FALSE(isTaggedPointer(W));
    ASSERT_FALSE(isTaggedImmediate(W));
    ASSERT_EQ(floatToWord(selfTagToFloat(W)), X);
  }
  // The biased-exponent window admits 512 of the 2048 exponent values —
  // a quarter of uniform bit patterns (but virtually all doubles real
  // programs compute, |x| in [2^-255, 2^257)).
  EXPECT_GT(Accepted, 40000);
}

TEST(FloatSelfTag, NanAndInfFallBackToBoxesAtRuntime) {
  // 0.0 /. 0.0 is NaN and 1.0 /. 0.0 is +inf — both out of self-tag
  // range, so even with self-tagging on they hit the float box path and
  // count in vm.float_boxes. Program results agree with the boxed run.
  const std::string Src = R"(
let val z = 0.0 in
  let val n = z /. z in
    let val i = 1.0 /. z in
      (if n =. n then 100 else 0) + (if i <. 2.0 then 10 else 0) + 1
    end
  end
end
)";
  auto C = compile(Src);
  ASSERT_TRUE(C.P) << C.Error;
  ModeRun Self = runMode(*C.P, GcStrategy::Tagged, GcAlgorithm::Copying,
                         1 << 16, DispatchMode::Auto, true, true);
  ModeRun Box = runMode(*C.P, GcStrategy::Tagged, GcAlgorithm::Copying,
                        1 << 16, DispatchMode::Auto, true, false);
  ASSERT_TRUE(Self.Ok) << Self.Error;
  ASSERT_TRUE(Box.Ok) << Box.Error;
  // NaN =. NaN is false, inf <. 2.0 is false.
  EXPECT_EQ(Self.Value, "1");
  EXPECT_EQ(Self.Value, Box.Value);
  EXPECT_GT(Self.Counters["vm.float_boxes"], 0u);
  EXPECT_GT(Box.Counters["vm.float_boxes"],
            Self.Counters["vm.float_boxes"]);
}

TEST(FloatSelfTag, PureFloatKernelAllocatesNoBoxes) {
  // The E13 acceptance bar: the allocation-free float kernel runs with
  // vm.float_boxes = 0 under the tagged model once floats self-tag.
  auto C = compile(wl::floatMath(5000));
  ASSERT_TRUE(C.P) << C.Error;
  ModeRun Self = runMode(*C.P, GcStrategy::Tagged, GcAlgorithm::Copying,
                         1 << 16, DispatchMode::Auto, true, true);
  ASSERT_TRUE(Self.Ok) << Self.Error;
  EXPECT_EQ(Self.Counters["vm.float_boxes"], 0u);
  ModeRun Box = runMode(*C.P, GcStrategy::Tagged, GcAlgorithm::Copying,
                        1 << 16, DispatchMode::Auto, true, false);
  ASSERT_TRUE(Box.Ok) << Box.Error;
  EXPECT_GT(Box.Counters["vm.float_boxes"], 4000u);
  EXPECT_EQ(Self.Value, Box.Value);
}

// -- Safepoint poll -------------------------------------------------------

struct FakeCoord : GcCoordinator {
  bool Pending = false;
  bool gcPending() const override { return Pending; }
  void requestGc(size_t) override { Pending = true; }
};

TEST(SafepointPoll, PendingGcYieldsWithinPollPeriod) {
  // With a pending collection, the fuel counter's poll must end the
  // exec() slice within SafepointPollSteps (plus a superinstruction of
  // overshoot), while still guaranteeing forward progress — the old
  // behavior was a check per step; the new one is one poll per 64 steps
  // folded into the same fuel compare.
  auto C = compile(wl::arithKernel(100000));
  ASSERT_TRUE(C.P) << C.Error;
  Stats St;
  std::string Err;
  auto Col = C.P->makeCollector(GcStrategy::CompiledTagFree,
                                GcAlgorithm::Copying, 1 << 20, St, &Err);
  ASSERT_TRUE(Col) << Err;
  FakeCoord Coord;
  VmOptions VO = defaultVmOptions(GcStrategy::CompiledTagFree, false);
  VO.Coord = &Coord;
  VO.Checks = SuspendChecks::AtAllocation;
  Vm M(C.P->Prog, C.P->Image, *C.P->Types, *Col, VO);

  Coord.Pending = true;
  for (int Slice = 0; Slice < 5; ++Slice) {
    uint64_t Before = M.steps();
    StepResult R = M.exec(1'000'000);
    ASSERT_EQ(R, StepResult::Ran) << "slice " << Slice;
    uint64_t Delta = M.steps() - Before;
    EXPECT_GT(Delta, 0u) << "slice " << Slice;
    EXPECT_LE(Delta, Vm::SafepointPollSteps + 4) << "slice " << Slice;
  }
  // Clearing the request lets the program run to completion.
  Coord.Pending = false;
  StepResult R = StepResult::Ran;
  while (R == StepResult::Ran)
    R = M.exec(1'000'000);
  EXPECT_EQ(R, StepResult::Done);
}

TEST(SafepointPoll, TinyBudgetsStillMakeProgress) {
  // exec(1) on a stream containing 2-3 step superinstructions: the
  // budget yield must still commit at least one instruction per slice
  // or the scheduler would livelock.
  auto C = compile(wl::arithKernel(200));
  ASSERT_TRUE(C.P) << C.Error;
  Stats St;
  std::string Err;
  auto Col = C.P->makeCollector(GcStrategy::CompiledTagFree,
                                GcAlgorithm::Copying, 1 << 20, St, &Err);
  ASSERT_TRUE(Col) << Err;
  VmOptions VO = defaultVmOptions(GcStrategy::CompiledTagFree, false);
  Vm M(C.P->Prog, C.P->Image, *C.P->Types, *Col, VO);
  StepResult R = StepResult::Ran;
  uint64_t Slices = 0;
  while (R == StepResult::Ran) {
    uint64_t Before = M.steps();
    R = M.exec(1);
    if (R == StepResult::Ran) {
      ASSERT_GT(M.steps(), Before) << "no progress in slice " << Slices;
    }
    ASSERT_LT(++Slices, 100000u) << "livelock";
  }
  EXPECT_EQ(R, StepResult::Done);
}

TEST(SafepointPoll, TaskingCountersIdenticalSwitchVsThreaded) {
  if (!Vm::threadedDispatchAvailable())
    GTEST_SKIP() << "threaded dispatch not compiled in";
  // Same decoded stream, same slice budgets, same poll points: the
  // whole tasking run — world stops, stop-delay step counts, per-task
  // steps — must agree between the loops. (Fusion stays ON in both: a
  // fused window is atomic w.r.t. slices in both loops; only the
  // fused-vs-unfused comparison is excluded under tasking.)
  CompileOptions CO;
  CO.TaskingSafe = true;
  auto RunTasking = [&](DispatchMode D) {
    Compiler Comp(CO);
    std::string Err;
    auto P = Comp.compile(wl::taskWorkerAndSpinner(), &Err);
    EXPECT_TRUE(P) << Err;
    Stats St;
    auto Col = P->makeCollector(GcStrategy::CompiledTagFree,
                                GcAlgorithm::Copying, 1 << 12, St, &Err);
    EXPECT_TRUE(Col) << Err;
    TaskingOptions TO;
    TO.Policy = SuspendChecks::AtEveryCall;
    TO.Dispatch = D;
    TaskingRuntime Rt(P->Prog, P->Image, *P->Types, *Col, TO);
    FuncId Worker = findFunction(P->Prog, "worker");
    FuncId Spinner = findFunction(P->Prog, "spinner");
    Rt.spawnInt(Worker, {1, 40});
    Rt.spawnInt(Spinner, {40, 2000});
    EXPECT_TRUE(Rt.runAll());
    std::vector<std::string> Values;
    for (const TaskResult &R : Rt.results())
      Values.push_back(R.Value);
    return std::make_pair(Values, deterministicCounters(St));
  };
  auto Sw = RunTasking(DispatchMode::Switch);
  auto Th = RunTasking(DispatchMode::Threaded);
  EXPECT_EQ(Sw.first, Th.first);
  EXPECT_EQ(Sw.second, Th.second);
}

// -- Fusion planning ------------------------------------------------------

TEST(Fusion, PlansAreWellFormedOnRealIr) {
  // On every function of a mixed workload: windows in ascending order,
  // non-overlapping, length 2-3, free of GC points (alloc/call sites)
  // and of internal jump targets.
  auto C = compile(wl::nqueens(5) /* call+branch heavy */);
  ASSERT_TRUE(C.P) << C.Error;
  size_t TotalWindows = 0;
  for (const IrFunction &F : C.P->Prog.Functions) {
    std::vector<FusedSeq> Plan = planFusion(F);
    uint32_t PrevEnd = 0;
    std::vector<bool> IsTarget(F.Code.size() + 1, false);
    for (uint32_t T : F.LabelTargets)
      if (T <= F.Code.size())
        IsTarget[T] = true;
    for (const FusedSeq &W : Plan) {
      ++TotalWindows;
      ASSERT_GE(W.Len, 2u);
      ASSERT_LE(W.Len, 3u);
      ASSERT_GE(W.Start, PrevEnd) << F.Name;
      ASSERT_LE(W.Start + W.Len, F.Code.size()) << F.Name;
      for (uint32_t I = W.Start; I < W.Start + (uint32_t)W.Len; ++I) {
        const Instr &In = F.Code[I];
        EXPECT_FALSE(In.isGcPoint())
            << F.Name << " window at " << W.Start << " contains a GC point";
        EXPECT_NE(In.Op, Opcode::Call) << F.Name;
        EXPECT_NE(In.Op, Opcode::CallIndirect) << F.Name;
        if (I > W.Start) {
          EXPECT_FALSE(IsTarget[I])
              << F.Name << " jump target inside window at " << W.Start;
        }
      }
      PrevEnd = W.Start + W.Len;
    }
  }
  EXPECT_GT(TotalWindows, 0u);
}

TEST(Fusion, DivByZeroConstantNeverFuses) {
  // `x mod 0` with a constant 0 must raise the runtime error on the Prim
  // step with the LoadInt already committed — the planner refuses the
  // window so the fused and unfused failure states are identical.
  const std::string Src = "fun f (x : int) : int = x mod 0; f 7";
  auto C = compile(Src);
  ASSERT_TRUE(C.P) << C.Error;
  ModeRun Fused = runMode(*C.P, GcStrategy::CompiledTagFree,
                          GcAlgorithm::Copying, 1 << 16, DispatchMode::Auto,
                          true, true, false);
  ModeRun Plain = runMode(*C.P, GcStrategy::CompiledTagFree,
                          GcAlgorithm::Copying, 1 << 16, DispatchMode::Auto,
                          false, true, false);
  ASSERT_TRUE(Fused.CollectorOk && Plain.CollectorOk);
  EXPECT_FALSE(Fused.Ok);
  EXPECT_FALSE(Plain.Ok);
  EXPECT_EQ(Fused.Error, Plain.Error);
  EXPECT_EQ(Fused.Counters["vm.steps"], Plain.Counters["vm.steps"]);
}

// ---- Self-tail-call elimination ----------------------------------------

TEST(TailCall, SelfRecursionRunsInConstantFrameSpace) {
  // 50k-deep self recursion: with frame reuse the stack never grows, and
  // every recursive transfer is counted in vm.tail_calls. The result must
  // match the frame-per-activation run exactly.
  auto C = compile(workloads::arithKernel(50000));
  ASSERT_TRUE(C.P) << C.Error;
  ModeRun Tc = runMode(*C.P, GcStrategy::CompiledTagFree, GcAlgorithm::Copying,
                       1 << 16, DispatchMode::Auto, true, true);
  ModeRun NoTc =
      runMode(*C.P, GcStrategy::CompiledTagFree, GcAlgorithm::Copying, 1 << 16,
              DispatchMode::Auto, true, true, true, /*TailCalls=*/false);
  ASSERT_TRUE(Tc.Ok) << Tc.Error;
  ASSERT_TRUE(NoTc.Ok) << NoTc.Error;
  EXPECT_EQ(Tc.Value, NoTc.Value);
  EXPECT_EQ(Tc.Counters["vm.tail_calls"], 50000u);
  EXPECT_LE(Tc.Counters["vm.max_frames"], 3u);
  EXPECT_EQ(NoTc.Counters["vm.tail_calls"], 0u);
  EXPECT_GE(NoTc.Counters["vm.max_frames"], 50000u);
}

TEST(TailCall, NonTailRecursionStillPushesFrames) {
  // `n + s (n-1)` uses the result after the call, so the activation is
  // live across it — the decoder must not elide these frames.
  const std::string Src =
      "fun s (n : int) : int = if n = 0 then 0 else n + s (n - 1); s 500";
  auto C = compile(Src);
  ASSERT_TRUE(C.P) << C.Error;
  ModeRun R = runMode(*C.P, GcStrategy::CompiledTagFree, GcAlgorithm::Copying,
                      1 << 16, DispatchMode::Auto, true, true);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Value, "125250");
  EXPECT_EQ(R.Counters["vm.tail_calls"], 0u);
  EXPECT_GE(R.Counters["vm.max_frames"], 500u);
}

TEST(TailCall, MutualRecursionIsNotElided) {
  // Only *self* tail calls may reuse the frame (an f->g transfer could
  // change the instantiation Appel's chain reconstruction depends on).
  const std::string Src = "fun isEven (n : int) : bool =\n"
                          "  if n = 0 then true else isOdd (n - 1)\n"
                          "and isOdd (n : int) : bool =\n"
                          "  if n = 0 then false else isEven (n - 1);\n"
                          "isEven 1000";
  auto C = compile(Src);
  if (!C.P)
    GTEST_SKIP() << "mutual recursion not supported by this frontend: "
                 << C.Error;
  ModeRun R = runMode(*C.P, GcStrategy::CompiledTagFree, GcAlgorithm::Copying,
                      1 << 16, DispatchMode::Auto, true, true);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Counters["vm.tail_calls"], 0u);
}

TEST(TailCall, PolymorphicSelfTailCallSurvivesGcEverywhere) {
  // A polymorphic self-tail-recursive builder that allocates on every
  // iteration: under stress every cons collects with only the reused
  // frame live, so all four strategies (Appel chain reconstruction
  // included) must trace the poly slot through the elided activations.
  const std::string Src =
      "fun repl (n : int) (x : 'a) (acc : 'a list) : 'a list =\n"
      "  if n = 0 then acc else repl (n - 1) x (x :: acc);\n"
      "fun count (l : float list) (acc : int) : int =\n"
      "  case l of [] => acc | x :: xs => count xs (acc + 1);\n"
      "count (repl 200 2.5 []) 0";
  auto C = compile(Src);
  ASSERT_TRUE(C.P) << C.Error;
  for (GcStrategy S : AllStrategies) {
    ModeRun R = runMode(*C.P, S, GcAlgorithm::Copying, 1 << 15,
                        DispatchMode::Auto, true, true, /*Verify=*/true,
                        /*TailCalls=*/true, /*Stress=*/true);
    ASSERT_TRUE(R.CollectorOk) << gcStrategyName(S) << ": " << R.Error;
    ASSERT_TRUE(R.Ok) << gcStrategyName(S) << ": " << R.Error;
    EXPECT_EQ(R.Value, "200") << gcStrategyName(S);
    EXPECT_GE(R.Counters["vm.tail_calls"], 200u) << gcStrategyName(S);
    EXPECT_GT(R.Counters["gc.collections"], 0u) << gcStrategyName(S);
    EXPECT_EQ(R.Counters["gc.verify_violations"], 0u) << gcStrategyName(S);
  }
}

TEST(TailCall, CountersBitIdenticalAcrossDispatchModesWithTailCalls) {
  // The tail-call transfer is part of the shared handler body, so the
  // dispatch engines must agree step-for-step on a tail-heavy workload.
  if (!Vm::threadedDispatchAvailable())
    GTEST_SKIP() << "threaded dispatch not compiled in";
  auto C = compile(workloads::arithKernel(20000));
  ASSERT_TRUE(C.P) << C.Error;
  ModeRun Sw = runMode(*C.P, GcStrategy::Tagged, GcAlgorithm::Copying, 1 << 15,
                       DispatchMode::Switch, true, true);
  ModeRun Th = runMode(*C.P, GcStrategy::Tagged, GcAlgorithm::Copying, 1 << 15,
                       DispatchMode::Threaded, true, true);
  expectSameCounters(Sw, Th, "tail-call tagged");
  EXPECT_GT(Sw.Counters["vm.tail_calls"], 0u);
}

} // namespace
