//===- vm/Vm.cpp ----------------------------------------------------------===//

#include "vm/Vm.h"

#include <cassert>
#include <cstring>
#include <sstream>

using namespace tfgc;

Vm::Vm(const IrProgram &Prog, const CodeImage &Img, TypeContext &Types,
       Collector &Col, VmOptions Opts)
    : Prog(Prog), Img(Img), Types(Types), Col(Col), Opts(Opts),
      Model(Col.model()) {
  if (Model == ValueModel::Tagged)
    this->Opts.ZeroFrames = true;
  GenBarriers = Col.algorithm() == GcAlgorithm::Generational;
  Collections0 = Col.stats().get(StatId::GcCollections);
  Mon = Col.monitor();
  if (Mon)
    SampleFuel = Mon->samplePeriodSteps();
}

bool Vm::fail(const std::string &Message) {
  if (Error.empty())
    Error = Message;
  return false;
}

void Vm::start(FuncId Entry, const std::vector<Word> &Args) {
  assert(!Started && "VM already started");
  EntryFn = Entry;
  Started = true;
  if (Mon)
    Mon->beginRun();
  pushFrame(Entry, Args.data(), (unsigned)Args.size(), false, 0, 0);
}

void Vm::pushFrame(FuncId Callee, const Word *Args, unsigned NumArgs,
                   bool HasSelf, Word Self, SlotIndex CallerDst) {
  const IrFunction &Fn = Prog.fn(Callee);
  FrameInfo F;
  F.FuncId = Callee;
  F.SlotBase = SlotTop;
  F.NumSlots = Fn.numSlots();
  F.PendingSiteAddr = NoSiteAddr;
  F.DynamicLink =
      Stack.Frames.empty() ? NoFrame : (uint32_t)(Stack.Frames.size() - 1);
  F.CallerDst = CallerDst;
  F.ResumeInstr = 0;

  SlotTop += F.NumSlots;
  if (Stack.Slots.size() < SlotTop)
    Stack.Slots.resize(SlotTop * 2 + 64);
  Word *S = Stack.Slots.data() + F.SlotBase;
  if (Opts.ZeroFrames) {
    std::memset(S, 0, F.NumSlots * sizeof(Word));
    WordsZeroed += F.NumSlots;
  }
  unsigned Base = 0;
  if (HasSelf) {
    S[0] = Self;
    Base = 1;
  }
  for (unsigned I = 0; I < NumArgs; ++I)
    S[Base + I] = Args[I];

  Stack.Frames.push_back(F);
  if ((uint32_t)Stack.Frames.size() > MaxFrames)
    MaxFrames = (uint32_t)Stack.Frames.size();
  if (SlotTop > MaxSlotWords)
    MaxSlotWords = SlotTop;
}

Word *Vm::allocate(size_t PayloadWords, ObjKind Kind, CallSiteId Site,
                   uint32_t FrameIdx) {
  // Record the "return address" of the allocator call (paper section 2.1:
  // collection can only start inside cons/new, whose frame's return
  // address selects this frame's GC routine).
  Stack.Frames[FrameIdx].PendingSiteAddr = Prog.site(Site).CodeAddr;

  if (Opts.Checks != SuspendChecks::None) {
    // Tasking: never collect unilaterally; suspend and let the
    // coordinator stop the world (paper section 4). All policies test
    // inside the allocation routine.
    ++SuspendChecksRun;
    assert(Opts.Coord && "tasking checks without a coordinator");
    if (Opts.Coord->gcPending()) {
      Blocked = true;
      return nullptr;
    }
    Word *P = Col.tryAllocatePayload(PayloadWords, Kind);
    if (P)
      return finishAlloc(P, Site);
    Opts.Coord->requestGc(PayloadWords);
    Blocked = true;
    return nullptr;
  }

  RootSet Roots;
  Roots.Stacks.push_back(&Stack);
  if (Opts.GcStress)
    Col.collect(Roots, PayloadWords);

  Word *P = Col.tryAllocatePayload(PayloadWords, Kind);
  if (P)
    return finishAlloc(P, Site);
  Col.collect(Roots, PayloadWords);
  P = Col.tryAllocatePayload(PayloadWords, Kind);
  if (!P)
    fail("out of memory");
  return finishAlloc(P, Site);
}

Word Vm::makeFloat(double D, CallSiteId Site, uint32_t FrameIdx, bool &Ok) {
  if (Model == ValueModel::TagFree)
    return floatToWord(D);
  ++FloatBoxes;
  Word *P = allocate(1, ObjKind::Raw, Site, FrameIdx);
  if (!P) {
    Ok = false;
    return 0;
  }
  P[0] = floatToWord(D);
  return (Word)(uintptr_t)P;
}

double Vm::readFloat(Word W) const {
  if (Model == ValueModel::TagFree)
    return wordToFloat(W);
  return wordToFloat(*reinterpret_cast<const Word *>(W));
}

StepResult Vm::step() {
  if (DoneFlag)
    return StepResult::Done;
  if (!Error.empty())
    return StepResult::Failed;
  if (!Started)
    start(Prog.MainId, {});

  if (++Steps > Opts.MaxSteps) {
    fail("step limit exceeded");
    return StepResult::Failed;
  }
  uint32_t FrameIdx = (uint32_t)(Stack.Frames.size() - 1);
  const IrFunction &Fn = Prog.fn(Stack.Frames[FrameIdx].FuncId);
  uint32_t Pc = Stack.Frames[FrameIdx].ResumeInstr;
  assert(Pc < Fn.Code.size() && "fell off the end of a function");
  const Instr &I = Fn.Code[Pc];
  if (--SampleFuel == 0) [[unlikely]]
    takeSample(FrameIdx, I.Op);
  Word *S = Stack.Slots.data() + Stack.Frames[FrameIdx].SlotBase;
  bool Tagged = Model == ValueModel::Tagged;
  uint32_t NextPc = Pc + 1;

  switch (I.Op) {
  case Opcode::LoadInt:
    S[I.Dst] = Tagged ? tagInt(I.IntImm) : (Word)I.IntImm;
    break;
  case Opcode::LoadBool:
    S[I.Dst] = Tagged ? tagInt(I.IntImm) : (Word)I.IntImm;
    break;
  case Opcode::LoadUnit:
    S[I.Dst] = Tagged ? tagInt(0) : 0;
    break;
  case Opcode::LoadFloat: {
    bool Ok = true;
    Word W = makeFloat(I.FloatImm, I.Site, FrameIdx, Ok);
    if (!Ok)
      break;
    S = Stack.Slots.data() + Stack.Frames[FrameIdx].SlotBase;
    S[I.Dst] = W;
    break;
  }
  case Opcode::Move:
    S[I.Dst] = S[I.Srcs[0]];
    break;

  case Opcode::Prim: {
    switch (I.Prim) {
    case PrimVal::Add:
    case PrimVal::Sub:
    case PrimVal::Mul:
    case PrimVal::Div:
    case PrimVal::Mod: {
      int64_t A, B;
      if (Tagged) {
        // Tag stripping before arithmetic, reinstating after — the
        // mutator overhead the paper wants to eliminate (E1).
        A = untagInt(S[I.Srcs[0]]);
        B = untagInt(S[I.Srcs[1]]);
        TagOps += 3;
      } else {
        A = (int64_t)S[I.Srcs[0]];
        B = (int64_t)S[I.Srcs[1]];
      }
      int64_t Out = 0;
      switch (I.Prim) {
      case PrimVal::Add: Out = A + B; break;
      case PrimVal::Sub: Out = A - B; break;
      case PrimVal::Mul: Out = A * B; break;
      case PrimVal::Div:
        if (B == 0) {
          fail("division by zero");
          break;
        }
        Out = A / B;
        break;
      case PrimVal::Mod:
        if (B == 0) {
          fail("division by zero");
          break;
        }
        Out = A % B;
        break;
      default: break;
      }
      S[I.Dst] = Tagged ? tagInt(Out) : (Word)Out;
      break;
    }
    case PrimVal::Neg: {
      int64_t A = Tagged ? untagInt(S[I.Srcs[0]]) : (int64_t)S[I.Srcs[0]];
      if (Tagged)
        TagOps += 2;
      S[I.Dst] = Tagged ? tagInt(-A) : (Word)(-A);
      break;
    }
    case PrimVal::Lt:
    case PrimVal::Le:
    case PrimVal::Gt:
    case PrimVal::Ge:
    case PrimVal::Eq:
    case PrimVal::Ne: {
      // Order-preserving tags: compare directly in either model.
      int64_t A = (int64_t)S[I.Srcs[0]], B = (int64_t)S[I.Srcs[1]];
      bool Out = false;
      switch (I.Prim) {
      case PrimVal::Lt: Out = A < B; break;
      case PrimVal::Le: Out = A <= B; break;
      case PrimVal::Gt: Out = A > B; break;
      case PrimVal::Ge: Out = A >= B; break;
      case PrimVal::Eq: Out = A == B; break;
      case PrimVal::Ne: Out = A != B; break;
      default: break;
      }
      S[I.Dst] = Tagged ? tagInt(Out) : (Word)Out;
      break;
    }
    case PrimVal::Not: {
      int64_t A = Tagged ? untagInt(S[I.Srcs[0]]) : (int64_t)S[I.Srcs[0]];
      S[I.Dst] = Tagged ? tagInt(!A) : (Word)(!A);
      break;
    }
    case PrimVal::FAdd:
    case PrimVal::FSub:
    case PrimVal::FMul:
    case PrimVal::FDiv: {
      double A = readFloat(S[I.Srcs[0]]);
      double B = readFloat(S[I.Srcs[1]]);
      double Out = 0;
      switch (I.Prim) {
      case PrimVal::FAdd: Out = A + B; break;
      case PrimVal::FSub: Out = A - B; break;
      case PrimVal::FMul: Out = A * B; break;
      case PrimVal::FDiv: Out = A / B; break;
      default: break;
      }
      bool Ok = true;
      Word W = makeFloat(Out, I.Site, FrameIdx, Ok);
      if (!Ok)
        break;
      S = Stack.Slots.data() + Stack.Frames[FrameIdx].SlotBase;
      S[I.Dst] = W;
      break;
    }
    case PrimVal::FNeg: {
      bool Ok = true;
      Word W = makeFloat(-readFloat(S[I.Srcs[0]]), I.Site, FrameIdx, Ok);
      if (!Ok)
        break;
      S = Stack.Slots.data() + Stack.Frames[FrameIdx].SlotBase;
      S[I.Dst] = W;
      break;
    }
    case PrimVal::FLt:
    case PrimVal::FEq: {
      double A = readFloat(S[I.Srcs[0]]);
      double B = readFloat(S[I.Srcs[1]]);
      bool Out = I.Prim == PrimVal::FLt ? A < B : A == B;
      S[I.Dst] = Tagged ? tagInt(Out) : (Word)Out;
      break;
    }
    case PrimVal::IntToFloat: {
      int64_t A = Tagged ? untagInt(S[I.Srcs[0]]) : (int64_t)S[I.Srcs[0]];
      bool Ok = true;
      Word W = makeFloat((double)A, I.Site, FrameIdx, Ok);
      if (!Ok)
        break;
      S = Stack.Slots.data() + Stack.Frames[FrameIdx].SlotBase;
      S[I.Dst] = W;
      break;
    }
    }
    break;
  }

  case Opcode::Print: {
    int64_t V = Tagged ? untagInt(S[I.Srcs[0]]) : (int64_t)S[I.Srcs[0]];
    Output += std::to_string(V);
    Output += '\n';
    break;
  }

  case Opcode::MakeTuple: {
    Word *P = allocate(I.Srcs.size(), ObjKind::Scan, I.Site, FrameIdx);
    if (!P)
      break;
    S = Stack.Slots.data() + Stack.Frames[FrameIdx].SlotBase;
    for (size_t K = 0; K < I.Srcs.size(); ++K)
      P[K] = S[I.Srcs[K]];
    S[I.Dst] = (Word)(uintptr_t)P;
    break;
  }
  case Opcode::MakeData: {
    if (I.Srcs.empty()) {
      S[I.Dst] = Tagged ? tagInt(I.CtorIdx) : (Word)I.CtorIdx;
      break;
    }
    Word *P = allocate(1 + I.Srcs.size(), ObjKind::Scan, I.Site, FrameIdx);
    if (!P)
      break;
    S = Stack.Slots.data() + Stack.Frames[FrameIdx].SlotBase;
    P[0] = Tagged ? tagInt(I.CtorIdx) : (Word)I.CtorIdx;
    for (size_t K = 0; K < I.Srcs.size(); ++K)
      P[1 + K] = S[I.Srcs[K]];
    S[I.Dst] = (Word)(uintptr_t)P;
    break;
  }
  case Opcode::MakeClosure: {
    Word *P = allocate(1 + I.Srcs.size(), ObjKind::Scan, I.Site, FrameIdx);
    if (!P)
      break;
    S = Stack.Slots.data() + Stack.Frames[FrameIdx].SlotBase;
    uint32_t Entry = Prog.fn(I.Callee).EntryAddr;
    P[0] = Tagged ? tagInt(Entry) : (Word)Entry;
    for (size_t K = 0; K < I.Srcs.size(); ++K)
      P[1 + K] = S[I.Srcs[K]];
    S[I.Dst] = (Word)(uintptr_t)P;
    break;
  }
  case Opcode::MakeRef: {
    Word *P = allocate(1, ObjKind::Scan, I.Site, FrameIdx);
    if (!P)
      break;
    S = Stack.Slots.data() + Stack.Frames[FrameIdx].SlotBase;
    P[0] = S[I.Srcs[0]];
    S[I.Dst] = (Word)(uintptr_t)P;
    break;
  }

  case Opcode::GetField: {
    const Word *P = reinterpret_cast<const Word *>(S[I.Srcs[0]]);
    S[I.Dst] = P[I.FieldIdx];
    break;
  }
  case Opcode::GetTag: {
    Word W = S[I.Srcs[0]];
    if (Tagged)
      S[I.Dst] =
          isTaggedImmediate(W) ? W : *reinterpret_cast<const Word *>(W);
    else
      S[I.Dst] =
          W < ImmediateCtorLimit ? W : *reinterpret_cast<const Word *>(W);
    break;
  }
  case Opcode::SetClosureField: {
    Word *P = reinterpret_cast<Word *>(S[I.Srcs[0]]);
    P[I.FieldIdx] = S[I.Srcs[1]];
    if (GenBarriers) {
      ++BarrierOps;
      Col.writeBarrier(&P[I.FieldIdx], S[I.Srcs[1]],
                       Fn.SlotTypes[I.Srcs[1]]);
    }
    break;
  }
  case Opcode::RefLoad:
    S[I.Dst] = *reinterpret_cast<const Word *>(S[I.Srcs[0]]);
    break;
  case Opcode::RefStore: {
    Word *P = reinterpret_cast<Word *>(S[I.Srcs[0]]);
    *P = S[I.Srcs[1]];
    if (GenBarriers) {
      ++BarrierOps;
      Col.writeBarrier(P, S[I.Srcs[1]], Fn.SlotTypes[I.Srcs[1]]);
    }
    break;
  }

  case Opcode::Jump:
    NextPc = Fn.LabelTargets[I.Label];
    break;
  case Opcode::Branch: {
    bool Cond = Tagged ? untagInt(S[I.Srcs[0]]) != 0 : S[I.Srcs[0]] != 0;
    NextPc = Fn.LabelTargets[Cond ? I.Label : I.Label2];
    break;
  }

  case Opcode::Call:
  case Opcode::CallIndirect: {
    // Every-call suspension test (paper section 4). Under the Rgc policy
    // the test is folded into the jump target computation, so it is not
    // counted as an explicit check. A task may only suspend at a site
    // whose gc_word exists — i.e. one the section-5.1 analysis says can
    // reach a collection; the suspended stack then has valid frame GC
    // routines at every level.
    if ((Opts.Checks == SuspendChecks::AtEveryCall ||
         Opts.Checks == SuspendChecks::RgcRegister) &&
        Prog.site(I.Site).CanTriggerGc) {
      if (Opts.Checks == SuspendChecks::AtEveryCall)
        ++SuspendChecksRun;
      if (Opts.Coord->gcPending()) {
        Stack.Frames[FrameIdx].PendingSiteAddr = Prog.site(I.Site).CodeAddr;
        Blocked = true;
        break;
      }
    }
    ++Calls;
    FuncId Callee;
    bool HasSelf = I.Op == Opcode::CallIndirect;
    Word Self = 0;
    unsigned FirstArg = 0;
    if (HasSelf) {
      Self = S[I.Srcs[0]];
      if (Self == 0 || (Tagged && !isTaggedPointer(Self))) {
        fail("call through invalid closure");
        break;
      }
      Word CodeWord = *reinterpret_cast<const Word *>(Self);
      uint32_t Entry =
          Tagged ? (uint32_t)untagInt(CodeWord) : (uint32_t)CodeWord;
      Callee = Img.functionAt(Entry);
      FirstArg = 1;
    } else {
      Callee = I.Callee;
    }
    Stack.Frames[FrameIdx].PendingSiteAddr = Prog.site(I.Site).CodeAddr;
    Stack.Frames[FrameIdx].ResumeInstr = Pc + 1;
    // Copy the arguments before pushFrame can reallocate the slot array.
    Word Args[16];
    assert(I.Srcs.size() - FirstArg <= 16 && "argument buffer too small");
    for (size_t K = FirstArg; K < I.Srcs.size(); ++K)
      Args[K - FirstArg] = S[I.Srcs[K]];
    pushFrame(Callee, Args, (unsigned)(I.Srcs.size() - FirstArg), HasSelf,
              Self, I.Dst);
    return StepResult::Ran;
  }
  case Opcode::Return: {
    Word Rv = S[I.Srcs[0]];
    SlotIndex Dst = Stack.Frames[FrameIdx].CallerDst;
    SlotTop = Stack.Frames[FrameIdx].SlotBase;
    Stack.Frames.pop_back();
    if (Stack.Frames.empty()) {
      ReturnValue = Rv;
      DoneFlag = true;
      return StepResult::Done;
    }
    FrameInfo &Caller = Stack.Frames.back();
    Stack.Slots[Caller.SlotBase + Dst] = Rv;
    Caller.PendingSiteAddr = NoSiteAddr;
    return StepResult::Ran;
  }
  case Opcode::Abort:
    fail("pattern match failure");
    break;
  }

  if (Blocked) {
    Blocked = false;
    --Steps; // The instruction will re-execute.
    return StepResult::BlockedOnGc;
  }
  if (!Error.empty())
    return StepResult::Failed;
  Stack.Frames[FrameIdx].ResumeInstr = NextPc;
  return StepResult::Ran;
}

RunResult Vm::run() {
  RunResult R;
  for (;;) {
    StepResult S = step();
    if (S == StepResult::Ran)
      continue;
    assert(S != StepResult::BlockedOnGc &&
           "sequential VM cannot block on GC");
    break;
  }
  flushCounters();
  R.Output = Output;
  if (!Error.empty()) {
    R.Ok = false;
    R.Error = Error;
    return R;
  }
  R.Ok = true;
  R.Value = renderResult();
  return R;
}

std::string Vm::renderResult() {
  Type *ResultTy = Prog.fn(EntryFn).FunTy->resolved()->result();
  return renderValue(ReturnValue, ResultTy);
}

namespace {

OpClass classifyOp(Opcode Op) {
  switch (Op) {
  case Opcode::LoadInt:
  case Opcode::LoadFloat:
  case Opcode::LoadBool:
  case Opcode::LoadUnit:
  case Opcode::Move:
    return OpClass::Load;
  case Opcode::Prim:
  case Opcode::Print:
    return OpClass::Prim;
  case Opcode::MakeTuple:
  case Opcode::MakeData:
  case Opcode::MakeClosure:
  case Opcode::MakeRef:
    return OpClass::Alloc;
  case Opcode::GetField:
  case Opcode::GetTag:
  case Opcode::SetClosureField:
  case Opcode::RefLoad:
  case Opcode::RefStore:
    return OpClass::HeapAccess;
  case Opcode::Jump:
  case Opcode::Branch:
    return OpClass::Branch;
  case Opcode::Call:
  case Opcode::CallIndirect:
  case Opcode::Return:
    return OpClass::Call;
  default:
    return OpClass::Other;
  }
}

} // namespace

void Vm::takeSample(uint32_t FrameIdx, Opcode Op) {
  if (!Mon) {
    SampleFuel = UINT64_MAX;
    return;
  }
  SampleFuel = Mon->samplePeriodSteps();
  const FrameInfo &F = Stack.Frames[FrameIdx];
  uint32_t Caller = F.DynamicLink == NoFrame
                        ? Monitor::NoFunc
                        : Stack.Frames[F.DynamicLink].FuncId;
  Monitor::SampleCounters SC;
  SC.Steps = Steps;
  SC.AllocBytes = Col.bytesAllocatedTotal();
  SC.BarrierOps = Col.stats().get(StatId::GcBarrierOps) + BarrierOps;
  SC.RemsetEntries = Col.stats().get(StatId::GcRemsetEntries);
  Mon->recordSample(F.FuncId, Caller, classifyOp(Op), Opts.TaskIndex, SC);
}

void Vm::flushCounters() {
  Stats &St = Col.stats();
  if (Mon) {
    Mon->noteTaskSteps(Opts.TaskIndex, Steps);
    Mon->endRun();
  }
  St.set(StatId::VmSteps, Steps);
  St.set(StatId::VmTagOps, TagOps);
  St.set(StatId::VmFloatBoxes, FloatBoxes);
  St.set(StatId::VmCalls, Calls);
  St.set(StatId::VmFrameWordsZeroed, WordsZeroed);
  St.set(StatId::VmMaxFrames, MaxFrames);
  St.set(StatId::VmMaxSlotWords, MaxSlotWords);
  St.add(StatId::TaskSuspendChecks, SuspendChecksRun);
  SuspendChecksRun = 0;
  St.add(StatId::GcBarrierOps, BarrierOps);
  BarrierOps = 0;
  St.set(StatId::HeapUsedBytes, Col.heapUsedBytes());
  St.set(StatId::HeapCapacityBytes, Col.heapCapacityBytes());
  St.set(StatId::HeapBytesAllocatedTotal, Col.bytesAllocatedTotal());
  Col.publishTelemetryStats();
}

std::string Vm::renderValue(Word V, Type *Ty, int Depth) {
  if (Depth > 64)
    return "...";
  Ty = Ty->resolved();
  bool Tagged = Model == ValueModel::Tagged;
  std::ostringstream OS;
  switch (Ty->getKind()) {
  case TypeKind::Int:
    OS << (Tagged ? untagInt(V) : (int64_t)V);
    return OS.str();
  case TypeKind::Bool:
    return (Tagged ? untagInt(V) : (int64_t)V) ? "true" : "false";
  case TypeKind::Unit:
    return "()";
  case TypeKind::Float: {
    OS << readFloat(V);
    return OS.str();
  }
  case TypeKind::Var:
    return "<poly>";
  case TypeKind::Fun:
    return "<fn>";
  case TypeKind::Tuple: {
    const Word *P = reinterpret_cast<const Word *>(V);
    OS << '(';
    for (unsigned I = 0; I < Ty->numArgs(); ++I) {
      if (I)
        OS << ", ";
      OS << renderValue(P[I], Ty->arg(I), Depth + 1);
    }
    OS << ')';
    return OS.str();
  }
  case TypeKind::Ref: {
    const Word *P = reinterpret_cast<const Word *>(V);
    return "ref " + renderValue(P[0], Ty->refElem(), Depth + 1);
  }
  case TypeKind::Data: {
    DatatypeInfo *Info = Ty->data();
    std::vector<Type *> Args(Ty->args().begin(), Ty->args().end());
    // Lists render with bracket sugar.
    if (Info == Types.listInfo()) {
      OS << '[';
      Word Cur = V;
      bool First = true;
      int Guard = 0;
      for (;;) {
        bool Imm = Tagged ? isTaggedImmediate(Cur) : Cur < ImmediateCtorLimit;
        if (Imm)
          break;
        const Word *P = reinterpret_cast<const Word *>(Cur);
        if (!First)
          OS << ", ";
        First = false;
        OS << renderValue(P[1], Args[0], Depth + 1);
        Cur = P[2];
        if (++Guard > 1000) {
          OS << ", ...";
          break;
        }
      }
      OS << ']';
      return OS.str();
    }
    bool Imm = Tagged ? isTaggedImmediate(V) : V < ImmediateCtorLimit;
    uint64_t Ctor;
    const Word *P = nullptr;
    if (Imm) {
      Ctor = Tagged ? (uint64_t)untagInt(V) : V;
    } else {
      P = reinterpret_cast<const Word *>(V);
      Ctor = Tagged ? (uint64_t)untagInt(P[0]) : P[0];
    }
    const CtorInfo &C = Info->Ctors[Ctor];
    OS << C.Name;
    if (!C.Fields.empty()) {
      std::vector<Type *> Fields =
          Types.instantiateCtorFields(Info, (unsigned)Ctor, Args);
      OS << '(';
      for (size_t I = 0; I < Fields.size(); ++I) {
        if (I)
          OS << ", ";
        OS << renderValue(P[1 + I], Fields[I], Depth + 1);
      }
      OS << ')';
    }
    return OS.str();
  }
  }
  return "?";
}
