//===- driver/Compiler.h - One-stop compilation facade ----------*- C++ -*-===//
///
/// \file
/// The public entry point of the library:
///
///   tfgc::Compiler C;
///   auto P = C.compile(Source);                       // MiniML -> IR + GC metadata
///   tfgc::Stats St;
///   auto Col = P->makeCollector(GcStrategy::CompiledTagFree,
///                               GcAlgorithm::Copying, 1 << 20, St);
///   tfgc::Vm Vm(P->Prog, P->Image, *P->Types, *Col,
///               tfgc::defaultVmOptions(GcStrategy::CompiledTagFree));
///   tfgc::RunResult R = Vm.run();
///
/// One compilation produces the metadata for *every* strategy (tagged
/// needs none; compiled/interpreted/Appel each get their own tables), so
/// experiments run the same program under all of them.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_DRIVER_COMPILER_H
#define TFGC_DRIVER_COMPILER_H

#include "analysis/GcPoints.h"
#include "analysis/Reconstruct.h"
#include "core/AppelCollector.h"
#include "core/GoldbergCollector.h"
#include "core/TaggedCollector.h"
#include "gcmeta/AppelMeta.h"
#include "gcmeta/CodeImage.h"
#include "gcmeta/CompiledRoutines.h"
#include "gcmeta/InterpretedMeta.h"
#include "ir/Ir.h"
#include "ir/Monomorphise.h"
#include "vm/Vm.h"

#include <memory>
#include <optional>
#include <string>

namespace tfgc {

struct CompileOptions {
  /// Trace only live slots (paper section 5.2); off = all initialized.
  bool UseLiveness = true;
  /// Omit gc_words at sites that cannot trigger GC (section 5.1).
  bool UseGcPointAnalysis = true;
  /// Reject polymorphic programs (section 2's monomorphic setting).
  bool RequireMonomorphic = false;
  /// Compile for the tasking runtime: keep a gc_word at every call site
  /// (tasks may suspend anywhere) and trace outgoing call arguments (a
  /// suspended call re-executes after the collection). Implies
  /// UseGcPointAnalysis = false.
  bool TaskingSafe = false;
  /// Specialize every polymorphic function at its ground instantiations
  /// before emitting GC metadata — the code-growth alternative to the
  /// paper's section 3 (see ir/Monomorphise.h). Also makes
  /// non-reconstructible closures collectible.
  bool Monomorphise = false;
  /// Goldberg & Gloger '92: instead of rejecting closures whose type
  /// parameters cannot be reconstructed from their function type, bind
  /// the missing parameters to a dummy (const) type-GC routine at
  /// collection time — sound because a value whose type cannot be
  /// reconstructed can never be inspected afterwards.
  bool GlogerDummies = false;
};

struct CompiledProgram {
  std::unique_ptr<TypeContext> Types;
  IrProgram Prog;
  CodeImage Image;
  ReconstructResult Recon;
  CompiledMetadata Compiled;
  std::unique_ptr<InterpretedMetadata> Interp;
  std::unique_ptr<AppelMetadata> Appel;
  GcPointResult GcPoints;
  MonomorphiseResult Mono; ///< Only meaningful with Options.Monomorphise.
  CompileOptions Options;

  /// Creates a collector for \p Strategy. Returns nullptr (with \p Error
  /// set) if the program is not collectible under that strategy (e.g. a
  /// non-reconstructible lambda under a tag-free strategy).
  /// \p NurseryBytes applies to GcAlgorithm::Generational only (0 = the
  /// collector's default of HeapBytes/8).
  std::unique_ptr<Collector> makeCollector(GcStrategy Strategy,
                                           GcAlgorithm Algo, size_t HeapBytes,
                                           Stats &St,
                                           std::string *Error = nullptr,
                                           size_t NurseryBytes = 0);
};

/// VM options appropriate for \p Strategy (frame zeroing where required).
VmOptions defaultVmOptions(GcStrategy Strategy, bool GcStress = false);

/// Enables \p Prof and wires it to \p Col: installs the program's
/// allocation-site debug table (from the code image) and function names,
/// sets the tagged-header convention for \p Strategy, and registers the
/// profiler with the collector. \p Prof must outlive \p Col's use; call
/// before constructing the Vm so every allocation is attributed.
void attachHeapProfiler(const CompiledProgram &P, GcStrategy Strategy,
                        Collector &Col, HeapProfiler &Prof);

/// Wires the mutator monitor to \p Col: installs the program's function
/// names for profile attribution and registers the monitor with the
/// collector (which adopts it as the telemetry event sink). \p Mon must
/// outlive \p Col's use; call before constructing the Vm — the VM arms
/// its sample-point fuel at construction.
void attachMonitor(const CompiledProgram &P, Collector &Col, Monitor &Mon);

class Compiler {
public:
  explicit Compiler(CompileOptions Options = {}) : Options(Options) {}

  /// Runs the full pipeline. On failure returns nullptr and fills
  /// \p ErrorOut with rendered diagnostics.
  std::unique_ptr<CompiledProgram> compile(const std::string &Source,
                                           std::string *ErrorOut = nullptr);

private:
  CompileOptions Options;
};

/// Convenience used throughout tests and benches: compile + run.
struct ExecResult {
  bool CompileOk = false;
  std::string CompileError;
  RunResult Run;
  Stats St;
};
ExecResult execProgram(const std::string &Source, GcStrategy Strategy,
                       GcAlgorithm Algo = GcAlgorithm::Copying,
                       size_t HeapBytes = 1 << 20, bool GcStress = false,
                       CompileOptions Options = {},
                       size_t NurseryBytes = 0);

} // namespace tfgc

#endif // TFGC_DRIVER_COMPILER_H
