file(REMOVE_RECURSE
  "CMakeFiles/tfgc_gcmeta.dir/AppelMeta.cpp.o"
  "CMakeFiles/tfgc_gcmeta.dir/AppelMeta.cpp.o.d"
  "CMakeFiles/tfgc_gcmeta.dir/CodeImage.cpp.o"
  "CMakeFiles/tfgc_gcmeta.dir/CodeImage.cpp.o.d"
  "CMakeFiles/tfgc_gcmeta.dir/CompiledRoutines.cpp.o"
  "CMakeFiles/tfgc_gcmeta.dir/CompiledRoutines.cpp.o.d"
  "CMakeFiles/tfgc_gcmeta.dir/Descriptor.cpp.o"
  "CMakeFiles/tfgc_gcmeta.dir/Descriptor.cpp.o.d"
  "CMakeFiles/tfgc_gcmeta.dir/InterpretedMeta.cpp.o"
  "CMakeFiles/tfgc_gcmeta.dir/InterpretedMeta.cpp.o.d"
  "libtfgc_gcmeta.a"
  "libtfgc_gcmeta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfgc_gcmeta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
