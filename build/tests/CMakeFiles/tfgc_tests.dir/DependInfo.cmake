
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cpp" "tests/CMakeFiles/tfgc_tests.dir/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/tfgc_tests.dir/analysis_test.cpp.o.d"
  "/root/repo/tests/exhaustiveness_test.cpp" "tests/CMakeFiles/tfgc_tests.dir/exhaustiveness_test.cpp.o" "gcc" "tests/CMakeFiles/tfgc_tests.dir/exhaustiveness_test.cpp.o.d"
  "/root/repo/tests/gcmeta_test.cpp" "tests/CMakeFiles/tfgc_tests.dir/gcmeta_test.cpp.o" "gcc" "tests/CMakeFiles/tfgc_tests.dir/gcmeta_test.cpp.o.d"
  "/root/repo/tests/gloger_test.cpp" "tests/CMakeFiles/tfgc_tests.dir/gloger_test.cpp.o" "gcc" "tests/CMakeFiles/tfgc_tests.dir/gloger_test.cpp.o.d"
  "/root/repo/tests/heap_verify_test.cpp" "tests/CMakeFiles/tfgc_tests.dir/heap_verify_test.cpp.o" "gcc" "tests/CMakeFiles/tfgc_tests.dir/heap_verify_test.cpp.o.d"
  "/root/repo/tests/infer_test.cpp" "tests/CMakeFiles/tfgc_tests.dir/infer_test.cpp.o" "gcc" "tests/CMakeFiles/tfgc_tests.dir/infer_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/tfgc_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/tfgc_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/lexer_test.cpp" "tests/CMakeFiles/tfgc_tests.dir/lexer_test.cpp.o" "gcc" "tests/CMakeFiles/tfgc_tests.dir/lexer_test.cpp.o.d"
  "/root/repo/tests/lower_test.cpp" "tests/CMakeFiles/tfgc_tests.dir/lower_test.cpp.o" "gcc" "tests/CMakeFiles/tfgc_tests.dir/lower_test.cpp.o.d"
  "/root/repo/tests/mono_test.cpp" "tests/CMakeFiles/tfgc_tests.dir/mono_test.cpp.o" "gcc" "tests/CMakeFiles/tfgc_tests.dir/mono_test.cpp.o.d"
  "/root/repo/tests/parser_test.cpp" "tests/CMakeFiles/tfgc_tests.dir/parser_test.cpp.o" "gcc" "tests/CMakeFiles/tfgc_tests.dir/parser_test.cpp.o.d"
  "/root/repo/tests/poly_gc_test.cpp" "tests/CMakeFiles/tfgc_tests.dir/poly_gc_test.cpp.o" "gcc" "tests/CMakeFiles/tfgc_tests.dir/poly_gc_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/tfgc_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/tfgc_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/regression_test.cpp" "tests/CMakeFiles/tfgc_tests.dir/regression_test.cpp.o" "gcc" "tests/CMakeFiles/tfgc_tests.dir/regression_test.cpp.o.d"
  "/root/repo/tests/runtime_test.cpp" "tests/CMakeFiles/tfgc_tests.dir/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/tfgc_tests.dir/runtime_test.cpp.o.d"
  "/root/repo/tests/tasking_test.cpp" "tests/CMakeFiles/tfgc_tests.dir/tasking_test.cpp.o" "gcc" "tests/CMakeFiles/tfgc_tests.dir/tasking_test.cpp.o.d"
  "/root/repo/tests/typegc_test.cpp" "tests/CMakeFiles/tfgc_tests.dir/typegc_test.cpp.o" "gcc" "tests/CMakeFiles/tfgc_tests.dir/typegc_test.cpp.o.d"
  "/root/repo/tests/types_test.cpp" "tests/CMakeFiles/tfgc_tests.dir/types_test.cpp.o" "gcc" "tests/CMakeFiles/tfgc_tests.dir/types_test.cpp.o.d"
  "/root/repo/tests/verify_test.cpp" "tests/CMakeFiles/tfgc_tests.dir/verify_test.cpp.o" "gcc" "tests/CMakeFiles/tfgc_tests.dir/verify_test.cpp.o.d"
  "/root/repo/tests/vm_test.cpp" "tests/CMakeFiles/tfgc_tests.dir/vm_test.cpp.o" "gcc" "tests/CMakeFiles/tfgc_tests.dir/vm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/tfgc_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/tasking/CMakeFiles/tfgc_tasking.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tfgc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/tfgc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tfgc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gcmeta/CMakeFiles/tfgc_gcmeta.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tfgc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/tfgc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/tfgc_types.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/tfgc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tfgc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tfgc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
