//===- analysis/Liveness.cpp ----------------------------------------------===//

#include "analysis/Liveness.h"
#include "analysis/Cfg.h"

#include <vector>

using namespace tfgc;

namespace {

/// Dense bitset over slots, sized per function.
class SlotSet {
public:
  explicit SlotSet(size_t N = 0) : Bits(N, false) {}
  void resize(size_t N) { Bits.assign(N, false); }
  bool test(size_t I) const { return Bits[I]; }
  void set(size_t I) { Bits[I] = true; }
  void clear(size_t I) { Bits[I] = false; }
  void setAll() { Bits.assign(Bits.size(), true); }

  /// this |= Other; returns true if anything changed.
  bool unionWith(const SlotSet &Other) {
    bool Changed = false;
    for (size_t I = 0; I < Bits.size(); ++I)
      if (Other.Bits[I] && !Bits[I]) {
        Bits[I] = true;
        Changed = true;
      }
    return Changed;
  }

  /// this &= Other.
  void intersectWith(const SlotSet &Other) {
    for (size_t I = 0; I < Bits.size(); ++I)
      if (!Other.Bits[I])
        Bits[I] = false;
  }

  bool operator==(const SlotSet &Other) const { return Bits == Other.Bits; }

  size_t size() const { return Bits.size(); }

private:
  std::vector<bool> Bits;
};

struct FnDataflow {
  std::vector<SlotSet> LiveOut; ///< Live after each instruction.
  std::vector<SlotSet> InitIn;  ///< Definitely initialized before it.
};

FnDataflow solve(const IrFunction &F) {
  Cfg G(F);
  size_t N = F.Code.size();
  size_t Slots = F.numSlots();
  FnDataflow D;
  D.LiveOut.assign(N, SlotSet(Slots));
  D.InitIn.assign(N, SlotSet(Slots));

  // Backward liveness to a fixpoint.
  std::vector<SlotSet> LiveIn(N, SlotSet(Slots));
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = N; I-- > 0;) {
      const Instr &In = F.Code[I];
      SlotSet Out(Slots);
      for (uint32_t S : G.succs((uint32_t)I))
        Out.unionWith(LiveIn[S]);
      SlotSet NewIn = Out;
      if (In.hasDst())
        NewIn.clear(In.Dst);
      for (SlotIndex S : In.Srcs)
        NewIn.set(S);
      if (!(D.LiveOut[I] == Out)) {
        D.LiveOut[I] = Out;
        Changed = true;
      }
      if (!(LiveIn[I] == NewIn)) {
        LiveIn[I] = NewIn;
        Changed = true;
      }
    }
  }

  // Forward definite-initialization to a fixpoint. Parameters (and the
  // closure self slot) are initialized at entry.
  std::vector<SlotSet> InitOut(N, SlotSet(Slots));
  for (auto &S : InitOut)
    S.setAll(); // "top" for the intersection; entry fixes instruction 0.
  Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I < N; ++I) {
      SlotSet In(Slots);
      if (G.preds((uint32_t)I).empty()) {
        for (unsigned P = 0; P < F.NumParams; ++P)
          In.set(P);
      } else {
        In.setAll();
        for (uint32_t P : G.preds((uint32_t)I))
          In.intersectWith(InitOut[P]);
        // Entry can also fall through from nothing only at index 0.
        if (I == 0) {
          SlotSet Entry(Slots);
          for (unsigned P = 0; P < F.NumParams; ++P)
            Entry.set(P);
          In.unionWith(Entry);
        }
      }
      SlotSet Out = In;
      if (F.Code[I].hasDst())
        Out.set(F.Code[I].Dst);
      if (!(D.InitIn[I] == In)) {
        D.InitIn[I] = In;
        Changed = true;
      }
      if (!(InitOut[I] == Out)) {
        InitOut[I] = Out;
        Changed = true;
      }
    }
  }
  return D;
}

} // namespace

void tfgc::computeTraceSets(IrProgram &P, const LivenessOptions &Opts) {
  // Solve each function once, then fill the site trace sets.
  std::vector<FnDataflow> Flows;
  Flows.reserve(P.Functions.size());
  for (const IrFunction &F : P.Functions)
    Flows.push_back(solve(F));

  for (CallSiteInfo &S : P.Sites) {
    const IrFunction &F = P.fn(S.Caller);
    const Instr &In = F.Code[S.InstrIdx];
    const FnDataflow &D = Flows[S.Caller];

    SlotSet Trace(F.numSlots());
    if (Opts.UseLiveness) {
      Trace = D.LiveOut[S.InstrIdx];
      if (In.hasDst())
        Trace.clear(In.Dst); // Written only after the call returns.
      // Allocation instructions read their operands *after* a potential
      // collection (the object is allocated first, then filled from the
      // slots), so the operands must be traced and updated. Under tasking
      // the same holds for call arguments: a task suspended at the call
      // re-executes it after the collection.
      if (S.Kind == SiteKind::Alloc || Opts.TraceCallArgs)
        for (SlotIndex Src : In.Srcs)
          Trace.set(Src);
    } else {
      Trace.setAll();
      if (In.hasDst())
        Trace.clear(In.Dst);
    }
    // Never trace uninitialized slots: their contents are garbage (paper
    // section 1.1.1's critique of per-procedure descriptors).
    Trace.intersectWith(D.InitIn[S.InstrIdx]);

    S.TraceSlots.clear();
    for (size_t I = 0; I < Trace.size(); ++I)
      if (Trace.test(I))
        S.TraceSlots.push_back((SlotIndex)I);
  }
}
