//===- support/Casting.h - isa/cast/dyn_cast --------------------*- C++ -*-===//
///
/// \file
/// Minimal LLVM-style casting helpers. A class opts in by providing
/// `static bool classof(const Base *)`.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_SUPPORT_CASTING_H
#define TFGC_SUPPORT_CASTING_H

#include <cassert>

namespace tfgc {

template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> on a null pointer");
  return To::classof(Val);
}

template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> to incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> to incompatible type");
  return static_cast<const To *>(Val);
}

template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace tfgc

#endif // TFGC_SUPPORT_CASTING_H
