#!/usr/bin/env python3
"""Render, check, and diff tfgc heap snapshots.

A snapshot is the JSON written by `tfgc --heap-snapshot=FILE` (schema 1):
the typed census of the last collection's live heap, the cumulative
per-allocation-site counts, and (with --retainers=N) the top retainers by
retained size.

Usage:
  heap_report.py SNAP.json             render one snapshot as tables
  heap_report.py --check SNAP.json     validate invariants; exit 1 on fail
  heap_report.py --diff OLD.json NEW.json
                                       leak ranking: per-site/per-kind
                                       live-byte growth, biggest first
  heap_report.py --top N ...           limit tables to N rows (default 20)

--check enforces what the profiler guarantees by construction, so it
doubles as an integration test in CI:
  * the snapshot is valid (at least one collection ran)
  * per-kind live bytes sum to the bytes the collection covered
  * with site tracking, per-site objects/bytes sum to the totals
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        snap = json.load(f)
    if snap.get("schema") != 1 or snap.get("tool") != "tfgc-heap-profile":
        sys.exit(f"{path}: not a tfgc heap snapshot")
    return snap


def site_label(row):
    if row.get("site", -1) < 0:
        return "<unknown>"
    label = row.get("func", "?")
    if row.get("line"):
        label += f":{row['line']}:{row.get('col', 0)}"
    if row.get("type"):
        label += f" ({row['type']})"
    return label


def fmt_bytes(n):
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024.0
    return f"{n} B"


def table(rows, headers):
    widths = [len(h) for h in headers]
    str_rows = [[str(c) for c in r] for r in rows]
    for r in str_rows:
        widths = [max(w, len(c)) for w, c in zip(widths, r)]
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def render(snap, top):
    col = snap.get("collection", {})
    print(f"heap snapshot: {snap.get('label', '')}")
    print(f"  collection #{col.get('seq')} ({col.get('kind')}), "
          f"{snap['objects']} live objects, {fmt_bytes(snap['bytes'])} "
          f"(heap used: {fmt_bytes(snap['used_bytes'])})")
    print(f"  allocations observed: {snap.get('alloc_total', 0)}")
    if "gen" in snap:
        g = snap["gen"]
        print(f"  nursery: {g['nursery_objects']} objects, "
              f"{fmt_bytes(g['nursery_bytes'])}; tenured: "
              f"{g['tenured_objects']} objects, "
              f"{fmt_bytes(g['tenured_bytes'])}")
    print()

    kinds = sorted(snap.get("by_kind", []), key=lambda r: -r["bytes"])
    if kinds:
        print("live bytes by reconstructed kind:")
        print(table([(k["kind"], k["objects"], fmt_bytes(k["bytes"]))
                     for k in kinds[:top]],
                    ["kind", "objects", "bytes"]))
        print()

    sites = sorted(snap.get("by_site", []), key=lambda r: -r["bytes"])
    if sites:
        print("live bytes by allocation site:")
        print(table([(site_label(s), s["objects"], fmt_bytes(s["bytes"]))
                     for s in sites[:top]],
                    ["site", "objects", "bytes"]))
        print()

    allocs = sorted(snap.get("alloc_sites", []), key=lambda r: -r["count"])
    if allocs:
        print("allocation counts by site (cumulative):")
        print(table([(site_label(s), s["count"]) for s in allocs[:top]],
                    ["site", "allocs"]))
        print()

    for i, r in enumerate(snap.get("retainers", [])[:top]):
        if i == 0:
            print("top retainers (dominator-tree retained size):")
        path = " <- ".join(reversed(r.get("path", []))) or "?"
        print(f"  {i + 1}. {fmt_bytes(r['retained_bytes'])} retained "
              f"(self {fmt_bytes(r['self_bytes'])}, {r['kind']}) via {path}")


def check(snap, path):
    errors = []
    if not snap.get("valid"):
        errors.append("snapshot invalid: no collection ran")
    else:
        kind_bytes = sum(k["bytes"] for k in snap.get("by_kind", []))
        if kind_bytes != snap["used_bytes"]:
            errors.append(f"per-kind bytes {kind_bytes} != heap used bytes "
                          f"{snap['used_bytes']}")
        if kind_bytes != snap["bytes"]:
            errors.append(f"per-kind bytes {kind_bytes} != total bytes "
                          f"{snap['bytes']}")
        kind_objs = sum(k["objects"] for k in snap.get("by_kind", []))
        if kind_objs != snap["objects"]:
            errors.append(f"per-kind objects {kind_objs} != total "
                          f"{snap['objects']}")
        if snap.get("site_tracking"):
            site_objs = sum(s["objects"] for s in snap.get("by_site", []))
            site_bytes = sum(s["bytes"] for s in snap.get("by_site", []))
            if site_objs != snap["objects"]:
                errors.append(f"per-site objects {site_objs} != total "
                              f"{snap['objects']}")
            if site_bytes != snap["bytes"]:
                errors.append(f"per-site bytes {site_bytes} != total "
                              f"{snap['bytes']}")
        if "gen" in snap:
            g = snap["gen"]
            gen_objs = g["nursery_objects"] + g["tenured_objects"]
            gen_bytes = g["nursery_bytes"] + g["tenured_bytes"]
            if gen_objs != snap["objects"]:
                errors.append(f"gen-split objects {gen_objs} != total "
                              f"{snap['objects']}")
            if gen_bytes != snap["bytes"]:
                errors.append(f"gen-split bytes {gen_bytes} != total "
                              f"{snap['bytes']}")
    for e in errors:
        print(f"{path}: CHECK FAILED: {e}", file=sys.stderr)
    if not errors:
        print(f"{path}: ok ({snap['objects']} objects, "
              f"{fmt_bytes(snap['bytes'])})")
    return not errors


def diff(old, new, top):
    def by_site(snap):
        return {site_label(s): (s["objects"], s["bytes"])
                for s in snap.get("by_site", [])}

    o, n = by_site(old), by_site(new)
    rows = []
    for label in sorted(set(o) | set(n)):
        oo, ob = o.get(label, (0, 0))
        no, nb = n.get(label, (0, 0))
        if nb != ob or no != oo:
            rows.append((label, no - oo, nb - ob, nb))
    rows.sort(key=lambda r: -r[2])
    print(f"live-byte growth by allocation site "
          f"(collection #{old['collection']['seq']} -> "
          f"#{new['collection']['seq']}):")
    if not rows:
        print("  no change")
        return
    print(table([(l, f"{do:+d}", f"{db:+d}", fmt_bytes(b))
                 for l, do, db, b in rows[:top]],
                ["site", "objects Δ", "bytes Δ", "now"]))
    grew = sum(db for _, _, db, _ in rows if db > 0)
    print(f"\ntotal growth: {fmt_bytes(grew)}; leading suspect: "
          f"{rows[0][0] if rows and rows[0][2] > 0 else 'none'}")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("snapshots", nargs="+", help="snapshot JSON file(s)")
    ap.add_argument("--check", action="store_true",
                    help="validate snapshot invariants; exit 1 on failure")
    ap.add_argument("--diff", action="store_true",
                    help="diff two snapshots (leak ranking)")
    ap.add_argument("--top", type=int, default=20,
                    help="max rows per table (default 20)")
    args = ap.parse_args()

    if args.diff:
        if len(args.snapshots) != 2:
            ap.error("--diff needs exactly two snapshots")
        diff(load(args.snapshots[0]), load(args.snapshots[1]), args.top)
        return

    ok = True
    for path in args.snapshots:
        snap = load(path)
        if args.check:
            ok = check(snap, path) and ok
        else:
            render(snap, args.top)
    if not ok:
        sys.exit(1)


if __name__ == "__main__":
    main()
