//===- vm/Vm.h - Register VM over the IR ------------------------*- C++ -*-===//
///
/// \file
/// Executes the IR with explicit activation records (runtime/Roots.h).
/// The VM plays the role of the compiled mutator:
///
/// * values follow the collector's value model (tag-free or tagged, with
///   tag stripping/reinstating and float boxing under the tagged model —
///   the mutator overheads of E1);
/// * before any instruction that might collect, the current frame records
///   the site's code image address — the "return address" the collector
///   dereferences (Figure 1/2);
/// * frames are zero-initialized only under strategies that require it
///   (tagged and Appel; the paper's per-site routines trace only
///   initialized slots, so the Goldberg strategies skip zeroing — E9).
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_VM_VM_H
#define TFGC_VM_VM_H

#include "core/Collector.h"
#include "gcmeta/CodeImage.h"
#include "ir/Ir.h"
#include "runtime/Roots.h"

#include <string>
#include <vector>

namespace tfgc {

/// Where a task polls for a pending world-stop (paper section 4).
enum class SuspendChecks : uint8_t {
  None,         ///< Sequential VM: collect immediately on exhaustion.
  AtAllocation, ///< Suspend only inside the allocation routines.
  AtEveryCall,  ///< Explicit test at every call site.
  RgcRegister,  ///< Every call, via the Rgc register trick (free test).
};

/// Mediates stop-the-world collections across tasks. Implemented by the
/// tasking runtime; the sequential VM has none.
class GcCoordinator {
public:
  virtual ~GcCoordinator() = default;
  /// True when some task exhausted the heap and the world must stop.
  virtual bool gcPending() const = 0;
  /// Called by the task that exhausted the heap.
  virtual void requestGc(size_t NeedWords) = 0;
};

struct VmOptions {
  /// Collect at every allocation (testing).
  bool GcStress = false;
  /// Zero frame slots at function entry (forced on for tagged/Appel).
  bool ZeroFrames = false;
  /// Execution fuse.
  uint64_t MaxSteps = 2'000'000'000ull;
  /// Tasking: suspension polling policy and the coordinator to poll.
  SuspendChecks Checks = SuspendChecks::None;
  GcCoordinator *Coord = nullptr;
  /// This VM's task index in the monitor's per-task cells (0 for the
  /// sequential VM; the tasking runtime numbers its tasks).
  uint32_t TaskIndex = 0;
};

enum class StepResult : uint8_t {
  Ran,         ///< Executed one instruction.
  Done,        ///< Program finished; returnValue() is valid.
  Failed,      ///< Runtime error; error() is set.
  BlockedOnGc, ///< Suspended at a GC safe point (tasking only); the
               ///< instruction re-executes after the collection.
};

struct RunResult {
  bool Ok = false;
  std::string Value;  ///< Rendered final value.
  std::string Output; ///< print output, one line per call.
  std::string Error;
};

class Vm {
public:
  Vm(const IrProgram &Prog, const CodeImage &Img, TypeContext &Types,
     Collector &Col, VmOptions Opts = {});

  RunResult run();

  /// Executes one instruction (the tasking runtime's interface).
  StepResult step();

  /// Starts execution at \p Entry (a non-closure function) with the given
  /// argument words (already in the value model's representation). run()
  /// and step() default to the program's main function.
  void start(FuncId Entry, const std::vector<Word> &Args);
  Word returnValue() const { return ReturnValue; }
  const std::string &error() const { return Error; }
  /// Renders the final value (after Done).
  std::string renderResult();
  const std::string &output() const { return Output; }
  TaskStack &mutableStack() { return Stack; }

  /// Renders a value of type \p Ty under the current value model.
  std::string renderValue(Word V, Type *Ty, int Depth = 0);

  Collector &collector() { return Col; }
  Stats &stats() { return Col.stats(); }
  const TaskStack &stack() const { return Stack; }
  /// Instructions executed so far (the hot counter, not the Stats slot).
  uint64_t steps() const { return Steps; }

  /// Flushes the hot counters (steps, tag ops, zeroed words, ...) into the
  /// stats registry; called automatically at the end of run().
  void flushCounters();

private:
  const IrProgram &Prog;
  const CodeImage &Img;
  TypeContext &Types;
  Collector &Col;
  VmOptions Opts;
  ValueModel Model;

  TaskStack Stack;
  uint32_t SlotTop = 0;
  std::string Output;
  std::string Error;
  Word ReturnValue = 0;
  FuncId EntryFn = 0;
  bool DoneFlag = false;
  bool Blocked = false;
  bool Started = false;

  // Hot counters (plain fields; Stats map lookups are too slow for the
  // interpreter loop).
  uint64_t Steps = 0;
  uint64_t TagOps = 0;
  uint64_t FloatBoxes = 0;
  uint64_t Calls = 0;
  uint64_t WordsZeroed = 0;
  uint64_t Collections0 = 0;
  uint64_t SuspendChecksRun = 0;
  uint64_t BarrierOps = 0;
  /// True when the collector runs the generational algorithm (cached so
  /// the non-generational store fast path stays a single branch).
  bool GenBarriers = false;
  uint32_t MaxFrames = 0;
  uint32_t MaxSlotWords = 0;
  /// Sampling monitor hook: the dispatch loop decrements SampleFuel once
  /// per step and calls takeSample() when it hits zero. With no monitor
  /// attached the fuel starts at UINT64_MAX, so the disabled hot-path
  /// cost is one decrement plus one never-taken branch (the same
  /// disabled-by-null discipline as finishAlloc below).
  Monitor *Mon = nullptr;
  uint64_t SampleFuel = UINT64_MAX;

  void pushFrame(FuncId Callee, const Word *Args, unsigned NumArgs,
                 bool HasSelf, Word Self, SlotIndex CallerDst);
  /// Allocates through the collector, recording the pending site and
  /// collecting when needed. Returns the payload or null on OOM.
  Word *allocate(size_t PayloadWords, ObjKind Kind, CallSiteId Site,
                 uint32_t FrameIdx);

  /// Every successful allocation funnels through here; with a heap
  /// profiler attached it logs (site, address) for allocation-site
  /// attribution. One null check when profiling is off.
  Word *finishAlloc(Word *P, CallSiteId Site) {
    if (P)
      if (HeapProfiler *Prof = Col.heapProfiler()) [[unlikely]]
        Prof->recordAlloc(Prog.site(Site).AllocId, (Word)(uintptr_t)P);
    return P;
  }
  bool fail(const std::string &Message);

  /// Out-of-line sample point: attributes one profiler sample to the
  /// current frame/opcode and re-arms SampleFuel.
  void takeSample(uint32_t FrameIdx, Opcode Op);

  Word makeFloat(double D, CallSiteId Site, uint32_t FrameIdx, bool &Ok);
  double readFloat(Word W) const;
};

} // namespace tfgc

#endif // TFGC_VM_VM_H
