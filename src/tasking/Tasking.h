//===- tasking/Tasking.h - Multi-task runtime (paper sec. 4) ----*- C++ -*-===//
///
/// \file
/// An Ada-style tasking model: N tasks with private stacks share one heap,
/// scheduled round-robin (a deterministic stand-in for shared-memory
/// parallel hardware). A task may be suspended for collection only at a
/// procedure call; when one task exhausts the heap, the others keep
/// running until they reach a suspension point under the chosen policy:
///
///   AllocationOnly  only the allocation routines test for a pending stop
///                   (cheapest checks, longest time to world-stop);
///   EveryCall       an explicit test before every call;
///   RgcRegister     every call, but the test is folded into the computed
///                   jump target via the dedicated Rgc register, making it
///                   free (the paper's optimization).
///
/// Once every live task is suspended, the collector runs over all stacks
/// and the tasks resume. E8 measures checks executed and the work done
/// between exhaustion and world-stop under each policy.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_TASKING_TASKING_H
#define TFGC_TASKING_TASKING_H

#include "vm/Vm.h"

#include <chrono>
#include <memory>
#include <vector>

namespace tfgc {

class FlightRecorder;

struct TaskingOptions {
  SuspendChecks Policy = SuspendChecks::AtEveryCall;
  /// Round-robin slice, in instructions.
  uint32_t TimeSliceSteps = 256;
  uint64_t MaxTotalSteps = 2'000'000'000ull;
  bool ZeroFrames = false;
  bool GcStress = false;
  /// Mutator fast-path configuration, shared by every task (the runtime
  /// decodes the program once and all task VMs execute the same stream).
  DispatchMode Dispatch = DispatchMode::Auto;
  bool FuseSuperinstructions = true;
  bool FloatSelfTag = true;
  bool TailCalls = true;
  /// Flight recorder (not owned; may be null). Only the OS-thread runtime
  /// wires per-task rings from it; the cooperative scheduler ignores it
  /// (its interleavings are deterministic and fully covered by --gc-log).
  FlightRecorder *Flight = nullptr;
};

struct TaskResult {
  bool Ok = false;
  std::string Value;
  std::string Output;
  std::string Error;
};

class TaskingRuntime : public GcCoordinator {
public:
  TaskingRuntime(const IrProgram &Prog, const CodeImage &Img,
                 TypeContext &Types, Collector &Col, TaskingOptions Opts);

  /// Adds a task executing \p Entry (non-closure) with raw integer
  /// arguments (converted to the collector's value model).
  void spawnInt(FuncId Entry, const std::vector<int64_t> &Args);

  /// Runs every task to completion. Returns false if any task failed.
  bool runAll();

  const std::vector<TaskResult> &results() const { return Results; }
  Stats &stats() { return Col.stats(); }

  // GcCoordinator:
  bool gcPending() const override { return GcRequested; }
  void requestGc(size_t NeedWords) override;

private:
  const IrProgram &Prog;
  const CodeImage &Img;
  TypeContext &Types;
  Collector &Col;
  TaskingOptions Opts;

  struct Task {
    std::unique_ptr<Vm> Machine;
    bool Done = false;
    bool BlockedForGc = false;
    /// Per-task request-to-safe-point delays, recorded at the moment this
    /// task suspends for a pending collection (the global telemetry
    /// histogram only sees the request-to-world-stop delay, i.e. the
    /// slowest task; this one attributes the wait per task).
    LogHistogram StopDelayHist;
  };
  std::vector<Task> Tasks;
  std::vector<TaskResult> Results;
  /// Program decoded once for all tasks (vm/Decode.h); handler pointers
  /// are filled by the first threaded VM and shared after that.
  DecodedProgram Decoded;
  bool GcRequested = false;
  size_t NeedWords = 0;
  uint64_t StepsSinceRequest = 0;
  /// When the pending GC was first requested; the request-to-world-stop
  /// delay is recorded in the collector's telemetry at collectWorld().
  std::chrono::steady_clock::time_point RequestTime;

  void collectWorld();
  /// Publishes task.<i>.mutator_steps and task.<i>.world_stop_delay_*
  /// into the stats registry (the per-task view of --stats-json).
  void publishTaskStats();
};

} // namespace tfgc

#endif // TFGC_TASKING_TASKING_H
