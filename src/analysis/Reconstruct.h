//===- analysis/Reconstruct.h - Type reconstructibility ---------*- C++ -*-===//
///
/// \file
/// For the polymorphic tag-free strategies, the collector must be able to
/// recover the type GC routines for a closure-called function's type
/// parameters from the type GC routine of the closure's *function type*
/// (paper section 3, Figures 3 and 4). That works only if every type
/// parameter occurs somewhere in the function type — Goldberg '91 has no
/// answer for parameters that appear only in the environment, a gap closed
/// later by Goldberg & Gloger '92. This pass computes, for each type
/// parameter, an extraction path into the function type, and reports the
/// parameters for which no path exists.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_ANALYSIS_RECONSTRUCT_H
#define TFGC_ANALYSIS_RECONSTRUCT_H

#include "ir/Ir.h"

#include <vector>

namespace tfgc {

/// A path into a type term. At a Fun node, step k < numArgs() selects
/// parameter k and step == numArgs() selects the result; at Tuple/Data/Ref
/// nodes, step k selects argument k.
using TypePath = std::vector<uint32_t>;

struct ClosureParamPath {
  bool Found = false;
  TypePath Path;
};

struct ReconstructResult {
  /// Per function: one entry per TypeParam. Only closure-called functions
  /// need paths (direct callees get instantiations from their call sites),
  /// but paths are computed for every function whose FunTy mentions them.
  std::vector<std::vector<ClosureParamPath>> Paths;

  struct Violation {
    FuncId Fn;
    Type *Param;
  };
  /// Closure functions with a type parameter not recoverable from the
  /// function type.
  std::vector<Violation> Violations;

  bool ok() const { return Violations.empty(); }
};

/// Computes extraction paths for all functions.
ReconstructResult computeExtractionPaths(const IrProgram &P);

/// Finds the first occurrence of rigid var \p Target in \p Root. Returns
/// true and fills \p Out on success.
bool findTypePath(Type *Root, Type *Target, TypePath &Out);

} // namespace tfgc

#endif // TFGC_ANALYSIS_RECONSTRUCT_H
