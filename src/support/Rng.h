//===- support/Rng.h - Deterministic random numbers -------------*- C++ -*-===//
///
/// \file
/// SplitMix64: a tiny deterministic RNG used by workload generators and
/// property tests. Determinism keeps every experiment reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_SUPPORT_RNG_H
#define TFGC_SUPPORT_RNG_H

#include <cstdint>

namespace tfgc {

/// SplitMix64 generator (public-domain constants from Steele et al.).
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). Bound must be nonzero.
  uint64_t below(uint64_t Bound) { return next() % Bound; }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + (int64_t)below((uint64_t)(Hi - Lo + 1));
  }

  /// Bernoulli draw with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

private:
  uint64_t State;
};

} // namespace tfgc

#endif // TFGC_SUPPORT_RNG_H
