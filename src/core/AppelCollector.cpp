//===- core/AppelCollector.cpp --------------------------------------------===//

#include "core/AppelCollector.h"

#include <cassert>

using namespace tfgc;

AppelCollector::AppelCollector(GcAlgorithm Algo, size_t HeapBytes, Stats &St,
                               const IrProgram &Prog, const CodeImage &Img,
                               TypeContext &Types, AppelMetadata *AM,
                               bool GlogerDummies, size_t NurseryBytes)
    : Collector(ValueModel::TagFree, Algo, HeapBytes, St, NurseryBytes),
      Prog(Prog), Img(Img), Types(Types), AM(AM),
      GlogerDummies(GlogerDummies), Eng(Types, St, &Tel) {}

void AppelCollector::traceRemset(Space &Sp) {
  if (remset().empty())
    return;
  // As in GoldbergCollector: the barrier only buffers ground-typed
  // stores, so each slot is retraced through a closure for its recorded
  // static type, sharing the collection's closure arena.
  TagFreeTracer Tr(Prog, Img, Eng, Sp, St, TraceMethod::Appel, nullptr,
                   nullptr, AM, GlogerDummies, &Tel, Prof);
  TgEnv Env;
  for (const RemsetEntry &E : remset()) {
    St.add(StatId::GcSlotsTraced);
    *E.Slot = Tr.traceTg(*E.Slot, Eng.eval(E.Ty, Env));
  }
}

std::vector<const TypeGc *>
AppelCollector::resolveBinds(TaskStack &Stack, uint32_t Idx,
                             TypeGcEngine &Eng, TagFreeTracer &Tr,
                             Stats &S) {
  FrameInfo &Fr = Stack.Frames[Idx];
  const IrFunction &Fn = Prog.fn(Fr.FuncId);
  if (Fn.TypeParams.empty())
    return {};

  S.add(StatId::GcChainSteps);
  uint32_t CallerIdx = Fr.DynamicLink;
  assert(CallerIdx != NoFrame &&
         "polymorphic frame with no caller (main must be monomorphic)");
  FrameInfo &Caller = Stack.Frames[CallerIdx];
  const IrFunction &CallerFn = Prog.fn(Caller.FuncId);

  // Resolve the caller first — this recursion is the repeated stack
  // traversal the paper criticizes.
  std::vector<const TypeGc *> CallerBinds =
      resolveBinds(Stack, CallerIdx, Eng, Tr, S);
  TgEnv CEnv;
  CEnv.Params = &CallerFn.TypeParams;
  CEnv.Binds = CallerBinds.data();

  Word GcWord = Img.gcWordAt(Caller.PendingSiteAddr);
  assert(GcWord != CodeImage::OmittedGcWord);
  const CallSiteInfo &CS = Prog.site((CallSiteId)GcWord);

  std::vector<const TypeGc *> Binds;
  if (CS.Kind == SiteKind::Direct) {
    assert(CS.Callee == Fr.FuncId);
    for (Type *T : CS.CalleeTypeInst)
      Binds.push_back(Eng.eval(T, CEnv));
  } else {
    assert(CS.Kind == SiteKind::Indirect);
    const TypeGc *FunTg = Eng.eval(CS.ClosureTy, CEnv);
    for (const ClosureParamPath &P :
         AM->closureDescriptor(Fr.FuncId).ParamPaths)
      Binds.push_back(Tr.bindParam(P, FunTg));
  }
  return Binds;
}

void AppelCollector::traceOneStack(TaskStack &Stack, TagFreeTracer &Tr,
                                   TypeGcEngine &E, Stats &S, Telemetry *T) {
  if (Stack.Frames.empty())
    return;
  // Newest to oldest, following dynamic links (Figure 2's direction).
  uint32_t Idx = (uint32_t)(Stack.Frames.size() - 1);
  while (Idx != NoFrame) {
    FrameInfo &Fr = Stack.Frames[Idx];
    const IrFunction &Fn = Prog.fn(Fr.FuncId);
    S.add(StatId::GcFramesTraced);

    std::vector<const TypeGc *> Binds;
    if (!Fn.TypeParams.empty()) {
      // The repeated caller-chain walk is Appel's analogue of the
      // pointer-reversal pass, so it is charged to the same phase.
      PhaseScope Chain(T, GcPhase::PtrReversal);
      Binds = resolveBinds(Stack, Idx, E, Tr, S);
    }
    TgEnv Env;
    Env.Params = &Fn.TypeParams;
    Env.Binds = Binds.data();

    {
      PhaseScope Dispatch(T, GcPhase::FrameDispatch);
      Tr.traceFrame(Stack.frameSlots(Fr), AM->procDescriptor(Fr.FuncId),
                    &Env);
    }
    Idx = Fr.DynamicLink;
  }
}

void AppelCollector::traceRoots(RootSet &Roots, Space &Sp) {
  Eng.reset();

  // Parallel path: worker-private engine + tracer per stack job (shared
  // metadata — descriptors, types, closure paths — is read-only during a
  // collection; only the heap's claim/publish words are contended).
  if (traceStacksParallel(
          Roots, Sp,
          [this](TaskStack &Stack, Space &WSp, Stats &WSt,
                 CensusCounts &WCensus) {
            TypeGcEngine WEng(Types, WSt, nullptr);
            TagFreeTracer Tr(Prog, Img, WEng, WSp, WSt, TraceMethod::Appel,
                             nullptr, nullptr, AM, GlogerDummies, nullptr,
                             nullptr);
            Tr.setCensusSink(&WCensus);
            traceOneStack(Stack, Tr, WEng, WSt, nullptr);
          }))
    return;

  TagFreeTracer Tr(Prog, Img, Eng, Sp, St, TraceMethod::Appel, nullptr,
                   nullptr, AM, GlogerDummies, &Tel, Prof);
  for (TaskStack *Stack : Roots.Stacks)
    traceOneStack(*Stack, Tr, Eng, St, &Tel);
}
