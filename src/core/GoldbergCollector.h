//===- core/GoldbergCollector.h - The paper's collector ---------*- C++ -*-===//
///
/// \file
/// The tag-free collector of Goldberg '91. Monomorphic frames are traced
/// by the frame GC routine selected through the suspended return address
/// (Figure 2); polymorphic programs use the section-3 algorithm: an
/// explicit pointer-reversal pass over the dynamic links, then one
/// oldest-to-newest walk in which each frame's routine passes the type GC
/// routines for the callee's type parameters to the next frame's routine.
/// The stack is traversed at most twice, as the paper promises.
///
/// The Method parameter selects the compiled method (flat routines) or the
/// interpreted method (descriptors) for ground types.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_CORE_GOLDBERGCOLLECTOR_H
#define TFGC_CORE_GOLDBERGCOLLECTOR_H

#include "core/Collector.h"
#include "core/Tracer.h"

namespace tfgc {

class GoldbergCollector : public Collector {
public:
  GoldbergCollector(TraceMethod Method, GcAlgorithm Algo, size_t HeapBytes,
                    Stats &St, const IrProgram &Prog, const CodeImage &Img,
                    TypeContext &Types, const CompiledMetadata *CM,
                    InterpretedMetadata *IM, bool GlogerDummies = false,
                    size_t NurseryBytes = 0);

protected:
  void traceRoots(RootSet &Roots, Space &Sp) override;
  void traceRemset(Space &Sp) override;

private:
  TraceMethod Method;
  const IrProgram &Prog;
  const CodeImage &Img;
  TypeContext &Types;
  const CompiledMetadata *CM;
  InterpretedMetadata *IM;
  bool GlogerDummies;
  /// Lives as long as the collector so the cross-collection ground-type
  /// closure cache pays off; reset() after every traceRoots pass drops the
  /// per-collection nodes.
  TypeGcEngine Eng;

  const std::vector<ClosureParamPath> &paramPaths(FuncId Fn) const;

  /// Traces one task's stack — the pointer-reversal pass plus the
  /// oldest-to-newest walk — against the given tracer, engine, and
  /// counter domain. \p T is the telemetry to charge phase spans to;
  /// parallel GC workers pass nullptr (spans are collector-thread-only)
  /// and their own engine/stats, so worker state never crosses threads.
  void traceOneStack(TaskStack &Stack, TagFreeTracer &Tr, TypeGcEngine &E,
                     Stats &S, Telemetry *T);
};

} // namespace tfgc

#endif // TFGC_CORE_GOLDBERGCOLLECTOR_H
