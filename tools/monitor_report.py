#!/usr/bin/env python3
"""Renders or checks a tfgc --monitor-out JSONL stream.

The stream is one JSON record per line: a `header` record (schema,
sample period, heartbeat period), zero or more `heartbeat` records
(counter snapshot, allocation/barrier/remset rates over the elapsed
bucket, MMU so far, per-task numbers), and a final `summary` record
(mutator/GC wall-clock split, MMU at 1/10/100 ms, flat and
caller-attributed sample profiles, opcode-class mix). The summary is
flushed through the same abnormal-exit path as the other diagnostic
artifacts, so a failing run still ends with one.

Default mode renders a human-readable report. With --check, asserts the
stream's invariants instead (exit 1 on violation):

  * header first, exactly one summary, every line schema-versioned JSON;
  * mutator + GC spans cover >95% of wall-clock (and at most 105% — a
    missed endRun or a double-counted pause span breaks this);
  * sample count matches step count within tolerance of the sample
    period (the fuel countdown takes exactly one sample per period);
  * heartbeat cadence: consecutive heartbeats are at least half the
    configured period apart, with monotonic timestamps and sequence
    numbers, and the summary's heartbeat count matches the stream.

Usage: monitor_report.py [--check] STREAM.jsonl
"""

import json
import sys

COVERAGE_MIN = 0.95
COVERAGE_MAX = 1.05


def load(path):
    with open(path) as f:
        lines = [(n, s.strip()) for n, s in enumerate(f, 1) if s.strip()]
    records = []
    truncated = False
    last = lines[-1][0] if lines else 0
    for lineno, line in lines:
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            if lineno == last:
                # A run killed mid-write (crash, SIGKILL, full disk) leaves
                # a partial final record; the preceding stream is intact and
                # still worth checking, so report rather than fail.
                print(f"{path}:{lineno}: trailing partial record "
                      f"({len(line)} bytes, ignored): {e}", file=sys.stderr)
                truncated = True
                break
            raise AssertionError(f"{path}:{lineno}: invalid JSON: {e}")
        assert isinstance(rec, dict) and "type" in rec, (
            f"{path}:{lineno}: record has no type")
        records.append(rec)
    assert records, f"{path}: empty stream"
    return records, truncated


def split(records, truncated=False):
    header = records[0]
    assert header["type"] == "header", "first record is not the header"
    assert header["schema"] == 1, f"unknown schema {header['schema']}"
    assert header["tool"] == "tfgc-monitor", "not a tfgc-monitor stream"
    summaries = [r for r in records if r["type"] == "summary"]
    heartbeats = [r for r in records if r["type"] == "heartbeat"]
    if truncated and not summaries:
        # The dropped partial was (or preceded) the summary; check what
        # survives rather than demanding a record the writer never finished.
        return header, heartbeats, None
    assert len(summaries) == 1, f"want exactly 1 summary, got {len(summaries)}"
    assert records[-1]["type"] == "summary", "summary is not the last record"
    return header, heartbeats, summaries[0]


def check(path):
    records, truncated = load(path)
    header, heartbeats, summary = split(records, truncated)
    if summary is None:
        check_heartbeats(header, heartbeats, summary=None)
        print("ok (truncated stream: header and "
              f"{len(heartbeats)} heartbeats checked, no summary)")
        return 0
    assert summary["schema"] == 1

    wall = summary["wall_ns"]
    mutator = summary["mutator_ns"]
    gc = summary["gc_ns"]
    assert wall > 0, "zero wall-clock"
    coverage = (mutator + gc) / wall
    print(f"wall_ns={wall} mutator_ns={mutator} gc_ns={gc} "
          f"coverage={coverage:.4f}")
    assert COVERAGE_MIN <= coverage <= COVERAGE_MAX, (
        f"mutator+GC spans cover {coverage:.2%} of wall-clock, "
        f"want within [{COVERAGE_MIN:.0%}, {COVERAGE_MAX:.0%}]")

    # The fuel countdown takes exactly one sample per period per task;
    # allow one period of slack per task plus 2% for blocked-step rewinds.
    period = summary["sample_period_steps"]
    steps = summary["steps"]
    samples = summary["samples"]
    ntasks = max(1, len(summary.get("tasks", [])))
    tolerance = period * (ntasks + 1) + 0.02 * steps
    drift = abs(samples * period - steps)
    print(f"steps={steps} samples={samples} period={period} drift={drift}")
    assert drift <= tolerance, (
        f"samples*period={samples * period} vs steps={steps}: "
        f"drift {drift} exceeds tolerance {tolerance:.0f}")

    check_heartbeats(header, heartbeats, summary)

    for v in summary["mmu"].values():
        assert 0.0 <= v <= 1.0
    # MMU is monotone in the window size.
    assert summary["mmu"]["1ms"] <= summary["mmu"]["10ms"] + 1e-9
    assert summary["mmu"]["10ms"] <= summary["mmu"]["100ms"] + 1e-9
    print("ok")
    return 0


def check_heartbeats(header, heartbeats, summary):
    if summary is not None:
        assert summary["heartbeats"] == len(heartbeats), (
            f"summary says {summary['heartbeats']} heartbeats, "
            f"stream has {len(heartbeats)}")
    period_ns = header["heartbeat_period_ms"] * 1e6
    last_t, last_seq = None, None
    for hb in heartbeats:
        assert hb["mmu"].keys() == {"1ms", "10ms", "100ms"}
        for v in hb["mmu"].values():
            assert 0.0 <= v <= 1.0, f"MMU {v} out of [0, 1]"
        if last_t is not None:
            assert hb["t_ns"] > last_t, "heartbeat timestamps not monotonic"
            assert hb["seq"] == last_seq + 1, "heartbeat seq not contiguous"
            # Heartbeats only fire from sample points at least a full
            # period after the previous one; clock granularity gets a
            # factor-of-two pardon.
            gap = hb["t_ns"] - last_t
            assert gap >= period_ns / 2, (
                f"heartbeat gap {gap}ns below half the period {period_ns}ns")
        last_t, last_seq = hb["t_ns"], hb["seq"]
    print(f"heartbeats={len(heartbeats)} ok")


def render(path):
    records, truncated = load(path)
    header, heartbeats, summary = split(records, truncated)
    if summary is None:
        print(f"monitor stream: {path}  (truncated: no summary)")
        print(f"  heartbeats    {len(heartbeats)}")
        return 0
    label = summary.get("label", "")
    wall_ms = summary["wall_ns"] / 1e6
    print(f"monitor stream: {path}  {label}")
    print(f"  wall          {wall_ms:10.3f} ms")
    print(f"  mutator       {summary['mutator_ns'] / 1e6:10.3f} ms "
          f"({summary['mutator_fraction']:.2%})")
    print(f"  gc            {summary['gc_ns'] / 1e6:10.3f} ms "
          f"({summary['collections']} collections)")
    print(f"  steps         {summary['steps']:>10}  samples "
          f"{summary['samples']} (every {summary['sample_period_steps']})")
    mmu = summary["mmu"]
    print(f"  MMU           1ms {mmu['1ms']:.3f}   10ms {mmu['10ms']:.3f}   "
          f"100ms {mmu['100ms']:.3f}")

    if heartbeats:
        alloc = [h["alloc_rate_bytes_per_ms"] for h in heartbeats]
        print(f"  heartbeats    {len(heartbeats)} every "
              f"{header['heartbeat_period_ms']} ms; alloc rate "
              f"min/median/max {min(alloc):.0f}/"
              f"{sorted(alloc)[len(alloc) // 2]:.0f}/{max(alloc):.0f} "
              "bytes/ms")
        barrier = [h["barrier_rate_per_ms"] for h in heartbeats]
        if max(barrier) > 0:
            print(f"  barrier rate  max {max(barrier):.0f} ops/ms, remset "
                  f"{heartbeats[-1]['remset_entries']} entries")

    print("  op classes   ", " ".join(
        f"{k}={v}" for k, v in summary["op_classes"].items() if v))
    print("  flat profile")
    total = max(1, summary["samples"])
    for row in summary["profile_flat"][:10]:
        print(f"    {row['samples']:>8} ({row['samples'] / total:6.2%})  "
              f"{row['func']}")
    print("  caller-attributed")
    for row in summary["profile_callers"][:10]:
        print(f"    {row['samples']:>8}  {row['caller']} -> {row['func']}")
    tasks = summary.get("tasks", [])
    if len(tasks) > 1:
        print("  tasks")
        for t in tasks:
            line = (f"    task {t['task']}: steps={t['steps']} "
                    f"samples={t['samples']}")
            if t.get("stop_delays"):
                line += (f" stop_delays={t['stop_delays']} "
                         f"p50={t['stop_delay_ns_p50']}ns "
                         f"p99={t['stop_delay_ns_p99']}ns")
            print(line)
    return 0


def main():
    args = sys.argv[1:]
    do_check = "--check" in args
    args = [a for a in args if a != "--check"]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    return check(args[0]) if do_check else render(args[0])


if __name__ == "__main__":
    sys.exit(main())
