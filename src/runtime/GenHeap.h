//===- runtime/GenHeap.h - Generational heap --------------------*- C++ -*-===//
///
/// \file
/// A two-generation heap driven by the collectors: a bump-allocated
/// nursery semispace pair plus a tenured bump space. Like the flat
/// semispace Heap, the heap knows nothing about object layouts — under
/// the tag-free model layout lives exclusively in the compiler-generated
/// GC metadata, so the heap only provides raw allocation, region tests,
/// and forwarding.
///
/// Organization:
///
///  * Every object is born in the nursery (the mutator never allocates
///    tenured directly — that invariant is what lets the VM skip write
///    barriers on initializing stores; see DESIGN.md section 6). When a
///    single request exceeds the nursery the collector grows the nursery
///    rather than falling back to tenured allocation.
///
///  * A *minor* collection evacuates live nursery objects either into the
///    nursery's other semispace (survivors stay young) or into the
///    tenured space (en-masse promotion); tenured objects do not move.
///
///  * A *major* collection evacuates the entire live graph — both
///    regions — into a fresh tenured to-space, leaving the nursery empty.
///
/// Forwarding without headers works exactly as in Heap: side bitmaps (one
/// bit per word, alive only during a collection) over the nursery
/// from-space and — during majors — the tenured space mark objects whose
/// word 0 has been overwritten with the forwarding address.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_RUNTIME_GENHEAP_H
#define TFGC_RUNTIME_GENHEAP_H

#include "runtime/Value.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

namespace tfgc {

class GenHeap {
public:
  GenHeap(size_t TenuredBytes, size_t NurseryBytes);

  // -- Mutator interface ---------------------------------------------------
  /// Allocates \p Words words in the nursery; nullptr when the nursery is
  /// full (the caller collects, or grows the nursery for a request larger
  /// than its capacity).
  Word *tryAllocate(size_t Words) {
    if (Words > (size_t)(NurEnd - NurAlloc))
      return nullptr;
    Word *P = NurAlloc;
    NurAlloc += Words;
    BytesAllocatedTotal += Words * sizeof(Word);
    return P;
  }

  /// Carves a per-thread TLAB chunk off the nursery cursor with a CAS
  /// loop (see Heap::refillTlab for the contract). The nursery is the
  /// only mutator-visible region, so this is the entire threaded-mode
  /// allocation slow path for the generational algorithm.
  bool refillTlab(size_t MinWords, size_t PreferredWords, Word *&OutTop,
                  Word *&OutEnd) {
    std::atomic_ref<Word *> A(NurAlloc);
    Word *Cur = A.load(std::memory_order_relaxed);
    for (;;) {
      size_t Avail = (size_t)(NurEnd - Cur);
      if (Avail < MinWords)
        return false;
      size_t Take = std::min(Avail, std::max(MinWords, PreferredWords));
      if (A.compare_exchange_weak(Cur, Cur + Take,
                                  std::memory_order_relaxed)) {
        OutTop = Cur;
        OutEnd = Cur + Take;
        std::atomic_ref<uint64_t>(BytesAllocatedTotal)
            .fetch_add(Take * sizeof(Word), std::memory_order_relaxed);
        return true;
      }
    }
  }

  // -- Region tests ---------------------------------------------------------
  /// True if \p P points into the nursery from-space (the young
  /// generation). During a collection this still refers to the space being
  /// evacuated; the semispace flip happens at endMinor().
  bool inNursery(Word P) const {
    return P >= (Word)(uintptr_t)NurBase && P < (Word)(uintptr_t)NurEnd;
  }
  bool inTenured(Word P) const {
    return P >= (Word)(uintptr_t)TenBase && P < (Word)(uintptr_t)TenEnd;
  }
  bool contains(Word P) const { return inNursery(P) || inTenured(P); }

  // -- Minor collections ----------------------------------------------------
  /// Starts a minor collection: prepares the nursery to-space and the
  /// nursery forwarding bitmap. Tenured is untouched.
  void beginMinor();

  /// Evacuates a surviving-but-not-promoted object: bump allocation in the
  /// nursery to-space. Survivors never exceed the from-space fill, so this
  /// cannot overflow.
  Word *allocateInSurvivorSpace(size_t Words) {
    assert(MinorActive && "not in a minor collection");
    assert(Words <= (size_t)(NurToEnd - NurToAlloc) &&
           "nursery to-space overflow");
    Word *P = NurToAlloc;
    NurToAlloc += Words;
    return P;
  }

  /// Promotes an object: bump allocation in the tenured space. The
  /// collector only chooses a minor collection when the tenured free space
  /// covers the whole nursery fill, so promotion cannot overflow.
  Word *allocateInTenured(size_t Words) {
    assert(MinorActive && "not in a minor collection");
    assert(Words <= (size_t)(TenEnd - TenAlloc) && "tenured overflow");
    Word *P = TenAlloc;
    TenAlloc += Words;
    return P;
  }

  /// Ends the minor collection: the to-space (holding the survivors)
  /// becomes the nursery, the old from-space becomes the next to-space.
  void endMinor();

  // -- Major collections ----------------------------------------------------
  /// Starts a major collection into a fresh tenured to-space of
  /// \p NewTenuredCapacityWords (the caller sizes it to at least the live
  /// upper bound: nursery fill + tenured fill). Both regions evacuate, so
  /// forwarding bitmaps cover the nursery and the tenured space.
  void beginMajor(size_t NewTenuredCapacityWords);

  /// Evacuates any live object (young or old) into the tenured to-space.
  Word *allocateInToSpace(size_t Words) {
    assert(MajorActive && "not in a major collection");
    assert(Words <= (size_t)(TenToEnd - TenToAlloc) &&
           "tenured to-space overflow");
    Word *P = TenToAlloc;
    TenToAlloc += Words;
    return P;
  }

  /// Ends the major collection: the to-space becomes the tenured space and
  /// the nursery is reset empty (every young survivor was evacuated old).
  void endMajor();

  // -- Forwarding (region-dispatching) --------------------------------------
  bool isForwarded(const Word *Obj) const {
    size_t Index;
    const std::vector<uint64_t> *Bits = forwardBitsFor(Obj, Index);
    if (!Bits || Bits->empty())
      return false;
    return ((*Bits)[Index >> 6] >> (Index & 63)) & 1;
  }
  Word forwardee(const Word *Obj) const {
    assert(isForwarded(Obj));
    return Obj[0];
  }
  void setForwarded(Word *Obj, Word NewAddr) {
    size_t Index;
    std::vector<uint64_t> *Bits =
        const_cast<std::vector<uint64_t> *>(forwardBitsFor(Obj, Index));
    assert(Bits && !Bits->empty() && "forwarding outside a collection");
    (*Bits)[Index >> 6] |= (uint64_t)1 << (Index & 63);
    Obj[0] = NewAddr;
    // Serial phases inside an armed parallel collection (remset scan)
    // must still satisfy later waitForwardee() spins.
    std::vector<uint64_t> *Pub = publishedBitsFor(Obj);
    if (Pub && !Pub->empty())
      (*Pub)[Index >> 6] |= (uint64_t)1 << (Index & 63);
  }

  // -- Parallel tracing (claim/publish; see Heap.h for the protocol) --------
  void setParallelTracing(bool On) { ParallelArm = On; }
  bool parallelTracing() const { return ParallelArm; }

  /// Lock-free read of the claim bit (parallel alreadyVisited fast path).
  bool isForwardedAtomic(const Word *Obj) const {
    size_t Index;
    const std::vector<uint64_t> *Bits = forwardBitsFor(Obj, Index);
    if (!Bits || Bits->empty())
      return false;
    std::atomic_ref<uint64_t> B(
        const_cast<uint64_t &>((*Bits)[Index >> 6]));
    return (B.load(std::memory_order_relaxed) >> (Index & 63)) & 1;
  }

  bool tryClaimForward(Word *Obj) {
    size_t Index;
    std::vector<uint64_t> *Bits =
        const_cast<std::vector<uint64_t> *>(forwardBitsFor(Obj, Index));
    assert(Bits && !Bits->empty() && "claiming outside a collection");
    uint64_t Bit = (uint64_t)1 << (Index & 63);
    std::atomic_ref<uint64_t> B((*Bits)[Index >> 6]);
    return !(B.fetch_or(Bit, std::memory_order_acq_rel) & Bit);
  }

  void publishForward(Word *Obj, Word NewAddr) {
    Obj[0] = NewAddr;
    size_t Index;
    forwardBitsFor(Obj, Index);
    std::vector<uint64_t> *Pub = publishedBitsFor(Obj);
    assert(Pub && !Pub->empty() && "publishing outside a collection");
    std::atomic_ref<uint64_t> B((*Pub)[Index >> 6]);
    B.fetch_or((uint64_t)1 << (Index & 63), std::memory_order_release);
  }

  Word waitForwardee(const Word *Obj) const {
    size_t Index;
    forwardBitsFor(Obj, Index);
    const std::vector<uint64_t> *Pub =
        const_cast<GenHeap *>(this)->publishedBitsFor(Obj);
    assert(Pub && !Pub->empty());
    uint64_t Bit = (uint64_t)1 << (Index & 63);
    std::atomic_ref<uint64_t> B(
        const_cast<uint64_t &>((*Pub)[Index >> 6]));
    while (!(B.load(std::memory_order_acquire) & Bit))
      std::this_thread::yield();
    return Obj[0];
  }

  /// CAS-bump variants of the three evacuation cursors, shared by
  /// concurrent GC workers. Serial and parallel bumps must not interleave
  /// within one phase.
  Word *allocateInSurvivorSpaceParallel(size_t Words) {
    assert(MinorActive && "not in a minor collection");
    std::atomic_ref<Word *> A(NurToAlloc);
    Word *Cur = A.load(std::memory_order_relaxed);
    for (;;) {
      assert(Words <= (size_t)(NurToEnd - Cur) && "nursery to-space overflow");
      if (A.compare_exchange_weak(Cur, Cur + Words,
                                  std::memory_order_relaxed))
        return Cur;
    }
  }
  Word *allocateInTenuredParallel(size_t Words) {
    assert(MinorActive && "not in a minor collection");
    std::atomic_ref<Word *> A(TenAlloc);
    Word *Cur = A.load(std::memory_order_relaxed);
    for (;;) {
      assert(Words <= (size_t)(TenEnd - Cur) && "tenured overflow");
      if (A.compare_exchange_weak(Cur, Cur + Words,
                                  std::memory_order_relaxed))
        return Cur;
    }
  }
  Word *allocateInToSpaceParallel(size_t Words) {
    assert(MajorActive && "not in a major collection");
    std::atomic_ref<Word *> A(TenToAlloc);
    Word *Cur = A.load(std::memory_order_relaxed);
    for (;;) {
      assert(Words <= (size_t)(TenToEnd - Cur) && "tenured to-space overflow");
      if (A.compare_exchange_weak(Cur, Cur + Words,
                                  std::memory_order_relaxed))
        return Cur;
    }
  }

  /// Reallocates the nursery semispaces at \p MinWords or more. Only legal
  /// while the nursery is empty (after a major collection).
  void growNursery(size_t MinWords);

  // -- Accounting -----------------------------------------------------------
  size_t nurseryCapacityWords() const { return NurCapacityWords; }
  size_t nurseryUsedWords() const { return (size_t)(NurAlloc - NurBase); }
  size_t nurseryFreeWords() const { return (size_t)(NurEnd - NurAlloc); }
  size_t tenuredCapacityWords() const { return TenCapacityWords; }
  size_t tenuredUsedWords() const { return (size_t)(TenAlloc - TenBase); }
  size_t tenuredFreeWords() const { return (size_t)(TenEnd - TenAlloc); }
  size_t capacityBytes() const {
    return (NurCapacityWords + TenCapacityWords) * sizeof(Word);
  }
  size_t usedBytes() const {
    return (nurseryUsedWords() + tenuredUsedWords()) * sizeof(Word);
  }
  uint64_t bytesAllocatedTotal() const { return BytesAllocatedTotal; }
  bool collecting() const { return MinorActive || MajorActive; }

private:
  /// The forwarding bitmap covering \p Obj and the word index within it,
  /// or nullptr for an address outside both regions.
  const std::vector<uint64_t> *forwardBitsFor(const Word *Obj,
                                              size_t &Index) const {
    if (Obj >= NurBase && Obj < NurEnd) {
      Index = (size_t)(Obj - NurBase);
      return &NurForwardBits;
    }
    if (Obj >= TenBase && Obj < TenEnd) {
      Index = (size_t)(Obj - TenBase);
      return &TenForwardBits;
    }
    Index = 0;
    return nullptr;
  }

  /// Published bitmap covering \p Obj (parallel collections only; empty
  /// vectors otherwise), or nullptr outside both regions.
  std::vector<uint64_t> *publishedBitsFor(const Word *Obj) {
    if (Obj >= NurBase && Obj < NurEnd)
      return &NurPublishedBits;
    if (Obj >= TenBase && Obj < TenEnd)
      return &TenPublishedBits;
    return nullptr;
  }

  /// Nursery semispace pair; NurCur indexes the current from-space.
  std::unique_ptr<Word[]> NurSpaces[2];
  int NurCur = 0;
  Word *NurBase = nullptr, *NurAlloc = nullptr, *NurEnd = nullptr;
  Word *NurToBase = nullptr, *NurToAlloc = nullptr, *NurToEnd = nullptr;
  size_t NurCapacityWords = 0;

  std::unique_ptr<Word[]> Ten;   ///< Tenured space.
  std::unique_ptr<Word[]> TenTo; ///< Only alive during a major collection.
  Word *TenBase = nullptr, *TenAlloc = nullptr, *TenEnd = nullptr;
  Word *TenToBase = nullptr, *TenToAlloc = nullptr, *TenToEnd = nullptr;
  size_t TenCapacityWords = 0;
  size_t TenToCapacityWords = 0;

  std::vector<uint64_t> NurForwardBits;
  std::vector<uint64_t> TenForwardBits;
  /// Sized alongside the forward bitmaps while ParallelArm; empty
  /// otherwise.
  std::vector<uint64_t> NurPublishedBits;
  std::vector<uint64_t> TenPublishedBits;
  bool ParallelArm = false;
  bool MinorActive = false;
  bool MajorActive = false;
  uint64_t BytesAllocatedTotal = 0;
};

} // namespace tfgc

#endif // TFGC_RUNTIME_GENHEAP_H
