file(REMOVE_RECURSE
  "libtfgc_frontend.a"
)
