# Empty dependencies file for tfgc_support.
# This may be replaced when dependencies are built.
