file(REMOVE_RECURSE
  "libtfgc_driver.a"
)
