//===- support/Stats.cpp --------------------------------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <thread>

using namespace tfgc;

namespace {

/// Names in StatId order, which is also alphabetical order (asserted in
/// the debug build below) so idForName can binary-search and render can
/// merge against the alphabetical dynamic map.
constexpr std::string_view FixedNames[] = {
    "gc.barrier_ops",
    "gc.bytes_reclaimed",
    "gc.chain_steps",
    "gc.collections",
    "gc.compiled_actions",
    "gc.desc_steps",
    "gc.frames_traced",
    "gc.gloger_dummies",
    "gc.heap_growths",
    "gc.major_collections",
    "gc.minor_collections",
    "gc.objects_visited",
    "gc.parallel_traces",
    "gc.parallel_workers",
    "gc.pause_ns_max",
    "gc.pause_ns_p50",
    "gc.pause_ns_p90",
    "gc.pause_ns_p99",
    "gc.pause_ns_total",
    "gc.promoted_words",
    "gc.ptr_reversal_steps",
    "gc.remset_entries",
    "gc.slots_traced",
    "gc.stack_steals",
    "gc.tg_cache_hits",
    "gc.tg_cache_misses",
    "gc.tg_memo_hits",
    "gc.tg_nodes",
    "gc.tg_steps",
    "gc.verify_passes",
    "gc.verify_violations",
    "gc.words_visited",
    "heap.bytes_allocated_total",
    "heap.capacity_bytes",
    "heap.objects_allocated",
    "heap.used_bytes",
    "task.context_switches",
    "task.gc_requests",
    "task.spawned",
    "task.steps_to_world_stop_max",
    "task.steps_to_world_stop_total",
    "task.suspend_checks",
    "task.world_stops",
    "vm.calls",
    "vm.float_boxes",
    "vm.frame_words_zeroed",
    "vm.max_frames",
    "vm.max_slot_words",
    "vm.steps",
    "vm.superinstructions_executed",
    "vm.tag_ops",
    "vm.tail_calls",
};

static_assert(std::size(FixedNames) == Stats::NumFixed,
              "FixedNames must cover every StatId");

constexpr bool namesSorted() {
  for (size_t I = 1; I < std::size(FixedNames); ++I)
    if (!(FixedNames[I - 1] < FixedNames[I]))
      return false;
  return true;
}
static_assert(namesSorted(), "StatId enumerators must be in name order");

} // namespace

std::string_view Stats::name(StatId Id) {
  assert(Id < StatId::NumIds);
  return FixedNames[(size_t)Id];
}

StatId Stats::idForName(std::string_view Name) {
  const auto *First = std::begin(FixedNames);
  const auto *Last = std::end(FixedNames);
  const auto *It = std::lower_bound(First, Last, Name);
  if (It != Last && *It == Name)
    return (StatId)(It - First);
  return StatId::NumIds;
}

StatsShard &Stats::shardForTask(uint32_t TaskIndex) {
  size_t Want = (size_t)TaskIndex + 2; // shard 0 is the collector domain
  while (Shards.size() < Want)
    Shards.emplace_back(std::make_unique<StatsShard>());
  return *Shards[(size_t)TaskIndex + 1];
}

uint64_t Stats::foldOne(StatId Id) const {
  uint64_t V = 0;
  if (statFold(Id) == StatFold::Max) {
    for (const auto &S : Shards)
      V = std::max(V, S->get(Id));
  } else {
    for (const auto &S : Shards)
      V += S->get(Id);
  }
  return V;
}

uint64_t &Stats::dynamicSlot(const std::string &Name) {
  if (Shards.size() > 1 && SafepointDepth == 0)
    dynamicGuardFailure(Name);
  return Dynamic[Name];
}

namespace {
thread_local const char *ThreadLabelTls = "main";
} // namespace

void Stats::setThreadLabel(const char *Label) { ThreadLabelTls = Label; }
const char *Stats::threadLabel() { return ThreadLabelTls; }

void Stats::dynamicGuardFailure(const std::string &Name) const {
  // Hard abort, not assert(): the race this guards against (mutating the
  // shared name map while other shards' owners run) corrupts data in
  // release builds too. Name both the counter and the thread — "which
  // thread touched which dynamic stat" is the whole debugging question.
  std::fprintf(stderr,
               "tfgc: fatal: dynamic stat \"%s\" registered outside a "
               "safepoint while %zu counter shards are live.\n"
               "Offending thread: %s (id 0x%zx).\n"
               "Dynamic string-name stats mutate the shared side map; with "
               "per-task shards this is only legal inside a "
               "Stats::SafepointScope (collection boundary, monitor "
               "heartbeat, or run end). Either move the write into a "
               "safepoint publish path, or promote the counter to a fixed "
               "StatId.\n",
               Name.c_str(), Shards.size(), ThreadLabelTls,
               std::hash<std::thread::id>{}(std::this_thread::get_id()));
  std::abort();
}

std::map<std::string, uint64_t> Stats::all() const {
  std::map<std::string, uint64_t> Out = Dynamic;
  // Fixed names arrive in increasing order, so with an empty/small Dynamic
  // the end() hint makes each insert O(1) — this runs in every epoch fold.
  auto Hint = Out.begin();
  for (size_t I = 0; I < NumFixed; ++I)
    if (has((StatId)I)) {
      while (Hint != Out.end() && Hint->first < FixedNames[I])
        ++Hint;
      Hint = Out.emplace_hint(Hint, std::string(FixedNames[I]),
                              foldOne((StatId)I));
      ++Hint;
    }
  return Out;
}

StatsShard Stats::folded() const {
  if (Shards.size() == 1)
    return *Base;
  StatsShard Out;
  for (size_t I = 0; I < NumFixed; ++I) {
    StatId Id = (StatId)I;
    if (has(Id))
      Out.set(Id, foldOne(Id));
  }
  return Out;
}

std::string Stats::render() const {
  std::ostringstream OS;
  // Two-finger merge: fixed ids are already in name order, Dynamic is an
  // ordered map, so one linear pass preserves the historical all-in-one
  // alphabetical output.
  size_t I = 0;
  auto It = Dynamic.begin();
  auto emitFixed = [&] {
    OS << FixedNames[I] << " = " << foldOne((StatId)I) << '\n';
    ++I;
  };
  while (I < NumFixed || It != Dynamic.end()) {
    while (I < NumFixed && !has((StatId)I))
      ++I;
    if (I == NumFixed) {
      for (; It != Dynamic.end(); ++It)
        OS << It->first << " = " << It->second << '\n';
      break;
    }
    if (It == Dynamic.end() || FixedNames[I] < It->first) {
      emitFixed();
    } else {
      OS << It->first << " = " << It->second << '\n';
      ++It;
    }
  }
  return OS.str();
}
