file(REMOVE_RECURSE
  "libtfgc_workloads.a"
)
