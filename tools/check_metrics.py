#!/usr/bin/env python3
"""Validates a tfgc Prometheus exposition (from /metrics or --metrics-out).

Checks exposition syntax (version 0.0.4 text format as tfgc emits it) and
cross-metric sanity, exit 1 on violation:

  * every sample line parses as `name value` or `name{labels} value` with a
    legal metric name and a non-negative integer value;
  * every sample is preceded by a `# TYPE` for its name, typed counter or
    gauge, and no name is sampled twice;
  * `tfgc_epoch_seq` is present and >= 1 (the run folded at least the
    startup epoch);
  * `tfgc_build_info` is present with value 1 and carries the full
    provenance label set (git_sha, dispatch, sanitizer, build_type);
  * heap.used <= heap.capacity, pause max <= pause total, collections
    split (minor + major) <= total collections.

With --against-stats STATS.json, additionally asserts that every counter in
the stats JSON's `counters` map appears in the exposition under its
Prometheus name (`gc.pause_ns_max` -> `tfgc_gc_pause_ns_max`) with exactly
the same value — the end-of-run /metrics epoch and --stats-json are folded
from the same quiescent shard state, so any difference is a bug.

Usage: check_metrics.py [--against-stats STATS.json] METRICS.txt
       curl -s localhost:PORT/metrics | check_metrics.py -
"""

import json
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")


def prom_name(counter):
    """Mirror of promName() in src/support/Epoch.cpp."""
    return "tfgc_" + "".join(
        c if c.isascii() and (c.isalnum() or c == "_") else "_"
        for c in counter)


def parse(text, where):
    types = {}
    samples = {}
    labelstrs = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                assert len(parts) == 4, f"{where}:{lineno}: malformed TYPE"
                name, kind = parts[2], parts[3]
                assert NAME_RE.match(name), (
                    f"{where}:{lineno}: bad metric name {name!r}")
                assert kind in ("counter", "gauge"), (
                    f"{where}:{lineno}: TYPE {name} is {kind!r}, "
                    "want counter or gauge")
                assert name not in types, (
                    f"{where}:{lineno}: duplicate TYPE for {name}")
                types[name] = kind
            continue
        m = SAMPLE_RE.match(line)
        assert m, f"{where}:{lineno}: unparseable sample line: {line!r}"
        name, labels, value = m.group(1), m.group(2), m.group(3)
        assert name in types, (
            f"{where}:{lineno}: sample {name} has no preceding # TYPE")
        assert name not in samples, f"{where}:{lineno}: duplicate sample {name}"
        if labels:
            assert labels.count('"') % 2 == 0, (
                f"{where}:{lineno}: unbalanced quotes in labels: {labels!r}")
            labelstrs[name] = labels
        assert re.match(r"^\d+$", value), (
            f"{where}:{lineno}: value of {name} is {value!r}, "
            "want a non-negative integer")
        samples[name] = int(value)
    assert samples, f"{where}: no samples"
    return types, samples, labelstrs


def sanity(samples, labelstrs):
    assert "tfgc_epoch_seq" in samples, "missing tfgc_epoch_seq"
    assert samples["tfgc_epoch_seq"] >= 1, "epoch seq below 1"

    assert "tfgc_build_info" in samples, "missing tfgc_build_info"
    assert samples["tfgc_build_info"] == 1, "tfgc_build_info value is not 1"
    build_labels = labelstrs.get("tfgc_build_info", "")
    for key in ("git_sha", "dispatch", "sanitizer", "build_type"):
        assert f'{key}="' in build_labels, (
            f"tfgc_build_info missing label {key}: {build_labels!r}")

    def both(a, b):
        return a in samples and b in samples

    if both("tfgc_heap_used_bytes", "tfgc_heap_capacity_bytes"):
        assert samples["tfgc_heap_used_bytes"] <= \
            samples["tfgc_heap_capacity_bytes"], "heap used > capacity"
    if both("tfgc_gc_pause_ns_max", "tfgc_gc_pause_ns_total"):
        assert samples["tfgc_gc_pause_ns_max"] <= \
            samples["tfgc_gc_pause_ns_total"], "pause max > pause total"
    if both("tfgc_gc_minor_collections", "tfgc_gc_collections"):
        minor = samples["tfgc_gc_minor_collections"]
        major = samples.get("tfgc_gc_major_collections", 0)
        assert minor + major <= samples["tfgc_gc_collections"], (
            "minor + major collections exceed total")


def against_stats(samples, stats_path):
    with open(stats_path) as f:
        stats = json.load(f)
    counters = stats.get("counters")
    assert isinstance(counters, dict), f"{stats_path}: no counters map"
    bad = []
    for name, want in sorted(counters.items()):
        metric = prom_name(name)
        if metric not in samples:
            bad.append(f"{name}: missing metric {metric}")
        elif samples[metric] != want:
            bad.append(f"{name}: metrics={samples[metric]} stats={want}")
    assert not bad, ("metrics/stats mismatch:\n  " + "\n  ".join(bad))
    print(f"against-stats: {len(counters)} counters match exactly")


def main():
    args = sys.argv[1:]
    stats_path = None
    if args and args[0] == "--against-stats":
        assert len(args) >= 2, "--against-stats needs a file"
        stats_path = args[1]
        args = args[2:]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    text = sys.stdin.read() if args[0] == "-" else open(args[0]).read()
    where = "<stdin>" if args[0] == "-" else args[0]
    types, samples, labelstrs = parse(text, where)
    sanity(samples, labelstrs)
    if stats_path:
        against_stats(samples, stats_path)
    gauges = sum(1 for k in types.values() if k == "gauge")
    print(f"{where}: {len(samples)} samples "
          f"({gauges} gauges), epoch {samples['tfgc_epoch_seq']}: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
