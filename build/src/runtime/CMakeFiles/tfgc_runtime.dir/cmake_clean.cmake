file(REMOVE_RECURSE
  "CMakeFiles/tfgc_runtime.dir/Heap.cpp.o"
  "CMakeFiles/tfgc_runtime.dir/Heap.cpp.o.d"
  "CMakeFiles/tfgc_runtime.dir/MarkSweepHeap.cpp.o"
  "CMakeFiles/tfgc_runtime.dir/MarkSweepHeap.cpp.o.d"
  "libtfgc_runtime.a"
  "libtfgc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfgc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
