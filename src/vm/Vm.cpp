//===- vm/Vm.cpp ----------------------------------------------------------===//

#include "vm/Vm.h"

#include "support/FlightRecorder.h"

#include <cassert>
#include <cstring>
#include <sstream>

using namespace tfgc;

Vm::Vm(const IrProgram &Prog, const CodeImage &Img, TypeContext &Types,
       Collector &Col, VmOptions Opts)
    : Prog(Prog), Img(Img), Types(Types), Col(Col), Opts(Opts),
      Model(Col.model()) {
  if (Model == ValueModel::Tagged)
    this->Opts.ZeroFrames = true;
  GenBarriers = Col.algorithm() == GcAlgorithm::Generational;
  Shard = &Col.stats().shardForTask(this->Opts.TaskIndex);
  Mon = Col.monitor();
  if (Mon) {
    SamplePeriod = Mon->samplePeriodSteps();
    if (SamplePeriod)
      NextSampleAt = SamplePeriod;
  }
  ChecksAtCalls = this->Opts.Checks == SuspendChecks::AtEveryCall ||
                  this->Opts.Checks == SuspendChecks::RgcRegister;
  FlightR = this->Opts.Flight;
  CountCallChecks = this->Opts.Checks == SuspendChecks::AtEveryCall;
  SelfTagFloats = Model == ValueModel::Tagged && this->Opts.FloatSelfTag;

  DecodeConfig DC;
  DC.Model = Model;
  DC.Fuse = this->Opts.FuseSuperinstructions;
  DC.FloatSelfTag = this->Opts.FloatSelfTag;
  DC.TailCalls = this->Opts.TailCalls;
  if (this->Opts.Decoded) {
    DP = this->Opts.Decoded;
    assert(DP->Cfg.Model == DC.Model && DP->Cfg.Fuse == DC.Fuse &&
           DP->Cfg.FloatSelfTag == DC.FloatSelfTag &&
           DP->Cfg.TailCalls == DC.TailCalls &&
           "shared decoded program does not match this VM's configuration");
  } else {
    OwnedDecoded = std::make_unique<DecodedProgram>(decodeProgram(Prog, DC));
    DP = OwnedDecoded.get();
  }
  UseThreaded =
      TFGC_HAVE_THREADED && this->Opts.Dispatch != DispatchMode::Switch;
  if (UseThreaded && !DP->HandlersFilled)
    fillHandlers(*DP);
}

bool Vm::fail(const std::string &Message) {
  if (Error.empty())
    Error = Message;
  return false;
}

void Vm::start(FuncId Entry, const std::vector<Word> &Args) {
  assert(!Started && "VM already started");
  EntryFn = Entry;
  Started = true;
  if (Mon)
    Mon->beginRun();
  pushFrame(Entry, Args.data(), (unsigned)Args.size(), false, 0, 0);
}

void Vm::pushFrame(FuncId Callee, const Word *Args, unsigned NumArgs,
                   bool HasSelf, Word Self, SlotIndex CallerDst) {
  const IrFunction &Fn = Prog.fn(Callee);
  FrameInfo F;
  F.FuncId = Callee;
  F.SlotBase = SlotTop;
  F.NumSlots = Fn.numSlots();
  F.PendingSiteAddr = NoSiteAddr;
  F.DynamicLink =
      Stack.Frames.empty() ? NoFrame : (uint32_t)(Stack.Frames.size() - 1);
  F.CallerDst = CallerDst;
  F.ResumeInstr = 0;

  SlotTop += F.NumSlots;
  if (Stack.Slots.size() < SlotTop)
    Stack.Slots.resize(SlotTop * 2 + 64);
  Word *S = Stack.Slots.data() + F.SlotBase;
  if (Opts.ZeroFrames) {
    std::memset(S, 0, F.NumSlots * sizeof(Word));
    WordsZeroed += F.NumSlots;
  }
  unsigned Base = 0;
  if (HasSelf) {
    S[0] = Self;
    Base = 1;
  }
  for (unsigned I = 0; I < NumArgs; ++I)
    S[Base + I] = Args[I];

  Stack.Frames.push_back(F);
  if ((uint32_t)Stack.Frames.size() > MaxFrames)
    MaxFrames = (uint32_t)Stack.Frames.size();
  if (SlotTop > MaxSlotWords)
    MaxSlotWords = SlotTop;
}

Word *Vm::allocate(size_t PayloadWords, ObjKind Kind, CallSiteId Site,
                   uint32_t FrameIdx) {
  // Record the "return address" of the allocator call (paper section 2.1:
  // collection can only start inside cons/new, whose frame's return
  // address selects this frame's GC routine).
  Stack.Frames[FrameIdx].PendingSiteAddr = Prog.site(Site).CodeAddr;

  if (Opts.Checks != SuspendChecks::None) {
    // Tasking: never collect unilaterally; suspend and let the
    // coordinator stop the world (paper section 4). All policies test
    // inside the allocation routine.
    ++SuspendChecksRun;
    assert(Opts.Coord && "tasking checks without a coordinator");
    if (Opts.Coord->gcPending()) {
      flushHotCounters(); // Entering the world-stop: make vm.* foldable.
      Blocked = true;
      return nullptr;
    }
    // OS-thread mutators allocate through their TLAB and count in their
    // own shard; the cooperative scheduler (ThreadTlab null) keeps the
    // original serial path so its counters stay bit-identical.
    Word *P = Col.tryAllocatePayload(PayloadWords, Kind, Opts.ThreadTlab,
                                     Opts.ThreadTlab ? Shard : nullptr);
    if (P)
      return finishAlloc(P, Site);
    if (FlightR) [[unlikely]]
      FlightR->record(FlightEventType::GcRequest, 0, PayloadWords);
    Opts.Coord->requestGc(PayloadWords);
    flushHotCounters();
    Blocked = true;
    return nullptr;
  }

  RootSet Roots;
  Roots.Stacks.push_back(&Stack);
  if (Opts.GcStress) {
    flushHotCounters();
    Col.collect(Roots, PayloadWords);
  }

  Word *P = Col.tryAllocatePayload(PayloadWords, Kind);
  if (P)
    return finishAlloc(P, Site);
  flushHotCounters(); // Collection boundary: the epoch fold reads vm.*.
  Col.collect(Roots, PayloadWords);
  P = Col.tryAllocatePayload(PayloadWords, Kind);
  if (!P)
    fail("out of memory");
  return finishAlloc(P, Site);
}

double Vm::readFloat(Word W) const {
  if (Model == ValueModel::TagFree)
    return wordToFloat(W);
  return readFloatTG(W);
}

StepResult Vm::exec(uint64_t Budget) {
#if TFGC_HAVE_THREADED
  if (UseThreaded)
    return execThreadedLoop(Budget, nullptr);
#endif
  return execSwitchLoop(Budget);
}

// The two dispatch loops share one set of handler bodies; see VmExec.inc
// for the dispatch macros and the fuel-counter slow path.

StepResult Vm::execSwitchLoop(uint64_t Budget) {
#define TFGC_THREADED 0
#include "vm/VmExec.inc"
#undef TFGC_THREADED
}

#if TFGC_HAVE_THREADED

StepResult Vm::execThreadedLoop(uint64_t Budget,
                                const void *const **TableOut) {
#define TFGC_THREADED 1
#include "vm/VmExec.inc"
#undef TFGC_THREADED
}

void Vm::fillHandlers(DecodedProgram &D) {
  const void *const *Table = nullptr;
  execThreadedLoop(0, &Table);
  assert(Table && "threaded loop did not export its label table");
  for (DFunc &F : D.Fns)
    for (DInstr &I : F.Code)
      I.Handler = Table[I.Op];
  D.HandlersFilled = true;
}

#else // !TFGC_HAVE_THREADED

StepResult Vm::execThreadedLoop(uint64_t Budget,
                                const void *const **TableOut) {
  (void)TableOut;
  return execSwitchLoop(Budget);
}

void Vm::fillHandlers(DecodedProgram &D) { (void)D; }

#endif // TFGC_HAVE_THREADED

RunResult Vm::run() {
  RunResult R;
  for (;;) {
    StepResult S = exec(UINT64_MAX);
    if (S == StepResult::Ran)
      continue;
    assert(S != StepResult::BlockedOnGc &&
           "sequential VM cannot block on GC");
    break;
  }
  flushCounters();
  R.Output = Output;
  if (!Error.empty()) {
    R.Ok = false;
    R.Error = Error;
    return R;
  }
  R.Ok = true;
  R.Value = renderResult();
  return R;
}

std::string Vm::renderResult() {
  Type *ResultTy = Prog.fn(EntryFn).FunTy->resolved()->result();
  return renderValue(ReturnValue, ResultTy);
}

void Vm::fireSample(uint32_t FrameIdx, OpClass Cls) {
  assert(Mon && "sample fired without a monitor");
  // The sampled step number is the deadline itself (the per-step loop
  // recorded Steps after incrementing for the sampled instruction).
  uint64_t At = NextSampleAt;
  NextSampleAt += SamplePeriod;
  const FrameInfo &F = Stack.Frames[FrameIdx];
  uint32_t Caller = F.DynamicLink == NoFrame
                        ? Monitor::NoFunc
                        : Stack.Frames[F.DynamicLink].FuncId;
  // Sample points are cooperative safepoints: flush this task's hot
  // counters first so the monitor's snapshot (and any heartbeat epoch
  // fold it triggers) reads fresh folded values.
  flushHotCounters();
  Monitor::SampleCounters SC;
  SC.Steps = At;
  SC.AllocBytes = Col.bytesAllocatedTotal();
  SC.BarrierOps = Col.stats().get(StatId::GcBarrierOps);
  SC.RemsetEntries = Col.stats().get(StatId::GcRemsetEntries);
  Mon->recordSample(F.FuncId, Caller, Cls, Opts.TaskIndex, SC);
}

void Vm::flushHotCounters() {
  // set() for cumulative per-VM counters (idempotent across repeated
  // flushes; sequential re-runs on the same Stats overwrite like the
  // pre-sharding implementation did), add-with-reset for the two counters
  // other components also contribute to.
  Shard->set(StatId::VmSteps, Steps);
  Shard->set(StatId::VmSuperinstructions, SuperExec);
  Shard->set(StatId::VmTailCalls, TailCallsExec);
  Shard->set(StatId::VmTagOps, TagOps);
  Shard->set(StatId::VmFloatBoxes, FloatBoxes);
  Shard->set(StatId::VmCalls, Calls);
  Shard->set(StatId::VmFrameWordsZeroed, WordsZeroed);
  Shard->set(StatId::VmMaxFrames, MaxFrames);
  Shard->set(StatId::VmMaxSlotWords, MaxSlotWords);
  Shard->add(StatId::TaskSuspendChecks, SuspendChecksRun);
  SuspendChecksRun = 0;
  Shard->add(StatId::GcBarrierOps, BarrierOps);
  BarrierOps = 0;
}

void Vm::flushCounters() {
  Stats &St = Col.stats();
  if (Mon) {
    Mon->noteTaskSteps(Opts.TaskIndex, Steps);
    Mon->endRun();
  }
  flushHotCounters();
  // Gauges describe the shared heap, not this task: they go through the
  // facade (shard 0) so the fold is the identity for them.
  St.set(StatId::HeapUsedBytes, Col.heapUsedBytes());
  St.set(StatId::HeapCapacityBytes, Col.heapCapacityBytes());
  St.set(StatId::HeapBytesAllocatedTotal, Col.bytesAllocatedTotal());
  Col.publishTelemetryStats();
}

std::string Vm::renderValue(Word V, Type *Ty, int Depth) {
  if (Depth > 64)
    return "...";
  Ty = Ty->resolved();
  bool Tagged = Model == ValueModel::Tagged;
  std::ostringstream OS;
  switch (Ty->getKind()) {
  case TypeKind::Int:
    OS << (Tagged ? untagInt(V) : (int64_t)V);
    return OS.str();
  case TypeKind::Bool:
    return (Tagged ? untagInt(V) : (int64_t)V) ? "true" : "false";
  case TypeKind::Unit:
    return "()";
  case TypeKind::Float: {
    OS << readFloat(V);
    return OS.str();
  }
  case TypeKind::Var:
    return "<poly>";
  case TypeKind::Fun:
    return "<fn>";
  case TypeKind::Tuple: {
    const Word *P = reinterpret_cast<const Word *>(V);
    OS << '(';
    for (unsigned I = 0; I < Ty->numArgs(); ++I) {
      if (I)
        OS << ", ";
      OS << renderValue(P[I], Ty->arg(I), Depth + 1);
    }
    OS << ')';
    return OS.str();
  }
  case TypeKind::Ref: {
    const Word *P = reinterpret_cast<const Word *>(V);
    return "ref " + renderValue(P[0], Ty->refElem(), Depth + 1);
  }
  case TypeKind::Data: {
    DatatypeInfo *Info = Ty->data();
    std::vector<Type *> Args(Ty->args().begin(), Ty->args().end());
    // Lists render with bracket sugar.
    if (Info == Types.listInfo()) {
      OS << '[';
      Word Cur = V;
      bool First = true;
      int Guard = 0;
      for (;;) {
        bool Imm = Tagged ? isTaggedImmediate(Cur) : Cur < ImmediateCtorLimit;
        if (Imm)
          break;
        const Word *P = reinterpret_cast<const Word *>(Cur);
        if (!First)
          OS << ", ";
        First = false;
        OS << renderValue(P[1], Args[0], Depth + 1);
        Cur = P[2];
        if (++Guard > 1000) {
          OS << ", ...";
          break;
        }
      }
      OS << ']';
      return OS.str();
    }
    bool Imm = Tagged ? isTaggedImmediate(V) : V < ImmediateCtorLimit;
    uint64_t Ctor;
    const Word *P = nullptr;
    if (Imm) {
      Ctor = Tagged ? (uint64_t)untagInt(V) : V;
    } else {
      P = reinterpret_cast<const Word *>(V);
      Ctor = Tagged ? (uint64_t)untagInt(P[0]) : P[0];
    }
    const CtorInfo &C = Info->Ctors[Ctor];
    OS << C.Name;
    if (!C.Fields.empty()) {
      std::vector<Type *> Fields =
          Types.instantiateCtorFields(Info, (unsigned)Ctor, Args);
      OS << '(';
      for (size_t I = 0; I < Fields.size(); ++I) {
        if (I)
          OS << ", ";
        OS << renderValue(P[1 + I], Fields[I], Depth + 1);
      }
      OS << ')';
    }
    return OS.str();
  }
  }
  return "?";
}
