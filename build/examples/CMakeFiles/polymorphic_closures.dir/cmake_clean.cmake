file(REMOVE_RECURSE
  "CMakeFiles/polymorphic_closures.dir/polymorphic_closures.cpp.o"
  "CMakeFiles/polymorphic_closures.dir/polymorphic_closures.cpp.o.d"
  "polymorphic_closures"
  "polymorphic_closures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymorphic_closures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
