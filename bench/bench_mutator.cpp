//===- bench/bench_mutator.cpp - E1: mutator overhead of tags ------------===//
///
/// Paper claim (section 1, "More efficient execution"): manipulating type
/// tags costs the mutator — integers must be untagged before arithmetic
/// and retagged after, and floats are boxed. The tag-free strategies pay
/// none of that. This bench runs allocation-free integer arithmetic and a
/// float kernel under the tagged and tag-free value models and reports
/// both wall time and the counted tag operations / float boxes.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace tfgc;
using namespace tfgc::bench;
namespace wl = tfgc::workloads;

namespace {

std::unique_ptr<CompiledProgram> &arithProgram() {
  static auto P = compileOrDie(wl::arithKernel(200000));
  return P;
}
std::unique_ptr<CompiledProgram> &floatProgram() {
  static auto P = compileOrDie(wl::floatKernel(64, 200));
  return P;
}

void BM_ArithTagged(benchmark::State &State) {
  timedRun(State, *arithProgram(), GcStrategy::Tagged, GcAlgorithm::Copying,
           1 << 22);
}
void BM_ArithTagFree(benchmark::State &State) {
  timedRun(State, *arithProgram(), GcStrategy::CompiledTagFree,
           GcAlgorithm::Copying, 1 << 22);
}
void BM_FloatTagged(benchmark::State &State) {
  timedRun(State, *floatProgram(), GcStrategy::Tagged, GcAlgorithm::Copying,
           1 << 22);
}
void BM_FloatTagFree(benchmark::State &State) {
  timedRun(State, *floatProgram(), GcStrategy::CompiledTagFree,
           GcAlgorithm::Copying, 1 << 22);
}

BENCHMARK(BM_ArithTagged);
BENCHMARK(BM_ArithTagFree);
BENCHMARK(BM_FloatTagged);
BENCHMARK(BM_FloatTagFree);

void printTable() {
  tableHeader("E1: mutator overhead of tagging",
              "arith kernel: 200k iterations of add/mul/mod; float kernel: "
              "float list build+sum",
              {"workload", "model", "vm steps", "tag ops", "float boxes",
               "heap allocs"});
  struct Row {
    const char *Name;
    std::string Src;
  } Rows[] = {
      {"arith", wl::arithKernel(200000)},
      {"float", wl::floatKernel(64, 200)},
  };
  for (const Row &R : Rows) {
    for (GcStrategy S : {GcStrategy::Tagged, GcStrategy::CompiledTagFree}) {
      Stats St = runOnce(R.Src, S, GcAlgorithm::Copying, 1 << 22);
      tableCell(R.Name);
      tableCell(S == GcStrategy::Tagged ? "tagged" : "tag-free");
      tableCell(St.get("vm.steps"));
      tableCell(St.get("vm.tag_ops"));
      tableCell(St.get("vm.float_boxes"));
      tableCell(St.get("heap.objects_allocated"));
      tableEnd();
    }
  }
  std::printf("\nExpected shape: identical step counts; the tagged model "
              "additionally executes\ntag strip/reinstate ops and boxes "
              "every float, visible in the timings below.\n\n");
}

} // namespace

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
