//===- runtime/GenHeap.cpp ------------------------------------------------===//

#include "runtime/GenHeap.h"

using namespace tfgc;

namespace {

size_t clampWords(size_t Bytes) {
  size_t Words = Bytes / sizeof(Word);
  return Words < 64 ? 64 : Words;
}

} // namespace

GenHeap::GenHeap(size_t TenuredBytes, size_t NurseryBytes) {
  NurCapacityWords = clampWords(NurseryBytes);
  NurSpaces[0] = std::make_unique<Word[]>(NurCapacityWords);
  NurSpaces[1] = std::make_unique<Word[]>(NurCapacityWords);
  NurBase = NurAlloc = NurSpaces[0].get();
  NurEnd = NurBase + NurCapacityWords;

  TenCapacityWords = clampWords(TenuredBytes);
  Ten = std::make_unique<Word[]>(TenCapacityWords);
  TenBase = TenAlloc = Ten.get();
  TenEnd = TenBase + TenCapacityWords;
}

void GenHeap::beginMinor() {
  assert(!collecting() && "collection already in progress");
  NurToBase = NurToAlloc = NurSpaces[1 - NurCur].get();
  NurToEnd = NurToBase + NurCapacityWords;
  NurForwardBits.assign((NurCapacityWords + 63) / 64, 0);
  if (ParallelArm)
    NurPublishedBits.assign(NurForwardBits.size(), 0);
  MinorActive = true;
}

void GenHeap::endMinor() {
  assert(MinorActive);
  // The to-space (survivors) becomes the nursery; the old from-space is
  // the next collection's to-space.
  NurCur = 1 - NurCur;
  NurBase = NurSpaces[NurCur].get();
  NurAlloc = NurToAlloc;
  NurEnd = NurBase + NurCapacityWords;
  NurToBase = NurToAlloc = NurToEnd = nullptr;
  NurForwardBits.clear();
  NurForwardBits.shrink_to_fit();
  NurPublishedBits.clear();
  NurPublishedBits.shrink_to_fit();
  MinorActive = false;
}

void GenHeap::beginMajor(size_t NewTenuredCapacityWords) {
  assert(!collecting() && "collection already in progress");
  TenToCapacityWords =
      NewTenuredCapacityWords < 64 ? 64 : NewTenuredCapacityWords;
  TenTo = std::make_unique<Word[]>(TenToCapacityWords);
  TenToBase = TenToAlloc = TenTo.get();
  TenToEnd = TenToBase + TenToCapacityWords;
  NurForwardBits.assign((NurCapacityWords + 63) / 64, 0);
  TenForwardBits.assign((TenCapacityWords + 63) / 64, 0);
  if (ParallelArm) {
    NurPublishedBits.assign(NurForwardBits.size(), 0);
    TenPublishedBits.assign(TenForwardBits.size(), 0);
  }
  MajorActive = true;
}

void GenHeap::endMajor() {
  assert(MajorActive);
  Ten = std::move(TenTo);
  TenBase = Ten.get();
  TenAlloc = TenToAlloc;
  TenCapacityWords = TenToCapacityWords;
  TenEnd = TenBase + TenCapacityWords;
  TenToBase = TenToAlloc = TenToEnd = nullptr;
  TenToCapacityWords = 0;
  // Every young survivor was evacuated into the tenured to-space, so the
  // nursery restarts empty.
  NurAlloc = NurBase;
  NurForwardBits.clear();
  NurForwardBits.shrink_to_fit();
  TenForwardBits.clear();
  TenForwardBits.shrink_to_fit();
  NurPublishedBits.clear();
  NurPublishedBits.shrink_to_fit();
  TenPublishedBits.clear();
  TenPublishedBits.shrink_to_fit();
  MajorActive = false;
}

void GenHeap::growNursery(size_t MinWords) {
  assert(!collecting() && "cannot resize the nursery mid-collection");
  assert(nurseryUsedWords() == 0 && "nursery must be empty to grow");
  size_t NewWords = NurCapacityWords;
  while (NewWords < MinWords)
    NewWords *= 2;
  NurCapacityWords = NewWords;
  NurSpaces[0] = std::make_unique<Word[]>(NurCapacityWords);
  NurSpaces[1] = std::make_unique<Word[]>(NurCapacityWords);
  NurCur = 0;
  NurBase = NurAlloc = NurSpaces[0].get();
  NurEnd = NurBase + NurCapacityWords;
}
