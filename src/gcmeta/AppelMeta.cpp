//===- gcmeta/AppelMeta.cpp -----------------------------------------------===//

#include "gcmeta/AppelMeta.h"

using namespace tfgc;

void AppelMetadata::build(const IrProgram &P, const ReconstructResult &RR) {
  ProcDescs.assign(P.Functions.size(), FrameDescriptor{});
  ClosureDescs.assign(P.Functions.size(), ClosureDescriptor{});

  for (const IrFunction &F : P.Functions) {
    FrameDescriptor FD;
    for (SlotIndex Slot = 0; Slot < F.numSlots(); ++Slot) {
      Type *Ty = F.SlotTypes[Slot]->resolved();
      if (isGroundType(Ty)) {
        if (!isGcLeafType(Ty))
          FD.Slots.push_back({Slot, Table.getOrCreate(Ty)});
      } else {
        FD.Open.push_back({Slot, Ty});
      }
    }
    ProcDescs[F.Id] = std::move(FD);

    if (F.IsClosure) {
      ClosureDescriptor CD;
      CD.PayloadWords = 1 + (uint32_t)F.EnvTypes.size();
      for (unsigned I = 0; I < F.EnvTypes.size(); ++I) {
        Type *Ty = F.EnvTypes[I]->resolved();
        if (isGroundType(Ty)) {
          if (!isGcLeafType(Ty))
            CD.Fields.push_back({(SlotIndex)(I + 1), Table.getOrCreate(Ty)});
        } else {
          CD.Open.push_back({I + 1, Ty});
        }
      }
      CD.ParamPaths = RR.Paths[F.Id];
      ClosureDescs[F.Id] = std::move(CD);
    }
  }
  Table.buildAllShapes();
}

size_t AppelMetadata::sizeBytes() const {
  size_t Bytes = Table.sizeBytes();
  for (const FrameDescriptor &FD : ProcDescs)
    Bytes += 16 + 8 * (FD.Slots.size() + FD.Open.size());
  for (const ClosureDescriptor &CD : ClosureDescs)
    Bytes += CD.PayloadWords == 0
                 ? 0
                 : 16 + 8 * (CD.Fields.size() + CD.Open.size());
  return Bytes;
}
