//===- ir/Verify.h - IR structural verifier ---------------------*- C++ -*-===//
///
/// \file
/// Structural sanity checks over a lowered program: slot and label bounds,
/// terminator discipline, call-site wiring, closure invariants. Run after
/// lowering (the driver does) so that metadata generators and the VM can
/// rely on a well-formed program.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_IR_VERIFY_H
#define TFGC_IR_VERIFY_H

#include "ir/Ir.h"

#include <string>

namespace tfgc {

/// Returns true if \p P is structurally well-formed; otherwise fills
/// \p Error with the first violation found.
bool verifyIr(const IrProgram &P, std::string *Error = nullptr);

} // namespace tfgc

#endif // TFGC_IR_VERIFY_H
