//===- driver/Cli.cpp -----------------------------------------------------===//

#include "driver/Cli.h"

#include "ir/Ir.h"
#include "sched/ThreadedTasking.h"
#include "support/Epoch.h"
#include "support/FlightRecorder.h"
#include "support/HeapGraph.h"
#include "support/Introspect.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

using namespace tfgc;

const std::vector<CliFlag> &tfgc::cliFlags() {
  static const std::vector<CliFlag> Flags = {
      {"--strategy", true,
       "tagged | compiled (default) | interpreted | appel"},
      {"--algo", true, "copying (default) | marksweep | generational"},
      {"--heap", true, "initial heap size in bytes (default 1 MiB)"},
      {"--nursery-bytes", true,
       "generational: nursery size carved out of the heap (default heap/8)"},
      {"--stress", false, "collect at every allocation"},
      {"--threads", true,
       "run main as N tasks sharing the heap: 1 = the cooperative "
       "scheduler, >=2 = one OS thread per task with per-thread TLABs and "
       "parallel GC tracing (default: the sequential VM)"},
      {"--dispatch", true,
       "threaded (default where available) | switch: VM dispatch loop"},
      {"--no-fuse", false, "disable superinstruction fusion in the VM"},
      {"--no-tailcall", false,
       "disable frame reuse for self-recursive tail calls"},
      {"--float-tag", true,
       "self (default) | box: float representation under --strategy=tagged"},
      {"--no-liveness", false,
       "disable the live-variable analysis (paper 5.2)"},
      {"--no-gcpoints", false, "disable the GC-point analysis (paper 5.1)"},
      {"--mono", false, "reject polymorphic programs"},
      {"--monomorphise", false,
       "clone polymorphic functions per ground instantiation"},
      {"--gloger-dummies", false,
       "bind unreconstructible type parameters to const_gc (Goldberg & "
       "Gloger '92)"},
      {"--dump-ir", false, "print the lowered IR and exit"},
      {"--dump-meta", false, "print GC metadata statistics and exit"},
      {"--stats", false, "print collector statistics after the run"},
      {"--gc-log", false, "one structured log line per collection (stderr)"},
      {"--trace-out", true,
       "write a Chrome trace_event JSON of every collection (flushed per "
       "event)"},
      {"--verify", false,
       "re-trace read-only after every collection; exit 3 on violations"},
      {"--inject-verify-violation", false,
       "testing: make every verify pass report one artificial violation"},
      {"--stats-json", true,
       "write counters, pause/phase histograms, and the heap census as "
       "JSON"},
      {"--heap-profile", false,
       "profile allocations by site and type (tag-free: no headers added)"},
      {"--heap-snapshot", true,
       "write the last collection's typed heap snapshot as JSON (implies "
       "--heap-profile)"},
      {"--retainers", true,
       "report the top-N retainers by retained size after full/major "
       "collections (implies --heap-profile)"},
      {"--heap-dump", true,
       "stream typed heap-graph dumps (nodes, edges, roots, lifetimes) at "
       "full/major collections to FILE (implies --heap-profile; decode "
       "with tools/heap_graph_report.py)"},
      {"--heap-dump-every", true,
       "capture every Nth eligible collection (default 1; requires "
       "--heap-dump)"},
      {"--monitor", false,
       "mutator-side monitor: sampling profiler + MMU/utilization "
       "tracking"},
      {"--monitor-out", true,
       "stream schema-versioned JSONL heartbeats and a final summary "
       "(implies --monitor; render with tools/monitor_report.py)"},
      {"--monitor-period-ms", true,
       "heartbeat period for --monitor-out (default 50; requires "
       "--monitor-out)"},
      {"--monitor-sample-steps", true,
       "VM steps between profiler samples (default 512; implies "
       "--monitor)"},
      {"--serve", true,
       "live introspection HTTP server on 127.0.0.1:PORT (/metrics, "
       "/snapshot, /heartbeat, /flightrecord, /heapdump, /healthz; 0 "
       "picks a free port, printed to stderr)"},
      {"--serve-linger-ms", true,
       "keep serving the final epoch for MS ms after the run ends "
       "(requires --serve)"},
      {"--metrics-out", true,
       "write the final epoch as Prometheus text (flushed on abnormal "
       "exit like the other artifacts)"},
      {"--flight-out", true,
       "always-on binary flight recorder: per-thread timelines of "
       "safepoint handshakes, TLAB refills, VM polls and GC phases "
       "(decode with tools/flight_report.py)"},
      {"--flight-buffer-kb", true,
       "per-thread flight ring size in KiB (default 64; requires "
       "--flight-out)"},
      {"-e", true, "run inline source (the next argument is the program)"},
      {"--help", false, "print this help"},
      {"-h", false, "print this help"},
  };
  return Flags;
}

std::string tfgc::usageText() {
  std::string U = "usage: tfgc [options] file.mml | -e 'expr'\n";
  for (const CliFlag &F : cliFlags()) {
    std::string Left = "  ";
    Left += F.Name;
    if (F.HasValue && std::strcmp(F.Name, "-e") != 0)
      Left += "=VALUE";
    while (Left.size() < 30)
      Left += ' ';
    U += Left;
    U += F.Help;
    U += '\n';
  }
  return U;
}

namespace {

const CliFlag *findFlag(const std::string &Arg, std::string &Value) {
  for (const CliFlag &F : cliFlags()) {
    if (!F.HasValue || !std::strcmp(F.Name, "-e")) {
      if (Arg == F.Name)
        return &F;
      continue;
    }
    std::string Prefix = std::string(F.Name) + "=";
    if (Arg.compare(0, Prefix.size(), Prefix) == 0) {
      Value = Arg.substr(Prefix.size());
      return &F;
    }
  }
  return nullptr;
}

} // namespace

bool tfgc::parseCli(const std::vector<std::string> &Args, CliOptions &O,
                    std::string &Err, bool &HelpOnly) {
  HelpOnly = false;
  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &Arg = Args[I];
    if (Arg.empty())
      continue;
    if (Arg[0] != '-') {
      std::ifstream In(Arg);
      if (!In) {
        Err = "cannot open '" + Arg + "'";
        return false;
      }
      std::ostringstream Buf;
      Buf << In.rdbuf();
      O.Source = Buf.str();
      O.HaveSource = true;
      continue;
    }
    std::string Value;
    const CliFlag *F = findFlag(Arg, Value);
    if (!F) {
      Err = "unknown option '" + Arg + "'";
      return false;
    }
    std::string Name = F->Name;
    if (Name == "--strategy") {
      if (Value == "tagged")
        O.Strategy = GcStrategy::Tagged;
      else if (Value == "compiled")
        O.Strategy = GcStrategy::CompiledTagFree;
      else if (Value == "interpreted")
        O.Strategy = GcStrategy::InterpretedTagFree;
      else if (Value == "appel")
        O.Strategy = GcStrategy::AppelTagFree;
      else {
        Err = "unknown strategy '" + Value + "'";
        return false;
      }
    } else if (Name == "--algo") {
      if (Value == "copying")
        O.Algo = GcAlgorithm::Copying;
      else if (Value == "marksweep")
        O.Algo = GcAlgorithm::MarkSweep;
      else if (Value == "generational")
        O.Algo = GcAlgorithm::Generational;
      else {
        Err = "unknown algorithm '" + Value +
              "' (valid: copying | marksweep | generational)";
        return false;
      }
    } else if (Name == "--heap") {
      O.HeapBytes = (size_t)std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Name == "--nursery-bytes") {
      O.NurseryBytes = (size_t)std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Name == "--stress") {
      O.Stress = true;
    } else if (Name == "--threads") {
      char *EndP = nullptr;
      unsigned long N = std::strtoul(Value.c_str(), &EndP, 10);
      if (Value.empty() || (EndP && *EndP) || N > 256) {
        Err = "--threads: '" + Value + "' is not a thread count (0-256)";
        return false;
      }
      O.Threads = (unsigned)N;
    } else if (Name == "--dispatch") {
      if (Value == "threaded")
        O.Dispatch = DispatchMode::Threaded;
      else if (Value == "switch")
        O.Dispatch = DispatchMode::Switch;
      else {
        Err = "unknown dispatch mode '" + Value +
              "' (valid: threaded | switch)";
        return false;
      }
    } else if (Name == "--no-fuse") {
      O.Fuse = false;
    } else if (Name == "--no-tailcall") {
      O.TailCalls = false;
    } else if (Name == "--float-tag") {
      if (Value == "self")
        O.FloatSelfTag = true;
      else if (Value == "box")
        O.FloatSelfTag = false;
      else {
        Err = "unknown float representation '" + Value +
              "' (valid: self | box)";
        return false;
      }
    } else if (Name == "--no-liveness") {
      O.Compile.UseLiveness = false;
    } else if (Name == "--no-gcpoints") {
      O.Compile.UseGcPointAnalysis = false;
    } else if (Name == "--mono") {
      O.Compile.RequireMonomorphic = true;
    } else if (Name == "--monomorphise") {
      O.Compile.Monomorphise = true;
    } else if (Name == "--gloger-dummies") {
      O.Compile.GlogerDummies = true;
    } else if (Name == "--dump-ir") {
      O.DumpIr = true;
    } else if (Name == "--dump-meta") {
      O.DumpMeta = true;
    } else if (Name == "--stats") {
      O.ShowStats = true;
    } else if (Name == "--gc-log") {
      O.GcLog = true;
    } else if (Name == "--trace-out") {
      O.TraceOutPath = Value;
    } else if (Name == "--verify") {
      O.Verify = true;
    } else if (Name == "--inject-verify-violation") {
      O.InjectVerifyViolation = true;
    } else if (Name == "--stats-json") {
      O.StatsJsonPath = Value;
    } else if (Name == "--heap-profile") {
      O.HeapProfile = true;
    } else if (Name == "--heap-snapshot") {
      O.HeapSnapshotPath = Value;
      O.HeapProfile = true;
    } else if (Name == "--retainers") {
      O.Retainers = (unsigned)std::strtoul(Value.c_str(), nullptr, 10);
      O.HeapProfile = true;
    } else if (Name == "--heap-dump") {
      O.HeapDumpPath = Value;
      O.HeapProfile = true;
    } else if (Name == "--heap-dump-every") {
      char *EndP = nullptr;
      unsigned long long N = std::strtoull(Value.c_str(), &EndP, 10);
      if (Value.empty() || (EndP && *EndP) || N == 0) {
        Err = "--heap-dump-every: '" + Value + "' is not a positive count";
        return false;
      }
      O.HeapDumpEvery = N;
    } else if (Name == "--monitor") {
      O.Monitor = true;
    } else if (Name == "--monitor-out") {
      O.MonitorOutPath = Value;
      O.Monitor = true;
    } else if (Name == "--monitor-period-ms") {
      O.MonitorPeriodMs = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Name == "--monitor-sample-steps") {
      O.MonitorSampleSteps = std::strtoull(Value.c_str(), nullptr, 10);
      O.Monitor = true;
    } else if (Name == "--serve") {
      unsigned long Port = std::strtoul(Value.c_str(), nullptr, 10);
      if (Port > 65535) {
        Err = "--serve: port '" + Value + "' out of range";
        return false;
      }
      O.ServePort = (int)Port;
    } else if (Name == "--serve-linger-ms") {
      O.ServeLingerMs = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Name == "--metrics-out") {
      O.MetricsOutPath = Value;
    } else if (Name == "--flight-out") {
      O.FlightOutPath = Value;
    } else if (Name == "--flight-buffer-kb") {
      O.FlightBufferKb = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Name == "-e") {
      if (++I >= Args.size()) {
        Err = "-e needs an argument";
        return false;
      }
      O.Source = Args[I];
      O.HaveSource = true;
    } else if (Name == "--help" || Name == "-h") {
      HelpOnly = true;
      return true;
    }
  }
  if (O.Dispatch == DispatchMode::Threaded &&
      !Vm::threadedDispatchAvailable()) {
    Err = "--dispatch=threaded is not available in this build (compiled "
          "with -DTFGC_THREADED_DISPATCH=OFF or without computed goto)";
    return false;
  }
  if (O.MonitorPeriodMs && O.MonitorOutPath.empty()) {
    Err = "--monitor-period-ms requires --monitor-out";
    return false;
  }
  if (O.Threads >= 1 && O.Stress) {
    Err = "--stress is not supported with --threads (tasking collections "
          "are coordinated at safepoints, never forced per allocation)";
    return false;
  }
  if (O.Threads >= 2 && O.Monitor) {
    Err = "--monitor requires --threads=1 or the sequential VM (heartbeat "
          "folds read the counter shards off the GC safepoint)";
    return false;
  }
  if (O.Threads >= 2 && O.HeapProfile) {
    Err = "--heap-profile/--heap-snapshot/--retainers/--heap-dump require "
          "--threads=1 or the sequential VM (the profiler's visit stream "
          "is serial)";
    return false;
  }
  if (O.HeapDumpEvery && O.HeapDumpPath.empty()) {
    Err = "--heap-dump-every requires --heap-dump";
    return false;
  }
  if (O.ServeLingerMs && O.ServePort < 0) {
    Err = "--serve-linger-ms requires --serve";
    return false;
  }
  if (O.FlightBufferKb && O.FlightOutPath.empty()) {
    Err = "--flight-buffer-kb requires --flight-out";
    return false;
  }
  if (!O.HaveSource) {
    Err = "no input program";
    return false;
  }
  return true;
}

int tfgc::runTfgc(const CliOptions &O) {
  CompileOptions CO = O.Compile;
  // Tasks suspend at arbitrary call sites, so the tasking paths need
  // gc_words everywhere and call arguments kept live (DESIGN.md).
  if (O.Threads >= 1)
    CO.TaskingSafe = true;
  Compiler C(CO);
  std::string Error;
  std::unique_ptr<CompiledProgram> P = C.compile(O.Source, &Error);
  if (!P) {
    std::fprintf(stderr, "%s", Error.c_str());
    return 1;
  }

  if (O.DumpIr) {
    std::printf("%s", printIr(P->Prog).c_str());
    return 0;
  }
  if (O.DumpMeta) {
    std::printf("functions:            %zu\n", P->Prog.Functions.size());
    std::printf("call sites:           %zu\n", P->Prog.Sites.size());
    std::printf("alloc sites:          %u\n", P->Prog.NumAllocSites);
    std::printf("gc_words omitted:     %zu\n", P->Image.omittedGcWords());
    std::printf("frame routines:       %zu (no_trace sites: %zu)\n",
                P->Compiled.numFrameRoutines(),
                P->Compiled.numNoTraceSites());
    std::printf("type routines:        %zu\n", P->Compiled.numTypeRoutines());
    std::printf("compiled metadata:    %zu bytes\n", P->Compiled.sizeBytes());
    std::printf("interpreted metadata: %zu bytes (%zu descriptors)\n",
                P->Interp->sizeBytes(),
                P->Interp->descriptors().numDescriptors());
    std::printf("appel metadata:       %zu bytes\n", P->Appel->sizeBytes());
    return 0;
  }

  Stats St;
  std::unique_ptr<Collector> Col = P->makeCollector(
      O.Strategy, O.Algo, O.HeapBytes, St, &Error, O.NurseryBytes);
  if (!Col) {
    std::fprintf(stderr, "%s\n", Error.c_str());
    return 1;
  }
  Col->setVerifyAfterGc(O.Verify);
  Col->setInjectVerifyViolation(O.InjectVerifyViolation);

  HeapProfiler Prof;
  HeapGraph Graph;
  if (O.HeapProfile) {
    attachHeapProfiler(*P, O.Strategy, *Col, Prof);
    Prof.setRetainers(O.Retainers);
    Prof.setLabel(std::string(gcStrategyName(O.Strategy)) + "/" +
                  gcAlgorithmName(O.Algo));
  }
  if (!O.HeapDumpPath.empty()) {
    std::string GErr;
    if (!Graph.openFile(O.HeapDumpPath, &GErr)) {
      std::fprintf(stderr, "cannot open '%s': %s\n", O.HeapDumpPath.c_str(),
                   GErr.c_str());
      return 2;
    }
    Graph.setEvery(O.HeapDumpEvery ? O.HeapDumpEvery : 1);
    Prof.setHeapGraph(&Graph);
  }

  Monitor::Options MonOpts;
  MonOpts.SamplePeriodSteps = O.MonitorSampleSteps;
  if (O.MonitorPeriodMs)
    MonOpts.HeartbeatPeriodMs = O.MonitorPeriodMs;
  Monitor Mon(MonOpts);
  std::ofstream MonOut;
  if (O.Monitor) {
    Mon.setLabel(std::string(gcStrategyName(O.Strategy)) + "/" +
                 gcAlgorithmName(O.Algo));
    Mon.setStats(&St);
    attachMonitor(*P, *Col, Mon);
    if (!O.MonitorOutPath.empty()) {
      MonOut.open(O.MonitorOutPath);
      if (!MonOut) {
        std::fprintf(stderr, "cannot open '%s'\n", O.MonitorOutPath.c_str());
        return 2;
      }
      Mon.setStream(&MonOut);
    }
  }

  // Epoch aggregation + live introspection. Both are pure additions over
  // the sharded Stats: with neither --serve nor --metrics-out, no
  // aggregator is attached and no fold ever runs.
  EpochAggregator Agg;
  IntrospectServer Srv;
  bool WantEpochs = O.ServePort >= 0 || !O.MetricsOutPath.empty();
  if (WantEpochs) {
    Agg.attachStats(&St);
    Agg.setLabel(std::string(gcStrategyName(O.Strategy)) + "/" +
                 gcAlgorithmName(O.Algo));
    Col->setEpochAggregator(&Agg);
    if (O.Monitor)
      Mon.setAggregator(&Agg);
    if (O.HeapProfile)
      Agg.setSnapshotProvider([&Prof] {
        std::ostringstream SS;
        Prof.writeSnapshotJson(SS);
        return SS.str();
      });
    if (O.ServePort >= 0) {
      std::string SrvErr;
      uint16_t Port = Srv.start((uint16_t)O.ServePort, SrvErr);
      if (!Port) {
        std::fprintf(stderr, "cannot start introspection server: %s\n",
                     SrvErr.c_str());
        return 2;
      }
      Agg.attachServer(&Srv);
      std::fprintf(stderr, "tfgc: serving introspection on 127.0.0.1:%u\n",
                   (unsigned)Port);
    }
    // Epoch 1: the world trivially stopped before any mutator ran, so
    // /metrics answers coherently from the first scrape on.
    Agg.fold(SafepointKind::Startup);
  }

  // Flight recorder: per-thread rings for the N tasks (one for the
  // sequential VM), the GC ring, and one ring per parallel trace worker.
  std::unique_ptr<FlightRecorder> Flight;
  if (!O.FlightOutPath.empty()) {
    unsigned NTasks = O.Threads ? O.Threads : 1;
    Flight = std::make_unique<FlightRecorder>(
        NTasks, std::max(1u, O.Threads),
        O.FlightBufferKb ? O.FlightBufferKb : 64);
    std::string FErr;
    if (!Flight->openFile(O.FlightOutPath, FErr)) {
      std::fprintf(stderr, "cannot open '%s': %s\n", O.FlightOutPath.c_str(),
                   FErr.c_str());
      return 2;
    }
    Col->setFlightRecorder(Flight.get());
    if (O.ServePort >= 0)
      Flight->setChunkSink(
          [&Srv](const std::string &Chunk) { Srv.publishFlightRecord(Chunk); });
  }
  // /heapdump mirrors /flightrecord: each captured graph chunk is also
  // pushed to the server as a standalone decodable body.
  if (!O.HeapDumpPath.empty() && O.ServePort >= 0)
    Graph.setChunkSink(
        [&Srv](const std::string &Chunk) { Srv.publishHeapDump(Chunk); });

  Telemetry &Tel = Col->telemetry();
  Tel.setLabel(gcStrategyName(O.Strategy));
  if (O.GcLog)
    Tel.setLogStream(stderr);
  std::ofstream TraceOut;
  if (!O.TraceOutPath.empty()) {
    TraceOut.open(O.TraceOutPath);
    if (!TraceOut) {
      std::fprintf(stderr, "cannot open '%s'\n", O.TraceOutPath.c_str());
      return 2;
    }
    if (O.Threads)
      Tel.declareThreads(O.Threads);
    Tel.beginTrace(TraceOut);
  }

  VmOptions VO = defaultVmOptions(O.Strategy, O.Stress);
  VO.Dispatch = O.Dispatch;
  VO.FuseSuperinstructions = O.Fuse;
  VO.FloatSelfTag = O.FloatSelfTag;
  VO.TailCalls = O.TailCalls;
  RunResult R;
  if (O.Threads == 0) {
    if (Flight) {
      // The sequential VM is "task 0" on its own timeline: ring 0 takes
      // its start/exit bracket and GC requests; the GC ring (fed by the
      // telemetry mirror) carries the collections between them.
      VO.Flight = &Flight->taskRing(0);
      VO.Flight->record(FlightEventType::ThreadStart);
    }
    Vm M(P->Prog, P->Image, *P->Types, *Col, VO);
    R = M.run();
    if (Flight)
      Flight->taskRing(0).record(FlightEventType::ThreadExit);
  } else {
    // --threads=N: run main as N tasks over the shared heap. N==1 keeps
    // the cooperative scheduler (the logical-counter reference); N>=2
    // puts each task on its own OS thread and sizes the parallel tracer
    // to match.
    FuncId Main = P->Prog.MainId;
    if (Main == InvalidFunc || P->Prog.fn(Main).NumParams != 0) {
      std::fprintf(stderr, "--threads requires a zero-argument main\n");
      return 1;
    }
    TaskingOptions TO;
    TO.ZeroFrames = VO.ZeroFrames;
    TO.Dispatch = O.Dispatch;
    TO.FuseSuperinstructions = O.Fuse;
    TO.FloatSelfTag = O.FloatSelfTag;
    TO.TailCalls = O.TailCalls;
    if (O.Threads >= 2)
      TO.Flight = Flight.get();
    auto RunTasks = [&](auto &Rt) {
      for (unsigned I = 0; I < O.Threads; ++I)
        Rt.spawnInt(Main, {});
      R.Ok = Rt.runAll();
      for (const TaskResult &TR : Rt.results()) {
        R.Output += TR.Output;
        if (!TR.Ok && R.Error.empty())
          R.Error = TR.Error;
      }
      if (R.Ok)
        R.Value = Rt.results().front().Value;
    };
    if (O.Threads == 1) {
      TaskingRuntime Rt(P->Prog, P->Image, *P->Types, *Col, TO);
      RunTasks(Rt);
    } else {
      Col->setGcThreads(O.Threads);
      ThreadedRuntime Rt(P->Prog, P->Image, *P->Types, *Col, TO);
      RunTasks(Rt);
    }
  }

  // Flush every requested diagnostic artifact *before* deciding the exit
  // code: a verify failure or uncaught runtime error must still leave the
  // trace, stats, and snapshot on disk for post-mortem analysis.
  if (!O.TraceOutPath.empty())
    Tel.endTrace();
  if (Flight)
    Flight->finish(); // Final drain + close; exit 3 below still gets it.
  if (!O.HeapDumpPath.empty())
    Graph.finish(); // Chunks are flushed per capture; this closes the file.
  if (O.Monitor)
    Mon.finish();
  // Final epoch: folded after the VM flushed its counters and the monitor
  // finished, so it is bit-identical to the --stats-json counters written
  // below (both read the same quiescent folded state).
  if (WantEpochs)
    Agg.fold(SafepointKind::RunEnd);
  if (!O.MetricsOutPath.empty()) {
    std::ofstream MetricsOut(O.MetricsOutPath);
    if (!MetricsOut) {
      std::fprintf(stderr, "cannot open '%s'\n", O.MetricsOutPath.c_str());
      return 2;
    }
    MetricsOut << Agg.renderPrometheus();
  }
  if (!O.StatsJsonPath.empty()) {
    std::ofstream JsonOut(O.StatsJsonPath);
    if (!JsonOut) {
      std::fprintf(stderr, "cannot open '%s'\n", O.StatsJsonPath.c_str());
      return 2;
    }
    Tel.writeStatsJson(JsonOut, St);
  }
  if (!O.HeapSnapshotPath.empty()) {
    std::ofstream SnapOut(O.HeapSnapshotPath);
    if (!SnapOut) {
      std::fprintf(stderr, "cannot open '%s'\n", O.HeapSnapshotPath.c_str());
      return 2;
    }
    Prof.writeSnapshotJson(SnapOut);
  }
  // With all artifacts flushed and the final epoch published, optionally
  // keep the server up so external scrapers can pull end-of-run totals.
  if (O.ServePort >= 0 && O.ServeLingerMs)
    std::this_thread::sleep_for(std::chrono::milliseconds(O.ServeLingerMs));

  if (!R.Output.empty())
    std::fputs(R.Output.c_str(), stdout);
  if (!R.Ok) {
    std::fprintf(stderr, "runtime error: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("%s\n", R.Value.c_str());
  if (O.ShowStats)
    std::fputs(St.render().c_str(), stderr);
  if (O.Monitor && O.ShowStats)
    std::fputs(Mon.renderSummary().c_str(), stderr);
  if (O.Verify && St.get(StatId::GcVerifyViolations) > 0) {
    std::fprintf(stderr, "verify: %llu violation(s) detected\n",
                 (unsigned long long)St.get(StatId::GcVerifyViolations));
    return 3;
  }
  return 0;
}
