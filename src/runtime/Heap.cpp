//===- runtime/Heap.cpp ---------------------------------------------------===//

#include "runtime/Heap.h"

using namespace tfgc;

Heap::Heap(size_t CapacityBytes) {
  CapacityWords = CapacityBytes / sizeof(Word);
  if (CapacityWords < 64)
    CapacityWords = 64;
  Space = std::make_unique<Word[]>(CapacityWords);
  Base = Alloc = Space.get();
  End = Base + CapacityWords;
}

void Heap::beginCollection(size_t NewCapacityWords) {
  assert(!Collecting && "collection already in progress");
  ToCapacityWords = NewCapacityWords ? NewCapacityWords : CapacityWords;
  ToSpace = std::make_unique<Word[]>(ToCapacityWords);
  ToBase = ToAlloc = ToSpace.get();
  ToEnd = ToBase + ToCapacityWords;
  ForwardBits.assign((CapacityWords + 63) / 64, 0);
  if (ParallelArm)
    PublishedBits.assign(ForwardBits.size(), 0);
  Collecting = true;
}

void Heap::endCollection() {
  assert(Collecting);
  LastSurvivorWords = (uint64_t)(ToAlloc - ToBase);
  Space = std::move(ToSpace);
  Base = Space.get();
  Alloc = ToAlloc;
  CapacityWords = ToCapacityWords;
  End = Base + CapacityWords;
  ForwardBits.clear();
  ForwardBits.shrink_to_fit();
  PublishedBits.clear();
  PublishedBits.shrink_to_fit();
  Collecting = false;
}
