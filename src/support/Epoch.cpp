//===- support/Epoch.cpp --------------------------------------------------===//

#include "support/Epoch.h"

#include "support/BuildInfo.h"
#include "support/Introspect.h"

#include <sstream>

using namespace tfgc;

const char *tfgc::safepointKindName(SafepointKind K) {
  switch (K) {
  case SafepointKind::Startup:
    return "startup";
  case SafepointKind::Collection:
    return "collection";
  case SafepointKind::Heartbeat:
    return "heartbeat";
  case SafepointKind::RunEnd:
    return "run_end";
  }
  return "unknown";
}

uint64_t EpochAggregator::nowNs() const {
  return (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

namespace {

/// Prometheus metric name: "gc.pause_ns_p50" -> "tfgc_gc_pause_ns_p50".
std::string promName(const std::string &CounterName) {
  std::string Out = "tfgc_";
  Out.reserve(Out.size() + CounterName.size());
  for (char C : CounterName) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_';
    Out.push_back(Ok ? C : '_');
  }
  return Out;
}

bool contains(const std::string &S, const char *Sub) {
  return S.find(Sub) != std::string::npos;
}

/// Counter vs gauge for the TYPE line. Percentiles, high-water marks,
/// occupancy and live-set sizes move both ways between epochs; everything
/// else we export is monotone over a run.
bool isGauge(const std::string &Name) {
  if (Name == "heap.used_bytes" || Name == "heap.capacity_bytes")
    return true;
  if (Name.size() >= 4 && Name.compare(Name.size() - 4, 4, "_max") == 0)
    return true;
  return contains(Name, "_p50") || contains(Name, "_p90") ||
         contains(Name, "_p99") || contains(Name, "ppm") ||
         contains(Name, "live");
}

void promEscape(std::ostream &OS, const std::string &V) {
  for (char C : V) {
    if (C == '\\' || C == '"')
      OS << '\\';
    OS << C;
  }
}

} // namespace

const EpochSnapshot &EpochAggregator::latest() const {
  static const EpochSnapshot Empty;
  return History.empty() ? Empty : *History.back();
}

std::map<std::string, uint64_t> EpochSnapshot::counters() const {
  std::map<std::string, uint64_t> Out = Dynamic;
  auto Hint = Out.begin();
  for (size_t I = 0; I < NumStatIds; ++I) {
    StatId Id = (StatId)I;
    if (!Folded.has(Id))
      continue;
    std::string_view N = Stats::name(Id);
    while (Hint != Out.end() && Hint->first < N)
      ++Hint;
    Hint = Out.emplace_hint(Hint, std::string(N), Folded.get(Id));
    ++Hint;
  }
  return Out;
}

const EpochSnapshot &EpochAggregator::fold(SafepointKind Kind) {
  EpochSnapshot E;
  E.Seq = ++NextSeq;
  E.WhenNs = nowNs();
  E.Reason = Kind;
  if (St) {
    // The scope both asserts "we are at a safepoint" and legalizes any
    // dynamic-name publishes a sink performs while we hold it. The fold
    // itself is allocation-free modulo the (normally empty) dynamic map.
    Stats::SafepointScope Scope(*St);
    E.Folded = St->folded();
    E.Dynamic = St->dynamicCounters();
  }
  auto Snap = std::make_shared<const EpochSnapshot>(std::move(E));
  History.push_back(Snap);
  if (History.size() > HistoryCap)
    History.pop_front();
  if (Server) {
    // Defer the text exposition to the scraper's thread: the closure owns
    // an immutable snapshot, so it stays valid however long the server
    // keeps it and never races a later fold.
    Server->publishMetricsLazy(
        [Snap, L = Label] { return renderPrometheusFor(*Snap, L); });
    // Heap snapshots only change at collections; skip the (much more
    // expensive) re-render on heartbeat folds.
    if (SnapshotProvider && Kind != SafepointKind::Heartbeat)
      Server->publishSnapshot(SnapshotProvider());
  }
  return *History.back();
}

void EpochAggregator::noteHeartbeat(const std::string &JsonLine) {
  if (Server)
    Server->publishHeartbeat(JsonLine);
}

std::string EpochAggregator::renderPrometheus() const {
  return renderPrometheusFor(latest(), Label);
}

std::string EpochAggregator::renderPrometheusFor(const EpochSnapshot &E,
                                                 const std::string &Label) {
  std::ostringstream OS;
  OS << "# tfgc epoch " << E.Seq << " (" << safepointKindName(E.Reason)
     << " safepoint)\n";
  if (!Label.empty()) {
    OS << "# TYPE tfgc_info gauge\n";
    OS << "tfgc_info{label=\"";
    promEscape(OS, Label);
    OS << "\"} 1\n";
  }
  // Build provenance: constant for the process lifetime, emitted in every
  // epoch so any saved exposition names the binary that produced it.
  const BuildInfo &BI = buildInfo();
  OS << "# TYPE tfgc_build_info gauge\n";
  OS << "tfgc_build_info{git_sha=\"";
  promEscape(OS, BI.GitSha);
  OS << "\",dispatch=\"";
  promEscape(OS, BI.Dispatch);
  OS << "\",sanitizer=\"";
  promEscape(OS, BI.Sanitizer);
  OS << "\",build_type=\"";
  promEscape(OS, BI.BuildType);
  OS << "\"} 1\n";
  OS << "# TYPE tfgc_epoch_seq counter\n";
  OS << "tfgc_epoch_seq " << E.Seq << '\n';
  OS << "# TYPE tfgc_epoch_time_ns counter\n";
  OS << "tfgc_epoch_time_ns " << E.WhenNs << '\n';
  for (const auto &[Name, Value] : E.counters()) {
    std::string M = promName(Name);
    OS << "# HELP " << M << " tfgc counter " << Name << '\n';
    OS << "# TYPE " << M << (isGauge(Name) ? " gauge\n" : " counter\n");
    OS << M << ' ' << Value << '\n';
  }
  return OS.str();
}
