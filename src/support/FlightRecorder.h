//===- support/FlightRecorder.h - Always-on binary flight recorder -*- C++ -*-===//
///
/// \file
/// A black-box recorder for the threaded runtime (`--flight-out=FILE`):
/// fixed-size binary events written into per-thread lock-free SPSC ring
/// buffers, so the layers that today have no timeline — the safepoint
/// handshake, TLAB refills, the VM's fuel-counter polls, the parallel
/// trace workers — leave a causal, per-thread event record that survives
/// even abnormal exits (the drain path rides the PR 4 artifact flush).
///
/// Hot-path discipline:
///  * disabled: one null-pointer check per instrumentation site;
///  * enabled: one steady_clock read plus one 32-byte store per event —
///    no allocation, no locks, no shared-memory traffic.
///
/// Ring protocol (DESIGN.md "Flight recording"):
///  * each ring has exactly one producer — a mutator thread (its task
///    ring), a GC trace worker (its worker ring), or "whoever holds the
///    coordinator lock" (the GC ring: arm events and the Telemetry
///    begin/phase/end mirrors are all serialized by the safepoint mutex,
///    or by the single thread in sequential mode);
///  * WriteIdx is a monotone record count (release store by the producer);
///    the slot written is WriteIdx & Mask, so a full ring overwrites the
///    oldest record — newest-N semantics, never a torn record, because
///  * drains happen only at world-stopped points (end of a collection
///    pause, run end), when every producer is parked, joined, or is the
///    draining thread itself. The consumer cursor (ReadIdx) is plain
///    memory touched only by drains.
///
/// File format: a 24-byte header (magic "TFGCFLR1", u32 version, u32
/// record size, u64 reserved) followed by 32-byte little-endian records,
/// time-sorted within each drained chunk and monotone across chunks (all
/// producers quiesce before a drain, so later chunks hold later events).
/// `tools/flight_report.py` decodes it, checks the handshake invariants,
/// renders the time-to-safepoint attribution table, and exports a
/// multi-track Chrome trace.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_SUPPORT_FLIGHTRECORDER_H
#define TFGC_SUPPORT_FLIGHTRECORDER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace tfgc {

enum class FlightEventType : uint8_t {
  ThreadStart = 1,      ///< Mutator thread entered its run loop.
  ThreadExit = 2,       ///< Mutator finished its task (before leaving the
                        ///< rendezvous set).
  GcRequest = 3,        ///< VM exhausted the heap: ArgA = payload words.
  SafepointArm = 4,     ///< Coordinator armed the stop flag. Arg32 =
                        ///< handshake epoch, ArgA = word demand.
  ThreadPark = 5,       ///< Thread parked. Arg32 = epoch, ArgA = request-
                        ///< to-park delay ns, ArgB = 1 if last parker
                        ///< (owns the pause).
  ThreadResume = 6,     ///< Thread woke from the handshake. Arg32 = epoch.
  PendingHandoff = 7,   ///< An exiting thread completed the rendezvous and
                        ///< ran the pending collection. Arg32 = epoch,
                        ///< ArgA = request-to-handoff delay ns.
  TlabRefill = 8,       ///< TLAB refilled off the shared cursor. ArgA =
                        ///< bytes carved, ArgB = refill ordinal.
  GcBegin = 9,          ///< Collection began. Arg32 = GcEventKind, ArgA =
                        ///< collection seq.
  GcPhase = 10,         ///< Telemetry phase switch. Arg32 = new GcPhase,
                        ///< ArgA = previous phase.
  GcEnd = 11,           ///< Collection finished. Arg32 = kind, ArgA =
                        ///< pause ns, ArgB = collection seq.
  TraceWorkerBegin = 12,///< Parallel trace worker started. Arg32 = worker.
  TraceWorkerEnd = 13,  ///< Worker done. Arg32 = worker, ArgA = steals.
  VmEpoch = 14,         ///< Fuel-counter safepoint poll. ArgA = steps.
  Dropped = 15,         ///< Synthesized at drain: ArgA = records the ring
                        ///< overwrote since the previous drain.
};

/// One fixed-size record. Written to disk verbatim (little-endian hosts);
/// `TimeNs` counts from the owning FlightRecorder's construction, so
/// records from different rings sort into one global timeline.
struct FlightEvent {
  uint64_t TimeNs;
  uint8_t Type;
  uint8_t Tid;
  uint16_t Reserved;
  uint32_t Arg32;
  uint64_t ArgA;
  uint64_t ArgB;
};
static_assert(sizeof(FlightEvent) == 32, "records are 32 bytes on disk");

/// One single-producer ring. The producer calls record(); the draining
/// thread (world stopped) calls drain().
class FlightRing {
public:
  /// \p CapacityRecords is rounded up to a power of two (min 8).
  FlightRing(size_t CapacityRecords, uint8_t Tid,
             std::chrono::steady_clock::time_point Origin)
      : Tid(Tid), Origin(Origin) {
    size_t Cap = 8;
    while (Cap < CapacityRecords)
      Cap <<= 1;
    Buf.resize(Cap);
    Mask = Cap - 1;
  }

  size_t capacity() const { return Buf.size(); }
  uint8_t tid() const { return Tid; }

  /// Producer-only. One clock read, one 32-byte store, one release store.
  void record(FlightEventType T, uint32_t Arg32 = 0, uint64_t A = 0,
              uint64_t B = 0) {
    uint64_t W = WriteIdx.load(std::memory_order_relaxed);
    FlightEvent &E = Buf[(size_t)(W & Mask)];
    E.TimeNs = nowNs();
    E.Type = (uint8_t)T;
    E.Tid = Tid;
    E.Reserved = 0;
    E.Arg32 = Arg32;
    E.ArgA = A;
    E.ArgB = B;
    WriteIdx.store(W + 1, std::memory_order_release);
  }

  /// Consumer-only, producers quiescent (world stopped). Appends the
  /// records written since the last drain to \p Out, oldest first; when
  /// the ring wrapped, a Dropped marker (stamped with the oldest surviving
  /// record's time) precedes them. Returns the number of records dropped.
  uint64_t drain(std::vector<FlightEvent> &Out) {
    uint64_t W = WriteIdx.load(std::memory_order_acquire);
    uint64_t Start = ReadIdx;
    uint64_t Lost = 0;
    if (W - Start > Buf.size()) {
      Lost = W - Start - Buf.size();
      Start = W - Buf.size();
    }
    if (Lost) {
      FlightEvent M{};
      M.TimeNs = Buf[(size_t)(Start & Mask)].TimeNs;
      M.Type = (uint8_t)FlightEventType::Dropped;
      M.Tid = Tid;
      M.ArgA = Lost;
      Out.push_back(M);
    }
    for (uint64_t I = Start; I < W; ++I)
      Out.push_back(Buf[(size_t)(I & Mask)]);
    ReadIdx = W;
    DroppedTotal += Lost;
    return Lost;
  }

  uint64_t recordsWritten() const {
    return WriteIdx.load(std::memory_order_relaxed);
  }
  /// Records written but not yet drained (may exceed capacity when the
  /// ring wrapped). World-stopped callers only, like drain().
  uint64_t pending() const {
    return WriteIdx.load(std::memory_order_relaxed) - ReadIdx;
  }
  uint64_t droppedTotal() const { return DroppedTotal; }

private:
  uint64_t nowNs() const {
    return (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - Origin)
        .count();
  }

  std::vector<FlightEvent> Buf;
  size_t Mask = 0;
  /// Monotone count of records ever written; slot = index & Mask.
  std::atomic<uint64_t> WriteIdx{0};
  /// Consumer cursor; touched only while the world is stopped.
  uint64_t ReadIdx = 0;
  uint64_t DroppedTotal = 0;
  uint8_t Tid;
  std::chrono::steady_clock::time_point Origin;
};

/// Owns every ring plus the output file. Constructed by the driver when
/// --flight-out is given; all rings share one clock origin.
class FlightRecorder {
public:
  /// The GC ring's tid — handshake arms and Telemetry collection mirrors.
  static constexpr uint8_t GcTid = 254;
  /// Parallel trace worker k records as tid WorkerTidBase + k.
  static constexpr uint8_t WorkerTidBase = 128;
  static constexpr char Magic[9] = "TFGCFLR1";
  static constexpr uint32_t Version = 1;

  FlightRecorder(unsigned NumTasks, unsigned NumWorkers, size_t BufferKb);
  ~FlightRecorder() { finish(); }
  FlightRecorder(const FlightRecorder &) = delete;
  FlightRecorder &operator=(const FlightRecorder &) = delete;

  FlightRing &taskRing(unsigned I) { return *TaskRings[I]; }
  FlightRing &gcRing() { return *GcRing; }
  FlightRing &workerRing(unsigned W) { return *WorkerRings[W]; }
  unsigned numTasks() const { return (unsigned)TaskRings.size(); }
  unsigned numWorkers() const { return (unsigned)WorkerRings.size(); }

  /// Opens the output file and writes the header. Returns false with
  /// \p Err set on I/O failure.
  bool openFile(const std::string &Path, std::string &Err);

  /// World-stopped drain: collects every ring's new records, time-sorts
  /// them into one chunk, appends it to the (stdio-buffered) file, and
  /// hands the latest standalone chunk (header + records) to the chunk
  /// sink. Durability comes from finish(), which every exit path runs;
  /// a hard crash can truncate the file but only on a record boundary.
  void drain();

  /// The per-collection drain hook: drains only when some ring has used
  /// more than half its capacity, so a quiet recorder costs a collection
  /// a handful of counter reads, not a sort and a write. Draining on
  /// *half* full (not full) keeps newest-N loss a last resort: a ring
  /// would have to absorb another half capacity before the next
  /// world-stop to overwrite anything.
  void maybeDrain();

  /// Final drain + flush + close. Idempotent; also run by the destructor,
  /// so the recording is valid however the run ends.
  void finish();

  /// Receives each drained chunk as a standalone decodable byte string
  /// (the /flightrecord endpoint body). Called from inside the pause.
  void setChunkSink(std::function<void(const std::string &)> S) {
    ChunkSink = std::move(S);
  }

  uint64_t recordsFiled() const { return Filed; }
  uint64_t droppedTotal() const;

  /// The 24-byte file header.
  static std::string fileHeader();

private:
  std::chrono::steady_clock::time_point Origin;
  /// unique_ptr: rings hold atomics (not movable) and their addresses are
  /// cached by producers.
  std::vector<std::unique_ptr<FlightRing>> TaskRings;
  std::unique_ptr<FlightRing> GcRing;
  std::vector<std::unique_ptr<FlightRing>> WorkerRings;
  std::FILE *File = nullptr;
  std::vector<FlightEvent> Scratch;
  std::function<void(const std::string &)> ChunkSink;
  uint64_t Filed = 0;
};

} // namespace tfgc

#endif // TFGC_SUPPORT_FLIGHTRECORDER_H
