//===- support/Arena.h - Bump-pointer allocation ----------------*- C++ -*-===//
///
/// \file
/// A block-based bump allocator. Used for hash-consed types and for the
/// type-GC-routine closures the polymorphic collector constructs during a
/// collection (paper section 3): those closures live exactly as long as one
/// collection, so the collector resets its arena afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_SUPPORT_ARENA_H
#define TFGC_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace tfgc {

/// Bump-pointer arena. Objects allocated here are never individually
/// destroyed, so only trivially destructible types may be created.
class Arena {
public:
  explicit Arena(size_t BlockBytes = 64 * 1024) : BlockBytes(BlockBytes) {}

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates \p Bytes with the given alignment.
  void *allocate(size_t Bytes, size_t Align = alignof(std::max_align_t));

  /// Constructs a T in the arena. T must be trivially destructible because
  /// destructors are never run.
  template <typename T, typename... Args> T *make(Args &&...As) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are never destroyed");
    void *Mem = allocate(sizeof(T), alignof(T));
    return new (Mem) T(std::forward<Args>(As)...);
  }

  /// Releases every block and returns the arena to its initial state.
  void reset();

  /// Total bytes handed out since construction or the last reset().
  size_t bytesAllocated() const { return BytesAllocated; }

private:
  size_t BlockBytes;
  std::vector<std::unique_ptr<char[]>> Blocks;
  char *Cur = nullptr;
  char *End = nullptr;
  size_t BytesAllocated = 0;

  void addBlock(size_t MinBytes);
};

} // namespace tfgc

#endif // TFGC_SUPPORT_ARENA_H
