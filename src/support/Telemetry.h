//===- support/Telemetry.h - GC phase spans, histograms, census -*- C++ -*-===//
///
/// \file
/// Per-collection observability for the collectors. The aggregate Stats
/// counters (gc.pause_ns_total/max) cannot attribute pause time to the
/// machinery the paper moves work into — the stack walk, the
/// pointer-reversal pass, frame-routine dispatch, type-GC closure
/// construction — so every collector additionally records into a Telemetry
/// instance:
///
///  * **Phase spans.** A switch-clock: entering a phase takes one
///    steady_clock read, which simultaneously closes the interval of the
///    previously active phase and opens the new one. Intervals therefore
///    partition the collection exactly (a nested span *steals* its time
///    from its parent — exclusive accounting), and the per-phase sums add
///    up to the pause time minus only the few instructions outside any
///    span. PhaseScope is the RAII wrapper; re-entering the currently
///    active phase is a no-op (one branch, no clock read), so recursive
///    code can scope itself freely.
///
///  * **Log-bucketed histograms.** Pause and per-phase durations land in
///    power-of-two buckets (value v goes to bucket bit_width(v); bucket k
///    covers [2^(k-1), 2^k - 1], bucket 0 holds zeros). percentile(P)
///    returns min(upper bound of the bucket containing the ceil(P/100 * N)
///    ranked value, observed max) — deterministic and allocation-free.
///
///  * **Heap census.** At every first visit the tracers classify the
///    object (tuple, datatype, closure, ref, raw box, tagged-scan) so each
///    collection records live objects and words per kind — the per-run
///    observable form of the paper's section 4 space tables. Census
///    increments mirror the gc.objects_visited / gc.words_visited counter
///    increments exactly, so (with post-GC verification off) the census
///    totals equal those counters.
///
///  * **Ring buffer.** One fixed-size GcEvent per collection, preallocated
///    at construction: the GC path allocates nothing and keeps the newest
///    `ringCapacity()` collections for inspection. Cumulative aggregates
///    (histograms, phase totals, census totals) cover *all* collections
///    regardless of ring size.
///
/// Export paths (all opt-in; the sinks may allocate, the ring never does):
/// a structured one-line-per-collection log (`--gc-log`), a streaming
/// Chrome trace_event JSON writer (`--trace-out`, viewable in
/// chrome://tracing or Perfetto), and a counters+histograms+census JSON
/// dump (`--stats-json`).
///
//===----------------------------------------------------------------------===//

#ifndef TFGC_SUPPORT_TELEMETRY_H
#define TFGC_SUPPORT_TELEMETRY_H

#include "support/Stats.h"

#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iosfwd>
#include <string>
#include <vector>

namespace tfgc {

class FlightRing;

/// The phases a collection is attributed to. RootScan doubles as the
/// catch-all for collector work not inside a finer span (loop control,
/// counter flushes), so the spans cover the whole pause.
enum class GcPhase : uint8_t {
  RootScan,       ///< Stack/root scanning and span slack.
  PtrReversal,    ///< Goldberg pass 1 / Appel dynamic-chain resolution.
  FrameDispatch,  ///< Frame routine / frame descriptor dispatch.
  TgClosureBuild, ///< Type-GC closure construction (TypeGcEngine::eval).
  CopySweep,      ///< Space flip + copy bookkeeping, or mark reset + sweep.
  RemsetScan,     ///< Remembered-set roots (generational minor collections).
  Verify,         ///< Post-GC read-only verification pass.
  NumPhases
};
inline constexpr size_t NumGcPhases = (size_t)GcPhase::NumPhases;
const char *gcPhaseName(GcPhase P);

/// What a collection covered. Full-heap algorithms record Full;
/// the generational algorithm splits collections into Minor (nursery
/// only, remembered set as extra roots) and Major (both generations) so
/// the pause histograms can be compared per generation.
enum class GcEventKind : uint8_t { Full, Minor, Major, NumKinds };
inline constexpr size_t NumGcEventKinds = (size_t)GcEventKind::NumKinds;
const char *gcEventKindName(GcEventKind K);

/// Census classification of a live object at its first visit.
enum class CensusKind : uint8_t {
  Tuple,      ///< Tuples / records (compiled Record routine, Tuple desc).
  Data,       ///< Datatype values (discriminant + fields).
  Closure,    ///< Function closures (code address + environment).
  Ref,        ///< Ref cells.
  Raw,        ///< Pointer-free boxes (tagged-model float boxes).
  TaggedScan, ///< Tagged-model Scan objects (headers carry no finer kind).
  NumKinds
};
inline constexpr size_t NumCensusKinds = (size_t)CensusKind::NumKinds;
const char *censusKindName(CensusKind K);

/// Thread-local census accumulator for parallel trace workers: each worker
/// counts first visits into its own instance (no shared-memory traffic on
/// the visit path), and the collecting thread merges them into the
/// telemetry event with Telemetry::censusBulk after the workers join.
struct CensusCounts {
  std::array<uint64_t, NumCensusKinds> Objects{};
  std::array<uint64_t, NumCensusKinds> Words{};

  void record(CensusKind K, uint64_t W) {
    ++Objects[(size_t)K];
    Words[(size_t)K] += W;
  }
};

/// Power-of-two-bucketed histogram of uint64 samples (durations in ns).
/// Fixed storage, O(1) record, no allocation.
class LogHistogram {
public:
  /// Bucket 0 holds zeros; bucket k >= 1 holds [2^(k-1), 2^k - 1].
  static constexpr size_t NumBuckets = 65;

  static size_t bucketIndex(uint64_t V) {
    return V == 0 ? 0 : (size_t)std::bit_width(V);
  }
  static uint64_t bucketLo(size_t I) {
    return I == 0 ? 0 : (uint64_t)1 << (I - 1);
  }
  static uint64_t bucketHi(size_t I) {
    if (I == 0)
      return 0;
    return I >= 64 ? UINT64_MAX : ((uint64_t)1 << I) - 1;
  }

  void record(uint64_t V) {
    ++Counts[bucketIndex(V)];
    ++N;
    Total += V;
    if (V > MaxV)
      MaxV = V;
    if (V < MinV)
      MinV = V;
  }

  uint64_t count() const { return N; }
  uint64_t sum() const { return Total; }
  uint64_t max() const { return N ? MaxV : 0; }
  uint64_t min() const { return N ? MinV : 0; }
  uint64_t bucketCount(size_t I) const { return Counts[I]; }

  /// The value at percentile \p P in [0, 100]: the upper bound of the
  /// bucket containing the rank-ceil(P/100*count) sample (rank clamped to
  /// [1, count]), clamped to the observed maximum. 0 when empty.
  uint64_t percentile(double P) const;

  void clear() { *this = LogHistogram(); }

private:
  std::array<uint64_t, NumBuckets> Counts{};
  uint64_t N = 0;
  uint64_t Total = 0;
  uint64_t MaxV = 0;
  uint64_t MinV = UINT64_MAX;
};

/// One collection's record. Fixed size: lives in the preallocated ring.
struct GcEvent {
  uint64_t Seq = 0;     ///< Collection ordinal (0-based, monotonic).
  uint64_t StartNs = 0; ///< Start time, ns since the Telemetry epoch.
  uint64_t PauseNs = 0; ///< Full pause (includes the verify phase).
  GcEventKind Kind = GcEventKind::Full;
  /// Chrome-trace track of the collecting thread (1 + task index under
  /// --threads; 1 for sequential/cooperative runs).
  uint64_t Tid = 1;
  std::array<uint64_t, NumGcPhases> PhaseNs{};
  std::array<uint64_t, NumCensusKinds> CensusObjects{};
  std::array<uint64_t, NumCensusKinds> CensusWords{};
  uint64_t LiveWordsAfter = 0;          ///< Heap survivor hook.
  uint64_t HeapCapacityBytesAfter = 0;

  uint64_t phaseNsSum() const {
    uint64_t S = 0;
    for (uint64_t V : PhaseNs)
      S += V;
    return S;
  }
  uint64_t censusObjects() const {
    uint64_t S = 0;
    for (uint64_t V : CensusObjects)
      S += V;
    return S;
  }
  uint64_t censusWords() const {
    uint64_t S = 0;
    for (uint64_t V : CensusWords)
      S += V;
    return S;
  }
};

/// Receives every completed collection event as it is folded into the
/// aggregates (support/Monitor.h consumes these to maintain MMU curves).
/// The callback runs inside the pause, after the event is closed; it must
/// not re-enter the Telemetry.
class GcEventSink {
public:
  virtual ~GcEventSink() = default;
  virtual void onGcEvent(const GcEvent &E) = 0;
};

class Telemetry {
public:
  static constexpr size_t DefaultRingCapacity = 1024;
  explicit Telemetry(size_t RingCapacity = DefaultRingCapacity);

  /// Nanoseconds since this Telemetry was constructed — the timebase of
  /// GcEvent::StartNs, exposed so mutator-side interval timestamps (the
  /// monitor's MMU accounting) share the epoch of the pause spans.
  uint64_t nowNs() const;

  /// Registers \p S (nullptr disables) to observe every completed
  /// collection event.
  void setEventSink(GcEventSink *S) { Sink = S; }

  /// Attaches the flight recorder's GC ring (nullptr disables): every
  /// beginCollection / switchPhase / finishCollection is mirrored as a
  /// GcBegin / GcPhase / GcEnd event, putting collection internals on the
  /// same timeline as the per-thread park/refill events. Emission is
  /// race-free for free: these calls only happen on the collecting thread
  /// inside the pause (or on the single thread of a sequential run).
  void setFlightRing(FlightRing *R) { Flight = R; }

  /// Chrome-trace track for subsequent collections. The threaded runtime
  /// sets 1 + task-index before collecting so each pause lands on the
  /// collecting thread's track; sequential runs keep the default 1 (their
  /// traces stay byte-identical to the pre-flight-recorder output).
  void setTraceTid(uint64_t T) { TraceTid = T; }

  /// Declares \p N mutator threads so beginTrace emits one thread_name
  /// metadata line per track (tids 1..N) — the trace then shows a track
  /// per thread even for threads that never collect. 0 (default) keeps
  /// the single implicit track.
  void declareThreads(unsigned N) { DeclaredThreads = N; }

  // -- Collection lifecycle (driven by Collector::collect) ------------------
  void beginCollection(GcEventKind Kind = GcEventKind::Full);
  /// Closes the event: records the pause, folds the event into the
  /// histograms/totals, pushes it into the ring, and feeds the log/trace
  /// sinks. \p LiveWordsAfter comes from the heap survivor hooks.
  void finishCollection(uint64_t LiveWordsAfter,
                        uint64_t HeapCapacityBytesAfter);
  bool inCollection() const { return InCollection; }

  // -- Phase switch-clock ---------------------------------------------------
  GcPhase currentPhase() const { return Cur; }
  /// Closes the current phase's interval and opens \p P; returns the
  /// previous phase. One clock read. No-op outside a collection or while
  /// paused.
  GcPhase switchPhase(GcPhase P);
  /// While paused, phase switches and census increments are ignored (used
  /// by the post-GC verify pass, which re-runs the tracing code).
  void setPaused(bool P) { Paused = P; }
  bool paused() const { return Paused; }

  // -- Census ---------------------------------------------------------------
  void census(CensusKind K, uint64_t Words) {
    if (!InCollection || Paused)
      return;
    ++Event.CensusObjects[(size_t)K];
    Event.CensusWords[(size_t)K] += Words;
  }

  /// Merges a parallel worker's thread-local census into the current
  /// collection event (same guard as census(); called by the collecting
  /// thread after the workers join, still inside the pause).
  void censusBulk(const CensusCounts &C) {
    if (!InCollection || Paused)
      return;
    for (size_t K = 0; K < NumCensusKinds; ++K) {
      Event.CensusObjects[K] += C.Objects[K];
      Event.CensusWords[K] += C.Words[K];
    }
  }

  // -- Tasking --------------------------------------------------------------
  /// Delay between a task's GC request and the actual world stop.
  void recordWorldStopDelay(uint64_t Ns) { WorldStopDelayHist.record(Ns); }
  const LogHistogram &worldStopDelayHistogram() const {
    return WorldStopDelayHist;
  }

  // -- Inspection -----------------------------------------------------------
  uint64_t collections() const { return TotalCollections; }
  size_t ringCapacity() const { return Ring.size(); }
  size_t ringSize() const {
    return TotalCollections < Ring.size() ? (size_t)TotalCollections
                                          : Ring.size();
  }
  /// Retained events oldest-first: event(0) is the oldest still in the
  /// ring, event(ringSize()-1) the newest.
  const GcEvent &event(size_t I) const;
  const LogHistogram &pauseHistogram() const { return PauseHist; }
  /// Pause histogram restricted to collections of \p K (minor vs major
  /// pause percentiles under the generational algorithm).
  const LogHistogram &pauseHistogram(GcEventKind K) const {
    return PauseKindHists[(size_t)K];
  }
  uint64_t collections(GcEventKind K) const {
    return PauseKindHists[(size_t)K].count();
  }
  const LogHistogram &phaseHistogram(GcPhase P) const {
    return PhaseHists[(size_t)P];
  }
  uint64_t pauseNsTotal() const { return PauseHist.sum(); }
  uint64_t phaseNsTotal(GcPhase P) const { return PhaseTotals[(size_t)P]; }
  uint64_t censusObjectsTotal(CensusKind K) const {
    return CensusObjTotals[(size_t)K];
  }
  uint64_t censusWordsTotal(CensusKind K) const {
    return CensusWordTotals[(size_t)K];
  }
  uint64_t censusObjectsTotal() const;
  uint64_t censusWordsTotal() const;

  // -- Export ---------------------------------------------------------------
  /// Shown in log lines and trace events (e.g. the strategy name).
  void setLabel(std::string L) { Label = std::move(L); }
  /// One structured `[gc] key=value ...` line per collection to \p F
  /// (nullptr disables).
  void setLogStream(std::FILE *F) { LogStream = F; }
  /// Starts streaming Chrome trace_event JSON to \p OS: every subsequent
  /// collection appends one duration event for the collection and one per
  /// nonzero phase (phases are laid out sequentially inside the collection
  /// in enum order; fragment interleaving is aggregated away). endTrace()
  /// closes the JSON document.
  void beginTrace(std::ostream &OS);
  void endTrace();
  /// Full JSON dump: Stats counters, pause/phase/world-stop histograms,
  /// census totals, and the newest ring events.
  void writeStatsJson(std::ostream &OS, const Stats &St) const;

private:
  void emitLogLine(const GcEvent &E) const;
  void emitTraceEvents(const GcEvent &E);

  std::vector<GcEvent> Ring;
  GcEvent Event;
  uint64_t TotalCollections = 0;
  GcPhase Cur = GcPhase::NumPhases; ///< NumPhases = no active phase.
  uint64_t LastMarkNs = 0;
  bool InCollection = false;
  bool Paused = false;
  std::chrono::steady_clock::time_point Epoch;

  LogHistogram PauseHist;
  std::array<LogHistogram, NumGcEventKinds> PauseKindHists;
  std::array<LogHistogram, NumGcPhases> PhaseHists;
  LogHistogram WorldStopDelayHist;
  std::array<uint64_t, NumGcPhases> PhaseTotals{};
  std::array<uint64_t, NumCensusKinds> CensusObjTotals{};
  std::array<uint64_t, NumCensusKinds> CensusWordTotals{};

  std::string Label;
  std::FILE *LogStream = nullptr;
  std::ostream *TraceStream = nullptr;
  bool TraceFirstEvent = true;
  GcEventSink *Sink = nullptr;
  FlightRing *Flight = nullptr;
  uint64_t TraceTid = 1;
  unsigned DeclaredThreads = 0;
};

/// RAII phase span. Construction switches the telemetry (if any) into
/// phase \p P; destruction restores the previous phase. Entering the
/// already-active phase is free (no clock read), so recursive spans cost
/// one branch.
class PhaseScope {
public:
  PhaseScope(Telemetry *T, GcPhase P) {
    if (T && !T->paused() && T->inCollection() && T->currentPhase() != P) {
      Tel = T;
      Prev = T->switchPhase(P);
    }
  }
  ~PhaseScope() {
    if (Tel)
      Tel->switchPhase(Prev);
  }
  PhaseScope(const PhaseScope &) = delete;
  PhaseScope &operator=(const PhaseScope &) = delete;

private:
  Telemetry *Tel = nullptr;
  GcPhase Prev = GcPhase::NumPhases;
};

} // namespace tfgc

#endif // TFGC_SUPPORT_TELEMETRY_H
