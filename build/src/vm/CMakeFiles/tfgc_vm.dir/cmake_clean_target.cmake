file(REMOVE_RECURSE
  "libtfgc_vm.a"
)
