//===- bench/bench_mutator.cpp - E1: mutator overhead of tags ------------===//
///
/// Paper claim (section 1, "More efficient execution"): manipulating type
/// tags costs the mutator — integers must be untagged before arithmetic
/// and retagged after, and floats are boxed. The tag-free strategies pay
/// none of that. This bench runs allocation-free integer arithmetic and a
/// float kernel under the tagged and tag-free value models and reports
/// both wall time and the counted tag operations / float boxes.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace tfgc;
using namespace tfgc::bench;
namespace wl = tfgc::workloads;

namespace {

std::unique_ptr<CompiledProgram> &arithProgram() {
  static auto P = compileOrDie(wl::arithKernel(200000));
  return P;
}
std::unique_ptr<CompiledProgram> &floatProgram() {
  static auto P = compileOrDie(wl::floatKernel(64, 200));
  return P;
}
std::unique_ptr<CompiledProgram> &churnProgram() {
  static auto P = compileOrDie(wl::listChurn(200, 64));
  return P;
}

void BM_ArithTagged(benchmark::State &State) {
  timedRun(State, *arithProgram(), GcStrategy::Tagged, GcAlgorithm::Copying,
           1 << 22);
}
void BM_ArithTagFree(benchmark::State &State) {
  timedRun(State, *arithProgram(), GcStrategy::CompiledTagFree,
           GcAlgorithm::Copying, 1 << 22);
}
void BM_FloatTagged(benchmark::State &State) {
  timedRun(State, *floatProgram(), GcStrategy::Tagged, GcAlgorithm::Copying,
           1 << 22);
}
void BM_FloatTagFree(benchmark::State &State) {
  timedRun(State, *floatProgram(), GcStrategy::CompiledTagFree,
           GcAlgorithm::Copying, 1 << 22);
}
// Mark-sweep configuration: an allocation-heavy workload on a small heap,
// so mutator throughput is dominated by allocate/mark/sweep — the numbers
// that move when the heap's free lists, block index, and mark set change.
void BM_ChurnTagFreeMarkSweep(benchmark::State &State) {
  timedRun(State, *churnProgram(), GcStrategy::CompiledTagFree,
           GcAlgorithm::MarkSweep, 1 << 14);
}
void BM_ChurnTaggedMarkSweep(benchmark::State &State) {
  timedRun(State, *churnProgram(), GcStrategy::Tagged, GcAlgorithm::MarkSweep,
           1 << 14);
}

BENCHMARK(BM_ArithTagged);
BENCHMARK(BM_ArithTagFree);
BENCHMARK(BM_FloatTagged);
BENCHMARK(BM_FloatTagFree);
BENCHMARK(BM_ChurnTagFreeMarkSweep);
BENCHMARK(BM_ChurnTaggedMarkSweep);

void printTable() {
  tableHeader("E1: mutator overhead of tagging",
              "arith kernel: 200k iterations of add/mul/mod; float kernel: "
              "float list build+sum",
              {"workload", "model", "vm steps", "tag ops", "float boxes",
               "heap allocs"});
  struct Row {
    const char *Name;
    std::string Src;
  } Rows[] = {
      {"arith", wl::arithKernel(200000)},
      {"float", wl::floatKernel(64, 200)},
  };
  for (const Row &R : Rows) {
    jsonWorkload(R.Name);
    for (GcStrategy S : {GcStrategy::Tagged, GcStrategy::CompiledTagFree}) {
      Stats St = runOnce(R.Src, S, GcAlgorithm::Copying, 1 << 22);
      tableCell(R.Name);
      tableCell(S == GcStrategy::Tagged ? "tagged" : "tag-free");
      tableCell(St.get(StatId::VmSteps));
      tableCell(St.get(StatId::VmTagOps));
      tableCell(St.get(StatId::VmFloatBoxes));
      tableCell(St.get(StatId::HeapObjectsAllocated));
      tableEnd();
    }
  }
  // The mark-sweep configuration: collection throughput on a small heap.
  jsonWorkload("listChurn");
  for (GcStrategy S : {GcStrategy::Tagged, GcStrategy::CompiledTagFree}) {
    Stats St = runOnce(wl::listChurn(200, 64), S, GcAlgorithm::MarkSweep,
                       1 << 14);
    tableCell("listChurn/ms");
    tableCell(S == GcStrategy::Tagged ? "tagged" : "tag-free");
    tableCell(St.get(StatId::VmSteps));
    tableCell(St.get(StatId::VmTagOps));
    tableCell(St.get(StatId::VmFloatBoxes));
    tableCell(St.get(StatId::HeapObjectsAllocated));
    tableEnd();
  }
  std::printf("\nExpected shape: identical step counts; the tagged model "
              "additionally executes\ntag strip/reinstate ops and boxes "
              "every float, visible in the timings below.\n\n");
}

} // namespace

int main(int argc, char **argv) {
  JsonSink Sink("mutator", argc, argv);
  printTable();
  benchmark::Initialize(&argc, argv);
  Sink.runBenchmarksAndWrite();
  return 0;
}
