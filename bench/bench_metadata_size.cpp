//===- bench/bench_metadata_size.cpp - E4: metadata size -----------------===//
///
/// The space half of the section-2.4 trade-off: compiled frame/type GC
/// routines are generated code and grow with the program; interpreted
/// descriptors are shared data and stay small; the tagged baseline needs
/// no tables at all but pays one header word per *object* at run time
/// (E2). Also reports gc_word accounting from the code image.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace tfgc;
using namespace tfgc::bench;
namespace wl = tfgc::workloads;

namespace {

void report(const char *Name, const std::string &Src) {
  auto P = compileOrDie(Src);
  tableCell(Name);
  tableCell(P->Prog.Functions.size());
  tableCell(P->Prog.Sites.size());
  tableCell(human(P->Compiled.sizeBytes()));
  tableCell(human(P->Interp->sizeBytes()));
  tableCell(human(P->Appel->sizeBytes()));
  tableCell(P->Compiled.numFrameRoutines());
  tableCell(P->Compiled.numTypeRoutines());
  tableEnd();
}

} // namespace

int main(int argc, char **argv) {
  JsonSink Sink("metadata_size", argc, argv);
  tableHeader("E4: GC metadata size by method",
              "modeled bytes: compiled = straight-line code, interpreted/"
              "Appel = shared descriptors; tagged = 0 (costs live in E2)",
              {"workload", "functions", "sites", "compiled", "interpreted",
               "appel", "frame routines", "type routines"});
  report("appendPaper", wl::appendPaper(10));
  report("listChurn", wl::listChurn(10, 2));
  report("binaryTrees", wl::binaryTrees(4, 2));
  report("variantRecords", wl::variantRecords(10));
  report("higherOrder", wl::higherOrder(10));
  report("polyPaper", wl::polyPaper());
  report("nqueens", wl::nqueens(4));
  report("symbolicDiff", wl::symbolicDiff(2));

  // gc_word accounting: the section 5.1 analysis omits words at sites
  // that cannot trigger collection.
  tableHeader("E4b: gc_word accounting (code image)",
              "gc_words live in the instruction stream at call+8 "
              "(Figure 1); omitted where GC is impossible",
              {"workload", "image words", "gc_words", "omitted",
               "omitted %"});
  struct Row {
    const char *Name;
    std::string Src;
  } Rows[] = {
      {"appendPaper", wl::appendPaper(10)},
      {"nqueens", wl::nqueens(4)},
      {"higherOrder", wl::higherOrder(10)},
  };
  for (const Row &R : Rows) {
    auto P = compileOrDie(R.Src);
    uint64_t Live = P->Image.gcWordBytes() / sizeof(Word);
    uint64_t Omitted = P->Image.omittedGcWords();
    tableCell(R.Name);
    tableCell(P->Image.sizeWords());
    tableCell(Live);
    tableCell(Omitted);
    tableCell(100.0 * (double)Omitted / (double)(Live + Omitted));
    tableEnd();
  }
  std::printf("\nExpected shape: interpreted < compiled on every workload "
              "(descriptors dedup\nprogram-wide; routines are code). Appel "
              "is descriptor-sized but one table per\nprocedure instead of "
              "per call site.\n\n");
  benchmark::Initialize(&argc, argv);
  Sink.runBenchmarksAndWrite();
  return 0;
}
