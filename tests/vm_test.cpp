//===- tests/vm_test.cpp - Language semantics under every strategy -------===//

#include "TestUtil.h"

using namespace tfgc;
using namespace tfgc::test;

namespace {

std::string listChurnSmall() {
  return "fun build (n : int) : int list = if n = 0 then [] "
         "else n :: build (n - 1);\n"
         "fun sum (xs : int list) : int = case xs of Nil => 0 "
         "| Cons(x, r) => x + sum r;\n"
         "sum (build 100)";
}

/// Semantics must be identical under every (strategy, algorithm) pair.
class VmSemantics
    : public ::testing::TestWithParam<std::tuple<GcStrategy, GcAlgorithm>> {
protected:
  std::string eval(const std::string &Source, bool Stress = false,
                   size_t HeapBytes = 1 << 16) {
    auto [S, A] = GetParam();
    ExecResult R = execProgram(Source, S, A, HeapBytes, Stress);
    EXPECT_TRUE(R.CompileOk) << R.CompileError;
    EXPECT_TRUE(R.Run.Ok) << R.Run.Error;
    return R.Run.Value;
  }
  std::string evalError(const std::string &Source) {
    auto [S, A] = GetParam();
    ExecResult R = execProgram(Source, S, A, 1 << 16, false);
    EXPECT_TRUE(R.CompileOk) << R.CompileError;
    EXPECT_FALSE(R.Run.Ok);
    return R.Run.Error;
  }
};

TEST_P(VmSemantics, IntegerArithmetic) {
  EXPECT_EQ(eval("2 + 3 * 4"), "14");
  EXPECT_EQ(eval("(2 + 3) * 4"), "20");
  EXPECT_EQ(eval("7 / 2"), "3");
  EXPECT_EQ(eval("7 mod 3"), "1");
  EXPECT_EQ(eval("~5 + 2"), "-3");
  EXPECT_EQ(eval("1000000007 * 3"), "3000000021");
}

TEST_P(VmSemantics, Comparisons) {
  EXPECT_EQ(eval("(1 < 2, 2 <= 2, 3 > 4, 4 >= 5, 1 = 1, 1 <> 1)"),
            "(true, true, false, false, true, false)");
  EXPECT_EQ(eval("~3 < 2"), "true");
}

TEST_P(VmSemantics, Booleans) {
  EXPECT_EQ(eval("not true"), "false");
  EXPECT_EQ(eval("true andalso false"), "false");
  EXPECT_EQ(eval("false orelse true"), "true");
  // Short-circuit: the second operand must not run.
  EXPECT_EQ(eval("false andalso (1 / 0 = 0)"), "false");
  EXPECT_EQ(eval("true orelse (1 / 0 = 0)"), "true");
}

TEST_P(VmSemantics, Floats) {
  EXPECT_EQ(eval("1.5 +. 2.25"), "3.75");
  EXPECT_EQ(eval("10.0 /. 4.0"), "2.5");
  EXPECT_EQ(eval("(1.0 <. 2.0, 2.0 =. 2.0)"), "(true, true)");
  EXPECT_EQ(eval("real 7 +. 0.5"), "7.5");
  EXPECT_EQ(eval("~2.5 +. 1.0"), "-1.5");
}

TEST_P(VmSemantics, TuplesAndLists) {
  EXPECT_EQ(eval("(1, (2, 3))"), "(1, (2, 3))");
  EXPECT_EQ(eval("[1, 2, 3]"), "[1, 2, 3]");
  EXPECT_EQ(eval("1 :: 2 :: []"), "[1, 2]");
  EXPECT_EQ(eval("[[1], [], [2, 3]]"), "[[1], [], [2, 3]]");
}

TEST_P(VmSemantics, CaseMatching) {
  EXPECT_EQ(eval("case [5, 6] of Nil => 0 | Cons(x, _) => x"), "5");
  EXPECT_EQ(eval("case ([] : int list) of Nil => 7 | Cons(x, _) => x"), "7");
  EXPECT_EQ(eval("case (1, true) of (x, true) => x | (_, false) => 0"), "1");
  EXPECT_EQ(eval("case 3 of 1 => 10 | 3 => 30 | _ => 99"), "30");
  EXPECT_EQ(eval("case [1,2,3] of x :: y :: _ => x + y | _ => 0"), "3");
}

TEST_P(VmSemantics, Datatypes) {
  std::string D = "datatype shape = Point | Circle of float "
                  "| Rect of float * float;\n";
  EXPECT_EQ(eval(D + "case Rect(2.0, 3.0) of Point => 0.0 "
                     "| Circle r => r | Rect(w, h) => w *. h"),
            "6");
  EXPECT_EQ(eval(D + "Circle 1.5"), "Circle(1.5)");
  EXPECT_EQ(eval(D + "Point"), "Point");
}

TEST_P(VmSemantics, Recursion) {
  EXPECT_EQ(eval("fun fact (n : int) : int = "
                 "if n = 0 then 1 else n * fact (n - 1); fact 10"),
            "3628800");
  EXPECT_EQ(eval("fun fib (n : int) : int = if n < 2 then n "
                 "else fib (n - 1) + fib (n - 2); fib 15"),
            "610");
}

TEST_P(VmSemantics, MutualRecursion) {
  EXPECT_EQ(eval("fun even (n : int) : bool = if n = 0 then true "
                 "else odd (n - 1) "
                 "and odd (n : int) : bool = if n = 0 then false "
                 "else even (n - 1); (even 10, odd 10)"),
            "(true, false)");
}

TEST_P(VmSemantics, LocalFunctionsCapture) {
  EXPECT_EQ(eval("let val base = 100 "
                 "fun add (x : int) : int = x + base "
                 "in add 5 end"),
            "105");
}

TEST_P(VmSemantics, LocalRecursiveClosure) {
  EXPECT_EQ(eval("let val step = 2 "
                 "fun upto (i : int) : int list = "
                 "if i > 10 then [] else i :: upto (i + step) "
                 "in upto 0 end"),
            "[0, 2, 4, 6, 8, 10]");
}

TEST_P(VmSemantics, LocalMutualClosures) {
  EXPECT_EQ(eval("let val limit = 6 "
                 "fun ev (n : int) : bool = if n >= limit then true "
                 "else od (n + 1) "
                 "and od (n : int) : bool = if n >= limit then false "
                 "else ev (n + 1) "
                 "in (ev 0, od 0) end"),
            "(true, false)");
}

TEST_P(VmSemantics, Lambdas) {
  EXPECT_EQ(eval("(fn x => x * 3) 7"), "21");
  EXPECT_EQ(eval("let val k = 10 in (fn x => x + k) 5 end"), "15");
  EXPECT_EQ(eval("(fn (a, b) => a - b) (10, 4)"), "6");
}

TEST_P(VmSemantics, FunctionsAsValues) {
  EXPECT_EQ(eval("fun double (x : int) : int = x * 2;\n"
                 "fun apply (f : int -> int) (x : int) : int = f x;\n"
                 "apply double 21"),
            "42");
}

TEST_P(VmSemantics, Refs) {
  EXPECT_EQ(eval("let val r = ref 1 in (r := 41; !r + 1) end"), "42");
  EXPECT_EQ(eval("let val r = ref [1] in (r := 2 :: !r; !r) end"), "[2, 1]");
}

TEST_P(VmSemantics, Print) {
  auto [S, A] = GetParam();
  ExecResult R = execProgram("(print 1; print 22; 0)", S, A);
  ASSERT_TRUE(R.Run.Ok);
  EXPECT_EQ(R.Run.Output, "1\n22\n");
}

TEST_P(VmSemantics, Sequencing) {
  EXPECT_EQ(eval("let val r = ref 0 in (r := 1; r := !r + 5; !r) end"), "6");
}

TEST_P(VmSemantics, DivisionByZero) {
  EXPECT_EQ(evalError("1 / 0"), "division by zero");
  EXPECT_EQ(evalError("1 mod 0"), "division by zero");
}

TEST_P(VmSemantics, MatchFailure) {
  EXPECT_EQ(evalError("case [1] of Nil => 0"), "pattern match failure");
}

TEST_P(VmSemantics, GcStressEquivalence) {
  // Collecting at every allocation must not change results.
  std::string Src = listChurnSmall();
  EXPECT_EQ(eval(Src, false), eval(Src, true, 1 << 12));
}

TEST_P(VmSemantics, SurvivesManyCollections) {
  auto [S, A] = GetParam();
  ExecResult R = execProgram(
      "fun build (n : int) : int list = if n = 0 then [] "
      "else n :: build (n - 1);\n"
      "fun sum (xs : int list) : int = case xs of Nil => 0 "
      "| Cons(x, r) => x + sum r;\n"
      "fun lp (i : int) (acc : int) : int = if i = 0 then acc "
      "else lp (i - 1) (acc + sum (build 64));\n"
      "lp 200 0",
      S, A, 4096, false);
  ASSERT_TRUE(R.Run.Ok) << R.Run.Error;
  EXPECT_EQ(R.Run.Value, std::to_string(200 * (64 * 65 / 2)));
  EXPECT_GT(R.St.get("gc.collections"), 0u);
}

TEST_P(VmSemantics, RefCycleSurvivesCollection) {
  std::string Src =
      "datatype node = End | Link of int * node ref;\n"
      "fun build (n : int) : int list = if n = 0 then [] "
      "else n :: build (n - 1);\n"
      "val a = ref End;\n"
      "val n1 = Link(1, a);\n"
      "val b = ref n1;\n"
      "val n2 = Link(2, b);\n"
      "val mk = a := n2;\n"
      "fun chase (n : node) (fuel : int) : int = case n of End => 0 "
      "| Link(v, r) => if fuel = 0 then v else v + chase (!r) (fuel - 1);\n"
      "let val junk = build 200 in chase n1 5 end";
  EXPECT_EQ(eval(Src, true, 1 << 12), "9"); // 1+2+1+2+1+2
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, VmSemantics,
    ::testing::Combine(::testing::ValuesIn(test::AllStrategies),
                       ::testing::ValuesIn(test::AllAlgorithms)),
    [](const auto &Info) {
      // No brackets here: structured bindings contain a bare comma, which
      // the INSTANTIATE macro would split on.
      std::string Name = gcStrategyName(std::get<0>(Info.param));
      for (char &C : Name)
        if (C == '-')
          C = '_';
      switch (std::get<1>(Info.param)) {
      case GcAlgorithm::Copying:      return Name + "_copy";
      case GcAlgorithm::MarkSweep:    return Name + "_ms";
      case GcAlgorithm::Generational: return Name + "_gen";
      }
      return Name;
    });

} // namespace
