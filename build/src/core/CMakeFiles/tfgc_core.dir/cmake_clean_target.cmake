file(REMOVE_RECURSE
  "libtfgc_core.a"
)
