# Empty compiler generated dependencies file for bench_tasking.
# This may be replaced when dependencies are built.
